file(REMOVE_RECURSE
  "CMakeFiles/bench_hwchar.dir/bench_hwchar.cc.o"
  "CMakeFiles/bench_hwchar.dir/bench_hwchar.cc.o.d"
  "bench_hwchar"
  "bench_hwchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hwchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
