# Empty dependencies file for bench_hwchar.
# This may be replaced when dependencies are built.
