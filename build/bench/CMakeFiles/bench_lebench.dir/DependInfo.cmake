
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lebench.cc" "bench/CMakeFiles/bench_lebench.dir/bench_lebench.cc.o" "gcc" "bench/CMakeFiles/bench_lebench.dir/bench_lebench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/perspective_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/perspective_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/perspective_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/perspective_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/perspective_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
