file(REMOVE_RECURSE
  "CMakeFiles/bench_lebench.dir/bench_lebench.cc.o"
  "CMakeFiles/bench_lebench.dir/bench_lebench.cc.o.d"
  "bench_lebench"
  "bench_lebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
