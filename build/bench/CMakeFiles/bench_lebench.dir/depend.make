# Empty dependencies file for bench_lebench.
# This may be replaced when dependencies are built.
