# Empty compiler generated dependencies file for bench_kasper.
# This may be replaced when dependencies are built.
