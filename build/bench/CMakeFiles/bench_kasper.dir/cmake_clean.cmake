file(REMOVE_RECURSE
  "CMakeFiles/bench_kasper.dir/bench_kasper.cc.o"
  "CMakeFiles/bench_kasper.dir/bench_kasper.cc.o.d"
  "bench_kasper"
  "bench_kasper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kasper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
