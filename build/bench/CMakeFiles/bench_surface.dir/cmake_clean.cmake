file(REMOVE_RECURSE
  "CMakeFiles/bench_surface.dir/bench_surface.cc.o"
  "CMakeFiles/bench_surface.dir/bench_surface.cc.o.d"
  "bench_surface"
  "bench_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
