# Empty dependencies file for bench_slab.
# This may be replaced when dependencies are built.
