file(REMOVE_RECURSE
  "CMakeFiles/bench_slab.dir/bench_slab.cc.o"
  "CMakeFiles/bench_slab.dir/bench_slab.cc.o.d"
  "bench_slab"
  "bench_slab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
