file(REMOVE_RECURSE
  "CMakeFiles/bench_gadgets.dir/bench_gadgets.cc.o"
  "CMakeFiles/bench_gadgets.dir/bench_gadgets.cc.o.d"
  "bench_gadgets"
  "bench_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
