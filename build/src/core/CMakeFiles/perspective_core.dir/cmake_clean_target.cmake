file(REMOVE_RECURSE
  "libperspective_core.a"
)
