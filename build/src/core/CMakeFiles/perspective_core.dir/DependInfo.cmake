
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dsvmt.cc" "src/core/CMakeFiles/perspective_core.dir/dsvmt.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/dsvmt.cc.o.d"
  "/root/repo/src/core/hwcache.cc" "src/core/CMakeFiles/perspective_core.dir/hwcache.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/hwcache.cc.o.d"
  "/root/repo/src/core/hwmodel.cc" "src/core/CMakeFiles/perspective_core.dir/hwmodel.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/hwmodel.cc.o.d"
  "/root/repo/src/core/isv.cc" "src/core/CMakeFiles/perspective_core.dir/isv.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/isv.cc.o.d"
  "/root/repo/src/core/isv_builders.cc" "src/core/CMakeFiles/perspective_core.dir/isv_builders.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/isv_builders.cc.o.d"
  "/root/repo/src/core/perspective.cc" "src/core/CMakeFiles/perspective_core.dir/perspective.cc.o" "gcc" "src/core/CMakeFiles/perspective_core.dir/perspective.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/perspective_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
