# Empty compiler generated dependencies file for perspective_core.
# This may be replaced when dependencies are built.
