file(REMOVE_RECURSE
  "CMakeFiles/perspective_core.dir/dsvmt.cc.o"
  "CMakeFiles/perspective_core.dir/dsvmt.cc.o.d"
  "CMakeFiles/perspective_core.dir/hwcache.cc.o"
  "CMakeFiles/perspective_core.dir/hwcache.cc.o.d"
  "CMakeFiles/perspective_core.dir/hwmodel.cc.o"
  "CMakeFiles/perspective_core.dir/hwmodel.cc.o.d"
  "CMakeFiles/perspective_core.dir/isv.cc.o"
  "CMakeFiles/perspective_core.dir/isv.cc.o.d"
  "CMakeFiles/perspective_core.dir/isv_builders.cc.o"
  "CMakeFiles/perspective_core.dir/isv_builders.cc.o.d"
  "CMakeFiles/perspective_core.dir/perspective.cc.o"
  "CMakeFiles/perspective_core.dir/perspective.cc.o.d"
  "libperspective_core.a"
  "libperspective_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
