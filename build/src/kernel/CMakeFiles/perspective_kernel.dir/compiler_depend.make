# Empty compiler generated dependencies file for perspective_kernel.
# This may be replaced when dependencies are built.
