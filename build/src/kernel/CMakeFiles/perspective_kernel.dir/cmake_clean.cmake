file(REMOVE_RECURSE
  "CMakeFiles/perspective_kernel.dir/buddy.cc.o"
  "CMakeFiles/perspective_kernel.dir/buddy.cc.o.d"
  "CMakeFiles/perspective_kernel.dir/image.cc.o"
  "CMakeFiles/perspective_kernel.dir/image.cc.o.d"
  "CMakeFiles/perspective_kernel.dir/interp.cc.o"
  "CMakeFiles/perspective_kernel.dir/interp.cc.o.d"
  "CMakeFiles/perspective_kernel.dir/kstate.cc.o"
  "CMakeFiles/perspective_kernel.dir/kstate.cc.o.d"
  "CMakeFiles/perspective_kernel.dir/slab.cc.o"
  "CMakeFiles/perspective_kernel.dir/slab.cc.o.d"
  "CMakeFiles/perspective_kernel.dir/syscall_exec.cc.o"
  "CMakeFiles/perspective_kernel.dir/syscall_exec.cc.o.d"
  "libperspective_kernel.a"
  "libperspective_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
