file(REMOVE_RECURSE
  "libperspective_kernel.a"
)
