
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/buddy.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/buddy.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/buddy.cc.o.d"
  "/root/repo/src/kernel/image.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/image.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/image.cc.o.d"
  "/root/repo/src/kernel/interp.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/interp.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/interp.cc.o.d"
  "/root/repo/src/kernel/kstate.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/kstate.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/kstate.cc.o.d"
  "/root/repo/src/kernel/slab.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/slab.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/slab.cc.o.d"
  "/root/repo/src/kernel/syscall_exec.cc" "src/kernel/CMakeFiles/perspective_kernel.dir/syscall_exec.cc.o" "gcc" "src/kernel/CMakeFiles/perspective_kernel.dir/syscall_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
