file(REMOVE_RECURSE
  "CMakeFiles/perspective_workloads.dir/driver.cc.o"
  "CMakeFiles/perspective_workloads.dir/driver.cc.o.d"
  "CMakeFiles/perspective_workloads.dir/experiment.cc.o"
  "CMakeFiles/perspective_workloads.dir/experiment.cc.o.d"
  "CMakeFiles/perspective_workloads.dir/profiles.cc.o"
  "CMakeFiles/perspective_workloads.dir/profiles.cc.o.d"
  "libperspective_workloads.a"
  "libperspective_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
