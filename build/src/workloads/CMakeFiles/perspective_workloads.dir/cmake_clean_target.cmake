file(REMOVE_RECURSE
  "libperspective_workloads.a"
)
