# Empty dependencies file for perspective_workloads.
# This may be replaced when dependencies are built.
