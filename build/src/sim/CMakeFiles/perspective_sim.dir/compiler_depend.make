# Empty compiler generated dependencies file for perspective_sim.
# This may be replaced when dependencies are built.
