file(REMOVE_RECURSE
  "CMakeFiles/perspective_sim.dir/cache.cc.o"
  "CMakeFiles/perspective_sim.dir/cache.cc.o.d"
  "CMakeFiles/perspective_sim.dir/inst.cc.o"
  "CMakeFiles/perspective_sim.dir/inst.cc.o.d"
  "CMakeFiles/perspective_sim.dir/pipeline.cc.o"
  "CMakeFiles/perspective_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/perspective_sim.dir/predictor.cc.o"
  "CMakeFiles/perspective_sim.dir/predictor.cc.o.d"
  "CMakeFiles/perspective_sim.dir/program.cc.o"
  "CMakeFiles/perspective_sim.dir/program.cc.o.d"
  "CMakeFiles/perspective_sim.dir/stats.cc.o"
  "CMakeFiles/perspective_sim.dir/stats.cc.o.d"
  "CMakeFiles/perspective_sim.dir/tlb.cc.o"
  "CMakeFiles/perspective_sim.dir/tlb.cc.o.d"
  "CMakeFiles/perspective_sim.dir/trace.cc.o"
  "CMakeFiles/perspective_sim.dir/trace.cc.o.d"
  "libperspective_sim.a"
  "libperspective_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
