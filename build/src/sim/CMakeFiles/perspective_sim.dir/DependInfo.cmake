
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/perspective_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/inst.cc" "src/sim/CMakeFiles/perspective_sim.dir/inst.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/inst.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/perspective_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/pipeline.cc.o.d"
  "/root/repo/src/sim/predictor.cc" "src/sim/CMakeFiles/perspective_sim.dir/predictor.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/predictor.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/perspective_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/program.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/perspective_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/tlb.cc" "src/sim/CMakeFiles/perspective_sim.dir/tlb.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/tlb.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/perspective_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/perspective_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
