file(REMOVE_RECURSE
  "libperspective_sim.a"
)
