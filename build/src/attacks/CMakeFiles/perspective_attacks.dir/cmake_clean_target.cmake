file(REMOVE_RECURSE
  "libperspective_attacks.a"
)
