# Empty dependencies file for perspective_attacks.
# This may be replaced when dependencies are built.
