file(REMOVE_RECURSE
  "CMakeFiles/perspective_attacks.dir/cve.cc.o"
  "CMakeFiles/perspective_attacks.dir/cve.cc.o.d"
  "CMakeFiles/perspective_attacks.dir/poc.cc.o"
  "CMakeFiles/perspective_attacks.dir/poc.cc.o.d"
  "libperspective_attacks.a"
  "libperspective_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
