# Empty dependencies file for perspective_analysis.
# This may be replaced when dependencies are built.
