file(REMOVE_RECURSE
  "libperspective_analysis.a"
)
