file(REMOVE_RECURSE
  "CMakeFiles/perspective_analysis.dir/scanner.cc.o"
  "CMakeFiles/perspective_analysis.dir/scanner.cc.o.d"
  "libperspective_analysis.a"
  "libperspective_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perspective_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
