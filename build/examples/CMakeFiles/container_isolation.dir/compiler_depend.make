# Empty compiler generated dependencies file for container_isolation.
# This may be replaced when dependencies are built.
