file(REMOVE_RECURSE
  "CMakeFiles/container_isolation.dir/container_isolation.cpp.o"
  "CMakeFiles/container_isolation.dir/container_isolation.cpp.o.d"
  "container_isolation"
  "container_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
