file(REMOVE_RECURSE
  "CMakeFiles/live_patching.dir/live_patching.cpp.o"
  "CMakeFiles/live_patching.dir/live_patching.cpp.o.d"
  "live_patching"
  "live_patching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_patching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
