# Empty compiler generated dependencies file for live_patching.
# This may be replaced when dependencies are built.
