# Empty dependencies file for isv_inspector.
# This may be replaced when dependencies are built.
