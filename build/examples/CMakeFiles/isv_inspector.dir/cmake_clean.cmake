file(REMOVE_RECURSE
  "CMakeFiles/isv_inspector.dir/isv_inspector.cpp.o"
  "CMakeFiles/isv_inspector.dir/isv_inspector.cpp.o.d"
  "isv_inspector"
  "isv_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isv_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
