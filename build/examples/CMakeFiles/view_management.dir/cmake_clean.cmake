file(REMOVE_RECURSE
  "CMakeFiles/view_management.dir/view_management.cpp.o"
  "CMakeFiles/view_management.dir/view_management.cpp.o.d"
  "view_management"
  "view_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
