# Empty dependencies file for view_management.
# This may be replaced when dependencies are built.
