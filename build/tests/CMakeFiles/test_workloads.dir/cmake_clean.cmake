file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_driver.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_driver.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_experiment.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_experiment.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_scheme_properties.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_scheme_properties.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_seed_robustness.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_seed_robustness.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
