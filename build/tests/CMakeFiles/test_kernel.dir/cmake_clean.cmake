file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/kernel/test_buddy.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_buddy.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_buddy_properties.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_buddy_properties.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_gadget_ir.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_gadget_ir.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_image.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_image.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_interp.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_interp.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_kstate.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_kstate.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_slab.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_slab.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_slab_properties.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_slab_properties.cc.o.d"
  "CMakeFiles/test_kernel.dir/kernel/test_syscall_exec.cc.o"
  "CMakeFiles/test_kernel.dir/kernel/test_syscall_exec.cc.o.d"
  "test_kernel"
  "test_kernel.pdb"
  "test_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
