
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel/test_buddy.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_buddy.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_buddy.cc.o.d"
  "/root/repo/tests/kernel/test_buddy_properties.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_buddy_properties.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_buddy_properties.cc.o.d"
  "/root/repo/tests/kernel/test_gadget_ir.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_gadget_ir.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_gadget_ir.cc.o.d"
  "/root/repo/tests/kernel/test_image.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_image.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_image.cc.o.d"
  "/root/repo/tests/kernel/test_interp.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_interp.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_interp.cc.o.d"
  "/root/repo/tests/kernel/test_kstate.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_kstate.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_kstate.cc.o.d"
  "/root/repo/tests/kernel/test_slab.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_slab.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_slab.cc.o.d"
  "/root/repo/tests/kernel/test_slab_properties.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_slab_properties.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_slab_properties.cc.o.d"
  "/root/repo/tests/kernel/test_syscall_exec.cc" "tests/CMakeFiles/test_kernel.dir/kernel/test_syscall_exec.cc.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/test_syscall_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/perspective_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
