file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cache_properties.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cache_properties.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_covert.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_covert.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_corners.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_corners.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_properties.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_properties.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_predictor.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_predictor.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_program.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_program.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_spectre.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_spectre.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
