
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cache.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "/root/repo/tests/sim/test_cache_properties.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cache_properties.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache_properties.cc.o.d"
  "/root/repo/tests/sim/test_covert.cc" "tests/CMakeFiles/test_sim.dir/sim/test_covert.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_covert.cc.o.d"
  "/root/repo/tests/sim/test_pipeline.cc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o.d"
  "/root/repo/tests/sim/test_pipeline_corners.cc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline_corners.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline_corners.cc.o.d"
  "/root/repo/tests/sim/test_pipeline_properties.cc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline_properties.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline_properties.cc.o.d"
  "/root/repo/tests/sim/test_predictor.cc" "tests/CMakeFiles/test_sim.dir/sim/test_predictor.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_predictor.cc.o.d"
  "/root/repo/tests/sim/test_program.cc" "tests/CMakeFiles/test_sim.dir/sim/test_program.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_program.cc.o.d"
  "/root/repo/tests/sim/test_spectre.cc" "tests/CMakeFiles/test_sim.dir/sim/test_spectre.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_spectre.cc.o.d"
  "/root/repo/tests/sim/test_trace.cc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/perspective_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
