file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_dsvmt.cc.o"
  "CMakeFiles/test_core.dir/core/test_dsvmt.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hwcache.cc.o"
  "CMakeFiles/test_core.dir/core/test_hwcache.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hwmodel.cc.o"
  "CMakeFiles/test_core.dir/core/test_hwmodel.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_isv.cc.o"
  "CMakeFiles/test_core.dir/core/test_isv.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_isv_builders.cc.o"
  "CMakeFiles/test_core.dir/core/test_isv_builders.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_isv_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_isv_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_perspective.cc.o"
  "CMakeFiles/test_core.dir/core/test_perspective.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
