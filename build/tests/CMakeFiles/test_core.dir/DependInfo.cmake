
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_dsvmt.cc" "tests/CMakeFiles/test_core.dir/core/test_dsvmt.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dsvmt.cc.o.d"
  "/root/repo/tests/core/test_hwcache.cc" "tests/CMakeFiles/test_core.dir/core/test_hwcache.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hwcache.cc.o.d"
  "/root/repo/tests/core/test_hwmodel.cc" "tests/CMakeFiles/test_core.dir/core/test_hwmodel.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hwmodel.cc.o.d"
  "/root/repo/tests/core/test_isv.cc" "tests/CMakeFiles/test_core.dir/core/test_isv.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_isv.cc.o.d"
  "/root/repo/tests/core/test_isv_builders.cc" "tests/CMakeFiles/test_core.dir/core/test_isv_builders.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_isv_builders.cc.o.d"
  "/root/repo/tests/core/test_isv_properties.cc" "tests/CMakeFiles/test_core.dir/core/test_isv_properties.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_isv_properties.cc.o.d"
  "/root/repo/tests/core/test_perspective.cc" "tests/CMakeFiles/test_core.dir/core/test_perspective.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_perspective.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perspective_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/perspective_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/perspective_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perspective_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
