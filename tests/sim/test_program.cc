#include <gtest/gtest.h>

#include "sim/program.hh"

using namespace perspective::sim;

namespace
{

Program
twoFunctionProgram()
{
    Program p;
    FuncId k = p.addFunction("kfunc", true);
    FuncId u = p.addFunction("ufunc", false);
    p.func(k).body = {nop(), nop(), ret()};
    p.func(u).body = {nop(), ret()};
    p.layout();
    return p;
}

} // namespace

TEST(Program, LayoutSeparatesKernelAndUser)
{
    Program p = twoFunctionProgram();
    EXPECT_GE(p.func(0).base, kKernelTextBase);
    EXPECT_GE(p.func(1).base, kUserBase);
    EXPECT_LT(p.func(1).base, kKernelTextBase);
}

TEST(Program, FindByName)
{
    Program p = twoFunctionProgram();
    EXPECT_EQ(p.findByName("kfunc"), 0u);
    EXPECT_EQ(p.findByName("ufunc"), 1u);
    EXPECT_EQ(p.findByName("absent"), kNoFunc);
}

TEST(Program, ResolveRoundTrip)
{
    Program p = twoFunctionProgram();
    for (FuncId f = 0; f < 2; ++f) {
        for (std::uint32_t i = 0; i < p.func(f).body.size(); ++i) {
            auto [rf, ri] = p.resolve(p.func(f).instAddr(i));
            EXPECT_EQ(rf, f);
            EXPECT_EQ(ri, i);
        }
    }
}

TEST(Program, ResolveUnmappedReturnsNoFunc)
{
    Program p = twoFunctionProgram();
    auto [f, i] = p.resolve(kKernelTextBase - 64);
    EXPECT_EQ(f, kNoFunc);
    (void)i;
}

TEST(Program, TotalOps)
{
    Program p = twoFunctionProgram();
    EXPECT_EQ(p.totalOps(), 5u);
}

TEST(Program, KernelTextEndCoversAllKernelFunctions)
{
    Program p = twoFunctionProgram();
    const auto &k = p.func(0);
    EXPECT_GE(p.kernelTextEnd(),
              k.base + k.body.size() * kInstBytes);
}

TEST(Program, DisassembleListsEveryOp)
{
    Program p = twoFunctionProgram();
    std::string text = p.disassemble(0);
    EXPECT_NE(text.find("kfunc"), std::string::npos);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("0: nop"), std::string::npos);
    EXPECT_NE(text.find("2: ret"), std::string::npos);
}
