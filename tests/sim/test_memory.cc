/**
 * @file
 * Paged sparse memory: exact byte-address cell semantics, page-table
 * fast path, and the copy-on-write snapshot/restore contract the
 * boot-image cache and experiment snapshots build on.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"

using namespace perspective::sim;

TEST(Memory, UnwrittenReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read(0), 0u);
    EXPECT_EQ(m.read(0xdeadbeef), 0u);
    EXPECT_EQ(m.footprint(), 0u);
}

TEST(Memory, DistinctByteAddressesAreIndependentCells)
{
    // Like the original word map: addr 0 and addr 4 do not alias.
    Memory m;
    m.write(0x1000, 1);
    m.write(0x1004, 2);
    m.write(0x1008, 3);
    EXPECT_EQ(m.read(0x1000), 1u);
    EXPECT_EQ(m.read(0x1004), 2u);
    EXPECT_EQ(m.read(0x1008), 3u);
    EXPECT_EQ(m.footprint(), 3u);
}

TEST(Memory, SamePageManyWords)
{
    Memory m;
    for (Addr a = 0; a < 4096; a += 8)
        m.write(0x40000 + a, a + 1);
    for (Addr a = 0; a < 4096; a += 8)
        EXPECT_EQ(m.read(0x40000 + a), a + 1);
    EXPECT_EQ(m.footprint(), 512u);
}

TEST(Memory, OverwriteDoesNotGrowFootprint)
{
    Memory m;
    m.write(0x2000, 1);
    m.write(0x2000, 2);
    EXPECT_EQ(m.read(0x2000), 2u);
    EXPECT_EQ(m.footprint(), 1u);
}

TEST(Memory, CrossPageAccesses)
{
    Memory m;
    // Adjacent words on opposite sides of a page boundary.
    m.write(0x0ff8, 0x11);
    m.write(0x1000, 0x22);
    EXPECT_EQ(m.read(0x0ff8), 0x11u);
    EXPECT_EQ(m.read(0x1000), 0x22u);
    // Alternating pages defeats the one-entry lookup cache.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(m.read(0x0ff8), 0x11u);
        EXPECT_EQ(m.read(0x1000), 0x22u);
    }
}

TEST(Memory, SnapshotRestoreRoundTrip)
{
    Memory m;
    m.write(0x1000, 0xaa);
    m.write(0x2004, 0xbb); // unaligned cell
    Memory::Snapshot s = m.snapshot();

    m.write(0x1000, 0xcc);
    m.write(0x3000, 0xdd);
    EXPECT_EQ(m.read(0x1000), 0xccu);

    m.restore(s);
    EXPECT_EQ(m.read(0x1000), 0xaau);
    EXPECT_EQ(m.read(0x2004), 0xbbu);
    EXPECT_EQ(m.read(0x3000), 0u);
    EXPECT_EQ(m.footprint(), 2u);
}

TEST(Memory, SnapshotIsIsolatedFromLaterWrites)
{
    // The COW hazard: the snapshot shares pages with the live memory,
    // so post-snapshot writes must clone, not mutate in place — even
    // when the write cache latched the page before the snapshot.
    Memory m;
    m.write(0x1000, 1);
    m.write(0x1008, 2); // write cache now points at this page
    Memory::Snapshot s = m.snapshot();
    m.write(0x1008, 99); // must clone, not write through the cache
    m.write(0x1010, 3);

    Memory other;
    other.restore(s);
    EXPECT_EQ(other.read(0x1000), 1u);
    EXPECT_EQ(other.read(0x1008), 2u);
    EXPECT_EQ(other.read(0x1010), 0u);
}

TEST(Memory, SnapshotSurvivesManyRestores)
{
    Memory m;
    m.write(0x5000, 7);
    Memory::Snapshot s = m.snapshot();
    for (int i = 0; i < 3; ++i) {
        m.restore(s);
        EXPECT_EQ(m.read(0x5000), 7u);
        m.write(0x5000, 100 + i);
        m.write(0x6000, i);
    }
    m.restore(s);
    EXPECT_EQ(m.read(0x5000), 7u);
    EXPECT_EQ(m.read(0x6000), 0u);
}

TEST(Memory, IndependentRestoresDoNotAlias)
{
    // Two memories restored from one snapshot write independently.
    Memory m;
    m.write(0x7000, 42);
    Memory::Snapshot s = m.snapshot();

    Memory a, b;
    a.restore(s);
    b.restore(s);
    a.write(0x7000, 1);
    b.write(0x7000, 2);
    EXPECT_EQ(a.read(0x7000), 1u);
    EXPECT_EQ(b.read(0x7000), 2u);
    EXPECT_EQ(m.read(0x7000), 42u);
}

TEST(Memory, CopyConstructionSharesCopyOnWrite)
{
    Memory m;
    m.write(0x8000, 5);
    Memory c(m);
    EXPECT_EQ(c.read(0x8000), 5u);
    c.write(0x8000, 6);
    EXPECT_EQ(m.read(0x8000), 5u);
    EXPECT_EQ(c.read(0x8000), 6u);
}

TEST(Memory, ClearDropsEverything)
{
    Memory m;
    m.write(0x9000, 1);
    m.write(0x9004, 2);
    m.clear();
    EXPECT_EQ(m.read(0x9000), 0u);
    EXPECT_EQ(m.read(0x9004), 0u);
    EXPECT_EQ(m.footprint(), 0u);
}
