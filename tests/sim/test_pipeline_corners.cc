/**
 * @file
 * Pipeline corner cases: squash interactions with blocked loads,
 * nested mispredictions, store-to-load forwarding across speculation,
 * RSB state across squashes, and deep recursion.
 */

#include <gtest/gtest.h>

#include "defenses/schemes.hh"
#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"

using namespace perspective::sim;
using namespace perspective::defenses;

namespace
{

struct Machine
{
    Program prog;
    Memory mem;
};

} // namespace

TEST(PipelineCorners, BlockedLoadOnWrongPathIsSquashedCleanly)
{
    // A FENCE-blocked load sits on the wrong path of a mispredicted
    // branch; the squash must not wedge the pipeline or corrupt
    // later runs.
    Machine m;
    Addr flag = 0x10000;
    m.mem.write(flag, 1);
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        loadAbs(1, flag),
        branchImm(Cond::Eq, 1, 1, 5), // taken once resolved
        loadAbs(2, 0x20000),          // wrong path: blocked by FENCE
        loadAbs(3, 0x20040),
        jump(6),
        movImm(4, 7), // 5: correct path
        ret(),        // 6
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    FencePolicy fence;
    cpu.setPolicy(&fence);
    for (int i = 0; i < 4; ++i) {
        auto r = cpu.run(f);
        EXPECT_GT(r.instructions, 0u);
        EXPECT_EQ(cpu.regValue(4), 7u);
    }
}

TEST(PipelineCorners, NestedMispredictionsResolveOutsideIn)
{
    // Two data-dependent branches whose outcomes flip between runs;
    // architectural results must stay exact.
    Machine m;
    Addr a = 0x11000, b = 0x12000;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        loadAbs(1, a),
        loadAbs(2, b),
        movImm(3, 0),
        branchImm(Cond::Eq, 1, 1, 6), // on a==1
        addImm(3, 3, 1),              // skipped when taken
        nop(),
        branchImm(Cond::Eq, 2, 1, 9), // 6: on b==1
        addImm(3, 3, 10),             // skipped when taken
        nop(),
        ret(), // 9
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    for (unsigned av = 0; av < 2; ++av) {
        for (unsigned bv = 0; bv < 2; ++bv) {
            m.mem.write(a, av);
            m.mem.write(b, bv);
            cpu.run(f);
            unsigned expect =
                (av == 1 ? 0 : 1) + (bv == 1 ? 0 : 10);
            EXPECT_EQ(cpu.regValue(3), expect)
                << "a=" << av << " b=" << bv;
        }
    }
}

TEST(PipelineCorners, StoreToLoadForwardingExactAddressMatch)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    Addr addr = 0x13000;
    m.prog.func(f).body = {
        movImm(1, 0xaa),
        movImm(2, static_cast<std::int64_t>(addr)),
        store(2, 0, 1),
        load(3, 2, 0),  // forwards 0xaa
        load(4, 2, 8),  // different address: memory value (0)
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(f);
    EXPECT_EQ(cpu.regValue(3), 0xaau);
    EXPECT_EQ(cpu.regValue(4), 0u);
}

TEST(PipelineCorners, DeepRecursionBeyondRsbStillCorrect)
{
    // 24-deep self-recursion overflows the 16-entry RSB; underflow
    // predictions may misfire but architectural state must be exact.
    Machine m;
    FuncId f = m.prog.addFunction("rec", false);
    m.prog.func(f).body = {
        branchImm(Cond::Eq, 1, 0, 4),
        addImm(1, 1, -1),
        addImm(2, 2, 1),
        call(f),
        ret(), // 4
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.setReg(1, 24);
    cpu.setReg(2, 0);
    auto r = cpu.run(f);
    EXPECT_EQ(cpu.regValue(2), 24u);
    EXPECT_GT(r.instructions, 24u * 4);
}

TEST(PipelineCorners, BackToBackRunsDoNotLeakRobState)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        movImm(1, 1),
        loadAbs(2, 0x14000),
        add(3, 1, 2),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    auto r1 = cpu.run(f);
    auto r2 = cpu.run(f);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(cpu.regValue(3), 1u);
}

TEST(PipelineCorners, SpotPolicyRetpolineStallsIndirectCalls)
{
    Machine m;
    FuncId t = m.prog.addFunction("t", false);
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(t).body = {movImm(9, 5), ret()};
    m.prog.func(f).body = {
        movImm(1, static_cast<std::int64_t>(t)),
        indirectCall(1),
        ret(),
    };
    m.prog.layout();

    Pipeline fast(m.prog, m.mem);
    fast.run(f);       // trains the BTB
    auto r_fast = fast.run(f);

    Pipeline slow(m.prog, m.mem);
    SpotMitigationPolicy spot(0, true);
    slow.setPolicy(&spot);
    slow.run(f);
    auto r_slow = slow.run(f);
    EXPECT_GT(r_slow.cycles, r_fast.cycles);
    EXPECT_EQ(slow.regValue(9), 5u);
}

TEST(PipelineCorners, ShadowStackPolicyCorrectOnUnderflow)
{
    Machine m;
    FuncId f = m.prog.addFunction("rec", false);
    m.prog.func(f).body = {
        branchImm(Cond::Eq, 1, 0, 4),
        addImm(1, 1, -1),
        addImm(2, 2, 1),
        call(f),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    SpecCfiPolicy cfi;
    cpu.setPolicy(&cfi);
    cpu.setReg(1, 24);
    cpu.setReg(2, 0);
    cpu.run(f);
    EXPECT_EQ(cpu.regValue(2), 24u);
}
