#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "sim/stats.hh"

using namespace perspective::sim;

namespace
{
constexpr std::uint64_t kU64Max =
    std::numeric_limits<std::uint64_t>::max();
}

// ---- Counter handles ------------------------------------------------

TEST(Counter, DefaultConstructedIsInvalid)
{
    Counter c;
    EXPECT_FALSE(c.valid());
}

TEST(Counter, HandleAndNameBasedApiShareOneSlot)
{
    StatSet s;
    Counter c = s.counter("committed");
    EXPECT_TRUE(c.valid());
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(s.get("committed"), 5u);
    s.inc("committed", 2);
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter, HandleSurvivesClear)
{
    // Experiment::run clears stats between warmup and measurement;
    // handles resolved in the Pipeline constructor must stay valid.
    StatSet s;
    Counter c = s.counter("fences");
    c.inc(41);
    s.clear();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(s.get("fences"), 0u);
    c.inc(3);
    EXPECT_EQ(s.get("fences"), 3u);
}

TEST(Counter, CreationIsIdempotent)
{
    StatSet s;
    Counter a = s.counter("x");
    a.inc(2);
    Counter b = s.counter("x");
    b.inc(3);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(b.value(), 5u);
}

// ---- Histogram ------------------------------------------------------

TEST(Histogram, EmptyReportsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, BucketOfPowersOfTwo)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(std::uint64_t{1} << 63), 64u);
    EXPECT_EQ(Histogram::bucketOf(kU64Max), 64u);
}

TEST(Histogram, BucketRangesTileTheDomain)
{
    EXPECT_EQ(Histogram::bucketRange(0),
              (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
    EXPECT_EQ(Histogram::bucketRange(1),
              (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
    EXPECT_EQ(Histogram::bucketRange(3),
              (std::pair<std::uint64_t, std::uint64_t>{4, 7}));
    auto [lo, hi] = Histogram::bucketRange(64);
    EXPECT_EQ(lo, std::uint64_t{1} << 63);
    EXPECT_EQ(hi, kU64Max);
    // Consecutive buckets leave no gap.
    for (unsigned b = 0; b + 1 < Histogram::kNumBuckets; ++b)
        EXPECT_EQ(Histogram::bucketRange(b).second + 1,
                  Histogram::bucketRange(b + 1).first)
            << "gap after bucket " << b;
}

TEST(Histogram, ZeroSampleLandsInBucketZero)
{
    Histogram h;
    h.sample(0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, MaxU64DoesNotOverflow)
{
    Histogram h;
    h.sample(kU64Max);
    EXPECT_EQ(h.bucket(64), 1u);
    EXPECT_EQ(h.max(), kU64Max);
    EXPECT_DOUBLE_EQ(h.percentile(100),
                     static_cast<double>(kU64Max));
}

TEST(Histogram, SingleSampleAllPercentilesEqualIt)
{
    Histogram h;
    h.sample(42);
    EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, PercentileClampsToObservedRange)
{
    Histogram h;
    h.sample(5); // bucket 3 covers [4, 7]; observed range is [5, 6]
    h.sample(6);
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 6.0);
    EXPECT_GE(h.percentile(50), 5.0);
    EXPECT_LE(h.percentile(50), 6.0);
}

TEST(Histogram, PercentileInterpolatesWithinABucket)
{
    // Four samples fill bucket 3's exact range [4, 7]: the 0-based
    // continuous p50 rank is 1.5 of 4, i.e. 4 + (1.5/4) * 3 = 5.125.
    Histogram h;
    for (std::uint64_t v = 4; v <= 7; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.125);
    EXPECT_DOUBLE_EQ(h.percentile(0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(Histogram, PercentileWalksAcrossBuckets)
{
    // {1, 2, 3, 4}: p50 rank 1.5 falls in bucket 2 ([2, 3]) after one
    // sample in bucket 1, interpolating to 2 + (0.5/2) * 1 = 2.25.
    Histogram h;
    for (std::uint64_t v = 1; v <= 4; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(50), 2.25);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 4.0);
}

TEST(Histogram, WeightedSamplesCountMultiply)
{
    Histogram h;
    h.sample(10, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, ClearEmptiesEverything)
{
    Histogram h;
    h.sample(3);
    h.sample(300);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    h.sample(9);
    EXPECT_EQ(h.min(), 9u);
    EXPECT_EQ(h.max(), 9u);
}

// ---- TimeSeries -----------------------------------------------------

TEST(TimeSeries, SamplesAtTheConfiguredCadence)
{
    TimeSeries ts(10);
    for (perspective::sim::Cycle now = 0; now < 100; ++now)
        ts.tick(now, now * 2);
    ASSERT_EQ(ts.samples().size(), 10u);
    for (std::size_t i = 0; i < ts.samples().size(); ++i) {
        EXPECT_EQ(ts.samples()[i].first, i * 10);
        EXPECT_EQ(ts.samples()[i].second, i * 20);
    }
}

TEST(TimeSeries, DecimationBoundsMemoryAndDoublesInterval)
{
    TimeSeries ts(1);
    for (perspective::sim::Cycle now = 0; now < 4096; ++now)
        ts.tick(now, now);
    EXPECT_LT(ts.samples().size(), TimeSeries::kMaxSamples);
    EXPECT_GT(ts.interval(), 1u);
    // Decimation keeps samples ordered and self-consistent (value
    // recorded at cycle c is c in this series).
    perspective::sim::Cycle prev = 0;
    for (std::size_t i = 0; i < ts.samples().size(); ++i) {
        const auto &[c, v] = ts.samples()[i];
        EXPECT_EQ(c, v);
        if (i > 0)
            EXPECT_GT(c, prev);
        prev = c;
    }
}

TEST(TimeSeries, ClearRestoresBaseInterval)
{
    TimeSeries ts(1);
    for (perspective::sim::Cycle now = 0; now < 2048; ++now)
        ts.tick(now, now);
    ASSERT_GT(ts.interval(), 1u);
    ts.clear();
    EXPECT_EQ(ts.interval(), 1u);
    EXPECT_TRUE(ts.samples().empty());
    ts.tick(0, 7);
    ASSERT_EQ(ts.samples().size(), 1u);
    EXPECT_EQ(ts.samples()[0].second, 7u);
}

TEST(TimeSeries, ZeroIntervalIsTreatedAsOne)
{
    TimeSeries ts(0);
    ts.tick(0, 1);
    ts.tick(1, 2);
    EXPECT_EQ(ts.samples().size(), 2u);
}

// ---- StatSet integration -------------------------------------------

TEST(StatSet, HistogramAndSeriesReferencesSurviveClear)
{
    StatSet s;
    Histogram &h = s.histogram("lat");
    TimeSeries &ts = s.timeSeries("occ", 4);
    h.sample(12);
    ts.tick(0, 1);
    s.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(ts.samples().empty());
    h.sample(5);
    EXPECT_EQ(s.allHistograms().at("lat").count(), 1u);
}

TEST(StatSet, TimeSeriesIntervalFixedOnFirstUse)
{
    StatSet s;
    s.timeSeries("x", 16);
    EXPECT_EQ(s.timeSeries("x", 999).interval(), 16u);
}

TEST(StatSet, DumpIncludesHistogramSummaries)
{
    StatSet s;
    s.inc("committed", 10);
    s.histogram("lat").sample(8);
    s.timeSeries("occ").tick(0, 3);
    std::ostringstream os;
    s.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("committed 10"), std::string::npos);
    EXPECT_NE(out.find("lat n=1"), std::string::npos);
    EXPECT_NE(out.find("occ samples=1"), std::string::npos);
}
