/**
 * @file
 * Sampled simulation (DESIGN §5.8): the systematic-sampling
 * estimator's mean/CI math on synthetic known-variance streams, the
 * PERSPECTIVE_SAMPLE spec grammar, and two pipeline-level
 * guarantees — an infinite detailed window reproduces the
 * fast-forward run bit for bit (the sampling machinery adds nothing
 * but the phase check), and a finite-window sampled run is
 * architecturally indistinguishable from the detailed one even
 * though most instructions retire through the functional path.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/pipeline.hh"
#include "sim/program.hh"
#include "sim/sampling.hh"

using namespace perspective;
using namespace perspective::sim;

namespace
{

PipelineParams
sampledParams(SamplingParams sp)
{
    PipelineParams pp;
    pp.detailedTelemetry = false;
    pp.fastForward = true;
    pp.sampling = sp;
    return pp;
}

void
seedMemory(Memory &mem)
{
    for (unsigned i = 0; i < 64; ++i)
        mem.write(0x100000 + i * 8, i * 3 + 1);
}

/**
 * A counted loop with memory traffic, data-dependent forward
 * branches and a call per iteration: long enough (~10k committed
 * uops) that a small-period sampled run cycles through several
 * skip -> warm -> detailed periods.
 */
Program
loopProgram(unsigned iters)
{
    Program prog;
    FuncId leaf = 1;
    FuncId f = prog.addFunction("main", false);
    prog.addFunction("leaf", true);

    auto &body = prog.func(f).body;
    RegId ctr = 7;
    body.push_back(movImm(ctr, 0));
    std::uint32_t head = static_cast<std::uint32_t>(body.size());
    body.push_back(branchImm(Cond::Ge, ctr,
                             static_cast<std::int64_t>(iters),
                             head + 10));
    body.push_back(loadAbs(2, 0x100000 + 8 * 3));
    body.push_back(add(3, 3, 2));
    body.push_back(store(kNoReg, 0x100200, 3));
    // Odd iterations skip the kernel call, so the branch predictor
    // and the call path both see data-dependent behaviour.
    body.push_back(andImm(8, ctr, 1));
    body.push_back(branchImm(Cond::Eq, 8, 1, head + 8));
    body.push_back(addImm(4, 4, 1));
    body.push_back(call(leaf));
    body.push_back(addImm(ctr, ctr, 1));
    body.push_back(jump(head));
    body.push_back(ret());

    auto &lf = prog.func(leaf).body;
    lf.push_back(loadAbs(5, 0x100000 + 8 * 5));
    lf.push_back(add(6, 6, 5));
    lf.push_back(ret());

    prog.layout();
    return prog;
}

} // namespace

// --------------------------------------------------------------------
// Estimator math

TEST(SamplingEstimator, MeanAndCiOnKnownVarianceStream)
{
    // Window CPIs 1, 2, 3, 4: mean 2.5, sample variance
    // ((1-2.5)^2 + ... + (4-2.5)^2) / 3 = 5/3.
    SamplingEstimator est;
    est.addWindow(100, 100);
    est.addWindow(200, 100);
    est.addWindow(300, 100);
    est.addWindow(400, 100);

    EXPECT_EQ(est.windows(), 4u);
    EXPECT_EQ(est.sampledInsts(), 400u);
    EXPECT_EQ(est.sampledCycles(), 1000u);
    EXPECT_DOUBLE_EQ(est.cpiMean(), 2.5);
    double expect_ci = 1.96 * std::sqrt((5.0 / 3.0) / 4.0);
    EXPECT_NEAR(est.cpiCi95(), expect_ci, 1e-12);
    EXPECT_NEAR(est.relError(), expect_ci / 2.5, 1e-12);
}

TEST(SamplingEstimator, ZeroVarianceStreamHasZeroCi)
{
    SamplingEstimator est;
    for (int i = 0; i < 8; ++i)
        est.addWindow(300, 100);
    EXPECT_DOUBLE_EQ(est.cpiMean(), 3.0);
    // The s^2 estimator is clamped at zero, so float cancellation
    // can never produce a negative variance (and a NaN ci).
    EXPECT_DOUBLE_EQ(est.cpiCi95(), 0.0);
}

TEST(SamplingEstimator, FewerThanTwoWindowsHaveNoCi)
{
    SamplingEstimator est;
    EXPECT_DOUBLE_EQ(est.cpiMean(), 0.0);
    EXPECT_DOUBLE_EQ(est.cpiCi95(), 0.0);
    est.addWindow(250, 100);
    EXPECT_EQ(est.windows(), 1u);
    EXPECT_DOUBLE_EQ(est.cpiMean(), 2.5);
    EXPECT_DOUBLE_EQ(est.cpiCi95(), 0.0); // variance not estimable
}

TEST(SamplingEstimator, IgnoresEmptyWindowsAndResets)
{
    SamplingEstimator est;
    est.addWindow(500, 0); // no instructions: no observation
    EXPECT_EQ(est.windows(), 0u);
    est.addWindow(100, 50);
    est.addWindow(300, 150);
    EXPECT_EQ(est.windows(), 2u);
    est.reset();
    EXPECT_EQ(est.windows(), 0u);
    EXPECT_EQ(est.sampledInsts(), 0u);
    EXPECT_DOUBLE_EQ(est.cpiMean(), 0.0);
}

// --------------------------------------------------------------------
// Spec grammar

TEST(SamplingParams, ParseAndSpecRoundTrip)
{
    EXPECT_FALSE(SamplingParams::parse("").enabled);
    EXPECT_FALSE(SamplingParams::parse("0").enabled);
    EXPECT_FALSE(SamplingParams::parse("off").enabled);
    EXPECT_EQ(SamplingParams::parse("off").spec(), "off");

    SamplingParams def = SamplingParams::parse("1");
    EXPECT_TRUE(def.enabled);
    EXPECT_EQ(def, SamplingParams::parse("on"));
    EXPECT_EQ(def, SamplingParams::parse("default"));
    EXPECT_EQ(def, SamplingParams::parse(def.spec()));

    SamplingParams p = SamplingParams::parse(
        "w=1000,warm=2000,period=9000,seed=7");
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.windowInsts, 1000u);
    EXPECT_EQ(p.warmingInsts, 2000u);
    EXPECT_EQ(p.periodInsts, 9000u);
    EXPECT_EQ(p.seed, 7u);
    EXPECT_EQ(SamplingParams::parse(p.spec()), p);

    SamplingParams inf = SamplingParams::parse("w=inf");
    EXPECT_EQ(inf.windowInsts, SamplingParams::kInfiniteWindow);
    EXPECT_EQ(SamplingParams::parse(inf.spec()), inf);
}

TEST(SamplingParams, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(SamplingParams::parse("bogus"),
                 std::invalid_argument);
    EXPECT_THROW(SamplingParams::parse("w="), std::invalid_argument);
    EXPECT_THROW(SamplingParams::parse("w=12x"),
                 std::invalid_argument);
    EXPECT_THROW(SamplingParams::parse("zzz=5"),
                 std::invalid_argument);
    EXPECT_THROW(SamplingParams::parse("w=0"), std::invalid_argument);
    // Period must fit a window plus its warming.
    EXPECT_THROW(
        SamplingParams::parse("w=5000,warm=6000,period=10000"),
        std::invalid_argument);
}

// --------------------------------------------------------------------
// Pipeline-level guarantees

/**
 * Warming equivalence: with an infinite detailed window the sampling
 * controller never leaves the detailed phase, so the run must be
 * indistinguishable from plain fast-forward — identical cycles,
 * committed uops, architectural state, and every counter.
 */
TEST(SampledPipeline, InfiniteWindowMatchesFastForwardExactly)
{
    Program prog = loopProgram(1500);

    Memory ff_mem;
    seedMemory(ff_mem);
    SamplingParams off;
    Pipeline ff(prog, ff_mem, sampledParams(off));
    auto ff_res = ff.run(0);
    EXPECT_FALSE(ff.sampledMode());

    Memory sm_mem;
    seedMemory(sm_mem);
    SamplingParams sp;
    sp.enabled = true;
    sp.windowInsts = SamplingParams::kInfiniteWindow;
    Pipeline sm(prog, sm_mem, sampledParams(sp));
    auto sm_res = sm.run(0);
    EXPECT_TRUE(sm.sampledMode());

    EXPECT_EQ(ff_res.cycles, sm_res.cycles);
    EXPECT_EQ(ff_res.instructions, sm_res.instructions);
    EXPECT_EQ(sm.sampler().windows(), 0u); // never left the window
    for (unsigned r = 1; r <= 9; ++r)
        EXPECT_EQ(ff.regValue(r), sm.regValue(r)) << "reg " << r;
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(ff_mem.read(0x100000 + i * 8),
                  sm_mem.read(0x100000 + i * 8))
            << "slot " << i;
    for (const auto &[name, value] : ff.stats().all())
        EXPECT_EQ(value, sm.stats().get(name)) << "counter " << name;
    for (const auto &[name, value] : sm.stats().all())
        EXPECT_EQ(ff.stats().get(name), value) << "counter " << name;
}

/**
 * Functional correctness under real sampling: the phase machine must
 * retire most instructions through the functional path (cheap) while
 * leaving architectural state — registers, memory, committed-uop
 * count — identical to the detailed run's. Timing is an estimate by
 * design and is not compared.
 */
TEST(SampledPipeline, FiniteWindowsPreserveArchitecturalState)
{
    Program prog = loopProgram(1500);

    Memory ref_mem;
    seedMemory(ref_mem);
    PipelineParams ref_pp;
    ref_pp.detailedTelemetry = false;
    Pipeline ref(prog, ref_mem, ref_pp);
    auto ref_res = ref.run(0);

    Memory sm_mem;
    seedMemory(sm_mem);
    SamplingParams sp;
    sp.enabled = true;
    sp.windowInsts = 400;
    sp.warmingInsts = 600;
    sp.periodInsts = 2500;
    Pipeline sm(prog, sm_mem, sampledParams(sp));
    auto sm_res = sm.run(0);
    ASSERT_TRUE(sm.sampledMode());

    EXPECT_EQ(ref_res.instructions, sm_res.instructions);
    for (unsigned r = 1; r <= 9; ++r)
        EXPECT_EQ(ref.regValue(r), sm.regValue(r)) << "reg " << r;
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(ref_mem.read(0x100000 + i * 8),
                  sm_mem.read(0x100000 + i * 8))
            << "slot " << i;
    EXPECT_EQ(ref_mem.read(0x100200), sm_mem.read(0x100200));

    // The estimator actually sampled: at least two windows closed,
    // and the detailed fraction is a strict subset of the stream.
    const SamplingEstimator &est = sm.sampler();
    EXPECT_GE(est.windows(), 2u);
    EXPECT_LT(est.sampledInsts(), sm_res.instructions);
    EXPECT_GT(est.cpiMean(), 0.0);

    // The CPI estimate lands near the truth for this uniform loop.
    double exact_cpi = static_cast<double>(ref_res.cycles) /
                       static_cast<double>(ref_res.instructions);
    EXPECT_NEAR(est.cpiMean(), exact_cpi, 0.25 * exact_cpi);
}
