/**
 * @file
 * Parameterized property sweeps over cache geometries: containment,
 * LRU, capacity, and flush invariants must hold for every (size,
 * associativity) combination.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/cache.hh"

using namespace perspective::sim;

namespace
{

struct CacheGeometry
    : ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
    CacheParams
    params() const
    {
        auto [size_kb, assoc] = GetParam();
        return {"p", size_kb * 1024, 64, assoc, 2};
    }
};

} // namespace

TEST_P(CacheGeometry, FillThenProbeAlwaysHits)
{
    Cache c(params());
    for (Addr a = 0; a < 64 * 1024; a += 4096) {
        c.fill(a);
        EXPECT_TRUE(c.probe(a)) << a;
    }
}

TEST_P(CacheGeometry, CapacityIsRespected)
{
    CacheParams p = params();
    Cache c(p);
    unsigned lines = p.size_bytes / p.line_bytes;
    // Fill twice the capacity with distinct lines...
    for (unsigned i = 0; i < 2 * lines; ++i)
        c.fill(Addr{i} * p.line_bytes);
    // ...then at most `lines` of them can be resident.
    unsigned resident = 0;
    for (unsigned i = 0; i < 2 * lines; ++i) {
        if (c.probe(Addr{i} * p.line_bytes))
            ++resident;
    }
    EXPECT_LE(resident, lines);
    EXPECT_GT(resident, lines / 2); // and not pathologically few
}

TEST_P(CacheGeometry, MostRecentLineSurvivesConflictPressure)
{
    CacheParams p = params();
    Cache c(p);
    unsigned sets = p.size_bytes / (p.line_bytes * p.assoc);
    Addr way_stride = Addr{sets} * p.line_bytes;
    // Touch assoc+2 conflicting lines; the most recent must survive.
    Addr last = 0;
    for (unsigned w = 0; w < p.assoc + 2; ++w) {
        last = Addr{w} * way_stride;
        c.fill(last);
    }
    EXPECT_TRUE(c.probe(last));
}

TEST_P(CacheGeometry, FlushAllEmptiesEverything)
{
    CacheParams p = params();
    Cache c(p);
    for (unsigned i = 0; i < 128; ++i)
        c.fill(Addr{i} * p.line_bytes);
    c.flushAll();
    for (unsigned i = 0; i < 128; ++i)
        EXPECT_FALSE(c.probe(Addr{i} * p.line_bytes));
}

TEST_P(CacheGeometry, AccessCountsAreConsistent)
{
    Cache c(params());
    std::uint64_t expected_hits = 0, expected_misses = 0;
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < 8; ++i) {
            Addr a = Addr{i} * 64;
            bool hit = c.probe(a); // ground truth before access
            if (c.access(a)) {
                EXPECT_TRUE(hit);
                ++expected_hits;
            } else {
                EXPECT_FALSE(hit);
                ++expected_misses;
                c.fill(a);
            }
        }
    }
    EXPECT_EQ(c.hits(), expected_hits);
    EXPECT_EQ(c.misses(), expected_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(4u, 8u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)));
