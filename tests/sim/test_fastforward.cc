/**
 * @file
 * Differential validation of fast-forward execution (DESIGN §5.5):
 * for randomly generated programs — arithmetic, memory traffic,
 * branches, loops, calls across the user/kernel boundary, indirect
 * calls including wild targets — a pipeline running with
 * PipelineParams::fastForward enabled must be indistinguishable from
 * one running the detailed loop: identical cycle count, identical
 * committed-uop count, identical architectural state, identical
 * counters and histograms (the ff.* meta-counters excepted, which
 * exist precisely to report how much the replica covered).
 */

#include <gtest/gtest.h>

#include "defenses/schemes.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"

using namespace perspective;
using namespace perspective::sim;

namespace
{

/** Deterministic program generator (splitmix64-driven). */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : state_(seed * 37 + 11) {}

    std::uint64_t
    rnd(std::uint64_t bound)
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return bound ? z % bound : z;
    }

    /**
     * Function 0 is a user entry; higher-numbered functions are
     * kernel, so call chains cross the privilege boundary and charge
     * entry/exit microcode stalls — both paths a fast-forward region
     * must reproduce cycle-exactly. Long straight-line stretches are
     * generated on purpose: regions only commit work when a block
     * outlives the first fetch window.
     */
    Program
    make(unsigned nfuncs)
    {
        Program prog;
        for (unsigned f = 0; f < nfuncs; ++f)
            prog.addFunction("f" + std::to_string(f), f != 0);
        for (unsigned f = 0; f < nfuncs; ++f) {
            auto &body = prog.func(f).body;
            unsigned n_ops = 8 + static_cast<unsigned>(rnd(24));
            for (unsigned i = 0; i < n_ops; ++i) {
                switch (rnd(8)) {
                  case 0:
                    body.push_back(movImm(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<std::int64_t>(rnd(1000))));
                    break;
                  case 1:
                    body.push_back(add(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6))));
                    break;
                  case 2:
                    body.push_back(store(
                        kNoReg,
                        static_cast<std::int64_t>(
                            0x100000 + rnd(64) * 8),
                        static_cast<RegId>(1 + rnd(6))));
                    break;
                  case 3:
                    body.push_back(loadAbs(
                        static_cast<RegId>(1 + rnd(6)),
                        0x100000 + rnd(64) * 8));
                    break;
                  case 4: {
                    // Forward branch over the next instruction.
                    std::uint32_t target =
                        static_cast<std::uint32_t>(body.size() + 2);
                    body.push_back(branchImm(
                        static_cast<Cond>(rnd(4)),
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<std::int64_t>(rnd(500)), target));
                    body.push_back(addImm(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6)), 1));
                    break;
                  }
                  case 5:
                    if (f + 1 < nfuncs) {
                        body.push_back(call(static_cast<FuncId>(
                            f + 1 + rnd(nfuncs - f - 1))));
                    } else {
                        body.push_back(nop());
                    }
                    break;
                  case 6:
                    // Indirect call: mostly a valid callee, sometimes
                    // a wild pointer (architected no-op call).
                    if (f + 1 < nfuncs && rnd(4) != 0) {
                        body.push_back(movImm(
                            9, static_cast<std::int64_t>(
                                   f + 1 + rnd(nfuncs - f - 1))));
                    } else {
                        body.push_back(
                            movImm(9, 0x7fffffff + rnd(100)));
                    }
                    body.push_back(indirectCall(9));
                    break;
                  default:
                    body.push_back(addImm(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<std::int64_t>(rnd(64))));
                    break;
                }
            }
            // A bounded counted loop at the end of some functions.
            if (rnd(2)) {
                RegId ctr = 7;
                std::uint32_t head =
                    static_cast<std::uint32_t>(body.size() + 1);
                body.push_back(movImm(ctr, 0));
                body.push_back(branchImm(
                    Cond::Ge, ctr,
                    static_cast<std::int64_t>(2 + rnd(12)),
                    static_cast<std::uint32_t>(body.size() + 4)));
                body.push_back(loadAbs(8, 0x100000 + rnd(64) * 8));
                body.push_back(addImm(ctr, ctr, 1));
                body.push_back(jump(head));
            }
            body.push_back(ret());
        }
        prog.layout();
        return prog;
    }

  private:
    std::uint64_t state_;
};

PipelineParams
quietParams(bool ff)
{
    PipelineParams pp;
    // Fast-forward only engages without per-cycle telemetry; the
    // reference runs with the same setting so every remaining stat
    // is comparable one-to-one.
    pp.detailedTelemetry = false;
    pp.fastForward = ff;
    return pp;
}

void
seedMemory(Memory &mem)
{
    for (unsigned i = 0; i < 64; ++i)
        mem.write(0x100000 + i * 8, i * 3 + 1);
}

/** Harness-side counters the two modes may legitimately disagree
 * on: ff.* (the replica's own accounting) and sb.cache.* (the
 * fast-forward engine takes extra superblock-cache lookups). */
bool
harnessCounter(const std::string &name)
{
    return name.rfind("ff.", 0) == 0 ||
           name.rfind("sb.cache.", 0) == 0;
}

/** Everything but the harness meta-counters must match exactly. */
void
expectSameStats(StatSet &ref, StatSet &ff, const char *scheme,
                std::uint64_t seed)
{
    for (const auto &[name, value] : ref.all()) {
        if (harnessCounter(name))
            continue;
        EXPECT_EQ(value, ff.get(name))
            << scheme << " seed " << seed << " counter " << name;
    }
    for (const auto &[name, value] : ff.all()) {
        if (harnessCounter(name))
            continue;
        EXPECT_EQ(ref.get(name), value)
            << scheme << " seed " << seed << " counter " << name;
    }
    for (const auto &[name, h] : ref.allHistograms()) {
        auto it = ff.allHistograms().find(name);
        ASSERT_NE(it, ff.allHistograms().end())
            << scheme << " seed " << seed << " histogram " << name;
        const Histogram &o = it->second;
        EXPECT_EQ(h.count(), o.count())
            << scheme << " seed " << seed << " histogram " << name;
        EXPECT_EQ(h.min(), o.min())
            << scheme << " seed " << seed << " histogram " << name;
        EXPECT_EQ(h.max(), o.max())
            << scheme << " seed " << seed << " histogram " << name;
        EXPECT_DOUBLE_EQ(h.mean(), o.mean())
            << scheme << " seed " << seed << " histogram " << name;
    }
}

struct FastForwardDifferential
    : ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(FastForwardDifferential, IndistinguishableUnderEveryScheme)
{
    std::uint64_t seed = GetParam();
    ProgramGen gen(seed);
    Program prog = gen.make(5 + seed % 4);

    defenses::FencePolicy fence;
    defenses::DomPolicy dom;
    defenses::SttPolicy stt;
    defenses::SpotMitigationPolicy spot;
    std::vector<std::pair<const char *, SpeculationPolicy *>>
        schemes = {{"unsafe", nullptr}, {"fence", &fence},
                   {"dom", &dom},       {"stt", &stt},
                   {"spot", &spot}};

    for (auto [name, policy] : schemes) {
        Memory ref_mem;
        seedMemory(ref_mem);
        Pipeline ref(prog, ref_mem, quietParams(false));
        ref.setPolicy(policy);
        auto ref_res = ref.run(0);

        Memory ff_mem;
        seedMemory(ff_mem);
        Pipeline ff(prog, ff_mem, quietParams(true));
        ff.setPolicy(policy);
        auto ff_res = ff.run(0);

        EXPECT_EQ(ref_res.cycles, ff_res.cycles)
            << name << " seed " << seed;
        EXPECT_EQ(ref_res.instructions, ff_res.instructions)
            << name << " seed " << seed;
        for (unsigned r = 1; r <= 9; ++r) {
            EXPECT_EQ(ref.regValue(r), ff.regValue(r))
                << name << " seed " << seed << " reg " << r;
        }
        for (unsigned i = 0; i < 64; ++i) {
            EXPECT_EQ(ref_mem.read(0x100000 + i * 8),
                      ff_mem.read(0x100000 + i * 8))
                << name << " seed " << seed << " slot " << i;
        }
        expectSameStats(ref.stats(), ff.stats(), name, seed);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FastForwardDifferential,
                         ::testing::Range<std::uint64_t>(1, 33));

/**
 * A long straight-line region must actually be executed by the
 * fast-forward replica (not just materialized at the first fetch
 * window) and still match the detailed loop bit for bit.
 */
TEST(FastForward, LongRegionCommitsThroughReplica)
{
    Program prog;
    FuncId f = prog.addFunction("main", false);
    auto &body = prog.func(f).body;
    body.push_back(movImm(1, 5));
    for (unsigned i = 0; i < 40; ++i) {
        body.push_back(addImm(1, 1, 3));
        if (i % 4 == 0)
            body.push_back(loadAbs(2, 0x100000 + (i % 8) * 8));
        if (i % 8 == 0)
            body.push_back(store(kNoReg, 0x100200 + i * 8, 1));
    }
    body.push_back(ret());
    prog.layout();

    Memory ref_mem, ff_mem;
    seedMemory(ref_mem);
    seedMemory(ff_mem);
    Pipeline ref(prog, ref_mem, quietParams(false));
    Pipeline ff(prog, ff_mem, quietParams(true));
    auto ref_res = ref.run(f);
    auto ff_res = ff.run(f);

    EXPECT_EQ(ref_res.cycles, ff_res.cycles);
    EXPECT_EQ(ref_res.instructions, ff_res.instructions);
    EXPECT_EQ(ref.regValue(1), ff.regValue(1));
    EXPECT_GT(ff.stats().get("ff.entries"), 0u);
    EXPECT_GT(ff.stats().get("ff.uops"), 0u)
        << "the replica should commit work for a 40-op block";
    expectSameStats(ref.stats(), ff.stats(), "unsafe", 0);
}

/**
 * Wild indirect-call targets resolve to an architected no-op call —
 * the rule shared between the interpreter and the pipeline
 * (sim/superblock.hh validCallTarget) — in both execution modes.
 */
TEST(FastForward, WildIndirectTargetMatchesAcrossModes)
{
    Program prog;
    FuncId f = prog.addFunction("main", false);
    prog.func(f).body = {
        movImm(1, 0x7fffffff), // not a function id
        indirectCall(1),
        movImm(2, 1),
        ret(),
    };
    prog.layout();

    Memory ref_mem, ff_mem;
    Pipeline ref(prog, ref_mem, quietParams(false));
    Pipeline ff(prog, ff_mem, quietParams(true));
    auto ref_res = ref.run(f);
    auto ff_res = ff.run(f);

    // The wild call architecturally skips to fall-through: the next
    // op commits in both modes, with identical timing.
    EXPECT_EQ(ref.regValue(2), 1u);
    EXPECT_EQ(ff.regValue(2), 1u);
    EXPECT_EQ(ref_res.cycles, ff_res.cycles);
    EXPECT_EQ(ref_res.instructions, ff_res.instructions);
}
