#include <gtest/gtest.h>

#include "sim/covert.hh"

using namespace perspective::sim;

namespace
{

struct CovertFixture : ::testing::Test
{
    CacheHierarchy caches{defaultL1I(), defaultL1D(), defaultL2(),
                          100};
    FlushReload fr{caches, 0x2000'0000};
};

} // namespace

TEST_F(CovertFixture, RecoversSingleTouchedSlot)
{
    fr.prime();
    caches.accessData(fr.slotAddr(42));
    auto sym = fr.recover();
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, 42u);
}

TEST_F(CovertFixture, NoTouchNoSignal)
{
    fr.prime();
    EXPECT_FALSE(fr.recover().has_value());
}

TEST_F(CovertFixture, AmbiguousWhenTwoSlotsTouched)
{
    fr.prime();
    caches.accessData(fr.slotAddr(1));
    caches.accessData(fr.slotAddr(2));
    EXPECT_FALSE(fr.recover().has_value());
}

TEST_F(CovertFixture, PrimeClearsResidue)
{
    caches.accessData(fr.slotAddr(7));
    fr.prime();
    EXPECT_FALSE(fr.recover().has_value());
}

TEST_F(CovertFixture, SlotsAreStridedPastPrefetchReach)
{
    EXPECT_EQ(fr.slotAddr(1) - fr.slotAddr(0), FlushReload::kStride);
    EXPECT_GE(FlushReload::kStride, 4096u);
}

TEST_F(CovertFixture, L2ResidencyAlsoCounts)
{
    // Flush+Reload thresholds classify L2 hits as "touched" too —
    // a transient line that was evicted from L1 but survives in L2
    // still leaks.
    fr.prime();
    caches.accessData(fr.slotAddr(9));
    caches.l1d().flush(fr.slotAddr(9));
    auto sym = fr.recover();
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, 9u);
}

TEST_F(CovertFixture, NarrowSymbolSpace)
{
    FlushReload small(caches, 0x3000'0000, 16);
    small.prime();
    caches.accessData(small.slotAddr(15));
    auto sym = small.recover();
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, 15u);
}
