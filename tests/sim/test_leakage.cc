/**
 * @file
 * LeakLedger unit tests: source-slot allocation and overflow
 * refcounting, per-source byte dedupe, window attribution, gadget
 * aggregation, and snapshot/restore rewind (DESIGN §5.6).
 */

#include <gtest/gtest.h>

#include "sim/leakage.hh"

using namespace perspective::sim;

namespace
{

constexpr FuncId kF = 7;
constexpr FuncId kEntry = 3;

std::uint8_t
addSource(LeakLedger &l, Addr va = 0x1000, Addr pc = 0x40,
          LeakWindow w = LeakWindow::Baseline)
{
    return l.noteSecretLoad(va, pc, kF, kEntry, w);
}

} // namespace

TEST(LeakLedger, ArmedNeedsClassifierAndEnable)
{
    LeakLedger l;
    EXPECT_TRUE(l.enabled());
    EXPECT_FALSE(l.armed()); // no classifier yet
    l.setClassifier([](Addr, FuncId, Asid, Cycle) {
        return SecretVerdict{true, LeakWindow::Baseline};
    });
    EXPECT_TRUE(l.armed());
    l.setEnabled(false);
    EXPECT_FALSE(l.armed());
}

TEST(LeakLedger, SourceSlotsAreDistinctAndReusedAfterRetire)
{
    LeakLedger l;
    std::uint8_t a = addSource(l);
    std::uint8_t b = addSource(l);
    EXPECT_NE(a, b);
    EXPECT_LT(a, LeakLedger::kOverflowBit);
    EXPECT_LT(b, LeakLedger::kOverflowBit);

    l.retireSource(a);
    std::uint8_t c = addSource(l);
    EXPECT_LT(c, LeakLedger::kOverflowBit);

    LeakageSummary s = l.summary();
    EXPECT_EQ(s.secretLoads, 3u);
    EXPECT_EQ(s.bytesAtRisk, 24u);
    EXPECT_EQ(s.taintOverflows, 0u);
}

TEST(LeakLedger, OverflowSlotRefcountsLifetimes)
{
    LeakLedger l;
    for (unsigned i = 0; i < LeakLedger::kOverflowBit; ++i)
        EXPECT_LT(addSource(l), LeakLedger::kOverflowBit);

    // Slots exhausted: the next two land on the shared overflow bit.
    std::uint8_t o1 = addSource(l, 0x2000);
    std::uint8_t o2 = addSource(l, 0x3000);
    EXPECT_EQ(o1, LeakLedger::kOverflowBit);
    EXPECT_EQ(o2, LeakLedger::kOverflowBit);
    EXPECT_EQ(l.summary().taintOverflows, 2u);

    // One retirement keeps the aggregate alive; the second kills it.
    l.retireSource(o1);
    l.noteTransmission(std::uint64_t{1} << LeakLedger::kOverflowBit,
                       LeakChannel::CacheInstall, 0x80, kF);
    EXPECT_EQ(l.summary().transmissions, 1u);
    l.retireSource(o2);
    l.noteTransmission(std::uint64_t{1} << LeakLedger::kOverflowBit,
                       LeakChannel::CacheInstall, 0x80, kF);
    EXPECT_EQ(l.summary().transmissions, 1u); // dead: no new count
}

TEST(LeakLedger, BytesDedupePerSourceButEventsAccumulate)
{
    LeakLedger l;
    std::uint8_t a = addSource(l);
    std::uint64_t mask = std::uint64_t{1} << a;

    l.noteTransmission(mask, LeakChannel::CacheInstall, 0x80, kF);
    l.noteTransmission(mask, LeakChannel::TlbFill, 0x84, kF);
    l.noteTransmission(mask, LeakChannel::CacheInstall, 0x80, kF);

    LeakageSummary s = l.summary();
    EXPECT_EQ(s.transmissions, 3u);
    EXPECT_EQ(s.bytesTransmitted, 8u); // one secret value, once
    EXPECT_EQ(s.channelCacheInstall, 2u);
    EXPECT_EQ(s.channelTlbFill, 1u);
}

TEST(LeakLedger, StaleTaintBitsAreIgnored)
{
    LeakLedger l;
    std::uint8_t a = addSource(l);
    l.retireSource(a);
    l.noteTransmission(std::uint64_t{1} << a,
                       LeakChannel::CacheInstall, 0x80, kF);
    LeakageSummary s = l.summary();
    EXPECT_EQ(s.transmissions, 0u);
    EXPECT_EQ(s.channelCacheInstall, 0u);
}

TEST(LeakLedger, WindowRowsAttributeLoadsAndBytes)
{
    LeakLedger l;
    std::uint8_t a =
        addSource(l, 0x1000, 0x40, LeakWindow::Revocation);
    addSource(l, 0x1100, 0x44, LeakWindow::FleetFlip);
    l.noteTransmission(std::uint64_t{1} << a,
                       LeakChannel::CacheInstall, 0x80, kF);

    LeakageSummary s = l.summary();
    const auto &rev =
        s.windows[static_cast<unsigned>(LeakWindow::Revocation)];
    const auto &flip =
        s.windows[static_cast<unsigned>(LeakWindow::FleetFlip)];
    EXPECT_EQ(rev.secretLoads, 1u);
    EXPECT_EQ(rev.transmissions, 1u);
    EXPECT_EQ(rev.bytesTransmitted, 8u);
    EXPECT_EQ(flip.secretLoads, 1u);
    EXPECT_EQ(flip.transmissions, 0u);
}

TEST(LeakLedger, GadgetTableSortsByBytesAndKeepsAttribution)
{
    LeakLedger l;
    // Gadget at 0x80 transmits two distinct sources; 0x90 one.
    std::uint8_t a = addSource(l, 0x1000);
    std::uint8_t b = addSource(l, 0x1100);
    std::uint8_t c = addSource(l, 0x1200);
    l.noteTransmission((std::uint64_t{1} << a) |
                           (std::uint64_t{1} << b),
                       LeakChannel::CacheInstall, 0x80, kF);
    l.noteTransmission(std::uint64_t{1} << c,
                       LeakChannel::CacheInstall, 0x90, kF);

    LeakageSummary s = l.summary();
    ASSERT_EQ(s.topGadgets.size(), 2u);
    EXPECT_EQ(s.topGadgets[0].pc, 0x80u);
    EXPECT_EQ(s.topGadgets[0].bytesTransmitted, 16u);
    EXPECT_EQ(s.topGadgets[0].func, kF);
    EXPECT_EQ(s.topGadgets[0].entryFunc, kEntry);
    EXPECT_EQ(s.topGadgets[1].pc, 0x90u);
}

TEST(LeakLedger, SnapshotRestoreRewindsAccounting)
{
    LeakLedger l;
    std::uint8_t a = addSource(l);
    auto snap = l.snapshot();

    l.noteTransmission(std::uint64_t{1} << a,
                       LeakChannel::CacheInstall, 0x80, kF);
    addSource(l, 0x2000);
    EXPECT_EQ(l.summary().secretLoads, 2u);
    EXPECT_EQ(l.summary().bytesTransmitted, 8u);

    l.restore(snap);
    LeakageSummary s = l.summary();
    EXPECT_EQ(s.secretLoads, 1u);
    EXPECT_EQ(s.transmissions, 0u);
    EXPECT_EQ(s.bytesTransmitted, 0u);

    // The restored source is live again and can still transmit.
    l.noteTransmission(std::uint64_t{1} << a,
                       LeakChannel::CacheInstall, 0x80, kF);
    EXPECT_EQ(l.summary().bytesTransmitted, 8u);
}

TEST(LeakLedger, ResetClearsEverythingButKeepsWiring)
{
    LeakLedger l;
    l.setClassifier([](Addr, FuncId, Asid, Cycle) {
        return SecretVerdict{};
    });
    std::uint8_t a = addSource(l);
    l.noteTransmission(std::uint64_t{1} << a,
                       LeakChannel::TlbFill, 0x80, kF);
    l.reset();
    EXPECT_TRUE(l.summary().empty());
    EXPECT_TRUE(l.armed()); // wiring survives the per-run reset
}
