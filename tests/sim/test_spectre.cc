/**
 * @file
 * End-to-end transient-execution attacks on the bare simulator:
 * Spectre v1 (bounds-check bypass) and Spectre v2 (BTB injection),
 * each exfiltrating through Flush+Reload, plus checks that the
 * baseline hardware defenses neutralize them.
 */

#include <gtest/gtest.h>

#include "defenses/schemes.hh"
#include "sim/covert.hh"
#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"

using namespace perspective::sim;
using namespace perspective::defenses;

namespace
{

constexpr Addr kArray1 = 0x600000;
constexpr Addr kSizeAddr = 0x610000;
constexpr Addr kProbeBase = 0x10000000;
constexpr Addr kFptrAddr = 0x620000;
constexpr Addr kSecretAddr = 0x630000;
constexpr unsigned kSecret = 42;
constexpr std::int64_t kOob = 0x1000; // &secret - &array1 for v1

/** Spectre v1 victim: if (idx < size) y = probe[array1[idx] << 12]. */
struct V1Machine
{
    Program prog;
    Memory mem;
    FuncId victim;

    V1Machine()
    {
        victim = prog.addFunction("v1_victim", false);
        prog.func(victim).body = {
            // r1 = idx (argument)
            loadAbs(2, kSizeAddr),               // 0: size (flushable)
            branch(Cond::Ge, 1, 2, 7),           // 1: bounds check
            addImm(4, 1, kArray1),               // 2
            load(3, 4, 0),                       // 3: access
            shlImm(5, 3, 12),                    // 4
            addImm(6, 5, kProbeBase),            // 5
            load(7, 6, 0),                       // 6: transmit
            ret(),                               // 7
        };
        prog.layout();
        mem.write(kSizeAddr, 16);
        for (int i = 0; i < 16; ++i)
            mem.write(kArray1 + i, 1);
        mem.write(kArray1 + kOob, kSecret); // victim's secret
    }

    /** Run the full attack; returns the recovered symbol (if any). */
    std::optional<unsigned>
    attack(SpeculationPolicy *policy)
    {
        Pipeline cpu(prog, mem);
        if (policy)
            cpu.setPolicy(policy);
        FlushReload fr(cpu.caches(), kProbeBase);

        // 1. Mistrain the bounds check with in-bounds indices.
        for (int i = 0; i < 24; ++i) {
            cpu.setReg(1, i % 16);
            cpu.run(victim);
        }
        // 2. The secret line is warm (victim uses its own data).
        cpu.caches().accessData(kArray1 + kOob);
        // 3. Flush the size variable (widens the transient window)
        //    and prime the probe array.
        cpu.caches().flush(kSizeAddr);
        fr.prime();
        // 4. Out-of-bounds invocation.
        cpu.setReg(1, kOob);
        cpu.run(victim);
        // 5. Reload.
        return fr.recover();
    }
};

/** Spectre v2 victim: fp = *fptr; (*fp)(); with a BTB-injected fp. */
struct V2Machine
{
    Program prog;
    Memory mem;
    FuncId victim;
    FuncId legit;
    FuncId gadget;

    V2Machine()
    {
        legit = prog.addFunction("legit", false);
        gadget = prog.addFunction("gadget", false);
        victim = prog.addFunction("v2_victim", false);
        prog.func(legit).body = {movImm(9, 1), ret()};
        prog.func(gadget).body = {
            loadAbs(3, kSecretAddr),
            shlImm(5, 3, 12),
            addImm(6, 5, kProbeBase),
            load(7, 6, 0), // transmit
            ret(),
        };
        prog.func(victim).body = {
            loadAbs(1, kFptrAddr), // flushable -> wide window
            indirectCall(1),
            ret(),
        };
        prog.layout();
        mem.write(kFptrAddr, legit);
        mem.write(kSecretAddr, kSecret);
    }

    std::optional<unsigned>
    attack(SpeculationPolicy *policy)
    {
        Pipeline cpu(prog, mem);
        if (policy)
            cpu.setPolicy(policy);
        FlushReload fr(cpu.caches(), kProbeBase);

        // Warm run so the icall's own path is trained/cached.
        cpu.run(victim);
        // Attacker poisons the BTB entry of the victim's indirect
        // call (models mistraining through an aliased branch).
        Addr icall_pc = prog.func(victim).instAddr(1);
        cpu.btb().update(icall_pc, gadget);
        // Victim's secret is warm; the function pointer is flushed.
        cpu.caches().accessData(kSecretAddr);
        cpu.caches().flush(kFptrAddr);
        fr.prime();
        cpu.run(victim);
        return fr.recover();
    }
};

} // namespace

TEST(SpectreV1, LeaksOnUnsafeHardware)
{
    V1Machine m;
    auto sym = m.attack(nullptr);
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, kSecret);
}

TEST(SpectreV1, ArchitecturalResultUnaffected)
{
    // The out-of-bounds call must not architecturally write r7 with
    // probe data: the bounds check architecturally skips the body.
    V1Machine m;
    Pipeline cpu(m.prog, m.mem);
    cpu.setReg(1, kOob);
    cpu.setReg(7, 0xdeadbeef);
    cpu.run(m.victim);
    EXPECT_EQ(cpu.regValue(7), 0xdeadbeefu);
}

TEST(SpectreV1, FenceBlocksLeak)
{
    V1Machine m;
    FencePolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV1, DomBlocksLeak)
{
    // The transmit load misses (probe was flushed) -> delayed.
    V1Machine m;
    DomPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV1, SttBlocksLeak)
{
    // The transmit address is tainted by the speculative access load.
    V1Machine m;
    SttPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV1, SpotMitigationsDoNotBlockV1)
{
    // KPTI + retpoline are spot fixes for Meltdown/v2; v1 still leaks.
    V1Machine m;
    SpotMitigationPolicy p;
    auto sym = m.attack(&p);
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, kSecret);
}

TEST(SpectreV2, LeaksOnUnsafeHardware)
{
    V2Machine m;
    auto sym = m.attack(nullptr);
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, kSecret);
}

TEST(SpectreV2, ArchitecturalCallStillDispatchesCorrectly)
{
    V2Machine m;
    Pipeline cpu(m.prog, m.mem);
    Addr icall_pc = m.prog.func(m.victim).instAddr(1);
    cpu.btb().update(icall_pc, m.gadget);
    cpu.setReg(9, 0);
    cpu.run(m.victim);
    EXPECT_EQ(cpu.regValue(9), 1u); // legit ran architecturally
}

TEST(SpectreV2, FenceBlocksLeak)
{
    V2Machine m;
    FencePolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV2, SttBlocksLeak)
{
    // gadget's secret load executes but its transmit is tainted.
    V2Machine m;
    SttPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV2, RetpolineBlocksLeak)
{
    // Retpoline suppresses BTB prediction entirely for icalls.
    V2Machine m;
    SpotMitigationPolicy p(0, true);
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(FlushReload, NoSignalWithoutTransmission)
{
    Program prog;
    FuncId f = prog.addFunction("quiet", false);
    prog.func(f).body = {movImm(1, 3), ret()};
    prog.layout();
    Memory mem;
    Pipeline cpu(prog, mem);
    FlushReload fr(cpu.caches(), kProbeBase);
    fr.prime();
    cpu.run(f);
    EXPECT_FALSE(fr.recover().has_value());
}

TEST(SpectreV1, InvisiSpecBlocksLeakButExecutes)
{
    // Invisible speculation: the transient loads run (no stall) but
    // leave no cache trace, so Flush+Reload recovers nothing.
    V1Machine m;
    InvisiSpecPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV2, InvisiSpecBlocksLeak)
{
    V2Machine m;
    InvisiSpecPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreV1, InvisiSpecPreservesArchitecture)
{
    V1Machine m;
    Pipeline cpu(m.prog, m.mem);
    InvisiSpecPolicy p;
    cpu.setPolicy(&p);
    cpu.setReg(1, 3); // in bounds
    cpu.run(m.victim);
    EXPECT_EQ(cpu.regValue(3), 1u); // array1[3]
}

namespace
{

/** Retbleed machine: deep recursion underflows the RSB; the BTB
 * fallback is poisoned with a disclosure gadget. */
struct RsbMachine
{
    Program prog;
    Memory mem;
    FuncId rec;
    FuncId gadget;

    RsbMachine()
    {
        gadget = prog.addFunction("gadget", false);
        rec = prog.addFunction("rec", false);
        prog.func(gadget).body = {
            loadAbs(3, kSecretAddr),
            shlImm(5, 3, 12),
            addImm(6, 5, kProbeBase),
            load(7, 6, 0),
            ret(),
        };
        prog.func(rec).body = {
            branchImm(Cond::Eq, 1, 0, 4),
            addImm(1, 1, -1),
            nop(),
            call(rec),
            ret(), // 4: the poisoned return site
        };
        prog.layout();
        mem.write(kSecretAddr, kSecret);
    }

    std::optional<unsigned>
    attack(SpeculationPolicy *policy)
    {
        Pipeline cpu(prog, mem);
        if (policy)
            cpu.setPolicy(policy);
        FlushReload fr(cpu.caches(), kProbeBase);

        Addr ret_pc = prog.func(rec).instAddr(4);
        cpu.btb().update(ret_pc, gadget);

        std::optional<unsigned> sym;
        for (int attempt = 0; attempt < 3 && !sym; ++attempt) {
            cpu.caches().accessData(kSecretAddr);
            // Evict the deep return-address slots (cross-core
            // eviction) to widen the windows.
            for (unsigned d = 0; d < 40; ++d)
                cpu.caches().flush(cpu.kernelStackBase() - 8 * d);
            fr.prime();
            cpu.setReg(1, 24); // depth 24 > 16 RSB entries
            cpu.run(rec);
            sym = fr.recover();
        }
        return sym;
    }
};

} // namespace

TEST(SpectreRsb, UnderflowLeaksOnUnsafeHardware)
{
    RsbMachine m;
    auto sym = m.attack(nullptr);
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(*sym, kSecret);
}

TEST(SpectreRsb, RetpolineDoesNotCoverReturns)
{
    RsbMachine m;
    SpotMitigationPolicy p(0, true);
    auto sym = m.attack(&p);
    ASSERT_TRUE(sym.has_value()); // Retbleed's gap
    EXPECT_EQ(*sym, kSecret);
}

TEST(SpectreRsb, ShadowStackBlocksUnderflowHijack)
{
    RsbMachine m;
    SpecCfiPolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}

TEST(SpectreRsb, FenceBlocksLeak)
{
    RsbMachine m;
    FencePolicy p;
    EXPECT_FALSE(m.attack(&p).has_value());
}
