#include <gtest/gtest.h>

#include "sim/predictor.hh"

using namespace perspective::sim;

TEST(CondPredictor, LearnsStronglyBiasedBranch)
{
    CondPredictor p;
    Addr pc = 0xffff800000001000;
    for (int i = 0; i < 16; ++i) {
        p.update(pc, true, p.history());
        p.speculate(true);
    }
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 16; ++i) {
        p.update(pc, false, p.history());
        p.speculate(false);
    }
    EXPECT_FALSE(p.predict(pc));
}

TEST(CondPredictor, MistrainingCarriesToNextPrediction)
{
    // The Spectre v1 primitive: bias the branch toward not-taken so
    // that a later out-of-bounds invocation falls through.
    CondPredictor p;
    Addr pc = 0xffff800000002000;
    for (int i = 0; i < 32; ++i) {
        p.update(pc, false, p.history());
        p.speculate(false);
    }
    EXPECT_FALSE(p.predict(pc));
}

TEST(CondPredictor, HistoryCheckpointRestore)
{
    CondPredictor p;
    std::uint64_t h0 = p.history();
    p.speculate(true);
    p.speculate(false);
    EXPECT_NE(p.history(), h0);
    p.restoreHistory(h0);
    EXPECT_EQ(p.history(), h0);
}

TEST(Btb, InstallAndPredict)
{
    Btb b(64);
    Addr pc = 0xffff800000003000;
    EXPECT_EQ(b.predict(pc), kNoFunc);
    b.update(pc, 42);
    EXPECT_EQ(b.predict(pc), 42u);
}

TEST(Btb, PoisonedEntryVisibleToVictim)
{
    // No ASID tagging: an entry installed by one context predicts for
    // another — the Spectre v2 injection vector.
    Btb b(64);
    Addr victim_pc = 0xffff800000004000;
    b.update(victim_pc, 666); // attacker-installed
    EXPECT_EQ(b.predict(victim_pc), 666u);
}

TEST(Btb, FlushActsAsIbpb)
{
    Btb b(64);
    b.update(0x1000, 7);
    b.flush();
    EXPECT_EQ(b.predict(0x1000), kNoFunc);
}

TEST(Rsb, PushPopOrder)
{
    Rsb r(4);
    r.push({1, 10});
    r.push({2, 20});
    auto t = r.pop();
    EXPECT_EQ(t.func, 2u);
    EXPECT_EQ(t.idx, 20u);
    t = r.pop();
    EXPECT_EQ(t.func, 1u);
}

TEST(Rsb, UnderflowReturnsStaleEntry)
{
    Rsb r(4);
    r.push({9, 99});
    (void)r.pop();
    // Underflow: the stale slot still predicts — the RSB-underflow
    // attack primitive.
    auto t = r.pop();
    EXPECT_EQ(t.func, 9u);
}

TEST(Rsb, CheckpointRestore)
{
    Rsb r(4);
    r.push({1, 1});
    auto ck = r.save();
    r.push({2, 2});
    (void)r.pop();
    (void)r.pop();
    r.restore(ck);
    auto t = r.pop();
    EXPECT_EQ(t.func, 1u);
}

TEST(Rsb, WrapsAroundCapacity)
{
    Rsb r(2);
    r.push({1, 1});
    r.push({2, 2});
    r.push({3, 3}); // overwrites the oldest
    EXPECT_EQ(r.pop().func, 3u);
    EXPECT_EQ(r.pop().func, 2u);
    // Third pop underflows into stale state.
    EXPECT_EQ(r.depth(), 0u);
}
