#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"
#include "sim/trace.hh"

using namespace perspective::sim;

namespace
{

struct TraceFixture : ::testing::Test
{
    // Streams live in the fixture so they outlive the reset() in the
    // destructor body: reset() flushes the attached stream before
    // dropping it, so a local stream destroyed at the end of a test
    // body would dangle.
    std::ostringstream os;
    std::ostringstream os2;

    ~TraceFixture() override
    {
        trace::setEventLog(nullptr);
        trace::reset();
    }
};

RunResult
runTinyProgram()
{
    Program prog;
    FuncId f = prog.addFunction("tiny", false);
    prog.func(f).body = {movImm(1, 7), addImm(2, 1, 1), ret()};
    prog.layout();
    Memory mem;
    Pipeline cpu(prog, mem);
    return cpu.run(f);
}

} // namespace

TEST_F(TraceFixture, DisabledByDefault)
{
    EXPECT_FALSE(trace::enabled(trace::Flag::Commit));
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
}

TEST_F(TraceFixture, CommitTraceListsRetiringOps)
{
    trace::setStream(&os);
    trace::enable(trace::Flag::Commit);
    runTinyProgram();
    std::string out = os.str();
    EXPECT_NE(out.find("commit"), std::string::npos);
    EXPECT_NE(out.find("tiny[0]"), std::string::npos);
    EXPECT_NE(out.find("ret"), std::string::npos);
}

TEST_F(TraceFixture, FlagsAreIndependent)
{
    trace::setStream(&os);
    trace::enable(trace::Flag::Squash);
    runTinyProgram(); // straight-line: no squashes
    EXPECT_TRUE(os.str().empty());
}

TEST_F(TraceFixture, EnableFromString)
{
    EXPECT_EQ(trace::enableFromString("commit,squash"), 2u);
    EXPECT_TRUE(trace::enabled(trace::Flag::Commit));
    EXPECT_TRUE(trace::enabled(trace::Flag::Squash));
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
}

TEST_F(TraceFixture, UnknownNamesIgnored)
{
    EXPECT_EQ(trace::enableFromString("bogus,alsobad"), 0u);
    EXPECT_EQ(trace::enableFromString("fence,bogus"), 1u);
    EXPECT_TRUE(trace::enabled(trace::Flag::Fence));
}

TEST_F(TraceFixture, DisableStopsOutput)
{
    trace::setStream(&os);
    trace::enable(trace::Flag::Commit);
    trace::disable(trace::Flag::Commit);
    runTinyProgram();
    EXPECT_TRUE(os.str().empty());
}

TEST_F(TraceFixture, FetchTraceIncludesWrongPath)
{
    // Fetch trace shows speculation: more fetched than committed on
    // a mispredicting branch.
    Program prog;
    FuncId f = prog.addFunction("spec", false);
    Memory mem;
    mem.write(0x1000, 1);
    prog.func(f).body = {
        loadAbs(1, 0x1000),
        branchImm(Cond::Eq, 1, 1, 4),
        movImm(2, 666),
        nop(),
        ret(),
    };
    prog.layout();
    Pipeline cpu(prog, mem);

    std::ostringstream &fetches = os, &commits = os2;
    trace::setStream(&fetches);
    trace::enable(trace::Flag::Fetch);
    cpu.run(f);
    trace::disable(trace::Flag::Fetch);
    trace::setStream(&commits);
    trace::enable(trace::Flag::Commit);
    cpu.run(f);

    auto count = [](const std::string &s, const char *needle) {
        unsigned n = 0;
        for (std::size_t p = s.find(needle); p != std::string::npos;
             p = s.find(needle, p + 1))
            ++n;
        return n;
    };
    EXPECT_GE(count(fetches.str(), "spec["),
              count(commits.str(), "spec["));
}

TEST_F(TraceFixture, ResetFlushesTheOutgoingStream)
{
    // Regression test: reset() must flush the stream it is about to
    // drop, or a short traced run loses its buffered tail when the
    // caller still holds the (unflushed) file open.
    std::string path = ::testing::TempDir() + "trace_flush.txt";
    std::ofstream file(path);
    ASSERT_TRUE(file.is_open());
    trace::setStream(&file);
    trace::enable(trace::Flag::Commit);
    trace::log(trace::Flag::Commit, 1, "tail line");
    trace::reset(); // must flush before dropping the stream

    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("tail line"), std::string::npos);
    file.close();
    std::remove(path.c_str());
}

TEST_F(TraceFixture, EventLogRecordsCommitSpans)
{
    trace::EventLog log;
    trace::setEventLog(&log);
    EXPECT_TRUE(trace::eventsEnabled());
    runTinyProgram();
    trace::setEventLog(nullptr);

    auto events = log.snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(log.dropped(), 0u);
    bool saw_ret = false;
    for (const trace::Event &ev : events) {
        if (ev.flag != trace::Flag::Commit)
            continue;
        EXPECT_GT(ev.dur, 0u) << "commit events are spans";
        EXPECT_EQ(ev.func.rfind("tiny[", 0), 0u) << ev.func;
        if (ev.name.find("ret") != std::string::npos)
            saw_ret = true;
    }
    EXPECT_TRUE(saw_ret);
}

TEST_F(TraceFixture, EventLogDropsPastCapacityAndCounts)
{
    trace::EventLog log(4);
    for (int i = 0; i < 10; ++i) {
        trace::Event ev;
        ev.seq = static_cast<std::uint64_t>(i);
        log.record(std::move(ev));
    }
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.dropped(), 6u);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
}

TEST_F(TraceFixture, EventLogAttributesDropsPerLane)
{
    // Drops must be attributable to the lane (recording thread) that
    // overflowed, not just a global tally — the sweep JSON surfaces
    // the per-lane vector and bench_report warns on it.
    trace::EventLog log(3);
    std::thread other([&log] {
        for (int i = 0; i < 5; ++i)
            log.record(trace::Event{});
    });
    other.join();
    for (int i = 0; i < 4; ++i)
        log.record(trace::Event{});

    auto perLane = log.droppedByLane();
    ASSERT_EQ(perLane.size(), 2u); // two lanes ever assigned
    EXPECT_EQ(perLane[0] + perLane[1], log.dropped());
    EXPECT_EQ(log.dropped(), 6u); // 9 records into capacity 3
    EXPECT_EQ(perLane[0], 2u);    // other thread: 5 - 3 stored
    EXPECT_EQ(perLane[1], 4u);    // this thread: all dropped

    log.clear();
    for (std::uint64_t d : log.droppedByLane())
        EXPECT_EQ(d, 0u);
}

TEST_F(TraceFixture, LeakAndWindowFlagsRoundTrip)
{
    EXPECT_STREQ(trace::flagName(trace::Flag::Leak), "leak");
    EXPECT_STREQ(trace::flagName(trace::Flag::Window), "window");
    EXPECT_EQ(trace::enableFromString("leak,window"), 2u);
    EXPECT_TRUE(trace::enabled(trace::Flag::Leak));
    EXPECT_TRUE(trace::enabled(trace::Flag::Window));
}

TEST_F(TraceFixture, EventLogDetachedMeansNoRecording)
{
    trace::EventLog log;
    trace::setEventLog(&log);
    trace::setEventLog(nullptr);
    EXPECT_FALSE(trace::eventsEnabled());
    runTinyProgram();
    EXPECT_EQ(log.size(), 0u);
}

TEST_F(TraceFixture, DetailedTelemetryOffSkipsSamplingOnly)
{
    // The zero-cost contract: disabling per-cycle telemetry must not
    // change the simulation — identical cycles and instruction
    // counts — while leaving the ROB-occupancy histogram and the
    // per-cycle time series empty.
    Program prog;
    FuncId f = prog.addFunction("loop", false);
    prog.func(f).body = {
        movImm(1, 0),
        addImm(1, 1, 1),
        branchImm(Cond::Lt, 1, 20, 1),
        ret(),
    };
    prog.layout();

    Memory memOn, memOff;
    PipelineParams on, off;
    on.detailedTelemetry = true;
    off.detailedTelemetry = false;
    Pipeline cpuOn(prog, memOn, on);
    Pipeline cpuOff(prog, memOff, off);
    RunResult rOn = cpuOn.run(f);
    RunResult rOff = cpuOff.run(f);

    EXPECT_EQ(rOn.cycles, rOff.cycles);
    EXPECT_EQ(rOn.instructions, rOff.instructions);

    EXPECT_GT(
        cpuOn.stats().histogram("rob_occupancy").count(), 0u);
    EXPECT_FALSE(
        cpuOn.stats().timeSeries("rob_occupancy").samples().empty());
    EXPECT_EQ(
        cpuOff.stats().histogram("rob_occupancy").count(), 0u);
    EXPECT_TRUE(
        cpuOff.stats().timeSeries("rob_occupancy").samples().empty());
    EXPECT_TRUE(
        cpuOff.stats().timeSeries("committed").samples().empty());
}
