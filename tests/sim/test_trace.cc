#include <gtest/gtest.h>

#include <sstream>

#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"
#include "sim/trace.hh"

using namespace perspective::sim;

namespace
{

struct TraceFixture : ::testing::Test
{
    ~TraceFixture() override { trace::reset(); }
};

RunResult
runTinyProgram()
{
    Program prog;
    FuncId f = prog.addFunction("tiny", false);
    prog.func(f).body = {movImm(1, 7), addImm(2, 1, 1), ret()};
    prog.layout();
    Memory mem;
    Pipeline cpu(prog, mem);
    return cpu.run(f);
}

} // namespace

TEST_F(TraceFixture, DisabledByDefault)
{
    EXPECT_FALSE(trace::enabled(trace::Flag::Commit));
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
}

TEST_F(TraceFixture, CommitTraceListsRetiringOps)
{
    std::ostringstream os;
    trace::setStream(&os);
    trace::enable(trace::Flag::Commit);
    runTinyProgram();
    std::string out = os.str();
    EXPECT_NE(out.find("commit"), std::string::npos);
    EXPECT_NE(out.find("tiny[0]"), std::string::npos);
    EXPECT_NE(out.find("ret"), std::string::npos);
}

TEST_F(TraceFixture, FlagsAreIndependent)
{
    std::ostringstream os;
    trace::setStream(&os);
    trace::enable(trace::Flag::Squash);
    runTinyProgram(); // straight-line: no squashes
    EXPECT_TRUE(os.str().empty());
}

TEST_F(TraceFixture, EnableFromString)
{
    EXPECT_EQ(trace::enableFromString("commit,squash"), 2u);
    EXPECT_TRUE(trace::enabled(trace::Flag::Commit));
    EXPECT_TRUE(trace::enabled(trace::Flag::Squash));
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
}

TEST_F(TraceFixture, UnknownNamesIgnored)
{
    EXPECT_EQ(trace::enableFromString("bogus,alsobad"), 0u);
    EXPECT_EQ(trace::enableFromString("fence,bogus"), 1u);
    EXPECT_TRUE(trace::enabled(trace::Flag::Fence));
}

TEST_F(TraceFixture, DisableStopsOutput)
{
    std::ostringstream os;
    trace::setStream(&os);
    trace::enable(trace::Flag::Commit);
    trace::disable(trace::Flag::Commit);
    runTinyProgram();
    EXPECT_TRUE(os.str().empty());
}

TEST_F(TraceFixture, FetchTraceIncludesWrongPath)
{
    // Fetch trace shows speculation: more fetched than committed on
    // a mispredicting branch.
    Program prog;
    FuncId f = prog.addFunction("spec", false);
    Memory mem;
    mem.write(0x1000, 1);
    prog.func(f).body = {
        loadAbs(1, 0x1000),
        branchImm(Cond::Eq, 1, 1, 4),
        movImm(2, 666),
        nop(),
        ret(),
    };
    prog.layout();
    Pipeline cpu(prog, mem);

    std::ostringstream fetches, commits;
    trace::setStream(&fetches);
    trace::enable(trace::Flag::Fetch);
    cpu.run(f);
    trace::disable(trace::Flag::Fetch);
    trace::setStream(&commits);
    trace::enable(trace::Flag::Commit);
    cpu.run(f);

    auto count = [](const std::string &s, const char *needle) {
        unsigned n = 0;
        for (std::size_t p = s.find(needle); p != std::string::npos;
             p = s.find(needle, p + 1))
            ++n;
        return n;
    };
    EXPECT_GE(count(fetches.str(), "spec["),
              count(commits.str(), "spec["));
}
