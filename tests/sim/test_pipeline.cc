#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"

using namespace perspective::sim;

namespace
{

struct Machine
{
    Program prog;
    Memory mem;
};

} // namespace

TEST(Pipeline, StraightLineArithmetic)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        movImm(1, 7),
        movImm(2, 5),
        add(3, 1, 2),
        shlImm(4, 3, 4),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    auto r = cpu.run(f);
    EXPECT_EQ(cpu.regValue(3), 12u);
    EXPECT_EQ(cpu.regValue(4), 12u << 4);
    EXPECT_EQ(r.instructions, 5u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Pipeline, StoreLoadRoundTrip)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    Addr a = 0x100000;
    m.prog.func(f).body = {
        movImm(1, 0xabcd),
        movImm(2, static_cast<std::int64_t>(a)),
        store(2, 0, 1),
        load(3, 2, 0),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(f);
    EXPECT_EQ(cpu.regValue(3), 0xabcdu);
    EXPECT_EQ(m.mem.read(a), 0xabcdu);
}

TEST(Pipeline, LoadFromPreinitializedMemory)
{
    Machine m;
    Addr a = 0x200000;
    m.mem.write(a, 1234);
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {loadAbs(5, a), ret()};
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(f);
    EXPECT_EQ(cpu.regValue(5), 1234u);
}

TEST(Pipeline, BranchLoopSumsCorrectly)
{
    // r1 = 0; r2 = 0; while (r1 < 10) { r2 += r1; r1 += 1; }
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        movImm(1, 0),                     // 0
        movImm(2, 0),                     // 1
        branchImm(Cond::Ge, 1, 10, 6),    // 2: exit loop
        add(2, 2, 1),                     // 3
        addImm(1, 1, 1),                  // 4
        jump(2),                          // 5
        ret(),                            // 6
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    auto r = cpu.run(f);
    EXPECT_EQ(cpu.regValue(2), 45u);
    EXPECT_GT(r.instructions, 30u);
}

TEST(Pipeline, CallReturnAcrossFunctions)
{
    Machine m;
    FuncId callee = m.prog.addFunction("callee", false);
    FuncId caller = m.prog.addFunction("caller", false);
    m.prog.func(callee).body = {addImm(2, 1, 100), ret()};
    m.prog.func(caller).body = {
        movImm(1, 5),
        call(callee),
        addImm(3, 2, 1),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(caller);
    EXPECT_EQ(cpu.regValue(2), 105u);
    EXPECT_EQ(cpu.regValue(3), 106u);
}

TEST(Pipeline, NestedCalls)
{
    Machine m;
    FuncId leaf = m.prog.addFunction("leaf", false);
    FuncId mid = m.prog.addFunction("mid", false);
    FuncId top = m.prog.addFunction("top", false);
    m.prog.func(leaf).body = {addImm(1, 1, 1), ret()};
    m.prog.func(mid).body = {call(leaf), call(leaf), ret()};
    m.prog.func(top).body = {movImm(1, 0), call(mid), call(mid),
                             ret()};
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(top);
    EXPECT_EQ(cpu.regValue(1), 4u);
}

TEST(Pipeline, IndirectCallDispatchesThroughRegister)
{
    Machine m;
    FuncId t1 = m.prog.addFunction("t1", false);
    FuncId t2 = m.prog.addFunction("t2", false);
    FuncId main_f = m.prog.addFunction("main", false);
    m.prog.func(t1).body = {movImm(9, 111), ret()};
    m.prog.func(t2).body = {movImm(9, 222), ret()};
    m.prog.func(main_f).body = {
        movImm(1, static_cast<std::int64_t>(t2)),
        indirectCall(1),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.run(main_f);
    EXPECT_EQ(cpu.regValue(9), 222u);
    (void)t1;
}

TEST(Pipeline, MispredictedBranchSquashesWrongPath)
{
    // A data-dependent branch the predictor cannot know on first
    // sight: wrong-path writes must not commit.
    Machine m;
    Addr flag = 0x300000;
    m.mem.write(flag, 1);
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        loadAbs(1, flag),
        branchImm(Cond::Eq, 1, 1, 4), // taken (flag==1)
        movImm(2, 666),               // must not commit if taken
        jump(5),
        movImm(2, 42),                // 4: taken path
        ret(),                        // 5
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    cpu.setReg(2, 0);
    cpu.run(f);
    EXPECT_EQ(cpu.regValue(2), 42u);
}

TEST(Pipeline, RunsAccumulateMicroarchState)
{
    // Second identical run is faster: warm caches and predictors.
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    std::vector<MicroOp> body;
    body.push_back(movImm(1, 0));
    for (int i = 0; i < 64; ++i) {
        body.push_back(load(2, 1, 0x400000 + i * 64));
        body.push_back(add(3, 3, 2));
    }
    body.push_back(ret());
    m.prog.func(f).body = body;
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    auto cold = cpu.run(f);
    auto warm = cpu.run(f);
    EXPECT_LT(warm.cycles, cold.cycles);
}

TEST(Pipeline, FenceOrdersLoads)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {
        movImm(1, 0x500000),
        fence(),
        load(2, 1, 0),
        ret(),
    };
    m.prog.layout();
    Pipeline cpu(m.prog, m.mem);
    auto r = cpu.run(f);
    EXPECT_EQ(r.instructions, 4u);
}

TEST(Pipeline, DeadlockGuardThrows)
{
    Machine m;
    FuncId f = m.prog.addFunction("main", false);
    m.prog.func(f).body = {jump(0)}; // infinite loop
    m.prog.layout();
    PipelineParams pp;
    pp.maxCycles = 10'000;
    Pipeline cpu(m.prog, m.mem, pp);
    EXPECT_THROW(cpu.run(f), std::runtime_error);
}

TEST(Pipeline, KernelEntryCostCharged)
{
    struct CostlyEntry : UnsafePolicy
    {
        Cycle kernelEntryCost() const override { return 500; }
    };

    Machine m;
    FuncId k = m.prog.addFunction("kfunc", true);
    FuncId u = m.prog.addFunction("main", false);
    m.prog.func(k).body = {nop(), ret()};
    m.prog.func(u).body = {call(k), ret()};
    m.prog.layout();

    Pipeline base(m.prog, m.mem);
    auto fast = base.run(u);

    Pipeline slow_cpu(m.prog, m.mem);
    CostlyEntry pol;
    slow_cpu.setPolicy(&pol);
    auto slow = slow_cpu.run(u);
    EXPECT_GE(slow.cycles, fast.cycles + 400);
}
