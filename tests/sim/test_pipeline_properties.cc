/**
 * @file
 * Property-based validation of the out-of-order pipeline: for
 * randomly generated (but well-formed) programs, the speculative,
 * squashing, policy-gated pipeline must produce exactly the same
 * architectural state as the in-order reference interpreter — under
 * every defense scheme.
 */

#include <gtest/gtest.h>

#include "defenses/schemes.hh"
#include "kernel/interp.hh"
#include "sim/pipeline.hh"
#include "sim/program.hh"

using namespace perspective;
using namespace perspective::sim;

namespace
{

/** Deterministic program generator (splitmix64-driven). */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : state_(seed * 31 + 7) {}

    std::uint64_t
    rnd(std::uint64_t bound)
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return bound ? z % bound : z;
    }

    /**
     * Build a program of @p nfuncs functions with arithmetic, memory
     * traffic, forward branches, loops, and (acyclic) calls. Function
     * 0 is the entry; it calls into higher-numbered functions only.
     */
    Program
    make(unsigned nfuncs)
    {
        Program prog;
        for (unsigned f = 0; f < nfuncs; ++f)
            prog.addFunction("f" + std::to_string(f), true);
        for (unsigned f = 0; f < nfuncs; ++f) {
            auto &body = prog.func(f).body;
            unsigned n_ops = 4 + static_cast<unsigned>(rnd(10));
            for (unsigned i = 0; i < n_ops; ++i) {
                switch (rnd(6)) {
                  case 0:
                    body.push_back(movImm(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<std::int64_t>(rnd(1000))));
                    break;
                  case 1:
                    body.push_back(add(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6))));
                    break;
                  case 2:
                    body.push_back(store(
                        kNoReg,
                        static_cast<std::int64_t>(
                            0x100000 + rnd(64) * 8),
                        static_cast<RegId>(1 + rnd(6))));
                    break;
                  case 3:
                    body.push_back(loadAbs(
                        static_cast<RegId>(1 + rnd(6)),
                        0x100000 + rnd(64) * 8));
                    break;
                  case 4: {
                    // Forward branch over the next instruction.
                    std::uint32_t target =
                        static_cast<std::uint32_t>(body.size() + 2);
                    body.push_back(branchImm(
                        static_cast<Cond>(rnd(4)),
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<std::int64_t>(rnd(500)), target));
                    body.push_back(addImm(
                        static_cast<RegId>(1 + rnd(6)),
                        static_cast<RegId>(1 + rnd(6)), 1));
                    break;
                  }
                  case 5:
                    if (f + 1 < nfuncs) {
                        body.push_back(call(static_cast<FuncId>(
                            f + 1 + rnd(nfuncs - f - 1))));
                    } else {
                        body.push_back(nop());
                    }
                    break;
                }
            }
            // A bounded counted loop at the end of some functions.
            if (rnd(2)) {
                RegId ctr = 7;
                std::uint32_t head =
                    static_cast<std::uint32_t>(body.size() + 1);
                body.push_back(movImm(ctr, 0));
                body.push_back(branchImm(
                    Cond::Ge, ctr,
                    static_cast<std::int64_t>(2 + rnd(12)),
                    static_cast<std::uint32_t>(body.size() + 4)));
                body.push_back(loadAbs(8, 0x100000 + rnd(64) * 8));
                body.push_back(addImm(ctr, ctr, 1));
                body.push_back(jump(head));
            }
            body.push_back(ret());
        }
        prog.layout();
        return prog;
    }

  private:
    std::uint64_t state_;
};

struct PipelineEquivalence
    : ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(PipelineEquivalence, MatchesInterpreterUnderEveryScheme)
{
    std::uint64_t seed = GetParam();
    ProgramGen gen(seed);
    Program prog = gen.make(5 + seed % 4);

    // Reference: architectural interpreter.
    Memory ref_mem;
    for (unsigned i = 0; i < 64; ++i)
        ref_mem.write(0x100000 + i * 8, i * 3 + 1);
    kernel::Interpreter ref(prog, ref_mem);
    auto ref_res = ref.run(0, 2'000'000);
    ASSERT_TRUE(ref_res.completed) << "seed " << seed;

    defenses::FencePolicy fence;
    defenses::DomPolicy dom;
    defenses::SttPolicy stt;
    defenses::SpotMitigationPolicy spot;
    std::vector<std::pair<const char *, SpeculationPolicy *>>
        schemes = {{"unsafe", nullptr}, {"fence", &fence},
                   {"dom", &dom},       {"stt", &stt},
                   {"spot", &spot}};

    for (auto [name, policy] : schemes) {
        Memory mem;
        for (unsigned i = 0; i < 64; ++i)
            mem.write(0x100000 + i * 8, i * 3 + 1);
        Pipeline cpu(prog, mem);
        cpu.setPolicy(policy);
        auto res = cpu.run(0);

        EXPECT_EQ(res.instructions, ref_res.uops)
            << name << " seed " << seed;
        for (unsigned r = 1; r <= 8; ++r) {
            EXPECT_EQ(cpu.regValue(r), ref.regValue(r))
                << name << " seed " << seed << " reg " << r;
        }
        for (unsigned i = 0; i < 64; ++i) {
            EXPECT_EQ(mem.read(0x100000 + i * 8),
                      ref_mem.read(0x100000 + i * 8))
                << name << " seed " << seed << " slot " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PipelineEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));
