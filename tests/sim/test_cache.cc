#include <gtest/gtest.h>

#include "sim/cache.hh"

using namespace perspective::sim;

TEST(Cache, MissThenHit)
{
    Cache c({"t", 1024, 64, 2, 2});
    EXPECT_FALSE(c.access(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c({"t", 1024, 64, 2, 2});
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x103f));
    EXPECT_FALSE(c.access(0x1040));
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 1024B total -> 8 sets. Addresses 64*8 apart
    // map to the same set.
    Cache c({"t", 1024, 64, 2, 2});
    Addr a = 0x0, b = 0x200, d = 0x400;
    c.fill(a);
    c.fill(b);
    EXPECT_TRUE(c.access(a)); // a most recent
    c.fill(d);                // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, FlushRemovesLine)
{
    Cache c({"t", 1024, 64, 2, 2});
    c.fill(0x1000);
    c.flush(0x1000);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c({"t", 1024, 64, 2, 2});
    Addr a = 0x0, b = 0x200, d = 0x400;
    c.fill(a);
    c.fill(b);
    // probe(a) must NOT refresh a.
    EXPECT_TRUE(c.probe(a));
    c.fill(d); // evicts a, the true LRU
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
}

TEST(Cache, ProbeStormPreservesEvictionOrder)
{
    // Stronger than ProbeDoesNotTouchLru: with a full set, an
    // arbitrary storm of probes must leave the *entire* eviction
    // order exactly what the accesses alone dictate. Guards the
    // shared access/probe set walk (findLine) against ever routing
    // probes through the LRU-updating path.
    Cache c({"t", 1024, 64, 4, 2}); // 4-way, 4 sets
    Addr way[4] = {0x000, 0x400, 0x800, 0xc00}; // one set
    for (Addr a : way)
        c.fill(a);
    // Recency (oldest -> newest) after these accesses: 2, 0, 3, 1.
    EXPECT_TRUE(c.access(way[2]));
    EXPECT_TRUE(c.access(way[0]));
    EXPECT_TRUE(c.access(way[3]));
    EXPECT_TRUE(c.access(way[1]));
    for (int i = 0; i < 100; ++i)
        for (Addr a : way)
            EXPECT_TRUE(c.probe(a));
    // Four conflicting fills must evict in exactly that order.
    const Addr evictOrder[4] = {way[2], way[0], way[3], way[1]};
    Addr fresh = 0x1000;
    for (Addr expected : evictOrder) {
        EXPECT_TRUE(c.probe(expected));
        c.fill(fresh);
        EXPECT_FALSE(c.probe(expected));
        fresh += 0x400;
    }
}

TEST(Cache, FlushAll)
{
    Cache c({"t", 1024, 64, 2, 2});
    c.fill(0x0);
    c.fill(0x40);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Hierarchy, LatencyOrdering)
{
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100);
    Addr a = 0x12345000;
    Cycle cold = h.accessData(a);
    Cycle warm = h.accessData(a);
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, defaultL1D().hit_latency);
    EXPECT_GE(cold, 100u);
}

TEST(Hierarchy, L2HitAfterL1Evict)
{
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100);
    Addr a = 0x5000;
    h.accessData(a);
    h.l1d().flush(a);
    Cycle lat = h.accessData(a);
    EXPECT_EQ(lat, defaultL1D().hit_latency + defaultL2().hit_latency);
}

TEST(Hierarchy, ProbeLatencyClassifiesLevels)
{
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100);
    Addr a = 0x9000;
    EXPECT_GE(h.probeLatency(a), 100u); // DRAM
    h.accessData(a);
    EXPECT_EQ(h.probeLatency(a), defaultL1D().hit_latency);
    h.flush(a);
    EXPECT_GE(h.probeLatency(a), 100u);
}

TEST(Hierarchy, SpeculativeFillPersists)
{
    // The covert-channel property: a fill is visible to later probes
    // regardless of who performed it.
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100);
    Addr secret_slot = 0xdead000;
    h.accessData(secret_slot);
    EXPECT_TRUE(h.probeL1D(secret_slot));
}

TEST(Hierarchy, NextLinePrefetcherFillsFollowingLine)
{
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100,
                     /*prefetch=*/true);
    Addr a = 0x40000;
    EXPECT_FALSE(h.probeL1D(a + 64));
    h.accessData(a); // miss -> demand fill + next-line prefetch
    EXPECT_TRUE(h.probeL1D(a));
    EXPECT_TRUE(h.probeL1D(a + 64));
}

TEST(Hierarchy, PrefetcherCanBeDisabled)
{
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100,
                     /*prefetch=*/false);
    Addr a = 0x50000;
    h.accessData(a);
    EXPECT_TRUE(h.probeL1D(a));
    EXPECT_FALSE(h.probeL1D(a + 64));
}

TEST(Hierarchy, PrefetchDoesNotCrossIntoProbeSlots)
{
    // Covert-channel hygiene: FlushReload slots are 4 KB apart so a
    // 64 B next-line prefetch can never bridge two slots.
    CacheHierarchy h(defaultL1I(), defaultL1D(), defaultL2(), 100);
    Addr slot0 = 0x2000'0000, slot1 = 0x2000'1000;
    h.accessData(slot0);
    EXPECT_FALSE(h.probeL1D(slot1));
}
