/**
 * @file
 * Fleet-mode tests: wire-protocol framing (round trip, truncation
 * fuzz, corruption), the selective-skip JSON parser the report tool
 * uses on fleet outputs, and fork-based coordinator/worker tests —
 * bit-identity against the single-process runner, mid-cell worker
 * death, warm-worker reuse across batches, and handshake rejection.
 *
 * The fork-based tests attach real worker *processes* without exec:
 * the coordinator is constructed with an explicit socket path and no
 * spawn count, and children fork()ed by the test connect to it. That
 * exercises the identical code path `--connect` does while keeping
 * the whole scenario inside one test binary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/fleet.hh"
#include "harness/json.hh"
#include "harness/proto.hh"
#include "harness/sweep.hh"

using namespace perspective;
using namespace perspective::harness;

// ---- Wire protocol --------------------------------------------------

namespace
{

Json
sampleMessage()
{
    Json::Object cell;
    cell["workload"] = "getpid";
    cell["cycles"] = Json(std::uint64_t{18446744073709551615ull});
    cell["note"] = "quote \" backslash \\ newline \n";
    Json::Object msg;
    msg["type"] = "result";
    msg["index"] = 7;
    msg["cell"] = Json(std::move(cell));
    return Json(std::move(msg));
}

/** A connected local stream pair; [0] is the test's write side. */
struct SocketPair
{
    int fd[2] = {-1, -1};
    SocketPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0);
    }
    ~SocketPair()
    {
        closeWrite();
        if (fd[1] >= 0)
            ::close(fd[1]);
    }
    void
    closeWrite()
    {
        if (fd[0] >= 0)
            ::close(fd[0]);
        fd[0] = -1;
    }
};

void
writeRaw(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

TEST(FleetProto, FramesRoundTripAndEofIsClean)
{
    SocketPair sp;
    Json msg = sampleMessage();
    ASSERT_TRUE(proto::writeFrame(sp.fd[0], msg));
    ASSERT_TRUE(proto::writeFrame(sp.fd[0], Json(Json::Object{})));
    sp.closeWrite();

    Json out;
    std::string err;
    EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
              proto::ReadStatus::Ok)
        << err;
    EXPECT_EQ(out.dump(), msg.dump()); // byte-exact round trip
    EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
              proto::ReadStatus::Ok)
        << err;
    // Orderly close lands exactly on a frame boundary: Eof, not Error.
    EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
              proto::ReadStatus::Eof);
}

TEST(FleetProto, EveryTruncatedPrefixIsEofOrError)
{
    const std::string frame = proto::encodeFrame(sampleMessage());
    ASSERT_GT(frame.size(), 8u);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        SocketPair sp;
        writeRaw(sp.fd[0], frame.substr(0, len));
        sp.closeWrite();
        Json out;
        std::string err;
        proto::ReadStatus st = proto::readFrame(sp.fd[1], out, &err);
        // A prefix must never decode as a complete frame; zero bytes
        // is the one clean Eof, everything else a truncation error.
        if (len == 0)
            EXPECT_EQ(st, proto::ReadStatus::Eof) << "prefix " << len;
        else
            EXPECT_EQ(st, proto::ReadStatus::Error)
                << "prefix " << len;
    }
}

TEST(FleetProto, CorruptFramesAreErrorsNotParses)
{
    Json out;
    std::string err;

    // Flipped magic byte.
    std::string bad = proto::encodeFrame(sampleMessage());
    bad[0] = 'X';
    {
        SocketPair sp;
        writeRaw(sp.fd[0], bad);
        sp.closeWrite();
        EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
                  proto::ReadStatus::Error);
        EXPECT_NE(err.find("magic"), std::string::npos) << err;
    }

    // Length beyond kMaxFrame: rejected from the header alone.
    {
        std::string huge(proto::kMagic, 4);
        std::uint32_t len = proto::kMaxFrame + 1;
        for (int i = 0; i < 4; ++i)
            huge.push_back(
                static_cast<char>((len >> (8 * i)) & 0xff));
        SocketPair sp;
        writeRaw(sp.fd[0], huge);
        sp.closeWrite();
        EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
                  proto::ReadStatus::Error);
        EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
    }

    // Well-framed garbage payload: the parse error surfaces as Error.
    {
        std::string frame(proto::kMagic, 4);
        const std::string payload = "{not json";
        std::uint32_t len = static_cast<std::uint32_t>(payload.size());
        for (int i = 0; i < 4; ++i)
            frame.push_back(
                static_cast<char>((len >> (8 * i)) & 0xff));
        frame += payload;
        SocketPair sp;
        writeRaw(sp.fd[0], frame);
        sp.closeWrite();
        EXPECT_EQ(proto::readFrame(sp.fd[1], out, &err),
                  proto::ReadStatus::Error);
        EXPECT_NE(err.find("payload"), std::string::npos) << err;
    }
}

// ---- Selective-skip parsing (bench_report --check fast path) -------

TEST(FleetJson, SkipObjectKeysDropsSubtreesAtEveryDepth)
{
    const std::string doc = R"({
      "bench": "x",
      "histograms": {"h": {"p50": 1.5, "vals": [1, 2, 3]}},
      "cells": [
        {"cycles": 7,
         "histograms": {"deep": "skipped \" too"},
         "timeseries": {"cycle": [1], "value": [2]}}
      ]
    })";
    Json::ParseOptions opts;
    opts.skipObjectKeys = {"histograms", "timeseries"};
    Json d = Json::parse(doc, opts);
    EXPECT_FALSE(d.contains("histograms"));
    EXPECT_EQ(d.at("bench").asString(), "x");
    const Json &cell = d.at("cells").asArray().at(0);
    EXPECT_EQ(cell.at("cycles").asUint(), 7u);
    EXPECT_FALSE(cell.contains("histograms"));
    EXPECT_FALSE(cell.contains("timeseries"));

    // The skipped subtree is still syntax-checked: malformed content
    // inside it must throw, same as a full parse.
    Json::ParseOptions skipBad;
    skipBad.skipObjectKeys = {"bad"};
    EXPECT_THROW(Json::parse(R"({"bad": {"x": }})", skipBad),
                 std::runtime_error);
    EXPECT_THROW(Json::parse(R"({"bad": "unterminated)", skipBad),
                 std::runtime_error);
}

// ---- Coordinator/worker process tests -------------------------------

namespace
{

std::string
fleetSocketPath(const char *name)
{
    return ::testing::TempDir() + "fleet_" + name + "_" +
           std::to_string(static_cast<long>(::getpid())) + ".sock";
}

FleetCoordinator::Options
coordOpts(const std::string &path)
{
    FleetCoordinator::Options o;
    o.socketPath = path;
    o.spawnWorkers = 0; // the tests fork and attach workers directly
    o.benchName = "test_fleet";
    return o;
}

/** Result JSON a fake worker returns for cell @p index. */
Json
fakeCell(std::size_t index)
{
    Json::Object o;
    o["index"] = Json(static_cast<std::uint64_t>(index));
    o["wall_seconds"] = 0.001;
    return Json(std::move(o));
}

/** Fork a worker process running @p body; it must _exit itself. */
pid_t
forkWorker(const std::function<void()> &body)
{
    pid_t pid = ::fork();
    if (pid == 0) {
        // A throw must not unwind into the gtest frames the child
        // inherited — it would keep running the parent's test suite.
        try {
            body();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "fleet test worker: %s\n", e.what());
        }
        ::_exit(99); // body failed to exit on its own
    }
    return pid;
}

int
waitExit(pid_t pid)
{
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

// The fork-based tests below destroy the coordinator (optional
// .reset() or scope exit) BEFORE reaping workers: a worker that
// raced in after the batch drained sits blocked on its hello, and
// only the coordinator's teardown — closing the connections and the
// listen socket — turns that wait into a clean EOF exit. Reaping
// first deadlocks: waitpid() waits on a worker that waits on a
// coordinator that is still alive but no longer serving.

TEST(Fleet, ForkedWorkersServeEveryCellExactlyOnce)
{
    const std::string path = fleetSocketPath("serve");
    std::optional<FleetCoordinator> coord(coordOpts(path));

    auto workerBody = [&] {
        FleetWorker w(path);
        w.serveBatch(0, "grid-a", "test_fleet", fakeCell);
        ::_exit(0);
    };
    pid_t w0 = forkWorker(workerBody);
    pid_t w1 = forkWorker(workerBody);

    const std::vector<std::size_t> queue = {0, 1, 2, 3, 4, 5};
    std::map<std::size_t, unsigned> got;
    coord->runBatch(0, "grid-a", queue,
                    std::vector<double>(queue.size(), 1.0),
                    [&](std::size_t idx, unsigned worker,
                        const Json &cell) {
                        EXPECT_EQ(got.count(idx), 0u) << "duplicate";
                        got[idx] = worker;
                        EXPECT_EQ(cell.at("index").asUint(), idx);
                    });
    EXPECT_EQ(got.size(), queue.size());
    std::uint64_t served = 0;
    for (std::uint64_t n : coord->stats().cellsPerWorker)
        served += n;
    EXPECT_EQ(served, queue.size());
    coord.reset();
    EXPECT_EQ(waitExit(w0), 0);
    EXPECT_EQ(waitExit(w1), 0);
}

TEST(Fleet, WorkerDeathMidCellRequeuesWithoutLoss)
{
    const std::string path = fleetSocketPath("chaos");
    std::optional<FleetCoordinator> coord(coordOpts(path));

    // Whichever child completes the handshake first becomes worker 0
    // and dies right before sending its first result; the other must
    // pick the cell back up.
    ::setenv("PERSPECTIVE_FLEET_CHAOS", "0:1", 1);
    auto workerBody = [&] {
        FleetWorker w(path);
        // Slow cells keep the batch alive until both workers have
        // joined — otherwise one worker can drain all six before
        // worker 0 ever requests a cell, and the chaos death (which
        // requires worker 0 to execute one) never happens.
        w.serveBatch(0, "grid-a", "test_fleet", [](std::size_t i) {
            ::usleep(20 * 1000);
            return fakeCell(i);
        });
        ::_exit(0);
    };
    pid_t w0 = forkWorker(workerBody);
    pid_t w1 = forkWorker(workerBody);
    ::unsetenv("PERSPECTIVE_FLEET_CHAOS");

    const std::vector<std::size_t> queue = {0, 1, 2, 3, 4, 5};
    std::set<std::size_t> got;
    coord->runBatch(0, "grid-a", queue,
                    std::vector<double>(queue.size(), 1.0),
                    [&](std::size_t idx, unsigned, const Json &) {
                        EXPECT_TRUE(got.insert(idx).second);
                    });
    EXPECT_EQ(got.size(), queue.size()); // every cell exactly once
    EXPECT_GE(coord->stats().stragglersResent, 1u);
    coord.reset();

    // One child died by chaos (_exit(42)), the other finished clean.
    std::multiset<int> exits = {waitExit(w0), waitExit(w1)};
    EXPECT_EQ(exits, (std::multiset<int>{0, 42}));
}

TEST(Fleet, WarmWorkerServesTwoConsecutiveBatches)
{
    const std::string path = fleetSocketPath("warm");
    std::optional<FleetCoordinator> coord(coordOpts(path));

    pid_t w = forkWorker([&] {
        // One process, one connection, two batches: the second
        // serveBatch must reuse the warm connection (and the warm
        // process state a real worker keeps — boot snapshots etc.).
        FleetWorker worker(path);
        std::size_t n1 =
            worker.serveBatch(0, "grid-a", "test_fleet", fakeCell);
        std::size_t n2 =
            worker.serveBatch(1, "grid-b", "test_fleet", fakeCell);
        ::_exit(n1 == 3 && n2 == 3 ? 0 : 1);
    });

    const std::vector<std::size_t> queue = {0, 1, 2};
    const std::vector<double> costs(queue.size(), 1.0);
    std::size_t results = 0;
    auto count = [&](std::size_t, unsigned, const Json &) {
        ++results;
    };
    coord->runBatch(0, "grid-a", queue, costs, count);
    coord->runBatch(1, "grid-b", queue, costs, count);
    EXPECT_EQ(results, 6u);
    // One distinct worker id across both batches — the same warm
    // process served everything, no re-handshake as a new worker.
    EXPECT_EQ(coord->stats().workers, 1u);
    ASSERT_EQ(coord->stats().cellsPerWorker.size(), 1u);
    EXPECT_EQ(coord->stats().cellsPerWorker[0], 6u);
    coord.reset();
    EXPECT_EQ(waitExit(w), 0);
}

TEST(Fleet, MismatchedGridHashIsRejectedBeforeAnyCell)
{
    const std::string path = fleetSocketPath("reject");
    std::optional<FleetCoordinator> coord(coordOpts(path));

    // The impostor claims the same batch with a different grid: it
    // must be turned away at the handshake (a wrong grid would
    // compute wrong cells), and serveBatch surfaces that as a throw.
    pid_t bad = forkWorker([&] {
        FleetWorker w(path);
        try {
            w.serveBatch(0, "grid-other", "test_fleet", fakeCell);
        } catch (const std::runtime_error &) {
            ::_exit(0);
        }
        ::_exit(1);
    });
    // A matching worker keeps the batch alive long enough for the
    // impostor's hello to arrive, then serves everything.
    pid_t good = forkWorker([&] {
        FleetWorker w(path);
        w.serveBatch(0, "grid-a", "test_fleet", [](std::size_t i) {
            ::usleep(30 * 1000);
            return fakeCell(i);
        });
        ::_exit(0);
    });

    const std::vector<std::size_t> queue = {0, 1, 2, 3};
    std::size_t results = 0;
    coord->runBatch(0, "grid-a", queue,
                    std::vector<double>(queue.size(), 1.0),
                    [&](std::size_t, unsigned, const Json &) {
                        ++results;
                    });
    EXPECT_EQ(results, queue.size());
    coord.reset();
    EXPECT_EQ(waitExit(bad), 0);
    EXPECT_EQ(waitExit(good), 0);
}

// ---- End-to-end: fleet sweep is bit-identical to single-process ----

namespace
{

std::vector<SweepCell>
fleetGrid()
{
    std::vector<SweepCell> cells;
    for (const auto &w : workloads::lebenchSuite()) {
        if (w.name != "getpid" && w.name != "read")
            continue;
        for (workloads::Scheme s : {workloads::Scheme::Unsafe,
                                    workloads::Scheme::Fence}) {
            SweepCell c;
            c.profile = w;
            c.scheme = s;
            c.iterations = 4;
            c.warmup = 1;
            cells.push_back(std::move(c));
        }
    }
    EXPECT_EQ(cells.size(), 4u);
    return cells;
}

} // namespace

TEST(FleetSweep, MatchesSingleProcessRunnerBitForBit)
{
    auto grid = fleetGrid();

    // Reference results from the ordinary in-process runner.
    std::vector<CellResult> single;
    {
        SweepOptions o;
        o.benchName = "test_fleet_e2e";
        o.jobs = 1;
        SweepRunner runner(o);
        single = runner.run(grid);
    } // pool threads joined before fork

    const std::string path = fleetSocketPath("e2e");
    auto workerBody = [&] {
        SweepOptions wo;
        wo.benchName = "test_fleet_e2e";
        wo.connectPath = path;
        SweepRunner worker(wo);
        worker.run(fleetGrid());
        ::_exit(0);
    };

    SweepOptions co;
    co.benchName = "test_fleet_e2e";
    co.fleetSocket = path; // coordinator; workers attach externally
    std::vector<CellResult> fleet;
    Json doc;
    pid_t w0 = -1;
    pid_t w1 = -1;
    {
        // Bind the coordinator's socket BEFORE forking the workers:
        // a worker's eager connect then succeeds on its first probe
        // instead of landing in the 100ms-quantized retry loop — the
        // whole batch can finish inside one retry interval, leaving
        // a not-yet-connected worker staring at an unlinked path.
        SweepRunner coord(co);
        ASSERT_TRUE(coord.isFleetCoordinator());
        w0 = forkWorker(workerBody);
        w1 = forkWorker(workerBody);
        fleet = coord.run(grid);
        doc = Json::parse(coord.toJson().dump(2));
    } // teardown closes the socket; a late worker EOFs out cleanly

    ASSERT_EQ(fleet.size(), single.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_TRUE(single[i].ok) << single[i].error;
        EXPECT_TRUE(fleet[i].ok) << fleet[i].error;
        EXPECT_EQ(fleet[i].workload, single[i].workload);
        EXPECT_EQ(fleet[i].scheme, single[i].scheme);
        EXPECT_EQ(fleet[i].result.cycles, single[i].result.cycles);
        EXPECT_EQ(fleet[i].result.instructions,
                  single[i].result.instructions);
        EXPECT_EQ(fleet[i].result.fences, single[i].result.fences);
        EXPECT_EQ(fleet[i].result.stats.all(),
                  single[i].result.stats.all());
        EXPECT_FALSE(fleet[i].skipped);
        EXPECT_FALSE(fleet[i].cached);
    }

    const Json &sched = doc.at("schedule");
    EXPECT_EQ(sched.at("policy").asString(), "fleet-work-stealing");
    const Json &fl = sched.at("fleet");
    EXPECT_GE(fl.at("workers").asUint(), 1u);
    std::uint64_t perWorker = 0;
    for (const Json &n : fl.at("cells_per_worker").asArray())
        perWorker += n.asUint();
    EXPECT_EQ(perWorker, grid.size());

    EXPECT_EQ(waitExit(w0), 0);
    EXPECT_EQ(waitExit(w1), 0);
}
