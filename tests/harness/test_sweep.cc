#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "harness/chrome_trace.hh"
#include "harness/json.hh"
#include "harness/pool.hh"
#include "harness/sweep.hh"

using namespace perspective;
using namespace perspective::harness;
using namespace perspective::workloads;

// ---- ThreadPool ----------------------------------------------------

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnSubmittingThread)
{
    ThreadPool pool(0);
    std::thread::id submitter = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(ran_on, submitter);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait)
{
    // Regression: a throwing task used to escape workerLoop, leaving
    // the in-flight count unbalanced (wait() hung) and terminating
    // the worker. Now the first exception is captured and rethrown
    // from wait(); every other task still runs.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&count, i] {
            ++count;
            if (i == 5)
                throw std::runtime_error("task failed");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 16);

    // The pool stays usable, and the error does not resurface.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 17);
}

TEST(ThreadPool, InlineModeExceptionRethrownFromWait)
{
    // Inline mode (0 threads) must follow the same contract: the
    // exception surfaces from wait(), not from submit().
    ThreadPool pool(0);
    std::atomic<int> count{0};
    pool.submit([&count] {
        ++count;
        throw std::runtime_error("inline boom");
    });
    pool.submit([&count] { ++count; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 2);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, CurrentLaneIsPerPoolUnderNesting)
{
    // Regression: a fleet worker executes cells on its own inline
    // pool while its thread may belong to an enclosing pool. The
    // static currentWorker() reports the enclosing pool's lane; the
    // per-instance currentLane() must report the lane *in the asked
    // pool* — 0 for a pool the thread does not belong to — or the
    // outer lane leaks into the inner pool's worker_busy accounting.
    ThreadPool outer(2);
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    std::set<unsigned> outerLanes;
    std::vector<unsigned> innerLanes;
    std::set<unsigned> staticLanes;
    for (int i = 0; i < 2; ++i)
        outer.submit([&] {
            {
                // Rendezvous so both outer lanes are occupied (the
                // same worker cannot serve both tasks).
                std::unique_lock<std::mutex> lk(mu);
                ++arrived;
                cv.notify_all();
                cv.wait(lk, [&] { return arrived == 2; });
            }
            unsigned mine = outer.currentLane();
            ThreadPool inner(0); // inline, as a fleet worker runs
            unsigned innerLane = 99;
            inner.submit(
                [&] { innerLane = inner.currentLane(); });
            inner.wait();
            std::lock_guard<std::mutex> lk(mu);
            outerLanes.insert(mine);
            innerLanes.push_back(innerLane);
            staticLanes.insert(ThreadPool::currentWorker());
        });
    outer.wait();
    // The outer pool sees its own lanes through currentLane()...
    EXPECT_EQ(outerLanes, (std::set<unsigned>{0u, 1u}));
    // ...and so does the ambiguous static accessor...
    EXPECT_EQ(staticLanes, (std::set<unsigned>{0u, 1u}));
    // ...but the nested pool correctly claims neither thread.
    ASSERT_EQ(innerLanes.size(), 2u);
    EXPECT_EQ(innerLanes[0], 0u);
    EXPECT_EQ(innerLanes[1], 0u);
}

// ---- Json ----------------------------------------------------------

TEST(Json, RoundTripsScalars)
{
    Json doc = Json::parse(
        R"({"u": 18446744073709551615, "d": 1.5, "s": "a\nb",)"
        R"( "t": true, "n": null, "a": [1, 2, 3]})");
    EXPECT_EQ(doc.at("u").asUint(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(doc.at("d").asDouble(), 1.5);
    EXPECT_EQ(doc.at("s").asString(), "a\nb");
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_TRUE(doc.at("n").isNull());
    EXPECT_EQ(doc.at("a").asArray().size(), 3u);

    // dump -> parse -> dump is a fixed point.
    std::string once = doc.dump(2);
    EXPECT_EQ(Json::parse(once).dump(2), once);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1} x"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

// ---- Sweep determinism --------------------------------------------

namespace
{

std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepCell> cells;
    unsigned added = 0;
    for (const auto &w : lebenchSuite()) {
        if (w.name != "getpid" && w.name != "read" &&
            w.name != "poll")
            continue;
        for (Scheme s : {Scheme::Unsafe, Scheme::Fence}) {
            SweepCell c;
            c.profile = w;
            c.scheme = s;
            c.iterations = 4;
            c.warmup = 1;
            cells.push_back(std::move(c));
        }
        ++added;
    }
    EXPECT_EQ(added, 3u);
    return cells;
}

SweepOptions
optsWithJobs(unsigned jobs)
{
    SweepOptions o;
    o.benchName = "test_sweep";
    o.jobs = jobs;
    return o;
}

void
expectIdentical(const CellResult &a, const CellResult &b)
{
    EXPECT_TRUE(a.ok) << a.error;
    EXPECT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.kernelInstructions,
              b.result.kernelInstructions);
    EXPECT_EQ(a.result.fences, b.result.fences);
    EXPECT_EQ(a.result.isvFences, b.result.isvFences);
    EXPECT_EQ(a.result.dsvFences, b.result.dsvFences);
    EXPECT_EQ(a.result.isvCacheHitRate, b.result.isvCacheHitRate);
    EXPECT_EQ(a.result.dsvCacheHitRate, b.result.dsvCacheHitRate);
    EXPECT_EQ(a.result.stats.all(), b.result.stats.all());
}

} // namespace

TEST(Sweep, ParallelGridMatchesSerialGrid)
{
    // Cells are share-nothing, so a 4-job run must produce the
    // byte-identical RunResult grid of a 1-job run, in the same
    // (grid) order.
    SweepRunner serial(optsWithJobs(1));
    SweepRunner parallel(optsWithJobs(4));
    auto grid = smallGrid();
    auto rs = serial.run(grid);
    auto rp = parallel.run(grid);
    ASSERT_EQ(rs.size(), grid.size());
    ASSERT_EQ(rp.size(), grid.size());
    for (std::size_t i = 0; i < rs.size(); ++i)
        expectIdentical(rs[i], rp[i]);
}

TEST(Sweep, ResultsArriveInGridOrder)
{
    SweepRunner runner(optsWithJobs(4));
    auto grid = smallGrid();
    auto rs = runner.run(grid);
    ASSERT_EQ(rs.size(), grid.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs[i].workload, grid[i].profile.name);
        EXPECT_EQ(rs[i].scheme, schemeName(grid[i].scheme));
        EXPECT_GT(rs[i].result.cycles, 0u);
        EXPECT_GE(rs[i].wallSeconds, 0.0);
    }
}

TEST(Sweep, CellFailureIsCapturedNotFatal)
{
    SweepRunner runner(optsWithJobs(2));
    SweepCell bad;
    bad.profile = lebenchSuite().front();
    bad.scheme = Scheme::Unsafe;
    bad.body = [](const SweepCell &) -> RunResult {
        throw std::runtime_error("boom");
    };
    SweepCell good;
    good.profile = lebenchSuite().front();
    good.scheme = Scheme::Unsafe;
    good.iterations = 2;
    good.warmup = 0;
    auto rs = runner.run({bad, good});
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_FALSE(rs[0].ok);
    EXPECT_EQ(rs[0].error, "boom");
    EXPECT_TRUE(rs[1].ok);
    EXPECT_GT(rs[1].result.cycles, 0u);
}

TEST(Sweep, JsonEmissionRoundTripsCounters)
{
    SweepRunner runner(optsWithJobs(2));
    auto grid = smallGrid();
    auto rs = runner.run(grid);

    Json doc = Json::parse(runner.toJson().dump(2));
    EXPECT_EQ(doc.at("bench").asString(), "test_sweep");
    EXPECT_EQ(doc.at("schema").asUint(), 5u); // +sampling block
    EXPECT_FALSE(doc.at("git").asString().empty());
    const auto &cells = doc.at("cells").asArray();
    ASSERT_EQ(cells.size(), rs.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const Json &c = cells[i];
        EXPECT_EQ(c.at("workload").asString(), rs[i].workload);
        EXPECT_EQ(c.at("scheme").asString(), rs[i].scheme);
        EXPECT_EQ(c.at("cycles").asUint(),
                  static_cast<std::uint64_t>(rs[i].result.cycles));
        EXPECT_EQ(c.at("instructions").asUint(),
                  rs[i].result.instructions);
        EXPECT_EQ(c.at("fences").asUint(), rs[i].result.fences);
        // The full StatSet rides along and round-trips too.
        const auto &stats = c.at("stats").asObject();
        for (const auto &[name, value] : rs[i].result.stats.all())
            EXPECT_EQ(stats.at(name).asUint(), value) << name;
    }
}

TEST(Sweep, EveryCellCarriesProvenanceAndTelemetry)
{
    SweepRunner runner(optsWithJobs(2));
    runner.run(smallGrid());
    Json doc = Json::parse(runner.toJson().dump(2));
    for (const Json &c : doc.at("cells").asArray()) {
        const Json &p = c.at("provenance");
        EXPECT_EQ(p.at("workload").asString(),
                  c.at("workload").asString());
        EXPECT_EQ(p.at("scheme").asString(),
                  c.at("scheme").asString());
        EXPECT_EQ(p.at("config_hash").asString().size(), 16u);
        EXPECT_FALSE(p.at("git").asString().empty());
        EXPECT_GE(p.at("wall_seconds").asDouble(), 0.0);
        EXPECT_EQ(p.at("jobs").asUint(), 2u);

        // The acceptance floor: at least three histogram summaries
        // per cell, each with the full summary shape.
        const auto &hists = c.at("histograms").asObject();
        for (const char *name :
             {"rob_occupancy", "fence_stall_cycles", "squash_depth"})
            ASSERT_TRUE(hists.count(name)) << name;
        for (const auto &[name, h] : hists) {
            EXPECT_TRUE(h.contains("count")) << name;
            EXPECT_TRUE(h.contains("mean")) << name;
            EXPECT_TRUE(h.contains("p50")) << name;
            EXPECT_TRUE(h.contains("p99")) << name;
        }
        EXPECT_GT(hists.at("rob_occupancy").at("count").asUint(),
                  0u);

        // Time series: parallel cycle/value arrays of equal length.
        for (const auto &[name, s] : c.at("timeseries").asObject())
            EXPECT_EQ(s.at("cycle").asArray().size(),
                      s.at("value").asArray().size())
                << name;
    }
}

TEST(Sweep, ConfigHashKeysCellsStably)
{
    CellResult a;
    a.workload = "getpid";
    a.scheme = "unsafe";
    a.seed = 1;
    a.iterations = 4;
    a.warmup = 1;
    CellResult b = a;
    EXPECT_EQ(cellConfigHash(a), cellConfigHash(b));
    EXPECT_EQ(cellConfigHash(a).size(), 16u);

    b.seed = 2;
    EXPECT_NE(cellConfigHash(a), cellConfigHash(b));
    b = a;
    b.tags["variant"] = "x";
    EXPECT_NE(cellConfigHash(a), cellConfigHash(b));
    // Results do not feed the hash — only configuration does.
    b = a;
    b.result.instructions = 999;
    EXPECT_EQ(cellConfigHash(a), cellConfigHash(b));
}

TEST(Sweep, ChromeTraceJsonHasValidEventShape)
{
    sim::trace::EventLog log;
    sim::trace::Event span;
    span.flag = sim::trace::Flag::Commit;
    span.start = 10;
    span.dur = 5;
    span.seq = 1;
    span.name = "load r3";
    span.func = "getpid[0]";
    log.record(span);
    sim::trace::Event instant;
    instant.flag = sim::trace::Flag::Squash;
    instant.start = 20;
    instant.seq = 2;
    instant.name = "branch (mispredict)";
    log.record(instant);

    Json doc = Json::parse(chromeTraceJson(log).dump(1));
    const auto &events = doc.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 2u);
    const Json &e0 = events[0];
    EXPECT_EQ(e0.at("ph").asString(), "X");
    EXPECT_EQ(e0.at("ts").asUint(), 10u);
    EXPECT_EQ(e0.at("dur").asUint(), 5u);
    EXPECT_EQ(e0.at("cat").asString(), "commit");
    EXPECT_GE(e0.at("tid").asUint(), 1u);
    const Json &e1 = events[1];
    EXPECT_EQ(e1.at("ph").asString(), "i");
    EXPECT_EQ(e1.at("s").asString(), "t");
    EXPECT_FALSE(e1.contains("dur"));
    EXPECT_EQ(doc.at("otherData").at("dropped_events").asUint(), 0u);
}

TEST(Sweep, TraceLogCapturesSweepWhenRequested)
{
    std::string path = ::testing::TempDir() + "sweep_trace.json";
    SweepOptions o = optsWithJobs(2);
    o.tracePath = path;
    {
        SweepRunner runner(o);
        ASSERT_NE(sim::trace::eventLog(), nullptr);
        runner.run(smallGrid());
        EXPECT_TRUE(runner.emitTrace());
        EXPECT_GT(runner.traceLog()->size(), 0u);
    }
    // Destroying the runner detaches the global sink.
    EXPECT_EQ(sim::trace::eventLog(), nullptr);

    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    Json doc = Json::parse(buf.str());
    EXPECT_FALSE(doc.at("traceEvents").asArray().empty());
    std::remove(path.c_str());
}

TEST(Sweep, GeomeanIsGeometric)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_EQ(geomean({}), 0.0);
    // Arithmetic mean of {0.5, 2.0} is 1.25; geometric is 1.0 — the
    // whole point of the lebench aggregation fix.
    EXPECT_DOUBLE_EQ(geomean({0.5, 2.0}), 1.0);
}

TEST(SweepOptions, EnvAndDefaultJobs)
{
    SweepOptions o;
    EXPECT_GE(o.effectiveJobs(), 1u);
    o.jobs = 3;
    EXPECT_EQ(o.effectiveJobs(), 3u);
}
