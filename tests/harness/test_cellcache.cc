/**
 * @file
 * The sweep-scaling layers: persistent cell cache (content-addressed,
 * epoch-invalidated, byte-identical on hits), deterministic sharding
 * (a true partition recombined by mergeSweeps), and the cost-aware
 * schedule accounting that lands in the sweep JSON.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/cellcache.hh"
#include "harness/json.hh"
#include "harness/sweep.hh"

using namespace perspective;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

/** Fresh per-test cache directory under the gtest temp dir. */
std::string
cacheDirFor(const char *test)
{
    std::string dir = ::testing::TempDir() + "cellcache_" + test;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepCell> cells;
    for (const auto &w : lebenchSuite()) {
        if (w.name != "getpid" && w.name != "read" &&
            w.name != "poll")
            continue;
        for (Scheme s : {Scheme::Unsafe, Scheme::Fence}) {
            SweepCell c;
            c.profile = w;
            c.scheme = s;
            c.iterations = 4;
            c.warmup = 1;
            cells.push_back(std::move(c));
        }
    }
    EXPECT_EQ(cells.size(), 6u);
    return cells;
}

SweepOptions
optsWithCache(const std::string &dir, unsigned jobs = 2)
{
    SweepOptions o;
    o.benchName = "test_cellcache";
    o.jobs = jobs;
    o.cacheDir = dir;
    return o;
}

/** A cell's JSON with the given top-level keys removed. */
Json
without(const Json &cell, std::initializer_list<const char *> keys)
{
    Json::Object o = cell.asObject();
    for (const char *k : keys)
        o.erase(k);
    return Json(std::move(o));
}

} // namespace

// ---- CellCache primitives ------------------------------------------

TEST(CellCache, StoreLoadRoundTripAndStats)
{
    CellCache cache(cacheDirFor("roundtrip"), "fp");
    ASSERT_TRUE(cache.persistent());

    EXPECT_FALSE(cache.load("aaaa").has_value());
    Json::Object o;
    o["cycles"] = std::uint64_t{123};
    ASSERT_TRUE(cache.store("aaaa", Json(o)));
    auto hit = cache.load("aaaa");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->at("cycles").asUint(), 123u);

    CellCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.stores, 1u);
}

TEST(CellCache, FingerprintChangeInvalidatesEntries)
{
    // Simulates an epoch bump (or a new build): same directory,
    // different code fingerprint — every old entry is unreachable.
    std::string dir = cacheDirFor("fingerprint");
    {
        CellCache epoch1(dir, "fp-epoch1");
        Json::Object o;
        o["cycles"] = std::uint64_t{7};
        ASSERT_TRUE(epoch1.store("cell", Json(o)));
        EXPECT_TRUE(epoch1.load("cell").has_value());
    }
    CellCache epoch2(dir, "fp-epoch2");
    EXPECT_FALSE(epoch2.load("cell").has_value());
    // The original epoch still sees its entry (CI jobs on different
    // commits can share one directory).
    CellCache again(dir, "fp-epoch1");
    EXPECT_TRUE(again.load("cell").has_value());
}

TEST(CellCache, CodeFingerprintDependsOnEpoch)
{
    EXPECT_EQ(codeFingerprint(1).size(), 16u);
    EXPECT_NE(codeFingerprint(1), codeFingerprint(2));
    EXPECT_EQ(codeFingerprint(1), codeFingerprint(1));
}

TEST(CellCache, CorruptEntryIsAMiss)
{
    std::string dir = cacheDirFor("corrupt");
    CellCache cache(dir, "fp");
    Json::Object o;
    o["cycles"] = std::uint64_t{1};
    ASSERT_TRUE(cache.store("dead", Json(o)));

    // Clobber the entry with a torn write.
    std::ofstream os(dir + "/fp/dead.json", std::ios::trunc);
    os << "{\"cycles\": 12";
    os.close();
    EXPECT_FALSE(cache.load("dead").has_value());
}

TEST(CellCache, CostTableWorksWithoutDirectory)
{
    CellCache mem("");
    EXPECT_FALSE(mem.persistent());
    EXPECT_FALSE(mem.load("x").has_value());
    EXPECT_FALSE(mem.loadCost("x", false).has_value());
    mem.storeCost("x", false, 1.25);
    auto c = mem.loadCost("x", false);
    ASSERT_TRUE(c.has_value());
    EXPECT_DOUBLE_EQ(*c, 1.25);
}

TEST(CellCache, CostTablePersistsAcrossInstances)
{
    std::string dir = cacheDirFor("costs");
    {
        CellCache cache(dir, "fp-a");
        cache.storeCost("cell", false, 0.5);
    }
    // Costs are epoch-independent: timing estimates survive a
    // fingerprint change even though results do not.
    CellCache other(dir, "fp-b");
    auto c = other.loadCost("cell", false);
    ASSERT_TRUE(c.has_value());
    EXPECT_DOUBLE_EQ(*c, 0.5);
}

TEST(CellCache, CostTableKeyedByExecutionMode)
{
    std::string dir = cacheDirFor("costs-mode");
    {
        CellCache cache(dir, "fp");
        // The same config hash costs ~3x less under fast-forward
        // (PR 8); the table must keep the modes apart or the LPT
        // dispatch order runs on 3x-stale estimates.
        cache.storeCost("cell", false, 3.0);
        cache.storeCost("cell", true, 1.0);
    }
    CellCache other(dir, "fp");
    auto detailed = other.loadCost("cell", false);
    auto ff = other.loadCost("cell", true);
    ASSERT_TRUE(detailed.has_value());
    ASSERT_TRUE(ff.has_value());
    EXPECT_DOUBLE_EQ(*detailed, 3.0);
    EXPECT_DOUBLE_EQ(*ff, 1.0);
}

// ---- Warm runs through the SweepRunner -----------------------------

TEST(CellCache, WarmRunServesEveryCellByteIdentical)
{
    std::string dir = cacheDirFor("warm");
    auto grid = smallGrid();

    SweepRunner cold(optsWithCache(dir));
    cold.run(grid);
    EXPECT_EQ(cold.cache().stats().hits, 0u);
    EXPECT_EQ(cold.cache().stats().misses, grid.size());
    Json coldDoc = cold.toJson();

    SweepRunner warm(optsWithCache(dir));
    auto rs = warm.run(grid);
    EXPECT_EQ(warm.cache().stats().hits, grid.size());
    EXPECT_EQ(warm.cache().stats().misses, 0u);
    Json warmDoc = warm.toJson();

    const auto &coldCells = coldDoc.at("cells").asArray();
    const auto &warmCells = warmDoc.at("cells").asArray();
    ASSERT_EQ(warmCells.size(), coldCells.size());
    for (std::size_t i = 0; i < warmCells.size(); ++i) {
        EXPECT_TRUE(rs[i].cached);
        EXPECT_TRUE(warmCells[i].at("cached").asBool());
        // Stripping only the cached marker leaves the original
        // emission byte-for-byte: provenance, wall seconds, stats,
        // histograms, time series all come from the producing run.
        EXPECT_EQ(without(warmCells[i], {"cached"}).dump(2),
                  coldCells[i].dump(2))
            << "cell " << i;
    }

    const Json &cacheJ = warmDoc.at("cache");
    EXPECT_EQ(cacheJ.at("hits").asUint(), grid.size());
    EXPECT_EQ(cacheJ.at("misses").asUint(), 0u);
    EXPECT_EQ(cacheJ.at("dir").asString(), dir);

    // Cached results still feed table rendering: scalar metrics and
    // counters are reconstructed, not zeroed.
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_GT(rs[i].result.cycles, 0u);
        EXPECT_GT(rs[i].result.instructions, 0u);
        EXPECT_FALSE(rs[i].result.stats.all().empty());
    }
}

TEST(CellCache, NoCacheFlagDisablesPersistence)
{
    std::string dir = cacheDirFor("nocache");
    SweepOptions o = optsWithCache(dir);
    o.noCache = true;
    SweepRunner runner(o);
    runner.run(smallGrid());
    EXPECT_FALSE(runner.cache().persistent());
    // Nothing was written: a second, caching runner gets all misses.
    SweepRunner probe(optsWithCache(dir));
    probe.run(smallGrid());
    EXPECT_EQ(probe.cache().stats().hits, 0u);
}

// ---- Sharding ------------------------------------------------------

TEST(Shard, AssignmentIsADeterministicPartition)
{
    auto grid = smallGrid();
    for (unsigned n : {1u, 2u, 3u, 5u}) {
        for (const SweepCell &c : grid) {
            unsigned s = shardOf(cellConfigHash(c), n);
            EXPECT_LT(s, n);
            // Pure function of (hash, n): stable across calls, runs,
            // hosts, and job counts.
            EXPECT_EQ(s, shardOf(cellConfigHash(c), n));
        }
    }
}

TEST(Shard, ShardsUnionToFullGridWithoutOverlap)
{
    auto grid = smallGrid();
    const unsigned kShards = 2;

    std::set<std::uint64_t> seen;
    std::size_t executed = 0;
    for (unsigned k = 1; k <= kShards; ++k) {
        SweepOptions o;
        o.benchName = "test_cellcache";
        o.jobs = 2;
        o.shardIndex = k;
        o.shardCount = kShards;
        SweepRunner runner(o);
        auto rs = runner.run(grid);
        ASSERT_EQ(rs.size(), grid.size());
        std::size_t mine = 0;
        for (std::size_t i = 0; i < rs.size(); ++i) {
            if (rs[i].skipped)
                continue;
            ++mine;
            EXPECT_TRUE(rs[i].ok) << rs[i].error;
            // Exactly-one ownership: no cell may appear twice.
            EXPECT_TRUE(seen.insert(rs[i].gridIndex).second)
                << "grid index " << rs[i].gridIndex;
        }
        executed += mine;
        // Skipped cells are excluded from the emitted JSON but the
        // shard block still records the full grid size.
        Json doc = runner.toJson();
        EXPECT_EQ(doc.at("shard").at("index").asUint(), k);
        EXPECT_EQ(doc.at("shard").at("count").asUint(), kShards);
        EXPECT_EQ(doc.at("shard").at("grid_cells").asUint(),
                  grid.size());
        EXPECT_EQ(doc.at("cells").asArray().size(), mine);
        EXPECT_EQ(doc.at("schedule").at("skipped").asUint(),
                  grid.size() - mine);
    }
    EXPECT_EQ(executed, grid.size());
    EXPECT_EQ(seen.size(), grid.size());
}

TEST(Shard, MergeReassemblesTheFullSweep)
{
    auto grid = smallGrid();

    SweepOptions full;
    full.benchName = "test_cellcache";
    full.jobs = 2;
    SweepRunner fullRunner(full);
    fullRunner.run(grid);
    Json fullDoc = fullRunner.toJson();

    std::vector<Json> shardDocs;
    for (unsigned k = 1; k <= 2; ++k) {
        SweepOptions o = full;
        o.shardIndex = k;
        o.shardCount = 2;
        SweepRunner runner(o);
        runner.run(grid);
        shardDocs.push_back(runner.toJson());
    }

    std::string error;
    auto merged =
        mergeSweeps(shardDocs, {"shard1", "shard2"}, error);
    ASSERT_TRUE(merged.has_value()) << error;

    const auto &fullCells = fullDoc.at("cells").asArray();
    const auto &mergedCells = merged->at("cells").asArray();
    ASSERT_EQ(mergedCells.size(), fullCells.size());
    for (std::size_t i = 0; i < mergedCells.size(); ++i) {
        EXPECT_EQ(mergedCells[i].at("grid_index").asUint(), i);
        // Cell-for-cell identical to the single-process run, modulo
        // wall-clock noise (wall seconds, mips, provenance timing).
        Json a = without(mergedCells[i],
                         {"wall_seconds", "mips", "provenance"});
        Json b = without(fullCells[i],
                         {"wall_seconds", "mips", "provenance"});
        EXPECT_EQ(a.dump(2), b.dump(2)) << "cell " << i;
    }
    EXPECT_EQ(merged->at("shard").at("count").asUint(), 1u);
    EXPECT_EQ(merged->at("shard").at("grid_cells").asUint(),
              grid.size());
}

TEST(Shard, MergeRejectsDuplicateOverlappingAndMissingShards)
{
    auto grid = smallGrid();
    std::vector<Json> docs;
    for (unsigned k = 1; k <= 2; ++k) {
        SweepOptions o;
        o.benchName = "test_cellcache";
        o.jobs = 1;
        o.shardIndex = k;
        o.shardCount = 2;
        SweepRunner runner(o);
        runner.run(grid);
        docs.push_back(runner.toJson());
    }
    std::string error;

    // Duplicate shard index.
    EXPECT_FALSE(mergeSweeps({docs[0], docs[0]}, {"a", "b"}, error)
                     .has_value());
    EXPECT_NE(error.find("duplicate shard"), std::string::npos)
        << error;

    // Overlapping cells: shard 2's index claimed, but with shard 1's
    // cell set riding along.
    Json::Object forged = docs[0].asObject();
    Json::Object shard = forged.at("shard").asObject();
    shard["index"] = std::uint64_t{2};
    forged["shard"] = Json(shard);
    EXPECT_FALSE(mergeSweeps({docs[0], Json(forged)}, {"a", "b"},
                             error)
                     .has_value());
    EXPECT_NE(error.find("overlap"), std::string::npos) << error;

    // Missing shard.
    EXPECT_FALSE(mergeSweeps({docs[0]}, {"a"}, error).has_value());
    EXPECT_NE(error.find("missing shard"), std::string::npos)
        << error;

    // The healthy pair still merges.
    EXPECT_TRUE(mergeSweeps(docs, {"a", "b"}, error).has_value())
        << error;
}

// ---- Cost-aware schedule accounting --------------------------------

TEST(Schedule, JsonReportsMakespanAndWorkerBusyTime)
{
    SweepOptions o;
    o.benchName = "test_cellcache";
    o.jobs = 2;
    SweepRunner runner(o);
    auto grid = smallGrid();
    runner.run(grid);

    Json doc = runner.toJson();
    const Json &sched = doc.at("schedule");
    EXPECT_EQ(sched.at("policy").asString(), "cost-aware");
    EXPECT_EQ(sched.at("executed").asUint(), grid.size());
    EXPECT_EQ(sched.at("cached").asUint(), 0u);
    EXPECT_EQ(sched.at("skipped").asUint(), 0u);

    double makespan = sched.at("makespan").asDouble();
    double ideal = sched.at("ideal_makespan").asDouble();
    EXPECT_GT(ideal, 0.0);
    // The measured makespan can never beat a perfectly balanced
    // schedule of the same measured cell costs.
    EXPECT_GE(makespan, ideal * 0.999);

    const auto &busy = sched.at("worker_busy").asArray();
    ASSERT_EQ(busy.size(), 2u);
    double total = 0;
    for (const Json &b : busy)
        total += b.asDouble();
    // Every executed cell's seconds were attributed to some worker.
    EXPECT_GT(total, 0.0);
    EXPECT_LE(ideal, total + 1e-9);
}

TEST(Schedule, SecondBatchUsesMeasuredCostsInProcess)
{
    // Even without a cache directory, costs measured by the first
    // run() batch feed the next one's schedule (the in-memory cost
    // table) — this just asserts the plumbing doesn't throw and the
    // accounting accumulates.
    SweepOptions o;
    o.benchName = "test_cellcache";
    o.jobs = 2;
    SweepRunner runner(o);
    auto grid = smallGrid();
    runner.run(grid);
    runner.run(grid);
    Json doc = runner.toJson();
    EXPECT_EQ(doc.at("schedule").at("executed").asUint(),
              2 * grid.size());
    EXPECT_EQ(doc.at("cells").asArray().size(), 2 * grid.size());
}
