#include <gtest/gtest.h>

#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::workloads;
using kernel::Sys;

TEST(Profiles, LeBenchSuiteShape)
{
    auto suite = lebenchSuite();
    EXPECT_GE(suite.size(), 15u);
    for (const auto &w : suite) {
        EXPECT_FALSE(w.request.empty()) << w.name;
        EXPECT_FALSE(staticSyscallSet(w).empty()) << w.name;
    }
}

TEST(Profiles, DatacenterKernelFractionKnobs)
{
    // httpd must have the largest userspace share (lowest kernel
    // fraction target of the four).
    auto apps = datacenterSuite();
    ASSERT_EQ(apps.size(), 4u);
    EXPECT_GT(httpdProfile().userPadIters,
              memcachedProfile().userPadIters);
}

TEST(Profiles, StartupTraceCoversLoaderSyscalls)
{
    auto t = processStartupTrace();
    bool has_mmap = false, has_open = false;
    for (const auto &i : t) {
        has_mmap |= i.sys == Sys::Mmap;
        has_open |= i.sys == Sys::Open;
    }
    EXPECT_TRUE(has_mmap);
    EXPECT_TRUE(has_open);
    EXPECT_GT(t.size(), 15u);
}

TEST(Experiment, UnsafeRunProducesWork)
{
    Experiment e(httpdProfile(), Scheme::Unsafe);
    auto r = e.run(5, 1);
    EXPECT_GT(r.cycles, 1000u);
    EXPECT_GT(r.instructions, 1000u);
    EXPECT_GT(r.kernelInstructions, 0u);
    EXPECT_LT(r.kernelFraction(), 1.0);
    EXPECT_EQ(r.fences, 0u); // unsafe never fences
}

TEST(Experiment, KernelFractionNearTargets)
{
    // Chapter 7: httpd 50%, nginx 65%, memcached 65%, redis 53%.
    struct Target
    {
        WorkloadProfile w;
        double frac;
    };
    for (const auto &[w, frac] :
         {Target{httpdProfile(), 0.50}, Target{nginxProfile(), 0.65},
          Target{memcachedProfile(), 0.65},
          Target{redisProfile(), 0.53}}) {
        Experiment e(w, Scheme::Unsafe);
        auto r = e.run(8, 2);
        EXPECT_NEAR(r.kernelFraction(), frac, 0.12) << w.name;
    }
}

TEST(Experiment, PerspectiveHasViewAndPolicy)
{
    Experiment e(redisProfile(), Scheme::Perspective);
    ASSERT_NE(e.isvView(), nullptr);
    ASSERT_NE(e.perspectivePolicy(), nullptr);
    EXPECT_GT(e.isvView()->numFunctions(), 100u);
    EXPECT_LT(e.isvView()->numFunctions(),
              e.image().numKernelFunctions() / 10);
}

TEST(Experiment, StaticViewLargerThanDynamic)
{
    Experiment stat(redisProfile(), Scheme::PerspectiveStatic);
    Experiment dyn(redisProfile(), Scheme::Perspective);
    EXPECT_GT(stat.isvView()->numFunctions(),
              dyn.isvView()->numFunctions());
}

TEST(Experiment, PlusPlusViewHasNoGadgetFunctions)
{
    Experiment e(redisProfile(), Scheme::PerspectivePlusPlus);
    for (auto f : e.image().functionsWithGadgets())
        EXPECT_FALSE(e.isvView()->containsFunction(f));
}

TEST(Experiment, FenceSlowerThanUnsafe)
{
    auto poll = lebenchSuite();
    const WorkloadProfile *w = nullptr;
    for (const auto &p : poll) {
        if (p.name == "poll")
            w = &p;
    }
    ASSERT_NE(w, nullptr);
    Experiment unsafe_e(*w, Scheme::Unsafe);
    Experiment fence_e(*w, Scheme::Fence);
    auto ru = unsafe_e.run(10, 2);
    auto rf = fence_e.run(10, 2);
    EXPECT_GT(rf.cycles, ru.cycles * 2); // poll is FENCE's worst case
}

TEST(Experiment, PerspectiveCloseToUnsafe)
{
    Experiment unsafe_e(memcachedProfile(), Scheme::Unsafe);
    Experiment persp_e(memcachedProfile(), Scheme::Perspective);
    auto ru = unsafe_e.run(10, 2);
    auto rp = persp_e.run(10, 2);
    double overhead = double(rp.cycles) / ru.cycles - 1.0;
    EXPECT_LT(overhead, 0.08);
    EXPECT_GT(overhead, -0.05);
}

TEST(Experiment, CacheHitRatesNear99Percent)
{
    Experiment e(nginxProfile(), Scheme::Perspective);
    auto r = e.run(10, 3);
    EXPECT_GT(r.isvCacheHitRate, 0.9);
    EXPECT_GT(r.dsvCacheHitRate, 0.9);
}

TEST(Experiment, WarmupDoesNotPolluteMeasuredCounters)
{
    // Regression: warmup iterations must not leak into the measured
    // counters. For a deterministic workload the measured portion of
    // a warmed-up run reports exactly the counters of a cold run of
    // the same length — both through the RunResult fields and the
    // StatSet snapshot it carries.
    Experiment cold(redisProfile(), Scheme::Perspective);
    Experiment warm(redisProfile(), Scheme::Perspective);
    auto rc = cold.run(5, 0);
    auto rw = warm.run(5, 2);
    EXPECT_EQ(rc.instructions, rw.instructions);
    EXPECT_EQ(rc.kernelInstructions, rw.kernelInstructions);
    EXPECT_EQ(rc.stats.get("committed"),
              rw.stats.get("committed"));
    EXPECT_EQ(rw.stats.get("committed"), rw.instructions);
    // Warmup may legitimately change cycles (warm predictors and
    // caches), but never the committed instruction stream.
    EXPECT_GT(rw.instructions, 0u);
}

TEST(Experiment, TelemetrySurvivesWarmupReset)
{
    // The telemetry registered in the Pipeline constructor (histogram
    // and time-series handles) must survive the stats clear between
    // warmup and measurement: a warmed-up run reports the same
    // measured histogram populations as a cold run of the same
    // length, and the histograms are present (non-empty) either way.
    Experiment cold(redisProfile(), Scheme::Perspective);
    Experiment warm(redisProfile(), Scheme::Perspective);
    auto rc = cold.run(5, 0);
    auto rw = warm.run(5, 3);

    for (const char *name :
         {"rob_occupancy", "fence_stall_cycles", "squash_depth",
          "load_issue_wait"}) {
        ASSERT_TRUE(rc.stats.allHistograms().count(name)) << name;
        ASSERT_TRUE(rw.stats.allHistograms().count(name)) << name;
    }
    EXPECT_GT(
        rw.stats.allHistograms().at("rob_occupancy").count(), 0u);
    EXPECT_GT(
        rw.stats.allHistograms().at("load_issue_wait").count(), 0u);

    // Issue-time distributions cover wrong-path work too, so cold vs
    // warm populations differ; two identical warmed-up runs must
    // agree exactly (telemetry is deterministic).
    Experiment warm2(redisProfile(), Scheme::Perspective);
    auto rw2 = warm2.run(5, 3);
    const auto &ha = rw.stats.allHistograms().at("load_issue_wait");
    const auto &hb = rw2.stats.allHistograms().at("load_issue_wait");
    EXPECT_EQ(ha.count(), hb.count());
    EXPECT_DOUBLE_EQ(ha.mean(), hb.mean());

    // Time series registered up front are present and bounded.
    for (const char *name : {"rob_occupancy", "committed", "fences"}) {
        ASSERT_TRUE(rw.stats.allTimeSeries().count(name)) << name;
        EXPECT_LT(rw.stats.allTimeSeries().at(name).samples().size(),
                  sim::TimeSeries::kMaxSamples);
    }
}

TEST(Experiment, ViewCacheMissBurstsAreRecorded)
{
    // PerspectivePolicy samples completed ISV/DSV miss-run lengths;
    // a cold run with real misses must record at least one burst.
    Experiment e(nginxProfile(), Scheme::Perspective);
    auto r = e.run(10, 0);
    ASSERT_TRUE(r.stats.allHistograms().count("isv_miss_burst"));
    EXPECT_GT(r.stats.allHistograms().at("isv_miss_burst").count(),
              0u);
}

TEST(Experiment, HitRatesCoverOnlyMeasuredPhase)
{
    // After the warmup/measurement split, the ISV/DSV hit rates in
    // the result reflect the measured phase alone: with entries
    // prefilled by warmup, a short measured run must be near-perfect.
    Experiment e(nginxProfile(), Scheme::Perspective);
    auto r = e.run(3, 5);
    EXPECT_GT(r.isvCacheHitRate, 0.95);
    EXPECT_GT(r.dsvCacheHitRate, 0.95);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    Experiment a(redisProfile(), Scheme::Perspective);
    Experiment b(redisProfile(), Scheme::Perspective);
    auto ra = a.run(5, 1);
    auto rb = b.run(5, 1);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
}

TEST(Experiment, AsidTaggingSurvivesContextSwitches)
{
    // Section 6.2: ISV/DSV cache entries are ASID-tagged so context
    // switches need no flush. Interleave two tenants' requests and
    // compare hit rates against an untagged (flush-on-switch)
    // configuration.
    auto interleaved_hit_rate = [](bool flush_on_switch) {
        Experiment e(memcachedProfile(), Scheme::Perspective);
        core::PerspectiveConfig cfg;
        cfg.flushOnContextSwitch = flush_on_switch;
        core::PerspectivePolicy pol(e.kernelState().ownership(), cfg,
                                    "switch-study");
        for (kernel::Pid p : {e.mainPid(), e.victimPid()}) {
            const auto &t = e.kernelState().task(p);
            pol.registerContext(t.asid, t.domain, e.isvView());
        }
        e.pipeline().setPolicy(&pol);
        for (unsigned i = 0; i < 12; ++i) {
            e.runRequestAs(i % 2 ? e.victimPid() : e.mainPid());
        }
        return std::make_pair(pol.isvCache().hitRate(),
                              pol.dsvCache().hitRate());
    };

    auto [isv_tagged, dsv_tagged] = interleaved_hit_rate(false);
    auto [isv_flush, dsv_flush] = interleaved_hit_rate(true);
    EXPECT_GT(isv_tagged, isv_flush);
    EXPECT_GT(dsv_tagged, dsv_flush);
    EXPECT_GT(isv_tagged, 0.9);
    EXPECT_GT(dsv_tagged, 0.9);
}

TEST(Experiment, RunRequestAsSwitchesContext)
{
    Experiment e(redisProfile(), Scheme::Perspective);
    auto r1 = e.runRequestAs(e.mainPid());
    EXPECT_EQ(e.pipeline().asid(),
              e.kernelState().task(e.mainPid()).asid);
    auto r2 = e.runRequestAs(e.victimPid());
    EXPECT_EQ(e.pipeline().asid(),
              e.kernelState().task(e.victimPid()).asid);
    EXPECT_GT(r1.instructions, 0u);
    EXPECT_GT(r2.instructions, 0u);
}
