/**
 * @file
 * Golden-cycle regression test: pins the exact RunResult every scheme
 * produces for four workloads at seed 42, captured from the
 * pre-fast-path simulator. Together the workloads cover every
 * front-end path: getpid (plain syscall), mmap (allocation-heavy),
 * read (VFS indirect calls -> retpolines under SPOT), ctx-switch
 * (KPTI trampolines and shadow-stack returns under SPEC-CFI). Any change to simulated behaviour —
 * scheduling, memory, caches, predictors, policies — that shifts a
 * single cycle, fence or hit-rate digit fails here. Performance work
 * must be observationally equivalent; intentional model changes must
 * update these constants in the same commit and say why.
 */

#include <gtest/gtest.h>

#include "workloads/experiment.hh"
#include "workloads/profiles.hh"

using namespace perspective;
using namespace perspective::workloads;

namespace
{

struct Golden
{
    Scheme scheme;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t kernelInstructions;
    std::uint64_t fences;
    std::uint64_t isvFences;
    std::uint64_t dsvFences;
    double isvCacheHitRate;
    double dsvCacheHitRate;
};

// Captured at the seed commit with Experiment(profile, scheme, 42)
// .run(/*iterations=*/8, /*warmup=*/2).
constexpr Golden kGetpidGolden[] = {
    {Scheme::Unsafe, 848, 2248, 2136, 0, 0, 0, 0, 0},
    {Scheme::Fence, 848, 2248, 2136, 208, 0, 0, 0, 0},
    {Scheme::Dom, 848, 2248, 2136, 0, 0, 0, 0, 0},
    {Scheme::Stt, 848, 2248, 2136, 112, 0, 0, 0, 0},
    {Scheme::Spot, 1008, 2248, 2136, 0, 0, 0, 0, 0},
    {Scheme::SpecCfi, 848, 2248, 2136, 0, 0, 0, 0, 0},
    {Scheme::PerspectiveStatic, 848, 2248, 2136, 25, 1, 24,
     0.99823943661971826, 1},
    {Scheme::Perspective, 848, 2248, 2136, 25, 1, 24,
     0.99823943661971826, 1},
    {Scheme::PerspectivePlusPlus, 848, 2248, 2136, 25, 1, 24,
     0.99823943661971826, 1},
};

// mmap exercises allocation-heavy paths and separates the schemes
// (FENCE 2.3x UNSAFE), so it pins scheduling decisions getpid never
// reaches: blocked-load retries, store-forwarding, squash depth.
constexpr Golden kMmapGolden[] = {
    {Scheme::Unsafe, 2696, 8104, 7992, 0, 0, 0, 0, 0},
    {Scheme::Fence, 6200, 8104, 7992, 1026, 0, 0, 0, 0},
    {Scheme::Dom, 5696, 8104, 7992, 40, 0, 0, 0, 0},
    {Scheme::Stt, 2696, 8104, 7992, 215, 0, 0, 0, 0},
    {Scheme::Spot, 2856, 8104, 7992, 0, 0, 0, 0, 0},
    {Scheme::SpecCfi, 2696, 8104, 7992, 0, 0, 0, 0, 0},
    {Scheme::PerspectiveStatic, 3592, 8104, 7992, 160, 0, 160, 1,
     0.97490589711417819},
    {Scheme::Perspective, 3592, 8104, 7992, 160, 0, 160, 1,
     0.97490589711417819},
    {Scheme::PerspectivePlusPlus, 3592, 8104, 7992, 160, 0, 160, 1,
     0.97490589711417819},
};

// read drives the VFS indirect-call path, so it is the only table
// where SPOT's retpoline conversion costs cycles (1864 vs 1576) —
// pinning the retpoline front-end transform exactly.
constexpr Golden kReadGolden[] = {
    {Scheme::Unsafe, 1576, 5088, 4976, 0, 0, 0, 0, 0},
    {Scheme::Fence, 1832, 5088, 4976, 656, 0, 0, 0, 0},
    {Scheme::Dom, 1576, 5088, 4976, 0, 0, 0, 0, 0},
    {Scheme::Stt, 1576, 5088, 4976, 176, 0, 0, 0, 0},
    {Scheme::Spot, 1864, 5088, 4976, 0, 0, 0, 0, 0},
    {Scheme::SpecCfi, 1576, 5088, 4976, 0, 0, 0, 0, 0},
    {Scheme::PerspectiveStatic, 1576, 5088, 4976, 128, 72, 56, 1,
     0.99884259259259256},
    {Scheme::Perspective, 1576, 5088, 4976, 64, 0, 64, 1,
     0.99895833333333328},
    {Scheme::PerspectivePlusPlus, 1576, 5088, 4976, 64, 0, 64, 1,
     0.99895833333333328},
};

// ctx-switch crosses the KPTI kernel entry/exit trampolines and the
// shadow-stack return checks, covering the SpecCfi front-end path
// and the ASID-tagged view-cache behaviour across address spaces.
constexpr Golden kCtxSwitchGolden[] = {
    {Scheme::Unsafe, 1320, 6008, 5896, 0, 0, 0, 0, 0},
    {Scheme::Fence, 1720, 6008, 5896, 872, 0, 0, 0, 0},
    {Scheme::Dom, 1320, 6008, 5896, 0, 0, 0, 0, 0},
    {Scheme::Stt, 1320, 6008, 5896, 224, 0, 0, 0, 0},
    {Scheme::Spot, 1480, 6008, 5896, 0, 0, 0, 0, 0},
    {Scheme::SpecCfi, 1320, 6008, 5896, 0, 0, 0, 0, 0},
    {Scheme::PerspectiveStatic, 1320, 6008, 5896, 72, 0, 72, 1, 1},
    {Scheme::Perspective, 1320, 6008, 5896, 72, 0, 72, 1, 1},
    {Scheme::PerspectivePlusPlus, 1320, 6008, 5896, 72, 0, 72, 1, 1},
};

const WorkloadProfile &
profileNamed(const char *name)
{
    static auto suite = lebenchSuite();
    for (const auto &w : suite)
        if (w.name == name)
            return w;
    throw std::runtime_error(std::string("no profile ") + name);
}

void
checkGolden(const char *workload, const Golden &g)
{
    // One table pins both execution modes: fast-forward (DESIGN
    // §5.5) is timing-exact by contract, so the very same golden
    // constants must hold bit for bit with the replica engaged.
    for (bool ff : {false, true}) {
        SCOPED_TRACE(std::string(workload) + " / " +
                     schemeName(g.scheme) +
                     (ff ? " / fast-forward" : " / detailed"));
        Experiment e(profileNamed(workload), g.scheme, 42, ff);
        RunResult r = e.run(8, 2);
        EXPECT_EQ(r.cycles, g.cycles);
        EXPECT_EQ(r.instructions, g.instructions);
        EXPECT_EQ(r.kernelInstructions, g.kernelInstructions);
        EXPECT_EQ(r.fences, g.fences);
        EXPECT_EQ(r.isvFences, g.isvFences);
        EXPECT_EQ(r.dsvFences, g.dsvFences);
        EXPECT_DOUBLE_EQ(r.isvCacheHitRate, g.isvCacheHitRate);
        EXPECT_DOUBLE_EQ(r.dsvCacheHitRate, g.dsvCacheHitRate);
    }
}

} // namespace

TEST(Golden, GetpidAllSchemes)
{
    ASSERT_EQ(std::size(kGetpidGolden), allSchemes().size())
        << "allSchemes() changed; extend the golden table";
    for (const Golden &g : kGetpidGolden)
        checkGolden("getpid", g);
}

TEST(Golden, MmapAllSchemes)
{
    ASSERT_EQ(std::size(kMmapGolden), allSchemes().size())
        << "allSchemes() changed; extend the golden table";
    for (const Golden &g : kMmapGolden)
        checkGolden("mmap", g);
}

TEST(Golden, ReadAllSchemes)
{
    ASSERT_EQ(std::size(kReadGolden), allSchemes().size())
        << "allSchemes() changed; extend the golden table";
    for (const Golden &g : kReadGolden)
        checkGolden("read", g);
}

TEST(Golden, CtxSwitchAllSchemes)
{
    ASSERT_EQ(std::size(kCtxSwitchGolden), allSchemes().size())
        << "allSchemes() changed; extend the golden table";
    for (const Golden &g : kCtxSwitchGolden)
        checkGolden("ctx-switch", g);
}
