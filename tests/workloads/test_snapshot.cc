/**
 * @file
 * Experiment snapshot/restore and boot-image reuse: the fast paths
 * must be *observationally equivalent* to a fresh boot. Every test
 * here compares full RunResults (cycles, instruction counts, fences,
 * view-cache hit rates) across boot modes and across restores.
 */

#include <gtest/gtest.h>

#include "attacks/poc.hh"
#include "attacks/races.hh"
#include "workloads/boot_cache.hh"
#include "workloads/experiment.hh"
#include "workloads/profiles.hh"

using namespace perspective;
using namespace perspective::workloads;

namespace
{

const WorkloadProfile &
profileNamed(const char *name)
{
    static auto suite = lebenchSuite();
    for (const auto &w : suite)
        if (w.name == name)
            return w;
    throw std::runtime_error(std::string("no profile ") + name);
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.kernelInstructions, b.kernelInstructions);
    EXPECT_EQ(a.fences, b.fences);
    EXPECT_EQ(a.isvFences, b.isvFences);
    EXPECT_EQ(a.dsvFences, b.dsvFences);
    EXPECT_DOUBLE_EQ(a.isvCacheHitRate, b.isvCacheHitRate);
    EXPECT_DOUBLE_EQ(a.dsvCacheHitRate, b.dsvCacheHitRate);
}

/** Restore the default (enabled) reuse mode when a test returns. */
struct SnapshotModeGuard
{
    ~SnapshotModeGuard() { BootImage::setSnapshotEnabled(true); }
};

} // namespace

TEST(BootCache, SharedBootMatchesFreshBoot)
{
    SnapshotModeGuard guard;
    for (const char *wl : {"getpid", "mmap"}) {
        for (Scheme s :
             {Scheme::Fence, Scheme::Perspective, Scheme::Unsafe}) {
            SCOPED_TRACE(std::string(wl) + " / " + schemeName(s));
            BootImage::setSnapshotEnabled(false);
            Experiment fresh(profileNamed(wl), s, 42);
            RunResult rf = fresh.run(4, 1);

            BootImage::setSnapshotEnabled(true);
            Experiment shared(profileNamed(wl), s, 42);
            RunResult rs = shared.run(4, 1);
            expectSameResult(rf, rs);
        }
    }
}

TEST(BootCache, OneBootPerSeed)
{
    SnapshotModeGuard guard;
    BootImage::setSnapshotEnabled(true);
    BootImage::dropCache();
    Experiment a(profileNamed("getpid"), Scheme::Unsafe, 42);
    Experiment b(profileNamed("mmap"), Scheme::Fence, 42);
    EXPECT_EQ(BootImage::cacheSize(), 1u);
    Experiment c(profileNamed("getpid"), Scheme::Unsafe, 7);
    EXPECT_EQ(BootImage::cacheSize(), 2u);
}

TEST(BootCache, CellWritesDoNotLeakAcrossExperiments)
{
    SnapshotModeGuard guard;
    BootImage::setSnapshotEnabled(true);
    // Two experiments share the boot image; running one (which
    // writes memory: stores, allocator metadata) must not perturb
    // the other's results.
    Experiment a(profileNamed("mmap"), Scheme::Perspective, 42);
    Experiment b(profileNamed("mmap"), Scheme::Perspective, 42);
    RunResult ra = a.run(4, 1);
    RunResult rb = b.run(4, 1);
    expectSameResult(ra, rb);
}

TEST(Snapshot, RestoreReproducesRun)
{
    for (Scheme s : {Scheme::Unsafe, Scheme::Fence,
                     Scheme::Perspective}) {
        SCOPED_TRACE(schemeName(s));
        Experiment e(profileNamed("mmap"), s, 42);
        Experiment::Snapshot snap = e.snapshot();
        RunResult r1 = e.run(4, 1);
        e.restore(snap);
        RunResult r2 = e.run(4, 1);
        expectSameResult(r1, r2);
    }
}

TEST(Snapshot, WarmupStateCapturedOnce)
{
    // Capture after warmup, then measure twice from the same warm
    // state: identical results without re-running the warmup.
    Experiment e(profileNamed("getpid"), Scheme::Perspective, 42);
    for (unsigned i = 0; i < 2; ++i)
        e.runRequestOnPipeline(); // warmup
    Experiment::Snapshot warm = e.snapshot();

    RunResult r1 = e.run(6, 0);
    e.restore(warm);
    RunResult r2 = e.run(6, 0);
    expectSameResult(r1, r2);
}

TEST(Snapshot, RestoreRewindsKernelState)
{
    Experiment e(profileNamed("mmap"), Scheme::Perspective, 42);
    std::uint64_t frames0 =
        e.kernelState().buddy().allocatedFrames();
    std::uint64_t allocs0 = e.kernelState().buddy().allocCount();
    Experiment::Snapshot snap = e.snapshot();

    e.run(4, 1); // mmap allocates pages
    EXPECT_GT(e.kernelState().buddy().allocCount(), allocs0);

    e.restore(snap);
    EXPECT_EQ(e.kernelState().buddy().allocatedFrames(), frames0);
    EXPECT_EQ(e.kernelState().buddy().allocCount(), allocs0);
}

TEST(Snapshot, MidRunHandoffCompletesAndRestoreRewindsIt)
{
    // A mid-run ownership handoff (the dynamic-update driver): the
    // policy listener revokes the page while loads from it may be
    // blocked in-ROB holding stale verdicts, and the run must
    // complete with the verdicts re-resolved — no dangling wake or
    // MRU pointer. Restore then rewinds the handoff, the policy
    // mirrors, AND the not-yet-fired callback queue, reproducing the
    // no-handoff run exactly.
    Experiment e(profileNamed("mmap"), Scheme::Perspective, 42);
    auto &ks = e.kernelState();
    kernel::Pfn ctx_pfn = ks.task(e.mainPid()).ctxPfn;
    kernel::DomainId home = ks.ownership().ownerOf(ctx_pfn);
    kernel::DomainId foreign = ks.task(e.victimPid()).domain;
    ASSERT_NE(home, foreign);

    Experiment::Snapshot snap = e.snapshot();
    RunResult base = e.run(4, 1);
    e.restore(snap);

    e.pipeline().scheduleAt(
        e.pipeline().now() + 1000,
        [&ks, ctx_pfn, foreign] {
            ks.ownership().assign(ctx_pfn, foreign);
        });
    EXPECT_EQ(e.pipeline().pendingScheduled(), 1u);
    e.run(4, 1);
    EXPECT_EQ(ks.ownership().ownerOf(ctx_pfn), foreign);
    EXPECT_EQ(e.pipeline().pendingScheduled(), 0u);

    e.restore(snap);
    EXPECT_EQ(ks.ownership().ownerOf(ctx_pfn), home);
    RunResult again = e.run(4, 1);
    expectSameResult(base, again);
}

TEST(Snapshot, RestoreClearsUnfiredScheduledCallbacks)
{
    // A callback scheduled for a cycle the run never reaches must
    // not leak across restore into a later (rewound) timeline where
    // its captured state is dead.
    Experiment e(profileNamed("getpid"), Scheme::Perspective, 42);
    Experiment::Snapshot snap = e.snapshot();
    bool fired = false;
    e.pipeline().scheduleAt(e.pipeline().now() + 1'000'000'000,
                            [&fired] { fired = true; });
    EXPECT_EQ(e.pipeline().pendingScheduled(), 1u);
    e.restore(snap);
    EXPECT_EQ(e.pipeline().pendingScheduled(), 0u);
    e.run(2, 0);
    EXPECT_FALSE(fired);
}

TEST(Snapshot, LazyDynamicUpdateStatsSurviveRestore)
{
    // The dynamic-update stats ("update_latency",
    // "transient_gap_cycles", "perspective.revocation.stale_allows")
    // are created lazily the first time their event fires. Snapshot
    // BEFORE they exist, touch them, restore, and touch them again:
    // StatSet::assignFrom must zero the entries absent from the
    // snapshot while keeping cached handles valid, and the rerun must
    // reproduce the first run exactly.
    Experiment e(attacks::pocProfile(), Scheme::Perspective, 42);
    Experiment::Snapshot snap = e.snapshot();

    attacks::RaceResult r1 = attacks::raceRevocation(e);
    auto &st = e.pipeline().stats();
    std::uint64_t stale1 =
        st.get("perspective.revocation.stale_allows");
    std::uint64_t gap1 = st.histogram("transient_gap_cycles").count();
    std::uint64_t upd1 = st.histogram("update_latency").count();
    EXPECT_GT(stale1, 0u);
    EXPECT_GT(gap1, 0u);
    EXPECT_GT(upd1, 0u);

    e.restore(snap);
    EXPECT_EQ(st.get("perspective.revocation.stale_allows"), 0u);
    EXPECT_EQ(st.histogram("transient_gap_cycles").count(), 0u);
    EXPECT_EQ(st.histogram("update_latency").count(), 0u);

    attacks::RaceResult r2 = attacks::raceRevocation(e);
    EXPECT_EQ(st.get("perspective.revocation.stale_allows"), stale1);
    EXPECT_EQ(st.histogram("transient_gap_cycles").count(), gap1);
    EXPECT_EQ(st.histogram("update_latency").count(), upd1);
    EXPECT_EQ(r1.staleAllows, r2.staleAllows);
    EXPECT_EQ(r1.leakedInWindow, r2.leakedInWindow);
    EXPECT_EQ(r1.updateLatency, r2.updateLatency);
}

TEST(Snapshot, LeakLedgerRewindsWithRestore)
{
    // The leakage ledger joins Pipeline::Snapshot: a restore rewinds
    // its accounting alongside the microarchitecture, so a replayed
    // attack reports identical leakage.
    Experiment e(attacks::pocProfile(), Scheme::Perspective, 42);
    Experiment::Snapshot snap = e.snapshot();

    attacks::raceRevocation(e);
    sim::LeakageSummary s1 = e.pipeline().leakLedger().summary();
    EXPECT_GT(s1.bytesTransmitted, 0u);

    e.restore(snap);
    EXPECT_TRUE(e.pipeline().leakLedger().summary().empty());

    attacks::raceRevocation(e);
    sim::LeakageSummary s2 = e.pipeline().leakLedger().summary();
    EXPECT_EQ(s1.secretLoads, s2.secretLoads);
    EXPECT_EQ(s1.transmissions, s2.transmissions);
    EXPECT_EQ(s1.bytesTransmitted, s2.bytesTransmitted);
}

TEST(Snapshot, DivergentRunsFromOneSnapshot)
{
    // The same snapshot replayed under different measured iteration
    // counts: short replay is a prefix-consistent rewind, and a
    // re-restore still reproduces the long run exactly.
    Experiment e(profileNamed("getpid"), Scheme::Fence, 42);
    Experiment::Snapshot snap = e.snapshot();
    RunResult longRun = e.run(8, 2);
    e.restore(snap);
    RunResult shortRun = e.run(2, 1);
    EXPECT_LT(shortRun.instructions, longRun.instructions);
    e.restore(snap);
    RunResult longAgain = e.run(8, 2);
    expectSameResult(longRun, longAgain);
}
