#include <gtest/gtest.h>

#include "kernel/image.hh"
#include "workloads/driver.hh"

using namespace perspective;
using namespace perspective::kernel;
using namespace perspective::workloads;

namespace
{

struct DriverFixture : ::testing::Test
{
    sim::Memory mem;
    KernelImage img{mem};
    DriverSet drivers{img};

    DriverFixture() { img.program().layout(); }
};

} // namespace

TEST_F(DriverFixture, OneDriverPerSyscall)
{
    for (unsigned i = 0; i < kNumSyscalls; ++i) {
        sim::FuncId f = drivers.driverFor(static_cast<Sys>(i));
        ASSERT_NE(f, sim::kNoFunc);
        const auto &fn = img.program().func(f);
        EXPECT_FALSE(fn.kernel) << fn.name;
        EXPECT_FALSE(fn.body.empty());
    }
}

TEST_F(DriverFixture, DriverCallsMatchingEntry)
{
    for (Sys s : {Sys::Read, Sys::Poll, Sys::Getpid}) {
        const auto &body =
            img.program().func(drivers.driverFor(s)).body;
        bool found = false;
        for (const auto &op : body) {
            if (op.op == sim::Op::Call &&
                op.callee == img.entryOf(s))
                found = true;
        }
        EXPECT_TRUE(found) << sysName(s);
    }
}

TEST_F(DriverFixture, DriversLiveInUserSpace)
{
    sim::FuncId f = drivers.driverFor(Sys::Read);
    EXPECT_LT(img.program().func(f).base, sim::kKernelTextBase);
}

TEST_F(DriverFixture, AllReturnsFullTable)
{
    EXPECT_EQ(drivers.all().size(), kNumSyscalls);
}

TEST_F(DriverFixture, DriverBodyEndsInReturn)
{
    for (unsigned i = 0; i < kNumSyscalls; ++i) {
        const auto &body = img.program()
                               .func(drivers.driverFor(
                                   static_cast<Sys>(i)))
                               .body;
        EXPECT_EQ(static_cast<int>(body.back().op),
                  static_cast<int>(sim::Op::Return));
    }
}
