/**
 * @file
 * Seed robustness: the headline results must not depend on the
 * default kernel-image seed. A differently-seeded 28K-function image
 * still lands in the paper's bands for surface reduction, overhead,
 * and attack outcomes.
 */

#include <gtest/gtest.h>

#include "attacks/poc.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::workloads;

namespace
{

struct SeedRobustness : ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(SeedRobustness, SurfaceReductionBandsHold)
{
    std::uint64_t seed = GetParam();
    WorkloadProfile w = redisProfile();
    Experiment stat(w, Scheme::PerspectiveStatic, seed);
    Experiment dyn(w, Scheme::Perspective, seed);
    double total =
        static_cast<double>(stat.image().numKernelFunctions());
    double s = stat.isvView()->numFunctions() / total;
    double d = dyn.isvView()->numFunctions() / total;
    EXPECT_GT(s, 0.06) << "static view suspiciously small";
    EXPECT_LT(s, 0.15) << "static view suspiciously large";
    EXPECT_GT(d, 0.02);
    EXPECT_LT(d, s);
}

TEST_P(SeedRobustness, AttackOutcomesHold)
{
    std::uint64_t seed = GetParam();
    {
        Experiment e(pocProfile(), Scheme::Unsafe, seed);
        EXPECT_TRUE(runPoc(PocKind::ActiveV1Ioctl, e).leaked);
    }
    {
        Experiment e(pocProfile(), Scheme::Perspective, seed);
        EXPECT_FALSE(runPoc(PocKind::ActiveV1Ioctl, e).leaked);
        EXPECT_FALSE(runPoc(PocKind::PassiveV2, e).leaked);
    }
}

TEST_P(SeedRobustness, PerspectiveOverheadStaysSmall)
{
    std::uint64_t seed = GetParam();
    WorkloadProfile w = memcachedProfile();
    Experiment base(w, Scheme::Unsafe, seed);
    Experiment persp(w, Scheme::Perspective, seed);
    double u = static_cast<double>(base.run(10, 2).cycles);
    double p = static_cast<double>(persp.run(10, 2).cycles);
    EXPECT_LT(p / u, 1.10) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values<std::uint64_t>(7, 123,
                                                          2024));
