/**
 * @file
 * Cross-scheme invariants, parameterized over workloads: every scheme
 * preserves architectural behavior (same committed instruction count
 * as UNSAFE), protection never *speeds up* execution beyond noise,
 * and fence accounting is consistent.
 */

#include <gtest/gtest.h>

#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::workloads;

namespace
{

struct SchemeProperty : ::testing::TestWithParam<const char *>
{
    WorkloadProfile
    profile() const
    {
        std::string name = GetParam();
        for (const auto &w : lebenchSuite()) {
            if (w.name == name)
                return w;
        }
        for (const auto &w : datacenterSuite()) {
            if (w.name == name)
                return w;
        }
        ADD_FAILURE() << "unknown workload " << name;
        return {};
    }
};

} // namespace

TEST_P(SchemeProperty, SchemesPreserveArchitecturalWork)
{
    WorkloadProfile w = profile();
    Experiment base(w, Scheme::Unsafe);
    auto ru = base.run(6, 1);
    for (Scheme s : {Scheme::Fence, Scheme::Dom, Scheme::Stt,
                     Scheme::Perspective,
                     Scheme::PerspectivePlusPlus}) {
        Experiment e(w, s);
        auto r = e.run(6, 1);
        // Committed work is identical: defenses only delay, never
        // change, architectural execution.
        EXPECT_EQ(r.instructions, ru.instructions)
            << schemeName(s);
        EXPECT_EQ(r.kernelInstructions, ru.kernelInstructions)
            << schemeName(s);
    }
}

TEST_P(SchemeProperty, ProtectionNeverFasterThanUnsafeBeyondNoise)
{
    WorkloadProfile w = profile();
    Experiment base(w, Scheme::Unsafe);
    double u = static_cast<double>(base.run(6, 1).cycles);
    for (Scheme s : {Scheme::Fence, Scheme::Perspective}) {
        Experiment e(w, s);
        double c = static_cast<double>(e.run(6, 1).cycles);
        EXPECT_GT(c, u * 0.97) << schemeName(s);
    }
}

TEST_P(SchemeProperty, FenceAccountingConsistent)
{
    WorkloadProfile w = profile();
    Experiment e(w, Scheme::Perspective);
    auto r = e.run(6, 1);
    // Every attributed Perspective fence is a counted pipeline fence.
    EXPECT_LE(r.isvFences + r.dsvFences, r.fences);
}

TEST_P(SchemeProperty, FenceBlocksMoreThanPerspective)
{
    WorkloadProfile w = profile();
    Experiment f(w, Scheme::Fence);
    Experiment p(w, Scheme::Perspective);
    auto rf = f.run(6, 1);
    auto rp = p.run(6, 1);
    // Tailored protection fences strictly less than blanket fencing.
    EXPECT_LT(rp.fences, rf.fences);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SchemeProperty,
                         ::testing::Values("getpid", "read", "poll",
                                           "mmap", "big-fork",
                                           "httpd", "memcached",
                                           "redis"));
