/**
 * @file
 * Transient-leakage ledger, end to end (DESIGN §5.6):
 *
 *  - observational equivalence: enabling the ledger changes no
 *    simulated outcome, under any scheme — same cycles, same
 *    instruction and fence counts;
 *  - the secure direction: a fully synchronized Perspective policy
 *    matches the ground-truth classifier, so nothing is ever
 *    classified secret, let alone transmitted;
 *  - the leaky direction: a deferred revocation opens a window the
 *    ledger must see — transmitted bytes, attributed to the
 *    Revocation window and to the transmitting gadget.
 */

#include <gtest/gtest.h>

#include "attacks/poc.hh"
#include "attacks/races.hh"
#include "workloads/experiment.hh"
#include "workloads/profiles.hh"

using namespace perspective;
using namespace perspective::workloads;

namespace
{

const WorkloadProfile &
profileNamed(const char *name)
{
    static auto suite = lebenchSuite();
    for (const auto &w : suite)
        if (w.name == name)
            return w;
    throw std::runtime_error(std::string("no profile ") + name);
}

} // namespace

TEST(LeakageE2E, LedgerIsObservationallyEquivalent)
{
    // Same profile/scheme/seed, ledger on vs off: every deterministic
    // metric must match bit for bit. Covers a synchronized scheme, an
    // unprotected one, and the invisible-speculation path.
    for (Scheme s : {Scheme::Unsafe, Scheme::Fence,
                     Scheme::InvisiSpec, Scheme::Perspective}) {
        SCOPED_TRACE(schemeName(s));
        Experiment on(profileNamed("mmap"), s, 42);
        ASSERT_TRUE(on.pipeline().leakLedger().armed());
        RunResult ron = on.run(4, 1);

        Experiment off(profileNamed("mmap"), s, 42);
        off.pipeline().leakLedger().setEnabled(false);
        RunResult roff = off.run(4, 1);

        EXPECT_EQ(ron.cycles, roff.cycles);
        EXPECT_EQ(ron.instructions, roff.instructions);
        EXPECT_EQ(ron.kernelInstructions, roff.kernelInstructions);
        EXPECT_EQ(ron.fences, roff.fences);
        EXPECT_EQ(ron.isvFences, roff.isvFences);
        EXPECT_EQ(ron.dsvFences, roff.dsvFences);

        // The disabled ledger reports nothing, by construction.
        EXPECT_TRUE(roff.leakage.empty());
    }
}

TEST(LeakageE2E, SynchronizedPerspectiveTransmitsNothing)
{
    // Ground truth mirrors a correct synchronous policy, and the
    // default experiment policy IS synchronous (revocationLatency 0,
    // epochs in step): every load the policy allows is one the
    // classifier clears, so no source ever opens. This is the
    // structural zero the CI leak gate pins.
    for (const char *wl : {"getpid", "mmap"}) {
        for (Scheme s : {Scheme::PerspectiveStatic,
                         Scheme::Perspective,
                         Scheme::PerspectivePlusPlus, Scheme::Fence}) {
            SCOPED_TRACE(std::string(wl) + " / " + schemeName(s));
            Experiment e(profileNamed(wl), s, 42);
            RunResult r = e.run(4, 1);
            EXPECT_EQ(r.leakage.secretLoads, 0u);
            EXPECT_EQ(r.leakage.transmissions, 0u);
            EXPECT_EQ(r.leakage.bytesTransmitted, 0u);
        }
    }
}

TEST(LeakageE2E, RevocationWindowLeakIsLedgeredAndAttributed)
{
    Experiment e(attacks::pocProfile(), Scheme::Perspective, 42);
    attacks::RaceResult race = attacks::raceRevocation(e);
    ASSERT_TRUE(race.leakedInWindow);

    sim::LeakageSummary lk = e.pipeline().leakLedger().summary();
    EXPECT_GT(lk.secretLoads, 0u);
    EXPECT_GT(lk.transmissions, 0u);
    EXPECT_GT(lk.bytesTransmitted, 0u);
    EXPECT_GE(lk.bytesAtRisk, lk.bytesTransmitted);

    // Every transmitted byte came through the deferred-revocation
    // window — no other update flow is in flight.
    const auto &rev = lk.windows[static_cast<unsigned>(
        sim::LeakWindow::Revocation)];
    EXPECT_EQ(rev.bytesTransmitted, lk.bytesTransmitted);
    EXPECT_EQ(rev.transmissions, lk.transmissions);

    // The gadget table names the transmitter: a kernel-text PC inside
    // a real function, reached from the ioctl entry.
    ASSERT_FALSE(lk.topGadgets.empty());
    const auto &g = lk.topGadgets.front();
    EXPECT_NE(g.func, sim::kNoFunc);
    EXPECT_EQ(g.window, sim::LeakWindow::Revocation);
    EXPECT_GT(g.bytesTransmitted, 0u);
}

TEST(LeakageE2E, SynchronousShootdownClosesTheWindow)
{
    // Budget 0 applies the revocation inline: the same attack run
    // must classify nothing and transmit nothing — the two endpoints
    // of bench_pliability's leak-vs-budget curve.
    Experiment e(attacks::pocProfile(), Scheme::Perspective, 42);
    attacks::RaceResult race = attacks::raceRevocation(e, 0);
    EXPECT_FALSE(race.leakedInWindow);

    sim::LeakageSummary lk = e.pipeline().leakLedger().summary();
    EXPECT_EQ(lk.transmissions, 0u);
    EXPECT_EQ(lk.bytesTransmitted, 0u);
}

TEST(LeakageE2E, RunResetsLedgerBetweenMeasurements)
{
    // Experiment::run() resets the ledger after warmup, like the
    // StatSet: two identical runs report identical leakage, not a
    // running total.
    Experiment e(profileNamed("getpid"), Scheme::Unsafe, 42);
    RunResult r1 = e.run(4, 1);
    RunResult r2 = e.run(4, 1);
    EXPECT_EQ(r1.leakage.secretLoads, r2.leakage.secretLoads);
    EXPECT_EQ(r1.leakage.bytesTransmitted,
              r2.leakage.bytesTransmitted);
}
