/**
 * @file
 * Property sweep over the buddy allocator: random alloc/free
 * interleavings at mixed orders must preserve the core invariants —
 * no frame is handed out twice, ownership reflects liveness exactly,
 * and a fully-freed allocator coalesces back to max-order blocks.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "kernel/buddy.hh"

using namespace perspective::kernel;

namespace
{

struct BuddyProperty : ::testing::TestWithParam<std::uint64_t>
{
    std::uint64_t state_ = GetParam() * 2654435761u + 17;

    std::uint64_t
    rnd(std::uint64_t bound)
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return bound ? z % bound : z;
    }
};

} // namespace

TEST_P(BuddyProperty, RandomInterleavingPreservesInvariants)
{
    constexpr std::uint64_t kFrames = 2048;
    OwnershipMap own(4096);
    BuddyAllocator buddy(own, 256, kFrames);

    struct Block
    {
        Pfn pfn;
        unsigned order;
        DomainId domain;
    };
    std::vector<Block> live;
    std::map<Pfn, unsigned> frame_owner; // -> index sanity

    for (unsigned step = 0; step < 600; ++step) {
        bool do_alloc = live.empty() || rnd(100) < 60;
        if (do_alloc) {
            unsigned order = static_cast<unsigned>(rnd(4));
            DomainId dom = static_cast<DomainId>(2 + rnd(5));
            auto pfn = buddy.allocPages(order, dom);
            if (!pfn)
                continue; // full — fine
            // No overlap with any live block.
            for (std::uint64_t i = 0; i < (1ull << order); ++i) {
                auto [it, fresh] =
                    frame_owner.emplace(*pfn + i, step);
                ASSERT_TRUE(fresh)
                    << "frame " << *pfn + i << " double-allocated";
                ASSERT_EQ(own.ownerOf(*pfn + i), dom);
            }
            live.push_back({*pfn, order, dom});
        } else {
            std::size_t victim = rnd(live.size());
            Block b = live[victim];
            live[victim] = live.back();
            live.pop_back();
            buddy.freePages(b.pfn, b.order);
            for (std::uint64_t i = 0; i < (1ull << b.order); ++i) {
                frame_owner.erase(b.pfn + i);
                ASSERT_EQ(own.ownerOf(b.pfn + i), kDomainUnknown);
            }
        }
        // Global accounting.
        std::uint64_t live_frames = 0;
        for (const auto &b : live)
            live_frames += 1ull << b.order;
        ASSERT_EQ(buddy.allocatedFrames(), live_frames);
    }

    // Drain and verify full coalescing: a max-order alloc succeeds.
    for (const auto &b : live)
        buddy.freePages(b.pfn, b.order);
    EXPECT_EQ(buddy.allocatedFrames(), 0u);
    unsigned max_blocks = 0;
    while (buddy.allocPages(BuddyAllocator::kMaxOrder, 2))
        ++max_blocks;
    EXPECT_EQ(max_blocks, kFrames >> BuddyAllocator::kMaxOrder);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty,
                         ::testing::Range<std::uint64_t>(1, 13));
