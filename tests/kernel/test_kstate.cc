#include <gtest/gtest.h>

#include "kernel/kstate.hh"

using namespace perspective::kernel;

namespace
{

struct KsFixture : ::testing::Test
{
    perspective::sim::Memory mem;
    KernelState ks{mem};
};

} // namespace

TEST_F(KsFixture, ProcessResourcesOwnedByItsDomain)
{
    CgroupId cg = ks.createCgroup("tenant-a");
    Pid pid = ks.createProcess(cg);
    const Task &t = ks.task(pid);
    EXPECT_EQ(ks.ownership().ownerOfVa(t.ctxVa), t.domain);
    EXPECT_EQ(ks.ownership().ownerOf(t.stackPfn), t.domain);
    for (auto [va, cls] : t.slabObjects) {
        (void)cls;
        EXPECT_EQ(ks.ownership().ownerOfVa(va), t.domain);
    }
}

TEST_F(KsFixture, DistinctCgroupsGetDistinctDomains)
{
    CgroupId a = ks.createCgroup("a");
    CgroupId b = ks.createCgroup("b");
    Pid pa = ks.createProcess(a);
    Pid pb = ks.createProcess(b);
    EXPECT_NE(ks.domainOf(pa), ks.domainOf(pb));
}

TEST_F(KsFixture, SameCgroupSharesDomain)
{
    CgroupId a = ks.createCgroup("a");
    Pid p1 = ks.createProcess(a);
    Pid p2 = ks.createProcess(a);
    EXPECT_EQ(ks.domainOf(p1), ks.domainOf(p2));
}

TEST_F(KsFixture, ExitReleasesEverything)
{
    CgroupId cg = ks.createCgroup("t");
    std::uint64_t before = ks.buddy().allocatedFrames();
    Pid pid = ks.createProcess(cg);
    Pfn ctx = ks.task(pid).ctxPfn;
    ks.exitProcess(pid);
    EXPECT_EQ(ks.buddy().allocatedFrames(), before);
    EXPECT_EQ(ks.ownership().ownerOf(ctx), kDomainUnknown);
    EXPECT_THROW(ks.task(pid), std::runtime_error);
}

TEST_F(KsFixture, KmallocChargesDomain)
{
    CgroupId cg = ks.createCgroup("t");
    Pid pid = ks.createProcess(cg);
    Addr va = ks.kmalloc(100, ks.domainOf(pid));
    EXPECT_EQ(ks.ownership().ownerOfVa(va), ks.domainOf(pid));
    EXPECT_EQ(ks.cacheFor(100).objectSize(), 128u);
    ks.kfree(va, 100);
}

TEST_F(KsFixture, UserPageGoesIntoTaskDsv)
{
    CgroupId cg = ks.createCgroup("t");
    Pid pid = ks.createProcess(cg);
    auto pfn = ks.allocUserPage(pid);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(ks.ownership().ownerOf(*pfn), ks.domainOf(pid));
    ks.freeUserPage(pid, *pfn);
    EXPECT_EQ(ks.ownership().ownerOf(*pfn), kDomainUnknown);
}

TEST_F(KsFixture, BootRegionsHaveExpectedDomains)
{
    EXPECT_EQ(ks.ownership().ownerOf(0), kDomainUnknown);  // globals
    EXPECT_EQ(ks.ownership().ownerOf(64), kDomainUnknown); // per-cpu
    EXPECT_EQ(ks.ownership().ownerOf(72), kDomainReplicated);
}

TEST_F(KsFixture, GlobalVaIsStable)
{
    EXPECT_EQ(ks.globalVa(0), bootGlobalVa(0));
    EXPECT_EQ(ks.globalVa(5) - ks.globalVa(4), 256u);
}
