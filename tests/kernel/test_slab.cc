#include <gtest/gtest.h>

#include "kernel/slab.hh"

using namespace perspective::kernel;

namespace
{

struct SlabFixture : ::testing::Test
{
    OwnershipMap own{4096};
    BuddyAllocator buddy{own, 256, 2048};
};

} // namespace

TEST_F(SlabFixture, NormalModePacksDomainsTogether)
{
    SlabCache cache("kmalloc-64", 64, buddy, /*secure=*/false);
    Addr a = cache.alloc(2);
    Addr b = cache.alloc(3);
    // Collocation hazard: different domains share a page.
    EXPECT_EQ(directMapPfn(a), directMapPfn(b));
}

TEST_F(SlabFixture, SecureModeSeparatesDomains)
{
    SlabCache cache("kmalloc-64", 64, buddy, /*secure=*/true);
    Addr a = cache.alloc(2);
    Addr b = cache.alloc(3);
    EXPECT_NE(directMapPfn(a), directMapPfn(b));
    EXPECT_EQ(cache.pageDomain(a), 2);
    EXPECT_EQ(cache.pageDomain(b), 3);
}

TEST_F(SlabFixture, SecurePageOwnedByDomainInOwnershipMap)
{
    SlabCache cache("kmalloc-128", 128, buddy, true);
    Addr a = cache.alloc(5);
    EXPECT_EQ(own.ownerOfVa(a), 5);
}

TEST_F(SlabFixture, ObjectsWithinPageAreDistinct)
{
    SlabCache cache("kmalloc-64", 64, buddy, true);
    Addr a = cache.alloc(2);
    Addr b = cache.alloc(2);
    EXPECT_NE(a, b);
    EXPECT_EQ(directMapPfn(a), directMapPfn(b));
}

TEST_F(SlabFixture, FreeAndReuse)
{
    SlabCache cache("kmalloc-64", 64, buddy, true);
    Addr a = cache.alloc(2);
    (void)cache.alloc(2); // keep the page alive
    cache.free(a);
    Addr c = cache.alloc(2);
    EXPECT_EQ(c, a); // first free slot is reused
}

TEST_F(SlabFixture, DrainedPageReturnsToBuddy)
{
    SlabCache cache("kmalloc-2048", 2048, buddy, true);
    std::uint64_t before = buddy.allocatedFrames();
    Addr a = cache.alloc(2);
    Addr b = cache.alloc(2); // same page (2 slots)
    EXPECT_EQ(buddy.allocatedFrames(), before + 1);
    cache.free(a);
    EXPECT_EQ(cache.domainReassignments(), 0u);
    cache.free(b);
    EXPECT_EQ(cache.domainReassignments(), 1u);
    EXPECT_EQ(buddy.allocatedFrames(), before);
}

TEST_F(SlabFixture, UtilizationTracksActiveObjects)
{
    SlabCache cache("kmalloc-1024", 1024, buddy, true);
    EXPECT_DOUBLE_EQ(cache.utilization(), 1.0);
    cache.alloc(2); // 1 of 4 slots
    EXPECT_DOUBLE_EQ(cache.utilization(), 0.25);
    cache.alloc(2);
    EXPECT_DOUBLE_EQ(cache.utilization(), 0.5);
}

TEST_F(SlabFixture, SecureModeFragmentsMoreThanNormal)
{
    // Two domains × few objects each: secure mode needs 2 pages where
    // normal mode needs 1 — the memory-fragmentation cost of
    // isolation (Section 9.2).
    SlabCache normal("n", 256, buddy, false);
    SlabCache secure("s", 256, buddy, true);
    for (DomainId d = 2; d < 4; ++d) {
        normal.alloc(d);
        secure.alloc(d);
    }
    EXPECT_EQ(normal.pagesInUse(), 1u);
    EXPECT_EQ(secure.pagesInUse(), 2u);
    EXPECT_GT(normal.utilization(), secure.utilization());
}

TEST_F(SlabFixture, StatsCountAllocsAndFrees)
{
    SlabCache cache("kmalloc-64", 64, buddy, true);
    Addr a = cache.alloc(2);
    cache.free(a);
    EXPECT_EQ(cache.totalAllocs(), 1u);
    EXPECT_EQ(cache.totalFrees(), 1u);
    EXPECT_EQ(cache.activeObjects(), 0u);
}
