#include <gtest/gtest.h>

#include "kernel/interp.hh"
#include "sim/program.hh"

using namespace perspective::kernel;
using namespace perspective::sim;

TEST(Interp, ArithmeticAndMemory)
{
    Program prog;
    FuncId f = prog.addFunction("main", true);
    prog.func(f).body = {
        movImm(1, 21),
        shlImm(2, 1, 1),
        movImm(3, 0x9000),
        store(3, 0, 2),
        load(4, 3, 0),
        ret(),
    };
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    auto r = in.run(f);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(in.regValue(4), 42u);
    EXPECT_EQ(mem.read(0x9000), 42u);
}

TEST(Interp, BranchesAndLoops)
{
    Program prog;
    FuncId f = prog.addFunction("main", true);
    prog.func(f).body = {
        movImm(1, 0),
        movImm(2, 0),
        branchImm(Cond::Ge, 1, 5, 6),
        add(2, 2, 1),
        addImm(1, 1, 1),
        jump(2),
        ret(),
    };
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    in.run(f);
    EXPECT_EQ(in.regValue(2), 10u); // 0+1+2+3+4
}

TEST(Interp, IndirectCallThroughMemory)
{
    Program prog;
    FuncId callee = prog.addFunction("callee", true);
    FuncId f = prog.addFunction("main", true);
    prog.func(callee).body = {movImm(5, 77), ret()};
    prog.func(f).body = {
        loadAbs(1, 0xa000),
        indirectCall(1),
        ret(),
    };
    prog.layout();
    Memory mem;
    mem.write(0xa000, callee);
    Interpreter in(prog, mem);
    auto r = in.run(f);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(in.regValue(5), 77u);
}

TEST(Interp, OnFuncVisitorSeesCallChain)
{
    Program prog;
    FuncId leaf = prog.addFunction("leaf", true);
    FuncId mid = prog.addFunction("mid", true);
    FuncId top = prog.addFunction("top", true);
    prog.func(leaf).body = {ret()};
    prog.func(mid).body = {call(leaf), ret()};
    prog.func(top).body = {call(mid), ret()};
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    std::vector<FuncId> seen;
    in.run(top, 1000, [&](FuncId f) { seen.push_back(f); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], top);
    EXPECT_EQ(seen[1], mid);
    EXPECT_EQ(seen[2], leaf);
}

TEST(Interp, DryStoresLeaveMemoryUntouched)
{
    Program prog;
    FuncId f = prog.addFunction("main", true);
    prog.func(f).body = {
        movImm(1, 0xb000),
        movImm(2, 5),
        store(1, 0, 2),
        ret(),
    };
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    in.setDryStores(true);
    in.run(f);
    EXPECT_EQ(mem.read(0xb000), 0u);
}

TEST(Interp, BudgetExhaustionReportsIncomplete)
{
    Program prog;
    FuncId f = prog.addFunction("main", true);
    prog.func(f).body = {jump(0)};
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    auto r = in.run(f, 100);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.uops, 100u);
}

TEST(Interp, WildIndirectTargetIsSkipped)
{
    Program prog;
    FuncId f = prog.addFunction("main", true);
    prog.func(f).body = {
        movImm(1, 0x7fffffff), // not a function id
        indirectCall(1),
        movImm(2, 1),
        ret(),
    };
    prog.layout();
    Memory mem;
    Interpreter in(prog, mem);
    auto r = in.run(f);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(in.regValue(2), 1u);
}
