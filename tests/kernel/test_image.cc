#include <gtest/gtest.h>

#include <set>

#include "kernel/image.hh"
#include "kernel/interp.hh"
#include "kernel/kstate.hh"
#include "kernel/process.hh"
#include "kernel/syscall_exec.hh"

using namespace perspective::kernel;
using perspective::sim::FuncId;
using perspective::sim::kNoFunc;

namespace
{

/** Shared, lazily-built image: generation is the expensive part. */
struct ImageFixture : ::testing::Test
{
    static perspective::sim::Memory &mem()
    {
        static perspective::sim::Memory m;
        return m;
    }
    static KernelImage &img()
    {
        static KernelImage i(mem());
        return i;
    }
};

} // namespace

TEST_F(ImageFixture, ReachesTargetScale)
{
    EXPECT_GE(img().numKernelFunctions(), 28000u);
    EXPECT_LT(img().numKernelFunctions(), 30000u);
}

TEST_F(ImageFixture, EverySyscallHasAnEntry)
{
    for (unsigned i = 0; i < kNumSyscalls; ++i) {
        FuncId e = img().entryOf(static_cast<Sys>(i));
        EXPECT_NE(e, kNoFunc);
        EXPECT_FALSE(img().program().func(e).body.empty());
    }
}

TEST_F(ImageFixture, GadgetCensusMatchesKasper)
{
    // 805 MDS + 509 Port + 219 Cache from the census, plus the
    // concrete PoC gadgets.
    unsigned n = img().totalGadgets();
    EXPECT_GE(n, 805u + 509u + 219u - 10);
    EXPECT_LE(n, 805u + 509u + 219u + 10);
}

TEST_F(ImageFixture, GadgetsMostlyHideInColdCode)
{
    unsigned cold = 0, total = 0;
    for (FuncId f : img().functionsWithGadgets()) {
        total += 1;
        if (img().classOf(f) == KernelImage::FuncClass::Cold)
            cold += 1;
    }
    EXPECT_GT(total, 1000u);
    EXPECT_GT(static_cast<double>(cold) / total, 0.6);
}

TEST_F(ImageFixture, BodiesEndInControlTransfer)
{
    // Every body must be fetch-safe: last op is ret or jump.
    for (std::size_t f = 0; f < img().numKernelFunctions(); ++f) {
        const auto &body = img().program().func(
            static_cast<FuncId>(f)).body;
        ASSERT_FALSE(body.empty());
        auto last = body.back().op;
        EXPECT_TRUE(last == perspective::sim::Op::Return ||
                    last == perspective::sim::Op::Jump)
            << img().program().func(static_cast<FuncId>(f)).name;
    }
}

TEST_F(ImageFixture, BranchTargetsInBounds)
{
    for (std::size_t f = 0; f < img().numKernelFunctions(); ++f) {
        const auto &body = img().program().func(
            static_cast<FuncId>(f)).body;
        for (const auto &op : body) {
            if (op.op == perspective::sim::Op::Branch ||
                op.op == perspective::sim::Op::Jump) {
                ASSERT_LT(op.target, body.size());
            }
        }
    }
}

TEST_F(ImageFixture, CalleesDerivedFromBodies)
{
    FuncId e = img().entryOf(Sys::Read);
    const auto &callees = img().info(e).callees;
    EXPECT_FALSE(callees.empty());
    for (FuncId c : callees)
        EXPECT_LT(c, img().numKernelFunctions());
}

TEST_F(ImageFixture, DispatchTargetsAreIndirectOnly)
{
    // The runtime target of vfs_dispatch_read must have no direct
    // caller anywhere (that is what static analysis cannot see).
    auto [disp, idx] = img().vfsReadDispatch();
    (void)idx;
    ASSERT_FALSE(img().info(disp).indirectTargets.empty());
    FuncId target = img().info(disp).indirectTargets[0];
    for (std::size_t f = 0; f < img().numKernelFunctions(); ++f) {
        for (FuncId c : img().info(static_cast<FuncId>(f)).callees)
            ASSERT_NE(c, target);
    }
}

TEST_F(ImageFixture, DeterministicAcrossBuilds)
{
    perspective::sim::Memory mem2;
    KernelImage img2(mem2);
    ASSERT_EQ(img2.numKernelFunctions(), img().numKernelFunctions());
    // Spot-check some bodies.
    for (FuncId f : {FuncId{0}, FuncId{100}, FuncId{20000}}) {
        const auto &a = img().program().func(f).body;
        const auto &b = img2.program().func(f).body;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(static_cast<int>(a[i].op),
                      static_cast<int>(b[i].op));
            EXPECT_EQ(a[i].imm, b[i].imm);
        }
    }
}

TEST_F(ImageFixture, SyscallRunsToCompletionOnInterpreter)
{
    // Requires layout + a process context.
    static perspective::sim::Memory mem2;
    static KernelImage image2(mem2);
    image2.program().layout();
    KernelState ks(mem2);
    CgroupId cg = ks.createCgroup("t");
    Pid pid = ks.createProcess(cg);
    SyscallExecutor exec(ks, image2);

    for (Sys s : {Sys::Getpid, Sys::Read, Sys::Poll, Sys::Mmap,
                  Sys::Fork, Sys::Open, Sys::Ioctl, Sys::Recv}) {
        SyscallInvocation inv{s, 1, 8, 2};
        auto prep = exec.prepare(pid, inv);
        Interpreter in(image2.program(), mem2);
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        auto res = in.run(image2.entryOf(s), 200'000);
        EXPECT_TRUE(res.completed) << sysName(s);
        EXPECT_GT(res.uops, 50u) << sysName(s);
        exec.finish(pid, inv);
    }
}

TEST_F(ImageFixture, HotPathAvoidsErrorFunctions)
{
    // With r14 == 0 a benign getpid must never visit err_*
    // functions; some targeted fault-injection id must.
    static perspective::sim::Memory mem3;
    static KernelImage image3(mem3);
    image3.program().layout();
    KernelState ks(mem3);
    Pid pid = ks.createProcess(ks.createCgroup("t"));
    SyscallExecutor exec(ks, image3);

    auto visits_err = [&](std::uint64_t fault) {
        SyscallInvocation inv{Sys::Getpid, 0, 0, 0};
        auto prep = exec.prepare(pid, inv);
        Interpreter in(image3.program(), mem3);
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        in.setReg(reg::kFault, fault);
        bool saw_err = false;
        in.run(image3.entryOf(Sys::Getpid), 200'000,
               [&](FuncId f) {
                   if (image3.program().func(f).name.rfind("err_",
                                                           0) == 0)
                       saw_err = true;
               });
        exec.finish(pid, inv);
        return saw_err;
    };
    EXPECT_FALSE(visits_err(0));
    bool any = false;
    for (std::uint64_t id = 1; id <= 2048 && !any; ++id)
        any = visits_err(id);
    EXPECT_TRUE(any);
}
