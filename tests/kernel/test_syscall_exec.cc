#include <gtest/gtest.h>

#include "kernel/process.hh"
#include "kernel/syscall_exec.hh"

using namespace perspective::kernel;
namespace sim = perspective::sim;

namespace
{

struct ExecFixture : ::testing::Test
{
    sim::Memory mem;
    KernelImage img{mem};
    std::unique_ptr<KernelState> ks;
    std::unique_ptr<SyscallExecutor> exec;
    Pid pid = 0;

    ExecFixture()
    {
        img.program().layout();
        ks = std::make_unique<KernelState>(mem);
        pid = ks->createProcess(ks->createCgroup("t"));
        exec = std::make_unique<SyscallExecutor>(*ks, img);
    }

    std::uint64_t
    regOf(const PreparedSyscall &p, unsigned r)
    {
        // Assignments apply in order; the last one wins (syscall-
        // specific values override the baseline argument setup).
        bool found = false;
        std::uint64_t out = 0;
        for (auto [reg, val] : p.regs) {
            if (reg == r) {
                out = val;
                found = true;
            }
        }
        if (!found)
            ADD_FAILURE() << "register " << r << " not prepared";
        return out;
    }
};

} // namespace

TEST_F(ExecFixture, BaselineRegistersAlwaysSet)
{
    auto p = exec->prepare(pid, {Sys::Getpid, 0, 0, 0});
    EXPECT_EQ(regOf(p, reg::kCtx), ks->task(pid).ctxVa);
    EXPECT_EQ(regOf(p, reg::kPerCpu), ks->perCpuBase());
    EXPECT_EQ(regOf(p, reg::kFault), 0u);
    exec->finish(pid, {Sys::Getpid, 0, 0, 0});
}

TEST_F(ExecFixture, MmapAllocatesOwnedRegion)
{
    std::uint64_t before = ks->buddy().allocatedFrames();
    SyscallInvocation inv{Sys::Mmap, 2, 0, 0}; // order 2 = 4 pages
    auto p = exec->prepare(pid, inv);
    EXPECT_EQ(regOf(p, reg::kArg1), 4u);
    Addr base = regOf(p, reg::kArg2);
    EXPECT_EQ(ks->ownership().ownerOfVa(base), ks->domainOf(pid));
    exec->finish(pid, inv);
    EXPECT_EQ(ks->buddy().allocatedFrames(), before + 4);
}

TEST_F(ExecFixture, PageFaultIsTransient)
{
    std::uint64_t before = ks->buddy().allocatedFrames();
    SyscallInvocation inv{Sys::PageFault, 0, 0, 0};
    exec->prepare(pid, inv);
    EXPECT_GT(ks->buddy().allocatedFrames(), before);
    exec->finish(pid, inv);
    EXPECT_EQ(ks->buddy().allocatedFrames(), before);
}

TEST_F(ExecFixture, ForkCreatesAndReapsChild)
{
    std::size_t tasks_before = ks->numTasks();
    SyscallInvocation inv{Sys::Fork, 0, 0, 0};
    auto p = exec->prepare(pid, inv);
    EXPECT_EQ(ks->numTasks(), tasks_before + 1);
    // Child ctx is the copy destination; it must differ from the
    // parent's and belong to the same cgroup's domain.
    Addr child_ctx = regOf(p, reg::kArg2);
    EXPECT_NE(child_ctx, ks->task(pid).ctxVa);
    EXPECT_EQ(ks->ownership().ownerOfVa(child_ctx),
              ks->domainOf(pid));
    exec->finish(pid, inv);
    EXPECT_EQ(ks->numTasks(), tasks_before);
}

TEST_F(ExecFixture, PollAllocatesTransientMetadata)
{
    auto &cache = ks->cacheFor(256);
    std::uint64_t before = cache.activeObjects();
    SyscallInvocation inv{Sys::Poll, 0, 64, 0};
    exec->prepare(pid, inv);
    EXPECT_EQ(cache.activeObjects(), before + 1);
    exec->finish(pid, inv);
    EXPECT_EQ(cache.activeObjects(), before);
}

TEST_F(ExecFixture, OpenCloseBalanceSlabObjects)
{
    auto &cache = ks->cacheFor(512);
    std::uint64_t before = cache.activeObjects();
    exec->prepare(pid, {Sys::Open, 0, 0, 3});
    exec->finish(pid, {Sys::Open, 0, 0, 3});
    EXPECT_EQ(cache.activeObjects(), before + 1);
    exec->prepare(pid, {Sys::Close, 0, 0, 0});
    exec->finish(pid, {Sys::Close, 0, 0, 0});
    EXPECT_EQ(cache.activeObjects(), before);
}

TEST_F(ExecFixture, IoctlClampsBenignIndex)
{
    auto p = exec->prepare(pid, {Sys::Ioctl, 1234, 0, 0});
    EXPECT_LT(regOf(p, reg::kArg0), 16u);
    exec->finish(pid, {Sys::Ioctl, 1234, 0, 0});
}

TEST_F(ExecFixture, ReleaseTaskFreesLazyRegions)
{
    std::uint64_t before = ks->buddy().allocatedFrames();
    // Touch the lazy regions.
    exec->prepare(pid, {Sys::Read, 0, 8, 0});
    exec->finish(pid, {Sys::Read, 0, 8, 0});
    exec->prepare(pid, {Sys::Poll, 0, 8, 0});
    exec->finish(pid, {Sys::Poll, 0, 8, 0});
    EXPECT_GT(ks->buddy().allocatedFrames(), before);
    exec->releaseTask(pid);
    EXPECT_EQ(ks->buddy().allocatedFrames(), before);
}

TEST_F(ExecFixture, MunmapReleasesLastMapping)
{
    SyscallInvocation mm{Sys::Mmap, 0, 0, 0};
    exec->prepare(pid, mm);
    exec->finish(pid, mm);
    std::uint64_t with_map = ks->buddy().allocatedFrames();
    SyscallInvocation um{Sys::Munmap, 0, 0, 0};
    exec->prepare(pid, um);
    exec->finish(pid, um);
    EXPECT_EQ(ks->buddy().allocatedFrames(), with_map - 1);
}
