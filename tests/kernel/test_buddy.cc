#include <gtest/gtest.h>

#include "kernel/buddy.hh"

using namespace perspective::kernel;

namespace
{

struct BuddyFixture : ::testing::Test
{
    OwnershipMap own{1024};
    BuddyAllocator buddy{own, 256, 512};
};

} // namespace

TEST_F(BuddyFixture, AllocAssignsOwnership)
{
    auto pfn = buddy.allocPages(0, 5);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(own.ownerOf(*pfn), 5);
    EXPECT_EQ(buddy.allocatedFrames(), 1u);
}

TEST_F(BuddyFixture, FreeReleasesOwnership)
{
    auto pfn = buddy.allocPages(0, 5);
    buddy.freePages(*pfn, 0);
    EXPECT_EQ(own.ownerOf(*pfn), kDomainUnknown);
    EXPECT_EQ(buddy.allocatedFrames(), 0u);
}

TEST_F(BuddyFixture, OrderAllocationIsContiguousAndAligned)
{
    auto pfn = buddy.allocPages(3, 7);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ((*pfn - 256) % 8, 0u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(own.ownerOf(*pfn + i), 7);
}

TEST_F(BuddyFixture, ExhaustionReturnsNullopt)
{
    std::vector<Pfn> all;
    while (auto p = buddy.allocPages(0, 1))
        all.push_back(*p);
    EXPECT_EQ(all.size(), 512u);
    EXPECT_FALSE(buddy.allocPages(0, 1).has_value());
    for (Pfn p : all)
        buddy.freePages(p, 0);
    EXPECT_TRUE(buddy.allocPages(0, 1).has_value());
}

TEST_F(BuddyFixture, CoalescingRebuildsLargeBlocks)
{
    // Drain everything as single pages, free all, then a max-order
    // allocation must succeed again (proves coalescing works).
    std::vector<Pfn> all;
    while (auto p = buddy.allocPages(0, 1))
        all.push_back(*p);
    for (Pfn p : all)
        buddy.freePages(p, 0);
    EXPECT_TRUE(buddy.allocPages(8, 2).has_value());
}

TEST_F(BuddyFixture, DistinctDomainsGetDistinctFrames)
{
    auto a = buddy.allocPages(0, 3);
    auto b = buddy.allocPages(0, 4);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(own.ownerOf(*a), 3);
    EXPECT_EQ(own.ownerOf(*b), 4);
}

TEST(Ownership, ListenerFiresOnAssign)
{
    OwnershipMap own(64);
    Pfn last = 0;
    unsigned count = 0;
    own.addListener([&](Pfn p) {
        last = p;
        ++count;
    });
    own.assign(7, 3);
    EXPECT_EQ(last, 7u);
    EXPECT_EQ(count, 1u);
}

TEST(Ownership, VaLookupOutsideDirectMapIsUnknown)
{
    OwnershipMap own(64);
    own.assign(1, 9);
    EXPECT_EQ(own.ownerOfVa(directMapVa(1)), 9);
    EXPECT_EQ(own.ownerOfVa(0x1000), kDomainUnknown);
}
