/**
 * @file
 * Semantics of the planted gadget IR: benign executions must be
 * architecturally harmless and bounded, and the PoC gadget handles
 * must point at functions with the expected shape.
 */

#include <gtest/gtest.h>

#include "kernel/image.hh"
#include "kernel/interp.hh"
#include "kernel/kstate.hh"
#include "kernel/process.hh"
#include "kernel/syscall_exec.hh"

using namespace perspective::kernel;
namespace sim = perspective::sim;

namespace
{

struct GadgetFixture : ::testing::Test
{
    sim::Memory mem;
    KernelImage img{mem};
    std::unique_ptr<KernelState> ks;
    std::unique_ptr<SyscallExecutor> exec;
    Pid pid = 0;

    GadgetFixture()
    {
        img.program().layout();
        ks = std::make_unique<KernelState>(mem);
        pid = ks->createProcess(ks->createCgroup("t"));
        exec = std::make_unique<SyscallExecutor>(*ks, img);
    }
};

} // namespace

TEST_F(GadgetFixture, PocHandlesAreDistinctAndAnnotated)
{
    std::set<sim::FuncId> handles = {
        img.pocDriverGadget(), img.pocPtraceGadget(),
        img.pocBpfGadget(), img.pocHijackGadget()};
    EXPECT_EQ(handles.size(), 4u);
    for (sim::FuncId f : handles) {
        EXPECT_NE(f, sim::kNoFunc);
        EXPECT_FALSE(img.info(f).gadgets.empty());
    }
}

TEST_F(GadgetFixture, GuardBoundIsSixteen)
{
    EXPECT_EQ(mem.read(img.pocBoundGlobalVa()), 16u);
}

TEST_F(GadgetFixture, BenignGadgetExecutionStaysInBounds)
{
    // Architecturally executing the driver gadget with an in-bounds
    // index reads only the caller's own table region; interpreter
    // semantics terminate and return cleanly.
    SyscallInvocation inv{Sys::Ioctl, 5, 0, 0};
    auto prep = exec->prepare(pid, inv);
    Interpreter in(img.program(), mem);
    for (auto [r, v] : prep.regs)
        in.setReg(r, v);
    auto res = in.run(img.entryOf(Sys::Ioctl), 200'000);
    EXPECT_TRUE(res.completed);
    exec->finish(pid, inv);
}

TEST_F(GadgetFixture, OutOfBoundsIndexIsArchitecturallySkipped)
{
    // The guard branch must skip the gadget body for an index >= 16:
    // run the gadget function directly with a poisoned index and a
    // canary in the transmit register.
    Interpreter in(img.program(), mem);
    in.setReg(reg::kCtx, ks->task(pid).ctxVa);
    in.setReg(reg::kArg0, 1 << 20);
    in.setReg(30, 0x1234);
    in.run(img.pocDriverGadget(), 100'000);
    EXPECT_EQ(in.regValue(30), 0x1234u)
        << "transmit register must be untouched architecturally";
}

TEST_F(GadgetFixture, HijackGadgetLoadsCurrentTaskSecret)
{
    Addr secret = ks->task(pid).ctxVa + KernelImage::kSecretCtxOff;
    mem.write(secret, 0x42);
    Interpreter in(img.program(), mem);
    in.setReg(reg::kCtx, ks->task(pid).ctxVa);
    in.run(img.pocHijackGadget(), 10'000);
    EXPECT_EQ(in.regValue(24), 0x42u);
}

TEST_F(GadgetFixture, PathWalkRecursionIsArgBounded)
{
    Interpreter in(img.program(), mem);
    in.setReg(reg::kCtx, ks->task(pid).ctxVa);
    in.setReg(reg::kArg2, 20);
    auto res = in.run(img.pathWalkRecursive(), 100'000);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(in.regValue(reg::kArg2), 0u);
}
