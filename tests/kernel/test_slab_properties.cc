/**
 * @file
 * Property sweep over the slab allocator (both modes): random
 * alloc/free interleavings across domains and object sizes must
 * preserve: distinct live objects, accurate utilization accounting,
 * the secure-mode isolation invariant (no page ever holds two
 * domains' objects), and full page return on drain.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "kernel/slab.hh"

using namespace perspective::kernel;
namespace sim = perspective::sim;

namespace
{

struct SlabProperty
    : ::testing::TestWithParam<std::tuple<std::uint64_t, bool,
                                          std::uint32_t>>
{
    std::uint64_t state_ = std::get<0>(GetParam()) * 77 + 3;

    std::uint64_t
    rnd(std::uint64_t bound)
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return bound ? z % bound : z;
    }
};

} // namespace

TEST_P(SlabProperty, RandomChurnKeepsInvariants)
{
    auto [seed, secure, objsize] = GetParam();
    (void)seed;
    OwnershipMap own(8192);
    BuddyAllocator buddy(own, 256, 4096);
    SlabCache cache("prop", objsize, buddy, secure);

    std::map<sim::Addr, DomainId> live;
    for (unsigned step = 0; step < 800; ++step) {
        if (live.empty() || rnd(100) < 58) {
            DomainId dom = static_cast<DomainId>(2 + rnd(4));
            sim::Addr va = cache.alloc(dom);
            ASSERT_NE(va, 0u);
            ASSERT_EQ(live.count(va), 0u) << "address reused while "
                                             "live";
            live[va] = dom;
        } else {
            auto it = live.begin();
            std::advance(it, rnd(live.size()));
            cache.free(it->first);
            live.erase(it);
        }
        ASSERT_EQ(cache.activeObjects(), live.size());

        if (secure) {
            // Isolation invariant: all live objects within one page
            // belong to one domain, and the page's ownership matches.
            std::map<Pfn, DomainId> page_domain;
            for (auto &[va, dom] : live) {
                Pfn pfn = directMapPfn(va);
                auto [it2, fresh] = page_domain.emplace(pfn, dom);
                ASSERT_EQ(it2->second, dom)
                    << "two domains share page " << pfn;
                ASSERT_EQ(own.ownerOf(pfn), dom);
            }
        }
    }

    // Drain: every page must go back to the buddy allocator.
    for (auto &[va, dom] : live)
        cache.free(va);
    EXPECT_EQ(cache.activeObjects(), 0u);
    EXPECT_EQ(cache.pagesInUse(), 0u);
    EXPECT_EQ(buddy.allocatedFrames(), 0u);
    EXPECT_EQ(cache.totalAllocs(), cache.totalFrees());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SlabProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Bool(),
                       ::testing::Values<std::uint32_t>(8, 64, 256,
                                                        1024)));
