#include <gtest/gtest.h>

#include "analysis/scanner.hh"
#include "core/isv_builders.hh"
#include "kernel/kstate.hh"
#include "workloads/driver.hh"
#include "workloads/experiment.hh"
#include "workloads/profiles.hh"

using namespace perspective;
using namespace perspective::analysis;
using namespace perspective::kernel;

namespace
{

struct ScannerFixture : ::testing::Test
{
    sim::Memory mem;
    KernelImage img{mem};
    workloads::DriverSet drivers{img};
    std::unique_ptr<KernelState> ks;
    std::unique_ptr<SyscallExecutor> exec;
    Pid pid = 0;

    ScannerFixture()
    {
        img.program().layout();
        ks = std::make_unique<KernelState>(mem);
        pid = ks->createProcess(ks->createCgroup("fuzz"));
        exec = std::make_unique<SyscallExecutor>(*ks, img);
    }
};

} // namespace

TEST_F(ScannerFixture, FindsGadgetsAndAccountsTime)
{
    GadgetScanner scanner(img, mem, *exec, pid);
    ScannerConfig cfg;
    cfg.executions = 400;
    auto res = scanner.scan(cfg);
    EXPECT_GT(res.gadgetsFound, 10u);
    EXPECT_GT(res.simHours, 0.0);
    EXPECT_GT(res.functionsAnalyzed, 200u);
    EXPECT_EQ(res.executions, 400u);
    EXPECT_EQ(res.gadgetsFound,
              res.mdsFound + res.portFound + res.cacheFound);
}

TEST_F(ScannerFixture, DeterministicForSameSeed)
{
    GadgetScanner s1(img, mem, *exec, pid);
    GadgetScanner s2(img, mem, *exec, pid);
    ScannerConfig cfg;
    cfg.executions = 200;
    auto r1 = s1.scan(cfg);
    auto r2 = s2.scan(cfg);
    EXPECT_EQ(r1.gadgetsFound, r2.gadgetsFound);
    EXPECT_EQ(r1.functionsAnalyzed, r2.functionsAnalyzed);
}

TEST_F(ScannerFixture, BoundedScanAnalyzesOnlyIsvFunctions)
{
    core::StaticIsvBuilder b(img);
    core::IsvView view = b.build({Sys::Read, Sys::Poll, Sys::Open,
                                  Sys::Close, Sys::Getpid});
    GadgetScanner scanner(img, mem, *exec, pid);
    ScannerConfig cfg;
    cfg.executions = 400;
    auto bounded = scanner.scan(cfg, &view);
    auto unbounded = scanner.scan(cfg);
    EXPECT_LT(bounded.functionsAnalyzed,
              unbounded.functionsAnalyzed);
    EXPECT_LT(bounded.simHours, unbounded.simHours);
    for (auto f : bounded.vulnerableFunctions)
        EXPECT_TRUE(view.containsFunction(f));
}

TEST_F(ScannerFixture, BoundedScanImprovesDiscoveryRate)
{
    // Figure 9.1's headline: gadgets/hour improves when the search
    // space is bounded by the ISV.
    core::StaticIsvBuilder b(img);
    std::set<Sys> sys;
    for (Sys s : workloads::staticSyscallSet(
             workloads::nginxProfile()))
        sys.insert(s);
    core::IsvView view = b.build(sys);

    GadgetScanner scanner(img, mem, *exec, pid);
    ScannerConfig cfg;
    cfg.executions = 800;
    auto bounded = scanner.scan(cfg, &view);
    auto unbounded = scanner.scan(cfg);
    ASSERT_GT(bounded.gadgetsFound, 0u);
    EXPECT_GT(bounded.discoveryRate(), unbounded.discoveryRate());
}

TEST_F(ScannerFixture, BoundedFindingsMatchInViewGadgetCensus)
{
    // The equivalence the ISV++ fast path in Experiment relies on:
    // a sufficiently long bounded campaign discovers exactly the
    // gadget functions inside the view that fuzzing can reach.
    core::StaticIsvBuilder b(img);
    core::IsvView view = b.build({Sys::Brk, Sys::Uname});
    GadgetScanner scanner(img, mem, *exec, pid);
    ScannerConfig cfg;
    cfg.executions = 1500;
    auto res = scanner.scan(cfg, &view);
    for (auto f : res.vulnerableFunctions) {
        EXPECT_TRUE(view.containsFunction(f));
        EXPECT_FALSE(img.info(f).gadgets.empty());
    }
}
