/**
 * @file
 * Runtime-pliability unit tests: the dynamic-update subsystem piece
 * by piece. Incremental ISV recomputation (delta BFS vs a full
 * rebuild), the audit-resurrection caveat, the modeled update
 * latency, module carving/loading, and the DEXCR-style fleet
 * enforcement value through fork/exec and the policy-side flip.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/isv_builders.hh"
#include "core/perspective.hh"
#include "kernel/fleet.hh"
#include "kernel/kstate.hh"
#include "kernel/modules.hh"
#include "sim/memory.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::kernel;
using perspective::sim::Addr;
using perspective::sim::FuncId;

namespace
{

/** One shared, laid-out kernel image for the view-update tests. */
struct Stack
{
    sim::Memory mem;
    KernelImage img{mem};
    Stack() { img.program().layout(); }
};

Stack &
stack()
{
    static Stack s;
    return s;
}

} // namespace

TEST(Pliability, ExtendViewMatchesFullRebuild)
{
    // The delta BFS must land on exactly the closure of
    // old-roots ∪ new-roots: incremental and from-scratch views are
    // indistinguishable (for a closure-built view — no audit yet).
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    std::set<Sys> syscalls = {Sys::Read, Sys::Getpid};

    IsvView incremental = b.build(syscalls);
    ModuleRegistry mods(s.img, s.mem);
    ASSERT_GE(mods.numModules(), 2u);
    FuncId extra = mods.entry(1);
    ASSERT_FALSE(incremental.containsFunction(extra));
    auto st = b.extendView(incremental, {extra});
    EXPECT_GT(st.added, 0u);
    EXPECT_GE(st.visited, st.added);

    std::vector<FuncId> all_roots = {
        s.img.entryOf(Sys::Read), s.img.entryOf(Sys::Getpid), extra};
    auto full = b.closure(all_roots);
    for (FuncId f = 0; f < s.img.numKernelFunctions(); ++f) {
        ASSERT_EQ(incremental.containsFunction(f),
                  full.count(f) != 0)
            << "func " << f;
    }
}

TEST(Pliability, ExtendViewIsDeltaBounded)
{
    // A second update from the same root is a no-op: the frontier
    // stops at already-included functions, so cost tracks the *new*
    // subgraph, not the whole closure.
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    IsvView v = b.build({Sys::Read});
    ModuleRegistry mods(s.img, s.mem);
    FuncId extra = mods.entry(1);

    auto first = b.extendView(v, {extra});
    EXPECT_GT(first.added, 0u);
    std::size_t size_after = v.numFunctions();

    auto again = b.extendView(v, {extra});
    EXPECT_EQ(again.added, 0u);
    EXPECT_EQ(v.numFunctions(), size_after);

    // Extending with an already-included syscall entry: same.
    auto noop = b.extendView(v, {s.img.entryOf(Sys::Read)});
    EXPECT_EQ(noop.added, 0u);
}

TEST(Pliability, ExtendViewResurrectsAuditedFunction)
{
    // The documented ISV++ caveat: the traversal re-includes
    // functions an audit previously excluded when they are reachable
    // from the new roots, so callers must re-run applyAudit — the
    // load-time scan — after every extension.
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    IsvView v = b.build({Sys::Read});
    FuncId gadget = s.img.pocHijackGadget();
    ModuleRegistry mods(s.img, s.mem);
    ASSERT_EQ(mods.entry(0), gadget); // module 0 enters via the gadget

    b.extendView(v, {gadget});
    ASSERT_TRUE(v.containsFunction(gadget));
    applyAudit(v, {gadget});
    ASSERT_FALSE(v.containsFunction(gadget));

    // The module is re-extended (say a second load event): the
    // audited exclusion silently comes back...
    b.extendView(v, {gadget});
    EXPECT_TRUE(v.containsFunction(gadget));
    // ...until the load-time audit runs again.
    applyAudit(v, {gadget});
    EXPECT_FALSE(v.containsFunction(gadget));
}

TEST(Pliability, IsvUpdateLatencyModel)
{
    StaticIsvBuilder::ExtendStats st;
    st.added = 2;
    st.visited = 5;
    EXPECT_EQ(isvUpdateLatency(st), kIsvUpdateBase +
                                        2 * kIsvUpdatePerFunc +
                                        5 * kIsvUpdatePerEdge);
    st = {};
    EXPECT_EQ(isvUpdateLatency(st), kIsvUpdateBase);
}

TEST(Pliability, ModuleRegistryCarvesColdBulk)
{
    sim::Memory mem;
    KernelImage img{mem};
    img.program().layout();

    ModuleRegistry mods(img, mem, /*module_size=*/12);
    ASSERT_GT(mods.numModules(), 0u);
    EXPECT_EQ(mods.entry(0), img.pocHijackGadget());

    // The carve is a disjoint cover of the image's cold bulk.
    std::size_t total = 0, cold = 0;
    std::set<FuncId> seen;
    for (unsigned m = 0; m < mods.numModules(); ++m) {
        EXPECT_FALSE(mods.loaded(m));
        EXPECT_EQ(mods.entry(m), mods.functions(m).front());
        for (FuncId f : mods.functions(m)) {
            EXPECT_EQ(img.classOf(f), KernelImage::FuncClass::Cold);
            EXPECT_TRUE(seen.insert(f).second) << "func " << f;
            ++total;
        }
    }
    for (FuncId f = 0; f < img.numKernelFunctions(); ++f)
        cold += img.classOf(f) == KernelImage::FuncClass::Cold;
    EXPECT_EQ(total, cold);

    // insmod binds the entry into the ops slot of this experiment's
    // memory and reports the root to extend the view from.
    FuncId entry = mods.load(0, /*fs_type=*/0, /*op_slot=*/5);
    EXPECT_EQ(entry, img.pocHijackGadget());
    EXPECT_TRUE(mods.loaded(0));
    EXPECT_EQ(mem.read(fopsSlotVa(0, 5)), entry);

    EXPECT_THROW(ModuleRegistry(img, mem, 0), std::invalid_argument);
}

TEST(Pliability, FleetControlOnlyTightens)
{
    FleetControl fc;
    EXPECT_EQ(fc.globalBits(), 0u);
    EXPECT_EQ(fc.effective(0), 0u);

    std::uint64_t g0 = fc.gen();
    fc.enforce(kFleetBlockUnknown);
    EXPECT_EQ(fc.globalBits(), kFleetBlockUnknown);
    EXPECT_GT(fc.gen(), g0);

    // There is no clear: later writes can only add aspects.
    fc.enforce(kFleetRestrictIsv);
    EXPECT_EQ(fc.globalBits(),
              kFleetBlockUnknown | kFleetRestrictIsv);
    fc.enforce(0);
    EXPECT_EQ(fc.globalBits(),
              kFleetBlockUnknown | kFleetRestrictIsv);

    // A task tightens itself further but never escapes the floor.
    EXPECT_EQ(fc.effective(kFleetFlushOnSwitch),
              kFleetBlockUnknown | kFleetRestrictIsv |
                  kFleetFlushOnSwitch);
}

TEST(Pliability, ForkInheritsAndExecResyncsFleetBits)
{
    sim::Memory mem;
    KernelState ks{mem};
    CgroupId cg = ks.createCgroup("tenant");
    Pid parent = ks.createProcess(cg);

    ks.task(parent).fleetBits = kFleetFlushOnSwitch;
    Pid child = ks.forkProcess(parent);
    EXPECT_EQ(ks.task(child).fleetBits, kFleetFlushOnSwitch);
    EXPECT_EQ(ks.task(child).cgroup, ks.task(parent).cgroup);

    // Sudo-downgrade: the child clears its own value, then the admin
    // enforces fleet-wide, then the child execs a privileged binary.
    // The fresh image still runs under the admin floor.
    ks.task(child).fleetBits = 0;
    ks.fleet().enforce(kFleetBlockUnknown);
    EXPECT_EQ(ks.effectiveFleetBits(child), kFleetBlockUnknown);
    ks.execProcess(child);
    EXPECT_EQ(ks.task(child).fleetBits, kFleetBlockUnknown);

    // And the grandchild inherits the enforced value directly.
    Pid grandchild = ks.forkProcess(child);
    EXPECT_EQ(ks.task(grandchild).fleetBits, kFleetBlockUnknown);
}

TEST(Pliability, FleetTightenPropagatesAfterVisibilityLatency)
{
    // Policy half of the flip: running contexts keep their lax
    // cached verdicts until the flip's visibility point, then their
    // next gate check resynchronizes and drops every cached verdict.
    sim::Program prog;
    FuncId kf = prog.addFunction("kfunc", true);
    prog.func(kf).body = {sim::load(1, 10, 0), sim::ret()};
    prog.layout();
    OwnershipMap own{1024};

    PerspectiveConfig cfg;
    cfg.blockUnknown = false; // the lax per-tenant setting
    PerspectivePolicy pol(own, cfg);
    sim::Cycle clock = 0;
    pol.setClock(&clock);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    pol.registerContext(2, 4, &view);

    Addr pc = prog.func(kf).instAddr(0);
    Addr unknown_va = directMapVa(7); // no owner: unknown provenance
    auto gateAt = [&](sim::Cycle now) {
        sim::SpecContext c;
        c.pc = pc;
        c.dataVa = unknown_va;
        c.speculative = true;
        c.kernelMode = true;
        c.asid = 1;
        c.now = now;
        return pol.gateLoad(c);
    };

    // Warm the caches to a steady lax Allow.
    sim::Gate g = sim::Gate::Block;
    for (sim::Cycle t = 1000; t <= 5000; t += 1000)
        g = gateAt(t);
    ASSERT_EQ(g, sim::Gate::Allow);

    clock = 10000;
    sim::Cycle lat = pol.fleetTighten(kFleetBlockUnknown);
    EXPECT_EQ(lat, kFleetFlipBase + 2 * kFleetFlipPerContext);
    EXPECT_EQ(pol.fleetBits() & kFleetBlockUnknown,
              kFleetBlockUnknown);

    // Inside the propagation window the stale Allow still stands.
    EXPECT_EQ(gateAt(10000 + lat - 1), sim::Gate::Allow);

    // First check past the visibility point: the context syncs, the
    // caches drop, and the tightened fill verdict blocks for good.
    for (sim::Cycle t = 10000 + lat; t <= 15000 + lat; t += 1000)
        g = gateAt(t);
    EXPECT_EQ(g, sim::Gate::Block);
}
