#include <gtest/gtest.h>

#include "core/dsvmt.hh"

using namespace perspective::core;
using perspective::kernel::directMapVa;
using perspective::kernel::Pfn;

TEST(Dsvmt, LeafBitRoundTrip)
{
    Dsvmt t;
    EXPECT_FALSE(t.queryPfn(1234));
    t.setPage(1234, true);
    EXPECT_TRUE(t.queryPfn(1234));
    EXPECT_FALSE(t.queryPfn(1235));
    t.setPage(1234, false);
    EXPECT_FALSE(t.queryPfn(1234));
}

TEST(Dsvmt, VaQueryUsesDirectMap)
{
    Dsvmt t;
    t.setPage(777, true);
    EXPECT_TRUE(t.queryVa(directMapVa(777)));
    EXPECT_TRUE(t.queryVa(directMapVa(777) + 4095));
    EXPECT_FALSE(t.queryVa(directMapVa(778)));
    EXPECT_FALSE(t.queryVa(0x1000)); // not in the direct map
}

TEST(Dsvmt, TwoMegEntryCoversGranule)
{
    Dsvmt t;
    Pfn base = 512 * 10; // granule-aligned
    t.set2M(base, true);
    EXPECT_TRUE(t.queryPfn(base));
    EXPECT_TRUE(t.queryPfn(base + 511));
    EXPECT_FALSE(t.queryPfn(base + 512));
    EXPECT_EQ(t.walkLevels(base), 2u);
}

TEST(Dsvmt, OneGigEntry)
{
    Dsvmt t;
    Pfn base = (1ull << 18) * 2; // 1 GiB aligned
    t.set1G(base, true);
    EXPECT_TRUE(t.queryPfn(base + 99999));
    EXPECT_EQ(t.walkLevels(base), 1u);
}

TEST(Dsvmt, LeafOverridesHugeMapping)
{
    Dsvmt t;
    Pfn base = 512 * 4;
    t.set2M(base, true);
    t.setPage(base + 5, false); // demote one page out
    EXPECT_FALSE(t.queryPfn(base + 5));
    // Sibling pages in the materialized leaf default to clear; only
    // explicit leaf bits are set.
    EXPECT_EQ(t.walkLevels(base + 5), 3u);
}

TEST(Dsvmt, WalkLevelsDefaultIsTop)
{
    Dsvmt t;
    EXPECT_EQ(t.walkLevels(42), 1u);
}

TEST(Dsvmt, MemoryGrowsWithLeaves)
{
    Dsvmt t;
    std::size_t m0 = t.memoryBytes();
    t.setPage(100, true);
    t.setPage(100000, true);
    EXPECT_GT(t.memoryBytes(), m0);
    t.clear();
    EXPECT_EQ(t.memoryBytes(), 0u);
}
