#include <gtest/gtest.h>

#include "core/hwmodel.hh"

using namespace perspective::core;

TEST(HwModel, DsvCacheMatchesTable91)
{
    auto c = characterizeSram(dsvCacheGeometry());
    // Table 9.1: 0.0024 mm2, 114 ps, 1.21 pJ, 0.78 mW.
    EXPECT_NEAR(c.areaMm2, 0.0024, 0.0006);
    EXPECT_NEAR(c.accessPs, 114.0, 10.0);
    EXPECT_NEAR(c.dynEnergyPj, 1.21, 0.5);
    EXPECT_NEAR(c.leakPowerMw, 0.78, 0.25);
}

TEST(HwModel, IsvCacheMatchesTable91)
{
    auto c = characterizeSram(isvCacheGeometry());
    // Table 9.1: 0.0025 mm2, 115 ps, 1.29 pJ, 0.79 mW.
    EXPECT_NEAR(c.areaMm2, 0.0025, 0.0006);
    EXPECT_NEAR(c.accessPs, 115.0, 10.0);
    EXPECT_NEAR(c.dynEnergyPj, 1.29, 0.5);
    EXPECT_NEAR(c.leakPowerMw, 0.79, 0.25);
}

TEST(HwModel, IsvSlightlyLargerThanDsv)
{
    auto isv = characterizeSram(isvCacheGeometry());
    auto dsv = characterizeSram(dsvCacheGeometry());
    EXPECT_GT(isv.areaMm2, dsv.areaMm2);
    EXPECT_GE(isv.accessPs, dsv.accessPs);
    EXPECT_GT(isv.dynEnergyPj, dsv.dynEnergyPj);
}

TEST(HwModel, ScalesWithGeometry)
{
    SramGeometry small = dsvCacheGeometry();
    SramGeometry big = small;
    big.entries *= 4;
    auto cs = characterizeSram(small);
    auto cb = characterizeSram(big);
    EXPECT_GT(cb.areaMm2, cs.areaMm2 * 3.0);
    EXPECT_GT(cb.accessPs, cs.accessPs);
    EXPECT_GT(cb.leakPowerMw, cs.leakPowerMw);
}

TEST(HwModel, NodeScaling)
{
    SramGeometry n22 = dsvCacheGeometry();
    SramGeometry n45 = n22;
    n45.nodeNm = 45;
    EXPECT_GT(characterizeSram(n45).areaMm2,
              characterizeSram(n22).areaMm2 * 2.0);
}
