#include <gtest/gtest.h>

#include "core/perspective.hh"
#include "kernel/ownership.hh"
#include "sim/program.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::sim;
using kernel::directMapVa;
using kernel::kDomainReplicated;
using kernel::OwnershipMap;

namespace
{

struct PerspFixture : ::testing::Test
{
    Program prog;
    FuncId kf;
    OwnershipMap own{1024};

    PerspFixture()
    {
        kf = prog.addFunction("kfunc", true);
        prog.func(kf).body = {load(1, 10, 0), ret()};
        prog.layout();
    }

    SpecContext
    ctxFor(Addr pc, Addr data, Asid asid, bool first = true)
    {
        SpecContext c;
        c.pc = pc;
        c.dataVa = data;
        c.speculative = true;
        c.kernelMode = true;
        c.asid = asid;
        c.now = 1000;
        c.firstCheck = first;
        return c;
    }

    /**
     * Drive repeated gate evaluations (advancing time past every
     * fill) until the verdict is steady — the way a blocked load is
     * re-evaluated by the pipeline each cycle.
     */
    Gate
    steadyGate(PerspectivePolicy &pol, SpecContext c)
    {
        Gate g = Gate::Block;
        for (int i = 0; i < 5; ++i) {
            g = pol.gateLoad(c);
            c.now += 1000;
            c.firstCheck = true;
        }
        return g;
    }
};

} // namespace

TEST_F(PerspFixture, NonKernelAndNonSpeculativeAllowed)
{
    PerspectivePolicy pol(own);
    SpecContext c = ctxFor(prog.func(kf).instAddr(0),
                           directMapVa(5), 1);
    c.kernelMode = false;
    EXPECT_EQ(pol.gateLoad(c), Gate::Allow);
    c.kernelMode = true;
    c.speculative = false;
    EXPECT_EQ(pol.gateLoad(c), Gate::Allow);
}

TEST_F(PerspFixture, UnregisteredContextBlocks)
{
    PerspectivePolicy pol(own);
    EXPECT_EQ(pol.gateLoad(ctxFor(prog.func(kf).instAddr(0),
                                  directMapVa(5), 9)),
              Gate::Block);
}

TEST_F(PerspFixture, DsvAllowsOwnPageBlocksForeign)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, /*domain=*/3, &view);
    own.assign(5, 3); // own page
    own.assign(6, 4); // foreign page

    Addr pc = prog.func(kf).instAddr(0);
    // First checks miss the caches (conservative block + fill), then
    // the steady verdict reflects DSV membership.
    EXPECT_EQ(pol.gateLoad(ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(6), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, UnknownMemoryAlwaysBlocks)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(7), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, UnknownAllowedWhenToggledOff)
{
    PerspectiveConfig cfg;
    cfg.blockUnknown = false; // Section 9.2 sensitivity knob
    PerspectivePolicy pol(own, cfg);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(7), 1)),
              Gate::Allow);
}

TEST_F(PerspFixture, ReplicatedRodataInEveryDsv)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(8, kDomainReplicated);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(8), 1)),
              Gate::Allow);
}

TEST_F(PerspFixture, IsvBlocksInstructionOutsideView)
{
    PerspectivePolicy pol(own);
    IsvView view(prog); // empty: kf not included
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, OwnershipChangeInvalidatesDsvCache)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    // Page reassigned to another tenant: the cached positive entry
    // must not keep allowing access.
    own.assign(5, 4);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, IsvReconfigurationTakesEffect)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    // Swift patching: exclude the (now-vulnerable) function.
    view.excludeFunction(kf);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, DsvmtMirrorsOwnership)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    own.assign(6, 4);
    EXPECT_TRUE(pol.dsvmtOf(3).queryPfn(5));
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(6));
}
