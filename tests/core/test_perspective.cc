#include <gtest/gtest.h>

#include <stdexcept>

#include "core/perspective.hh"
#include "kernel/ownership.hh"
#include "sim/program.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::sim;
using kernel::directMapVa;
using kernel::kDomainReplicated;
using kernel::OwnershipMap;

namespace
{

struct PerspFixture : ::testing::Test
{
    Program prog;
    FuncId kf;
    OwnershipMap own{1024};

    PerspFixture()
    {
        kf = prog.addFunction("kfunc", true);
        prog.func(kf).body = {load(1, 10, 0), ret()};
        prog.layout();
    }

    SpecContext
    ctxFor(Addr pc, Addr data, Asid asid, bool first = true)
    {
        SpecContext c;
        c.pc = pc;
        c.dataVa = data;
        c.speculative = true;
        c.kernelMode = true;
        c.asid = asid;
        c.now = 1000;
        c.firstCheck = first;
        return c;
    }

    /**
     * Drive repeated gate evaluations (advancing time past every
     * fill) until the verdict is steady — the way a blocked load is
     * re-evaluated by the pipeline each cycle.
     */
    Gate
    steadyGate(PerspectivePolicy &pol, SpecContext c)
    {
        Gate g = Gate::Block;
        for (int i = 0; i < 5; ++i) {
            g = pol.gateLoad(c);
            c.now += 1000;
            c.firstCheck = true;
        }
        return g;
    }
};

} // namespace

TEST_F(PerspFixture, NonKernelAndNonSpeculativeAllowed)
{
    PerspectivePolicy pol(own);
    SpecContext c = ctxFor(prog.func(kf).instAddr(0),
                           directMapVa(5), 1);
    c.kernelMode = false;
    EXPECT_EQ(pol.gateLoad(c), Gate::Allow);
    c.kernelMode = true;
    c.speculative = false;
    EXPECT_EQ(pol.gateLoad(c), Gate::Allow);
}

TEST_F(PerspFixture, UnregisteredContextBlocks)
{
    PerspectivePolicy pol(own);
    EXPECT_EQ(pol.gateLoad(ctxFor(prog.func(kf).instAddr(0),
                                  directMapVa(5), 9)),
              Gate::Block);
}

TEST_F(PerspFixture, DsvAllowsOwnPageBlocksForeign)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, /*domain=*/3, &view);
    own.assign(5, 3); // own page
    own.assign(6, 4); // foreign page

    Addr pc = prog.func(kf).instAddr(0);
    // First checks miss the caches (conservative block + fill), then
    // the steady verdict reflects DSV membership.
    EXPECT_EQ(pol.gateLoad(ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(6), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, UnknownMemoryAlwaysBlocks)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(7), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, UnknownAllowedWhenToggledOff)
{
    PerspectiveConfig cfg;
    cfg.blockUnknown = false; // Section 9.2 sensitivity knob
    PerspectivePolicy pol(own, cfg);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(7), 1)),
              Gate::Allow);
}

TEST_F(PerspFixture, ReplicatedRodataInEveryDsv)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(8, kDomainReplicated);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(8), 1)),
              Gate::Allow);
}

TEST_F(PerspFixture, IsvBlocksInstructionOutsideView)
{
    PerspectivePolicy pol(own);
    IsvView view(prog); // empty: kf not included
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, OwnershipChangeInvalidatesDsvCache)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    // Page reassigned to another tenant: the cached positive entry
    // must not keep allowing access.
    own.assign(5, 4);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, IsvReconfigurationTakesEffect)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    // Swift patching: exclude the (now-vulnerable) function.
    view.excludeFunction(kf);
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, DsvmtMirrorsOwnership)
{
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    own.assign(6, 4);
    EXPECT_TRUE(pol.dsvmtOf(3).queryPfn(5));
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(6));
}

TEST_F(PerspFixture, DsvmtOfThrowsForUnregisteredDomain)
{
    // The old accessor default-inserted an empty tree for a typo'd
    // domain and silently answered "nothing is in the DSV".
    PerspectivePolicy pol(own);
    IsvView view(prog);
    pol.registerContext(1, 3, &view);
    EXPECT_NO_THROW(pol.dsvmtOf(3));
    EXPECT_THROW(pol.dsvmtOf(42), std::out_of_range);
}

TEST_F(PerspFixture, WakePairingTokenTracksBlocks)
{
    // Every Block verdict arms the single-slot wake token; gateWake
    // consumes it. A gateWake for a context that never blocked (or
    // after the slot was re-armed by a different load) is the
    // under-waking bug the debug assert catches.
    PerspectivePolicy pol(own);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    own.assign(6, 3);
    Addr pc = prog.func(kf).instAddr(0);

    std::uint64_t seq0 = pol.wakeSeq();
    SpecContext a = ctxFor(pc, directMapVa(5), 1);
    ASSERT_EQ(pol.gateLoad(a), Gate::Block); // cold caches: fill
    EXPECT_EQ(pol.wakeSeq(), seq0 + 1);
    EXPECT_TRUE(pol.wakePairingMatches(a));

    SpecContext b = ctxFor(pc, directMapVa(6), 1);
    EXPECT_FALSE(pol.wakePairingMatches(b)); // different dataVa

    pol.gateWake(a); // paired consume disarms the slot
    EXPECT_FALSE(pol.wakePairingMatches(a));

    // The next Block re-arms with a fresh token for its own context.
    ASSERT_EQ(pol.gateLoad(b), Gate::Block);
    EXPECT_EQ(pol.wakeSeq(), seq0 + 2);
    EXPECT_TRUE(pol.wakePairingMatches(b));
    EXPECT_FALSE(pol.wakePairingMatches(a));
    pol.gateWake(b);
}

TEST_F(PerspFixture, BlockedWakeDependsOnIsvEpoch)
{
    // A load blocked on ISV membership must list the view's epoch
    // counter as a wake source: an OS view reconfiguration (module
    // load, Swift patch) is otherwise invisible to the elision layer
    // and the load sleeps through its own release.
    PerspectivePolicy pol(own);
    IsvView view(prog); // kf NOT included: steady Block on ISV
    pol.registerContext(1, 3, &view);
    own.assign(5, 3);
    Addr pc = prog.func(kf).instAddr(0);
    SpecContext c = ctxFor(pc, directMapVa(5), 1);
    ASSERT_EQ(steadyGate(pol, c), Gate::Block);

    GateWake w = pol.gateWake(c);
    EXPECT_FALSE(w.everyCycle);
    bool has_epoch = false;
    for (unsigned i = 0; i < w.numGens; ++i)
        has_epoch = has_epoch || w.gen[i] == view.epochPtr();
    EXPECT_TRUE(has_epoch);

    // The dependency is live: including the function ticks the epoch
    // and the steady verdict flips.
    std::uint64_t epoch0 = *view.epochPtr();
    view.includeFunction(kf);
    EXPECT_GT(*view.epochPtr(), epoch0);
    EXPECT_EQ(steadyGate(pol, c), Gate::Allow);
}

TEST_F(PerspFixture, DeferredRevocationKeepsStaleVerdictUntilApply)
{
    own.assign(5, 3); // owned up front: mirrored at registration
    PerspectiveConfig cfg;
    cfg.revocationLatency = 500;
    PerspectivePolicy pol(own, cfg);
    sim::Cycle clock = 1000;
    pol.setClock(&clock);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    // Handoff at cycle 10000 (well past the warmup fills): the
    // shootdown applies at 10500. Until then mirror and cached
    // verdict stay stale — by design, this is the modeled transient
    // window.
    clock = 10000;
    own.assign(5, 4);
    EXPECT_EQ(pol.pendingRevocations(), 1u);
    EXPECT_TRUE(pol.dsvmtOf(3).queryPfn(5));
    SpecContext in_window = ctxFor(pc, directMapVa(5), 1);
    in_window.now = 10200;
    EXPECT_EQ(pol.gateLoad(in_window), Gate::Allow);

    // Past the apply point the drain lands on the next gate check:
    // mirror refreshed, cached verdict dies, the load blocks.
    SpecContext after = ctxFor(pc, directMapVa(5), 1);
    after.now = 10600;
    EXPECT_EQ(pol.gateLoad(after), Gate::Block);
    EXPECT_EQ(pol.pendingRevocations(), 0u);
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(5));
    EXPECT_EQ(steadyGate(pol, after), Gate::Block);
}

TEST_F(PerspFixture, FlushPendingRevocationsClosesWindowNow)
{
    own.assign(5, 3);
    PerspectiveConfig cfg;
    cfg.revocationLatency = 1'000'000;
    PerspectivePolicy pol(own, cfg);
    sim::Cycle clock = 1000;
    pol.setClock(&clock);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    own.assign(5, 4);
    ASSERT_EQ(pol.pendingRevocations(), 1u);
    // An explicit flush (the synchronous-shootdown escape hatch)
    // applies everything pending regardless of the clock.
    pol.flushPendingRevocations();
    EXPECT_EQ(pol.pendingRevocations(), 0u);
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(5));
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}

TEST_F(PerspFixture, SnapshotRestoresPendingRevocationWindow)
{
    // Snapshot taken mid-window, restore after the window was
    // closed: the pending shootdown, the stale mirror and the cached
    // verdict must all come back, and the wake slot / MRU pointers
    // must be disarmed rather than dangling.
    own.assign(5, 3);
    PerspectiveConfig cfg;
    cfg.revocationLatency = 500;
    PerspectivePolicy pol(own, cfg);
    sim::Cycle clock = 1000;
    pol.setClock(&clock);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);

    clock = 10000;
    own.assign(5, 4); // applies at 10500
    auto snap = pol.snapshot();

    pol.flushPendingRevocations();
    ASSERT_EQ(pol.pendingRevocations(), 0u);
    ASSERT_FALSE(pol.dsvmtOf(3).queryPfn(5));

    pol.restore(snap);
    EXPECT_EQ(pol.pendingRevocations(), 1u);
    EXPECT_TRUE(pol.dsvmtOf(3).queryPfn(5));
    SpecContext in_window = ctxFor(pc, directMapVa(5), 1);
    EXPECT_FALSE(pol.wakePairingMatches(in_window));
    in_window.now = 10200;
    EXPECT_EQ(pol.gateLoad(in_window), Gate::Allow);

    // The restored window still closes on its own schedule.
    SpecContext after = ctxFor(pc, directMapVa(5), 1);
    after.now = 10600;
    EXPECT_EQ(pol.gateLoad(after), Gate::Block);
    EXPECT_EQ(pol.pendingRevocations(), 0u);
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(5));
}

TEST_F(PerspFixture, NullClockKeepsRevocationSynchronous)
{
    // Without a wired clock the latency knob is inert: ownership
    // changes land synchronously, exactly the legacy contract every
    // static configuration relies on.
    own.assign(5, 3);
    PerspectiveConfig cfg;
    cfg.revocationLatency = 500;
    PerspectivePolicy pol(own, cfg);
    IsvView view(prog);
    view.includeFunction(kf);
    pol.registerContext(1, 3, &view);
    Addr pc = prog.func(kf).instAddr(0);
    ASSERT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Allow);
    own.assign(5, 4);
    EXPECT_EQ(pol.pendingRevocations(), 0u);
    EXPECT_FALSE(pol.dsvmtOf(3).queryPfn(5));
    EXPECT_EQ(steadyGate(pol, ctxFor(pc, directMapVa(5), 1)),
              Gate::Block);
}
