#include <gtest/gtest.h>

#include "core/isv_builders.hh"
#include "kernel/interp.hh"
#include "kernel/kstate.hh"
#include "kernel/syscall_exec.hh"
#include "workloads/driver.hh"
#include "workloads/profiles.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::kernel;
using perspective::sim::FuncId;

namespace
{

/** One shared, laid-out stack for all builder tests. */
struct Stack
{
    sim::Memory mem;
    KernelImage img{mem};
    workloads::DriverSet drivers{img};
    Stack() { img.program().layout(); }
};

Stack &
stack()
{
    static Stack s;
    return s;
}

} // namespace

TEST(StaticIsv, BinaryAnalysisRecoversSyscallSet)
{
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    // A "binary" using only the read and getpid drivers.
    std::vector<FuncId> binary = {
        s.drivers.driverFor(Sys::Read),
        s.drivers.driverFor(Sys::Getpid),
    };
    auto sys = b.syscallsOfBinary(binary);
    EXPECT_EQ(sys.size(), 2u);
    EXPECT_TRUE(sys.count(Sys::Read));
    EXPECT_TRUE(sys.count(Sys::Getpid));
}

TEST(StaticIsv, ClosureIncludesTransitiveCallees)
{
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    FuncId entry = s.img.entryOf(Sys::Getpid);
    auto cl = b.closure({entry});
    EXPECT_TRUE(cl.count(entry));
    // Direct callees and their callees are in.
    for (FuncId c : s.img.info(entry).callees) {
        EXPECT_TRUE(cl.count(c));
        for (FuncId cc : s.img.info(c).callees)
            EXPECT_TRUE(cl.count(cc));
    }
}

TEST(StaticIsv, IndirectTargetsExcluded)
{
    // The defining limitation of static analysis (Section 5.3): the
    // fs impl reachable only through the fops pointer is NOT in the
    // static view, even for an app that uses read().
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    IsvView v = b.build({Sys::Read});
    auto [disp, idx] = s.img.vfsReadDispatch();
    (void)idx;
    EXPECT_TRUE(v.containsFunction(disp));
    FuncId target = s.img.info(disp).indirectTargets[0];
    EXPECT_FALSE(v.containsFunction(target));
}

TEST(StaticIsv, ViewGrowsWithSyscallSet)
{
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    IsvView small = b.build({Sys::Getpid});
    IsvView large = b.build({Sys::Getpid, Sys::Read, Sys::Send,
                             Sys::Mmap, Sys::Poll});
    EXPECT_GT(large.numFunctions(), small.numFunctions());
    EXPECT_LT(large.numFunctions(),
              s.img.numKernelFunctions() / 4);
}

TEST(DynamicIsv, TracedRunIncludesIndirectTargets)
{
    auto &s = stack();
    KernelState ks(s.mem);
    Pid pid = ks.createProcess(ks.createCgroup("t"));
    SyscallExecutor exec(ks, s.img);

    DynamicIsvBuilder b(s.img);
    SyscallInvocation inv{Sys::Read, 0, 8, 0};
    auto prep = exec.prepare(pid, inv);
    Interpreter in(s.img.program(), s.mem);
    for (auto [r, v] : prep.regs)
        in.setReg(r, v);
    in.run(s.img.entryOf(Sys::Read), 500'000,
           [&](FuncId f) { b.observe(f); });
    exec.finish(pid, inv);

    IsvView v = b.build();
    auto [disp, idx] = s.img.vfsReadDispatch();
    (void)idx;
    FuncId target = s.img.info(disp).indirectTargets[0];
    EXPECT_TRUE(v.containsFunction(target))
        << "dynamic tracing must capture indirect-call targets";
}

TEST(DynamicIsv, DynamicSmallerThanStatic)
{
    auto &s = stack();
    KernelState ks(s.mem);
    Pid pid = ks.createProcess(ks.createCgroup("t"));
    SyscallExecutor exec(ks, s.img);

    DynamicIsvBuilder db(s.img);
    for (Sys sys : {Sys::Read, Sys::Getpid, Sys::Poll}) {
        SyscallInvocation inv{sys, 0, 8, 0};
        auto prep = exec.prepare(pid, inv);
        Interpreter in(s.img.program(), s.mem);
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        in.run(s.img.entryOf(sys), 500'000,
               [&](FuncId f) { db.observe(f); });
        exec.finish(pid, inv);
    }
    IsvView dynamic = db.build();
    StaticIsvBuilder sb(s.img);
    IsvView stat = sb.build({Sys::Read, Sys::Getpid, Sys::Poll});
    EXPECT_LT(dynamic.numFunctions(), stat.numFunctions());
}

TEST(Audit, ApplyAuditExcludesVulnerable)
{
    auto &s = stack();
    StaticIsvBuilder b(s.img);
    IsvView v = b.build({Sys::Ioctl});
    FuncId gadget = s.img.pocDriverGadget();
    // The ioctl driver gadget is reachable only via indirect dispatch
    // so it is not in the *static* view; use a function that is.
    FuncId entry = s.img.entryOf(Sys::Ioctl);
    ASSERT_TRUE(v.containsFunction(entry));
    applyAudit(v, {entry, gadget});
    EXPECT_FALSE(v.containsFunction(entry));
    EXPECT_FALSE(v.containsFunction(gadget));
}
