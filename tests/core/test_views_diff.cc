/**
 * @file
 * Differential fuzz tests for the flat speculation-view structures.
 *
 * The production `Dsvmt` (index-addressed radix + MRU granule cache)
 * and `IsvView` (FuncId bitvector) were rewritten for the in-cell
 * fast path; the original hash-based implementations survive in
 * views_ref.hh as oracles. These tests drive long random operation
 * sequences through both sides with a fixed-seed mt19937 (fully
 * deterministic, no flaking) and assert identical observable
 * behaviour after every mutation batch: query results, walk levels,
 * footprint accounting, membership, epochs and region bits.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/dsvmt.hh"
#include "core/isv.hh"
#include "core/views_ref.hh"
#include "sim/program.hh"

using namespace perspective::core;
using namespace perspective::sim;
using perspective::kernel::Pfn;

namespace
{

// >= 10k randomized ops per structure (acceptance floor).
constexpr unsigned kDsvmtOps = 20000;
constexpr unsigned kIsvOps = 12000;

/** PFN universe: a handful of 1 GB regions with a dense core, so
 * granule collisions (leaf vs 2M vs 1G precedence) actually occur. */
Pfn
randomPfn(std::mt19937_64 &rng)
{
    std::uint64_t gig = rng() % 3;
    std::uint64_t inner =
        rng() % 2 ? rng() % 4096 : rng() % (1ull << 18);
    return (gig << 18) | inner;
}

} // namespace

TEST(ViewsDiff, DsvmtRandomOpsMatchReference)
{
    std::mt19937_64 rng(0xd5f317);
    Dsvmt flat;
    DsvmtRef ref;

    auto expectSame = [&](Pfn pfn) {
        ASSERT_EQ(flat.queryPfn(pfn), ref.queryPfn(pfn))
            << "pfn " << pfn;
        ASSERT_EQ(flat.walkLevels(pfn), ref.walkLevels(pfn))
            << "pfn " << pfn;
    };

    for (unsigned op = 0; op < kDsvmtOps; ++op) {
        Pfn pfn = randomPfn(rng);
        bool val = rng() % 2;
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2:
            flat.setPage(pfn, val);
            ref.setPage(pfn, val);
            break;
          case 3:
            flat.set2M(pfn & ~Pfn{511}, val);
            ref.set2M(pfn & ~Pfn{511}, val);
            break;
          case 4:
            flat.set1G(pfn & ~((Pfn{1} << 18) - 1), val);
            ref.set1G(pfn & ~((Pfn{1} << 18) - 1), val);
            break;
          case 5: {
            // Direct-map VA query, including out-of-map addresses.
            Addr va = rng() % 4 == 0
                          ? Addr{rng() % kDirectMapBase}
                          : perspective::kernel::directMapVa(pfn) +
                                rng() % 4096;
            ASSERT_EQ(flat.queryVa(va), ref.queryVa(va));
            break;
          }
          case 6:
            // Repeat queries into one granule to exercise MRU hits.
            for (unsigned i = 0; i < 8; ++i)
                expectSame((pfn & ~Pfn{511}) | (rng() % 512));
            break;
          default:
            expectSame(pfn);
            break;
        }
        // Footprint accounting must agree op-for-op: same leaf
        // materialization, huge-entry counts and byte units.
        ASSERT_EQ(flat.memoryBytes(), ref.memoryBytes())
            << "after op " << op;
        if (op % 997 == 0) {
            // Sweep a granule boundary straddle.
            Pfn base = (pfn & ~Pfn{511}) > 2 ? (pfn & ~Pfn{511}) - 2
                                             : 0;
            for (Pfn q = base; q < base + 5; ++q)
                expectSame(q);
        }
    }

    EXPECT_GT(flat.mruLookups(), 0u);
    EXPECT_GT(flat.mruHits(), 0u); // case 6 guarantees same-granule runs

    flat.clear();
    ref.clear();
    EXPECT_EQ(flat.memoryBytes(), 0u);
    EXPECT_EQ(flat.memoryBytes(), ref.memoryBytes());
    EXPECT_EQ(flat.queryPfn(0), ref.queryPfn(0));
}

TEST(ViewsDiff, DsvmtLeafReuseAfterPromote)
{
    // set2M drops a materialized leaf; a later setPage in the same
    // granule must re-materialize a fresh all-zero leaf (pool reuse
    // path), exactly like the reference's erase + operator[].
    std::mt19937_64 rng(42);
    Dsvmt flat;
    DsvmtRef ref;
    for (unsigned round = 0; round < 2000; ++round) {
        Pfn base = (rng() % 64) << 9;
        Pfn page = base + rng() % 512;
        flat.setPage(page, true);
        ref.setPage(page, true);
        bool v = rng() % 2;
        flat.set2M(base, v);
        ref.set2M(base, v);
        flat.setPage(page, false);
        ref.setPage(page, false);
        for (Pfn q = base; q < base + 512; q += 61) {
            ASSERT_EQ(flat.queryPfn(q), ref.queryPfn(q));
            ASSERT_EQ(flat.walkLevels(q), ref.walkLevels(q));
        }
        ASSERT_EQ(flat.memoryBytes(), ref.memoryBytes());
    }
}

TEST(ViewsDiff, IsvRandomOpsMatchReference)
{
    // A synthetic kernel program with enough functions that the
    // bitvector spans several words.
    Program prog;
    std::vector<FuncId> ids;
    for (unsigned i = 0; i < 200; ++i) {
        FuncId f =
            prog.addFunction("k" + std::to_string(i), true);
        prog.func(f).body.assign(1 + i % 7, nop());
        prog.func(f).body.push_back(ret());
        ids.push_back(f);
    }
    prog.layout();

    std::mt19937_64 rng(0x15f);
    IsvView flat(prog);
    IsvFuncSetRef ref;

    auto checkAll = [&]() {
        ASSERT_EQ(flat.numFunctions(), ref.size());
        ASSERT_EQ(flat.functions(), ref.sortedFunctions());
        for (FuncId f : ids) {
            ASSERT_EQ(flat.containsFunction(f), ref.contains(f));
            // Instruction bits must track membership exactly.
            ASSERT_EQ(flat.contains(prog.func(f).instAddr(0)),
                      ref.contains(f));
        }
    };

    std::uint64_t flatEpoch0 = flat.epoch();
    for (unsigned op = 0; op < kIsvOps; ++op) {
        FuncId f = ids[rng() % ids.size()];
        if (rng() % 2) {
            flat.includeFunction(f);
            ref.include(f);
        } else {
            flat.excludeFunction(f);
            ref.exclude(f);
        }
        if (op % 256 == 0)
            checkAll();
    }
    checkAll();
    // Epoch contract: exactly one bump per effective mutation on
    // both sides (started from a fresh reference).
    EXPECT_EQ(flat.epoch() - flatEpoch0, ref.epoch());
}

TEST(ViewsDiff, IsvSetAlgebraMatchesReference)
{
    Program prog;
    std::vector<FuncId> ids;
    for (unsigned i = 0; i < 150; ++i) {
        FuncId f =
            prog.addFunction("f" + std::to_string(i), true);
        prog.func(f).body = {nop(), ret()};
        ids.push_back(f);
    }
    prog.layout();

    std::mt19937_64 rng(7);
    for (unsigned round = 0; round < 120; ++round) {
        IsvView a(prog), b(prog);
        IsvFuncSetRef ra, rb;
        for (FuncId f : ids) {
            if (rng() % 2) {
                a.includeFunction(f);
                ra.include(f);
            }
            if (rng() % 2) {
                b.includeFunction(f);
                rb.include(f);
            }
        }
        if (round % 2) {
            a.intersectWith(b);
            ra.intersectWith(rb);
        } else {
            a.unionWith(b);
            ra.unionWith(rb);
        }
        ASSERT_EQ(a.numFunctions(), ra.size());
        ASSERT_EQ(a.functions(), ra.sortedFunctions());
        for (FuncId f : ids)
            ASSERT_EQ(a.contains(prog.func(f).instAddr(0)),
                      ra.contains(f));
    }
}

TEST(ViewsDiff, DsvmtMemoryBytesPinned)
{
    // Pins the unit-corrected footprint: huge entries are 8-byte
    // descriptors, leaves are 64-byte bitmaps. The pre-fix
    // accounting summed raw entry *counts* for the huge maps.
    Dsvmt t;
    EXPECT_EQ(t.memoryBytes(), 0u);

    t.setPage(100, true); // one leaf (gig 0)
    EXPECT_EQ(t.memoryBytes(), 64u);

    t.set2M(512 * 7, true); // + one 2M entry (gig 0)
    EXPECT_EQ(t.memoryBytes(), 64u + 8u);

    t.setPage((Pfn{1} << 18) + 3, true); // survivor leaf in gig 1
    EXPECT_EQ(t.memoryBytes(), 64u + 8u + 64u);

    // The region install replaces everything beneath it in gig 0:
    // the leaf and 2M entry die, one 1G descriptor appears. Gig 1 is
    // untouched.
    t.set1G(0, false);
    EXPECT_EQ(t.memoryBytes(), 8u + 64u);

    // A later setPage re-demotes: a fresh all-zero leaf refines the
    // region entry.
    t.setPage(100, true);
    EXPECT_EQ(t.memoryBytes(), 8u + 64u + 64u);

    t.set2M(512 * 7, false); // fresh 2M entry (old one was dropped)
    EXPECT_EQ(t.memoryBytes(), 8u + 64u + 64u + 8u);

    // Promoting the leaf's granule drops the leaf again.
    t.set2M(0, true); // granule 0 holds pfn 100's leaf
    EXPECT_EQ(t.memoryBytes(), 8u + 64u + 8u + 8u);

    DsvmtRef ref;
    ref.setPage(100, true);
    ref.set2M(512 * 7, true);
    ref.setPage((Pfn{1} << 18) + 3, true);
    ref.set1G(0, false);
    ref.setPage(100, true);
    ref.set2M(512 * 7, false);
    ref.set2M(0, true);
    EXPECT_EQ(ref.memoryBytes(), t.memoryBytes());

    t.clear();
    EXPECT_EQ(t.memoryBytes(), 0u);
}

TEST(ViewsDiff, DsvmtHugePrecedencePinned)
{
    // Pins the newest-installation-wins contract for overlapping
    // mappings. Pre-fix, set1G/set2M after setPage left the stale
    // leaf in place, silently shadowing the newer region verdict.
    Dsvmt t;
    DsvmtRef ref;
    auto step = [&](Pfn pfn, bool want, unsigned want_levels) {
        ASSERT_EQ(t.queryPfn(pfn), want) << "pfn " << pfn;
        ASSERT_EQ(ref.queryPfn(pfn), want) << "pfn " << pfn;
        ASSERT_EQ(t.walkLevels(pfn), want_levels) << "pfn " << pfn;
        ASSERT_EQ(ref.walkLevels(pfn), want_levels) << "pfn " << pfn;
    };

    t.setPage(5, true);
    ref.setPage(5, true);
    t.set2M(512 * 3, true);
    ref.set2M(512 * 3, true);
    step(5, true, 3);
    step(512 * 3 + 17, true, 2);

    // Region install maps the whole gig out: nothing stale shadows.
    t.set1G(0, false);
    ref.set1G(0, false);
    step(5, false, 1);
    step(512 * 3 + 17, false, 1);

    // Flip the region in: same walk depth, opposite verdict.
    t.set1G(0, true);
    ref.set1G(0, true);
    step(5, true, 1);
    step(512 * 3 + 17, true, 1);

    // Later finer-grained ops re-demote their granules. A demoting
    // setPage materializes an all-zero leaf, so its whole granule
    // reads out-of-DSV (leaf precedence — the documented model).
    t.setPage(5, false);
    ref.setPage(5, false);
    step(5, false, 3);
    step(6, false, 3);
    step(512, true, 1); // neighbouring granule still rides the 1G

    t.set2M(512 * 3, false);
    ref.set2M(512 * 3, false);
    step(512 * 3 + 17, false, 2);
    step(512 * 4, true, 1);

    ASSERT_EQ(t.memoryBytes(), ref.memoryBytes());
}

TEST(ViewsDiff, DsvmtOverlappingHugeOpsMatchReference)
{
    // Differential fuzz concentrated on overlap: every op lands in
    // two gigs with a dense granule core, and 1G installs are as
    // frequent as leaf writes, so promote-over-leaf, demote-under-1G
    // and 2M-vs-1G interleavings occur by the thousands.
    std::mt19937_64 rng(0xc0ffee);
    Dsvmt flat;
    DsvmtRef ref;

    auto expectSame = [&](Pfn pfn) {
        ASSERT_EQ(flat.queryPfn(pfn), ref.queryPfn(pfn))
            << "pfn " << pfn;
        ASSERT_EQ(flat.walkLevels(pfn), ref.walkLevels(pfn))
            << "pfn " << pfn;
    };

    for (unsigned op = 0; op < 12000; ++op) {
        std::uint64_t gig = rng() % 2;
        Pfn pfn = (gig << 18) | (rng() % 8 << 9) | (rng() % 512);
        bool val = rng() % 2;
        switch (rng() % 6) {
          case 0:
          case 1:
            flat.setPage(pfn, val);
            ref.setPage(pfn, val);
            break;
          case 2:
          case 3:
            flat.set2M(pfn & ~Pfn{511}, val);
            ref.set2M(pfn & ~Pfn{511}, val);
            break;
          default:
            flat.set1G(pfn & ~((Pfn{1} << 18) - 1), val);
            ref.set1G(pfn & ~((Pfn{1} << 18) - 1), val);
            break;
        }
        expectSame(pfn);
        // Sweep the mutated granule plus its neighbours, both sides
        // of the 2M boundary.
        Pfn base = pfn & ~Pfn{511};
        for (Pfn q = base; q < base + 512; q += 97)
            expectSame(q);
        if (base >= 512)
            expectSame(base - 1);
        expectSame(base + 512);
        ASSERT_EQ(flat.memoryBytes(), ref.memoryBytes())
            << "after op " << op;
    }
}
