/**
 * @file
 * Property sweep over IsvView: arbitrary include/exclude sequences
 * must keep the instruction bitmap exactly consistent with the
 * function set, with monotone epochs, for programs of varied shape.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/isv.hh"
#include "sim/program.hh"

using namespace perspective::core;
using namespace perspective::sim;

namespace
{

struct IsvProperty : ::testing::TestWithParam<std::uint64_t>
{
    std::uint64_t state_ = GetParam() * 911 + 5;

    std::uint64_t
    rnd(std::uint64_t bound)
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return bound ? z % bound : z;
    }
};

} // namespace

TEST_P(IsvProperty, BitmapAlwaysMatchesFunctionSet)
{
    Program prog;
    unsigned nfuncs = 20 + static_cast<unsigned>(rnd(30));
    for (unsigned f = 0; f < nfuncs; ++f) {
        FuncId id = prog.addFunction("k" + std::to_string(f), true);
        auto &body = prog.func(id).body;
        body.assign(1 + rnd(40), nop());
        body.push_back(ret());
    }
    prog.layout();

    IsvView view(prog);
    std::set<FuncId> model;
    std::uint64_t last_epoch = view.epoch();

    for (unsigned step = 0; step < 300; ++step) {
        FuncId f = static_cast<FuncId>(rnd(nfuncs));
        bool mutated;
        if (rnd(2)) {
            mutated = model.insert(f).second;
            view.includeFunction(f);
        } else {
            mutated = model.erase(f) > 0;
            view.excludeFunction(f);
        }
        if (mutated) {
            ASSERT_GT(view.epoch(), last_epoch);
            last_epoch = view.epoch();
        } else {
            ASSERT_EQ(view.epoch(), last_epoch);
        }
        ASSERT_EQ(view.numFunctions(), model.size());
    }

    // Exhaustive bitmap check against the model.
    for (unsigned f = 0; f < nfuncs; ++f) {
        const Function &fn = prog.func(static_cast<FuncId>(f));
        bool in = model.count(static_cast<FuncId>(f)) > 0;
        ASSERT_EQ(view.containsFunction(static_cast<FuncId>(f)), in);
        for (std::uint32_t i = 0; i < fn.body.size(); ++i)
            ASSERT_EQ(view.contains(fn.instAddr(i)), in)
                << fn.name << "[" << i << "]";
    }

    // Region bits agree with contains() everywhere.
    for (unsigned probe = 0; probe < 40; ++probe) {
        FuncId f = static_cast<FuncId>(rnd(nfuncs));
        const Function &fn = prog.func(f);
        Addr pc = fn.instAddr(
            static_cast<std::uint32_t>(rnd(fn.body.size())));
        auto bits = view.regionBits(pc, 512);
        Addr base = pc & ~Addr{511};
        for (unsigned i = 0; i < 128; ++i) {
            bool bit = (bits[i / 64] >> (i % 64)) & 1;
            ASSERT_EQ(bit, view.contains(base + Addr{i} * 4));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsvProperty,
                         ::testing::Range<std::uint64_t>(1, 11));
