#include <gtest/gtest.h>

#include "core/isv.hh"
#include "sim/program.hh"

using namespace perspective::core;
using namespace perspective::sim;

namespace
{

struct IsvFixture : ::testing::Test
{
    Program prog;
    FuncId f1, f2;

    IsvFixture()
    {
        f1 = prog.addFunction("k1", true);
        f2 = prog.addFunction("k2", true);
        prog.func(f1).body = {nop(), nop(), ret()};
        prog.func(f2).body = {nop(), ret()};
        prog.layout();
    }
};

} // namespace

TEST_F(IsvFixture, EmptyViewContainsNothing)
{
    IsvView v(prog);
    EXPECT_EQ(v.numFunctions(), 0u);
    EXPECT_FALSE(v.contains(prog.func(f1).instAddr(0)));
}

TEST_F(IsvFixture, IncludeCoversEveryInstruction)
{
    IsvView v(prog);
    v.includeFunction(f1);
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_TRUE(v.contains(prog.func(f1).instAddr(i)));
    EXPECT_FALSE(v.contains(prog.func(f2).instAddr(0)));
    EXPECT_TRUE(v.containsFunction(f1));
    EXPECT_FALSE(v.containsFunction(f2));
}

TEST_F(IsvFixture, ExcludeIsTheSwiftPatchInterface)
{
    IsvView v(prog);
    v.includeFunction(f1);
    v.includeFunction(f2);
    std::uint64_t e0 = v.epoch();
    v.excludeFunction(f1);
    EXPECT_GT(v.epoch(), e0);
    EXPECT_FALSE(v.contains(prog.func(f1).instAddr(0)));
    EXPECT_TRUE(v.contains(prog.func(f2).instAddr(0)));
}

TEST_F(IsvFixture, DoubleIncludeIsIdempotent)
{
    IsvView v(prog);
    v.includeFunction(f1);
    std::uint64_t e = v.epoch();
    v.includeFunction(f1);
    EXPECT_EQ(v.epoch(), e);
    EXPECT_EQ(v.numFunctions(), 1u);
}

TEST_F(IsvFixture, RegionBitsMatchContains)
{
    IsvView v(prog);
    v.includeFunction(f1);
    Addr pc = prog.func(f1).instAddr(1);
    auto bits = v.regionBits(pc, 512);
    Addr base = pc & ~Addr{511};
    for (unsigned i = 0; i < 128; ++i) {
        bool bit = (bits[i / 64] >> (i % 64)) & 1;
        EXPECT_EQ(bit, v.contains(base + Addr{i} * kInstBytes));
    }
}

TEST_F(IsvFixture, NonKernelAddressesOutside)
{
    IsvView v(prog);
    v.includeFunction(f1);
    EXPECT_FALSE(v.contains(0x1000));
}

TEST_F(IsvFixture, IntersectRestrictsToCommonFunctions)
{
    IsvView app(prog), admin(prog);
    app.includeFunction(f1);
    app.includeFunction(f2);
    admin.includeFunction(f2); // admin policy allows only f2
    app.intersectWith(admin);
    EXPECT_FALSE(app.containsFunction(f1));
    EXPECT_TRUE(app.containsFunction(f2));
    EXPECT_FALSE(app.contains(prog.func(f1).instAddr(0)));
}

TEST_F(IsvFixture, UnionMergesProfiles)
{
    IsvView a(prog), b(prog);
    a.includeFunction(f1);
    b.includeFunction(f2);
    a.unionWith(b);
    EXPECT_TRUE(a.containsFunction(f1));
    EXPECT_TRUE(a.containsFunction(f2));
    EXPECT_EQ(a.numFunctions(), 2u);
}

TEST_F(IsvFixture, IntersectWithEmptyClearsEverything)
{
    IsvView app(prog), empty(prog);
    app.includeFunction(f1);
    app.includeFunction(f2);
    app.intersectWith(empty);
    EXPECT_EQ(app.numFunctions(), 0u);
}
