#include <gtest/gtest.h>

#include "core/hwcache.hh"

using namespace perspective::core;
using perspective::sim::Addr;

namespace
{

constexpr Addr kPc = 0xffff'8000'0000'1000;
constexpr Addr kPage = 0xffff'c000'0000'2000;

IsvRegionBits
allowAll()
{
    IsvRegionBits b;
    b.bits = {~0ull, ~0ull};
    return b;
}

} // namespace

TEST(IsvCache, MissThenHit)
{
    IsvCache c;
    EXPECT_FALSE(c.lookup(kPc, 1, false).hit);
    c.fill(kPc, 1, allowAll());
    auto r = c.lookup(kPc, 1, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.allow);
}

TEST(IsvCache, PerInstructionBits)
{
    IsvCache c;
    IsvRegionBits b;
    b.set(0);
    b.set(5);
    Addr base = kPc & ~Addr{511};
    c.fill(base, 1, b);
    EXPECT_TRUE(c.lookup(base, 1, false).allow);
    EXPECT_FALSE(c.lookup(base + 4, 1, false).allow);
    EXPECT_TRUE(c.lookup(base + 5 * 4, 1, false).allow);
}

TEST(IsvCache, AsidTaggingIsolatesContexts)
{
    IsvCache c;
    c.fill(kPc, 1, allowAll());
    EXPECT_TRUE(c.lookup(kPc, 1, false).hit);
    EXPECT_FALSE(c.lookup(kPc, 2, false).hit);
}

TEST(IsvCache, InFlightFillStillMisses)
{
    IsvCache c;
    c.fill(kPc, 1, allowAll(), /*ready_at=*/100);
    EXPECT_FALSE(c.lookup(kPc, 1, false, /*now=*/50).hit);
    EXPECT_TRUE(c.lookup(kPc, 1, false, /*now=*/100).hit);
}

TEST(IsvCache, InvalidateAsidDropsOnlyThatContext)
{
    IsvCache c;
    c.fill(kPc, 1, allowAll());
    c.fill(kPc, 2, allowAll());
    c.invalidateAsid(1);
    EXPECT_FALSE(c.lookup(kPc, 1, false).hit);
    EXPECT_TRUE(c.lookup(kPc, 2, false).hit);
}

TEST(IsvCache, HitRateAccounting)
{
    IsvCache c;
    (void)c.lookup(kPc, 1, false);
    c.fill(kPc, 1, allowAll());
    (void)c.lookup(kPc, 1, false);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(IsvCache, UncountedLookupLeavesStats)
{
    IsvCache c;
    c.fill(kPc, 1, allowAll());
    (void)c.lookup(kPc, 1, false, 0, /*count=*/false);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(DsvCache, MissFillHit)
{
    DsvCache c;
    EXPECT_FALSE(c.lookup(kPage, 1, false).hit);
    c.fill(kPage, 1, true);
    auto r = c.lookup(kPage + 0x123, 1, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.allow);
}

TEST(DsvCache, NegativeEntryBlocks)
{
    DsvCache c;
    c.fill(kPage, 1, false);
    auto r = c.lookup(kPage, 1, false);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.allow);
}

TEST(DsvCache, PageInvalidationShootsDownAllAsids)
{
    DsvCache c;
    c.fill(kPage, 1, true);
    c.fill(kPage, 2, false);
    c.invalidatePage(kPage + 8);
    EXPECT_FALSE(c.lookup(kPage, 1, false).hit);
    EXPECT_FALSE(c.lookup(kPage, 2, false).hit);
}

TEST(DsvCache, DistinctPagesCoexist)
{
    DsvCache c;
    c.fill(kPage, 1, true);
    c.fill(kPage + 0x1000, 1, false);
    EXPECT_TRUE(c.lookup(kPage, 1, false).allow);
    EXPECT_FALSE(c.lookup(kPage + 0x1000, 1, false).allow);
}
