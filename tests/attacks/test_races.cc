/**
 * @file
 * Security assertions for the dynamic-update race scenarios: each
 * transient gap behaves exactly as modeled — leaks happen only where
 * the window is genuinely open, and every update, once landed, makes
 * the protected data unreachable again.
 */

#include <gtest/gtest.h>

#include "attacks/poc.hh"
#include "attacks/races.hh"
#include "core/isv_builders.hh"
#include "core/perspective.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::workloads;

TEST(Races, RevocationWindowLeaksUntilShootdownLands)
{
    Experiment e(pocProfile(), Scheme::Perspective, 42);
    RaceResult r = raceRevocation(e);

    // The mid-flight window is the modeled vulnerability: the warm
    // stale Allow leaks the new owner's secret, and the policy
    // attributes each such access to the stale-allow counter.
    EXPECT_TRUE(r.leakedInWindow);
    EXPECT_GT(r.staleAllows, 0u);

    // Security contract: once the shootdown applies, the revoked
    // frame is unreachable — the gap has closed.
    EXPECT_FALSE(r.leakedAfterUpdate);
    EXPECT_GT(r.updateLatency, 0u);
}

TEST(Races, ModuleLoadGapIsOnTheSafeSide)
{
    Experiment e(pocProfile(), Scheme::Perspective, 42);
    RaceResult r = raceModuleLoad(e);

    // Unloaded module text is not in the view: the hijack is fenced.
    EXPECT_FALSE(r.leakedBeforeUpdate);
    // Between the slot write and the ISV update the gap errs closed:
    // the slot points at module code the view still excludes.
    EXPECT_FALSE(r.leakedInWindow);
    // A plain incremental extension genuinely grows the surface onto
    // the module's gadget...
    EXPECT_TRUE(r.leakedAfterUpdate);
    // ...and only the ISV++ load-time audit re-closes it.
    EXPECT_FALSE(r.leakedAfterAudit);
    EXPECT_GE(r.updateLatency, core::kIsvUpdateBase);
}

TEST(Races, FleetFlipKillsTheLaxLeak)
{
    Experiment e(pocProfile(), Scheme::Perspective, 42);
    RaceResult r = raceFleetFlip(e);

    // Under the lax per-tenant setting the unknown-provenance leak
    // works; after the fleet-wide flip propagates it must not.
    EXPECT_TRUE(r.leakedBeforeUpdate);
    EXPECT_FALSE(r.leakedAfterUpdate);
    EXPECT_EQ(r.updateLatency,
              core::kFleetFlipBase + 2 * core::kFleetFlipPerContext);
}
