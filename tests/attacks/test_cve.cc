#include <gtest/gtest.h>

#include "attacks/cve.hh"

using namespace perspective::attacks;

TEST(CveCatalog, RowsAreNumberedAndDescribed)
{
    unsigned expect = 1;
    for (const auto &row : cveCatalog()) {
        EXPECT_EQ(row.row, expect++);
        EXPECT_FALSE(row.cves.empty());
        EXPECT_FALSE(row.description.empty());
        EXPECT_FALSE(row.origin.empty());
    }
}

TEST(CveCatalog, DataAccessRowsMapToActivePocs)
{
    for (const auto &row : cveCatalog()) {
        if (row.primitive == Primitive::SpeculativeDataAccess) {
            EXPECT_TRUE(row.poc == PocKind::ActiveV1Ioctl ||
                        row.poc == PocKind::ActiveV1Ptrace ||
                        row.poc == PocKind::ActiveV1Bpf)
                << row.row;
        } else {
            EXPECT_TRUE(row.poc == PocKind::PassiveV2 ||
                        row.poc == PocKind::PassiveRetbleed)
                << row.row;
        }
    }
}

TEST(CveCatalog, XilinxRowMatchesPaper)
{
    const auto &row1 = cveCatalog()[0];
    EXPECT_NE(row1.cves.find("CVE-2022-27223"),
              std::string_view::npos);
    EXPECT_EQ(row1.origin, "Xilinx USB driver");
    EXPECT_EQ(row1.gap, MitigationGap::None);
}

TEST(CveCatalog, RetbleedRowIsSoftwareGap)
{
    for (const auto &row : cveCatalog()) {
        if (row.poc == PocKind::PassiveRetbleed) {
            EXPECT_EQ(row.gap, MitigationGap::Software);
            EXPECT_NE(row.description.find("Retbleed"),
                      std::string_view::npos);
        }
    }
}

TEST(CveCatalog, NamesAreStable)
{
    EXPECT_EQ(pocName(PocKind::ActiveV1Ioctl), "active-v1-ioctl");
    EXPECT_EQ(gapName(MitigationGap::Misuse), "Misuse");
    EXPECT_FALSE(
        primitiveName(Primitive::ControlFlowHijack).empty());
}
