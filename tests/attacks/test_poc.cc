/**
 * @file
 * End-to-end security evaluation (Chapter 8): every Table 4.1 PoC
 * against every relevant scheme, including the taxonomy split — DSVs
 * alone stop active attacks but not passive ones; ISVs close the
 * passive surface.
 */

#include <gtest/gtest.h>

#include "attacks/poc.hh"
#include "core/perspective.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::workloads;

namespace
{

PocResult
runUnder(Scheme scheme, PocKind kind)
{
    Experiment e(pocProfile(), scheme);
    return runPoc(kind, e);
}

} // namespace

TEST(Poc, AllAttacksLeakOnUnsafeHardware)
{
    for (PocKind k : allPocs()) {
        auto r = runUnder(Scheme::Unsafe, k);
        EXPECT_TRUE(r.leaked) << pocName(k);
        ASSERT_TRUE(r.recovered.has_value()) << pocName(k);
        EXPECT_EQ(*r.recovered, r.expected) << pocName(k);
    }
}

TEST(Poc, PerspectiveBlocksEverything)
{
    for (PocKind k : allPocs()) {
        auto r = runUnder(Scheme::Perspective, k);
        EXPECT_FALSE(r.leaked) << pocName(k);
    }
}

TEST(Poc, PerspectivePlusPlusBlocksEverything)
{
    for (PocKind k : allPocs()) {
        auto r = runUnder(Scheme::PerspectivePlusPlus, k);
        EXPECT_FALSE(r.leaked) << pocName(k);
    }
}

TEST(Poc, FenceBlocksEverything)
{
    for (PocKind k : allPocs()) {
        auto r = runUnder(Scheme::Fence, k);
        EXPECT_FALSE(r.leaked) << pocName(k);
    }
}

TEST(Poc, SpotMitigationsMissSpectreV1)
{
    // KPTI + retpoline are spot fixes: v1 gadgets still leak.
    for (PocKind k : {PocKind::ActiveV1Ioctl, PocKind::ActiveV1Ptrace,
                      PocKind::ActiveV1Bpf}) {
        auto r = runUnder(Scheme::Spot, k);
        EXPECT_TRUE(r.leaked) << pocName(k);
    }
}

TEST(Poc, RetpolineStopsV2ButNotRetbleed)
{
    // Table 4.1 rows 5-7: retpoline covers indirect calls but not
    // returns — Retbleed's exact gap.
    EXPECT_FALSE(runUnder(Scheme::Spot, PocKind::PassiveV2).leaked);
    EXPECT_TRUE(
        runUnder(Scheme::Spot, PocKind::PassiveRetbleed).leaked);
}

TEST(Poc, DsvAloneStopsActiveAttacks)
{
    // Taxonomy, active half: ownership isolation suffices.
    Experiment e(pocProfile(), Scheme::Perspective);
    core::PerspectiveConfig cfg;
    cfg.enableIsv = false;
    core::PerspectivePolicy dsv_only(e.kernelState().ownership(), cfg,
                                     "dsv-only");
    auto &ks = e.kernelState();
    const auto &t = ks.task(e.mainPid());
    dsv_only.registerContext(t.asid, t.domain, nullptr);
    e.pipeline().setPolicy(&dsv_only);

    for (PocKind k : {PocKind::ActiveV1Ioctl, PocKind::ActiveV1Ptrace,
                      PocKind::ActiveV1Bpf}) {
        auto r = runPoc(k, e);
        EXPECT_FALSE(r.leaked) << pocName(k);
    }
}

TEST(Poc, DsvAloneMissesPassiveAttacks)
{
    // Taxonomy, passive half: the hijacked victim reads its OWN data
    // — no ownership violation — so DSVs cannot help. This is why
    // Perspective needs ISVs (Section 4.1).
    Experiment e(pocProfile(), Scheme::Perspective);
    core::PerspectiveConfig cfg;
    cfg.enableIsv = false;
    core::PerspectivePolicy dsv_only(e.kernelState().ownership(), cfg,
                                     "dsv-only");
    auto &ks = e.kernelState();
    const auto &t = ks.task(e.mainPid());
    dsv_only.registerContext(t.asid, t.domain, nullptr);
    e.pipeline().setPolicy(&dsv_only);

    auto r = runPoc(PocKind::PassiveV2, e);
    EXPECT_TRUE(r.leaked) << "passive v2 must bypass DSV-only";
}

TEST(Poc, IsvAloneStopsPassiveAttacks)
{
    Experiment e(pocProfile(), Scheme::Perspective);
    core::PerspectiveConfig cfg;
    cfg.enableDsv = false;
    core::PerspectivePolicy isv_only(e.kernelState().ownership(), cfg,
                                     "isv-only");
    auto &ks = e.kernelState();
    const auto &t = ks.task(e.mainPid());
    isv_only.registerContext(t.asid, t.domain, e.isvView());
    e.pipeline().setPolicy(&isv_only);

    EXPECT_FALSE(runPoc(PocKind::PassiveV2, e).leaked);
    EXPECT_FALSE(runPoc(PocKind::PassiveRetbleed, e).leaked);
}

TEST(Poc, CatalogHasNineRowsMappedToPocs)
{
    const auto &rows = cveCatalog();
    ASSERT_EQ(rows.size(), 9u);
    unsigned v1 = 0, hijack = 0;
    for (const auto &r : rows) {
        if (r.primitive == Primitive::SpeculativeDataAccess)
            ++v1;
        else
            ++hijack;
    }
    EXPECT_EQ(v1, 4u);
    EXPECT_EQ(hijack, 5u);
}

TEST(Poc, SpecCfiShadowStackStopsRetbleedOnly)
{
    // Chapter 10's comparison: a shadow stack closes the return
    // hijack, but coarse CFI labels mark every kernel function entry
    // legal, so BTB injection still reaches the gadget, and v1 needs
    // no hijack at all.
    EXPECT_FALSE(
        runUnder(Scheme::SpecCfi, PocKind::PassiveRetbleed).leaked);
    EXPECT_TRUE(runUnder(Scheme::SpecCfi, PocKind::PassiveV2).leaked);
    EXPECT_TRUE(
        runUnder(Scheme::SpecCfi, PocKind::ActiveV1Ioctl).leaked);
}

TEST(Poc, InvisiSpecBlocksAllCacheChannelPocs)
{
    // Invisible speculation closes the cache covert channel for every
    // variant — at the price of always-on hardware complexity the
    // paper's pliable interface avoids.
    for (PocKind k : allPocs())
        EXPECT_FALSE(runUnder(Scheme::InvisiSpec, k).leaked)
            << pocName(k);
}
