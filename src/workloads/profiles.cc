#include "profiles.hh"

#include <set>

namespace perspective::workloads
{

using kernel::Sys;
using kernel::SyscallInvocation;

namespace
{

SyscallInvocation
inv(Sys s, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
    std::uint64_t a2 = 0)
{
    return SyscallInvocation{s, a0, a1, a2};
}

/** libc links wrappers for most of the fs/mm surface into every
 * binary; static binary analysis cannot prune them. */
std::vector<Sys>
libcStaticExtras()
{
    return {Sys::Brk,    Sys::Mprotect, Sys::Fstat, Sys::Lseek,
            Sys::Dup,    Sys::Readdir,  Sys::Pipe,  Sys::Sigaction,
            Sys::Futex,  Sys::Uname,    Sys::Getuid,
            Sys::GetTimeOfDay, Sys::Kill, Sys::Nanosleep,
            Sys::Read,   Sys::Write,    Sys::Open,  Sys::Close,
            Sys::Stat,   Sys::Mmap,     Sys::Munmap,
            Sys::SchedYield, Sys::Socket, Sys::SetSockOpt,
            Sys::Bind,   Sys::Listen,   Sys::EpollCreate,
            Sys::EpollCtl, Sys::ThreadCreate};
}

} // namespace

std::vector<WorkloadProfile>
lebenchSuite()
{
    std::vector<WorkloadProfile> out;
    auto add = [&out](std::string name,
                      std::vector<SyscallInvocation> req) {
        WorkloadProfile w;
        w.name = std::move(name);
        w.request = std::move(req);
        w.userPadIters = 2; // the ROI is the syscall itself
        out.push_back(std::move(w));
    };

    add("getpid", {inv(Sys::Getpid)});
    add("ctx-switch", {inv(Sys::SchedYield)});
    add("read", {inv(Sys::Read, 0, 16)});
    add("write", {inv(Sys::Write, 0, 16)});
    add("big-read", {inv(Sys::BigRead, 0, 256)});
    add("big-write", {inv(Sys::BigWrite, 0, 256)});
    add("mmap", {inv(Sys::Mmap, 2)});
    add("munmap", {inv(Sys::Mmap, 0), inv(Sys::Munmap)});
    add("page-fault", {inv(Sys::PageFault)});
    add("fork", {inv(Sys::Fork)});
    add("big-fork", {inv(Sys::BigFork)});
    add("thread-create", {inv(Sys::ThreadCreate)});
    add("open", {inv(Sys::Open, 0, 0, 3), inv(Sys::Close)});
    add("stat", {inv(Sys::Stat, 0, 0, 3)});
    add("select", {inv(Sys::Select, 0, 512)});
    add("poll", {inv(Sys::Poll, 0, 512)});
    add("epoll", {inv(Sys::EpollWait, 0, 512)});
    add("send", {inv(Sys::Send, 0, 16)});
    add("recv", {inv(Sys::Recv, 0, 16)});

    // The suite binary links the whole syscall surface.
    for (auto &w : out)
        w.extraStaticSyscalls = libcStaticExtras();
    return out;
}

WorkloadProfile
httpdProfile()
{
    WorkloadProfile w;
    w.name = "httpd";
    // Prefork worker: wait, accept, parse, stat+open+read the file,
    // respond, close. ~50% kernel time.
    w.request = {
        inv(Sys::EpollWait, 0, 8), inv(Sys::Accept),
        inv(Sys::Recv, 0, 16),     inv(Sys::Stat, 0, 0, 3),
        inv(Sys::Open, 0, 0, 3),   inv(Sys::Read, 0, 32),
        inv(Sys::Send, 0, 32),     inv(Sys::Close),
    };
    w.userPadIters = 152;
    w.extraStaticSyscalls = libcStaticExtras();
    w.extraStaticSyscalls.push_back(Sys::Fork);
    w.extraStaticSyscalls.push_back(Sys::Select);
    return w;
}

WorkloadProfile
nginxProfile()
{
    WorkloadProfile w;
    w.name = "nginx";
    // Event loop: epoll-driven, sendfile-ish read+send. ~65% kernel.
    w.request = {
        inv(Sys::EpollWait, 0, 16), inv(Sys::Recv, 0, 16),
        inv(Sys::Stat, 0, 0, 2),    inv(Sys::Open, 0, 0, 2),
        inv(Sys::Read, 0, 32),      inv(Sys::Send, 0, 48),
        inv(Sys::Close),
    };
    w.userPadIters = 86;
    w.extraStaticSyscalls = libcStaticExtras();
    w.extraStaticSyscalls.push_back(Sys::Accept);
    w.extraStaticSyscalls.push_back(Sys::SetSockOpt);
    return w;
}

WorkloadProfile
memcachedProfile()
{
    WorkloadProfile w;
    w.name = "memcached";
    // Cache hit path: epoll, recv, hash lookup (user), send. ~65%.
    w.request = {
        inv(Sys::EpollWait, 0, 8),
        inv(Sys::Recv, 0, 8),
        inv(Sys::Send, 0, 8),
    };
    w.userPadIters = 79;
    w.extraStaticSyscalls = libcStaticExtras();
    w.extraStaticSyscalls.push_back(Sys::Accept);
    w.extraStaticSyscalls.push_back(Sys::ThreadCreate);
    return w;
}

WorkloadProfile
redisProfile()
{
    WorkloadProfile w;
    w.name = "redis";
    // Single-threaded event loop over pipes/sockets. ~53% kernel.
    w.request = {
        inv(Sys::EpollWait, 0, 8),
        inv(Sys::Read, 0, 8),
        inv(Sys::Write, 0, 8),
    };
    w.userPadIters = 119;
    w.extraStaticSyscalls = libcStaticExtras();
    w.extraStaticSyscalls.push_back(Sys::Fork); // bgsave
    w.extraStaticSyscalls.push_back(Sys::BigFork);
    return w;
}

std::vector<WorkloadProfile>
datacenterSuite()
{
    return {httpdProfile(), nginxProfile(), memcachedProfile(),
            redisProfile()};
}

std::vector<kernel::SyscallInvocation>
processStartupTrace()
{
    std::vector<SyscallInvocation> t;
    // Loader: program + libraries.
    t.push_back(inv(Sys::Brk));
    for (int lib = 0; lib < 4; ++lib) {
        t.push_back(inv(Sys::Open, 0, 0, 3));
        t.push_back(inv(Sys::Fstat));
        t.push_back(inv(Sys::Mmap, 2));
        t.push_back(inv(Sys::Read, 0, 16));
        t.push_back(inv(Sys::Close));
    }
    t.push_back(inv(Sys::Mprotect));
    t.push_back(inv(Sys::Munmap));
    // Runtime init.
    t.push_back(inv(Sys::Getpid));
    t.push_back(inv(Sys::Getuid));
    t.push_back(inv(Sys::Uname));
    t.push_back(inv(Sys::Sigaction));
    t.push_back(inv(Sys::Futex));
    t.push_back(inv(Sys::GetTimeOfDay));
    // Service initialization: sockets, event queues, worker threads.
    t.push_back(inv(Sys::Socket));
    t.push_back(inv(Sys::SetSockOpt));
    t.push_back(inv(Sys::Bind));
    t.push_back(inv(Sys::Listen));
    t.push_back(inv(Sys::EpollCreate));
    t.push_back(inv(Sys::EpollCtl));
    t.push_back(inv(Sys::ThreadCreate));
    t.push_back(inv(Sys::Pipe));
    t.push_back(inv(Sys::Dup));
    t.push_back(inv(Sys::Readdir, 0, 4));
    t.push_back(inv(Sys::Lseek));
    // Background activity any trace captures.
    t.push_back(inv(Sys::Nanosleep));
    t.push_back(inv(Sys::SchedYield));
    t.push_back(inv(Sys::Write, 0, 8)); // logging
    return t;
}

double
estimatedRequestWeight(const WorkloadProfile &w)
{
    double ops = 5.0 * w.userPadIters + 1.0;
    for (const auto &i : w.request)
        ops += 30.0 + static_cast<double>(i.arg1);
    return ops;
}

std::vector<Sys>
staticSyscallSet(const WorkloadProfile &w)
{
    std::set<Sys> s;
    for (const auto &i : w.request)
        s.insert(i.sys);
    for (Sys e : w.extraStaticSyscalls)
        s.insert(e);
    return {s.begin(), s.end()};
}

} // namespace perspective::workloads
