/**
 * @file
 * Userspace driver functions: one tiny user-mode function per
 * syscall, consisting of a tunable userspace compute loop followed by
 * the call into the kernel entry point. The loop count is taken from
 * register r18 at run time so one driver body serves every workload's
 * kernel-time fraction.
 */

#ifndef PERSPECTIVE_WORKLOADS_DRIVER_HH
#define PERSPECTIVE_WORKLOADS_DRIVER_HH

#include <array>

#include "kernel/image.hh"
#include "kernel/syscalls.hh"

namespace perspective::workloads
{

/** Register conventions for workload drivers. */
namespace dreg
{
inline constexpr sim::RegId kUserBuf = 17; ///< user data region base
inline constexpr sim::RegId kPadIters = 18;///< userspace loop count
} // namespace dreg

/** Builds and indexes the per-syscall user driver functions. */
class DriverSet
{
  public:
    /** Appends one user function per syscall to img.program(). Must
     * run before Program::layout(). */
    explicit DriverSet(kernel::KernelImage &img);

    /** Driver function issuing syscall @p s. */
    sim::FuncId driverFor(kernel::Sys s) const
    {
        return drivers_[static_cast<unsigned>(s)];
    }

    /** All driver function ids (the "application binary" the static
     * ISV analysis disassembles). */
    std::vector<sim::FuncId>
    all() const
    {
        return {drivers_.begin(), drivers_.end()};
    }

  private:
    std::array<sim::FuncId, kernel::kNumSyscalls> drivers_{};
};

} // namespace perspective::workloads

#endif // PERSPECTIVE_WORKLOADS_DRIVER_HH
