#include "driver.hh"

namespace perspective::workloads
{

using namespace sim;
using kernel::Sys;

DriverSet::DriverSet(kernel::KernelImage &img)
{
    Program &prog = img.program();
    for (unsigned i = 0; i < kernel::kNumSyscalls; ++i) {
        Sys s = static_cast<Sys>(i);
        FuncId f = prog.addFunction(
            "drv_" + std::string(kernel::sysName(s)), false);
        prog.func(f).body = {
            movImm(20, 0),                         // 0
            branch(Cond::Ge, 20, dreg::kPadIters, 6), // 1
            add(22, dreg::kUserBuf, 20),           // 2
            load(21, 22, 0),                       // 3
            addImm(20, 20, 1),                     // 4
            jump(1),                               // 5
            call(img.entryOf(s)),                  // 6
            ret(),                                 // 7
        };
        drivers_[i] = f;
    }
}

} // namespace perspective::workloads
