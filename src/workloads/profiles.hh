/**
 * @file
 * Workload profiles: the LEBench-style microbenchmark suite and the
 * four datacenter applications of Chapter 7 (httpd, nginx, memcached,
 * redis), expressed as per-request syscall sequences plus a userspace
 * compute knob that reproduces each application's measured
 * kernel-time fraction (50 / 65 / 65 / 53 %).
 */

#ifndef PERSPECTIVE_WORKLOADS_PROFILES_HH
#define PERSPECTIVE_WORKLOADS_PROFILES_HH

#include <string>
#include <vector>

#include "kernel/syscall_exec.hh"

namespace perspective::workloads
{

/** One benchmark or application. */
struct WorkloadProfile
{
    std::string name;

    /** Syscalls issued per request/iteration, in order. */
    std::vector<kernel::SyscallInvocation> request;

    /** Userspace loop iterations between syscalls (5 micro-ops
     * each); sizes the user/kernel time split. */
    unsigned userPadIters = 2;

    /**
     * Syscalls a static analysis of the binary would additionally
     * attribute to it (libc wrappers that are linked but unused) —
     * static ISVs overapproximate through these.
     */
    std::vector<kernel::Sys> extraStaticSyscalls;
};

/** The LEBench-style microbenchmark suite (Figure 9.2's x-axis). */
std::vector<WorkloadProfile> lebenchSuite();

/** The four datacenter applications (Figure 9.3). */
std::vector<WorkloadProfile> datacenterSuite();

WorkloadProfile httpdProfile();
WorkloadProfile nginxProfile();
WorkloadProfile memcachedProfile();
WorkloadProfile redisProfile();

/** Every syscall a profile touches (request + static extras). */
std::vector<kernel::Sys> staticSyscallSet(const WorkloadProfile &w);

/**
 * Rough simulated-work weight of one request iteration: a fixed
 * per-syscall handler cost, the size-like arg1 loop counts
 * (big-read/big-write style requests scale with them) and the 5-uop
 * userspace pad. The sweep scheduler multiplies this by the
 * iteration count to order cells it has never timed longest-first;
 * only the ordering across cells matters, not the units.
 */
double estimatedRequestWeight(const WorkloadProfile &w);

/**
 * Syscalls every traced process executes before reaching its steady
 * state: the exec/loader sequence (brk, mmap of libraries, dynamic
 * linker file accesses) plus periodic background activity (timers,
 * context switches). Dynamic ISVs include these paths — which is why
 * even a tiny microbenchmark's dynamic ISV spans a few percent of the
 * kernel (Table 8.1).
 */
std::vector<kernel::SyscallInvocation> processStartupTrace();

} // namespace perspective::workloads

#endif // PERSPECTIVE_WORKLOADS_PROFILES_HH
