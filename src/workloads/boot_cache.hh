/**
 * @file
 * Process-wide cache of booted kernel images.
 *
 * Building a KernelImage — generating ~28k function bodies, planting
 * gadgets, laying out the program — costs tens of milliseconds and
 * depends only on the seed. A sweep runs hundreds of cells that all
 * boot the same image, so the harness pays that cost once per seed
 * per process: BootImage bakes the image, drivers and code layout,
 * snapshots the memory the boot wrote, and every Experiment restores
 * that snapshot (copy-on-write page sharing, see sim::Memory) instead
 * of rebuilding.
 *
 * Sharing is sound because a booted image is immutable: KernelImage
 * writes memory only during construction, Program::layout() runs once
 * here, and DriverSet is a constant table — all verified read-only
 * after boot, so concurrent sweep workers can share one instance.
 *
 * The env knob PERSPECTIVE_SNAPSHOT=0 disables reuse (every
 * Experiment builds privately — the pre-cache behaviour); =1 (or
 * unset) enables it.
 */

#ifndef PERSPECTIVE_WORKLOADS_BOOT_CACHE_HH
#define PERSPECTIVE_WORKLOADS_BOOT_CACHE_HH

#include <cstdint>
#include <memory>

#include "driver.hh"
#include "kernel/image.hh"
#include "sim/memory.hh"

namespace perspective::workloads
{

/** One booted, laid-out kernel image plus its memory snapshot. */
class BootImage
{
  public:
    /** Boot from scratch: build the image and drivers, lay out the
     * program, snapshot the memory the boot wrote. */
    explicit BootImage(std::uint64_t seed);

    /**
     * The shared boot for @p seed: served from the process-wide cache
     * when snapshot reuse is enabled, built fresh otherwise.
     * Thread-safe.
     */
    static std::shared_ptr<BootImage> forSeed(std::uint64_t seed);

    /** Snapshot reuse state (PERSPECTIVE_SNAPSHOT, default on). */
    static bool snapshotEnabled();
    /** Override the env knob (tests, bench on/off comparisons). */
    static void setSnapshotEnabled(bool on);
    /** Drop every cached boot (tests; frees the shared pages). */
    static void dropCache();
    /** Number of distinct seeds currently cached. */
    static std::size_t cacheSize();

    kernel::KernelImage &image() { return *img_; }
    DriverSet &drivers() { return *drivers_; }
    /** Memory contents at the end of boot; restore into a cell's
     * Memory to share the image pages copy-on-write. */
    const sim::Memory::Snapshot &memoryImage() const { return snap_; }
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
    sim::Memory bootMem_;
    std::unique_ptr<kernel::KernelImage> img_;
    std::unique_ptr<DriverSet> drivers_;
    sim::Memory::Snapshot snap_;
};

} // namespace perspective::workloads

#endif // PERSPECTIVE_WORKLOADS_BOOT_CACHE_HH
