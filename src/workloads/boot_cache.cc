#include "boot_cache.hh"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace perspective::workloads
{

namespace
{

std::mutex cacheMutex;

std::unordered_map<std::uint64_t, std::shared_ptr<BootImage>> &
cache()
{
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<BootImage>>
        c;
    return c;
}

int snapshotOverride = -1; // -1: follow env, 0/1: forced

bool
envEnabled()
{
    static const bool on = [] {
        const char *env = std::getenv("PERSPECTIVE_SNAPSHOT");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return on;
}

/** Caller must hold cacheMutex. */
bool
enabledLocked()
{
    if (snapshotOverride >= 0)
        return snapshotOverride != 0;
    return envEnabled();
}

} // namespace

BootImage::BootImage(std::uint64_t seed) : seed_(seed)
{
    kernel::ImageParams ip;
    ip.seed = seed;
    img_ = std::make_unique<kernel::KernelImage>(bootMem_, ip);
    drivers_ = std::make_unique<DriverSet>(*img_);
    img_->program().layout();
    snap_ = bootMem_.snapshot();
}

std::shared_ptr<BootImage>
BootImage::forSeed(std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    if (!enabledLocked())
        return std::make_shared<BootImage>(seed);
    auto &slot = cache()[seed];
    if (!slot)
        slot = std::make_shared<BootImage>(seed);
    return slot;
}

bool
BootImage::snapshotEnabled()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return enabledLocked();
}

void
BootImage::setSnapshotEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    snapshotOverride = on ? 1 : 0;
}

void
BootImage::dropCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    cache().clear();
}

std::size_t
BootImage::cacheSize()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return cache().size();
}

} // namespace perspective::workloads
