#include "experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "kernel/process.hh"

namespace perspective::workloads
{

using kernel::Pid;
using kernel::Sys;
using sim::FuncId;

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Unsafe: return "unsafe";
      case Scheme::Fence: return "fence";
      case Scheme::Dom: return "dom";
      case Scheme::Stt: return "stt";
      case Scheme::Spot: return "spot";
      case Scheme::SpecCfi: return "spec-cfi";
      case Scheme::InvisiSpec: return "invisispec";
      case Scheme::PerspectiveStatic: return "perspective-static";
      case Scheme::Perspective: return "perspective";
      case Scheme::PerspectivePlusPlus: return "perspective++";
    }
    return "?";
}

std::vector<Scheme>
paperSchemes()
{
    return {Scheme::Unsafe, Scheme::Fence, Scheme::PerspectiveStatic,
            Scheme::Perspective, Scheme::PerspectivePlusPlus};
}

std::vector<Scheme>
allSchemes()
{
    return {Scheme::Unsafe,           Scheme::Fence,
            Scheme::Dom,              Scheme::Stt,
            Scheme::Spot,             Scheme::SpecCfi,
            Scheme::PerspectiveStatic, Scheme::Perspective,
            Scheme::PerspectivePlusPlus};
}

namespace
{

bool
isPerspective(Scheme s)
{
    return s == Scheme::PerspectiveStatic ||
           s == Scheme::Perspective ||
           s == Scheme::PerspectivePlusPlus;
}

} // namespace

bool
Experiment::fastForwardDefault()
{
    const char *env = std::getenv("PERSPECTIVE_FASTFWD");
    return env && env[0] == '1' && env[1] == '\0';
}

Experiment::Experiment(const WorkloadProfile &profile, Scheme scheme,
                       std::uint64_t seed, bool fastForward,
                       sim::SamplingParams sampling)
    : profile_(profile), scheme_(scheme)
{
    // The booted image (built once per seed per process when snapshot
    // reuse is on): restore its memory contents copy-on-write instead
    // of re-generating and re-laying-out ~28k kernel functions.
    boot_ = BootImage::forSeed(seed);
    img_ = &boot_->image();
    drivers_ = &boot_->drivers();
    mem_.restore(boot_->memoryImage());

    kernel::KernelParams kp;
    kp.secureSlab = isPerspective(scheme);
    ks_ = std::make_unique<kernel::KernelState>(mem_, kp);
    exec_ = std::make_unique<kernel::SyscallExecutor>(*ks_, *img_);

    // The measured tenant plus a co-located victim tenant whose
    // memory must stay confidential, and a background tenant for
    // allocator realism.
    kernel::CgroupId cg_main = ks_->createCgroup(profile.name);
    kernel::CgroupId cg_victim = ks_->createCgroup("victim-tenant");
    kernel::CgroupId cg_bg = ks_->createCgroup("background");
    mainPid_ = ks_->createProcess(cg_main);
    victimPid_ = ks_->createProcess(cg_victim);
    (void)ks_->createProcess(cg_bg);

    // Give the victim a secret in its context block.
    mem_.write(ks_->task(victimPid_).ctxVa +
                   kernel::KernelImage::kSecretCtxOff,
               0x5e);

    sim::PipelineParams pp;
    if (fastForward || sampling.enabled) {
        // Fast-forward mode: timing-exact sprint execution; the
        // per-cycle distribution sampling is what it gives up.
        // Sampled simulation (DESIGN §5.8) builds on the same
        // machinery, so enabling it implies fast-forward.
        pp.fastForward = true;
        pp.detailedTelemetry = false;
    }
    pp.sampling = sampling;
    cpu_ = std::make_unique<sim::Pipeline>(img_->program(), mem_, pp);
    interp_ = std::make_unique<kernel::Interpreter>(img_->program(),
                                                    mem_);

    // Scheme wiring.
    switch (scheme_) {
      case Scheme::Unsafe:
        policy_ = nullptr;
        break;
      case Scheme::Fence:
        simplePolicy_ = std::make_unique<defenses::FencePolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::Dom:
        simplePolicy_ = std::make_unique<defenses::DomPolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::Stt:
        simplePolicy_ = std::make_unique<defenses::SttPolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::Spot:
        simplePolicy_ =
            std::make_unique<defenses::SpotMitigationPolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::SpecCfi:
        simplePolicy_ = std::make_unique<defenses::SpecCfiPolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::InvisiSpec:
        simplePolicy_ =
            std::make_unique<defenses::InvisiSpecPolicy>();
        policy_ = simplePolicy_.get();
        break;
      case Scheme::PerspectiveStatic:
      case Scheme::Perspective:
      case Scheme::PerspectivePlusPlus: {
        buildIsv();
        perspective_ = std::make_unique<core::PerspectivePolicy>(
            ks_->ownership(), core::PerspectiveConfig{},
            schemeName(scheme_));
        // Timestamp source for deferred revocations / fleet flips;
        // with the default revocationLatency of 0 every update path
        // stays synchronous and nothing changes.
        perspective_->setClock(cpu_->cyclePtr());
        registerPerspectiveContext(mainPid_);
        registerPerspectiveContext(victimPid_);
        policy_ = perspective_.get();
        break;
      }
    }

    cpu_->setPolicy(policy_);

    // Transient-leakage ground truth (DESIGN §5.6), armed for every
    // scheme: a speculative kernel load is "secret" when a correct,
    // fully-synchronized policy would have blocked it — its function
    // is outside the context's ISV (when the scheme builds one), or
    // its target page is outside the context's DSV-reachable set
    // (another domain's frame, or unknown provenance). Pure lookups
    // only: the closure must not perturb simulated state.
    cpu_->leakLedger().setClassifier(
        [this, mruAsid = sim::Asid{0xffff},
         mruDom = kernel::kDomainUnknown](
            sim::Addr va, FuncId func, sim::Asid asid,
            sim::Cycle) mutable -> sim::SecretVerdict {
            bool secret = false;
            if (isv_ && func != sim::kNoFunc &&
                !isv_->containsFunction(func))
                secret = true;
            if (!secret && kernel::inDirectMap(va)) {
                kernel::DomainId owner =
                    ks_->ownership().ownerOfVa(va);
                if (owner != kernel::kDomainReplicated) {
                    if (asid != mruAsid) {
                        mruAsid = asid;
                        mruDom = ks_->domainOfAsid(asid);
                    }
                    // Unknown provenance is conservatively secret
                    // (the blockUnknown ground truth).
                    if (owner != mruDom)
                        secret = true;
                }
            }
            if (!secret)
                return {};
            // Attribute the stale allow to the dynamic-update window
            // that made it possible. The *active* policy is consulted
            // (PoCs lease replacement policies onto the pipeline).
            sim::LeakWindow w = sim::LeakWindow::Baseline;
            if (auto *p = dynamic_cast<core::PerspectivePolicy *>(
                    cpu_->policy()))
                w = p->updateWindow(va, asid);
            return {true, w};
        });

    const kernel::Task &t = ks_->task(mainPid_);
    cpu_->setAsid(t.asid);
    cpu_->setKernelStackBase(t.stackTopVa);
    cpu_->setReg(dreg::kUserBuf, 0x3000'0000 + t.pid * 0x10'0000);
}

void
Experiment::buildIsv()
{
    if (scheme_ == Scheme::PerspectiveStatic) {
        core::StaticIsvBuilder builder(*img_);
        std::set<Sys> sys;
        for (Sys s : staticSyscallSet(profile_))
            sys.insert(s);
        isv_.emplace(builder.build(sys));
        return;
    }

    // Dynamic ISV: trace the process lifecycle (startup + steady
    // state) offline, like the kernel tracing subsystem would.
    core::DynamicIsvBuilder builder(*img_);
    auto observe = [&](FuncId f) { builder.observe(f); };
    for (const auto &inv : processStartupTrace()) {
        auto prep = exec_->prepare(mainPid_, inv);
        kernel::Interpreter &in = *interp_;
        in.reset();
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        in.run(img_->entryOf(inv.sys), 2'000'000, observe);
        exec_->finish(mainPid_, inv);
    }
    for (unsigned i = 0; i < 3; ++i)
        traceRequest(observe);
    isv_.emplace(builder.build());

    if (scheme_ == Scheme::PerspectivePlusPlus) {
        // ISV++: exclude every gadget function the (ISV-bounded)
        // audit reports. The bounded scanner deterministically finds
        // all planted gadgets inside the view (see
        // analysis/scanner.cc), so the exclusion set equals the
        // in-view gadget functions.
        std::vector<FuncId> vulnerable;
        for (FuncId f : img_->functionsWithGadgets()) {
            if (isv_->containsFunction(f))
                vulnerable.push_back(f);
        }
        core::applyAudit(*isv_, vulnerable);
    }
}

void
Experiment::registerPerspectiveContext(Pid pid)
{
    if (!perspective_)
        return;
    const kernel::Task &t = ks_->task(pid);
    perspective_->registerContext(t.asid, t.domain,
                                  isv_ ? &*isv_ : nullptr);
}

void
Experiment::traceRequest(
    const std::function<void(FuncId)> &on_func)
{
    for (const auto &inv : profile_.request) {
        auto prep = exec_->prepare(mainPid_, inv);
        kernel::Interpreter &in = *interp_;
        in.reset();
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        in.setReg(dreg::kPadIters, 0);
        in.run(img_->entryOf(inv.sys), 2'000'000, on_func);
        exec_->finish(mainPid_, inv);
    }
}

sim::RunResult
Experiment::runRequestOnPipeline()
{
    return runRequestAs(mainPid_);
}

sim::RunResult
Experiment::runRequestAs(Pid pid)
{
    const kernel::Task &t = ks_->task(pid);
    cpu_->setAsid(t.asid);
    cpu_->setKernelStackBase(t.stackTopVa);
    cpu_->setReg(dreg::kUserBuf, 0x3000'0000 + t.pid * 0x10'0000);

    sim::RunResult total;
    for (const auto &inv : profile_.request) {
        auto prep = exec_->prepare(pid, inv);
        for (auto [r, v] : prep.regs)
            cpu_->setReg(r, v);
        cpu_->setReg(dreg::kPadIters, profile_.userPadIters);
        auto r = cpu_->run(drivers_->driverFor(inv.sys));
        exec_->finish(pid, inv);
        total.cycles += r.cycles;
        total.instructions += r.instructions;
    }
    return total;
}

Experiment::Snapshot
Experiment::snapshot() const
{
    return {mem_.snapshot(), ks_->snapshot(), exec_->snapshot(),
            cpu_->snapshot(),
            perspective_
                ? std::optional(perspective_->snapshot())
                : std::nullopt};
}

void
Experiment::restore(const Snapshot &s)
{
    mem_.restore(s.mem);
    ks_->restore(s.kstate);
    exec_->restore(s.exec);
    cpu_->restore(s.cpu);
    // The ownership table and the policy's DSVMT mirrors/caches are
    // restored as a consistent pair, so no listener replay is needed.
    if (perspective_ && s.perspective)
        perspective_->restore(*s.perspective);
}

RunResult
Experiment::run(unsigned iterations, unsigned warmup)
{
    for (unsigned i = 0; i < warmup; ++i)
        runRequestOnPipeline();

    // Warmup must leave the microarchitectural state warm but the
    // accounting cold: zero every stat counter and the ISV/DSV
    // cache hit/miss bookkeeping (cached entries survive) so the
    // result — including the StatSet snapshot it carries and the
    // cache hit rates — covers only measured work.
    sim::StatSet &st = cpu_->stats();
    st.clear();
    cpu_->leakLedger().reset();
    // The sampling phase machine anchors on the committed counter
    // just cleared; re-anchoring also opens the measured phase with a
    // fresh detailed window and an empty estimator.
    cpu_->resetSampling();
    if (perspective_) {
        perspective_->isvCache().resetAccounting();
        perspective_->dsvCache().resetAccounting();
        perspective_->resetDsvmtMruStats();
    }

    RunResult out;
    for (unsigned i = 0; i < iterations; ++i) {
        auto r = runRequestOnPipeline();
        out.cycles += r.cycles;
    }
    out.instructions = st.get("committed");
    out.kernelInstructions = st.get("committed.kernel");
    out.fences = st.get("fences");
    out.isvFences = st.get("perspective.fence.isv");
    out.dsvFences = st.get("perspective.fence.dsv");
    if (perspective_) {
        out.isvCacheHitRate = perspective_->isvCache().hitRate();
        out.dsvCacheHitRate = perspective_->dsvCache().hitRate();
        // DSVMT-walk MRU-granule telemetry rides along in the cell
        // stats so sweeps (and bench_report) can report it.
        st.inc("dsvmt.mru.hits", perspective_->dsvmtMruHits());
        st.inc("dsvmt.mru.lookups", perspective_->dsvmtMruLookups());
    }
    out.stats = st;
    out.leakage = cpu_->leakLedger().summary();
    for (auto &g : out.leakage.topGadgets) {
        if (g.func != sim::kNoFunc)
            g.funcName = cpu_->program().func(g.func).name;
        if (g.entryFunc != sim::kNoFunc)
            g.entryName = cpu_->program().func(g.entryFunc).name;
    }

    // Sampled mode (DESIGN §5.8): the accumulated cycle count covers
    // only the detailed windows; the reported total is the estimate
    // cpiMean x committed instructions, carried with its confidence
    // interval. An infinite window is the warming-equivalence
    // configuration — every instruction ran detailed, so the
    // measured cycles are already exact and no extrapolation applies.
    const sim::SamplingParams &sp = cpu_->params().sampling;
    if (cpu_->sampledMode() &&
        sp.windowInsts != sim::SamplingParams::kInfiniteWindow) {
        if (cpu_->sampler().windows() == 0) {
            // Stream too short for one full window: fold the open
            // partial window in rather than report zero cycles.
            cpu_->flushSampleWindow();
        }
        const sim::SamplingEstimator &est = cpu_->sampler();
        if (est.windows() > 0) {
            out.sampling.active = true;
            out.sampling.windows = est.windows();
            out.sampling.windowInsts = sp.windowInsts;
            out.sampling.warmingInsts = sp.warmingInsts;
            out.sampling.periodInsts = sp.periodInsts;
            out.sampling.cpiMean = est.cpiMean();
            out.sampling.cpiCi95 = est.cpiCi95();
            out.sampling.relError = est.relError();
            out.sampling.sampledInsts = est.sampledInsts();
            out.sampling.measuredCycles = out.cycles;
            out.cycles = static_cast<sim::Cycle>(std::llround(
                est.cpiMean() *
                static_cast<double>(out.instructions)));
        }
    }
    return out;
}

} // namespace perspective::workloads
