/**
 * @file
 * Experiment: one fully-wired simulation stack — memory, kernel
 * image, kernel state, driver binary, processes, defense scheme —
 * for one workload under one scheme. This is the harness every
 * bench binary builds on.
 */

#ifndef PERSPECTIVE_WORKLOADS_EXPERIMENT_HH
#define PERSPECTIVE_WORKLOADS_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>

#include "boot_cache.hh"
#include "core/isv_builders.hh"
#include "core/perspective.hh"
#include "defenses/schemes.hh"
#include "driver.hh"
#include "kernel/image.hh"
#include "kernel/interp.hh"
#include "kernel/kstate.hh"
#include "kernel/syscall_exec.hh"
#include "profiles.hh"
#include "sim/pipeline.hh"

namespace perspective::workloads
{

/** Evaluated defense schemes (Chapter 7). */
enum class Scheme
{
    Unsafe,
    Fence,
    Dom,
    Stt,
    Spot,
    SpecCfi,
    InvisiSpec,
    PerspectiveStatic,
    Perspective,
    PerspectivePlusPlus,
};

const char *schemeName(Scheme s);

/** The five schemes of Figures 9.2/9.3. */
std::vector<Scheme> paperSchemes();
/** All eight (adds DOM/STT/spot comparisons of Section 9.1). */
std::vector<Scheme> allSchemes();

/** Sampling outcome attached to a RunResult (sampled mode only). */
struct SampledStats
{
    bool active = false;       ///< the run executed in sampled mode
    std::uint64_t windows = 0; ///< detailed windows in the estimate
    std::uint64_t windowInsts = 0;
    std::uint64_t warmingInsts = 0;
    std::uint64_t periodInsts = 0;
    double cpiMean = 0.0;
    double cpiCi95 = 0.0; ///< 95% CI half-width on the mean CPI
    double relError = 0.0; ///< cpiCi95 / cpiMean
    std::uint64_t sampledInsts = 0; ///< insts inside detailed windows
    /** Raw detailed-window cycles before extrapolation (RunResult::
     * cycles is cpiMean x instructions in sampled mode). */
    std::uint64_t measuredCycles = 0;
};

/** Measured outcome of one workload run. */
struct RunResult
{
    sim::Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t kernelInstructions = 0;
    std::uint64_t fences = 0;
    std::uint64_t isvFences = 0;
    std::uint64_t dsvFences = 0;
    double isvCacheHitRate = 0;
    double dsvCacheHitRate = 0;
    sim::StatSet stats;
    /** Transient-leakage accounting for the measured iterations
     * (observation-only; see sim/leakage.hh and DESIGN §5.6). */
    sim::LeakageSummary leakage;
    /** Sampled-simulation estimate (DESIGN §5.8); active only when
     * the run executed in sampled mode, in which case `cycles` is the
     * extrapolated value and `stats` covers only detailed windows. */
    SampledStats sampling;

    double
    kernelFraction() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(kernelInstructions) /
                         static_cast<double>(instructions);
    }
};

/** One workload under one scheme on a freshly-booted stack. */
class Experiment
{
  public:
    /**
     * @p fastForward selects the pipeline's fast-forward execution
     * mode (timing-exact; see PipelineParams::fastForward). The
     * default follows the PERSPECTIVE_FASTFWD environment variable
     * ("1" enables), so whole suites can be flipped without code
     * changes; benches pass it explicitly to run both modes in one
     * process. Fast-forward cells trade the per-cycle telemetry
     * (detailedTelemetry) for throughput.
     *
     * @p sampling selects sampled simulation (DESIGN §5.8; the
     * default follows PERSPECTIVE_SAMPLE). Sampling builds on the
     * fast-forward machinery, so an enabled @p sampling implies
     * @p fastForward regardless of the flag passed. Sampled results
     * are statistical: RunResult::cycles is an extrapolated estimate
     * carrying the RunResult::sampling confidence interval.
     */
    Experiment(const WorkloadProfile &profile, Scheme scheme,
               std::uint64_t seed = 42,
               bool fastForward = fastForwardDefault(),
               sim::SamplingParams sampling =
                   sim::SamplingParams::fromEnv());

    /** True when PERSPECTIVE_FASTFWD=1 is set in the environment. */
    static bool fastForwardDefault();

    /** Run @p iterations measured request iterations (after
     * @p warmup unmeasured ones) and report the aggregate. */
    RunResult run(unsigned iterations, unsigned warmup = 2);

    /**
     * Checkpoint of the full experiment state — memory (copy-on-
     * write), kernel, executor, pipeline microarchitecture and policy
     * lookup structures — at a quiescent point (between runs). Take
     * one after boot or after warmup and restore() any number of
     * times to re-run measurement from an identical warm state
     * without re-booting.
     */
    struct Snapshot
    {
        sim::Memory::Snapshot mem;
        kernel::KernelState::Snapshot kstate;
        kernel::SyscallExecutor::Snapshot exec;
        sim::Pipeline::Snapshot cpu;
        std::optional<core::PerspectivePolicy::Snapshot> perspective;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    // -- component access (attack PoCs, surface studies) ---------------
    // The image and drivers may be shared (read-only) with other
    // Experiments of the same seed; see BootImage.
    kernel::KernelImage &image() { return *img_; }
    kernel::KernelState &kernelState() { return *ks_; }
    kernel::SyscallExecutor &executor() { return *exec_; }
    sim::Memory &memory() { return mem_; }
    sim::Pipeline &pipeline() { return *cpu_; }
    DriverSet &drivers() { return *drivers_; }
    const WorkloadProfile &profile() const { return profile_; }
    Scheme scheme() const { return scheme_; }
    kernel::Pid mainPid() const { return mainPid_; }
    kernel::Pid victimPid() const { return victimPid_; }

    /** The active ISV view (Perspective schemes only). */
    core::IsvView *isvView() { return isv_ ? &*isv_ : nullptr; }
    core::PerspectivePolicy *perspectivePolicy()
    {
        return perspective_.get();
    }
    sim::SpeculationPolicy *policy() { return policy_; }

    /** Execute one request iteration on the pipeline and return its
     * cycles/instructions (used by run() and by PoC drivers). */
    sim::RunResult runRequestOnPipeline();

    /** Same, but on behalf of @p pid (context-switch studies). The
     * pipeline's ASID and kernel stack switch to that task's. */
    sim::RunResult runRequestAs(kernel::Pid pid);

    /** Trace one request iteration on the interpreter, reporting
     * function entries to @p on_func. */
    void traceRequest(const std::function<void(sim::FuncId)> &on_func);

    /** Register an additional context (e.g. the attacker process in
     * PoCs) with the Perspective policy. */
    void registerPerspectiveContext(kernel::Pid pid);

  private:
    void buildIsv();

    WorkloadProfile profile_;
    Scheme scheme_;

    sim::Memory mem_;
    std::shared_ptr<BootImage> boot_;
    kernel::KernelImage *img_ = nullptr;     ///< boot_'s image
    DriverSet *drivers_ = nullptr;           ///< boot_'s drivers
    std::unique_ptr<kernel::KernelState> ks_;
    std::unique_ptr<kernel::SyscallExecutor> exec_;
    std::unique_ptr<sim::Pipeline> cpu_;
    /** Long-lived tracing interpreter: reset() per invocation, so its
     * predecoded superblocks and call stack persist across the whole
     * ISV build instead of being rebuilt per syscall. */
    std::unique_ptr<kernel::Interpreter> interp_;

    kernel::Pid mainPid_ = 0;
    kernel::Pid victimPid_ = 0; ///< co-tenant with secrets

    std::optional<core::IsvView> isv_;
    std::unique_ptr<core::PerspectivePolicy> perspective_;
    std::unique_ptr<sim::SpeculationPolicy> simplePolicy_;
    sim::SpeculationPolicy *policy_ = nullptr;
};

} // namespace perspective::workloads

#endif // PERSPECTIVE_WORKLOADS_EXPERIMENT_HH
