#include "scanner.hh"

#include "kernel/process.hh"

namespace perspective::analysis
{

using kernel::Sys;
using sim::FuncId;

std::uint64_t
GadgetScanner::rnd(std::uint64_t bound)
{
    rngState_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rngState_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return bound ? z % bound : z;
}

ScanResult
GadgetScanner::scan(const ScannerConfig &cfg,
                    const core::IsvView *bound)
{
    rngState_ = cfg.seed * 0x2545f4914f6cdd1dull + 99;
    ScanResult res;
    std::unordered_set<FuncId> covered;
    double sim_seconds = 0;

    std::vector<Sys> syscalls = cfg.syscallSet;
    if (syscalls.empty()) {
        for (unsigned i = 0; i < kernel::kNumSyscalls; ++i)
            syscalls.push_back(static_cast<Sys>(i));
    }

    kernel::Interpreter in(img_.program(), mem_);
    for (unsigned e = 0; e < cfg.executions; ++e) {
        // Syzkaller-style input generation: random syscall, random
        // arguments, and the error/variant knobs that steer execution
        // into cold handler paths.
        kernel::SyscallInvocation inv;
        inv.sys = syscalls[rnd(syscalls.size())];
        inv.arg0 = rnd(64);
        inv.arg1 = rnd(32) + 1;
        inv.arg2 = rnd(4) + 1;

        auto prep = exec_.prepare(pid_, inv);
        in.reset();
        for (auto [r, v] : prep.regs)
            in.setReg(r, v);
        // Flip the knobs on most executions to explore error paths
        // and variants, as a feedback-driven fuzzer ends up doing:
        // r14 selects one fault-injection site, r15 widens traversal
        // into variant paths.
        in.setReg(kernel::reg::kFault,
                  rnd(2) ? 1 + rnd(2048) : 0);
        in.setReg(kernel::reg::kVariant, rnd(2));
        in.setDryStores(true);

        std::uint64_t analysis_uops = 0;
        auto on_func = [&](FuncId f) {
            if (bound && !bound->containsFunction(f))
                return; // outside the ISV: cannot execute
                        // speculatively, no need to audit
            if (!covered.insert(f).second)
                return; // already instrumented+analyzed
            const auto &body = img_.program().func(f).body;
            analysis_uops += body.size();
            ++res.functionsAnalyzed;
            for (kernel::GadgetKind k : img_.info(f).gadgets) {
                ++res.gadgetsFound;
                switch (k) {
                  case kernel::GadgetKind::Mds:
                    ++res.mdsFound;
                    break;
                  case kernel::GadgetKind::Port:
                    ++res.portFound;
                    break;
                  case kernel::GadgetKind::Cache:
                    ++res.cacheFound;
                    break;
                }
            }
            if (!img_.info(f).gadgets.empty())
                res.vulnerableFunctions.push_back(f);
        };

        auto r = in.run(img_.entryOf(inv.sys), 500'000, on_func);
        exec_.finish(pid_, inv);

        sim_seconds += cfg.perExecCostSec;
        sim_seconds += r.uops * cfg.execCostSec;
        sim_seconds += analysis_uops * cfg.analysisCostSec;
        ++res.executions;
    }

    res.simHours = sim_seconds / 3600.0;
    return res;
}

} // namespace perspective::analysis
