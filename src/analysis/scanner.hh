/**
 * @file
 * Kasper-style transient-execution gadget scanner.
 *
 * The scanner mirrors the Kasper + Syzkaller pipeline the paper
 * augments (Sections 5.4, 6.1, 8.2): a coverage-guided fuzzing loop
 * generates syscall invocations (including error-injection and
 * path-variant knobs), executions are traced, and every newly-covered
 * function pays a speculative-taint-analysis cost proportional to its
 * size. Analyzing a function that contains a planted gadget discovers
 * it.
 *
 * Perspective's contribution is reproduced by the *bounded* mode:
 * functions outside a given ISV are skipped entirely — they cannot
 * execute speculatively, so auditing them is unnecessary — which
 * raises the discovery rate (gadgets per simulated hour, Figure 9.1)
 * and yields the exclusion list that hardens the view into ISV++.
 */

#ifndef PERSPECTIVE_ANALYSIS_SCANNER_HH
#define PERSPECTIVE_ANALYSIS_SCANNER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/isv.hh"
#include "kernel/image.hh"
#include "kernel/interp.hh"
#include "kernel/syscall_exec.hh"

namespace perspective::analysis
{

/** Fuzzing campaign configuration. */
struct ScannerConfig
{
    std::uint64_t seed = 7;
    /** Fuzzing executions to run. */
    unsigned executions = 3000;
    /** Simulated seconds of raw execution per executed micro-op.
     * Kasper's bottleneck is the taint analysis, not execution. */
    double execCostSec = 2e-6;
    /** Fixed cost per fuzzing execution (input generation, VM
     * syscall setup, instrumented run — the Syzkaller share). */
    double perExecCostSec = 0.55;
    /** Simulated seconds of taint analysis per micro-op of a newly
     * covered function. */
    double analysisCostSec = 90e-3;
    /** Restrict fuzzing to these syscalls (empty = whole table). */
    std::vector<kernel::Sys> syscallSet;
};

/** Outcome of a scanning campaign. */
struct ScanResult
{
    unsigned gadgetsFound = 0;
    unsigned mdsFound = 0;
    unsigned portFound = 0;
    unsigned cacheFound = 0;
    double simHours = 0;
    unsigned functionsAnalyzed = 0;
    unsigned executions = 0;
    std::vector<sim::FuncId> vulnerableFunctions;

    double
    discoveryRate() const
    {
        return simHours <= 0 ? 0 : gadgetsFound / simHours;
    }
};

/** The scanner itself. */
class GadgetScanner
{
  public:
    /**
     * @param exec syscall executor providing semantic prepare/finish
     *        (the scanner fuzzes against live kernel state).
     */
    GadgetScanner(kernel::KernelImage &img, sim::Memory &mem,
                  kernel::SyscallExecutor &exec, kernel::Pid pid)
        : img_(img), mem_(mem), exec_(exec), pid_(pid)
    {
    }

    /**
     * Run a campaign. When @p bound is non-null, only functions
     * inside the view are instrumented and analyzed (Perspective-
     * accelerated auditing).
     */
    ScanResult scan(const ScannerConfig &cfg,
                    const core::IsvView *bound = nullptr);

  private:
    std::uint64_t rnd(std::uint64_t bound);

    kernel::KernelImage &img_;
    sim::Memory &mem_;
    kernel::SyscallExecutor &exec_;
    kernel::Pid pid_;
    std::uint64_t rngState_ = 0;
};

} // namespace perspective::analysis

#endif // PERSPECTIVE_ANALYSIS_SCANNER_HH
