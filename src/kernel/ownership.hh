/**
 * @file
 * Per-frame ownership: which domain (cgroup / kernel thread) a
 * physical page belongs to. This is the ground truth that Data
 * Speculation Views are built from: a context's DSV is exactly the set
 * of direct-map pages whose owner equals the context's domain.
 */

#ifndef PERSPECTIVE_KERNEL_OWNERSHIP_HH
#define PERSPECTIVE_KERNEL_OWNERSHIP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "types.hh"

namespace perspective::kernel
{

/** Frame-indexed owner table covering all simulated physical memory. */
class OwnershipMap
{
  public:
    explicit OwnershipMap(std::uint64_t num_frames)
        : owner_(num_frames, kDomainUnknown)
    {
    }

    DomainId
    ownerOf(Pfn pfn) const
    {
        return pfn < owner_.size() ? owner_[pfn] : kDomainUnknown;
    }

    /** Owner of the frame backing direct-map address @p va. */
    DomainId
    ownerOfVa(sim::Addr va) const
    {
        if (!inDirectMap(va))
            return kDomainUnknown;
        return ownerOf(directMapPfn(va));
    }

    void
    assign(Pfn pfn, DomainId domain)
    {
        if (pfn < owner_.size())
            owner_[pfn] = domain;
        ++epoch_;
        for (auto &l : listeners_)
            l.fn(pfn);
    }

    using ListenerId = std::uint64_t;

    /**
     * Register a change listener (e.g. a DSVMT cache that must shoot
     * down entries for reassigned frames). The returned id removes it
     * again — a listener capturing a shorter-lived object (the races'
     * leased policies) MUST deregister before that object dies, or
     * the next assign() calls through a dangling pointer.
     */
    ListenerId
    addListener(std::function<void(Pfn)> fn)
    {
        listeners_.push_back({nextListenerId_++, std::move(fn)});
        return listeners_.back().id;
    }

    void
    removeListener(ListenerId id)
    {
        for (auto it = listeners_.begin(); it != listeners_.end();
             ++it) {
            if (it->id == id) {
                listeners_.erase(it);
                return;
            }
        }
    }

    void
    assignRange(Pfn pfn, std::uint64_t count, DomainId domain)
    {
        for (std::uint64_t i = 0; i < count; ++i)
            assign(pfn + i, domain);
    }

    void
    release(Pfn pfn)
    {
        assign(pfn, kDomainUnknown);
    }

    std::uint64_t numFrames() const { return owner_.size(); }

    /** Bumped on every change; DSV caches use it to invalidate. */
    std::uint64_t epoch() const { return epoch_; }

    /** Owner table + epoch checkpoint. Listeners are identity, not
     * state: restore() keeps the registered listeners (the DSVMT
     * caches wired at policy construction) untouched. */
    struct Snapshot
    {
        std::vector<DomainId> owner;
        std::uint64_t epoch = 0;
    };

    Snapshot
    snapshot() const
    {
        return {owner_, epoch_};
    }

    void
    restore(const Snapshot &s)
    {
        owner_ = s.owner;
        epoch_ = s.epoch;
    }

  private:
    struct Listener
    {
        ListenerId id;
        std::function<void(Pfn)> fn;
    };

    std::vector<DomainId> owner_;
    std::uint64_t epoch_ = 0;
    std::vector<Listener> listeners_;
    ListenerId nextListenerId_ = 1;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_OWNERSHIP_HH
