/**
 * @file
 * Fleet-wide enforcement control, modeled on the DEXCR-style
 * system-wide override (SNIPPETS.md: powerpc's Dynamic Execution
 * Control Register): the administrator keeps one global enforcement
 * value, every task keeps its own, and the kernel synchronizes the
 * OR of the two on return to userspace. Writes to the global value
 * can only *set* aspects — an admin "tighten every context now" flip
 * can never be weakened by a task clearing its own bits (the sudo-
 * downgrade scenario: a process that disables an aspect for itself
 * and then execs a privileged binary still runs it enforced).
 *
 * Task values are inherited across fork and exec (Task::fleetBits,
 * KernelState::forkProcess/execProcess); the policy-side timing of a
 * flip — when running contexts actually observe the tightened value —
 * lives in core::PerspectivePolicy::fleetTighten.
 */

#ifndef PERSPECTIVE_KERNEL_FLEET_HH
#define PERSPECTIVE_KERNEL_FLEET_HH

#include <cstdint>

namespace perspective::kernel
{

/** Enforcement aspects an admin can force fleet-wide. */
enum : std::uint32_t
{
    /** Block speculative access to unknown-provenance allocations
     * (forces PerspectiveConfig::blockUnknown on). */
    kFleetBlockUnknown = 1u << 0,
    /** Flush the ISV/DSV lookup caches on every context switch. */
    kFleetFlushOnSwitch = 1u << 1,
    /** Intersect the admin policy view into every context's ISV at
     * fill time ("no tenant may speculate into these subsystems"). */
    kFleetRestrictIsv = 1u << 2,
};

/** The global (sysfs) half of the enforcement value. */
class FleetControl
{
  public:
    /** Admin write: OR @p aspect_bits into the global value. There
     * is deliberately no clear operation — enforcement only ever
     * tightens, matching the DEXCR sysfs semantics. */
    void
    enforce(std::uint32_t aspect_bits)
    {
        global_ |= aspect_bits;
        ++gen_;
    }

    std::uint32_t globalBits() const { return global_; }

    /** Ticks on every enforce(); tasks compare against it to decide
     * whether they must resynchronize their effective value. */
    std::uint64_t gen() const { return gen_; }

    /** The value a task actually runs under: its own bits OR the
     * global enforcement — a task can tighten itself further but
     * never escape the admin's floor. */
    std::uint32_t
    effective(std::uint32_t task_bits) const
    {
        return global_ | task_bits;
    }

  private:
    std::uint32_t global_ = 0;
    std::uint64_t gen_ = 0;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_FLEET_HH
