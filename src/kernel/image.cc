#include "image.hh"

#include <cassert>

#include "process.hh"

namespace perspective::kernel
{

using namespace sim;

/** Tiny fix-up assembler for generated bodies. */
struct KernelImage::Assembler
{
    std::vector<MicroOp> ops;

    unsigned
    emit(MicroOp op)
    {
        ops.push_back(op);
        return static_cast<unsigned>(ops.size() - 1);
    }

    std::uint32_t here() const
    {
        return static_cast<std::uint32_t>(ops.size());
    }

    void patch(unsigned idx, std::uint32_t target)
    {
        ops[idx].target = target;
    }
};

/** Recipe for one generated function body. */
struct KernelImage::BodyCfg
{
    unsigned aluOps = 2;
    unsigned ctxLoads = 2;
    unsigned stores = 1;
    bool setRet = false;
    std::optional<GadgetKind> gadget;
    std::vector<FuncId> hotCalls;     ///< executed on benign runs
    std::vector<FuncId> variantCalls; ///< behind the r15 knob
    std::vector<FuncId> errorCalls;   ///< behind the r14 knob
};

KernelImage::KernelImage(sim::Memory &mem, ImageParams params)
    : mem_(mem),
      params_(params),
      rngState_(params.seed * 0x9e3779b97f4a7c15ull + 1)
{
    coreAnchors_.resize(16);
    coreFuncs_.resize(16);

    // Initialize global variables with small deterministic values so
    // generated loads observe real data. Global 0 is the shared
    // bounds value used by every planted gadget's guard.
    pocBoundVa_ = bootGlobalVa(0);
    mem_.write(pocBoundVa_, 16);
    for (unsigned i = 1; i < 1024; ++i)
        mem_.write(bootGlobalVa(i), i % 7 + 1);

    buildPools();
    buildCores();
    buildWorkers();
    buildIndirectImpls();
    buildEntryExit();
    buildSyscallTrees();
    buildColdBulk();
    plantGadgets();
    finalizeEdges();
    writeRodataTables();
}

std::uint64_t
KernelImage::rnd(std::uint64_t bound)
{
    rngState_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rngState_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return bound ? z % bound : z;
}

double
KernelImage::rndReal()
{
    return static_cast<double>(rnd(1u << 30)) /
           static_cast<double>(1u << 30);
}

FuncId
KernelImage::newFunc(std::string name, Subsystem ss, FuncClass cls)
{
    FuncId id = prog_.addFunction(std::move(name), true);
    assert(id == info_.size());
    KFuncInfo fi;
    fi.subsys = ss;
    info_.push_back(std::move(fi));
    class_.push_back(cls);
    switch (cls) {
      case FuncClass::Hot: hotTreeFuncs_.push_back(id); break;
      case FuncClass::Warm: warmTreeFuncs_.push_back(id); break;
      case FuncClass::Cold: coldFuncs_.push_back(id); break;
    }
    return id;
}

void
KernelImage::emitGadgetIr(Assembler &a, GadgetKind)
{
    // Classic Spectre v1 shape: a bounds check guarding an attacker-
    // indexed access whose result feeds a transmitting access. The
    // guard lives in an unknown-provenance global; the indexed table
    // is in the current task's context block.
    a.emit(loadAbs(24, pocBoundVa_));
    unsigned skip = a.emit(branch(Cond::Ge, reg::kArg0, 24, 0));
    a.emit(shlImm(25, reg::kArg0, 3));
    a.emit(add(26, 25, reg::kCtx));
    a.emit(load(27, 26, kGadgetTableOff)); // access
    a.emit(shlImm(28, 27, 12));
    a.emit(addImm(29, 28,
                  static_cast<std::int64_t>(kSharedProbeBase)));
    a.emit(load(30, 29, 0)); // transmit
    a.patch(skip, a.here());
}

std::vector<MicroOp>
KernelImage::genBody(const BodyCfg &cfg)
{
    Assembler a;

    for (unsigned i = 0; i < cfg.aluOps; ++i) {
        a.emit(addImm(static_cast<RegId>(20 + rnd(4)), reg::kCtx,
                      static_cast<std::int64_t>(rnd(4096))));
    }

    for (unsigned i = 0; i < cfg.ctxLoads; ++i) {
        RegId dst = static_cast<RegId>(24 + i % 4);
        double p = rndReal();
        if (p < params_.globalLoadProb) {
            // Global (unknown-provenance) state is typically checked
            // right away: the dependent, always-taken branch keeps
            // younger work control-dependent on this load, so
            // defenses that delay it pay real latency.
            a.emit(loadAbs(dst, bootGlobalVa(
                               static_cast<unsigned>(rnd(1024)))));
            unsigned chk = a.emit(branchImm(Cond::Ge, dst, 1, 0));
            a.emit(nop());
            a.patch(chk, a.here());
        } else if (p < params_.globalLoadProb +
                           params_.perCpuLoadProb) {
            a.emit(load(dst, reg::kPerCpu,
                        static_cast<std::int64_t>(rnd(1024) * 8)));
        } else if (p < params_.globalLoadProb +
                           params_.perCpuLoadProb + 0.22) {
            // Pointer chase through the per-task pointer table
            // (kernel lists/ops structures): the second load's
            // address depends on speculatively-loaded data.
            a.emit(load(dst, reg::kCtx,
                        0x2800 +
                            static_cast<std::int64_t>(rnd(255) * 8)));
            a.emit(load(static_cast<RegId>(20 + rnd(4)), dst, 0));
        } else {
            // Low 2 KB data region of the context block; the fd
            // table (0x800+) and guard flags (0x3000+) stay clean.
            a.emit(load(dst, reg::kCtx,
                        static_cast<std::int64_t>(rnd(255) * 8)));
        }
    }

    if (cfg.gadget)
        emitGadgetIr(a, *cfg.gadget);

    // The quintessential kernel shape: load a status/flag word and
    // branch on it. The dependent branch keeps younger instructions
    // speculative until the load returns — this chain is what makes
    // blanket load-fencing expensive. The error path fires when the
    // fault-injection knob (r14) matches this function's fault id,
    // giving fuzzers targeted, per-site fault injection (benign runs
    // carry r14 == 0, which matches no id).
    unsigned b_err = ~0u;
    if (!cfg.errorCalls.empty()) {
        std::int64_t fault_id = 1 + static_cast<std::int64_t>(
                                        rnd(2048));
        a.emit(load(29, reg::kCtx,
                    0x3000 +
                        static_cast<std::int64_t>(rnd(511) * 8)));
        a.emit(add(29, 29, reg::kFault));
        b_err = a.emit(branchImm(Cond::Eq, 29, fault_id, 0));
    }

    for (FuncId c : cfg.hotCalls) {
        a.emit(call(c));
        if (rnd(2))
            a.emit(add(28, 24, 25));
    }

    unsigned b_var = ~0u;
    if (!cfg.variantCalls.empty())
        b_var = a.emit(branchImm(Cond::Ne, reg::kVariant, 0, 0));

    std::uint32_t tail = a.here();
    for (unsigned i = 0; i < cfg.stores; ++i) {
        a.emit(store(reg::kCtx,
                     static_cast<std::int64_t>(rnd(255) * 8),
                     static_cast<RegId>(24 + rnd(4))));
    }
    if (cfg.setRet)
        a.emit(movImm(reg::kRet, 0));
    a.emit(ret());

    if (b_var != ~0u) {
        a.patch(b_var, a.here());
        for (FuncId c : cfg.variantCalls)
            a.emit(call(c));
        a.emit(jump(tail));
    }
    if (b_err != ~0u) {
        a.patch(b_err, a.here());
        for (FuncId c : cfg.errorCalls)
            a.emit(call(c));
        a.emit(movImm(reg::kRet,
                      static_cast<std::int64_t>(-22))); // -EINVAL
        a.emit(jump(tail));
    }
    return std::move(a.ops);
}

FuncId
KernelImage::genTree(const std::string &prefix, Subsystem ss,
                     unsigned depth, unsigned fanout,
                     double hot_fraction, FuncClass cls)
{
    FuncId root = newFunc(prefix, ss, cls);
    BodyCfg cfg;
    cfg.aluOps = 1 + static_cast<unsigned>(rnd(3));
    cfg.ctxLoads = 1 + static_cast<unsigned>(rnd(3));
    cfg.stores = static_cast<unsigned>(rnd(2));
    if (cls == FuncClass::Warm) {
        // Cold/error-path kernel functions (drivers, recovery code)
        // are substantially larger than hot fast paths; they never
        // execute on benign runs, but auditing them is what makes
        // unbounded gadget scanning slow.
        cfg.aluOps = cfg.aluOps * 2 + 4;
        cfg.ctxLoads = cfg.ctxLoads * 2 + 3;
        cfg.stores += 2;
    }

    if (depth > 0) {
        unsigned kids = 1 + static_cast<unsigned>(rnd(fanout));
        for (unsigned k = 0; k < kids; ++k) {
            bool hot_edge =
                cls == FuncClass::Hot && rndReal() < hot_fraction;
            FuncClass child_cls =
                cls == FuncClass::Cold
                    ? FuncClass::Cold
                    : (hot_edge ? FuncClass::Hot : FuncClass::Warm);
            FuncId child =
                genTree(prefix + "." + std::to_string(k), ss,
                        depth - 1, fanout, hot_fraction, child_cls);
            if (cls == FuncClass::Cold || hot_edge) {
                // Cold trees keep plain direct edges; hot edges are
                // executed.
                cfg.hotCalls.push_back(child);
            } else if (rnd(2)) {
                cfg.variantCalls.push_back(child);
            } else {
                cfg.errorCalls.push_back(child);
            }
        }
    }

    // Shared-infrastructure sprinkles.
    if (!libPool_.empty() && rndReal() < 0.45) {
        cfg.hotCalls.push_back(libPool_[rnd(libPool_.size())]);
    }
    if (!errorPool_.empty() && rndReal() < 0.35) {
        cfg.errorCalls.push_back(errorPool_[rnd(errorPool_.size())]);
    }

    prog_.func(root).body = genBody(cfg);
    return root;
}

void
KernelImage::buildPools()
{
    // Shared leaf helpers (locks, lists, string ops, rcu, ...).
    for (unsigned i = 0; i < 150; ++i) {
        FuncId f = newFunc("lib_" + std::to_string(i), Subsystem::Lib,
                           i < 50 ? FuncClass::Hot : FuncClass::Warm);
        BodyCfg cfg;
        cfg.aluOps = 1 + static_cast<unsigned>(rnd(2));
        cfg.ctxLoads = static_cast<unsigned>(rnd(3));
        cfg.stores = static_cast<unsigned>(rnd(2));
        prog_.func(f).body = genBody(cfg);
        libPool_.push_back(f);
    }

    // Error/cleanup handlers (called only from r14-gated paths).
    for (unsigned i = 0; i < 40; ++i) {
        FuncId f = newFunc("err_" + std::to_string(i),
                           Subsystem::Core, FuncClass::Warm);
        BodyCfg cfg;
        cfg.aluOps = 1;
        cfg.ctxLoads = 1;
        if (rnd(2))
            cfg.hotCalls.push_back(libPool_[rnd(libPool_.size())]);
        prog_.func(f).body = genBody(cfg);
        errorPool_.push_back(f);
    }
}

void
KernelImage::buildCore(Subsystem ss, unsigned size)
{
    auto ss_name = [](Subsystem s) -> std::string {
        switch (s) {
          case Subsystem::Security: return "sec";
          case Subsystem::Sched: return "sched";
          case Subsystem::Mm: return "mm";
          case Subsystem::Fs: return "fs";
          case Subsystem::Net: return "net";
          case Subsystem::Time: return "time";
          case Subsystem::Ipc: return "ipc";
          default: return "core";
        }
    };
    std::string base = ss_name(ss);

    std::size_t before = info_.size();
    unsigned n_anchors = std::max(2u, size / 30);
    std::vector<FuncId> anchors;
    std::vector<BodyCfg> acfg(n_anchors);
    for (unsigned i = 0; i < n_anchors; ++i) {
        anchors.push_back(newFunc(base + "_anchor_" +
                                      std::to_string(i),
                                  ss, FuncClass::Hot));
    }

    // Every anchor gets hot subtrees that actually execute.
    for (unsigned i = 0; i < n_anchors; ++i) {
        unsigned kids = 2 + static_cast<unsigned>(rnd(2));
        for (unsigned k = 0; k < kids; ++k) {
            FuncId r = genTree(base + "_a" + std::to_string(i) + "t" +
                                   std::to_string(k),
                               ss, 2, 2, 0.85, FuncClass::Hot);
            acfg[i].hotCalls.push_back(r);
        }
    }

    // Filler trees: statically reachable via variant edges only.
    unsigned guard = 0;
    while (info_.size() - before < size && guard++ < 10000) {
        FuncId r = genTree(base + "_f" + std::to_string(guard), ss,
                           1 + static_cast<unsigned>(rnd(2)), 2, 0.5,
                           FuncClass::Warm);
        acfg[rnd(n_anchors)].variantCalls.push_back(r);
    }

    // Cross-links between anchors keep the core connected in the
    // static call graph without executing. Links only point forward
    // so the call graph stays acyclic (fuzzers traverse variant
    // paths exhaustively).
    for (unsigned i = 0; i < n_anchors; ++i) {
        if (i + 1 < n_anchors) {
            acfg[i].variantCalls.push_back(
                anchors[i + 1 + rnd(n_anchors - i - 1)]);
        }
        acfg[i].errorCalls.push_back(
            errorPool_[rnd(errorPool_.size())]);
        prog_.func(anchors[i]).body = genBody(acfg[i]);
    }

    unsigned idx = static_cast<unsigned>(ss);
    coreAnchors_[idx] = anchors;
    for (std::size_t f = before; f < info_.size(); ++f)
        coreFuncs_[idx].push_back(static_cast<FuncId>(f));
}

void
KernelImage::buildCores()
{
    buildCore(Subsystem::Security, 90);
    buildCore(Subsystem::Sched, 150);
    buildCore(Subsystem::Mm, 220);
    buildCore(Subsystem::Fs, 280);
    buildCore(Subsystem::Net, 300);
    buildCore(Subsystem::Time, 60);
    buildCore(Subsystem::Ipc, 60);
}

std::vector<FuncId>
KernelImage::pickAnchors(Subsystem ss, unsigned n)
{
    const auto &pool = coreAnchors_[static_cast<unsigned>(ss)];
    std::vector<FuncId> out;
    for (unsigned i = 0; i < n && i < pool.size(); ++i)
        out.push_back(pool[rnd(pool.size())]);
    return out;
}

void
KernelImage::buildWorkers()
{
    // poll/select scan: iterate r12 descriptors in the fd table.
    pollScanWorker_ =
        newFunc("poll_scan_worker", Subsystem::Fs, FuncClass::Hot);
    {
        Assembler a;
        a.emit(movImm(20, 0));
        std::uint32_t head = a.here();
        unsigned b = a.emit(branch(Cond::Ge, 20, reg::kArg1, 0));
        // pollfd entry in the fd table (L1-resident)...
        a.emit(shlImm(21, 20, 3));
        a.emit(andImm(21, 21, 0x7f8));
        a.emit(add(22, reg::kCtx, 21));
        a.emit(load(23, 22, 0x800));
        // ...and the struct file it references: slab objects whose
        // lines span the whole L1D, so the scan continuously misses
        // (what Delay-on-Miss pays for).
        a.emit(shlImm(27, 20, 7));
        a.emit(shlImm(26, 20, 6));
        a.emit(add(27, 27, 26));
        a.emit(andImm(27, 27, 0x7fc0));
        a.emit(add(28, reg::kArg2, 27));
        a.emit(load(29, 28, 16));
        a.emit(add(23, 23, 29));
        // Every 8th descriptor is "deep-processed": follow its ops
        // pointer — a dependent, tainted-address access whose result
        // feeds the readiness decision (the part STT pays for).
        a.emit(andImm(25, 20, 7));
        unsigned skip = a.emit(branchImm(Cond::Ne, 25, 0, 0));
        a.emit(load(26, 28, 0));
        a.emit(load(30, 26, 8));
        a.emit(add(23, 23, 30));
        a.patch(skip, a.here());
        // Readiness check: control-dependent on everything above.
        unsigned rdy = a.emit(branchImm(Cond::Ne, 23, 0, 0));
        a.emit(andImm(24, 23, 0xff));
        a.patch(rdy, a.here());
        a.emit(addImm(20, 20, 1));
        a.emit(jump(head));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(pollScanWorker_).body = std::move(a.ops);
    }

    // read/write/send/recv copy: r12 cache lines from [r13].
    copyWorker_ =
        newFunc("uaccess_copy_worker", Subsystem::Lib, FuncClass::Hot);
    {
        Assembler a;
        a.emit(movImm(20, 0));
        std::uint32_t head = a.here();
        unsigned b = a.emit(branch(Cond::Ge, 20, reg::kArg1, 0));
        a.emit(shlImm(21, 20, 6));
        a.emit(add(22, reg::kArg2, 21));
        a.emit(load(23, 22, 0));
        // Fault check on every 4th copied word.
        a.emit(andImm(26, 20, 3));
        unsigned skip = a.emit(branchImm(Cond::Ne, 26, 0, 0));
        unsigned chk = a.emit(branchImm(Cond::Lt, 23,
                                        0x8000'0000'0000'0000ll, 0));
        a.emit(nop());
        a.patch(chk, a.here());
        a.patch(skip, a.here());
        a.emit(andImm(24, 21, 0xfc0));
        a.emit(add(25, reg::kCtx, 24));
        a.emit(store(25, 0x1000, 23));
        a.emit(addImm(20, 20, 1));
        a.emit(jump(head));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(copyWorker_).body = std::move(a.ops);
    }

    // mmap/page-fault populate: touch r12 fresh pages at [r13].
    populateWorker_ =
        newFunc("mm_populate_worker", Subsystem::Mm, FuncClass::Hot);
    {
        Assembler a;
        // Zero/initialize 8 lines per fresh page; each touch is
        // checked (PTE/validity), and the first access per page is
        // DSV-cold — where Perspective's allocation-path overhead
        // comes from.
        a.emit(movImm(20, 0));
        a.emit(shlImm(26, reg::kArg1, 3));
        std::uint32_t head = a.here();
        unsigned b = a.emit(branch(Cond::Ge, 20, 26, 0));
        a.emit(shlImm(21, 20, 9));
        a.emit(add(22, reg::kArg2, 21));
        a.emit(store(22, 0, 20));
        // PTE/validity check once per page (first line only): the
        // check load hits the fresh — DSV-cold — page.
        a.emit(andImm(24, 20, 7));
        unsigned skip = a.emit(branchImm(Cond::Ne, 24, 0, 0));
        a.emit(load(23, 22, 8));
        unsigned chk = a.emit(branchImm(Cond::Ne, 23, 0, 0));
        a.emit(nop());
        a.patch(chk, a.here());
        a.patch(skip, a.here());
        a.emit(addImm(20, 20, 1));
        a.emit(jump(head));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(populateWorker_).body = std::move(a.ops);
    }

    // big read/write copy: page-cache walk at 512-byte stride over a
    // 128 KB window — large enough to defeat the L1D, so miss-delay
    // schemes (DOM) and blanket fencing pay the DRAM/L2 latency.
    bigCopyWorker_ = newFunc("pagecache_copy_worker", Subsystem::Fs,
                             FuncClass::Hot);
    {
        Assembler a;
        a.emit(movImm(20, 0));
        std::uint32_t head = a.here();
        unsigned b = a.emit(branch(Cond::Ge, 20, reg::kArg1, 0));
        a.emit(shlImm(21, 20, 9));
        a.emit(andImm(21, 21, 0x1'fe00));
        a.emit(add(22, reg::kArg2, 21));
        a.emit(load(23, 22, 0));
        unsigned chk = a.emit(branchImm(Cond::Lt, 23,
                                        0x8000'0000'0000'0000ll, 0));
        a.emit(nop());
        a.patch(chk, a.here());
        a.emit(andImm(24, 21, 0xfc0));
        a.emit(add(25, reg::kCtx, 24));
        a.emit(store(25, 0x1000, 23));
        a.emit(addImm(20, 20, 1));
        a.emit(jump(head));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(bigCopyWorker_).body = std::move(a.ops);
    }

    // fork copy: 8 lines per page, from [r11] (parent) to [r13]
    // (child's fresh pages — cold in every DSV structure).
    forkCopyWorker_ =
        newFunc("mm_fork_copy_worker", Subsystem::Mm, FuncClass::Hot);
    {
        Assembler a;
        a.emit(movImm(20, 0));
        a.emit(shlImm(26, reg::kArg1, 3));
        std::uint32_t head = a.here();
        unsigned b = a.emit(branch(Cond::Ge, 20, 26, 0));
        a.emit(shlImm(21, 20, 9));
        a.emit(add(22, reg::kArg0, 21));
        a.emit(load(23, 22, 0));
        // Reverse-map/PTE touch on the *child's* fresh page — cold
        // in every DSVMT structure.
        a.emit(add(24, reg::kArg2, 21));
        a.emit(load(25, 24, 8));
        // COW/refcount check depends on both source word and the
        // child page state.
        a.emit(add(23, 23, 25));
        unsigned chk = a.emit(branchImm(Cond::Ne, 23, 0, 0));
        a.emit(nop());
        a.patch(chk, a.here());
        a.emit(store(24, 0, 23));
        a.emit(addImm(20, 20, 1));
        a.emit(jump(head));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(forkCopyWorker_).body = std::move(a.ops);
    }

    // Recursive path walk (open/stat): r13 levels deep. Depths beyond
    // the RSB capacity underflow it — the Retbleed surface.
    pathWalk_ = newFunc("fs_path_walk_recursive", Subsystem::Fs,
                        FuncClass::Hot);
    {
        Assembler a;
        unsigned b = a.emit(branchImm(Cond::Eq, reg::kArg2, 0, 0));
        a.emit(addImm(reg::kArg2, reg::kArg2, -1));
        a.emit(load(23, reg::kCtx, 0x1200));
        a.emit(call(pathWalk_));
        a.patch(b, a.here());
        a.emit(ret());
        prog_.func(pathWalk_).body = std::move(a.ops);
    }
}

void
KernelImage::buildIndirectImpls()
{
    // File-operation implementations for four filesystem types; only
    // type 0 is "mounted" (executed). None has a direct caller: they
    // are exactly the nodes static ISV analysis cannot reach.
    for (unsigned t = 0; t < 4; ++t) {
        for (unsigned slot = 0; slot < 6; ++slot) {
            FuncClass cls = t == 0 ? FuncClass::Hot : FuncClass::Cold;
            Subsystem ss = t == 0 ? Subsystem::Fs : Subsystem::Driver;
            FuncId root = genTree("fsimpl_t" + std::to_string(t) +
                                      "_s" + std::to_string(slot),
                                  ss, 1 + rnd(2) % 2, 2, 0.7, cls);
            fsImpls_[t].push_back(root);
        }
    }
    for (unsigned p = 0; p < 3; ++p) {
        for (unsigned slot = 0; slot < 5; ++slot) {
            FuncClass cls = p == 0 ? FuncClass::Hot : FuncClass::Cold;
            Subsystem ss = p == 0 ? Subsystem::Net : Subsystem::Misc;
            FuncId root = genTree("protoimpl_p" + std::to_string(p) +
                                      "_s" + std::to_string(slot),
                                  ss, 1, 2, 0.7, cls);
            netImpls_[p].push_back(root);
        }
    }

    // Dispatch stubs: load the ops pointer from rodata and call it.
    static const char *fs_ops[6] = {"read", "write", "open",
                                    "stat", "poll", "ioctl"};
    for (unsigned slot = 0; slot < 6; ++slot) {
        FuncId f = newFunc(std::string("vfs_dispatch_") +
                               fs_ops[slot],
                           Subsystem::Fs, FuncClass::Hot);
        Assembler a;
        a.emit(loadAbs(30, fopsSlotVa(0, slot)));
        vfsDispatchIcallIdx_[slot] = a.emit(indirectCall(30));
        a.emit(ret());
        prog_.func(f).body = std::move(a.ops);
        info_[f].indirectTargets.push_back(fsImpls_[0][slot]);
        vfsDispatch_[slot] = f;
    }
    static const char *net_ops[5] = {"send", "recv", "connect",
                                     "accept", "sockopt"};
    for (unsigned slot = 0; slot < 5; ++slot) {
        FuncId f = newFunc(std::string("proto_dispatch_") +
                               net_ops[slot],
                           Subsystem::Net, FuncClass::Hot);
        Assembler a;
        a.emit(loadAbs(30, protoOpsSlotVa(0, slot)));
        a.emit(indirectCall(30));
        a.emit(ret());
        prog_.func(f).body = std::move(a.ops);
        info_[f].indirectTargets.push_back(netImpls_[0][slot]);
        netDispatch_[slot] = f;
    }
}

void
KernelImage::buildEntryExit()
{
    // e0 -> {e1 (seccomp), e2 (ctx tracking), e3 (audit, variant)}.
    FuncId e3 = newFunc("entry_audit", Subsystem::Entry,
                        FuncClass::Warm);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 2;
        cfg.hotCalls.push_back(libPool_[rnd(libPool_.size())]);
        prog_.func(e3).body = genBody(cfg);
    }
    FuncId e1 = newFunc("entry_seccomp", Subsystem::Entry,
                        FuncClass::Hot);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 2;
        cfg.hotCalls = pickAnchors(Subsystem::Security, 1);
        cfg.errorCalls.push_back(errorPool_[rnd(errorPool_.size())]);
        prog_.func(e1).body = genBody(cfg);
    }
    FuncId e2 = newFunc("entry_ctx_track", Subsystem::Entry,
                        FuncClass::Hot);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 1;
        cfg.hotCalls.push_back(libPool_[rnd(libPool_.size())]);
        prog_.func(e2).body = genBody(cfg);
    }
    FuncId e0 = newFunc("entry_common", Subsystem::Entry,
                        FuncClass::Hot);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 2;
        cfg.hotCalls = {e1, e2};
        cfg.variantCalls = {e3};
        prog_.func(e0).body = genBody(cfg);
    }
    entryChain_ = {e0, e1, e2, e3};

    FuncId x1 = newFunc("exit_signal_check", Subsystem::Entry,
                        FuncClass::Hot);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 1;
        prog_.func(x1).body = genBody(cfg);
    }
    FuncId x2 = newFunc("exit_resched_check", Subsystem::Entry,
                        FuncClass::Warm);
    {
        BodyCfg cfg;
        cfg.hotCalls = pickAnchors(Subsystem::Sched, 1);
        prog_.func(x2).body = genBody(cfg);
    }
    FuncId x0 = newFunc("exit_common", Subsystem::Entry,
                        FuncClass::Hot);
    {
        BodyCfg cfg;
        cfg.ctxLoads = 1;
        cfg.hotCalls = {x1};
        cfg.variantCalls = {x2};
        prog_.func(x0).body = genBody(cfg);
    }
    exitChain_ = {x0, x1, x2};
}

void
KernelImage::buildSyscallTrees()
{
    struct SysCfg
    {
        Subsystem ss = Subsystem::Core;
        unsigned anchors = 1;
        unsigned tree_depth = 2;
        FuncId worker = kNoFunc;
        FuncId dispatch = kNoFunc;
        bool path_walk = false;
        bool gadget = false; ///< concrete PoC gadget on the hot path
    };

    auto cfg_for = [&](Sys s) -> SysCfg {
        SysCfg c;
        c.anchors = 2;
        switch (s) {
          case Sys::Getpid:
          case Sys::Getuid:
          case Sys::Uname:
            c.ss = Subsystem::Sched;
            c.anchors = 0;
            c.tree_depth = 1;
            break;
          case Sys::GetTimeOfDay:
          case Sys::Nanosleep:
            c.ss = Subsystem::Time;
            break;
          case Sys::SchedYield:
          case Sys::Futex:
          case Sys::Wait:
          case Sys::Exit:
          case Sys::Kill:
          case Sys::Sigaction:
          case Sys::ThreadCreate:
            c.ss = Subsystem::Sched;
            break;
          case Sys::Ptrace:
            c.ss = Subsystem::Sched;
            c.gadget = true;
            break;
          case Sys::Fork:
          case Sys::BigFork:
            c.ss = Subsystem::Mm;
            c.anchors = 2;
            c.worker = forkCopyWorker_;
            break;
          case Sys::Mmap:
          case Sys::Brk:
          case Sys::PageFault:
            c.ss = Subsystem::Mm;
            c.worker = populateWorker_;
            break;
          case Sys::Munmap:
          case Sys::Mprotect:
            c.ss = Subsystem::Mm;
            break;
          case Sys::Open:
          case Sys::Stat:
            c.ss = Subsystem::Fs;
            c.path_walk = true;
            c.dispatch = vfsDispatch_[2]; // open slot
            break;
          case Sys::Read:
            c.ss = Subsystem::Fs;
            c.worker = copyWorker_;
            c.dispatch = vfsDispatch_[0];
            break;
          case Sys::BigRead:
            c.ss = Subsystem::Fs;
            c.worker = bigCopyWorker_;
            c.dispatch = vfsDispatch_[0];
            break;
          case Sys::Write:
          case Sys::Fsync:
            c.ss = Subsystem::Fs;
            c.worker = copyWorker_;
            c.dispatch = vfsDispatch_[1];
            break;
          case Sys::BigWrite:
            c.ss = Subsystem::Fs;
            c.worker = bigCopyWorker_;
            c.dispatch = vfsDispatch_[1];
            break;
          case Sys::Close:
          case Sys::Fstat:
          case Sys::Lseek:
          case Sys::Dup:
          case Sys::Readdir:
          case Sys::Pipe:
            c.ss = Subsystem::Fs;
            break;
          case Sys::Ioctl:
            c.ss = Subsystem::Fs;
            c.dispatch = vfsDispatch_[5];
            break;
          case Sys::Select:
          case Sys::Poll:
          case Sys::EpollWait:
            c.ss = Subsystem::Fs;
            c.worker = pollScanWorker_;
            c.dispatch = vfsDispatch_[4];
            break;
          case Sys::EpollCreate:
          case Sys::EpollCtl:
            c.ss = Subsystem::Fs;
            break;
          case Sys::Send:
          case Sys::SendTo:
            c.ss = Subsystem::Net;
            c.worker = copyWorker_;
            c.dispatch = netDispatch_[0];
            break;
          case Sys::Recv:
          case Sys::RecvFrom:
            c.ss = Subsystem::Net;
            c.worker = copyWorker_;
            c.dispatch = netDispatch_[1];
            break;
          case Sys::Socket:
          case Sys::Bind:
          case Sys::Listen:
          case Sys::Shutdown:
          case Sys::SetSockOpt:
            c.ss = Subsystem::Net;
            break;
          case Sys::Accept:
            c.ss = Subsystem::Net;
            c.dispatch = netDispatch_[3];
            break;
          case Sys::Connect:
            c.ss = Subsystem::Net;
            c.dispatch = netDispatch_[2];
            break;
          case Sys::Bpf:
            c.ss = Subsystem::Security;
            c.gadget = true;
            break;
          default:
            break;
        }
        return c;
    };

    for (unsigned i = 0; i < kNumSyscalls; ++i) {
        Sys s = static_cast<Sys>(i);
        SysCfg sc = cfg_for(s);
        std::string name{sysName(s)};

        FuncId entry = newFunc("sys_" + name + "_entry",
                               Subsystem::Entry, FuncClass::Hot);
        BodyCfg cfg;
        cfg.setRet = true;
        cfg.ctxLoads = 1;
        cfg.hotCalls.push_back(entryChain_[0]);
        for (FuncId a : pickAnchors(sc.ss, sc.anchors))
            cfg.hotCalls.push_back(a);

        // Private handler tree.
        unsigned n_trees = 3;
        for (unsigned t = 0; t < n_trees; ++t) {
            FuncId r = genTree("sys_" + name + "_h" +
                                   std::to_string(t),
                               sc.ss, sc.tree_depth + 1, 3, 0.7,
                               FuncClass::Hot);
            cfg.hotCalls.push_back(r);
        }
        // Warm (static-only) side tree.
        if (rnd(2)) {
            cfg.variantCalls.push_back(
                genTree("sys_" + name + "_w", sc.ss, 1, 2, 0.5,
                        FuncClass::Warm));
        }
        cfg.errorCalls.push_back(errorPool_[rnd(errorPool_.size())]);

        if (sc.gadget) {
            // Concrete PoC gadget function on the hot path.
            FuncId g = newFunc("sys_" + name + "_gadget",
                               sc.ss, FuncClass::Hot);
            BodyCfg gcfg;
            gcfg.ctxLoads = 1;
            gcfg.gadget = GadgetKind::Cache;
            prog_.func(g).body = genBody(gcfg);
            info_[g].gadgets.push_back(GadgetKind::Cache);
            ++totalGadgets_;
            cfg.hotCalls.push_back(g);
            if (s == Sys::Ptrace)
                pocPtraceGadget_ = g;
            else if (s == Sys::Bpf)
                pocBpfGadget_ = g;
        }
        if (sc.path_walk)
            cfg.hotCalls.push_back(pathWalk_);
        if (sc.dispatch != kNoFunc)
            cfg.hotCalls.push_back(sc.dispatch);
        if (sc.worker != kNoFunc)
            cfg.hotCalls.push_back(sc.worker);

        cfg.hotCalls.push_back(exitChain_[0]);
        prog_.func(entry).body = genBody(cfg);
        entries_[i] = entry;
    }

    // The ioctl dispatch target (fs type 0, slot 5) doubles as the
    // Xilinx-USB-style driver gadget (CVE-2022-27223 analogue): a
    // Spectre v1 gadget with an attacker-controlled index, reachable
    // from the ioctl hot path. Plant it on that impl root.
    pocDriverGadget_ = fsImpls_[0][5];
    plantGadgetIr(pocDriverGadget_, GadgetKind::Cache);
    info_[pocDriverGadget_].gadgets.push_back(GadgetKind::Cache);
    ++totalGadgets_;
}

void
KernelImage::buildColdBulk()
{
    static const Subsystem kColdSs[5] = {
        Subsystem::Driver, Subsystem::Crypto, Subsystem::Sound,
        Subsystem::Arch, Subsystem::Misc};
    unsigned module = 0;
    while (info_.size() < params_.targetFunctions) {
        Subsystem ss = kColdSs[rnd(5)];
        genTree("mod" + std::to_string(module++), ss, 3, 3, 0.0,
                FuncClass::Cold);
    }

    // A cold driver function used as the hijack target in passive
    // attack PoCs: it loads the *current* task's secret and transmits
    // it — harmless architecturally (never called), lethal when the
    // victim's speculative control flow is steered into it.
    pocHijackGadget_ = newFunc("usb_audio_probe_gadget",
                               Subsystem::Driver, FuncClass::Cold);
    {
        Assembler a;
        a.emit(load(24, reg::kCtx, kSecretCtxOff));
        a.emit(shlImm(25, 24, 12));
        a.emit(addImm(26, 25,
                      static_cast<std::int64_t>(kSharedProbeBase)));
        a.emit(load(27, 26, 0));
        a.emit(ret());
        prog_.func(pocHijackGadget_).body = std::move(a.ops);
    }
    info_[pocHijackGadget_].gadgets.push_back(GadgetKind::Cache);
    ++totalGadgets_;
}

void
KernelImage::plantGadgetIr(FuncId f, GadgetKind kind)
{
    // Prepend the gadget snippet; all intra-function branch targets
    // shift by the snippet length.
    Assembler a;
    emitGadgetIr(a, kind);
    std::uint32_t shift = a.here();
    auto &body = prog_.func(f).body;
    for (auto &op : body) {
        if (op.op == Op::Branch || op.op == Op::Jump)
            op.target += shift;
    }
    // The snippet's own skip target is relative to position 0 and
    // stays valid after prepending.
    body.insert(body.begin(), a.ops.begin(), a.ops.end());
}

void
KernelImage::plantGadgets()
{
    struct Quota
    {
        GadgetKind kind;
        unsigned total;
        double hot_frac;
        double warm_frac;
    };
    const Quota quotas[3] = {
        {GadgetKind::Mds, params_.mdsGadgets, 0.08, 0.06},
        {GadgetKind::Port, params_.portGadgets, 0.08, 0.06},
        {GadgetKind::Cache, params_.cacheGadgets, 0.08, 0.12},
    };

    auto plant = [&](const std::vector<FuncId> &pool, unsigned n,
                     GadgetKind kind, bool with_ir) {
        for (unsigned i = 0; i < n && !pool.empty(); ++i) {
            FuncId f = pool[rnd(pool.size())];
            if (with_ir)
                plantGadgetIr(f, kind);
            info_[f].gadgets.push_back(kind);
            ++totalGadgets_;
        }
    };

    // Hot (traced, hence in-dynamic-ISV) gadgets live in the handler
    // trees of maintenance syscalls that processes touch at startup
    // but not in their request loops — matching the observation that
    // fuzzer-reachable gadgets sit in rarely-executed code. Excluding
    // them (ISV++) therefore barely perturbs steady-state execution.
    static const char *kStartupSysPrefixes[] = {
        "sys_brk_",      "sys_mprotect_", "sys_sigaction_",
        "sys_uname_",    "sys_getuid_",   "sys_gettimeofday_",
        "sys_nanosleep_","sys_futex_",    "sys_fstat_",
        "sys_lseek_",    "sys_dup_",      "sys_readdir_",
        "sys_pipe_",     "sys_kill_",
    };
    std::vector<FuncId> hot_startup;
    for (FuncId f : hotTreeFuncs_) {
        const std::string &n = prog_.func(f).name;
        for (const char *p : kStartupSysPrefixes) {
            if (n.rfind(p, 0) == 0) {
                hot_startup.push_back(f);
                break;
            }
        }
    }
    if (hot_startup.empty())
        hot_startup = hotTreeFuncs_; // defensive fallback

    for (const Quota &q : quotas) {
        unsigned hot = static_cast<unsigned>(q.total * q.hot_frac);
        unsigned warm = static_cast<unsigned>(q.total * q.warm_frac);
        unsigned cold = q.total - hot - warm;
        // Hot gadgets get real IR (they can execute); warm/cold
        // gadgets are metadata-only — they never run architecturally
        // and PoCs use dedicated concrete gadgets.
        plant(hot_startup, hot, q.kind, true);
        plant(warmTreeFuncs_, warm, q.kind, false);
        plant(coldFuncs_, cold, q.kind, false);
    }
}

void
KernelImage::finalizeEdges()
{
    // Derive the static call graph from the bodies, exactly as a
    // disassembler would.
    for (std::size_t f = 0; f < info_.size(); ++f) {
        auto &callees = info_[f].callees;
        for (const MicroOp &op : prog_.func(
                 static_cast<FuncId>(f)).body) {
            if (op.op == Op::Call)
                callees.push_back(op.callee);
        }
    }
}

void
KernelImage::writeRodataTables()
{
    for (unsigned t = 0; t < 4; ++t) {
        for (unsigned slot = 0; slot < 6; ++slot)
            mem_.write(fopsSlotVa(t, slot), fsImpls_[t][slot]);
    }
    for (unsigned p = 0; p < 3; ++p) {
        for (unsigned slot = 0; slot < 5; ++slot)
            mem_.write(protoOpsSlotVa(p, slot), netImpls_[p][slot]);
    }
}

std::vector<FuncId>
KernelImage::functionsWithGadgets() const
{
    std::vector<FuncId> out;
    for (std::size_t f = 0; f < info_.size(); ++f) {
        if (!info_[f].gadgets.empty())
            out.push_back(static_cast<FuncId>(f));
    }
    return out;
}

} // namespace perspective::kernel
