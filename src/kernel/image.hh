/**
 * @file
 * KernelImage: the IR half of the miniature kernel.
 *
 * The image synthesizes a Linux-scale kernel text — on the order of
 * 28 000 functions (Section 8.2: "the gadget search space is reduced
 * from 28K functions in Linux down to only 1.4K") — with a realistic
 * structure:
 *
 *  - a common syscall entry/exit chain (context tracking, seccomp,
 *    audit) shared by every system call;
 *  - per-subsystem cores (mm, fs, net, sched, security, time, ipc)
 *    cross-linked so that static reachability from any anchor pulls in
 *    the subsystem, while only the hot paths execute;
 *  - per-syscall private handler trees, including loop/copy workers
 *    that generate the memory traffic each syscall class is known for;
 *  - function-pointer dispatch (file ops, proto ops) whose targets are
 *    invisible to static call-graph analysis but observed by tracing —
 *    the static-vs-dynamic ISV gap of Section 5.3;
 *  - a large cold bulk of driver/crypto/sound modules where most
 *    transient-execution gadgets hide (Section 4.2: "deeply buried
 *    within infrequently used modules");
 *  - 1 533 planted transient-execution gadgets (805 MDS / 509 port /
 *    219 cache, the Kasper census) plus concrete, executable PoC
 *    gadgets for the CVE catalog of Table 4.1.
 *
 * Bodies follow fixed register conventions (kernel/process.hh): r10 is
 * the per-task context base, r11-r13 are syscall args, r14 is the
 * error-injection knob (always 0 in benign runs; fuzzers flip it to
 * reach error paths), r15 selects path variants, r16 is the per-cpu
 * base.
 */

#ifndef PERSPECTIVE_KERNEL_IMAGE_HH
#define PERSPECTIVE_KERNEL_IMAGE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/memory.hh"
#include "sim/program.hh"
#include "syscalls.hh"
#include "types.hh"

namespace perspective::kernel
{

/** Kernel subsystems (used for placement and reporting). */
enum class Subsystem : std::uint8_t
{
    Entry, Core, Lib, Security, Sched, Mm, Fs, Net, Time, Ipc,
    Driver, Crypto, Sound, Arch, Misc,
};

/** Covert-channel class of a planted gadget (the Kasper taxonomy). */
enum class GadgetKind : std::uint8_t
{
    Mds,   ///< microarchitectural-buffer channel
    Port,  ///< execution-port contention channel
    Cache, ///< cache-based channel
};

/** Per-function metadata kept alongside the Program. */
struct KFuncInfo
{
    Subsystem subsys = Subsystem::Misc;

    /** Direct call edges (derived from the body, like a disassembler
     * would). */
    std::vector<sim::FuncId> callees;

    /** Ground-truth runtime targets of indirect call sites in this
     * function (not visible to static analysis). */
    std::vector<sim::FuncId> indirectTargets;

    /** Gadgets planted in this function. */
    std::vector<GadgetKind> gadgets;
};

/** Generator configuration. */
struct ImageParams
{
    std::uint64_t seed = 42;
    /** Total kernel functions to synthesize (cold bulk pads to it). */
    unsigned targetFunctions = 28000;
    /** Kasper's gadget census. */
    unsigned mdsGadgets = 805;
    unsigned portGadgets = 509;
    unsigned cacheGadgets = 219;
    /** Probability that a generated load targets an unknown-domain
     * global / per-cpu variable (drives the DSV fence rate). */
    double globalLoadProb = 0.05;
    double perCpuLoadProb = 0.03;
};

/** Shared probe region (user VA) monitored by Flush+Reload PoCs. */
inline constexpr Addr kSharedProbeBase = 0x2000'0000;

/** Rodata frames holding fops/proto-ops tables (replicated domain). */
inline constexpr Pfn kRodataFirstPfn = 72;

/**
 * Builder and owner of the kernel Program plus its metadata. Workload
 * drivers append their user functions to program() afterwards; call
 * program().layout() once everything is in place.
 */
class KernelImage
{
  public:
    explicit KernelImage(sim::Memory &mem, ImageParams params = {});

    sim::Program &program() { return prog_; }
    const sim::Program &program() const { return prog_; }

    /** IR entry function of syscall @p s. */
    sim::FuncId entryOf(Sys s) const
    {
        return entries_[static_cast<unsigned>(s)];
    }

    const KFuncInfo &
    info(sim::FuncId f) const
    {
        return info_[f];
    }

    /** Number of kernel functions (== Linux's ~28K scale). */
    std::size_t numKernelFunctions() const { return info_.size(); }

    /** All functions containing at least one gadget. */
    std::vector<sim::FuncId> functionsWithGadgets() const;
    unsigned totalGadgets() const { return totalGadgets_; }

    /** @name Concrete PoC handles (Table 4.1 CVE analogues)
     * @{ */
    /** Spectre-v1 gadget in the USB driver, reachable from ioctl
     * (CVE-2022-27223 analogue). */
    sim::FuncId pocDriverGadget() const { return pocDriverGadget_; }
    /** Gadget on the ptrace path (CVE-2019-15902 analogue). */
    sim::FuncId pocPtraceGadget() const { return pocPtraceGadget_; }
    /** Verifier-injected gadget on the bpf path (eBPF CVE rows). */
    sim::FuncId pocBpfGadget() const { return pocBpfGadget_; }
    /** Cold gadget used as a speculative-control-flow hijack target
     * (Spectre v2 / Retbleed passive attacks). */
    sim::FuncId pocHijackGadget() const { return pocHijackGadget_; }
    /** Deep-recursion path walker that underflows the RSB. */
    sim::FuncId pathWalkRecursive() const { return pathWalk_; }
    /** Indirect-dispatch site (vfs read) whose BTB entry v2 poisons:
     * (function, micro-op index of the indirect call). */
    std::pair<sim::FuncId, std::uint32_t> vfsReadDispatch() const
    {
        return {vfsDispatch_[0], vfsDispatchIcallIdx_[0]};
    }
    /** @} */

    /** Offset of a task's secret within its context block (PoCs). */
    static constexpr std::int64_t kSecretCtxOff = 0x1888;
    /** Offset of the gadget-indexed table within the context block. */
    static constexpr std::int64_t kGadgetTableOff = 0x40;
    /** VA of the global holding the PoC gadget's bound (value 16). */
    Addr pocBoundGlobalVa() const { return pocBoundVa_; }

    const ImageParams &params() const { return params_; }

  public:
    /** Execution class a generated function falls into. */
    enum class FuncClass : std::uint8_t
    {
        Hot,  ///< on a benign hot path (ends up in dynamic ISVs)
        Warm, ///< statically reachable, dynamically dormant
        Cold, ///< unreachable from any modeled syscall
    };

    /** Class assigned to @p f during generation (ground truth used by
     * calibration tests; the ISV generators never look at it). */
    FuncClass classOf(sim::FuncId f) const { return class_[f]; }

  private:
    struct Assembler;
    struct BodyCfg;

    sim::FuncId newFunc(std::string name, Subsystem ss,
                        FuncClass cls);
    std::vector<sim::MicroOp> genBody(const BodyCfg &cfg);
    sim::FuncId genTree(const std::string &prefix, Subsystem ss,
                        unsigned depth, unsigned fanout,
                        double hot_fraction, FuncClass cls);
    void emitGadgetIr(Assembler &a, GadgetKind kind);
    void plantGadgetIr(sim::FuncId f, GadgetKind kind);
    std::vector<sim::FuncId> pickAnchors(Subsystem ss, unsigned n);
    void buildPools();
    void buildEntryExit();
    void buildCores();
    void buildCore(Subsystem ss, unsigned size);
    void buildIndirectImpls();
    void buildWorkers();
    void buildSyscallTrees();
    void buildColdBulk();
    void plantGadgets();
    void finalizeEdges();
    void writeRodataTables();
    std::uint64_t rnd(std::uint64_t bound);
    double rndReal();

    sim::Memory &mem_;
    ImageParams params_;
    sim::Program prog_;
    std::vector<KFuncInfo> info_;
    std::vector<FuncClass> class_;
    std::array<sim::FuncId, kNumSyscalls> entries_{};
    std::uint64_t rngState_;
    unsigned totalGadgets_ = 0;

    // pools
    std::vector<sim::FuncId> libPool_;
    std::vector<sim::FuncId> errorPool_;
    std::vector<sim::FuncId> entryChain_;
    std::vector<sim::FuncId> exitChain_;
    std::vector<sim::FuncId> securityAnchors_;
    std::vector<std::vector<sim::FuncId>> coreAnchors_; // by subsystem
    std::vector<std::vector<sim::FuncId>> coreFuncs_;
    std::array<std::vector<sim::FuncId>, 4> fsImpls_;  // per fs type
    std::array<std::vector<sim::FuncId>, 3> netImpls_; // per proto
    std::vector<sim::FuncId> coldFuncs_;
    std::vector<sim::FuncId> hotTreeFuncs_; ///< executed on hot paths
    std::vector<sim::FuncId> warmTreeFuncs_;///< static-only reachable

    // workers
    sim::FuncId pollScanWorker_ = sim::kNoFunc;
    sim::FuncId copyWorker_ = sim::kNoFunc;
    sim::FuncId bigCopyWorker_ = sim::kNoFunc;
    sim::FuncId populateWorker_ = sim::kNoFunc;
    sim::FuncId forkCopyWorker_ = sim::kNoFunc;
    sim::FuncId pathWalk_ = sim::kNoFunc;

    // vfs/proto dispatch functions and their icall op index
    std::array<sim::FuncId, 6> vfsDispatch_{};
    std::array<std::uint32_t, 6> vfsDispatchIcallIdx_{};
    std::array<sim::FuncId, 5> netDispatch_{};

    // PoC handles
    sim::FuncId pocDriverGadget_ = sim::kNoFunc;
    sim::FuncId pocPtraceGadget_ = sim::kNoFunc;
    sim::FuncId pocBpfGadget_ = sim::kNoFunc;
    sim::FuncId pocHijackGadget_ = sim::kNoFunc;
    Addr pocBoundVa_ = 0;
};

/** VA of the ops-table slot for fs type @p t, operation @p slot. */
constexpr Addr
fopsSlotVa(unsigned t, unsigned slot)
{
    return directMapVa(kRodataFirstPfn) + Addr{t} * 0x100 +
           Addr{slot} * 8;
}

/** VA of the proto-ops slot for protocol @p p, operation @p slot. */
constexpr Addr
protoOpsSlotVa(unsigned p, unsigned slot)
{
    return directMapVa(kRodataFirstPfn + 4) + Addr{p} * 0x100 +
           Addr{slot} * 8;
}

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_IMAGE_HH
