/**
 * @file
 * Architectural interpreter for the micro-op IR. Executes exactly the
 * committed-path semantics of the pipeline (no speculation, no
 * timing) and reports which functions run. It is the engine behind:
 *
 *  - the ftrace-style tracer that builds dynamic ISVs (Section 5.3),
 *  - the Kasper/Syzkaller-style fuzzing loop of the gadget scanner.
 */

#ifndef PERSPECTIVE_KERNEL_INTERP_HH
#define PERSPECTIVE_KERNEL_INTERP_HH

#include <array>
#include <cstdint>
#include <functional>

#include "sim/memory.hh"
#include "sim/program.hh"
#include "types.hh"

namespace perspective::kernel
{

/** Architectural executor over a Program. */
class Interpreter
{
  public:
    Interpreter(const sim::Program &prog, sim::Memory &mem)
        : prog_(prog), mem_(mem)
    {
    }

    std::uint64_t regValue(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint64_t v) { regs_[r] = v; }

    /** When set, stores are discarded (fuzzing must not corrupt the
     * semantic kernel state). */
    void setDryStores(bool dry) { dryStores_ = dry; }

    struct Result
    {
        std::uint64_t uops = 0;
        bool completed = false; ///< false when maxUops was hit
    };

    /**
     * Execute @p entry until its final return. @p on_func (optional)
     * fires on entry to every function, including @p entry itself.
     */
    Result run(sim::FuncId entry, std::uint64_t max_uops = 1'000'000,
               const std::function<void(sim::FuncId)> &on_func = {});

  private:
    const sim::Program &prog_;
    sim::Memory &mem_;
    std::array<std::uint64_t, sim::kNumRegs> regs_{};
    bool dryStores_ = false;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_INTERP_HH
