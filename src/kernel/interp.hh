/**
 * @file
 * Architectural interpreter for the micro-op IR. Executes exactly the
 * committed-path semantics of the pipeline (no speculation, no
 * timing) and reports which functions run. It is the engine behind:
 *
 *  - the ftrace-style tracer that builds dynamic ISVs (Section 5.3),
 *  - the Kasper/Syzkaller-style fuzzing loop of the gadget scanner,
 *  - the fast-forward executor's functional half (DESIGN §5.5).
 *
 * Dispatch is threaded over predecoded superblocks (sim/superblock.hh)
 * instead of a per-op decode switch; the call stack persists across
 * run() invocations so steady-state tracing allocates nothing.
 */

#ifndef PERSPECTIVE_KERNEL_INTERP_HH
#define PERSPECTIVE_KERNEL_INTERP_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/memory.hh"
#include "sim/program.hh"
#include "sim/superblock.hh"
#include "types.hh"

namespace perspective::kernel
{

/** Architectural executor over a Program. */
class Interpreter
{
  public:
    /**
     * @p blocks (optional) injects a shared predecoded-superblock
     * cache so short-lived interpreters (the per-request tracers) do
     * not re-decode the image; without one the interpreter builds its
     * own lazily.
     */
    Interpreter(const sim::Program &prog, sim::Memory &mem,
                sim::SuperblockCache *blocks = nullptr)
        : prog_(prog), mem_(mem), blocks_(blocks)
    {
    }

    std::uint64_t regValue(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint64_t v) { regs_[r] = v; }

    /** When set, stores are discarded (fuzzing must not corrupt the
     * semantic kernel state). */
    void setDryStores(bool dry) { dryStores_ = dry; }

    /** Restore the freshly-constructed architectural state (all
     * registers zero, stores live) so one long-lived interpreter can
     * replace a construct-per-invocation pattern without behavioral
     * difference. Decoded superblocks are retained. */
    void
    reset()
    {
        regs_.fill(0);
        dryStores_ = false;
    }

    struct Result
    {
        std::uint64_t uops = 0;
        bool completed = false; ///< false when maxUops was hit
    };

    /**
     * Execute @p entry until its final return. @p on_func (optional)
     * fires on entry to every function, including @p entry itself.
     */
    Result run(sim::FuncId entry, std::uint64_t max_uops = 1'000'000,
               const std::function<void(sim::FuncId)> &on_func = {});

  private:
    sim::SuperblockCache &cache();

    const sim::Program &prog_;
    sim::Memory &mem_;
    sim::SuperblockCache *blocks_ = nullptr;
    std::unique_ptr<sim::SuperblockCache> ownBlocks_;
    std::array<std::uint64_t, sim::kNumRegs> regs_{};
    bool dryStores_ = false;

    struct Frame
    {
        sim::FuncId func;
        std::uint32_t idx;
    };
    /** Persistent call stack: cleared, never reallocated, per run. */
    std::vector<Frame> stack_;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_INTERP_HH
