#include "slab.hh"

#include <algorithm>
#include <cassert>

namespace perspective::kernel
{

namespace
{

/** Key used for the shared partial list in normal (insecure) mode. */
constexpr DomainId kSharedKey = kDomainUnknown;

} // namespace

SlabCache::SlabCache(std::string name, std::uint32_t object_size,
                     BuddyAllocator &buddy, bool secure)
    : name_(std::move(name)),
      objectSize_(object_size),
      buddy_(buddy),
      secure_(secure)
{
    assert(object_size >= 8 && object_size <= sim::kPageSize);
}

std::uint32_t
SlabCache::slotsPerPage() const
{
    return static_cast<std::uint32_t>(sim::kPageSize / objectSize_);
}

SlabCache::Page *
SlabCache::grabPartialPage(DomainId domain)
{
    DomainId key = secure_ ? domain : kSharedKey;
    auto &list = partial_[key];
    while (!list.empty()) {
        auto it = pages_.find(list.back());
        if (it == pages_.end() ||
            it->second.usedCount == slotsPerPage()) {
            list.pop_back(); // stale entry
            continue;
        }
        return &it->second;
    }

    // Need a fresh backing page. In secure mode it is owned by the
    // requesting domain; in normal mode the first allocator is
    // charged (collocation hazard).
    auto pfn = buddy_.allocPages(0, domain);
    if (!pfn)
        return nullptr;
    Page page;
    page.pfn = *pfn;
    page.domain = domain;
    page.used.assign(slotsPerPage(), false);
    auto [it, ok] = pages_.emplace(*pfn, std::move(page));
    assert(ok);
    list.push_back(*pfn);
    return &it->second;
}

sim::Addr
SlabCache::alloc(DomainId domain)
{
    Page *page = grabPartialPage(domain);
    if (!page)
        return 0;
    auto slot_it =
        std::find(page->used.begin(), page->used.end(), false);
    assert(slot_it != page->used.end());
    std::uint32_t slot =
        static_cast<std::uint32_t>(slot_it - page->used.begin());
    page->used[slot] = true;
    ++page->usedCount;
    ++active_;
    ++allocs_;

    if (page->usedCount == slotsPerPage()) {
        DomainId key = secure_ ? page->domain : kSharedKey;
        auto &list = partial_[key];
        list.erase(std::remove(list.begin(), list.end(), page->pfn),
                   list.end());
    }
    return directMapVa(page->pfn) + Addr{slot} * objectSize_;
}

void
SlabCache::free(sim::Addr va)
{
    Pfn pfn = directMapPfn(va);
    auto it = pages_.find(pfn);
    assert(it != pages_.end() && "free of non-slab address");
    Page &page = it->second;
    std::uint32_t slot = static_cast<std::uint32_t>(
        (va - directMapVa(pfn)) / objectSize_);
    assert(page.used[slot] && "double free");
    page.used[slot] = false;
    bool was_full = page.usedCount == slotsPerPage();
    --page.usedCount;
    --active_;
    ++frees_;

    DomainId key = secure_ ? page.domain : kSharedKey;
    if (page.usedCount == 0) {
        // Drained: hand the page back to the buddy allocator. This is
        // the page-level operation that needs a domain reassignment
        // under the secure slab allocator.
        auto &list = partial_[key];
        list.erase(std::remove(list.begin(), list.end(), pfn),
                   list.end());
        buddy_.freePages(pfn, 0);
        pages_.erase(it);
        ++reassigns_;
        return;
    }
    if (was_full)
        partial_[key].push_back(pfn);
}

std::uint64_t
SlabCache::totalSlots() const
{
    return static_cast<std::uint64_t>(pages_.size()) * slotsPerPage();
}

double
SlabCache::utilization() const
{
    std::uint64_t slots = totalSlots();
    return slots == 0 ? 1.0
                      : static_cast<double>(active_) / slots;
}

DomainId
SlabCache::pageDomain(sim::Addr va) const
{
    auto it = pages_.find(directMapPfn(va));
    return it == pages_.end() ? kDomainUnknown : it->second.domain;
}

} // namespace perspective::kernel
