/**
 * @file
 * ModuleRegistry: loadable-extension state on top of the immutable
 * KernelImage.
 *
 * The synthesized image already contains the text of every module —
 * the cold driver/crypto/sound bulk — exactly like a distro kernel
 * ships .ko files that are mapped but unreachable until loaded. The
 * registry carves that bulk into modules and models insmod as the
 * only part that actually mutates state: binding the module's entry
 * point into an ops-table slot of the per-experiment memory (the
 * image itself is shared across experiments and never written).
 *
 * Loading is the canonical ISV dynamic-update event: the instant the
 * ops slot points at module code, indirect dispatch can reach it, so
 * the OS must extend every affected context's ISV (incrementally —
 * StaticIsvBuilder::extendView from the module entry) and, for ISV++
 * deployments, re-run the gadget audit over the extension. The
 * window between the slot write and the view update landing is what
 * the module-load race scenario measures.
 */

#ifndef PERSPECTIVE_KERNEL_MODULES_HH
#define PERSPECTIVE_KERNEL_MODULES_HH

#include <cstdint>
#include <vector>

#include "image.hh"
#include "sim/memory.hh"

namespace perspective::kernel
{

class ModuleRegistry
{
  public:
    /**
     * Carve the image's cold bulk into modules of @p module_size
     * functions. Module 0 deliberately contains (and enters through)
     * the PoC hijack gadget: the module whose load extends the ISV
     * straight onto an attacker-useful target.
     */
    ModuleRegistry(const KernelImage &img, sim::Memory &mem,
                   unsigned module_size = 12);

    std::size_t numModules() const { return modules_.size(); }
    const std::vector<sim::FuncId> &
    functions(unsigned m) const
    {
        return modules_.at(m).funcs;
    }
    sim::FuncId entry(unsigned m) const { return modules_.at(m).entry; }
    bool loaded(unsigned m) const { return modules_.at(m).loaded; }

    /**
     * insmod: bind module @p m's entry into the ops-table slot
     * (@p fs_type, @p op_slot) of the experiment's memory, making it
     * reachable through vfs indirect dispatch. Returns the entry
     * FuncId — the root the caller feeds to extendView.
     */
    sim::FuncId load(unsigned m, unsigned fs_type, unsigned op_slot);

  private:
    struct Module
    {
        sim::FuncId entry = sim::kNoFunc;
        std::vector<sim::FuncId> funcs;
        bool loaded = false;
    };

    sim::Memory &mem_;
    std::vector<Module> modules_;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_MODULES_HH
