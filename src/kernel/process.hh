/**
 * @file
 * Task (process) state: kernel-side resources a process owns and the
 * register conventions used when its syscalls run on the pipeline.
 */

#ifndef PERSPECTIVE_KERNEL_PROCESS_HH
#define PERSPECTIVE_KERNEL_PROCESS_HH

#include <cstdint>
#include <vector>

#include "types.hh"

namespace perspective::kernel
{

/**
 * Register conventions shared between workload drivers and generated
 * kernel function bodies.
 */
namespace reg
{
inline constexpr sim::RegId kCtx = 10;    ///< process kernel-data base
inline constexpr sim::RegId kArg0 = 11;
inline constexpr sim::RegId kArg1 = 12;
inline constexpr sim::RegId kArg2 = 13;
inline constexpr sim::RegId kFault = 14;  ///< error-injection knob
inline constexpr sim::RegId kVariant = 15;///< path-variant knob
inline constexpr sim::RegId kPerCpu = 16; ///< per-cpu area base
inline constexpr sim::RegId kRet = 9;     ///< syscall return value
} // namespace reg

/** One task. All addresses are direct-map VAs. */
struct Task
{
    Pid pid = 0;
    CgroupId cgroup = 0;
    DomainId domain = kDomainUnknown;
    sim::Asid asid = 0;

    /** Context block: 4 pages of per-task kernel data (task struct,
     * fd table, cred, ...) that generated bodies address via r10. */
    Addr ctxVa = 0;
    Pfn ctxPfn = 0;

    /** Kernel stack (vmalloc-style, tracked into the DSV). */
    Addr stackTopVa = 0;
    Pfn stackPfn = 0;

    /** Pages explicitly mapped by the process (mmap/page faults). */
    std::vector<Pfn> userPages;

    /** Live kmalloc'd objects (address, size-class index). */
    std::vector<std::pair<Addr, unsigned>> slabObjects;

    /** Per-task enforcement aspects (fleet.hh bits) — the task half
     * of the DEXCR-style value; the kernel runs the task under
     * FleetControl::effective(fleetBits). Inherited across fork and
     * re-synced with the global floor on exec. */
    std::uint32_t fleetBits = 0;

    bool alive = true;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_PROCESS_HH
