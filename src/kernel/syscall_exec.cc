#include "syscall_exec.hh"

#include <stdexcept>

#include "process.hh"

namespace perspective::kernel
{

namespace
{

/** Clamp a copy length (in cache lines) to something sane. */
std::uint64_t
clampLines(std::uint64_t v, std::uint64_t dflt, std::uint64_t max)
{
    if (v == 0)
        return dflt;
    return v > max ? max : v;
}

} // namespace

Addr
SyscallExecutor::fileBuf(Pid pid)
{
    TaskExtra &ex = extra(pid);
    if (!ex.hasFileBuf) {
        auto pfn = ks_.buddy().allocPages(2, ks_.domainOf(pid));
        if (!pfn)
            throw std::runtime_error("oom: file buffer");
        ex.fileBufPfn = *pfn;
        ex.hasFileBuf = true;
    }
    return directMapVa(ex.fileBufPfn);
}

Addr
SyscallExecutor::sockBuf(Pid pid)
{
    TaskExtra &ex = extra(pid);
    if (!ex.hasSockBuf) {
        auto pfn = ks_.buddy().allocPages(2, ks_.domainOf(pid));
        if (!pfn)
            throw std::runtime_error("oom: socket buffer");
        ex.sockBufPfn = *pfn;
        ex.hasSockBuf = true;
    }
    return directMapVa(ex.sockBufPfn);
}

Addr
SyscallExecutor::bigRegion(Pid pid)
{
    TaskExtra &ex = extra(pid);
    if (!ex.hasBigRegion) {
        auto pfn = ks_.buddy().allocPages(5, ks_.domainOf(pid));
        if (!pfn)
            throw std::runtime_error("oom: big region");
        ex.bigRegionPfn = *pfn;
        ex.hasBigRegion = true;
    }
    return directMapVa(ex.bigRegionPfn);
}

Addr
SyscallExecutor::fdRegion(Pid pid)
{
    TaskExtra &ex = extra(pid);
    if (!ex.hasFdRegion) {
        auto pfn = ks_.buddy().allocPages(6, ks_.domainOf(pid));
        if (!pfn)
            throw std::runtime_error("oom: fd region");
        ex.fdRegionPfn = *pfn;
        ex.hasFdRegion = true;
        // Each 192-byte file struct starts with a pointer to another
        // struct in the window (ops/inode links) for the poll scan's
        // pointer chase.
        Addr base = directMapVa(*pfn);
        for (unsigned i = 0; i < 512; ++i) {
            ks_.memory().write(base + Addr{i} * 192,
                               base + ((i * 131 + 7) % 170) * 192);
        }
    }
    return directMapVa(ex.fdRegionPfn);
}

PreparedSyscall
SyscallExecutor::prepare(Pid pid, const SyscallInvocation &inv)
{
    Task &t = ks_.task(pid);
    DomainId dom = t.domain;
    PreparedSyscall p;
    auto set = [&p](unsigned r, std::uint64_t v) {
        p.regs.emplace_back(r, v);
    };

    // Baseline register conventions for every syscall.
    set(reg::kCtx, t.ctxVa);
    set(reg::kPerCpu, ks_.perCpuBase());
    set(reg::kFault, 0);
    set(reg::kVariant, 0);
    set(reg::kArg0, inv.arg0);
    set(reg::kArg1, inv.arg1);
    set(reg::kArg2, inv.arg2);

    pendingChild_ = 0;
    pendingKmalloc_ = 0;
    pendingChildRegionValid_ = false;
    pendingPageValid_ = false;

    switch (inv.sys) {
      case Sys::Mmap:
      case Sys::Brk: {
        unsigned order =
            inv.arg0 > 5 ? 5 : static_cast<unsigned>(inv.arg0);
        auto pfn = ks_.buddy().allocPages(order, dom);
        if (!pfn)
            throw std::runtime_error("oom: mmap");
        t.userPages.push_back(*pfn); // freed with the process
        // Record the order alongside by pushing each frame.
        for (std::uint64_t i = 1; i < (1ull << order); ++i)
            t.userPages.push_back(*pfn + i);
        set(reg::kArg1, 1ull << order);       // pages to populate
        set(reg::kArg2, directMapVa(*pfn));   // region base
        break;
      }
      case Sys::PageFault: {
        auto pfn = ks_.buddy().allocPages(0, dom);
        if (!pfn)
            throw std::runtime_error("oom: page fault");
        pendingPage_ = *pfn;
        pendingPageValid_ = true;
        set(reg::kArg1, 1);
        set(reg::kArg2, directMapVa(*pfn));
        break;
      }
      case Sys::Munmap: {
        if (!t.userPages.empty()) {
            ks_.buddy().freePages(t.userPages.back(), 0);
            t.userPages.pop_back();
        }
        break;
      }
      case Sys::Fork:
      case Sys::ThreadCreate: {
        pendingChild_ = ks_.createProcess(t.cgroup);
        Task &child = ks_.task(pendingChild_);
        set(reg::kArg0, t.ctxVa);       // copy source
        set(reg::kArg1, 4);             // pages
        set(reg::kArg2, child.ctxVa);   // copy destination
        break;
      }
      case Sys::BigFork: {
        pendingChild_ = ks_.createProcess(t.cgroup);
        Addr parent_region = bigRegion(pid);
        auto child_region = ks_.buddy().allocPages(
            5, ks_.task(pendingChild_).domain);
        if (!child_region)
            throw std::runtime_error("oom: big fork");
        pendingChildRegion_ = *child_region;
        pendingChildRegionValid_ = true;
        set(reg::kArg0, parent_region);
        set(reg::kArg1, 32);
        set(reg::kArg2, directMapVa(*child_region));
        break;
      }
      case Sys::Read:
      case Sys::Write:
      case Sys::Fsync:
        set(reg::kArg1, clampLines(inv.arg1, 16, 64));
        set(reg::kArg2, fileBuf(pid));
        break;
      case Sys::BigRead:
      case Sys::BigWrite:
        set(reg::kArg1, clampLines(inv.arg1 ? inv.arg1 : 256, 256,
                                   256));
        set(reg::kArg2, fileBuf(pid));
        break;
      case Sys::Open: {
        // Path walk depth; the file object lives until close().
        set(reg::kArg2, inv.arg2 ? inv.arg2 : 3);
        Addr obj = ks_.kmalloc(512, dom);
        extra(pid).openObjects.emplace_back(obj, 512);
        break;
      }
      case Sys::Stat: {
        // Path walk depth; the dentry reference is transient.
        set(reg::kArg2, inv.arg2 ? inv.arg2 : 3);
        pendingKmalloc_ = ks_.kmalloc(512, dom);
        pendingKmallocSize_ = 512;
        break;
      }
      case Sys::Close: {
        TaskExtra &ex = extra(pid);
        if (!ex.openObjects.empty()) {
            auto [va, sz] = ex.openObjects.back();
            ks_.kfree(va, sz);
            ex.openObjects.pop_back();
        }
        break;
      }
      case Sys::Ioctl:
        // Benign index into the driver's table (bounds value is 16).
        set(reg::kArg0, inv.arg0 % 16);
        break;
      case Sys::Select:
      case Sys::Poll:
      case Sys::EpollWait: {
        set(reg::kArg1, clampLines(inv.arg1, 64, 512)); // nfds
        set(reg::kArg2, fdRegion(pid)); // per-fd file structs
        // Transient metadata allocation (Figure 5.2's poll example).
        pendingKmalloc_ = ks_.kmalloc(256, dom);
        pendingKmallocSize_ = 256;
        break;
      }
      case Sys::EpollCreate: {
        Addr obj = ks_.kmalloc(512, dom);
        extra(pid).openObjects.emplace_back(obj, 512);
        break;
      }
      case Sys::Send:
      case Sys::SendTo:
      case Sys::Recv:
      case Sys::RecvFrom: {
        set(reg::kArg1, clampLines(inv.arg1, 16, 64));
        set(reg::kArg2, sockBuf(pid));
        // skb allocation, freed on completion.
        pendingKmalloc_ = ks_.kmalloc(2048, dom);
        pendingKmallocSize_ = 2048;
        break;
      }
      case Sys::Socket: {
        Addr obj = ks_.kmalloc(1024, dom);
        extra(pid).openObjects.emplace_back(obj, 1024);
        break;
      }
      case Sys::Shutdown: {
        TaskExtra &ex = extra(pid);
        if (!ex.openObjects.empty()) {
            auto [va, sz] = ex.openObjects.back();
            ks_.kfree(va, sz);
            ex.openObjects.pop_back();
        }
        break;
      }
      default:
        break;
    }
    return p;
}

void
SyscallExecutor::finish(Pid pid, const SyscallInvocation &inv)
{
    (void)pid;
    (void)inv;
    if (pendingKmalloc_ != 0) {
        ks_.kfree(pendingKmalloc_, pendingKmallocSize_);
        pendingKmalloc_ = 0;
    }
    if (pendingChildRegionValid_) {
        ks_.buddy().freePages(pendingChildRegion_, 5);
        pendingChildRegionValid_ = false;
    }
    if (pendingChild_ != 0) {
        // The forked child exits immediately in our workloads.
        ks_.exitProcess(pendingChild_);
        pendingChild_ = 0;
    }
    if (pendingPageValid_) {
        // The faulted page stays mapped only transiently in the
        // microbenchmark loop; release it to keep memory bounded.
        ks_.buddy().freePages(pendingPage_, 0);
        pendingPageValid_ = false;
    }
}

void
SyscallExecutor::releaseTask(Pid pid)
{
    auto it = extra_.find(pid);
    if (it == extra_.end())
        return;
    TaskExtra &ex = it->second;
    if (ex.hasFileBuf)
        ks_.buddy().freePages(ex.fileBufPfn, 2);
    if (ex.hasSockBuf)
        ks_.buddy().freePages(ex.sockBufPfn, 2);
    if (ex.hasBigRegion)
        ks_.buddy().freePages(ex.bigRegionPfn, 5);
    if (ex.hasFdRegion)
        ks_.buddy().freePages(ex.fdRegionPfn, 6);
    for (auto [va, sz] : ex.openObjects)
        ks_.kfree(va, sz);
    extra_.erase(it);
}

} // namespace perspective::kernel
