#include "buddy.hh"

#include <algorithm>
#include <cassert>

namespace perspective::kernel
{

BuddyAllocator::BuddyAllocator(OwnershipMap &ownership, Pfn first_pfn,
                               std::uint64_t num_frames)
    : ownership_(ownership),
      firstPfn_(first_pfn),
      total_(num_frames),
      freeLists_(kMaxOrder + 1),
      orderOf_(num_frames, 0)
{
    // Carve the range into maximal power-of-two blocks.
    std::uint64_t rel = 0;
    while (rel < num_frames) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((rel & ((1ull << order) - 1)) != 0 ||
                rel + (1ull << order) > num_frames)) {
            --order;
        }
        freeLists_[order].push_back(rel);
        rel += 1ull << order;
    }
}

std::uint64_t
BuddyAllocator::buddyOf(std::uint64_t rel, unsigned order) const
{
    return rel ^ (1ull << order);
}

void
BuddyAllocator::insertFree(Pfn rel, unsigned order)
{
    freeLists_[order].push_back(rel);
}

bool
BuddyAllocator::removeFree(Pfn rel, unsigned order)
{
    auto &list = freeLists_[order];
    auto it = std::find(list.begin(), list.end(), rel);
    if (it == list.end())
        return false;
    *it = list.back();
    list.pop_back();
    return true;
}

std::optional<Pfn>
BuddyAllocator::allocPages(unsigned order, DomainId domain)
{
    assert(order <= kMaxOrder);
    unsigned o = order;
    while (o <= kMaxOrder && freeLists_[o].empty())
        ++o;
    if (o > kMaxOrder)
        return std::nullopt;

    std::uint64_t rel = freeLists_[o].back();
    freeLists_[o].pop_back();

    // Split down to the requested order, returning buddies to lists.
    while (o > order) {
        --o;
        insertFree(rel + (1ull << o), o);
    }

    orderOf_[rel] = static_cast<std::uint8_t>(order);
    allocated_ += 1ull << order;
    ++allocCount_;
    ownership_.assignRange(firstPfn_ + rel, 1ull << order, domain);
    return firstPfn_ + rel;
}

void
BuddyAllocator::freePages(Pfn pfn, unsigned order)
{
    assert(pfn >= firstPfn_);
    std::uint64_t rel = pfn - firstPfn_;
    assert(rel < total_);
    ownership_.assignRange(pfn, 1ull << order, kDomainUnknown);
    allocated_ -= 1ull << order;

    // Coalesce with the buddy while possible.
    unsigned o = order;
    while (o < kMaxOrder) {
        std::uint64_t bud = buddyOf(rel, o);
        if (bud + (1ull << o) > total_ || !removeFree(bud, o))
            break;
        rel = std::min(rel, bud);
        ++o;
    }
    insertFree(rel, o);
}

} // namespace perspective::kernel
