/**
 * @file
 * SyscallExecutor: the semantic half of syscall execution.
 *
 * Each modeled syscall is executed in three steps by workload runners
 * and tracers alike:
 *
 *   1. prepare(): perform the kernel's *semantic* work (allocate
 *      pages/slab objects, create processes, update ownership) and
 *      compute the register file the IR handler expects;
 *   2. run the syscall's IR entry function (on the pipeline for
 *      timing/security, or on the interpreter for tracing);
 *   3. finish(): release transient resources (exit forked children,
 *      free transient buffers).
 *
 * Keeping the semantics in C++ while the memory traffic runs as IR
 * means allocation-heavy syscalls mechanically produce the cold-DSV
 * accesses the paper attributes big-fork/page-fault overheads to.
 */

#ifndef PERSPECTIVE_KERNEL_SYSCALL_EXEC_HH
#define PERSPECTIVE_KERNEL_SYSCALL_EXEC_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "image.hh"
#include "kstate.hh"
#include "syscalls.hh"

namespace perspective::kernel
{

/** One syscall request from a workload. */
struct SyscallInvocation
{
    Sys sys = Sys::Getpid;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
};

/** Register assignments to apply before running the IR handler. */
struct PreparedSyscall
{
    std::vector<std::pair<unsigned, std::uint64_t>> regs;
};

/** Executes syscall semantics against the KernelState. */
class SyscallExecutor
{
  public:
    SyscallExecutor(KernelState &ks, KernelImage &img)
        : ks_(ks), img_(img)
    {
    }

    /** Step 1: semantic effects + register setup for @p pid. */
    PreparedSyscall prepare(Pid pid, const SyscallInvocation &inv);

    /** Step 3: release transient resources of the invocation. */
    void finish(Pid pid, const SyscallInvocation &inv);

    /** Drop all lazily-created per-task regions for @p pid (call
     * before exiting the process). */
    void releaseTask(Pid pid);

    KernelState &kernelState() { return ks_; }
    KernelImage &image() { return img_; }

    struct Snapshot; // per-task regions + in-flight invocation state

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    /** Lazily-created long-lived regions per task. */
    struct TaskExtra
    {
        Pfn fileBufPfn = 0;  ///< 4-page file buffer (order 2)
        Pfn sockBufPfn = 0;  ///< 4-page socket buffer (order 2)
        Pfn bigRegionPfn = 0;///< 32-page data region (order 5)
        Pfn fdRegionPfn = 0; ///< 64-page fd/file-struct region
        bool hasFileBuf = false;
        bool hasSockBuf = false;
        bool hasBigRegion = false;
        bool hasFdRegion = false;
        /** Open file/socket slab objects: (address, size class). */
        std::vector<std::pair<Addr, std::uint32_t>> openObjects;
    };

    TaskExtra &extra(Pid pid) { return extra_[pid]; }
    Addr fileBuf(Pid pid);
    Addr sockBuf(Pid pid);
    Addr bigRegion(Pid pid);
    Addr fdRegion(Pid pid);

    KernelState &ks_;
    KernelImage &img_;
    std::unordered_map<Pid, TaskExtra> extra_;

    // Transient state between prepare() and finish().
    Pid pendingChild_ = 0;
    Addr pendingKmalloc_ = 0;
    std::uint32_t pendingKmallocSize_ = 0;
    Pfn pendingChildRegion_ = 0;
    bool pendingChildRegionValid_ = false;
    Pfn pendingPage_ = 0;
    bool pendingPageValid_ = false;
};

struct SyscallExecutor::Snapshot
{
    std::unordered_map<Pid, TaskExtra> extra;
    Pid pendingChild = 0;
    Addr pendingKmalloc = 0;
    std::uint32_t pendingKmallocSize = 0;
    Pfn pendingChildRegion = 0;
    bool pendingChildRegionValid = false;
    Pfn pendingPage = 0;
    bool pendingPageValid = false;
};

inline SyscallExecutor::Snapshot
SyscallExecutor::snapshot() const
{
    return {extra_,
            pendingChild_,
            pendingKmalloc_,
            pendingKmallocSize_,
            pendingChildRegion_,
            pendingChildRegionValid_,
            pendingPage_,
            pendingPageValid_};
}

inline void
SyscallExecutor::restore(const Snapshot &s)
{
    extra_ = s.extra;
    pendingChild_ = s.pendingChild;
    pendingKmalloc_ = s.pendingKmalloc;
    pendingKmallocSize_ = s.pendingKmallocSize;
    pendingChildRegion_ = s.pendingChildRegion;
    pendingChildRegionValid_ = s.pendingChildRegionValid;
    pendingPage_ = s.pendingPage;
    pendingPageValid_ = s.pendingPageValid;
}

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_SYSCALL_EXEC_HH
