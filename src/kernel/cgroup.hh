/**
 * @file
 * Minimal control-group registry. Perspective keys DSVs off cgroups
 * (Section 6.1): each cgroup owns a protection domain, and every
 * resource the kernel allocates on behalf of a member process is
 * charged to that domain.
 */

#ifndef PERSPECTIVE_KERNEL_CGROUP_HH
#define PERSPECTIVE_KERNEL_CGROUP_HH

#include <cassert>
#include <string>
#include <vector>

#include "types.hh"

namespace perspective::kernel
{

/** Registry mapping cgroups to ownership domains. */
class CgroupRegistry
{
  public:
    /** Create a cgroup; its domain id is allocated automatically. */
    CgroupId
    create(std::string name)
    {
        CgroupId id = static_cast<CgroupId>(entries_.size());
        Entry e;
        e.name = std::move(name);
        e.domain = static_cast<DomainId>(kFirstDynamicDomain + id);
        entries_.push_back(std::move(e));
        return id;
    }

    DomainId
    domainOf(CgroupId id) const
    {
        assert(id < entries_.size());
        return entries_[id].domain;
    }

    const std::string &
    nameOf(CgroupId id) const
    {
        assert(id < entries_.size());
        return entries_[id].name;
    }

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string name;
        DomainId domain = kDomainUnknown;
    };

    std::vector<Entry> entries_;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_CGROUP_HH
