#include "interp.hh"

namespace perspective::kernel
{

using namespace sim;

SuperblockCache &
Interpreter::cache()
{
    if (blocks_)
        return *blocks_;
    if (!ownBlocks_)
        ownBlocks_ = std::make_unique<SuperblockCache>(prog_);
    return *ownBlocks_;
}

/*
 * Dispatch is threaded over predecoded superblocks: every op carries a
 * flat SbKind, so the hot loop is "execute handler, bump cursor,
 * indexed jump" with no per-op decode switch and no bounds check (the
 * block's last op is always a terminator, kSbEnd included). GCC/Clang
 * get labels-as-values; other compilers fall back to a switch over the
 * same handlers.
 */

#if defined(__GNUC__) || defined(__clang__)
#define PERSPECTIVE_THREADED_DISPATCH 1
#endif

Interpreter::Result
Interpreter::run(FuncId entry, std::uint64_t max_uops,
                 const std::function<void(FuncId)> &on_func)
{
    SuperblockCache &sbc = cache();
    stack_.clear();
    FuncId func = entry;
    std::uint32_t idx = 0;
    Result res;

    if (on_func)
        on_func(func);

    const SbOp *cur = nullptr;
    const SbOp *blockBase = nullptr;
    std::uint32_t blockIdx = 0;

    // Index of the op `cur` points at, valid inside terminator
    // handlers (straight-line handlers never need it).
#define PERSPECTIVE_CUR_IDX()                                          \
    (blockIdx + static_cast<std::uint32_t>(cur - blockBase))

#ifdef PERSPECTIVE_THREADED_DISPATCH

    static const void *const kJump[kSbNumKinds] = {
        &&h_nop,    &&h_add,  &&h_sub,   &&h_and,   &&h_shl,
        &&h_shr,    &&h_movi, &&h_mov,   &&h_mul,   &&h_load,
        &&h_store,  &&h_branch, &&h_jump, &&h_call, &&h_icall,
        &&h_return, &&h_fence, &&h_end,
    };

// Budget check precedes every dispatch, exactly like the original
// per-op while loop; real handlers count their own uop.
#define DISPATCH()                                                     \
    do {                                                               \
        if (res.uops >= max_uops) [[unlikely]]                         \
            return res;                                                \
        goto *kJump[cur->kind];                                        \
    } while (0)

next_block:
    {
        const Superblock &sb = sbc.at(func, idx);
        blockBase = cur = sb.ops.data();
        blockIdx = idx;
    }
    DISPATCH();

h_nop:
    ++res.uops;
    ++cur;
    DISPATCH();

h_add: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    regs_[op.dst] =
        op.src2 != kNoReg
            ? a + regs_[op.src2] + static_cast<std::uint64_t>(op.imm)
            : a + static_cast<std::uint64_t>(op.imm);
    ++cur;
    DISPATCH();
}

h_sub: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    std::uint64_t b = op.src2 != kNoReg
                          ? regs_[op.src2]
                          : static_cast<std::uint64_t>(op.imm);
    regs_[op.dst] = a - b;
    ++cur;
    DISPATCH();
}

h_and: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    regs_[op.dst] = a & static_cast<std::uint64_t>(op.imm);
    ++cur;
    DISPATCH();
}

h_shl: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    regs_[op.dst] = a << (op.imm & 63);
    ++cur;
    DISPATCH();
}

h_shr: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    regs_[op.dst] = a >> (op.imm & 63);
    ++cur;
    DISPATCH();
}

h_movi: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    regs_[op.dst] = static_cast<std::uint64_t>(op.imm);
    ++cur;
    DISPATCH();
}

h_mov: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    regs_[op.dst] = op.src1 != kNoReg ? regs_[op.src1] : 0;
    ++cur;
    DISPATCH();
}

h_mul: {
    // IntMul's value function is whatever its AluOp says (the stock
    // builder leaves AluOp::Add; only the pipeline charges multiply
    // latency), so defer to evalAluOp rather than multiplying.
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
    std::uint64_t b = op.src2 != kNoReg
                          ? regs_[op.src2]
                          : static_cast<std::uint64_t>(op.imm);
    regs_[op.dst] = evalAluOp(op, a, b);
    ++cur;
    DISPATCH();
}

h_load: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    Addr ea = (op.src1 != kNoReg ? regs_[op.src1] : 0) +
              static_cast<std::uint64_t>(op.imm);
    regs_[op.dst] = mem_.read(ea);
    ++cur;
    DISPATCH();
}

h_store: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    if (!dryStores_) {
        Addr ea = (op.src1 != kNoReg ? regs_[op.src1] : 0) +
                  static_cast<std::uint64_t>(op.imm);
        mem_.write(ea, regs_[op.src2]);
    }
    ++cur;
    DISPATCH();
}

h_branch: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t a = regs_[op.src1];
    std::uint64_t b = op.src2 != kNoReg
                          ? regs_[op.src2]
                          : static_cast<std::uint64_t>(op.imm);
    idx = evalCondOp(op.cond, a, b) ? op.target
                                    : PERSPECTIVE_CUR_IDX() + 1;
    goto next_block;
}

h_jump:
    ++res.uops;
    idx = cur->op->target;
    goto next_block;

h_call: {
    ++res.uops;
    stack_.push_back({func, PERSPECTIVE_CUR_IDX() + 1});
    func = cur->op->callee;
    idx = 0;
    if (on_func)
        on_func(func);
    goto next_block;
}

h_icall: {
    ++res.uops;
    const MicroOp &op = *cur->op;
    std::uint64_t raw = regs_[op.src1];
    if (!validCallTarget(prog_, raw)) {
        // Wild pointer: architected no-op call, fall through.
        idx = PERSPECTIVE_CUR_IDX() + 1;
        goto next_block;
    }
    stack_.push_back({func, PERSPECTIVE_CUR_IDX() + 1});
    func = static_cast<FuncId>(raw);
    idx = 0;
    if (on_func)
        on_func(func);
    goto next_block;
}

h_return:
    ++res.uops;
    if (stack_.empty()) {
        res.completed = true;
        return res;
    }
    func = stack_.back().func;
    idx = stack_.back().idx;
    stack_.pop_back();
    goto next_block;

h_fence:
    ++res.uops;
    idx = PERSPECTIVE_CUR_IDX() + 1;
    goto next_block;

h_end:
    // Ran off the end of the body: defensive return (no uop charged).
    if (stack_.empty()) {
        res.completed = true;
        return res;
    }
    func = stack_.back().func;
    idx = stack_.back().idx;
    stack_.pop_back();
    goto next_block;

#undef DISPATCH

#else // !PERSPECTIVE_THREADED_DISPATCH

    for (;;) {
        const Superblock &sb = sbc.at(func, idx);
        blockBase = cur = sb.ops.data();
        blockIdx = idx;
        for (;;) {
            if (res.uops >= max_uops)
                return res;
            const std::uint8_t kind = cur->kind;
            if (kind != kSbEnd)
                ++res.uops;
            switch (kind) {
              case kSbNop:
                ++cur;
                continue;
              case kSbAluAdd:
              case kSbAluSub:
              case kSbAluAnd:
              case kSbAluShl:
              case kSbAluShr:
              case kSbAluMovI:
              case kSbAluMov:
              case kSbMul: {
                const MicroOp &op = *cur->op;
                std::uint64_t a =
                    op.src1 != kNoReg ? regs_[op.src1] : 0;
                std::uint64_t b =
                    op.src2 != kNoReg
                        ? regs_[op.src2]
                        : static_cast<std::uint64_t>(op.imm);
                regs_[op.dst] = evalAluOp(op, a, b);
                ++cur;
                continue;
              }
              case kSbLoad: {
                const MicroOp &op = *cur->op;
                Addr ea = (op.src1 != kNoReg ? regs_[op.src1] : 0) +
                          static_cast<std::uint64_t>(op.imm);
                regs_[op.dst] = mem_.read(ea);
                ++cur;
                continue;
              }
              case kSbStore: {
                const MicroOp &op = *cur->op;
                if (!dryStores_) {
                    Addr ea =
                        (op.src1 != kNoReg ? regs_[op.src1] : 0) +
                        static_cast<std::uint64_t>(op.imm);
                    mem_.write(ea, regs_[op.src2]);
                }
                ++cur;
                continue;
              }
              case kSbBranch: {
                const MicroOp &op = *cur->op;
                std::uint64_t a = regs_[op.src1];
                std::uint64_t b =
                    op.src2 != kNoReg
                        ? regs_[op.src2]
                        : static_cast<std::uint64_t>(op.imm);
                idx = evalCondOp(op.cond, a, b)
                          ? op.target
                          : PERSPECTIVE_CUR_IDX() + 1;
                break;
              }
              case kSbJump:
                idx = cur->op->target;
                break;
              case kSbCall:
                stack_.push_back({func, PERSPECTIVE_CUR_IDX() + 1});
                func = cur->op->callee;
                idx = 0;
                if (on_func)
                    on_func(func);
                break;
              case kSbIndirectCall: {
                const MicroOp &op = *cur->op;
                std::uint64_t raw = regs_[op.src1];
                if (!validCallTarget(prog_, raw)) {
                    idx = PERSPECTIVE_CUR_IDX() + 1;
                    break;
                }
                stack_.push_back({func, PERSPECTIVE_CUR_IDX() + 1});
                func = static_cast<FuncId>(raw);
                idx = 0;
                if (on_func)
                    on_func(func);
                break;
              }
              case kSbReturn:
              case kSbEnd:
                if (stack_.empty()) {
                    res.completed = true;
                    return res;
                }
                func = stack_.back().func;
                idx = stack_.back().idx;
                stack_.pop_back();
                break;
              case kSbFence:
                idx = PERSPECTIVE_CUR_IDX() + 1;
                break;
            }
            break; // terminator handled: fetch the next block
        }
    }

#endif // PERSPECTIVE_THREADED_DISPATCH

#undef PERSPECTIVE_CUR_IDX
}

} // namespace perspective::kernel
