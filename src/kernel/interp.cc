#include "interp.hh"

#include <vector>

namespace perspective::kernel
{

using namespace sim;

Interpreter::Result
Interpreter::run(FuncId entry, std::uint64_t max_uops,
                 const std::function<void(FuncId)> &on_func)
{
    struct Frame
    {
        FuncId func;
        std::uint32_t idx;
    };
    std::vector<Frame> stack;
    FuncId func = entry;
    std::uint32_t idx = 0;
    Result res;

    if (on_func)
        on_func(func);

    while (res.uops < max_uops) {
        const Function &f = prog_.func(func);
        if (idx >= f.body.size()) {
            // Defensive: treat running off the end as a return.
            if (stack.empty()) {
                res.completed = true;
                return res;
            }
            func = stack.back().func;
            idx = stack.back().idx;
            stack.pop_back();
            continue;
        }
        const MicroOp &op = f.body[idx];
        ++res.uops;

        switch (op.op) {
          case Op::Nop:
          case Op::Fence:
            ++idx;
            break;
          case Op::IntAlu:
          case Op::IntMul: {
            std::uint64_t a =
                op.src1 != kNoReg ? regs_[op.src1] : 0;
            std::uint64_t b =
                op.src2 != kNoReg
                    ? regs_[op.src2]
                    : static_cast<std::uint64_t>(op.imm);
            regs_[op.dst] = evalAluOp(op, a, b);
            ++idx;
            break;
          }
          case Op::Load: {
            Addr base = op.src1 != kNoReg ? regs_[op.src1] : 0;
            regs_[op.dst] = mem_.read(
                base + static_cast<std::uint64_t>(op.imm));
            ++idx;
            break;
          }
          case Op::Store: {
            Addr base = op.src1 != kNoReg ? regs_[op.src1] : 0;
            if (!dryStores_) {
                mem_.write(base + static_cast<std::uint64_t>(op.imm),
                           regs_[op.src2]);
            }
            ++idx;
            break;
          }
          case Op::Branch: {
            std::uint64_t a = regs_[op.src1];
            std::uint64_t b =
                op.src2 != kNoReg
                    ? regs_[op.src2]
                    : static_cast<std::uint64_t>(op.imm);
            idx = evalCondOp(op.cond, a, b) ? op.target : idx + 1;
            break;
          }
          case Op::Jump:
            idx = op.target;
            break;
          case Op::Call: {
            stack.push_back({func, idx + 1});
            func = op.callee;
            idx = 0;
            if (on_func)
                on_func(func);
            break;
          }
          case Op::IndirectCall: {
            FuncId target = static_cast<FuncId>(regs_[op.src1]);
            if (target >= prog_.numFunctions()) {
                // Wild pointer (possible under fuzzing): skip.
                ++idx;
                break;
            }
            stack.push_back({func, idx + 1});
            func = target;
            idx = 0;
            if (on_func)
                on_func(func);
            break;
          }
          case Op::Return: {
            if (stack.empty()) {
                res.completed = true;
                return res;
            }
            func = stack.back().func;
            idx = stack.back().idx;
            stack.pop_back();
            break;
          }
        }
    }
    return res; // budget exhausted
}

} // namespace perspective::kernel
