/**
 * @file
 * Identifier types for the miniature kernel.
 */

#ifndef PERSPECTIVE_KERNEL_TYPES_HH
#define PERSPECTIVE_KERNEL_TYPES_HH

#include <cstdint>

#include "sim/types.hh"

namespace perspective::kernel
{

using sim::Addr;
using Pid = std::uint32_t;
using CgroupId = std::uint32_t;
using Pfn = std::uint64_t; ///< physical frame number

/**
 * Ownership domain of a physical page. Perspective associates one
 * domain per cgroup (container); kernel threads get their own.
 */
using DomainId = std::uint16_t;

/** Memory whose provenance the kernel cannot attribute (globals,
 * boot-time per-cpu areas). Perspective conservatively blocks
 * speculative access to it. */
inline constexpr DomainId kDomainUnknown = 0;

/** Read-mostly structures (fops tables, ...) that Perspective's OS
 * support replicates per process (Section 6.1); they are part of
 * every DSV. */
inline constexpr DomainId kDomainReplicated = 1;

/** First domain id handed to cgroups. */
inline constexpr DomainId kFirstDynamicDomain = 2;

/** VA of boot-time global variable @p i (unknown provenance). */
constexpr sim::Addr
bootGlobalVa(unsigned i)
{
    return sim::kDirectMapBase + sim::Addr{i} * 256;
}

/** Physical frame -> direct-map virtual address. */
constexpr sim::Addr
directMapVa(Pfn pfn)
{
    return sim::kDirectMapBase + (pfn << sim::kPageShift);
}

/** Direct-map virtual address -> physical frame. */
constexpr Pfn
directMapPfn(sim::Addr va)
{
    return (va - sim::kDirectMapBase) >> sim::kPageShift;
}

/** True if @p va lies in the direct map. */
constexpr bool
inDirectMap(sim::Addr va)
{
    return va >= sim::kDirectMapBase;
}

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_TYPES_HH
