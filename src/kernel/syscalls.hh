/**
 * @file
 * The system-call surface of the miniature kernel. Each syscall has an
 * IR entry function in the KernelImage and a semantic (C++) prepare
 * step executed by the syscall runner.
 */

#ifndef PERSPECTIVE_KERNEL_SYSCALLS_HH
#define PERSPECTIVE_KERNEL_SYSCALLS_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace perspective::kernel
{

/** Modeled system calls (a representative slice of Linux's table). */
enum class Sys : std::uint8_t
{
    // process / scheduling
    Getpid, Getuid, Uname, GetTimeOfDay, Nanosleep, SchedYield,
    Fork, BigFork, ThreadCreate, Exit, Wait, Futex, Kill, Sigaction,
    Ptrace,
    // memory
    Mmap, Munmap, Brk, Mprotect, PageFault,
    // filesystem
    Open, Close, Read, Write, BigRead, BigWrite, Stat, Fstat, Lseek,
    Dup, Ioctl, Readdir, Fsync, Pipe,
    // multiplexing
    Select, Poll, EpollCreate, EpollCtl, EpollWait,
    // networking
    Socket, Bind, Listen, Accept, Connect, Send, Recv, SendTo,
    RecvFrom, SetSockOpt, Shutdown,
    // misc
    Bpf,

    kCount
};

inline constexpr unsigned kNumSyscalls =
    static_cast<unsigned>(Sys::kCount);

/** Human-readable syscall name. */
constexpr std::string_view
sysName(Sys s)
{
    constexpr std::array<std::string_view, kNumSyscalls> names = {
        "getpid", "getuid", "uname", "gettimeofday", "nanosleep",
        "sched_yield", "fork", "big_fork", "thread_create", "exit",
        "wait", "futex", "kill", "sigaction", "ptrace", "mmap",
        "munmap", "brk", "mprotect", "page_fault", "open", "close",
        "read", "write", "big_read", "big_write", "stat", "fstat",
        "lseek", "dup", "ioctl", "readdir", "fsync", "pipe", "select",
        "poll", "epoll_create", "epoll_ctl", "epoll_wait", "socket",
        "bind", "listen", "accept", "connect", "send", "recv",
        "sendto", "recvfrom", "setsockopt", "shutdown", "bpf",
    };
    return names[static_cast<unsigned>(s)];
}

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_SYSCALLS_HH
