#include "kstate.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace perspective::kernel
{

KernelState::KernelState(sim::Memory &mem, KernelParams params)
    : mem_(mem),
      params_(params),
      ownership_(params.numFrames),
      buddy_(ownership_, kBuddyFirst, params.numFrames - kBuddyFirst)
{
    // Boot regions keep unknown provenance: globals and per-cpu areas
    // are exactly the allocations Perspective cannot attribute to a
    // context (Section 6.1, "Resolving Unknown Allocations").
    ownership_.assignRange(kGlobalsFirst, 64, kDomainUnknown);
    ownership_.assignRange(kPerCpuFirst, 8, kDomainUnknown);
    // Rodata (fops/proto-ops tables): replicated per process by
    // Perspective's OS support, hence part of every DSV.
    ownership_.assignRange(72, 8, kDomainReplicated);

    for (std::uint32_t size : kKmallocSizes) {
        kmallocCaches_.push_back(std::make_unique<SlabCache>(
            "kmalloc-" + std::to_string(size), size, buddy_,
            params_.secureSlab));
    }
}

CgroupId
KernelState::createCgroup(std::string name)
{
    return cgroups_.create(std::move(name));
}

Pid
KernelState::createProcess(CgroupId cgroup)
{
    Task t;
    t.pid = nextPid_++;
    t.cgroup = cgroup;
    t.domain = cgroups_.domainOf(cgroup);
    t.asid = static_cast<sim::Asid>(t.pid);

    // Context block: 4 pages of per-task kernel data.
    auto ctx = buddy_.allocPages(2, t.domain);
    if (!ctx)
        throw std::runtime_error("out of memory: context block");
    t.ctxPfn = *ctx;
    t.ctxVa = directMapVa(*ctx);

    // Kernel stack: 4 pages, vmalloc-style, tracked into the DSV.
    auto stack = buddy_.allocPages(2, t.domain);
    if (!stack)
        throw std::runtime_error("out of memory: kernel stack");
    t.stackPfn = *stack;
    t.stackTopVa = directMapVa(*stack) + 4 * sim::kPageSize - 8;

    // Pointer table at ctx+0x2800: kernel objects reference each
    // other (lists, ops pointers); generated bodies chase these.
    for (unsigned i = 0; i < 256; ++i) {
        mem_.write(t.ctxVa + 0x2800 + Addr{i} * 8,
                   t.ctxVa + ((i * 37) % 255) * 8);
    }

    // Representative implicit allocations every task owns: the task
    // struct and a standing population of dentries, inodes, vmas and
    // buffers. Real caches keep thousands of long-lived objects per
    // context, which is why transient allocations almost never leave
    // a slab page empty (Section 9.2's domain-reassignment rates).
    t.slabObjects.emplace_back(kmalloc(1024, t.domain),
                               classIndexFor(1024)); // task_struct
    t.slabObjects.emplace_back(kmalloc(512, t.domain),
                               classIndexFor(512)); // files_struct
    t.slabObjects.emplace_back(kmalloc(256, t.domain),
                               classIndexFor(256)); // cred
    for (int i = 0; i < 24; ++i) {
        t.slabObjects.emplace_back(kmalloc(256, t.domain),
                                   classIndexFor(256)); // dentries
    }
    for (int i = 0; i < 12; ++i) {
        t.slabObjects.emplace_back(kmalloc(512, t.domain),
                                   classIndexFor(512)); // inodes
    }
    for (int i = 0; i < 7; ++i) {
        // Odd count: the 2-slot 2048-byte class keeps a partial page
        // so transient skbs collocate instead of churning pages.
        t.slabObjects.emplace_back(kmalloc(2048, t.domain),
                                   classIndexFor(2048)); // skb bufs
    }

    Pid pid = t.pid;
    tasks_.emplace(pid, std::move(t));
    return pid;
}

Pid
KernelState::forkProcess(Pid parent)
{
    const Task &p = task(parent);
    std::uint32_t inherited = p.fleetBits;
    Pid child = createProcess(p.cgroup);
    task(child).fleetBits = inherited;
    return child;
}

void
KernelState::execProcess(Pid pid)
{
    // The fresh image starts from the task's inherited value with the
    // current global floor OR'd in: a task that downgraded itself
    // cannot exec its way out of fleet-wide enforcement.
    Task &t = task(pid);
    t.fleetBits = fleet_.effective(t.fleetBits);
}

void
KernelState::exitProcess(Pid pid)
{
    Task &t = task(pid);
    for (auto [va, cls] : t.slabObjects)
        kmallocCaches_[cls]->free(va);
    t.slabObjects.clear();
    for (Pfn pfn : t.userPages)
        buddy_.freePages(pfn, 0);
    t.userPages.clear();
    buddy_.freePages(t.ctxPfn, 2);
    buddy_.freePages(t.stackPfn, 2);
    t.alive = false;
    tasks_.erase(pid);
}

Task &
KernelState::task(Pid pid)
{
    auto it = tasks_.find(pid);
    if (it == tasks_.end())
        throw std::runtime_error("no such task");
    return it->second;
}

const Task &
KernelState::task(Pid pid) const
{
    auto it = tasks_.find(pid);
    if (it == tasks_.end())
        throw std::runtime_error("no such task");
    return it->second;
}

DomainId
KernelState::domainOf(Pid pid) const
{
    return task(pid).domain;
}

DomainId
KernelState::domainOfAsid(sim::Asid asid) const
{
    for (const auto &[pid, t] : tasks_) {
        if (t.alive && t.asid == asid)
            return t.domain;
    }
    return kDomainUnknown;
}

unsigned
KernelState::classIndexFor(std::uint32_t size) const
{
    for (unsigned i = 0; i < kKmallocSizes.size(); ++i) {
        if (kKmallocSizes[i] >= size)
            return i;
    }
    throw std::runtime_error("kmalloc size too large");
}

Addr
KernelState::kmalloc(std::uint32_t size, DomainId domain)
{
    Addr va = kmallocCaches_[classIndexFor(size)]->alloc(domain);
    if (va == 0)
        throw std::runtime_error("kmalloc: out of memory");
    return va;
}

void
KernelState::kfree(Addr va, std::uint32_t size)
{
    kmallocCaches_[classIndexFor(size)]->free(va);
}

SlabCache &
KernelState::cacheFor(std::uint32_t size)
{
    return *kmallocCaches_[classIndexFor(size)];
}

std::optional<Pfn>
KernelState::allocUserPage(Pid pid)
{
    Task &t = task(pid);
    auto pfn = buddy_.allocPages(0, t.domain);
    if (pfn)
        t.userPages.push_back(*pfn);
    return pfn;
}

void
KernelState::freeUserPage(Pid pid, Pfn pfn)
{
    Task &t = task(pid);
    auto it = std::find(t.userPages.begin(), t.userPages.end(), pfn);
    if (it != t.userPages.end()) {
        *it = t.userPages.back();
        t.userPages.pop_back();
    }
    buddy_.freePages(pfn, 0);
}

Addr
KernelState::globalVa(unsigned i) const
{
    assert(i < params_.numGlobals);
    // Spread globals over the 64 boot pages, 256 B apart.
    return bootGlobalVa(i);
}

KernelState::Snapshot
KernelState::snapshot() const
{
    Snapshot s;
    s.ownership = ownership_.snapshot();
    s.buddy = buddy_.snapshot();
    s.cgroups = cgroups_;
    s.slabs.reserve(kmallocCaches_.size());
    for (const auto &c : kmallocCaches_)
        s.slabs.push_back(c->snapshot());
    s.tasks = tasks_;
    s.nextPid = nextPid_;
    s.fleet = fleet_;
    return s;
}

void
KernelState::restore(const Snapshot &s)
{
    assert(s.slabs.size() == kmallocCaches_.size() &&
           "snapshot from a differently-configured kernel");
    ownership_.restore(s.ownership);
    buddy_.restore(s.buddy);
    cgroups_ = s.cgroups;
    for (std::size_t i = 0; i < kmallocCaches_.size(); ++i)
        kmallocCaches_[i]->restore(s.slabs[i]);
    tasks_ = s.tasks;
    nextPid_ = s.nextPid;
    fleet_ = s.fleet;
}

} // namespace perspective::kernel
