/**
 * @file
 * KernelState ties the substrate together: physical memory layout,
 * ownership map, buddy and slab allocators, cgroups and tasks. It is
 * the C++ (semantic) half of the miniature kernel; the IR half — the
 * kernel functions executed on the pipeline — is built by KernelImage
 * and driven per-syscall by the workload runner.
 */

#ifndef PERSPECTIVE_KERNEL_KSTATE_HH
#define PERSPECTIVE_KERNEL_KSTATE_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "buddy.hh"
#include "cgroup.hh"
#include "fleet.hh"
#include "ownership.hh"
#include "process.hh"
#include "sim/memory.hh"
#include "slab.hh"
#include "types.hh"

namespace perspective::kernel
{

/** kmalloc size classes (bytes), mirroring Linux's kmalloc-N caches. */
inline constexpr std::array<std::uint32_t, 10> kKmallocSizes = {
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};

/** Kernel configuration. */
struct KernelParams
{
    std::uint64_t numFrames = 1ull << 18; ///< 1 GiB of simulated RAM
    bool secureSlab = true; ///< Perspective's secure slab allocator
    unsigned numGlobals = 1024; ///< unknown-domain global variables
};

/** The semantic kernel. */
class KernelState
{
  public:
    explicit KernelState(sim::Memory &mem, KernelParams params = {});

    // -- contexts --------------------------------------------------------
    CgroupId createCgroup(std::string name);
    Pid createProcess(CgroupId cgroup);
    /** fork(): a new task in the parent's cgroup inheriting the
     * parent's per-task enforcement value (DEXCR semantics). */
    Pid forkProcess(Pid parent);
    /** exec(): the task keeps its enforcement value but re-syncs the
     * global floor into it — a downgraded task cannot carry the
     * weaker value into a fresh (possibly privileged) image. */
    void execProcess(Pid pid);
    void exitProcess(Pid pid);
    Task &task(Pid pid);
    const Task &task(Pid pid) const;
    DomainId domainOf(Pid pid) const;
    /** Domain of the live task running under @p asid (the leakage
     * classifier's ground-truth lookup); kDomainUnknown when none. */
    DomainId domainOfAsid(sim::Asid asid) const;
    std::size_t numTasks() const { return tasks_.size(); }

    // -- allocation ------------------------------------------------------
    /** kmalloc: slab allocation charged to @p domain. Returns VA. */
    Addr kmalloc(std::uint32_t size, DomainId domain);
    void kfree(Addr va, std::uint32_t size);

    /** Explicit allocation (mmap/page-fault): one page into the
     * task's DSV; returns its PFN. */
    std::optional<Pfn> allocUserPage(Pid pid);
    void freeUserPage(Pid pid, Pfn pfn);

    /** Slab cache serving @p size (smallest fitting class). */
    SlabCache &cacheFor(std::uint32_t size);
    unsigned classIndexFor(std::uint32_t size) const;

    // -- boot-time (unknown) regions --------------------------------------
    /** VA of unknown-provenance global variable @p i. */
    Addr globalVa(unsigned i) const;
    /** Base VA of the per-cpu area (unknown provenance). */
    Addr perCpuBase() const { return directMapVa(kPerCpuFirst); }
    unsigned numGlobals() const { return params_.numGlobals; }

    // -- accessors ---------------------------------------------------------
    OwnershipMap &ownership() { return ownership_; }
    const OwnershipMap &ownership() const { return ownership_; }
    FleetControl &fleet() { return fleet_; }
    const FleetControl &fleet() const { return fleet_; }
    /** The enforcement value @p pid actually runs under (global
     * floor OR task bits). */
    std::uint32_t
    effectiveFleetBits(Pid pid) const
    {
        return fleet_.effective(task(pid).fleetBits);
    }
    BuddyAllocator &buddy() { return buddy_; }
    CgroupRegistry &cgroups() { return cgroups_; }
    sim::Memory &memory() { return mem_; }
    const KernelParams &params() const { return params_; }
    const std::vector<std::unique_ptr<SlabCache>> &slabs() const
    {
        return kmallocCaches_;
    }

    /**
     * Checkpoint of the whole semantic kernel: ownership, allocator
     * free lists, slab pages, cgroups and tasks. Restoring rewinds
     * every allocation made since the snapshot; backing sim::Memory
     * contents are snapshotted separately (Memory::snapshot()).
     */
    struct Snapshot
    {
        OwnershipMap::Snapshot ownership;
        BuddyAllocator::Snapshot buddy;
        CgroupRegistry cgroups;
        std::vector<SlabCache::Snapshot> slabs;
        std::unordered_map<Pid, Task> tasks;
        Pid nextPid = 1;
        FleetControl fleet;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    static constexpr Pfn kGlobalsFirst = 0;   ///< 64 pages of globals
    static constexpr Pfn kPerCpuFirst = 64;   ///< 8 pages per-cpu
    static constexpr Pfn kBuddyFirst = 256;   ///< buddy-managed range

    sim::Memory &mem_;
    KernelParams params_;
    OwnershipMap ownership_;
    BuddyAllocator buddy_;
    CgroupRegistry cgroups_;
    std::vector<std::unique_ptr<SlabCache>> kmallocCaches_;
    std::unordered_map<Pid, Task> tasks_;
    Pid nextPid_ = 1;
    FleetControl fleet_;
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_KSTATE_HH
