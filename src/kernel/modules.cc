#include "modules.hh"

#include <stdexcept>

namespace perspective::kernel
{

ModuleRegistry::ModuleRegistry(const KernelImage &img,
                               sim::Memory &mem, unsigned module_size)
    : mem_(mem)
{
    if (module_size == 0)
        throw std::invalid_argument("module_size must be nonzero");

    // Deterministic carve: walk the image in FuncId order and group
    // cold functions into fixed-size modules. The hijack gadget leads
    // module 0 so the race scenario's module is always module 0.
    std::vector<sim::FuncId> cold;
    sim::FuncId hijack = img.pocHijackGadget();
    if (hijack != sim::kNoFunc)
        cold.push_back(hijack);
    for (sim::FuncId f = 0; f < img.numKernelFunctions(); ++f) {
        if (f != hijack &&
            img.classOf(f) == KernelImage::FuncClass::Cold)
            cold.push_back(f);
    }

    for (std::size_t i = 0; i < cold.size(); i += module_size) {
        Module m;
        m.entry = cold[i];
        for (std::size_t j = i;
             j < cold.size() && j < i + module_size; ++j)
            m.funcs.push_back(cold[j]);
        modules_.push_back(std::move(m));
    }
}

sim::FuncId
ModuleRegistry::load(unsigned m, unsigned fs_type, unsigned op_slot)
{
    Module &mod = modules_.at(m);
    // The ops tables store raw FuncIds (KernelImage::
    // writeRodataTables); binding the entry makes the module a live
    // indirect-dispatch target from this instant on.
    mem_.write(fopsSlotVa(fs_type, op_slot), mod.entry);
    mod.loaded = true;
    return mod.entry;
}

} // namespace perspective::kernel
