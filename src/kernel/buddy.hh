/**
 * @file
 * Buddy page allocator. The analogue of Linux's alloc_pages(): order-
 * based free lists with buddy coalescing. Every allocation records the
 * owning domain in the OwnershipMap (Section 6.1: "the kernel buddy
 * allocator obtains the cgroup ID of the current process context
 * during allocations and associates the allocated physical frames to a
 * DSV for the corresponding page in the direct map").
 */

#ifndef PERSPECTIVE_KERNEL_BUDDY_HH
#define PERSPECTIVE_KERNEL_BUDDY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ownership.hh"
#include "types.hh"

namespace perspective::kernel
{

/** Buddy allocator over a contiguous physical range. */
class BuddyAllocator
{
  public:
    static constexpr unsigned kMaxOrder = 11; // like Linux

    /**
     * @param ownership ownership map updated on alloc/free
     * @param first_pfn first managed frame
     * @param num_frames size of the managed range (power of two not
     *        required; the range is carved greedily)
     */
    BuddyAllocator(OwnershipMap &ownership, Pfn first_pfn,
                   std::uint64_t num_frames);

    /**
     * Allocate 2^order contiguous frames for @p domain. Returns the
     * first PFN, or nullopt when memory is exhausted.
     */
    std::optional<Pfn> allocPages(unsigned order, DomainId domain);

    /** Free a block previously returned by allocPages. */
    void freePages(Pfn pfn, unsigned order);

    /** Frames currently allocated. */
    std::uint64_t allocatedFrames() const { return allocated_; }

    /** Frames managed in total. */
    std::uint64_t totalFrames() const { return total_; }

    /** Allocation call count (for experiment bookkeeping). */
    std::uint64_t allocCount() const { return allocCount_; }

    /** Free-list checkpoint (the managed range is immutable). */
    struct Snapshot
    {
        std::uint64_t allocated = 0;
        std::uint64_t allocCount = 0;
        std::vector<std::vector<std::uint64_t>> freeLists;
        std::vector<std::uint8_t> orderOf;
    };

    Snapshot
    snapshot() const
    {
        return {allocated_, allocCount_, freeLists_, orderOf_};
    }

    void
    restore(const Snapshot &s)
    {
        allocated_ = s.allocated;
        allocCount_ = s.allocCount;
        freeLists_ = s.freeLists;
        orderOf_ = s.orderOf;
    }

  private:
    struct Block
    {
        Pfn pfn;
    };

    std::uint64_t buddyOf(std::uint64_t rel, unsigned order) const;
    void insertFree(Pfn pfn, unsigned order);
    bool removeFree(Pfn pfn, unsigned order);

    OwnershipMap &ownership_;
    Pfn firstPfn_;
    std::uint64_t total_;
    std::uint64_t allocated_ = 0;
    std::uint64_t allocCount_ = 0;
    std::vector<std::vector<std::uint64_t>> freeLists_; ///< rel pfns
    std::vector<std::uint8_t> orderOf_; ///< alloc order per rel pfn
};

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_BUDDY_HH
