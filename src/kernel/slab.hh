/**
 * @file
 * Slab allocator with two operating modes:
 *
 *  - normal: Linux-style packing — objects of every context share
 *    pages (and even cache lines), which is exactly the collocation
 *    hazard Section 5.2 describes;
 *  - secure: Perspective's secure slab allocator — each cgroup gets
 *    its own page lists for each slab cache, eliminating collocation
 *    at page granularity. When a page drains it is returned to the
 *    buddy allocator, a *domain reassignment* (Section 9.2).
 */

#ifndef PERSPECTIVE_KERNEL_SLAB_HH
#define PERSPECTIVE_KERNEL_SLAB_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "buddy.hh"
#include "types.hh"

namespace perspective::kernel
{

/** One slab cache serving a fixed object size. */
class SlabCache
{
  public:
    /**
     * @param name cache name (slabinfo style)
     * @param object_size bytes per object (8..4096)
     * @param buddy backing page source
     * @param secure per-cgroup isolation on/off
     */
    SlabCache(std::string name, std::uint32_t object_size,
              BuddyAllocator &buddy, bool secure);

    /** Allocate one object on behalf of @p domain; returns its VA. */
    sim::Addr alloc(DomainId domain);

    /** Return an object. */
    void free(sim::Addr va);

    const std::string &name() const { return name_; }
    std::uint32_t objectSize() const { return objectSize_; }
    bool secure() const { return secure_; }

    /** @name slabtop-style metrics
     * @{ */
    std::uint64_t activeObjects() const { return active_; }
    std::uint64_t totalSlots() const;
    std::uint64_t pagesInUse() const { return pages_.size(); }
    /** active bytes / backed bytes, 1.0 when perfectly packed. */
    double utilization() const;
    /** frees that drained a page back to the buddy allocator. */
    std::uint64_t domainReassignments() const { return reassigns_; }
    std::uint64_t totalFrees() const { return frees_; }
    std::uint64_t totalAllocs() const { return allocs_; }
    /** @} */

    /**
     * Domain that would be *charged* for the page containing @p va.
     * In normal mode this is whoever faulted the page in first — the
     * collocation hazard — while in secure mode it is the only domain
     * with objects in the page.
     */
    DomainId pageDomain(sim::Addr va) const;

    struct Snapshot; // page lists + metrics; see below

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    struct Page
    {
        Pfn pfn = 0;
        DomainId domain = kDomainUnknown;
        std::vector<bool> used; ///< slot occupancy
        std::uint32_t usedCount = 0;
    };

    std::uint32_t slotsPerPage() const;
    Page *grabPartialPage(DomainId domain);

    std::string name_;
    std::uint32_t objectSize_;
    BuddyAllocator &buddy_;
    bool secure_;

    std::unordered_map<Pfn, Page> pages_;
    /** Partial pages with free slots, keyed by domain (normal mode
     * uses a single shared key). */
    std::map<DomainId, std::vector<Pfn>> partial_;

    std::uint64_t active_ = 0;
    std::uint64_t allocs_ = 0;
    std::uint64_t frees_ = 0;
    std::uint64_t reassigns_ = 0;
};

/** Everything that changes after construction; name/size/mode and the
 * buddy binding are fixed at construction and not part of it. */
struct SlabCache::Snapshot
{
    std::unordered_map<Pfn, Page> pages;
    std::map<DomainId, std::vector<Pfn>> partial;
    std::uint64_t active = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t reassigns = 0;
};

inline SlabCache::Snapshot
SlabCache::snapshot() const
{
    return {pages_, partial_, active_, allocs_, frees_, reassigns_};
}

inline void
SlabCache::restore(const Snapshot &s)
{
    pages_ = s.pages;
    partial_ = s.partial;
    active_ = s.active;
    allocs_ = s.allocs;
    frees_ = s.frees;
    reassigns_ = s.reassigns;
}

} // namespace perspective::kernel

#endif // PERSPECTIVE_KERNEL_SLAB_HH
