#include "cellcache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "sweep.hh" // buildGitDescribe

namespace perspective::harness
{

namespace fs = std::filesystem;

namespace
{

/** FNV-1a 64 of @p parts with a field separator, as 16 hex digits
 * (same construction as cellConfigHash). */
std::string
fnvHex(std::initializer_list<std::string> parts)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const std::string &s : parts) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0x1f;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

std::string
codeFingerprint(unsigned epoch)
{
    return fnvHex({buildGitDescribe(), std::to_string(epoch)});
}

CellCache::CellCache(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fp_(std::move(fingerprint))
{
    if (!persistent())
        return;
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / fp_, ec);
    fs::create_directories(fs::path(dir_) / "costs", ec);
    if (ec) {
        std::fprintf(stderr,
                     "cellcache: cannot create '%s' (%s); caching "
                     "disabled\n",
                     dir_.c_str(), ec.message().c_str());
        dir_.clear();
    }
}

std::string
CellCache::cellPath(const std::string &configHash) const
{
    return (fs::path(dir_) / fp_ / (configHash + ".json")).string();
}

std::string
CellCache::costPath(const std::string &costKey) const
{
    return (fs::path(dir_) / "costs" / costKey).string();
}

namespace
{

/** Cost-table key: the config hash plus an explicit execution-mode
 * suffix. The mode is also mixed into the config hash itself, but
 * the suffix keeps the cost files self-describing and guards the
 * timing estimates if the hash recipe ever stops covering the mode
 * (costs are epoch-independent, so they outlive hash changes). */
std::string
costKeyOf(const std::string &configHash, ExecMode mode)
{
    switch (mode) {
    case ExecMode::FastForward:
        return configHash + "-ff";
    case ExecMode::Sampled:
        return configHash + "-sampled";
    case ExecMode::Detailed:
        break;
    }
    return configHash;
}

} // namespace

std::optional<Json>
CellCache::load(const std::string &configHash)
{
    if (!persistent())
        return std::nullopt;
    auto miss = [this]() -> std::optional<Json> {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.misses;
        return std::nullopt;
    };
    std::ifstream is(cellPath(configHash));
    if (!is)
        return miss();
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        Json cell = Json::parse(buf.str());
        if (!cell.isObject())
            return miss();
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.hits;
        return cell;
    } catch (const std::exception &) {
        // Corrupt entry (interrupted non-atomic writer, disk fault):
        // a miss, and the re-run's store() will repair it.
        return miss();
    }
}

bool
CellCache::atomicWrite(const std::string &path,
                       const std::string &contents)
{
    std::uint64_t n;
    {
        std::lock_guard<std::mutex> lk(mu_);
        n = tmpCounter_++;
    }
    // Unique per (process, store call): concurrent CI jobs sharing
    // the directory never collide on the temp name, and rename() is
    // atomic within a filesystem, so readers see old-or-new, never
    // partial.
    std::string tmp = path + ".tmp." +
                      std::to_string(::getpid()) + "." +
                      std::to_string(n);
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << contents;
        if (!os.flush())
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
CellCache::store(const std::string &configHash, const Json &cell)
{
    if (!persistent())
        return false;
    if (!atomicWrite(cellPath(configHash), cell.dump(2)))
        return false;
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.stores;
    return true;
}

std::optional<double>
CellCache::loadCost(const std::string &configHash, ExecMode mode)
{
    const std::string key = costKeyOf(configHash, mode);
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = memCosts_.find(key);
        if (it != memCosts_.end())
            return it->second;
    }
    if (!persistent())
        return std::nullopt;
    std::ifstream is(costPath(key));
    double secs = 0;
    if (!(is >> secs) || secs < 0)
        return std::nullopt;
    std::lock_guard<std::mutex> lk(mu_);
    memCosts_.emplace(key, secs);
    return secs;
}

void
CellCache::storeCost(const std::string &configHash, ExecMode mode,
                     double seconds)
{
    const std::string key = costKeyOf(configHash, mode);
    {
        std::lock_guard<std::mutex> lk(mu_);
        memCosts_[key] = seconds;
    }
    if (!persistent())
        return;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g\n", seconds);
    atomicWrite(costPath(key), buf);
}

CellCache::Stats
CellCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace perspective::harness
