/**
 * @file
 * Length-prefixed JSON framing over local stream sockets — the wire
 * protocol of the sweep fleet (fleet.hh). A frame is
 *
 *   'P' 'F' 'L' '1'            4-byte magic/version
 *   u32 little-endian length   payload byte count
 *   payload                    one JSON document, UTF-8
 *
 * Frames are self-delimiting, so a reader can always tell a complete
 * message from a truncated one: a short read (peer died mid-frame),
 * a bad magic (foreign speaker), or an oversized length (corruption)
 * all surface as clean errors, never as a partial JSON parse. The
 * payload is ordinary harness Json, so every message is printable
 * and the tests can fuzz truncations without a socket.
 *
 * Blocking I/O is deliberate: frames are small (a work order is a
 * grid index; a result is one cell JSON), both ends are local, and
 * the coordinator multiplexes readiness with poll(2) before reading
 * a frame, so a blocking readFrame only ever waits on a peer that
 * has started a frame — a dead peer closes the socket and the read
 * fails instead of hanging.
 */

#ifndef PERSPECTIVE_HARNESS_PROTO_HH
#define PERSPECTIVE_HARNESS_PROTO_HH

#include <cstdint>
#include <optional>
#include <string>

#include "json.hh"

namespace perspective::harness::proto
{

/** Frame magic ("PFL1"): protocol name + wire version. */
inline constexpr char kMagic[4] = {'P', 'F', 'L', '1'};

/** Upper bound on a payload; a length beyond this is corruption (the
 * largest real message is one sweep cell, a few hundred KiB). */
inline constexpr std::uint32_t kMaxFrame = 64u << 20;

/** Outcome of a frame read. */
enum class ReadStatus
{
    Ok,    ///< a complete frame was decoded into the out-param
    Eof,   ///< orderly close on a frame boundary (no bytes read)
    Error, ///< truncated frame, bad magic/length, or I/O error
};

/** Serialize @p msg into a complete frame (header + payload). */
std::string encodeFrame(const Json &msg);

/**
 * Write one frame to @p fd, retrying short writes. Returns false on
 * any I/O error (EPIPE included — writes use MSG_NOSIGNAL, so a dead
 * peer fails the call instead of killing the process).
 */
bool writeFrame(int fd, const Json &msg);

/**
 * Read one complete frame from @p fd into @p out. Eof is returned
 * only when the peer closed cleanly *between* frames; a close after
 * the first header byte is a truncated frame and reads as Error,
 * with @p error describing what broke (including JSON parse errors
 * in the payload).
 */
ReadStatus readFrame(int fd, Json &out, std::string *error = nullptr);

/**
 * Create, bind, and listen on an AF_UNIX stream socket at @p path
 * (unlinking any stale socket first). Returns the listening fd, or
 * -1 with @p error set.
 */
int listenUnix(const std::string &path, std::string *error);

/** Connect to the AF_UNIX socket at @p path; -1 + @p error on
 * failure. */
int connectUnix(const std::string &path, std::string *error);

} // namespace perspective::harness::proto

#endif // PERSPECTIVE_HARNESS_PROTO_HH
