/**
 * @file
 * Fixed-size worker thread pool for the sweep runner. Tasks are
 * plain closures; wait() blocks the submitting thread until every
 * task submitted so far has finished, so a sweep can join its whole
 * grid before rendering results.
 */

#ifndef PERSPECTIVE_HARNESS_POOL_HH
#define PERSPECTIVE_HARNESS_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perspective::harness
{

/**
 * A minimal thread pool. With zero threads requested the pool runs
 * every task inline on the submitting thread, which keeps single-job
 * sweeps free of any threading machinery (and trivially
 * deterministic to debug under).
 */
class ThreadPool
{
  public:
    /** Spin up @p threads workers; 0 means run tasks inline. */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed. If any task
     * threw, the first exception (in completion order) is rethrown
     * here — the task still counts as completed, so wait() never
     * hangs on a throwing task. Later exceptions of the same batch
     * are dropped.
     */
    void wait();

    unsigned threads() const { return numThreads_; }

    /**
     * 0-based index of the pool worker executing the current thread,
     * or 0 outside a pool worker (inline mode runs on the submitting
     * thread). Lets tasks attribute their runtime to a worker lane.
     *
     * Caveat: the index is whatever pool owns the current thread.
     * Code that can run under *nested* pools (a fleet worker process
     * executes cells on an inline pool while living inside another
     * binary's thread) must use currentLane() on the specific pool
     * it is accounting against, or lanes of the wrong pool leak into
     * schedule.worker_busy[].
     */
    static unsigned currentWorker();

    /**
     * Lane of the current thread *in this pool*: the worker index if
     * the calling thread is one of this pool's workers, else 0 (the
     * inline-mode lane). Unlike currentWorker(), a thread belonging
     * to some other pool reports lane 0 here, so per-pool accounting
     * stays correct under nesting.
     */
    unsigned currentLane() const;

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop(unsigned worker);

    unsigned numThreads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0; ///< queued + currently running
    bool stopping_ = false;
    std::exception_ptr firstError_; ///< rethrown by wait()
};

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_POOL_HH
