#include "chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace perspective::harness
{

Json
chromeTraceJson(const sim::trace::EventLog &log)
{
    std::vector<sim::trace::Event> events = log.snapshot();
    std::stable_sort(events.begin(), events.end(),
                     [](const auto &a, const auto &b) {
                         if (a.lane != b.lane)
                             return a.lane < b.lane;
                         if (a.start != b.start)
                             return a.start < b.start;
                         return a.seq < b.seq;
                     });

    Json::Array out;
    out.reserve(events.size());
    for (const sim::trace::Event &ev : events) {
        Json::Object o;
        o["name"] = ev.name;
        o["cat"] = sim::trace::flagName(ev.flag);
        o["pid"] = std::uint64_t{1};
        o["tid"] = static_cast<std::uint64_t>(ev.lane + 1);
        o["ts"] = ev.start;
        if (ev.dur > 0) {
            o["ph"] = "X";
            o["dur"] = ev.dur;
        } else {
            o["ph"] = "i";
            o["s"] = "t"; // thread-scoped instant
        }
        Json::Object args;
        args["seq"] = ev.seq;
        args["func"] = ev.func;
        args["kernel"] = ev.kernel;
        if (ev.issue > 0)
            args["issue"] = ev.issue;
        o["args"] = std::move(args);
        out.emplace_back(std::move(o));
    }

    Json::Object doc;
    doc["traceEvents"] = std::move(out);
    doc["displayTimeUnit"] = "ms";
    Json::Object other;
    other["clock"] = "1 trace us == 1 simulated cycle";
    other["dropped_events"] = log.dropped();
    Json::Array perLane;
    for (std::uint64_t d : log.droppedByLane())
        perLane.emplace_back(d);
    other["dropped_by_lane"] = std::move(perLane);
    doc["otherData"] = std::move(other);
    return Json(std::move(doc));
}

bool
writeChromeTrace(const sim::trace::EventLog &log,
                 const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr,
                     "trace: cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    chromeTraceJson(log).write(os, 1);
    os.put('\n');
    if (!os.flush()) {
        std::fprintf(stderr, "trace: short write to '%s'\n",
                     path.c_str());
        return false;
    }
    std::printf("[trace: %zu events (%llu dropped) -> %s]\n",
                log.size(),
                static_cast<unsigned long long>(log.dropped()),
                path.c_str());
    return true;
}

} // namespace perspective::harness
