/**
 * @file
 * Sweep fleet: a coordinator process that owns the grid and hands
 * out cells one at a time to worker processes over an AF_UNIX
 * socket (wire format: proto.hh). Idle workers pull the next cell,
 * so load balancing is work stealing by construction — no static
 * assignment exists to go stale when cell costs are skewed (detailed
 * vs fast-forward cells differ ~3x; leak-budget sweeps far more).
 *
 * Roles:
 *  - FleetCoordinator (bench run with --fleet N / --fleet-socket):
 *    listens, spawns N copies of its own binary as workers
 *    (`<bench> --connect PATH`), dispatches cell indices
 *    longest-estimated-first, collects result cells, and re-queues
 *    the in-flight cell of any worker that dies mid-cell — a crash
 *    degrades throughput, never correctness. The coordinator alone
 *    touches the cell-cache directory.
 *  - FleetWorker (bench run with --connect PATH): connects, serves
 *    cells through the ordinary in-process execution path, streams
 *    each result back, and stays warm across batches — its
 *    boot-snapshot cache (PR 3) persists, so every cell after the
 *    first of a seed restores copy-on-write instead of rebooting.
 *
 * Both roles are the *same bench binary* running the same main(), so
 * coordinator and workers construct identical cell grids; the wire
 * only ever carries cell indices and result JSON. A per-batch grid
 * hash plus the code fingerprint in the hello handshake reject a
 * mismatched worker before it can compute a wrong cell.
 *
 * Determinism: results land in slots indexed by grid position, so
 * output order is the grid order regardless of which worker finished
 * which cell when (same argument as the thread-pool runner).
 */

#ifndef PERSPECTIVE_HARNESS_FLEET_HH
#define PERSPECTIVE_HARNESS_FLEET_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "json.hh"

namespace perspective::harness
{

/** Fleet-schedule accounting, accumulated across batches; lands in
 * the sweep JSON as schedule.fleet{...}. */
struct FleetStats
{
    /** Distinct workers that completed the hello handshake. */
    unsigned workers = 0;
    /** Dispatches that deviated from the static longest-processing-
     * time plan computed at batch start — how much work stealing
     * actually moved relative to a static assignment. */
    std::uint64_t steals = 0;
    /** Cells re-queued because their worker died mid-cell. */
    std::uint64_t stragglersResent = 0;
    /** Cells completed per worker id. */
    std::vector<std::uint64_t> cellsPerWorker;
    /** Wall seconds of completed cells per worker id. */
    std::vector<double> busyPerWorker;
};

/** The grid-owning dispatcher; one per coordinator process. */
class FleetCoordinator
{
  public:
    struct Options
    {
        /** Workers to spawn (fork+exec of workerArgv + --connect).
         * 0 = rely on externally attached workers only. */
        unsigned spawnWorkers = 0;
        /** Listen path; empty synthesizes a per-process /tmp path. */
        std::string socketPath;
        /** argv (binary first) for spawned workers, without the
         * --connect flag (appended here). */
        std::vector<std::string> workerArgv;
        std::string benchName;
        /** Print per-cell progress to stderr. */
        bool verbose = false;
    };

    /** Binds + listens; worker spawning is deferred to the first
     * batch with work, so fully cached sweeps spawn nothing. */
    explicit FleetCoordinator(Options opts);
    ~FleetCoordinator();

    FleetCoordinator(const FleetCoordinator &) = delete;
    FleetCoordinator &operator=(const FleetCoordinator &) = delete;

    /** Completed cell: grid index, serving worker id, the cell's
     * result JSON (the worker's cellToJson output). */
    using ResultFn =
        std::function<void(std::size_t, unsigned, const Json &)>;

    /**
     * Dispatch one batch: @p queue holds cell indices in dispatch
     * order (longest-estimated-first), @p costs the matching cost
     * estimates (for the static-plan steal accounting). Blocks until
     * every queued cell has a result; @p onResult fires in
     * completion order. Throws std::runtime_error when the fleet
     * cannot finish (every worker died with cells outstanding).
     */
    void runBatch(std::uint64_t batch, const std::string &gridHash,
                  const std::vector<std::size_t> &queue,
                  const std::vector<double> &costs,
                  const ResultFn &onResult);

    const FleetStats &stats() const { return stats_; }
    const std::string &socketPath() const { return path_; }

  private:
    struct Conn
    {
        int fd = -1;
        int id = -1;          ///< worker id; -1 until first hello
        bool inBatch = false; ///< welcomed into the current batch
        bool waiting = false; ///< sent req; held for work/batch_done
        long assigned = -1;   ///< cell index in flight, -1 = none
    };

    void spawnWorkers();
    void reapChildren();
    /** Drop conns_[i]; re-queues its in-flight cell into @p queue. */
    void dropConn(std::size_t i, std::deque<std::size_t> &queue);

    Options opts_;
    std::string path_;
    int listenFd_ = -1;
    bool spawned_ = false;
    std::vector<Conn> conns_;
    std::vector<pid_t> children_;
    std::size_t childrenLive_ = 0;
    unsigned nextId_ = 0;
    FleetStats stats_;
    std::string fingerprint_;
    /** This process's sampling spec (PERSPECTIVE_SAMPLE); workers
     * whose hello reports a different spec are rejected — a sampled
     * coordinator mixing exact worker results (or vice versa) would
     * silently blend statistical and exact cells. */
    std::string sampling_;
};

/** The serving side; one per worker process. */
class FleetWorker
{
  public:
    explicit FleetWorker(std::string connectPath);
    ~FleetWorker();

    FleetWorker(const FleetWorker &) = delete;
    FleetWorker &operator=(const FleetWorker &) = delete;

    /** Execute grid cell @p index and return its result JSON. */
    using ExecFn = std::function<Json(std::size_t)>;

    /**
     * Serve one batch: hello, then pull cells until batch_done.
     * Returns the number of cells served. Returns 0 without serving
     * when the coordinator is already past @p batch (every cell was
     * cached, say) or has exited between batches — both mean this
     * worker's batch completed without it. Throws on a protocol
     * error, a rejected handshake, or a coordinator death mid-batch.
     */
    std::size_t serveBatch(std::uint64_t batch,
                           const std::string &gridHash,
                           const std::string &benchName,
                           const ExecFn &exec);

    /** Coordinator finished/closed; later batches serve nothing. */
    bool coordinatorGone() const { return gone_; }
    unsigned workerId() const { return id_; }

  private:
    void ensureConnected();

    std::string path_;
    int fd_ = -1;
    bool gone_ = false;
    unsigned id_ = 0;
    std::uint64_t cellsExecuted_ = 0;
    // Fault-injection hook (PERSPECTIVE_FLEET_CHAOS="ID:N"): worker
    // ID dies silently right before sending its Nth result, so CI
    // can rehearse the mid-cell requeue path deterministically.
    long chaosWorker_ = -1;
    std::uint64_t chaosAfter_ = 0;
};

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_FLEET_HH
