#include "proto.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace perspective::harness::proto
{

namespace
{

void
setError(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
}

/** Read exactly @p len bytes; returns bytes read (< len on EOF/err). */
std::size_t
readFull(int fd, char *buf, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, buf + got, len - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN))
            continue;
        break; // EOF (0) or hard error
    }
    return got;
}

bool
writeFull(int fd, const char *buf, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        // MSG_NOSIGNAL: a peer that died turns into EPIPE here, not
        // a process-wide SIGPIPE.
        ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN))
            continue;
        return false;
    }
    return true;
}

} // namespace

std::string
encodeFrame(const Json &msg)
{
    std::string payload = msg.dump();
    std::string frame;
    frame.reserve(8 + payload.size());
    frame.append(kMagic, 4);
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    frame += payload;
    return frame;
}

bool
writeFrame(int fd, const Json &msg)
{
    std::string frame = encodeFrame(msg);
    return writeFull(fd, frame.data(), frame.size());
}

ReadStatus
readFrame(int fd, Json &out, std::string *error)
{
    char header[8];
    std::size_t got = readFull(fd, header, sizeof header);
    if (got == 0) {
        setError(error, "eof");
        return ReadStatus::Eof;
    }
    if (got < sizeof header) {
        setError(error, "truncated frame header (" +
                            std::to_string(got) + " of 8 bytes)");
        return ReadStatus::Error;
    }
    if (std::memcmp(header, kMagic, 4) != 0) {
        setError(error, "bad frame magic");
        return ReadStatus::Error;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(header[4 + i]))
               << (8 * i);
    if (len > kMaxFrame) {
        setError(error,
                 "frame length " + std::to_string(len) +
                     " exceeds limit " + std::to_string(kMaxFrame));
        return ReadStatus::Error;
    }
    std::string payload(len, '\0');
    if (readFull(fd, payload.data(), len) < len) {
        setError(error, "truncated frame payload");
        return ReadStatus::Error;
    }
    try {
        out = Json::parse(payload);
    } catch (const std::exception &ex) {
        setError(error, std::string("frame payload: ") + ex.what());
        return ReadStatus::Error;
    }
    return ReadStatus::Ok;
}

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        setError(error, "socket path too long: " + path);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, std::string("socket: ") + std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str()); // stale socket from a crashed run
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        setError(error, "bind/listen '" + path +
                            "': " + std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        setError(error, "socket path too long: " + path);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, std::string("socket: ") + std::strerror(errno));
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        setError(error, "connect '" + path +
                            "': " + std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace perspective::harness::proto
