/**
 * @file
 * Sweep runner: every figure in the paper is a grid of
 * (workload x scheme) cells, each booting a fresh simulated stack.
 * An Experiment owns its own Memory/KernelImage/Pipeline, so cells
 * are share-nothing and embarrassingly parallel. The runner executes
 * a grid on a thread pool, returns results in deterministic grid
 * order regardless of completion order, and can emit the whole sweep
 * as JSON for machine consumption (--json / PERSPECTIVE_BENCH_JSON),
 * with --jobs / PERSPECTIVE_JOBS controlling parallelism.
 *
 * Three sweep-scaling layers sit on top:
 *  - a persistent cell cache (--cache-dir / PERSPECTIVE_CACHE_DIR,
 *    --no-cache): cells whose (config hash x code fingerprint) was
 *    simulated before are served from disk, marked "cached": true,
 *    with their original provenance — see cellcache.hh;
 *  - deterministic sharding (--shard K/N / PERSPECTIVE_SHARD): each
 *    process runs the cells a stable hash assigns to its shard and
 *    emits a normal sweep JSON; bench_report --merge recombines;
 *  - cost-aware scheduling: cells are submitted longest-first using
 *    cached wall seconds (falling back to a work-size heuristic for
 *    unseen cells), which trims the makespan tail while results stay
 *    in deterministic grid order. The measured schedule (makespan,
 *    ideal makespan, per-worker busy time) lands in the JSON.
 */

#ifndef PERSPECTIVE_HARNESS_SWEEP_HH
#define PERSPECTIVE_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cellcache.hh"
#include "json.hh"
#include "pool.hh"
#include "sim/trace.hh"
#include "workloads/experiment.hh"

namespace perspective::harness
{

class FleetCoordinator;
class FleetWorker;

/** One grid cell: a workload under a scheme with a seed. */
struct SweepCell
{
    workloads::WorkloadProfile profile;
    workloads::Scheme scheme = workloads::Scheme::Unsafe;
    std::uint64_t seed = 42;
    unsigned iterations = 30;
    unsigned warmup = 3;

    /** Fast-forward execution mode (timing-exact; DESIGN §5.5).
     * Part of the cell's config hash: although results are
     * bit-identical by contract, the modes must never share cache
     * entries — a cached cell must replay the mode that produced
     * it. Defaults to the PERSPECTIVE_FASTFWD environment switch. */
    bool fastForward = workloads::Experiment::fastForwardDefault();

    /** Sampled simulation (statistical; DESIGN §5.8). Enabled cells
     * mix the full sampling spec into the config hash, so sampled
     * and exact cells never share cache entries or cost-table rows;
     * exact cells hash byte-identically to earlier schemas. Defaults
     * to the PERSPECTIVE_SAMPLE environment switch. */
    sim::SamplingParams sampling = sim::SamplingParams::fromEnv();

    /** Free-form metadata carried into the result and the JSON
     * emission (e.g. an ablation's config knob values). */
    std::map<std::string, std::string> tags;

    /**
     * Optional custom cell body. When empty the runner constructs
     * Experiment(profile, scheme, seed) and calls
     * run(iterations, warmup). Custom bodies (ablations wiring
     * bespoke PerspectiveConfigs) must stay share-nothing: build
     * every simulation object inside the callback.
     */
    std::function<workloads::RunResult(const SweepCell &)> body;
};

/** Outcome of one cell, plus wall-clock cost and metadata. */
struct CellResult
{
    std::string workload;
    std::string scheme;
    std::uint64_t seed = 0;
    unsigned iterations = 0;
    unsigned warmup = 0;
    bool fastForward = false;
    /** Sampling configuration the cell ran under (disabled = exact);
     * the outcome lives in result.sampling. */
    sim::SamplingParams sampling;
    std::map<std::string, std::string> tags;

    workloads::RunResult result;
    double wallSeconds = 0;

    bool ok = false;
    std::string error; ///< exception text when !ok

    /** Position in the accumulated grid (across run() calls); the
     * key shard merging recombines on. */
    std::uint64_t gridIndex = 0;

    /** Served from the persistent cell cache: `result` and
     * `wallSeconds` are the original run's, `raw` re-emits the
     * original JSON (provenance included) verbatim. */
    bool cached = false;
    std::shared_ptr<const Json> raw;

    /** Owned by another shard: not executed, excluded from JSON
     * emission, zeroed result. */
    bool skipped = false;

    /** Pool worker lane that executed the cell (0 when cached,
     * skipped, or run inline). */
    unsigned worker = 0;
};

/** Parallelism / emission knobs, usually parsed from argv + env. */
struct SweepOptions
{
    std::string benchName;
    unsigned jobs = 0;     ///< 0 = hardware concurrency
    std::string jsonPath;  ///< empty = no JSON emission
    std::string tracePath; ///< empty = no Chrome trace emission

    /** Persistent cell-cache directory; empty = no cache. */
    std::string cacheDir;
    /** --no-cache: ignore cacheDir/PERSPECTIVE_CACHE_DIR entirely
     * (benches that measure wall time force this). */
    bool noCache = false;

    /** Deterministic grid partition `--shard K/N` (1-based K). The
     * runner executes only the cells whose config-hash shard is K;
     * bench_report --merge recombines the N emitted files. */
    unsigned shardIndex = 1;
    unsigned shardCount = 1;
    bool sharded() const { return shardCount > 1; }

    /** Fleet mode (fleet.hh, DESIGN §5.7): `--fleet N` makes this
     * process the grid-owning coordinator, spawning N worker copies
     * of itself; `--fleet-socket PATH` fixes the listen path (given
     * alone: a coordinator serving externally attached workers
     * only); `--connect PATH` makes this process a worker of the
     * coordinator at PATH. Mutually exclusive with --shard. */
    unsigned fleetWorkers = 0;
    std::string fleetSocket;
    std::string connectPath;
    /** Spawn command for fleet workers (binary path; the coordinator
     * appends --connect). */
    std::vector<std::string> workerArgv;
    bool fleetCoordinator() const
    {
        return fleetWorkers > 0 || !fleetSocket.empty();
    }
    bool fleetWorker() const { return !connectPath.empty(); }

    /** Effective worker count after defaulting. */
    unsigned effectiveJobs() const;
};

/**
 * Parse `--jobs N` / `--json PATH` / `--trace-out PATH` /
 * `--cache-dir PATH` / `--no-cache` / `--shard K/N` / `--fleet N` /
 * `--fleet-socket PATH` / `--connect PATH` (and `--help`) from argv,
 * with PERSPECTIVE_JOBS / PERSPECTIVE_BENCH_JSON /
 * PERSPECTIVE_TRACE_OUT / PERSPECTIVE_CACHE_DIR / PERSPECTIVE_SHARD
 * as environment fallbacks (the fleet flags are argv-only: a worker
 * inheriting a coordinator's environment must not become a
 * coordinator). Unknown arguments print usage and exit(2).
 */
SweepOptions parseSweepArgs(const std::string &bench_name, int argc,
                            char **argv);

/**
 * Which shard (0-based, in [0, shardCount)) owns the cell with
 * @p configHash. Keyed on the stable config hash rather than grid
 * position, so a cell stays on its shard as grids grow or reorder
 * and the partition stays balanced (the hash is uniform).
 */
unsigned shardOf(const std::string &configHash, unsigned shardCount);

/** Build-time `git describe` of this binary ("unknown" outside a
 * checkout); stamped into every emitted result's provenance. */
const char *buildGitDescribe();

/**
 * Runs cell grids and accumulates their results. A bench binary may
 * call run() several times (one per table section); emitJson()
 * writes everything accumulated so far.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts);

    /**
     * Execute @p cells and return their results in grid order.
     * Cell failures (exceptions) are captured per-cell in
     * CellResult::error rather than tearing down the sweep.
     */
    std::vector<CellResult> run(const std::vector<SweepCell> &cells);

    /** Everything accumulated across run() calls, in order. */
    const std::vector<CellResult> &results() const
    {
        return results_;
    }

    /** Total wall-clock seconds spent inside run(). */
    double wallSeconds() const { return wallSeconds_; }

    unsigned jobs() const { return opts_.effectiveJobs(); }

    bool sharded() const { return opts_.sharded(); }
    unsigned shardIndex() const { return opts_.shardIndex; }
    unsigned shardCount() const { return opts_.shardCount; }

    /** This runner dispatches cells to fleet workers (fleet.hh). */
    bool isFleetCoordinator() const { return fleet_ != nullptr; }
    /** This runner serves cells to a fleet coordinator; it owns no
     * outputs (no JSON/trace/tables) and never touches the cache
     * directory. */
    bool isFleetWorker() const { return fleetClient_ != nullptr; }

    /** The cell cache (always present; memory-only without a
     * directory). */
    CellCache &cache() { return *cache_; }
    const CellCache &cache() const { return *cache_; }

    /** The sweep as a JSON document. */
    Json toJson() const;

    /**
     * If a JSON path is configured, write the sweep there and print
     * a one-line note; returns false on I/O failure. No-op (true)
     * when no path is configured.
     */
    bool emitJson() const;

    /**
     * If a trace path is configured, write the structured event log
     * there as Chrome trace JSON. No-op (true) when no path is
     * configured.
     */
    bool emitTrace() const;

    /** emitJson() and emitTrace(); false if either failed. */
    bool emitOutputs() const;

    /** The structured event log backing --trace-out (nullptr when
     * tracing is off). */
    sim::trace::EventLog *traceLog() const { return traceLog_.get(); }

    ~SweepRunner();

  private:
    std::vector<CellResult>
    runAsFleetWorker(const std::vector<SweepCell> &cells);

    SweepOptions opts_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<CellCache> cache_;
    std::unique_ptr<sim::trace::EventLog> traceLog_;
    std::unique_ptr<FleetCoordinator> fleet_;
    std::unique_ptr<FleetWorker> fleetClient_;
    std::vector<CellResult> results_;
    double wallSeconds_ = 0;
    std::uint64_t nextGridIndex_ = 0;
    /** run() call ordinal; coordinator and workers execute the same
     * bench main, so the ordinal alone identifies a batch. */
    std::uint64_t batch_ = 0;

    // Cost-aware schedule accounting (accumulated across run()s).
    double idealMakespan_ = 0;
    std::vector<double> workerBusy_;
    std::uint64_t executedCells_ = 0;
    std::uint64_t cachedCells_ = 0;
    std::uint64_t skippedCells_ = 0;
    /** Fleet only: estimated makespan a static --shard split across
     * the same worker count would have had (measured per-cell walls
     * summed per hash-shard, max over shards, accumulated across
     * batches) — the work-stealing speedup denominator. */
    double fleetStaticShardEst_ = 0;
};

/**
 * Recombine shard sweep JSONs (same bench, build, and N) into one
 * complete sweep document: cells sorted back into grid order, cache
 * stats summed, wall_seconds the max shard (shards run
 * concurrently). Returns std::nullopt and sets @p error when the
 * inputs overlap (duplicate shard index or cell), leave grid holes,
 * disagree on the grid size / shard count / build, or predate the
 * sharding schema.
 */
std::optional<Json> mergeSweeps(const std::vector<Json> &shards,
                                const std::vector<std::string> &names,
                                std::string &error);

/** Rebuild a CellResult from a cached cell JSON (scalar metrics and
 * counters; the raw JSON rides along for verbatim emission). */
CellResult cellFromCachedJson(const Json &cell);

/**
 * JSON object for one cell result (schema used by emitJson): raw
 * metrics, the full counter StatSet, histogram summaries, sampled
 * time series, and a provenance block (scheme, workload, config
 * hash, git describe, wall seconds, host jobs).
 */
Json cellToJson(const CellResult &r, unsigned jobs);

/** Deterministic FNV-1a hash of a cell's configuration
 * (workload, scheme, seed, iterations, warmup, execution mode,
 * tags) as 16 hex
 * digits; the provenance key bench_report matches cells by, the
 * cell cache stores under, and the shard partition keys on. Cells
 * with custom bodies must carry distinguishing tags (the grid
 * benches' existing convention) or they alias. */
std::string cellConfigHash(const CellResult &r);

/** Same hash computed ahead of execution, from the cell itself. */
std::string cellConfigHash(const SweepCell &c);

/**
 * Geometric mean of @p ratios (the correct aggregate for normalized
 * latencies/throughputs; arithmetic means overweight outliers).
 * Returns 0 for an empty input; non-positive entries are clamped to
 * a tiny epsilon so a degenerate cell cannot poison the aggregate.
 */
double geomean(const std::vector<double> &ratios);

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_SWEEP_HH
