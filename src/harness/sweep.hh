/**
 * @file
 * Sweep runner: every figure in the paper is a grid of
 * (workload x scheme) cells, each booting a fresh simulated stack.
 * An Experiment owns its own Memory/KernelImage/Pipeline, so cells
 * are share-nothing and embarrassingly parallel. The runner executes
 * a grid on a thread pool, returns results in deterministic grid
 * order regardless of completion order, and can emit the whole sweep
 * as JSON for machine consumption (--json / PERSPECTIVE_BENCH_JSON),
 * with --jobs / PERSPECTIVE_JOBS controlling parallelism.
 */

#ifndef PERSPECTIVE_HARNESS_SWEEP_HH
#define PERSPECTIVE_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "json.hh"
#include "pool.hh"
#include "sim/trace.hh"
#include "workloads/experiment.hh"

namespace perspective::harness
{

/** One grid cell: a workload under a scheme with a seed. */
struct SweepCell
{
    workloads::WorkloadProfile profile;
    workloads::Scheme scheme = workloads::Scheme::Unsafe;
    std::uint64_t seed = 42;
    unsigned iterations = 30;
    unsigned warmup = 3;

    /** Free-form metadata carried into the result and the JSON
     * emission (e.g. an ablation's config knob values). */
    std::map<std::string, std::string> tags;

    /**
     * Optional custom cell body. When empty the runner constructs
     * Experiment(profile, scheme, seed) and calls
     * run(iterations, warmup). Custom bodies (ablations wiring
     * bespoke PerspectiveConfigs) must stay share-nothing: build
     * every simulation object inside the callback.
     */
    std::function<workloads::RunResult(const SweepCell &)> body;
};

/** Outcome of one cell, plus wall-clock cost and metadata. */
struct CellResult
{
    std::string workload;
    std::string scheme;
    std::uint64_t seed = 0;
    unsigned iterations = 0;
    unsigned warmup = 0;
    std::map<std::string, std::string> tags;

    workloads::RunResult result;
    double wallSeconds = 0;

    bool ok = false;
    std::string error; ///< exception text when !ok
};

/** Parallelism / emission knobs, usually parsed from argv + env. */
struct SweepOptions
{
    std::string benchName;
    unsigned jobs = 0;     ///< 0 = hardware concurrency
    std::string jsonPath;  ///< empty = no JSON emission
    std::string tracePath; ///< empty = no Chrome trace emission

    /** Effective worker count after defaulting. */
    unsigned effectiveJobs() const;
};

/**
 * Parse `--jobs N` / `--json PATH` / `--trace-out PATH` (and
 * `--help`) from argv, with PERSPECTIVE_JOBS /
 * PERSPECTIVE_BENCH_JSON / PERSPECTIVE_TRACE_OUT as environment
 * fallbacks. Unknown arguments print usage and exit(2).
 */
SweepOptions parseSweepArgs(const std::string &bench_name, int argc,
                            char **argv);

/** Build-time `git describe` of this binary ("unknown" outside a
 * checkout); stamped into every emitted result's provenance. */
const char *buildGitDescribe();

/**
 * Runs cell grids and accumulates their results. A bench binary may
 * call run() several times (one per table section); emitJson()
 * writes everything accumulated so far.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts);

    /**
     * Execute @p cells and return their results in grid order.
     * Cell failures (exceptions) are captured per-cell in
     * CellResult::error rather than tearing down the sweep.
     */
    std::vector<CellResult> run(const std::vector<SweepCell> &cells);

    /** Everything accumulated across run() calls, in order. */
    const std::vector<CellResult> &results() const
    {
        return results_;
    }

    /** Total wall-clock seconds spent inside run(). */
    double wallSeconds() const { return wallSeconds_; }

    unsigned jobs() const { return opts_.effectiveJobs(); }

    /** The sweep as a JSON document. */
    Json toJson() const;

    /**
     * If a JSON path is configured, write the sweep there and print
     * a one-line note; returns false on I/O failure. No-op (true)
     * when no path is configured.
     */
    bool emitJson() const;

    /**
     * If a trace path is configured, write the structured event log
     * there as Chrome trace JSON. No-op (true) when no path is
     * configured.
     */
    bool emitTrace() const;

    /** emitJson() and emitTrace(); false if either failed. */
    bool emitOutputs() const;

    /** The structured event log backing --trace-out (nullptr when
     * tracing is off). */
    sim::trace::EventLog *traceLog() const { return traceLog_.get(); }

    ~SweepRunner();

  private:
    SweepOptions opts_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<sim::trace::EventLog> traceLog_;
    std::vector<CellResult> results_;
    double wallSeconds_ = 0;
};

/**
 * JSON object for one cell result (schema used by emitJson): raw
 * metrics, the full counter StatSet, histogram summaries, sampled
 * time series, and a provenance block (scheme, workload, config
 * hash, git describe, wall seconds, host jobs).
 */
Json cellToJson(const CellResult &r, unsigned jobs);

/** Deterministic FNV-1a hash of a cell's configuration
 * (workload, scheme, seed, iterations, warmup, tags) as 16 hex
 * digits; the provenance key bench_report matches cells by. */
std::string cellConfigHash(const CellResult &r);

/**
 * Geometric mean of @p ratios (the correct aggregate for normalized
 * latencies/throughputs; arithmetic means overweight outliers).
 * Returns 0 for an empty input; non-positive entries are clamped to
 * a tiny epsilon so a degenerate cell cannot poison the aggregate.
 */
double geomean(const std::vector<double> &ratios);

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_SWEEP_HH
