/**
 * @file
 * Minimal JSON value, writer, and parser — just enough for the sweep
 * runner to emit machine-readable result files and for tests (and
 * trajectory tooling) to round-trip them. Unsigned 64-bit integers
 * are preserved exactly; no external dependency.
 */

#ifndef PERSPECTIVE_HARNESS_JSON_HH
#define PERSPECTIVE_HARNESS_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace perspective::harness
{

/** A JSON value. Objects keep key order sorted (std::map) so that
 * emission is deterministic across runs and job counts. */
class Json
{
  public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : v_(nullptr) {}
    Json(std::nullptr_t) : v_(nullptr) {}
    Json(bool b) : v_(b) {}
    Json(std::uint64_t u) : v_(u) {}
    Json(int i) : v_(static_cast<std::uint64_t>(i)) {}
    Json(unsigned i) : v_(static_cast<std::uint64_t>(i)) {}
    Json(double d) : v_(d) {}
    Json(const char *s) : v_(std::string(s)) {}
    Json(std::string s) : v_(std::move(s)) {}
    Json(Array a) : v_(std::move(a)) {}
    Json(Object o) : v_(std::move(o)) {}

    bool isNull() const { return holds<std::nullptr_t>(); }
    bool isBool() const { return holds<bool>(); }
    bool isUint() const { return holds<std::uint64_t>(); }
    bool isNumber() const { return isUint() || holds<double>(); }
    bool isString() const { return holds<std::string>(); }
    bool isArray() const { return holds<Array>(); }
    bool isObject() const { return holds<Object>(); }

    bool asBool() const { return std::get<bool>(v_); }
    /** Integer value (exact for integers up to 2^64-1). */
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const
    {
        return std::get<std::string>(v_);
    }
    const Array &asArray() const { return std::get<Array>(v_); }
    const Object &asObject() const { return std::get<Object>(v_); }

    /** Object member access; throws std::out_of_range if absent. */
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;

    /** Serialize; @p indent > 0 pretty-prints. */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /** Selective-parse knobs for parse(). */
    struct ParseOptions
    {
        /**
         * Object members with these keys are syntax-checked but not
         * materialized: the value is scanned (strings, nesting and
         * delimiters still validated) and dropped, and the key does
         * not appear in the resulting object. Lets bulk readers
         * (bench_report over a ~46k-line baseline) skip the heavy
         * per-cell sub-objects (histograms, time series) they never
         * look at. Applies at every nesting depth.
         */
        std::vector<std::string> skipObjectKeys;
    };

    /**
     * Parse @p text as a single JSON document. Throws
     * std::runtime_error (with byte offset) on malformed input.
     */
    static Json parse(const std::string &text);

    /** parse() with selective skipping (see ParseOptions). */
    static Json parse(const std::string &text,
                      const ParseOptions &opts);

  private:
    template <typename T>
    bool
    holds() const
    {
        return std::holds_alternative<T>(v_);
    }

    void writeIndented(std::ostream &os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::uint64_t, double,
                 std::string, Array, Object>
        v_;
};

/** Escape and quote @p s for JSON output. */
std::string jsonQuote(const std::string &s);

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_JSON_HH
