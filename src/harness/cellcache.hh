/**
 * @file
 * Persistent, content-addressed sweep-cell cache. Most cells of a
 * typical re-run are byte-identical to a previous run (same cell
 * configuration, same simulator code — PR 3's bit-identical
 * guarantee), so the fastest way to simulate them is not to: the
 * SweepRunner consults this store before simulating and writes back
 * after.
 *
 * Keying: a cached entry is addressed by
 *   (cell config hash) x (code fingerprint)
 * where the config hash is the provenance FNV-1a over every knob
 * that determines the cell's outcome (see cellConfigHash) and the
 * code fingerprint covers the build (`git describe`) plus
 * kSimResultEpoch, a manually bumped constant for the rare change
 * that alters results without changing the describe string (e.g. a
 * parameter default edited in the same commit you are testing).
 * Either moving to a different build or bumping the epoch makes every
 * previous entry unreachable — stale results can never be served.
 *
 * Durability/concurrency: one JSON file per cell, written to a
 * temporary name and atomically rename()d into place, so parallel CI
 * jobs can share a cache directory: readers either see a complete
 * file or a miss, never a torn write. Unreadable/corrupt entries are
 * treated as misses.
 *
 * Cost table: alongside results the cache records each cell's wall
 * seconds (epoch-independent — timing estimates stay useful across
 * result-epoch bumps). The sweep scheduler uses these to submit
 * longest-first. Costs are keyed by (config hash, execution mode):
 * fast-forward runs the same cell ~3x faster than detailed (PR 8),
 * so a mode-blind estimate recorded under one mode is ~3x stale when
 * the cell is next scheduled under the other. With no cache
 * directory the cache still keeps an in-memory cost table so later
 * run() batches in the same process schedule cost-aware.
 */

#ifndef PERSPECTIVE_HARNESS_CELLCACHE_HH
#define PERSPECTIVE_HARNESS_CELLCACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "json.hh"

namespace perspective::harness
{

/**
 * Result epoch: bump whenever simulator changes may alter sweep
 * results without that being visible in `git describe` (locally
 * edited defaults, toolchain quirks being chased, …). Part of the
 * code fingerprint, so a bump invalidates every cached cell.
 */
inline constexpr unsigned kSimResultEpoch = 5; // +sampled mode in cell key

/**
 * The code half of the cache key: a 16-hex-digit FNV-1a over the
 * build's `git describe` and @p epoch. Two binaries agree on the
 * fingerprint iff they were built from the same describe-visible
 * source at the same epoch.
 */
std::string codeFingerprint(unsigned epoch = kSimResultEpoch);

/**
 * Execution mode of a cell, as the cost table keys on it. Three
 * distinct timing regimes: detailed (~1x), fast-forward (~3x, still
 * timing-exact) and sampled (~an order of magnitude, statistical) —
 * an estimate recorded under one mode is badly stale under another.
 */
enum class ExecMode
{
    Detailed,
    FastForward,
    Sampled,
};

/** On-disk cell store; thread-safe (the sweep workers write back
 * concurrently). */
class CellCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
    };

    /**
     * @p dir empty = memory-only mode: load() always misses, store()
     * is a no-op, but the in-memory cost table stays live. @p
     * fingerprint defaults to this build's codeFingerprint();
     * injectable for tests exercising epoch invalidation.
     */
    explicit CellCache(std::string dir,
                       std::string fingerprint = codeFingerprint());

    /** True when a cache directory is configured. */
    bool persistent() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    const std::string &fingerprint() const { return fp_; }

    /**
     * Look up the cell JSON for @p configHash under this code
     * fingerprint. Counts a hit or a miss; corrupt entries count as
     * misses.
     */
    std::optional<Json> load(const std::string &configHash);

    /**
     * Write @p cell back (atomic temp-file + rename). Returns false
     * (without throwing) on I/O failure — a broken cache must never
     * fail a sweep. No-op in memory-only mode.
     */
    bool store(const std::string &configHash, const Json &cell);

    /** Last recorded wall seconds for @p configHash executed under
     * @p mode: the in-memory table first, then the on-disk cost
     * table. */
    std::optional<double> loadCost(const std::string &configHash,
                                   ExecMode mode);

    /** Record @p seconds for @p configHash executed under @p mode
     * (always in memory; also on disk when persistent). */
    void storeCost(const std::string &configHash, ExecMode mode,
                   double seconds);

    /** Two-mode convenience forms (pre-sampling callers and tests):
     * @p fastForward false = Detailed, true = FastForward. */
    std::optional<double> loadCost(const std::string &configHash,
                                   bool fastForward)
    {
        return loadCost(configHash, fastForward
                                        ? ExecMode::FastForward
                                        : ExecMode::Detailed);
    }
    void storeCost(const std::string &configHash, bool fastForward,
                   double seconds)
    {
        storeCost(configHash,
                  fastForward ? ExecMode::FastForward
                              : ExecMode::Detailed,
                  seconds);
    }

    Stats stats() const;

  private:
    std::string cellPath(const std::string &configHash) const;
    std::string costPath(const std::string &costKey) const;
    bool atomicWrite(const std::string &path,
                     const std::string &contents);

    std::string dir_;
    std::string fp_;

    mutable std::mutex mu_;
    Stats stats_;
    std::map<std::string, double> memCosts_;
    std::uint64_t tmpCounter_ = 0;
};

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_CELLCACHE_HH
