#include "json.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace perspective::harness
{

std::uint64_t
Json::asUint() const
{
    if (holds<std::uint64_t>())
        return std::get<std::uint64_t>(v_);
    double d = std::get<double>(v_);
    return static_cast<std::uint64_t>(d);
}

double
Json::asDouble() const
{
    if (holds<std::uint64_t>())
        return static_cast<double>(std::get<std::uint64_t>(v_));
    return std::get<double>(v_);
}

const Json &
Json::at(const std::string &key) const
{
    return asObject().at(key);
}

bool
Json::contains(const std::string &key) const
{
    return isObject() && asObject().count(key) != 0;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    auto pad = [&](int d) {
        if (indent > 0) {
            os.put('\n');
            for (int i = 0; i < indent * d; ++i)
                os.put(' ');
        }
    };

    if (holds<std::nullptr_t>()) {
        os << "null";
    } else if (holds<bool>()) {
        os << (std::get<bool>(v_) ? "true" : "false");
    } else if (holds<std::uint64_t>()) {
        os << std::get<std::uint64_t>(v_);
    } else if (holds<double>()) {
        double d = std::get<double>(v_);
        if (!std::isfinite(d)) {
            os << "null"; // JSON has no Inf/NaN
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        os << buf;
    } else if (holds<std::string>()) {
        os << jsonQuote(std::get<std::string>(v_));
    } else if (holds<Array>()) {
        const Array &a = std::get<Array>(v_);
        if (a.empty()) {
            os << "[]";
            return;
        }
        os.put('[');
        bool first = true;
        for (const Json &e : a) {
            if (!first)
                os.put(',');
            first = false;
            pad(depth + 1);
            e.writeIndented(os, indent, depth + 1);
        }
        pad(depth);
        os.put(']');
    } else {
        const Object &o = std::get<Object>(v_);
        if (o.empty()) {
            os << "{}";
            return;
        }
        os.put('{');
        bool first = true;
        for (const auto &[k, e] : o) {
            if (!first)
                os.put(',');
            first = false;
            pad(depth + 1);
            os << jsonQuote(k) << (indent > 0 ? ": " : ":");
            e.writeIndented(os, indent, depth + 1);
        }
        pad(depth);
        os.put('}');
    }
}

namespace
{

/** Recursive-descent parser over a string view of the document. */
class Parser
{
  public:
    explicit Parser(const std::string &text,
                    const Json::ParseOptions *opts = nullptr)
        : s_(text), opts_(opts)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("bad literal");
          default: return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Only BMP code points are emitted by our writer;
                // encode as UTF-8.
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        std::string tok = s_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        // Non-negative integers stay exact u64; everything else is
        // a double.
        if (tok.find_first_of(".eE-") == std::string::npos) {
            std::uint64_t u = 0;
            auto [p, ec] = std::from_chars(
                tok.data(), tok.data() + tok.size(), u);
            if (ec == std::errc() && p == tok.data() + tok.size())
                return Json(u);
        }
        try {
            return Json(std::stod(tok));
        } catch (const std::exception &) {
            fail("bad number");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json::Array out;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(out));
        }
        for (;;) {
            out.push_back(parseValue());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                return Json(std::move(out));
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json::Object out;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(out));
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            if (shouldSkip(key))
                skipValue();
            else
                out[key] = parseValue();
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                return Json(std::move(out));
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    bool
    shouldSkip(const std::string &key) const
    {
        if (!opts_)
            return false;
        const auto &keys = opts_->skipObjectKeys;
        return std::find(keys.begin(), keys.end(), key) != keys.end();
    }

    /** Scan past a string without building it. Escapes only need the
     * escaped character consumed blindly: no escape expands to an
     * unescaped '"', so the terminator scan stays correct. */
    void
    skipString()
    {
        expect('"');
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("unterminated escape");
                ++pos_;
            }
        }
    }

    /**
     * Scan past one value without materializing it. Structure is
     * still validated (delimiters, string termination, literals), so
     * a skipped document and a parsed one accept the same inputs;
     * number *content* is not re-validated — the win is precisely
     * not allocating for the bulk payloads being skipped.
     */
    void
    skipValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            for (;;) {
                skipWs();
                skipString();
                skipWs();
                expect(':');
                skipValue();
                skipWs();
                char d = peek();
                ++pos_;
                if (d == '}')
                    return;
                if (d != ',')
                    fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            for (;;) {
                skipValue();
                skipWs();
                char d = peek();
                ++pos_;
                if (d == ']')
                    return;
                if (d != ',')
                    fail("expected ',' or ']'");
            }
          }
          case '"': skipString(); return;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return;
          default: {
            std::size_t start = pos_;
            if (c == '-')
                ++pos_;
            while (pos_ < s_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '.' || s_[pos_] == 'e' ||
                    s_[pos_] == 'E' || s_[pos_] == '+' ||
                    s_[pos_] == '-'))
                ++pos_;
            if (pos_ == start)
                fail("bad number");
            return;
          }
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    const Json::ParseOptions *opts_ = nullptr;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Json
Json::parse(const std::string &text, const ParseOptions &opts)
{
    return Parser(text, &opts).parseDocument();
}

} // namespace perspective::harness
