/**
 * @file
 * Serializer from the simulator's structured event log to the Chrome
 * trace_event JSON format, loadable in chrome://tracing and Perfetto
 * (ui.perfetto.dev). Simulated cycles are mapped 1:1 onto trace
 * microseconds, so one timeline unit is one core cycle. Built on the
 * harness JSON writer — no external dependency.
 */

#ifndef PERSPECTIVE_HARNESS_CHROME_TRACE_HH
#define PERSPECTIVE_HARNESS_CHROME_TRACE_HH

#include <string>

#include "json.hh"
#include "sim/trace.hh"

namespace perspective::harness
{

/**
 * Convert @p log to a Chrome trace_event document: spans become "X"
 * (complete) events, instants become "i" events; recording lanes map
 * to trace tids so a parallel sweep's cells render as separate
 * tracks. Events are sorted by (lane, start, seq) so emission is
 * deterministic regardless of completion interleaving.
 */
Json chromeTraceJson(const sim::trace::EventLog &log);

/**
 * Write @p log to @p path as Chrome trace JSON; prints a one-line
 * note on success. Returns false on I/O failure.
 */
bool writeChromeTrace(const sim::trace::EventLog &log,
                      const std::string &path);

} // namespace perspective::harness

#endif // PERSPECTIVE_HARNESS_CHROME_TRACE_HH
