#include "fleet.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cellcache.hh"
#include "proto.hh"
#include "sim/sampling.hh"

namespace perspective::harness
{

namespace
{

void
setCloexec(int fd)
{
    int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

Json
u64(std::uint64_t v)
{
    return Json(v);
}

std::string
strField(const Json &msg, const char *key)
{
    if (msg.isObject() && msg.contains(key) && msg.at(key).isString())
        return msg.at(key).asString();
    return {};
}

std::uint64_t
uintField(const Json &msg, const char *key)
{
    if (msg.isObject() && msg.contains(key) && msg.at(key).isNumber())
        return msg.at(key).asUint();
    return 0;
}

} // namespace

// --------------------------------------------------------------------
// FleetCoordinator

FleetCoordinator::FleetCoordinator(Options opts) : opts_(std::move(opts))
{
    path_ = opts_.socketPath;
    if (path_.empty())
        path_ = "/tmp/perspective-fleet-" +
                std::to_string(static_cast<long>(::getpid())) + ".sock";
    std::string err;
    listenFd_ = proto::listenUnix(path_, &err);
    if (listenFd_ < 0)
        throw std::runtime_error("fleet: " + err);
    setCloexec(listenFd_);
    fingerprint_ = codeFingerprint();
    sampling_ = sim::SamplingParams::fromEnv().spec();
}

FleetCoordinator::~FleetCoordinator()
{
    for (Conn &c : conns_)
        if (c.fd >= 0)
            ::close(c.fd);
    conns_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    ::unlink(path_.c_str());
    // Workers exit once the socket closes (EOF on their next read);
    // give them a moment, then force the stragglers.
    for (int pass = 0; pass < 200 && childrenLive_ > 0; ++pass) {
        reapChildren();
        if (childrenLive_ > 0)
            ::usleep(10 * 1000);
    }
    for (pid_t pid : children_)
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
}

void
FleetCoordinator::spawnWorkers()
{
    spawned_ = true;
    if (opts_.workerArgv.empty())
        return; // tests attach external (forked) workers instead
    for (unsigned w = 0; w < opts_.spawnWorkers; ++w) {
        pid_t pid = ::fork();
        if (pid < 0)
            throw std::runtime_error(
                std::string("fleet: fork: ") + std::strerror(errno));
        if (pid == 0) {
            // Worker stdout would interleave with the coordinator's
            // tables; progress/errors still reach stderr.
            int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull >= 0) {
                ::dup2(devnull, STDOUT_FILENO);
                ::close(devnull);
            }
            std::vector<std::string> args = opts_.workerArgv;
            args.push_back("--connect");
            args.push_back(path_);
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "fleet worker: exec %s: %s\n",
                         argv[0], std::strerror(errno));
            ::_exit(127);
        }
        children_.push_back(pid);
        ++childrenLive_;
    }
    if (opts_.verbose)
        std::fprintf(stderr, "[fleet] spawned %zu workers on %s\n",
                     children_.size(), path_.c_str());
}

void
FleetCoordinator::reapChildren()
{
    for (pid_t &pid : children_) {
        if (pid <= 0)
            continue;
        if (::waitpid(pid, nullptr, WNOHANG) == pid) {
            pid = -1;
            --childrenLive_;
        }
    }
}

void
FleetCoordinator::dropConn(std::size_t i, std::deque<std::size_t> &queue)
{
    Conn &c = conns_[i];
    if (c.assigned >= 0) {
        // Died mid-cell: put the cell back at the head (it is likely
        // a long one — the queue is longest-first) for the next idle
        // worker. Correctness is untouched; only throughput degrades.
        queue.push_front(static_cast<std::size_t>(c.assigned));
        ++stats_.stragglersResent;
        if (opts_.verbose)
            std::fprintf(stderr,
                         "[fleet] worker %d died mid-cell; cell %ld "
                         "re-queued\n",
                         c.id, c.assigned);
    }
    if (c.fd >= 0)
        ::close(c.fd);
    conns_.erase(conns_.begin() + static_cast<long>(i));
}

void
FleetCoordinator::runBatch(std::uint64_t batch,
                           const std::string &gridHash,
                           const std::vector<std::size_t> &queue,
                           const std::vector<double> &costs,
                           const ResultFn &onResult)
{
    std::deque<std::size_t> work(queue.begin(), queue.end());
    const std::size_t total = work.size();
    std::size_t completed = 0;

    if (total > 0 && !spawned_ && opts_.spawnWorkers > 0)
        spawnWorkers();

    // Static longest-processing-time plan over the planned lane
    // count: the assignment a static scheduler would have made.
    // Every dispatch that lands elsewhere is counted as a steal.
    const unsigned planLanes = std::max<unsigned>(
        1, opts_.spawnWorkers > 0
               ? opts_.spawnWorkers
               : static_cast<unsigned>(std::max<std::size_t>(
                     1, conns_.size())));
    std::unordered_map<std::size_t, unsigned> plannedLane;
    {
        std::vector<double> laneLoad(planLanes, 0.0);
        for (std::size_t q = 0; q < queue.size(); ++q) {
            unsigned best = 0;
            for (unsigned l = 1; l < planLanes; ++l)
                if (laneLoad[l] < laneLoad[best])
                    best = l;
            plannedLane[queue[q]] = best;
            laneLoad[best] += q < costs.size() ? costs[q] : 1.0;
        }
    }

    auto ensureWorkerSlot = [&](unsigned id) {
        if (stats_.cellsPerWorker.size() <= id) {
            stats_.cellsPerWorker.resize(id + 1, 0);
            stats_.busyPerWorker.resize(id + 1, 0.0);
        }
        stats_.workers =
            static_cast<unsigned>(stats_.cellsPerWorker.size());
    };

    auto dispatch = [&]() {
        for (Conn &c : conns_) {
            if (work.empty())
                break;
            if (!c.inBatch || !c.waiting || c.assigned >= 0)
                continue;
            std::size_t cell = work.front();
            Json::Object msg;
            msg["type"] = "cell";
            msg["index"] = u64(cell);
            if (!proto::writeFrame(c.fd, Json(std::move(msg))))
                continue; // death surfaces via its poll readability
            work.pop_front();
            c.waiting = false;
            c.assigned = static_cast<long>(cell);
            auto it = plannedLane.find(cell);
            if (it != plannedLane.end() &&
                it->second !=
                    static_cast<unsigned>(c.id) % planLanes)
                ++stats_.steals;
        }
    };

    bool waitingNoteShown = false;
    auto anyInBatch = [&]() {
        return std::any_of(conns_.begin(), conns_.end(),
                           [](const Conn &c) { return c.inBatch; });
    };

    // Main loop runs until every cell has a result; the drain phase
    // then answers stragglers' reqs with batch_done so warm workers
    // block cleanly on their next hello instead of a stale req.
    while (completed < total || anyInBatch()) {
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        for (const Conn &c : conns_)
            fds.push_back({c.fd, POLLIN, 0});

        int rc = ::poll(fds.data(), fds.size(), 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(
                std::string("fleet: poll: ") + std::strerror(errno));
        }
        if (rc == 0) {
            reapChildren();
            if (completed < total && conns_.empty()) {
                if (spawned_ && childrenLive_ == 0 &&
                    !opts_.workerArgv.empty())
                    throw std::runtime_error(
                        "fleet: all workers died with " +
                        std::to_string(total - completed) +
                        " cells outstanding");
                if (!waitingNoteShown && opts_.spawnWorkers == 0) {
                    std::fprintf(
                        stderr,
                        "[fleet] waiting for workers on %s "
                        "(attach with --connect)\n",
                        path_.c_str());
                    waitingNoteShown = true;
                }
            }
            continue;
        }

        if (fds[0].revents & POLLIN) {
            int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd >= 0) {
                setCloexec(fd);
                Conn c;
                c.fd = fd;
                conns_.push_back(c);
            }
        }

        // Walk a snapshot of the fd list; conns_ mutates on death.
        for (std::size_t f = 1; f < fds.size(); ++f) {
            if (!(fds[f].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            std::size_t i = 0;
            while (i < conns_.size() && conns_[i].fd != fds[f].fd)
                ++i;
            if (i == conns_.size())
                continue;

            Json msg;
            std::string err;
            proto::ReadStatus st =
                proto::readFrame(conns_[i].fd, msg, &err);
            if (st != proto::ReadStatus::Ok) {
                if (st == proto::ReadStatus::Error && opts_.verbose)
                    std::fprintf(stderr, "[fleet] worker %d: %s\n",
                                 conns_[i].id, err.c_str());
                dropConn(i, work);
                continue;
            }

            const std::string type = strField(msg, "type");
            Conn &c = conns_[i];
            if (type == "hello") {
                std::string reason;
                if (strField(msg, "fingerprint") != fingerprint_)
                    reason = "code fingerprint mismatch";
                else if (!opts_.benchName.empty() &&
                         strField(msg, "bench") != opts_.benchName)
                    reason = "bench mismatch (" +
                             strField(msg, "bench") + ")";
                else if (strField(msg, "sampling") != sampling_)
                    reason = "sampling config mismatch (worker '" +
                             strField(msg, "sampling") + "' vs '" +
                             sampling_ + "')";
                else if (uintField(msg, "batch") == batch &&
                         strField(msg, "grid_hash") != gridHash)
                    reason = "grid hash mismatch";
                else if (uintField(msg, "batch") > batch)
                    reason = "worker ahead of coordinator";
                if (!reason.empty()) {
                    Json::Object rej;
                    rej["type"] = "reject";
                    rej["reason"] = reason;
                    proto::writeFrame(c.fd, Json(std::move(rej)));
                    dropConn(i, work);
                    continue;
                }
                if (c.id < 0) {
                    c.id = static_cast<int>(nextId_++);
                    ensureWorkerSlot(static_cast<unsigned>(c.id));
                }
                // A hello for an older batch gets the current batch
                // number back; the worker skips forward (its batch
                // completed without it — fully cached, say).
                Json::Object wel;
                wel["type"] = "welcome";
                wel["batch"] = u64(batch);
                wel["worker"] = u64(static_cast<std::uint64_t>(c.id));
                if (!proto::writeFrame(c.fd, Json(std::move(wel)))) {
                    dropConn(i, work);
                    continue;
                }
                if (uintField(msg, "batch") == batch)
                    c.inBatch = true;
            } else if (type == "req") {
                if (!c.inBatch) {
                    dropConn(i, work); // protocol error
                    continue;
                }
                if (completed == total) {
                    Json::Object done;
                    done["type"] = "batch_done";
                    proto::writeFrame(c.fd, Json(std::move(done)));
                    c.inBatch = false;
                    c.waiting = false;
                } else {
                    // Held even when the queue is momentarily empty:
                    // a requeued cell (worker death) must find an
                    // idle worker to land on.
                    c.waiting = true;
                }
            } else if (type == "result") {
                std::size_t idx =
                    static_cast<std::size_t>(uintField(msg, "index"));
                if (!c.inBatch || c.assigned < 0 ||
                    static_cast<std::size_t>(c.assigned) != idx) {
                    dropConn(i, work); // protocol error
                    continue;
                }
                c.assigned = -1;
                ++completed;
                const unsigned id = static_cast<unsigned>(c.id);
                ensureWorkerSlot(id);
                ++stats_.cellsPerWorker[id];
                const Json &cell = msg.at("cell");
                if (cell.isObject() &&
                    cell.contains("wall_seconds") &&
                    cell.at("wall_seconds").isNumber())
                    stats_.busyPerWorker[id] +=
                        cell.at("wall_seconds").asDouble();
                if (opts_.verbose)
                    std::fprintf(stderr,
                                 "[fleet] cell %zu <- worker %u "
                                 "(%zu/%zu)\n",
                                 idx, id, completed, total);
                onResult(idx, id, cell);
            } else {
                dropConn(i, work); // unknown message
                continue;
            }
        }

        dispatch();

        if (completed == total) {
            // Answer held reqs; workers not yet heard from drain on
            // their own req in a later loop iteration.
            for (Conn &c : conns_) {
                if (!c.inBatch || !c.waiting)
                    continue;
                Json::Object done;
                done["type"] = "batch_done";
                proto::writeFrame(c.fd, Json(std::move(done)));
                c.inBatch = false;
                c.waiting = false;
            }
        }
    }
    (void)batch;
}

// --------------------------------------------------------------------
// FleetWorker

FleetWorker::FleetWorker(std::string connectPath)
    : path_(std::move(connectPath))
{
    // Connect eagerly: once the constructor returns, the coordinator
    // can see this worker on its listen socket. Deferring the
    // connect to the first serveBatch() leaves a window where a
    // sibling drains the whole batch and the coordinator moves on
    // before this worker ever shows up — it would then block on a
    // hello nobody answers until the coordinator exits.
    ensureConnected();
    if (const char *chaos = std::getenv("PERSPECTIVE_FLEET_CHAOS")) {
        // "ID:N" — die right before sending the Nth result.
        char *colon = nullptr;
        long id = std::strtol(chaos, &colon, 10);
        if (colon && *colon == ':') {
            chaosWorker_ = id;
            chaosAfter_ = std::strtoull(colon + 1, nullptr, 10);
        }
    }
}

FleetWorker::~FleetWorker()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FleetWorker::ensureConnected()
{
    if (fd_ >= 0)
        return;
    std::string err;
    // The coordinator binds before spawning, but an externally
    // attached worker may race a coordinator still booting.
    for (int attempt = 0;; ++attempt) {
        fd_ = proto::connectUnix(path_, &err);
        if (fd_ >= 0)
            return;
        if (attempt >= 50)
            throw std::runtime_error("fleet worker: " + err);
        ::usleep(100 * 1000);
    }
}

std::size_t
FleetWorker::serveBatch(std::uint64_t batch,
                        const std::string &gridHash,
                        const std::string &benchName, const ExecFn &exec)
{
    if (gone_)
        return 0;
    ensureConnected();

    Json::Object hello;
    hello["type"] = "hello";
    hello["batch"] = u64(batch);
    hello["grid_hash"] = gridHash;
    hello["bench"] = benchName;
    hello["fingerprint"] = codeFingerprint();
    // Spawned workers inherit the coordinator's environment, so this
    // normally matches by construction; the check catches externally
    // attached workers launched under a different PERSPECTIVE_SAMPLE.
    hello["sampling"] = sim::SamplingParams::fromEnv().spec();
    hello["pid"] = u64(static_cast<std::uint64_t>(::getpid()));
    if (!proto::writeFrame(fd_, Json(std::move(hello)))) {
        // Coordinator already exited (fully cached final batch):
        // nothing left to serve.
        gone_ = true;
        return 0;
    }

    Json msg;
    std::string err;
    proto::ReadStatus st = proto::readFrame(fd_, msg, &err);
    if (st == proto::ReadStatus::Eof) {
        gone_ = true; // coordinator finished without needing us
        return 0;
    }
    if (st != proto::ReadStatus::Ok)
        throw std::runtime_error("fleet worker: handshake: " + err);
    if (strField(msg, "type") == "reject")
        throw std::runtime_error("fleet worker: rejected: " +
                                 strField(msg, "reason"));
    if (strField(msg, "type") != "welcome")
        throw std::runtime_error("fleet worker: expected welcome, got " +
                                 strField(msg, "type"));
    id_ = static_cast<unsigned>(uintField(msg, "worker"));
    if (uintField(msg, "batch") > batch)
        return 0; // batch completed without us; skip forward

    std::size_t served = 0;
    for (;;) {
        Json::Object req;
        req["type"] = "req";
        if (!proto::writeFrame(fd_, Json(std::move(req))))
            throw std::runtime_error(
                "fleet worker: coordinator died mid-batch");
        st = proto::readFrame(fd_, msg, &err);
        if (st != proto::ReadStatus::Ok)
            throw std::runtime_error(
                "fleet worker: coordinator died mid-batch: " + err);
        const std::string type = strField(msg, "type");
        if (type == "batch_done")
            return served;
        if (type != "cell")
            throw std::runtime_error("fleet worker: unexpected " + type);

        const std::size_t index =
            static_cast<std::size_t>(uintField(msg, "index"));
        Json cell = exec(index);
        ++cellsExecuted_;
        if (chaosWorker_ >= 0 &&
            static_cast<long>(id_) == chaosWorker_ &&
            cellsExecuted_ == chaosAfter_)
            ::_exit(42); // cell computed but never sent: mid-cell death

        Json::Object res;
        res["type"] = "result";
        res["index"] = u64(index);
        res["cell"] = std::move(cell);
        if (!proto::writeFrame(fd_, Json(std::move(res))))
            throw std::runtime_error(
                "fleet worker: coordinator died mid-batch");
        ++served;
    }
}

} // namespace perspective::harness
