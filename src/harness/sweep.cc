#include "sweep.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <set>

#include <unistd.h>

#include "chrome_trace.hh"
#include "fleet.hh"

namespace perspective::harness
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

unsigned
parseJobs(const std::string &s, const char *origin)
{
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1 || v > 4096) {
        std::fprintf(stderr,
                     "sweep: bad job count '%s' from %s "
                     "(want 1..4096)\n",
                     s.c_str(), origin);
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

void
parseShard(const std::string &s, const char *origin,
           SweepOptions &opts)
{
    unsigned k = 0, n = 0;
    int consumed = 0;
    if (std::sscanf(s.c_str(), "%u/%u%n", &k, &n, &consumed) != 2 ||
        static_cast<std::size_t>(consumed) != s.size() || n < 1 ||
        n > 4096 || k < 1 || k > n) {
        std::fprintf(stderr,
                     "sweep: bad shard spec '%s' from %s "
                     "(want K/N with 1 <= K <= N <= 4096)\n",
                     s.c_str(), origin);
        std::exit(2);
    }
    opts.shardIndex = k;
    opts.shardCount = n;
}

/** Probe @p path for writability without truncating it; a sweep can
 * run for hours and must not discover a typo'd path at emit time. */
void
probeWritable(const std::string &path, const char *what)
{
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr, "sweep: cannot open %s '%s' for "
                             "writing\n",
                     what, path.c_str());
        std::exit(2);
    }
}

std::string
hashCellConfig(const std::string &workload, const std::string &scheme,
               std::uint64_t seed, unsigned iterations,
               unsigned warmup, bool fastForward,
               const sim::SamplingParams &sampling,
               const std::map<std::string, std::string> &tags)
{
    // FNV-1a 64 over every knob that determines the cell's outcome;
    // identical configurations hash identically across runs, hosts
    // and job counts, so bench_report can match cells by this key,
    // the cell cache can store under it, and the shard partition can
    // key on it.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0x1f; // field separator
        h *= 1099511628211ull;
    };
    mix(workload);
    mix(scheme);
    mix(std::to_string(seed));
    mix(std::to_string(iterations));
    mix(std::to_string(warmup));
    mix(fastForward ? "ff" : "detailed");
    // Sampled cells mix their full sampling spec so sampled and
    // exact runs can never share cache entries, shards or matches.
    // Disabled sampling mixes nothing: exact cells keep hashing
    // byte-identically to pre-sampling schemas, preserving their
    // cached results and committed baselines.
    if (sampling.enabled)
        mix("sampled:" + sampling.spec());
    for (const auto &[k, v] : tags) {
        mix(k);
        mix(v);
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::uint64_t
uintField(const Json &obj, const char *field)
{
    return obj.contains(field) && obj.at(field).isNumber()
               ? obj.at(field).asUint()
               : 0;
}

double
doubleField(const Json &obj, const char *field)
{
    return obj.contains(field) && obj.at(field).isNumber()
               ? obj.at(field).asDouble()
               : 0.0;
}

/** Run one cell (custom body or Experiment), capturing failure and
 * wall seconds into @p slot. Shared by the in-process pool path and
 * the fleet-worker serve loop, so fleet results go through exactly
 * the execution code a single process would use. */
void
executeCell(const SweepCell &cell, CellResult &slot)
{
    auto c0 = Clock::now();
    try {
        if (cell.body) {
            slot.result = cell.body(cell);
        } else {
            workloads::Experiment e(cell.profile, cell.scheme,
                                    cell.seed, cell.fastForward,
                                    cell.sampling);
            slot.result = e.run(cell.iterations, cell.warmup);
        }
        slot.ok = true;
    } catch (const std::exception &ex) {
        slot.ok = false;
        slot.error = ex.what();
    } catch (...) {
        slot.ok = false;
        slot.error = "unknown exception";
    }
    slot.wallSeconds = secondsSince(c0);
}

/** Batch identity for the fleet handshake: FNV-1a over the bench
 * name, the cell count and every cell's config hash, in grid order.
 * Coordinator and worker run the same main(), so agreement here
 * means "cell index K" denotes the same simulation on both ends. */
std::string
batchGridHash(const std::string &bench,
              const std::vector<SweepCell> &cells)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0x1f;
        h *= 1099511628211ull;
    };
    mix(bench);
    mix(std::to_string(cells.size()));
    for (const SweepCell &c : cells)
        mix(cellConfigHash(c));
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

const char *
buildGitDescribe()
{
#ifdef PERSPECTIVE_GIT_DESCRIBE
    return PERSPECTIVE_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

unsigned
SweepOptions::effectiveJobs() const
{
    return jobs == 0 ? ThreadPool::defaultThreads() : jobs;
}

SweepOptions
parseSweepArgs(const std::string &bench_name, int argc, char **argv)
{
    SweepOptions opts;
    opts.benchName = bench_name;

    if (const char *env = std::getenv("PERSPECTIVE_JOBS"))
        opts.jobs = parseJobs(env, "PERSPECTIVE_JOBS");
    if (const char *env = std::getenv("PERSPECTIVE_BENCH_JSON"))
        opts.jsonPath = env;
    if (const char *env = std::getenv("PERSPECTIVE_TRACE_OUT"))
        opts.tracePath = env;
    if (const char *env = std::getenv("PERSPECTIVE_CACHE_DIR"))
        opts.cacheDir = env;
    if (const char *env = std::getenv("PERSPECTIVE_SHARD"))
        parseShard(env, "PERSPECTIVE_SHARD", opts);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             bench_name.c_str(), flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = parseJobs(value("--jobs"), "--jobs");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobs(arg.substr(7), "--jobs");
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = arg.substr(7);
        } else if (arg == "--trace-out") {
            opts.tracePath = value("--trace-out");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.tracePath = arg.substr(12);
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value("--cache-dir");
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = arg.substr(12);
        } else if (arg == "--no-cache") {
            opts.noCache = true;
        } else if (arg == "--shard") {
            parseShard(value("--shard"), "--shard", opts);
        } else if (arg.rfind("--shard=", 0) == 0) {
            parseShard(arg.substr(8), "--shard", opts);
        } else if (arg == "--fleet") {
            opts.fleetWorkers = parseJobs(value("--fleet"), "--fleet");
        } else if (arg.rfind("--fleet=", 0) == 0) {
            opts.fleetWorkers = parseJobs(arg.substr(8), "--fleet");
        } else if (arg == "--fleet-socket") {
            opts.fleetSocket = value("--fleet-socket");
        } else if (arg.rfind("--fleet-socket=", 0) == 0) {
            opts.fleetSocket = arg.substr(15);
        } else if (arg == "--connect") {
            opts.connectPath = value("--connect");
        } else if (arg.rfind("--connect=", 0) == 0) {
            opts.connectPath = arg.substr(10);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--json PATH] "
                "[--trace-out PATH]\n"
                "       [--cache-dir PATH] [--no-cache] "
                "[--shard K/N]\n"
                "  --jobs N         worker threads for the sweep "
                "grid\n"
                "                   (default: hardware concurrency;\n"
                "                   env PERSPECTIVE_JOBS)\n"
                "  --json PATH      emit all sweep results as JSON\n"
                "                   (env PERSPECTIVE_BENCH_JSON)\n"
                "  --trace-out PATH emit a Chrome trace_event JSON\n"
                "                   (chrome://tracing, Perfetto; env\n"
                "                   PERSPECTIVE_TRACE_OUT)\n"
                "  --cache-dir PATH persistent cell result cache:\n"
                "                   previously simulated cells are\n"
                "                   served from disk (env\n"
                "                   PERSPECTIVE_CACHE_DIR)\n"
                "  --no-cache       ignore any configured cache dir\n"
                "  --shard K/N      run only shard K of N (1-based);\n"
                "                   recombine the emitted JSONs with\n"
                "                   bench_report --merge (env\n"
                "                   PERSPECTIVE_SHARD)\n"
                "  --fleet N        run as a fleet coordinator:\n"
                "                   spawn N worker copies of this\n"
                "                   binary and dispatch cells to\n"
                "                   idle workers (work stealing)\n"
                "  --fleet-socket PATH\n"
                "                   coordinator listen socket (with\n"
                "                   --fleet, or alone to serve only\n"
                "                   externally attached workers)\n"
                "  --connect PATH   run as a fleet worker attached\n"
                "                   to the coordinator at PATH\n",
                bench_name.c_str());
            std::exit(0);
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s' "
                         "(try --help)\n",
                         bench_name.c_str(), arg.c_str());
            std::exit(2);
        }
    }

    if (opts.fleetCoordinator() && opts.fleetWorker()) {
        std::fprintf(stderr,
                     "%s: --fleet/--fleet-socket and --connect are "
                     "mutually exclusive\n",
                     bench_name.c_str());
        std::exit(2);
    }
    if ((opts.fleetCoordinator() || opts.fleetWorker()) &&
        opts.sharded()) {
        std::fprintf(stderr,
                     "%s: fleet mode and --shard are mutually "
                     "exclusive (the fleet already partitions the "
                     "grid dynamically)\n",
                     bench_name.c_str());
        std::exit(2);
    }
    if (opts.fleetCoordinator()) {
        // Workers re-run this very binary: same main, same grid.
        // They need none of our flags — outputs, cache and sharding
        // are coordinator-owned, and the fleet flags must not
        // recurse — so the spawn command is just the binary.
        char exe[4096];
        ssize_t n =
            ::readlink("/proc/self/exe", exe, sizeof exe - 1);
        if (n > 0) {
            exe[n] = '\0';
            opts.workerArgv = {exe};
        } else if (argc > 0) {
            opts.workerArgv = {argv[0]};
        }
    }
    return opts;
}

unsigned
shardOf(const std::string &configHash, unsigned shardCount)
{
    if (shardCount <= 1)
        return 0;
    // The config hash is already a uniform 64-bit FNV-1a rendered as
    // hex; re-mix it so the shard does not depend on only the low
    // bits surviving the modulo.
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : configHash) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return static_cast<unsigned>(h % shardCount);
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts))
{
    if (opts_.fleetWorker()) {
        // A fleet worker owns no outputs: the coordinator emits the
        // sweep JSON/trace and alone touches the cache directory
        // (DESIGN §5.7). Clearing here also neutralizes inherited
        // PERSPECTIVE_BENCH_JSON / PERSPECTIVE_CACHE_DIR environment
        // from the coordinator that spawned us.
        opts_.jsonPath.clear();
        opts_.tracePath.clear();
        opts_.cacheDir.clear();
        opts_.noCache = true;
        opts_.jobs = 1;
    } else if (opts_.fleetCoordinator()) {
        // The coordinator only dispatches; simulation happens in the
        // workers, so its own pool stays inline.
        opts_.jobs = 1;
    }

    if (!opts_.jsonPath.empty())
        probeWritable(opts_.jsonPath, "--json");
    if (!opts_.tracePath.empty()) {
        probeWritable(opts_.tracePath, "--trace-out");
        traceLog_ = std::make_unique<sim::trace::EventLog>();
        sim::trace::setEventLog(traceLog_.get());
    }

    cache_ = std::make_unique<CellCache>(
        opts_.noCache ? std::string() : opts_.cacheDir);

    // jobs == 1 runs inline on the calling thread (pool of 0).
    unsigned n = opts_.effectiveJobs();
    pool_ = std::make_unique<ThreadPool>(n <= 1 ? 0 : n);
    workerBusy_.assign(std::max(1u, n), 0.0);

    if (opts_.fleetCoordinator()) {
        FleetCoordinator::Options fo;
        fo.spawnWorkers = opts_.fleetWorkers;
        fo.socketPath = opts_.fleetSocket;
        fo.workerArgv = opts_.workerArgv;
        fo.benchName = opts_.benchName;
        fleet_ = std::make_unique<FleetCoordinator>(std::move(fo));
    } else if (opts_.fleetWorker()) {
        fleetClient_ =
            std::make_unique<FleetWorker>(opts_.connectPath);
    }
}

SweepRunner::~SweepRunner()
{
    // Detach our sink so late pipelines never dangle into freed
    // memory; leave foreign sinks (another runner's) alone.
    if (traceLog_ && sim::trace::eventLog() == traceLog_.get())
        sim::trace::setEventLog(nullptr);
}

std::vector<CellResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    if (fleetClient_)
        return runAsFleetWorker(cells);

    auto t0 = Clock::now();

    std::vector<CellResult> out(cells.size());

    /** A cell this process must actually simulate (or, as a fleet
     * coordinator, dispatch). */
    struct Pending
    {
        std::size_t idx = 0;
        std::string hash;
        ExecMode mode = ExecMode::Detailed;
        double weight = 0;     ///< work-size heuristic units
        double measured = -1;  ///< cached wall seconds; < 0 = unseen
    };
    std::vector<Pending> pending;
    pending.reserve(cells.size());

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        CellResult &slot = out[i];
        slot.workload = cell.profile.name;
        slot.scheme = workloads::schemeName(cell.scheme);
        slot.seed = cell.seed;
        slot.iterations = cell.iterations;
        slot.warmup = cell.warmup;
        slot.fastForward = cell.fastForward;
        slot.sampling = cell.sampling;
        slot.tags = cell.tags;
        slot.gridIndex = nextGridIndex_++;

        std::string hash = cellConfigHash(cell);
        if (opts_.sharded() && shardOf(hash, opts_.shardCount) !=
                                   opts_.shardIndex - 1) {
            slot.skipped = true;
            ++skippedCells_;
            continue;
        }
        // In fleet mode this lookup runs only here, in the
        // coordinator: workers never see the cache directory, so
        // hits are answered centrally and cannot race worker writes.
        if (auto hit = cache_->load(hash)) {
            std::uint64_t gi = slot.gridIndex;
            slot = cellFromCachedJson(*hit);
            slot.gridIndex = gi;
            ++cachedCells_;
            continue;
        }
        Pending p;
        p.idx = i;
        p.hash = std::move(hash);
        p.mode = cell.sampling.enabled ? ExecMode::Sampled
                 : cell.fastForward    ? ExecMode::FastForward
                                       : ExecMode::Detailed;
        p.weight = workloads::estimatedRequestWeight(cell.profile) *
                   (cell.iterations + cell.warmup + 1.0);
        if (auto cost = cache_->loadCost(p.hash, p.mode))
            p.measured = *cost;
        pending.push_back(std::move(p));
    }

    // Cost-aware schedule: longest-estimated-first (classic LPT)
    // trims the makespan tail a grid-order submission leaves when a
    // long cell lands last. Measured costs are seconds; heuristic
    // weights are calibrated into seconds against whatever measured
    // cells this batch has, so the two sort comparably. The
    // calibration is per execution mode: fast-forward runs ~3x
    // faster than detailed (PR 8) and sampled ~9x (DESIGN §5.8), so
    // one shared scale would leave every unseen cell of a minority
    // mode badly mis-estimated. A mode with no measurements in this
    // batch borrows a measured lane's scale through those nominal
    // speed ratios. The *output* stays in deterministic grid order
    // regardless (slots are fixed).
    constexpr double kModeSpeedup[3] = {1.0, 3.0, 9.0};
    double mSecs[3] = {0, 0, 0}, mWeight[3] = {0, 0, 0};
    for (const Pending &p : pending) {
        if (p.measured >= 0) {
            mSecs[static_cast<int>(p.mode)] += p.measured;
            mWeight[static_cast<int>(p.mode)] += p.weight;
        }
    }
    double scale[3];
    for (int m = 0; m < 3; ++m)
        scale[m] = (mWeight[m] > 0 && mSecs[m] > 0)
                       ? mSecs[m] / mWeight[m]
                       : -1;
    // Normalize any measured lane to a detailed-equivalent scale and
    // fill the unmeasured lanes from it (no lane measured: unit).
    double base = 1.0;
    for (int m = 0; m < 3; ++m)
        if (scale[m] >= 0) {
            base = scale[m] * kModeSpeedup[m];
            break;
        }
    for (int m = 0; m < 3; ++m)
        if (scale[m] < 0)
            scale[m] = base / kModeSpeedup[m];
    auto keyOf = [&scale](const Pending &p) {
        return p.measured >= 0
                   ? p.measured
                   : p.weight * scale[static_cast<int>(p.mode)];
    };
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const Pending &a, const Pending &b) {
                         return keyOf(a) > keyOf(b);
                     });

    const bool persist = cache_->persistent();
    const unsigned jobsNow = jobs();
    if (fleet_) {
        // Coordinator path: hand the LPT-ordered queue to the fleet;
        // idle workers pull cells one at a time. Results land in
        // their grid-indexed slots as they arrive, so assembly order
        // is independent of which worker stole what.
        std::vector<std::size_t> queue;
        std::vector<double> qcosts;
        std::map<std::size_t, const Pending *> byIdx;
        queue.reserve(pending.size());
        qcosts.reserve(pending.size());
        for (const Pending &p : pending) {
            queue.push_back(p.idx);
            qcosts.push_back(keyOf(p));
            byIdx[p.idx] = &p;
        }
        if (!queue.empty())
            fleet_->runBatch(
                batch_, batchGridHash(opts_.benchName, cells), queue,
                qcosts,
                [&](std::size_t idx, unsigned workerId,
                    const Json &cell) {
                    CellResult &slot = out[idx];
                    const std::uint64_t gi = slot.gridIndex;
                    slot = cellFromCachedJson(cell);
                    slot.cached = false; // fresh; raw rides along
                    slot.gridIndex = gi;
                    slot.worker = workerId;
                    const Pending &p = *byIdx.at(idx);
                    // Central cost + cache writes: the cache-
                    // ownership rule (workers never touch the dir).
                    cache_->storeCost(p.hash, p.mode,
                                      slot.wallSeconds);
                    if (persist && slot.ok)
                        cache_->store(p.hash, cell);
                });
    } else {
        for (const Pending &p : pending) {
            const SweepCell &cell = cells[p.idx];
            CellResult &slot = out[p.idx];
            CellCache *cache = cache_.get();
            ThreadPool *pool = pool_.get();
            std::string hash = p.hash;
            const ExecMode mode = p.mode;
            pool_->submit([&cell, &slot, cache, pool,
                           hash = std::move(hash), mode, persist,
                           jobsNow] {
                executeCell(cell, slot);
                // Lane attribution must be against *this* pool:
                // under nesting (a fleet worker's inline pool inside
                // another binary's pool thread) the static
                // currentWorker() would report the outer pool's lane.
                slot.worker = pool->currentLane();
                // Feed the scheduler (and, when persistent, the next
                // process) this cell's real cost; only successful
                // cells become servable cache entries.
                cache->storeCost(hash, mode, slot.wallSeconds);
                if (persist && slot.ok)
                    cache->store(hash, cellToJson(slot, jobsNow));
            });
        }
        pool_->wait();
    }
    ++batch_;

    // Schedule accounting: the ideal makespan is a perfectly
    // balanced distribution of the measured per-cell seconds across
    // the workers, bounded below by the longest single cell.
    unsigned nWorkers = std::max(1u, opts_.effectiveJobs());
    if (fleet_) {
        nWorkers = std::max(1u, fleet_->stats().workers);
        if (workerBusy_.size() < nWorkers)
            workerBusy_.resize(nWorkers, 0.0);
    }
    double total = 0, longest = 0;
    for (const Pending &p : pending) {
        const CellResult &r = out[p.idx];
        total += r.wallSeconds;
        longest = std::max(longest, r.wallSeconds);
        std::size_t lane = std::min<std::size_t>(
            r.worker, workerBusy_.size() - 1);
        workerBusy_[lane] += r.wallSeconds;
    }
    executedCells_ += pending.size();
    idealMakespan_ +=
        std::max(longest, total / static_cast<double>(nWorkers));

    if (fleet_ && !pending.empty()) {
        // What a static --shard split across this worker count would
        // have cost: per-cell measured walls summed per hash-shard,
        // slowest shard dominating. The fleet's measured makespan
        // divided by this is the work-stealing speedup bench_report
        // summarizes.
        std::vector<double> shardLoad(nWorkers, 0.0);
        for (const Pending &p : pending)
            shardLoad[shardOf(p.hash, nWorkers)] +=
                out[p.idx].wallSeconds;
        fleetStaticShardEst_ += *std::max_element(shardLoad.begin(),
                                                  shardLoad.end());
    }

    wallSeconds_ += secondsSince(t0);
    results_.insert(results_.end(), out.begin(), out.end());
    return out;
}

std::vector<CellResult>
SweepRunner::runAsFleetWorker(const std::vector<SweepCell> &cells)
{
    auto t0 = Clock::now();
    std::vector<CellResult> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        CellResult &slot = out[i];
        slot.workload = cell.profile.name;
        slot.scheme = workloads::schemeName(cell.scheme);
        slot.seed = cell.seed;
        slot.iterations = cell.iterations;
        slot.warmup = cell.warmup;
        slot.fastForward = cell.fastForward;
        slot.sampling = cell.sampling;
        slot.tags = cell.tags;
        slot.gridIndex = nextGridIndex_++;
        slot.skipped = true; // another worker's unless served here
    }

    const std::size_t served = fleetClient_->serveBatch(
        batch_++, batchGridHash(opts_.benchName, cells),
        opts_.benchName, [&](std::size_t idx) -> Json {
            CellResult &slot = out.at(idx);
            executeCell(cells.at(idx), slot);
            slot.skipped = false;
            return cellToJson(slot, 1);
        });
    executedCells_ += served;
    skippedCells_ += cells.size() - served;

    wallSeconds_ += secondsSince(t0);
    results_.insert(results_.end(), out.begin(), out.end());
    return out;
}

std::string
cellConfigHash(const CellResult &r)
{
    return hashCellConfig(r.workload, r.scheme, r.seed, r.iterations,
                          r.warmup, r.fastForward, r.sampling,
                          r.tags);
}

std::string
cellConfigHash(const SweepCell &c)
{
    return hashCellConfig(c.profile.name,
                          workloads::schemeName(c.scheme), c.seed,
                          c.iterations, c.warmup, c.fastForward,
                          c.sampling, c.tags);
}

CellResult
cellFromCachedJson(const Json &cell)
{
    CellResult r;
    r.workload = cell.at("workload").asString();
    r.scheme = cell.at("scheme").asString();
    r.seed = uintField(cell, "seed");
    r.iterations = static_cast<unsigned>(uintField(cell, "iterations"));
    r.warmup = static_cast<unsigned>(uintField(cell, "warmup"));
    if (cell.contains("fast_forward"))
        r.fastForward = cell.at("fast_forward").asBool();
    if (cell.contains("sampling")) {
        const Json &sj = cell.at("sampling");
        // The spec string round-trips the exact configuration
        // (including infinite windows, which a JSON number cannot
        // represent losslessly).
        if (sj.contains("spec"))
            r.sampling =
                sim::SamplingParams::parse(sj.at("spec").asString());
        workloads::SampledStats &ss = r.result.sampling;
        ss.active = sj.contains("active") && sj.at("active").asBool();
        ss.windows = uintField(sj, "windows");
        ss.windowInsts = uintField(sj, "window_insts");
        ss.warmingInsts = uintField(sj, "warming_insts");
        ss.periodInsts = uintField(sj, "period_insts");
        ss.cpiMean = doubleField(sj, "cpi_mean");
        ss.cpiCi95 = doubleField(sj, "cpi_ci95");
        ss.relError = doubleField(sj, "rel_error");
        ss.sampledInsts = uintField(sj, "sampled_insts");
        ss.measuredCycles = uintField(sj, "measured_cycles");
    }
    if (cell.contains("tags"))
        for (const auto &[k, v] : cell.at("tags").asObject())
            r.tags[k] = v.asString();
    r.wallSeconds = doubleField(cell, "wall_seconds");
    r.ok = cell.at("ok").asBool();
    if (cell.contains("error"))
        r.error = cell.at("error").asString();

    workloads::RunResult &res = r.result;
    res.cycles = uintField(cell, "cycles");
    res.instructions = uintField(cell, "instructions");
    res.kernelInstructions = uintField(cell, "kernel_instructions");
    res.fences = uintField(cell, "fences");
    res.isvFences = uintField(cell, "isv_fences");
    res.dsvFences = uintField(cell, "dsv_fences");
    res.isvCacheHitRate = doubleField(cell, "isv_cache_hit_rate");
    res.dsvCacheHitRate = doubleField(cell, "dsv_cache_hit_rate");
    if (cell.contains("stats"))
        for (const auto &[name, v] : cell.at("stats").asObject())
            res.stats.inc(name, v.asUint());
    if (cell.contains("leakage")) {
        const Json &lj = cell.at("leakage");
        sim::LeakageSummary &lk = res.leakage;
        lk.secretLoads = uintField(lj, "secret_loads");
        lk.bytesAtRisk = uintField(lj, "bytes_at_risk");
        lk.transmissions = uintField(lj, "transmissions");
        lk.bytesTransmitted = uintField(lj, "bytes_transmitted");
        lk.taintOverflows = uintField(lj, "taint_overflows");
        if (lj.contains("channels")) {
            const Json &cj = lj.at("channels");
            lk.channelCacheInstall = uintField(cj, "cache_install");
            lk.channelTlbFill = uintField(cj, "tlb_fill");
        }
        if (lj.contains("windows")) {
            for (unsigned w = 1; w < sim::kNumLeakWindows; ++w) {
                const char *name =
                    sim::leakWindowName(static_cast<sim::LeakWindow>(w));
                if (!lj.at("windows").contains(name))
                    continue;
                const Json &wj = lj.at("windows").at(name);
                lk.windows[w].secretLoads = uintField(wj, "secret_loads");
                lk.windows[w].transmissions =
                    uintField(wj, "transmissions");
                lk.windows[w].bytesTransmitted =
                    uintField(wj, "bytes_transmitted");
            }
        }
        if (lj.contains("top_gadgets")) {
            for (const Json &gj : lj.at("top_gadgets").asArray()) {
                sim::LeakageSummary::Gadget g;
                g.pc = uintField(gj, "pc");
                g.funcName = gj.at("func").asString();
                g.entryName = gj.at("entry").asString();
                std::string wname = gj.at("window").asString();
                for (unsigned w = 0; w < sim::kNumLeakWindows; ++w)
                    if (wname ==
                        sim::leakWindowName(static_cast<sim::LeakWindow>(w)))
                        g.window = static_cast<sim::LeakWindow>(w);
                g.transmissions = uintField(gj, "transmissions");
                g.bytesTransmitted = uintField(gj, "bytes_transmitted");
                lk.topGadgets.push_back(std::move(g));
            }
        }
    }

    r.cached = true;
    r.raw = std::make_shared<Json>(cell);
    return r;
}

Json
cellToJson(const CellResult &r, unsigned jobs)
{
    if (r.raw) {
        // A raw-bearing cell re-emits its original JSON verbatim —
        // histograms, time series and provenance (config hash, git,
        // wall seconds, jobs) are the producing run's — plus its
        // position in the *current* grid. Cells served by the cell
        // cache carry the cached marker; a fleet result's raw is the
        // worker's fresh output and is emitted unmarked, exactly as
        // a single process would have emitted it.
        Json::Object o = r.raw->asObject();
        if (r.cached)
            o["cached"] = true;
        o["grid_index"] = r.gridIndex;
        return Json(std::move(o));
    }

    Json::Object o;
    o["workload"] = r.workload;
    o["scheme"] = r.scheme;
    o["seed"] = r.seed;
    o["iterations"] = r.iterations;
    o["warmup"] = r.warmup;
    o["fast_forward"] = r.fastForward;
    o["wall_seconds"] = r.wallSeconds;
    o["ok"] = r.ok;
    o["grid_index"] = r.gridIndex;
    if (!r.ok)
        o["error"] = r.error;
    if (!r.tags.empty()) {
        Json::Object tags;
        for (const auto &[k, v] : r.tags)
            tags[k] = v;
        o["tags"] = std::move(tags);
    }

    Json::Object prov;
    prov["workload"] = r.workload;
    prov["scheme"] = r.scheme;
    prov["config_hash"] = cellConfigHash(r);
    prov["git"] = buildGitDescribe();
    prov["wall_seconds"] = r.wallSeconds;
    prov["jobs"] = jobs;
    o["provenance"] = std::move(prov);

    const workloads::RunResult &res = r.result;
    o["cycles"] = static_cast<std::uint64_t>(res.cycles);
    o["instructions"] = res.instructions;
    // Simulation throughput: measured (post-warmup) simulated
    // instructions per wall second, in millions. The denominator is
    // the whole cell (boot + warmup included), so this is end-to-end
    // harness throughput, not a pure inner-loop rate.
    o["mips"] = r.wallSeconds > 0
                    ? static_cast<double>(res.instructions) /
                          r.wallSeconds / 1e6
                    : 0.0;
    o["kernel_instructions"] = res.kernelInstructions;
    o["kernel_fraction"] = res.kernelFraction();
    o["fences"] = res.fences;
    o["isv_fences"] = res.isvFences;
    o["dsv_fences"] = res.dsvFences;
    o["isv_cache_hit_rate"] = res.isvCacheHitRate;
    o["dsv_cache_hit_rate"] = res.dsvCacheHitRate;

    // Sampled-simulation block (schema 5, DESIGN §5.8). Present only
    // for cells configured to sample; `active` distinguishes a real
    // extrapolated estimate from a degenerate run (e.g. an infinite
    // window) whose cycles stayed fully measured. Statistical cells
    // are not bit-comparable — bench_report --check refuses them and
    // --accuracy-baseline is the sanctioned comparison.
    if (r.sampling.enabled) {
        const workloads::SampledStats &ss = res.sampling;
        Json::Object sj;
        sj["spec"] = r.sampling.spec();
        sj["active"] = ss.active;
        sj["windows"] = ss.windows;
        sj["window_insts"] = ss.windowInsts;
        sj["warming_insts"] = ss.warmingInsts;
        sj["period_insts"] = ss.periodInsts;
        sj["cpi_mean"] = ss.cpiMean;
        sj["cpi_ci95"] = ss.cpiCi95;
        sj["rel_error"] = ss.relError;
        sj["sampled_insts"] = ss.sampledInsts;
        sj["measured_cycles"] = ss.measuredCycles;
        o["sampling"] = std::move(sj);
    }

    Json::Object stats;
    for (const auto &[name, value] : res.stats.all())
        stats[name] = value;
    o["stats"] = std::move(stats);

    Json::Object hists;
    for (const auto &[name, h] : res.stats.allHistograms()) {
        Json::Object hj;
        hj["count"] = h.count();
        hj["min"] = h.min();
        hj["max"] = h.max();
        hj["mean"] = h.mean();
        hj["p50"] = h.percentile(50);
        hj["p90"] = h.percentile(90);
        hj["p99"] = h.percentile(99);
        hists[name] = std::move(hj);
    }
    o["histograms"] = std::move(hists);

    Json::Object series;
    for (const auto &[name, ts] : res.stats.allTimeSeries()) {
        Json::Object sj;
        sj["interval"] = static_cast<std::uint64_t>(ts.interval());
        Json::Array cyc, val;
        cyc.reserve(ts.samples().size());
        val.reserve(ts.samples().size());
        for (const auto &[c, v] : ts.samples()) {
            cyc.emplace_back(static_cast<std::uint64_t>(c));
            val.emplace_back(v);
        }
        sj["cycle"] = std::move(cyc);
        sj["value"] = std::move(val);
        series[name] = std::move(sj);
    }
    o["timeseries"] = std::move(series);

    // Transient-leakage accounting (schema 4, DESIGN §5.6). Always
    // present — a zero block is an explicit "no leakage observed",
    // which the leak gates depend on.
    const sim::LeakageSummary &lk = res.leakage;
    Json::Object leak;
    leak["secret_loads"] = lk.secretLoads;
    leak["bytes_at_risk"] = lk.bytesAtRisk;
    leak["transmissions"] = lk.transmissions;
    leak["bytes_transmitted"] = lk.bytesTransmitted;
    leak["taint_overflows"] = lk.taintOverflows;
    Json::Object chan;
    chan["cache_install"] = lk.channelCacheInstall;
    chan["tlb_fill"] = lk.channelTlbFill;
    leak["channels"] = std::move(chan);
    Json::Object wins;
    for (unsigned w = 1; w < sim::kNumLeakWindows; ++w) {
        const auto &row = lk.windows[w];
        Json::Object wj;
        wj["secret_loads"] = row.secretLoads;
        wj["transmissions"] = row.transmissions;
        wj["bytes_transmitted"] = row.bytesTransmitted;
        wins[sim::leakWindowName(static_cast<sim::LeakWindow>(w))] =
            std::move(wj);
    }
    leak["windows"] = std::move(wins);
    Json::Array gadgets;
    for (const auto &g : lk.topGadgets) {
        Json::Object gj;
        gj["pc"] = static_cast<std::uint64_t>(g.pc);
        gj["func"] = g.funcName;
        gj["entry"] = g.entryName;
        gj["window"] = sim::leakWindowName(g.window);
        gj["transmissions"] = g.transmissions;
        gj["bytes_transmitted"] = g.bytesTransmitted;
        gadgets.emplace_back(std::move(gj));
    }
    leak["top_gadgets"] = std::move(gadgets);
    o["leakage"] = std::move(leak);
    return Json(std::move(o));
}

Json
SweepRunner::toJson() const
{
    Json::Object doc;
    doc["schema"] = std::uint64_t{5};
    doc["bench"] = opts_.benchName;
    doc["jobs"] = jobs();
    doc["git"] = buildGitDescribe();
    doc["wall_seconds"] = wallSeconds_;

    Json::Array cells;
    cells.reserve(results_.size());
    for (const CellResult &r : results_)
        if (!r.skipped)
            cells.push_back(cellToJson(r, jobs()));
    doc["cells"] = std::move(cells);

    CellCache::Stats cs = cache_->stats();
    Json::Object cacheJ;
    cacheJ["hits"] = cs.hits;
    cacheJ["misses"] = cs.misses;
    cacheJ["dir"] = cache_->dir();
    doc["cache"] = std::move(cacheJ);

    Json::Object shard;
    shard["index"] = opts_.shardIndex;
    shard["count"] = opts_.shardCount;
    shard["grid_cells"] = nextGridIndex_;
    doc["shard"] = std::move(shard);

    if (traceLog_) {
        // Event-log health: consumers must be able to tell a quiet
        // trace from a saturated one (satellite of DESIGN §5.6).
        Json::Object tr;
        tr["events"] = traceLog_->size();
        tr["dropped"] = traceLog_->dropped();
        Json::Array perLane;
        for (std::uint64_t d : traceLog_->droppedByLane())
            perLane.emplace_back(d);
        tr["dropped_by_lane"] = std::move(perLane);
        doc["trace"] = std::move(tr);
    }

    Json::Object sched;
    sched["policy"] = fleet_ ? "fleet-work-stealing" : "cost-aware";
    sched["makespan"] = wallSeconds_;
    sched["ideal_makespan"] = idealMakespan_;
    sched["executed"] = executedCells_;
    sched["cached"] = cachedCells_;
    sched["skipped"] = skippedCells_;
    Json::Array busy;
    busy.reserve(workerBusy_.size());
    for (double b : workerBusy_)
        busy.emplace_back(b);
    sched["worker_busy"] = std::move(busy);
    if (fleet_) {
        const FleetStats &fs = fleet_->stats();
        Json::Object fl;
        fl["workers"] = fs.workers;
        fl["steals"] = fs.steals;
        fl["stragglers_resent"] = fs.stragglersResent;
        Json::Array cpw;
        cpw.reserve(fs.cellsPerWorker.size());
        for (std::uint64_t c : fs.cellsPerWorker)
            cpw.emplace_back(c);
        fl["cells_per_worker"] = std::move(cpw);
        fl["static_shard_makespan_est"] = fleetStaticShardEst_;
        sched["fleet"] = std::move(fl);
    }
    doc["schedule"] = std::move(sched);

    return Json(std::move(doc));
}

bool
SweepRunner::emitJson() const
{
    if (opts_.jsonPath.empty())
        return true;
    std::ofstream os(opts_.jsonPath);
    if (!os) {
        std::fprintf(stderr, "sweep: cannot open '%s' for writing\n",
                     opts_.jsonPath.c_str());
        return false;
    }
    toJson().write(os, 2);
    os.put('\n');
    if (!os.flush()) {
        std::fprintf(stderr, "sweep: short write to '%s'\n",
                     opts_.jsonPath.c_str());
        return false;
    }
    std::printf("[sweep: %zu cells (%llu simulated, %llu cached, "
                "%llu skipped), %u jobs, %.2fs; results -> %s]\n",
                results_.size(),
                static_cast<unsigned long long>(executedCells_),
                static_cast<unsigned long long>(cachedCells_),
                static_cast<unsigned long long>(skippedCells_),
                jobs(), wallSeconds_, opts_.jsonPath.c_str());
    return true;
}

bool
SweepRunner::emitTrace() const
{
    if (opts_.tracePath.empty())
        return true;
    return writeChromeTrace(*traceLog_, opts_.tracePath);
}

bool
SweepRunner::emitOutputs() const
{
    bool json_ok = emitJson();
    bool trace_ok = emitTrace();
    return json_ok && trace_ok;
}

std::optional<Json>
mergeSweeps(const std::vector<Json> &shards,
            const std::vector<std::string> &names, std::string &error)
{
    auto fail = [&](std::string msg) {
        error = std::move(msg);
        return std::optional<Json>{};
    };
    auto nameOf = [&](std::size_t i) {
        return i < names.size() ? names[i]
                                : "shard " + std::to_string(i);
    };
    if (shards.empty())
        return fail("no shard files given");

    std::string bench, git, cacheDir;
    std::uint64_t shardCount = 0, gridCells = 0, jobsMax = 0;
    std::uint64_t hits = 0, misses = 0;
    double wallMax = 0;
    Json::Array shardWalls;
    std::set<std::uint64_t> shardSeen;
    std::map<std::uint64_t, const Json *> cellsByIndex;

    for (std::size_t i = 0; i < shards.size(); ++i) {
        const Json &doc = shards[i];
        try {
            if (uintField(doc, "schema") < 3 ||
                !doc.contains("shard"))
                return fail(nameOf(i) +
                            ": not a mergeable sweep JSON "
                            "(schema >= 3 with a shard block "
                            "required)");
            const Json &sh = doc.at("shard");
            std::uint64_t idx = sh.at("index").asUint();
            std::uint64_t cnt = sh.at("count").asUint();
            std::uint64_t grid = sh.at("grid_cells").asUint();
            if (i == 0) {
                bench = doc.at("bench").asString();
                git = doc.at("git").asString();
                shardCount = cnt;
                gridCells = grid;
            } else {
                if (doc.at("bench").asString() != bench)
                    return fail(nameOf(i) + ": bench '" +
                                doc.at("bench").asString() +
                                "' does not match '" + bench + "'");
                if (doc.at("git").asString() != git)
                    return fail(nameOf(i) + ": build '" +
                                doc.at("git").asString() +
                                "' does not match '" + git +
                                "' — shards must come from one "
                                "build");
                if (cnt != shardCount || grid != gridCells)
                    return fail(nameOf(i) +
                                ": shard layout mismatch (" +
                                std::to_string(cnt) + " shards over " +
                                std::to_string(grid) +
                                " cells vs " +
                                std::to_string(shardCount) +
                                " over " + std::to_string(gridCells) +
                                ")");
            }
            if (!shardSeen.insert(idx).second)
                return fail(nameOf(i) + ": duplicate shard " +
                            std::to_string(idx) + "/" +
                            std::to_string(shardCount));
            double w = doubleField(doc, "wall_seconds");
            wallMax = std::max(wallMax, w);
            shardWalls.emplace_back(w);
            jobsMax = std::max(jobsMax, uintField(doc, "jobs"));
            if (doc.contains("cache")) {
                const Json &c = doc.at("cache");
                hits += uintField(c, "hits");
                misses += uintField(c, "misses");
                if (cacheDir.empty() && c.contains("dir"))
                    cacheDir = c.at("dir").asString();
            }
            for (const Json &cell : doc.at("cells").asArray()) {
                if (!cell.contains("grid_index"))
                    return fail(nameOf(i) +
                                ": cell without grid_index");
                std::uint64_t gi = cell.at("grid_index").asUint();
                if (gi >= gridCells)
                    return fail(nameOf(i) + ": cell grid_index " +
                                std::to_string(gi) +
                                " out of range (grid has " +
                                std::to_string(gridCells) +
                                " cells)");
                if (!cellsByIndex.emplace(gi, &cell).second)
                    return fail("overlapping shards: cell "
                                "grid_index " +
                                std::to_string(gi) +
                                " appears in more than one input");
            }
        } catch (const std::exception &ex) {
            return fail(nameOf(i) + ": " + ex.what());
        }
    }

    if (shardSeen.size() != shardCount) {
        std::string missing;
        for (std::uint64_t k = 1; k <= shardCount; ++k)
            if (!shardSeen.count(k))
                missing += (missing.empty() ? "" : ", ") +
                           std::to_string(k);
        return fail("missing shard(s) " + missing + " of " +
                    std::to_string(shardCount));
    }
    if (cellsByIndex.size() != gridCells)
        return fail("incomplete merge: " +
                    std::to_string(cellsByIndex.size()) + " of " +
                    std::to_string(gridCells) + " cells present");

    Json::Object doc;
    doc["schema"] = std::uint64_t{5};
    doc["bench"] = bench;
    doc["jobs"] = jobsMax;
    doc["git"] = git;
    doc["wall_seconds"] = wallMax; // shards run concurrently
    doc["shard_wall_seconds"] = std::move(shardWalls);
    Json::Array mergedFrom;
    for (const std::string &n : names)
        mergedFrom.emplace_back(n);
    doc["merged_from"] = std::move(mergedFrom);

    Json::Object cacheJ;
    cacheJ["hits"] = hits;
    cacheJ["misses"] = misses;
    cacheJ["dir"] = cacheDir;
    doc["cache"] = std::move(cacheJ);

    Json::Object shard;
    shard["index"] = std::uint64_t{1};
    shard["count"] = std::uint64_t{1};
    shard["grid_cells"] = gridCells;
    doc["shard"] = std::move(shard);

    Json::Array cells;
    cells.reserve(cellsByIndex.size());
    for (const auto &[gi, cell] : cellsByIndex)
        cells.push_back(*cell); // std::map: ascending grid order
    doc["cells"] = std::move(cells);
    return Json(std::move(doc));
}

double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0;
    for (double r : ratios)
        log_sum += std::log(std::max(r, 1e-12));
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

} // namespace perspective::harness
