#include "sweep.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "chrome_trace.hh"

namespace perspective::harness
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

unsigned
parseJobs(const std::string &s, const char *origin)
{
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1 || v > 4096) {
        std::fprintf(stderr,
                     "sweep: bad job count '%s' from %s "
                     "(want 1..4096)\n",
                     s.c_str(), origin);
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

/** Probe @p path for writability without truncating it; a sweep can
 * run for hours and must not discover a typo'd path at emit time. */
void
probeWritable(const std::string &path, const char *what)
{
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr, "sweep: cannot open %s '%s' for "
                             "writing\n",
                     what, path.c_str());
        std::exit(2);
    }
}

} // namespace

const char *
buildGitDescribe()
{
#ifdef PERSPECTIVE_GIT_DESCRIBE
    return PERSPECTIVE_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

unsigned
SweepOptions::effectiveJobs() const
{
    return jobs == 0 ? ThreadPool::defaultThreads() : jobs;
}

SweepOptions
parseSweepArgs(const std::string &bench_name, int argc, char **argv)
{
    SweepOptions opts;
    opts.benchName = bench_name;

    if (const char *env = std::getenv("PERSPECTIVE_JOBS"))
        opts.jobs = parseJobs(env, "PERSPECTIVE_JOBS");
    if (const char *env = std::getenv("PERSPECTIVE_BENCH_JSON"))
        opts.jsonPath = env;
    if (const char *env = std::getenv("PERSPECTIVE_TRACE_OUT"))
        opts.tracePath = env;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             bench_name.c_str(), flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = parseJobs(value("--jobs"), "--jobs");
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseJobs(arg.substr(7), "--jobs");
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = arg.substr(7);
        } else if (arg == "--trace-out") {
            opts.tracePath = value("--trace-out");
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.tracePath = arg.substr(12);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--json PATH] "
                "[--trace-out PATH]\n"
                "  --jobs N         worker threads for the sweep "
                "grid\n"
                "                   (default: hardware concurrency;\n"
                "                   env PERSPECTIVE_JOBS)\n"
                "  --json PATH      emit all sweep results as JSON\n"
                "                   (env PERSPECTIVE_BENCH_JSON)\n"
                "  --trace-out PATH emit a Chrome trace_event JSON\n"
                "                   (chrome://tracing, Perfetto; env\n"
                "                   PERSPECTIVE_TRACE_OUT)\n",
                bench_name.c_str());
            std::exit(0);
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s' "
                         "(try --help)\n",
                         bench_name.c_str(), arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts))
{
    if (!opts_.jsonPath.empty())
        probeWritable(opts_.jsonPath, "--json");
    if (!opts_.tracePath.empty()) {
        probeWritable(opts_.tracePath, "--trace-out");
        traceLog_ = std::make_unique<sim::trace::EventLog>();
        sim::trace::setEventLog(traceLog_.get());
    }

    // jobs == 1 runs inline on the calling thread (pool of 0).
    unsigned n = opts_.effectiveJobs();
    pool_ = std::make_unique<ThreadPool>(n <= 1 ? 0 : n);
}

SweepRunner::~SweepRunner()
{
    // Detach our sink so late pipelines never dangle into freed
    // memory; leave foreign sinks (another runner's) alone.
    if (traceLog_ && sim::trace::eventLog() == traceLog_.get())
        sim::trace::setEventLog(nullptr);
}

std::vector<CellResult>
SweepRunner::run(const std::vector<SweepCell> &cells)
{
    auto t0 = Clock::now();

    std::vector<CellResult> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        CellResult &slot = out[i]; // grid order, not finish order
        pool_->submit([&cell, &slot] {
            auto c0 = Clock::now();
            slot.workload = cell.profile.name;
            slot.scheme = workloads::schemeName(cell.scheme);
            slot.seed = cell.seed;
            slot.iterations = cell.iterations;
            slot.warmup = cell.warmup;
            slot.tags = cell.tags;
            try {
                if (cell.body) {
                    slot.result = cell.body(cell);
                } else {
                    workloads::Experiment e(cell.profile, cell.scheme,
                                            cell.seed);
                    slot.result =
                        e.run(cell.iterations, cell.warmup);
                }
                slot.ok = true;
            } catch (const std::exception &ex) {
                slot.ok = false;
                slot.error = ex.what();
            } catch (...) {
                slot.ok = false;
                slot.error = "unknown exception";
            }
            slot.wallSeconds = secondsSince(c0);
        });
    }
    pool_->wait();

    wallSeconds_ += secondsSince(t0);
    results_.insert(results_.end(), out.begin(), out.end());
    return out;
}

std::string
cellConfigHash(const CellResult &r)
{
    // FNV-1a 64 over every knob that determines the cell's outcome;
    // identical configurations hash identically across runs, hosts
    // and job counts, so bench_report can match cells by this key.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0x1f; // field separator
        h *= 1099511628211ull;
    };
    mix(r.workload);
    mix(r.scheme);
    mix(std::to_string(r.seed));
    mix(std::to_string(r.iterations));
    mix(std::to_string(r.warmup));
    for (const auto &[k, v] : r.tags) {
        mix(k);
        mix(v);
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

Json
cellToJson(const CellResult &r, unsigned jobs)
{
    Json::Object o;
    o["workload"] = r.workload;
    o["scheme"] = r.scheme;
    o["seed"] = r.seed;
    o["iterations"] = r.iterations;
    o["warmup"] = r.warmup;
    o["wall_seconds"] = r.wallSeconds;
    o["ok"] = r.ok;
    if (!r.ok)
        o["error"] = r.error;
    if (!r.tags.empty()) {
        Json::Object tags;
        for (const auto &[k, v] : r.tags)
            tags[k] = v;
        o["tags"] = std::move(tags);
    }

    Json::Object prov;
    prov["workload"] = r.workload;
    prov["scheme"] = r.scheme;
    prov["config_hash"] = cellConfigHash(r);
    prov["git"] = buildGitDescribe();
    prov["wall_seconds"] = r.wallSeconds;
    prov["jobs"] = jobs;
    o["provenance"] = std::move(prov);

    const workloads::RunResult &res = r.result;
    o["cycles"] = static_cast<std::uint64_t>(res.cycles);
    o["instructions"] = res.instructions;
    // Simulation throughput: measured (post-warmup) simulated
    // instructions per wall second, in millions. The denominator is
    // the whole cell (boot + warmup included), so this is end-to-end
    // harness throughput, not a pure inner-loop rate.
    o["mips"] = r.wallSeconds > 0
                    ? static_cast<double>(res.instructions) /
                          r.wallSeconds / 1e6
                    : 0.0;
    o["kernel_instructions"] = res.kernelInstructions;
    o["kernel_fraction"] = res.kernelFraction();
    o["fences"] = res.fences;
    o["isv_fences"] = res.isvFences;
    o["dsv_fences"] = res.dsvFences;
    o["isv_cache_hit_rate"] = res.isvCacheHitRate;
    o["dsv_cache_hit_rate"] = res.dsvCacheHitRate;

    Json::Object stats;
    for (const auto &[name, value] : res.stats.all())
        stats[name] = value;
    o["stats"] = std::move(stats);

    Json::Object hists;
    for (const auto &[name, h] : res.stats.allHistograms()) {
        Json::Object hj;
        hj["count"] = h.count();
        hj["min"] = h.min();
        hj["max"] = h.max();
        hj["mean"] = h.mean();
        hj["p50"] = h.percentile(50);
        hj["p90"] = h.percentile(90);
        hj["p99"] = h.percentile(99);
        hists[name] = std::move(hj);
    }
    o["histograms"] = std::move(hists);

    Json::Object series;
    for (const auto &[name, ts] : res.stats.allTimeSeries()) {
        Json::Object sj;
        sj["interval"] = static_cast<std::uint64_t>(ts.interval());
        Json::Array cyc, val;
        cyc.reserve(ts.samples().size());
        val.reserve(ts.samples().size());
        for (const auto &[c, v] : ts.samples()) {
            cyc.emplace_back(static_cast<std::uint64_t>(c));
            val.emplace_back(v);
        }
        sj["cycle"] = std::move(cyc);
        sj["value"] = std::move(val);
        series[name] = std::move(sj);
    }
    o["timeseries"] = std::move(series);
    return Json(std::move(o));
}

Json
SweepRunner::toJson() const
{
    Json::Object doc;
    doc["schema"] = std::uint64_t{2};
    doc["bench"] = opts_.benchName;
    doc["jobs"] = jobs();
    doc["git"] = buildGitDescribe();
    doc["wall_seconds"] = wallSeconds_;
    Json::Array cells;
    cells.reserve(results_.size());
    for (const CellResult &r : results_)
        cells.push_back(cellToJson(r, jobs()));
    doc["cells"] = std::move(cells);
    return Json(std::move(doc));
}

bool
SweepRunner::emitJson() const
{
    if (opts_.jsonPath.empty())
        return true;
    std::ofstream os(opts_.jsonPath);
    if (!os) {
        std::fprintf(stderr, "sweep: cannot open '%s' for writing\n",
                     opts_.jsonPath.c_str());
        return false;
    }
    toJson().write(os, 2);
    os.put('\n');
    if (!os.flush()) {
        std::fprintf(stderr, "sweep: short write to '%s'\n",
                     opts_.jsonPath.c_str());
        return false;
    }
    std::printf("[sweep: %zu cells, %u jobs, %.2fs; results -> %s]\n",
                results_.size(), jobs(), wallSeconds_,
                opts_.jsonPath.c_str());
    return true;
}

bool
SweepRunner::emitTrace() const
{
    if (opts_.tracePath.empty())
        return true;
    return writeChromeTrace(*traceLog_, opts_.tracePath);
}

bool
SweepRunner::emitOutputs() const
{
    bool json_ok = emitJson();
    bool trace_ok = emitTrace();
    return json_ok && trace_ok;
}

double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0;
    for (double r : ratios)
        log_sum += std::log(std::max(r, 1e-12));
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

} // namespace perspective::harness
