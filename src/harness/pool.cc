#include "pool.hh"

#include <utility>

namespace perspective::harness
{

namespace
{
/** Worker lane of the current thread; 0 on non-pool threads. */
thread_local unsigned tlsWorker = 0;
/** The pool that owns the current thread; nullptr off-pool. Lets
 * currentLane() tell "worker 3 of *this* pool" apart from "worker 3
 * of whatever pool happens to be running nested code". */
thread_local const ThreadPool *tlsPool = nullptr;
} // namespace

ThreadPool::ThreadPool(unsigned threads) : numThreads_(threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
ThreadPool::currentWorker()
{
    return tlsWorker;
}

unsigned
ThreadPool::currentLane() const
{
    return tlsPool == this ? tlsWorker : 0;
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (numThreads_ == 0) {
        // Inline mode mirrors the pool's contract: the exception is
        // captured here and rethrown by wait(), not thrown through
        // submit(), so callers see one failure model at any width.
        try {
            task();
        } catch (...) {
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    if (numThreads_ == 0) {
        err = std::exchange(firstError_, nullptr);
    } else {
        std::unique_lock<std::mutex> lk(mu_);
        allDone_.wait(lk, [this] { return inFlight_ == 0; });
        err = std::exchange(firstError_, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::workerLoop(unsigned worker)
{
    tlsWorker = worker;
    tlsPool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            taskReady_.wait(
                lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // A throwing task must still complete the in-flight count,
        // or wait() hangs forever (and an escaped exception would
        // std::terminate the worker). Capture the first one for
        // wait() to rethrow.
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (err && !firstError_)
                firstError_ = err;
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace perspective::harness
