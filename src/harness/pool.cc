#include "pool.hh"

namespace perspective::harness
{

ThreadPool::ThreadPool(unsigned threads) : numThreads_(threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (numThreads_ == 0) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    if (numThreads_ == 0)
        return;
    std::unique_lock<std::mutex> lk(mu_);
    allDone_.wait(lk, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            taskReady_.wait(
                lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace perspective::harness
