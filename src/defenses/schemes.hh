/**
 * @file
 * Baseline defense schemes evaluated against Perspective (Chapter 7):
 *
 *  - FENCE: delay every speculative load until it reaches its
 *    Visibility Point (all prior branches resolved).
 *  - DOM (Delay-on-Miss): speculative loads that hit in the L1D may
 *    proceed; misses are delayed until non-speculative.
 *  - STT (Speculative Taint Tracking): only transmitters whose address
 *    depends on speculatively-loaded data are delayed.
 *  - SPOT: deployed Linux software spot mitigations (KPTI + retpoline)
 *    — no speculation blocking, but kernel entry/exit pays the page-
 *    table switch and indirect calls lose BTB prediction.
 */

#ifndef PERSPECTIVE_DEFENSES_SCHEMES_HH
#define PERSPECTIVE_DEFENSES_SCHEMES_HH

#include "sim/policy.hh"

namespace perspective::defenses
{

/** Hardware-only: fence all speculative loads (kernel and user). */
class FencePolicy : public sim::SpeculationPolicy
{
  public:
    sim::Gate
    gateLoad(const sim::SpecContext &ctx) override
    {
        if (!ctx.speculative)
            return sim::Gate::Allow;
        if (stats_)
            blockedChecks_.inc();
        return sim::Gate::Block;
    }

    sim::GateWake
    gateWake(const sim::SpecContext &) override
    {
        // The verdict only flips at the Visibility Point — the
        // always-implicit speculation-horizon wake covers it.
        sim::GateWake w = sim::GateWake::untilInputs();
        w.blockedTally = stats_ ? &blockedChecks_ : nullptr;
        return w;
    }

    void
    setStats(sim::StatSet *stats) override
    {
        SpeculationPolicy::setStats(stats);
        if (stats)
            blockedChecks_ = stats->counter("fence.blocked_checks");
    }

    const char *name() const override { return "fence"; }

  private:
    sim::Counter blockedChecks_;
};

/** Delay-on-Miss [Sakalis et al., ISCA'19]. */
class DomPolicy : public sim::SpeculationPolicy
{
  public:
    sim::Gate
    gateLoad(const sim::SpecContext &ctx) override
    {
        if (!ctx.speculative || ctx.l1dHit)
            return sim::Gate::Allow;
        if (stats_)
            blockedChecks_.inc();
        return sim::Gate::Block;
    }

    sim::GateWake
    gateWake(const sim::SpecContext &ctx) override
    {
        // Verdict reads l1dHit: re-evaluate when the L1D's content
        // changes (a fill by an older store/load can turn the miss
        // into a hit) or at the Visibility Point.
        sim::GateWake w = sim::GateWake::untilInputs();
        w.depend(ctx.l1dContentGen);
        w.blockedTally = stats_ ? &blockedChecks_ : nullptr;
        return w;
    }

    void
    setStats(sim::StatSet *stats) override
    {
        SpeculationPolicy::setStats(stats);
        if (stats)
            blockedChecks_ = stats->counter("dom.blocked_checks");
    }

    const char *name() const override { return "dom"; }

  private:
    sim::Counter blockedChecks_;
};

/** Speculative Taint Tracking [Yu et al., MICRO'19]. */
class SttPolicy : public sim::SpeculationPolicy
{
  public:
    sim::Gate
    gateLoad(const sim::SpecContext &ctx) override
    {
        if (!ctx.speculative || !ctx.tainted)
            return sim::Gate::Allow;
        if (stats_)
            blockedChecks_.inc();
        return sim::Gate::Block;
    }

    sim::GateWake
    gateWake(const sim::SpecContext &) override
    {
        // Taint only clears when the producing load stops being
        // speculative, i.e. when the speculation horizon advances —
        // already an implicit wake source.
        sim::GateWake w = sim::GateWake::untilInputs();
        w.blockedTally = stats_ ? &blockedChecks_ : nullptr;
        return w;
    }

    void
    setStats(sim::StatSet *stats) override
    {
        SpeculationPolicy::setStats(stats);
        if (stats)
            blockedChecks_ = stats->counter("stt.blocked_checks");
    }

    const char *name() const override { return "stt"; }

  private:
    sim::Counter blockedChecks_;
};

/**
 * Deployed Linux spot mitigations: KPTI (user/kernel page-table switch
 * on every transition) and retpoline (indirect calls never consult the
 * BTB). These are "spot" fixes for Meltdown and Spectre-v2 only: they
 * do not block Spectre-v1-style speculative data access.
 */
class SpotMitigationPolicy : public sim::SpeculationPolicy
{
  public:
    /**
     * @param kpti_cycles CR3 switch + trampoline cost per transition.
     * @param use_retpoline disable indirect-branch prediction.
     */
    explicit SpotMitigationPolicy(sim::Cycle kpti_cycles = 10,
                                  bool use_retpoline = true)
        : kptiCycles_(kpti_cycles), retpoline_(use_retpoline)
    {
    }

    sim::Gate
    gateLoad(const sim::SpecContext &) override
    {
        return sim::Gate::Allow;
    }

    sim::Cycle kernelEntryCost() const override { return kptiCycles_; }
    sim::Cycle kernelExitCost() const override { return kptiCycles_; }
    bool retpoline() const override { return retpoline_; }

    const char *name() const override { return "spot"; }

  private:
    sim::Cycle kptiCycles_;
    bool retpoline_;
};

/**
 * InvisiSpec-style invisible speculation [Yan et al., MICRO'18]:
 * speculative loads execute into a shadow buffer without disturbing
 * the cache; surviving loads expose their line at commit. Cache-based
 * covert channels see nothing from squashed execution, at the cost of
 * losing speculative warm-up (and, on real hardware, an expose/
 * validate traffic cost this model approximates by the lost fills).
 */
class InvisiSpecPolicy : public sim::SpeculationPolicy
{
  public:
    sim::Gate
    gateLoad(const sim::SpecContext &ctx) override
    {
        if (!ctx.speculative)
            return sim::Gate::Allow;
        if (stats_)
            stats_->inc("invisispec.invisible_loads");
        return sim::Gate::AllowInvisible;
    }

    const char *name() const override { return "invisispec"; }
};

/**
 * SpecCFI/CET-style speculative control-flow integrity (Chapter 10).
 * A hardware shadow stack protects returns and CFI labels gate
 * indirect-call speculation — but with coarse labels every kernel
 * function entry is legal, so control flow can still be steered to
 * *any* function's gadget, and speculative data access (v1) is
 * untouched. This is the baseline Perspective's ISVs improve on:
 * views are per-application, not kernel-wide.
 */
class SpecCfiPolicy : public sim::SpeculationPolicy
{
  public:
    sim::Gate
    gateLoad(const sim::SpecContext &) override
    {
        return sim::Gate::Allow;
    }

    bool
    cfiAllowsIndirectTarget(sim::FuncId) const override
    {
        // Coarse-grained labels: all function entries are legal
        // indirect targets; the check never fires in practice.
        return true;
    }

    bool shadowStack() const override { return true; }

    const char *name() const override { return "spec-cfi"; }
};

} // namespace perspective::defenses

#endif // PERSPECTIVE_DEFENSES_SCHEMES_HH
