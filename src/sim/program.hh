/**
 * @file
 * Program: a collection of functions laid out in the virtual address
 * space. The kernel image and userspace workload drivers are both
 * Programs; the pipeline fetches micro-ops from one by (FuncId, index).
 */

#ifndef PERSPECTIVE_SIM_PROGRAM_HH
#define PERSPECTIVE_SIM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "inst.hh"
#include "types.hh"

namespace perspective::sim
{

/**
 * One function: a named, contiguous sequence of micro-ops placed at a
 * base virtual address. Kernel functions additionally carry subsystem
 * metadata used by the call-graph analyses.
 */
struct Function
{
    std::string name;
    FuncId id = kNoFunc;
    bool kernel = false;

    /** Base VA of the first micro-op (assigned by Program::layout). */
    Addr base = 0;

    std::vector<MicroOp> body;

    /** VA of micro-op @p idx. */
    Addr
    instAddr(std::uint32_t idx) const
    {
        return base + Addr{idx} * kInstBytes;
    }
};

/**
 * A set of functions with a deterministic code layout. Functions are
 * packed in id order starting at a base address, page-aligned so that
 * ISV shadow pages map cleanly.
 */
class Program
{
  public:
    /** Create a function; returns its id. Body may be filled in later. */
    FuncId addFunction(std::string name, bool kernel);

    Function &func(FuncId id) { return funcs_[id]; }
    const Function &func(FuncId id) const { return funcs_[id]; }

    std::size_t numFunctions() const { return funcs_.size(); }

    /** Look up a function id by name; kNoFunc when absent. */
    FuncId findByName(const std::string &name) const;

    /**
     * Assign base addresses: kernel functions pack from
     * kKernelTextBase, user functions from kUserBase. Must be called
     * after all bodies are final and before simulation.
     */
    void layout();

    /** Map a code VA back to (function, index); kNoFunc if unmapped. */
    std::pair<FuncId, std::uint32_t> resolve(Addr va) const;

    /** Total micro-ops across all functions. */
    std::size_t totalOps() const;

    /** Human-readable listing of @p id's body (for debugging). */
    std::string disassemble(FuncId id) const;

    /** Highest kernel-text VA in use (exclusive), for sizing tables. */
    Addr kernelTextEnd() const { return kernelTextEnd_; }

    /**
     * Code generation: ticks on every layout() (the only operation
     * that moves or rewrites text once simulation starts never runs
     * mid-simulation; module load/unload flips *data* reachability
     * only). Predecoded-superblock caches record this and drop their
     * contents whenever it moves — see sim/superblock.hh.
     */
    std::uint64_t codeGen() const { return codeGen_; }

  private:
    std::vector<Function> funcs_;
    std::unordered_map<std::string, FuncId> byName_;

    /** Sorted (base, id) pairs for resolve(). */
    std::vector<std::pair<Addr, FuncId>> layoutIndex_;

    /** Direct page-indexed table over kernel text: for each 4 KiB
     * page, the layoutIndex_ position of the last function whose
     * base is at or below the page's first byte. resolve() starts
     * there and walks the few functions packed into the page,
     * instead of binary-searching the whole image per query. */
    std::vector<std::uint32_t> kernelPageIdx_;

    Addr kernelTextEnd_ = kKernelTextBase;
    std::uint64_t codeGen_ = 1;
    bool laidOut_ = false;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_PROGRAM_HH
