/**
 * @file
 * A small fully-tag-checked TLB model. Address translation in this
 * simulator is identity (kernel VAs map to themselves); the TLB exists
 * to charge walk latency and to serve as the fill path for the ISV
 * cache (Section 6.2: on an ISV-cache miss, the instruction VA plus
 * the shadow offset is sent to the TLB to locate the ISV page).
 */

#ifndef PERSPECTIVE_SIM_TLB_HH
#define PERSPECTIVE_SIM_TLB_HH

#include <cstdint>
#include <vector>

#include "types.hh"

namespace perspective::sim
{

/** Set-associative, ASID-tagged TLB. */
class Tlb
{
  public:
    Tlb(std::uint32_t entries, std::uint32_t assoc, Cycle walk_latency);

    /**
     * Translate @p va under @p asid. Identity translation; returns the
     * round-trip latency (1 cycle hit, walk latency on miss) and fills
     * the entry on a miss.
     */
    Cycle translate(Addr va, Asid asid);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    Cycle walkLatency() const { return walkLatency_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        Asid asid = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    Cycle walkLatency_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_TLB_HH
