#include "leakage.hh"

#include <algorithm>

namespace perspective::sim
{

void
LeakLedger::setClassifier(SecretClassifier fn)
{
    classifier_ = std::move(fn);
}

void
LeakLedger::setEnabled(bool on)
{
    enabled_ = on;
}

std::uint8_t
LeakLedger::noteSecretLoad(Addr va, Addr pc, FuncId func,
                           FuncId entryFunc, LeakWindow window)
{
    ++st_.secretLoads;
    st_.bytesAtRisk += 8;
    ++st_.windows[static_cast<unsigned>(window)].secretLoads;

    unsigned bit = kOverflowBit;
    for (unsigned probe = 0; probe < kOverflowBit; ++probe) {
        unsigned cand = (st_.rrNext + probe) % kOverflowBit;
        if (!st_.sources[cand].live) {
            bit = cand;
            st_.rrNext = (cand + 1) % kOverflowBit;
            break;
        }
    }
    Source &s = st_.sources[bit];
    if (bit == kOverflowBit) {
        ++st_.taintOverflows;
        // The shared slot aggregates: keep the first attribution,
        // refcount the lifetimes.
        std::uint32_t refs = s.refs;
        if (refs == 0) {
            s = Source{};
            s.va = va;
            s.pc = pc;
            s.func = func;
            s.entryFunc = entryFunc;
            s.window = window;
        }
        s.live = true;
        s.refs = refs + 1;
    } else {
        s = Source{};
        s.live = true;
        s.refs = 1;
        s.va = va;
        s.pc = pc;
        s.func = func;
        s.entryFunc = entryFunc;
        s.window = window;
    }
    return static_cast<std::uint8_t>(bit);
}

void
LeakLedger::noteTransmission(std::uint64_t taintMask, LeakChannel channel,
                             Addr gadgetPc, FuncId gadgetFunc)
{
    bool any = false;
    for (std::uint64_t m = taintMask; m != 0; m &= m - 1) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(m));
        Source &s = st_.sources[bit];
        if (!s.live)
            continue; // stale bit from a retired source: ignore
        any = true;
        ++st_.transmissions;
        auto &w = st_.windows[static_cast<unsigned>(s.window)];
        ++w.transmissions;
        if (!s.transmitted) {
            s.transmitted = true;
            st_.bytesTransmitted += 8;
            w.bytesTransmitted += 8;
        }
        GadgetKey key{gadgetPc, static_cast<std::uint8_t>(s.window)};
        GadgetRow &row = st_.gadgets[key];
        if (row.transmissions == 0) {
            row.func = gadgetFunc;
            row.entryFunc = s.entryFunc;
        }
        ++row.transmissions;
        row.bytesTransmitted += 8;
    }
    if (any)
        ++st_.channelCounts[static_cast<unsigned>(channel)];
}

void
LeakLedger::retireSource(std::uint8_t bit)
{
    Source &s = st_.sources[bit];
    if (!s.live)
        return;
    if (s.refs > 1)
        --s.refs;
    else {
        s.refs = 0;
        s.live = false;
    }
}

void
LeakLedger::reset()
{
    st_ = State{};
}

LeakageSummary
LeakLedger::summary() const
{
    LeakageSummary out;
    out.secretLoads = st_.secretLoads;
    out.bytesAtRisk = st_.bytesAtRisk;
    out.transmissions = st_.transmissions;
    out.bytesTransmitted = st_.bytesTransmitted;
    out.taintOverflows = st_.taintOverflows;
    out.channelCacheInstall =
        st_.channelCounts[static_cast<unsigned>(LeakChannel::CacheInstall)];
    out.channelTlbFill =
        st_.channelCounts[static_cast<unsigned>(LeakChannel::TlbFill)];
    out.windows = st_.windows;

    out.topGadgets.reserve(st_.gadgets.size());
    for (const auto &[key, row] : st_.gadgets) {
        LeakageSummary::Gadget g;
        g.pc = key.pc;
        g.window = static_cast<LeakWindow>(key.window);
        g.func = row.func;
        g.entryFunc = row.entryFunc;
        g.transmissions = row.transmissions;
        g.bytesTransmitted = row.bytesTransmitted;
        out.topGadgets.push_back(g);
    }
    // Deterministic order: bytes desc, then pc/window asc.
    std::sort(out.topGadgets.begin(), out.topGadgets.end(),
              [](const auto &a, const auto &b) {
                  if (a.bytesTransmitted != b.bytesTransmitted)
                      return a.bytesTransmitted > b.bytesTransmitted;
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  return a.window < b.window;
              });
    if (out.topGadgets.size() > kTopGadgets)
        out.topGadgets.resize(kTopGadgets);
    return out;
}

} // namespace perspective::sim
