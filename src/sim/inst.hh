/**
 * @file
 * The micro-op IR executed by the out-of-order pipeline.
 *
 * Kernel functions, workload drivers, and attack gadgets are all
 * expressed as sequences of MicroOps. The IR is deliberately small but
 * carries real data flow (register values, memory addresses) so that
 * transient-execution attacks, taint tracking (STT, the gadget
 * scanner), and Perspective's per-instruction ISV bits all operate on
 * the same mechanistic substrate.
 */

#ifndef PERSPECTIVE_SIM_INST_HH
#define PERSPECTIVE_SIM_INST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "types.hh"

namespace perspective::sim
{

/** Operation classes understood by the pipeline. */
enum class Op : std::uint8_t
{
    Nop,          ///< No effect; occupies a slot.
    IntAlu,       ///< dst = src1 (op) src2/imm; 1-cycle latency.
    IntMul,       ///< dst = src1 * src2/imm; 3-cycle latency.
    Load,         ///< dst = mem[src1 + imm]; transmitter instruction.
    Store,        ///< mem[src1 + imm] = src2; performed at commit.
    Branch,       ///< Conditional relative branch inside the function.
    Jump,         ///< Unconditional relative branch inside the function.
    Call,         ///< Direct call to another function.
    IndirectCall, ///< Call through a register holding a FuncId (BTB).
    Return,       ///< Return to the caller (RSB-predicted).
    Fence,        ///< Serializing; younger ops wait until it commits.
};

/** ALU sub-operations for Op::IntAlu. */
enum class AluOp : std::uint8_t
{
    Add,  ///< dst = src1 + src2(+imm)
    Sub,  ///< dst = src1 - src2(-imm)
    And,  ///< dst = src1 & imm
    Shl,  ///< dst = src1 << imm
    Shr,  ///< dst = src1 >> imm
    MovI, ///< dst = imm
    Mov,  ///< dst = src1
};

/** Branch conditions for Op::Branch (comparing src1 to src2/imm). */
enum class Cond : std::uint8_t
{
    Lt, ///< taken if src1 < operand (unsigned)
    Ge, ///< taken if src1 >= operand (unsigned)
    Eq, ///< taken if src1 == operand
    Ne, ///< taken if src1 != operand
};

/**
 * A single micro-op. Operands read architectural registers by id;
 * kNoReg marks an unused operand slot. When src2 == kNoReg, ALU and
 * branch operations use @c imm as the second operand; loads and stores
 * always add @c imm to the src1 base (src1 == kNoReg means an absolute
 * address equal to imm).
 */
struct MicroOp
{
    Op op = Op::Nop;
    AluOp alu = AluOp::Add;
    Cond cond = Cond::Lt;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    std::int64_t imm = 0;

    /** Branch/Jump target micro-op index within the same function. */
    std::uint32_t target = 0;

    /** Direct call target. */
    FuncId callee = kNoFunc;

    /** True for ops whose execution can leak through a covert channel. */
    bool
    isTransmitter() const
    {
        return op == Op::Load;
    }

    /** True for control-flow ops resolved by a predictor. */
    bool
    isControl() const
    {
        return op == Op::Branch || op == Op::IndirectCall ||
               op == Op::Return;
    }

    /** Render a short human-readable mnemonic (for tests and tracing). */
    std::string toString() const;
};

/**
 * Evaluate an ALU operation. @p a is the src1 value; @p b is the src2
 * value when the op has one (callers pass imm otherwise); @p imm is
 * the immediate displacement.
 */
constexpr std::uint64_t
evalAluOp(const MicroOp &op, std::uint64_t a, std::uint64_t b)
{
    switch (op.alu) {
      case AluOp::Add:
        return a + b + (op.src2 != kNoReg
                            ? static_cast<std::uint64_t>(op.imm)
                            : 0);
      case AluOp::Sub: return a - b;
      case AluOp::And: return a & static_cast<std::uint64_t>(op.imm);
      case AluOp::Shl: return a << (op.imm & 63);
      case AluOp::Shr: return a >> (op.imm & 63);
      case AluOp::MovI: return static_cast<std::uint64_t>(op.imm);
      case AluOp::Mov: return a;
    }
    return 0;
}

/** Evaluate a branch condition on operand values. */
constexpr bool
evalCondOp(Cond c, std::uint64_t a, std::uint64_t b)
{
    switch (c) {
      case Cond::Lt: return a < b;
      case Cond::Ge: return a >= b;
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
    }
    return false;
}

/** @name Builders
 * Convenience constructors used throughout the kernel image, the
 * workload drivers, and the attack gadgets.
 * @{
 */
MicroOp movImm(RegId dst, std::int64_t imm);
MicroOp mov(RegId dst, RegId src);
MicroOp add(RegId dst, RegId src1, RegId src2);
MicroOp addImm(RegId dst, RegId src1, std::int64_t imm);
MicroOp andImm(RegId dst, RegId src1, std::int64_t imm);
MicroOp shlImm(RegId dst, RegId src1, std::int64_t imm);
MicroOp mul(RegId dst, RegId src1, RegId src2);
MicroOp load(RegId dst, RegId base, std::int64_t off);
MicroOp loadAbs(RegId dst, Addr addr);
MicroOp store(RegId base, std::int64_t off, RegId value);
MicroOp branch(Cond c, RegId src1, RegId src2, std::uint32_t target);
MicroOp branchImm(Cond c, RegId src1, std::int64_t imm,
                  std::uint32_t target);
MicroOp jump(std::uint32_t target);
MicroOp call(FuncId callee);
MicroOp indirectCall(RegId targetReg);
MicroOp ret();
MicroOp fence();
MicroOp nop();
/** @} */

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_INST_HH
