#include "cache.hh"

#include <cassert>

namespace perspective::sim
{

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    assert(params_.size_bytes % (params_.line_bytes * params_.assoc) == 0);
    numSets_ = params_.size_bytes / (params_.line_bytes * params_.assoc);
    lines_.resize(std::size_t{numSets_} * params_.assoc);
}

std::uint64_t
Cache::lineIndex(Addr addr) const
{
    return (addr / params_.line_bytes) % numSets_;
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr / params_.line_bytes;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    std::uint64_t set = lineIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    return const_cast<Line *>(
        static_cast<const Cache *>(this)->findLine(addr));
}

bool
Cache::access(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->lru = ++useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::fill(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->lru = ++useClock_;
        return; // already present
    }
    std::uint64_t set = lineIndex(addr);
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        // Prefer an invalid way; otherwise the least recently used.
        if (!victim || (victim->valid &&
                        (!line.valid || line.lru < victim->lru))) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++useClock_;
    ++contentGen_;
}

void
Cache::flush(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        ++contentGen_;
    }
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
    ++contentGen_;
}

CacheHierarchy::CacheHierarchy(const CacheParams &l1i,
                               const CacheParams &l1d,
                               const CacheParams &l2,
                               Cycle dram_latency, bool prefetch)
    : l1i_(l1i),
      l1d_(l1d),
      l2_(l2),
      dramLatency_(dram_latency),
      prefetch_(prefetch)
{
}

Cycle
CacheHierarchy::accessData(Addr addr, StatSet *stats)
{
    if (stats)
        stats->inc("l1d.accesses");
    if (l1d_.access(addr))
        return l1d_.params().hit_latency;
    Cycle latency = l1d_.params().hit_latency;
    if (l2_.access(addr)) {
        latency += l2_.params().hit_latency;
    } else {
        latency += l2_.params().hit_latency + dramLatency_;
        l2_.fill(addr);
        if (stats)
            stats->inc("l2.data_misses");
    }
    l1d_.fill(addr);
    if (stats)
        stats->inc("l1d.misses");
    // Next-line prefetcher (Table 7.1): a demand miss triggers a
    // background fill of the following line. No latency is charged —
    // the prefetch overlaps with the demand access.
    if (prefetch_) {
        Addr next = addr + l1d_.params().line_bytes;
        if (!l1d_.probe(next)) {
            l2_.fill(next);
            l1d_.fill(next);
            if (stats)
                stats->inc("l1d.prefetches");
        }
    }
    return latency;
}

Cycle
CacheHierarchy::accessInst(Addr addr, StatSet *stats)
{
    if (stats)
        stats->inc("l1i.accesses");
    if (l1i_.access(addr))
        return l1i_.params().hit_latency;
    Cycle latency = l1i_.params().hit_latency;
    if (l2_.access(addr)) {
        latency += l2_.params().hit_latency;
    } else {
        latency += l2_.params().hit_latency + dramLatency_;
        l2_.fill(addr);
    }
    l1i_.fill(addr);
    if (stats)
        stats->inc("l1i.misses");
    if (prefetch_) {
        Addr next = addr + l1i_.params().line_bytes;
        if (!l1i_.probe(next)) {
            l2_.fill(next);
            l1i_.fill(next);
            if (stats)
                stats->inc("l1i.prefetches");
        }
    }
    return latency;
}

Cycle
CacheHierarchy::probeLatency(Addr addr) const
{
    if (l1d_.probe(addr))
        return l1d_.params().hit_latency;
    if (l2_.probe(addr))
        return l1d_.params().hit_latency + l2_.params().hit_latency;
    return l1d_.params().hit_latency + l2_.params().hit_latency +
           dramLatency_;
}

void
CacheHierarchy::flush(Addr addr)
{
    l1i_.flush(addr);
    l1d_.flush(addr);
    l2_.flush(addr);
}

CacheParams
defaultL1I()
{
    return {"l1i", 32 * 1024, 64, 4, 2};
}

CacheParams
defaultL1D()
{
    return {"l1d", 32 * 1024, 64, 8, 2};
}

CacheParams
defaultL2()
{
    return {"l2", 2 * 1024 * 1024, 64, 16, 8};
}

} // namespace perspective::sim
