#include "pipeline.hh"

#include "superblock.hh"
#include "trace.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace perspective::sim
{

namespace
{

/** Default user-mode stack base when the driver sets none. */
constexpr Addr kDefaultStackBase = 0x0000'7fff'ff00'0000;

} // namespace

Pipeline::Pipeline(const Program &prog, Memory &mem,
                   PipelineParams params)
    : prog_(prog),
      mem_(mem),
      params_(params),
      caches_(defaultL1I(), defaultL1D(), defaultL2(),
              params.dramLatency),
      dtlb_(512, 4, 30),
      stackBase_(kDefaultStackBase),
      sbCache_(prog)
{
    rob_.init(params_.robSize);
    renameValid_.fill(false);
    ledger_.setEnabled(params_.leakLedger);

    // Resolve hot-path stat names once; per-cycle code then bumps
    // through stable handles instead of string-keyed map lookups.
    ctrCommitted_ = stats_.counter("committed");
    ctrCommittedKernel_ = stats_.counter("committed.kernel");
    ctrFetched_ = stats_.counter("fetched");
    ctrLoads_ = stats_.counter("loads");
    ctrLoadsSpec_ = stats_.counter("loads.speculative");
    ctrLoadsInvisible_ = stats_.counter("loads.invisible");
    ctrBlockedCycles_ = stats_.counter("blocked_cycles");
    ctrSquashedUops_ = stats_.counter("squashed_uops");
    ctrFences_ = stats_.counter("fences");
    ctrFencesKernel_ = stats_.counter("fences.kernel");
    ctrMispredicts_ = stats_.counter("mispredicts");
    ctrSquashes_ = stats_.counter("squashes");
    ctrGateChecks_ = stats_.counter("gate.checks");
    ctrGateElided_ = stats_.counter("gate.elided");
    ctrFfUops_ = stats_.counter("ff.uops");
    ctrFfEntries_ = stats_.counter("ff.entries");
    ctrFfCycles_ = stats_.counter("ff.cycles");

    // Registered up front so every run — even one with no squash or
    // fence — reports the full set of distribution summaries.
    histRobOcc_ = &stats_.histogram("rob_occupancy");
    histFenceStall_ = &stats_.histogram("fence_stall_cycles");
    histSquashDepth_ = &stats_.histogram("squash_depth");
    histLoadWait_ = &stats_.histogram("load_issue_wait");
    tsRobOcc_ = &stats_.timeSeries("rob_occupancy");
    tsCommitted_ = &stats_.timeSeries("committed");
    tsFences_ = &stats_.timeSeries("fences");
}

void
Pipeline::recordSpan(trace::Flag flag, const RobEntry &e, Cycle start,
                     const char *suffix)
{
    trace::Event ev;
    ev.flag = flag;
    ev.start = start;
    ev.dur = now_ > start ? now_ - start : 0;
    ev.issue = e.issueCycle;
    ev.seq = e.seq;
    ev.kernel = e.kernel;
    ev.name = e.op->toString();
    if (suffix)
        ev.name += suffix;
    ev.func = prog_.func(e.func).name + "[" +
              std::to_string(e.idx) + "]";
    trace::eventLog()->record(std::move(ev));
}

void
Pipeline::noteFenceStallEnd(const RobEntry &e)
{
    if (!e.counted)
        return; // never blocked
    histFenceStall_->sample(now_ - e.blockedSince);
    if (eventsOn_)
        recordSpan(trace::Flag::Fence, e, e.blockedSince);
}

void
Pipeline::setPolicy(SpeculationPolicy *policy)
{
    policy_ = policy;
    if (policy_)
        policy_->setStats(&stats_);
}

Pipeline::RobEntry *
Pipeline::findBySeq(std::uint64_t seq)
{
    if (rob_.empty() || seq < rob_.front().seq ||
        seq > rob_.back().seq)
        return nullptr;
    // Seqs are dense except for squash holes (nextSeq_ never rewinds),
    // so seq - frontSeq is an upper bound on the index and exact when
    // no hole sits below — the overwhelmingly common case: one probe.
    std::size_t i =
        static_cast<std::size_t>(seq - rob_.front().seq);
    if (i >= rob_.size())
        i = rob_.size() - 1;
    // Walk down past squash holes; in a pathological squash storm the
    // hole count can exceed the ROB's depth budget, so bound the walk
    // and fall back to binary search over the remaining prefix.
    for (unsigned probes = 0; probes < 16; ++probes) {
        RobEntry &e = rob_[i];
        if (e.seq == seq)
            return &e;
        if (e.seq < seq || i == 0)
            return nullptr;
        --i;
    }
    std::size_t lo = 0, hi = i + 1; // seqs ascend over [0, i]
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (rob_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo <= i && rob_[lo].seq == seq)
        return &rob_[lo];
    return nullptr;
}

void
Pipeline::captureOperand(RobEntry &e, unsigned slot, RegId reg)
{
    e.srcReg[slot] = reg;
    if (reg == kNoReg) {
        e.srcReady[slot] = true;
        e.srcVal[slot] = 0;
        e.srcLeakTaint[slot] = 0;
        e.srcProd[slot] = RobEntry::kNoSeq;
        e.srcProdPtr[slot] = nullptr;
        return;
    }
    if (renameValid_[reg]) {
        std::uint64_t pseq = renameMap_[reg];
        RobEntry *p = renameProd_[reg];
        assert(p && p->seq == pseq &&
               "rename map points at a live entry");
        e.srcProd[slot] = pseq;
        e.srcProdPtr[slot] = p;
        if (p->state == EState::Done) {
            e.srcVal[slot] = p->result;
            e.srcLeakTaint[slot] = p->leakTaint;
            e.srcReady[slot] = true;
        } else {
            // Value and leak taint arrive via the producer's wakeup
            // edge; pre-clear the taint so a recycled slot cannot
            // smuggle a previous occupant's.
            e.srcLeakTaint[slot] = 0;
            e.srcReady[slot] = false;
        }
    } else {
        // Architectural-file read: committed values carry no live
        // leak taint (their sources retired at commit).
        e.srcVal[slot] = regs_[reg];
        e.srcLeakTaint[slot] = 0;
        e.srcReady[slot] = true;
        e.srcProd[slot] = RobEntry::kNoSeq;
        e.srcProdPtr[slot] = nullptr;
    }
}

void
Pipeline::registerDispatch(RobEntry &e)
{
    // Dependence wakeup lists: instead of every waiting entry polling
    // its producers each cycle, a completing producer pushes its
    // result to registered (consumer, slot) pairs. A producer always
    // reaches Done before it can commit, so consumers never need the
    // architectural-file fallback the polling scan had.
    e.pendingSrcs = 0;
    for (unsigned s = 0; s < 2; ++s) {
        if (e.srcReady[s])
            continue;
        ++e.pendingSrcs;
        RobEntry *p = e.srcProdPtr[s];
        assert(p && p->seq == e.srcProd[s] &&
               "unready operand has a live producer");
        p->wakeup.push_back({&e, e.seq, s});
    }
    if (e.pendingSrcs == 0)
        readyQ_.emplace_back(e.seq, &e); // youngest: append keeps order

    switch (e.op->op) {
      case Op::Store:
        storeQ_.emplace_back(e.seq, &e);
        pendingStores_.push_back(e.seq);
        break;
      case Op::Fence:
        pendingFences_.push_back(e.seq);
        break;
      default:
        break;
    }
    if (e.isControl)
        unresolvedCtls_.emplace_back(e.seq, &e);
}

void
Pipeline::enqueueReady(RobEntry &e)
{
    auto it = std::lower_bound(
        readyQ_.begin(), readyQ_.end(), e.seq,
        [](const auto &p, std::uint64_t s) { return p.first < s; });
    readyQ_.emplace(it, e.seq, &e);
}

void
Pipeline::onComplete(RobEntry &e)
{
    for (const RobEntry::WakeEdge &w : e.wakeup) {
        RobEntry *c = w.consumer;
        if (c->seq != w.seq || c->srcReady[w.slot])
            continue; // consumer squashed since registration
        c->srcVal[w.slot] = e.result;
        c->srcLeakTaint[w.slot] = e.leakTaint;
        c->srcReady[w.slot] = true;
        if (--c->pendingSrcs == 0)
            enqueueReady(*c);
    }
    e.wakeup.clear();
    if (e.op->op == Op::Fence) {
        auto it = std::lower_bound(pendingFences_.begin(),
                                   pendingFences_.end(), e.seq);
        if (it != pendingFences_.end() && *it == e.seq) {
            pendingFences_.erase(it);
            ++memGen_;
        }
    }
}

std::uint64_t
Pipeline::horizonSeq()
{
    while (!unresolvedCtls_.empty()) {
        auto [seq, e] = unresolvedCtls_.front();
        // Slot validation: a squashed ctl's seq was invalidated, a
        // recycled slot carries a different seq, and a committed ctl
        // keeps its seq but was necessarily resolved first.
        if (e->seq == seq && !e->resolved)
            return seq;
        unresolvedCtls_.pop_front(); // resolved, committed or dead
    }
    return RobEntry::kNoSeq;
}

bool
Pipeline::isSpeculative(const RobEntry &e) const
{
    return oldestUnresolvedCtl_ != RobEntry::kNoSeq &&
           oldestUnresolvedCtl_ < e.seq;
}

bool
Pipeline::addrTainted(RobEntry &e)
{
    if (e.srcProd[0] == RobEntry::kNoSeq)
        return false;
    // Captured producer slot, validated by seq. A recycled slot
    // (producer committed long ago) misses, matching the old
    // ROB-search null; a still-resident committed producer recomputes
    // to untainted (nothing older than every live control can be
    // speculative), which is what the old null meant.
    RobEntry *p = e.srcProdPtr[0];
    return p && p->seq == e.srcProd[0] && taintOf(*p);
}

bool
Pipeline::taintOf(RobEntry &e)
{
    // Demand-driven STT taint, memoized per cycle. ROB membership and
    // the speculation horizon are both fixed for the whole issue
    // phase (squashes and commits happen in earlier phases,
    // dispatches later), so walking producer chains here yields
    // exactly what the retired full-ROB oldest-to-youngest recompute
    // produced — only for the entries a gated load actually asks
    // about. Producer chains are a DAG ordered by seq, so the
    // recursion terminates; committed producers read as untainted.
    if (e.taintCycle == now_)
        return e.tainted;
    e.taintCycle = now_;
    bool t = false;
    switch (e.op->op) {
      case Op::Load:
        t = isSpeculative(e);
        break;
      case Op::IntAlu:
      case Op::IntMul:
        for (unsigned s = 0; s < 2 && !t; ++s) {
            if (e.srcProd[s] == RobEntry::kNoSeq)
                continue;
            RobEntry *p = e.srcProdPtr[s]; // see addrTainted
            t = p && p->seq == e.srcProd[s] && taintOf(*p);
        }
        break;
      default:
        break;
    }
    e.tainted = t;
    return t;
}

std::uint64_t
Pipeline::evalAlu(const RobEntry &e) const
{
    std::uint64_t b = e.op->src2 != kNoReg
                          ? e.srcVal[1]
                          : static_cast<std::uint64_t>(e.op->imm);
    return evalAluOp(*e.op, e.srcVal[0], b);
}

bool
Pipeline::evalBranch(const RobEntry &e) const
{
    std::uint64_t b = e.op->src2 != kNoReg
                          ? e.srcVal[1]
                          : static_cast<std::uint64_t>(e.op->imm);
    return evalCondOp(e.op->cond, e.srcVal[0], b);
}

Cycle
Pipeline::execLatency(const RobEntry &e)
{
    switch (e.op->op) {
      case Op::IntMul:
        return 3;
      case Op::Return:
        // The return-address load: a demand access to the stack slot.
        // An attacker who evicts this line widens the transient
        // window of a poisoned RSB prediction.
        if (!e.sawHalt && e.effAddr != 0)
            return caches_.accessData(e.effAddr, &stats_);
        return 1;
      default:
        return 1;
    }
}

bool
Pipeline::tryIssueLoad(RobEntry &e)
{
    if (!e.addrValid) {
        Addr base = e.op->src1 != kNoReg ? e.srcVal[0] : 0;
        e.effAddr = base + static_cast<std::uint64_t>(e.op->imm);
        e.addrValid = true;
    }

    // Memory disambiguation (conservative) and fence ordering, O(1):
    // an older not-yet-Done fence or an older store whose address is
    // still unknown stalls the load. pendingFences_/pendingStores_
    // are seq-sorted, so the oldest blocker is at the front.
    if (!pendingFences_.empty() && pendingFences_.front() < e.seq) {
        e.memGen = memGen_;
        return false;
    }
    if (!pendingStores_.empty() && pendingStores_.front() < e.seq) {
        e.memGen = memGen_;
        return false;
    }

    // Store-to-load forwarding: every older store has a resolved
    // address now; the youngest same-address one (the last match the
    // full scan kept) forwards its value.
    bool forwarded = false;
    std::uint64_t fwd_val = 0;
    std::uint64_t fwd_taint = 0;
    auto it = std::lower_bound(
        storeQ_.begin(), storeQ_.end(), e.seq,
        [](const auto &p, std::uint64_t s) { return p.first < s; });
    while (it != storeQ_.begin()) {
        --it;
        if (it->second->effAddr == e.effAddr) {
            forwarded = true;
            fwd_val = it->second->result;
            fwd_taint = it->second->srcLeakTaint[1];
            break;
        }
    }

    bool spec = isSpeculative(e);
    if (spec) {
        SpecContext ctx;
        ctx.pc = e.pc;
        ctx.dataVa = e.effAddr;
        ctx.func = e.func;
        ctx.speculative = true;
        ctx.tainted = addrTainted(e);
        ctx.kernelMode = e.kernel;
        ctx.asid = asid_;
        ctx.l1dHit = caches_.probeL1D(e.effAddr);
        ctx.now = now_;
        ctx.firstCheck = !e.counted;
        ctx.l1dContentGen = caches_.l1d().contentGenPtr();
        SpeculationPolicy *pol = policy_ ? policy_ : &unsafe_;
        Gate g = pol->gateLoad(ctx);
        ctrGateChecks_.inc();
        if (g == Gate::Block) {
            if (!e.counted) {
                e.counted = true;
                e.blockedSince = now_;
                ctrFences_.inc();
                if (e.kernel)
                    ctrFencesKernel_.inc();
                if (trace::enabled(trace::Flag::Fence)) {
                    trace::log(trace::Flag::Fence, now_,
                               pol->name() +
                                   std::string(" blocks ") +
                                   prog_.func(e.func).name + "[" +
                                   std::to_string(e.idx) + "]");
                }
            }
            e.state = EState::Blocked;
            ctrBlockedCycles_.inc();
            captureGateWake(e, ctx, *pol);
            return false;
        }
        if (g == Gate::AllowInvisible)
            e.invisible = true;
    }
    noteFenceStallEnd(e);

    Cycle lat;
    Cycle tlb_lat = 1;  ///< >1 means the walk filled the TLB
    Cycle mem_lat = 0;  ///< normal-path hierarchy round trip
    if (forwarded) {
        lat = 1;
        e.result = fwd_val;
    } else if (e.invisible) {
        // Invisible speculation (InvisiSpec-style): read the data at
        // the latency the hierarchy would charge, but leave no trace;
        // the line is installed at commit if the load survives.
        tlb_lat = dtlb_.translate(e.effAddr, asid_);
        lat = caches_.probeLatency(e.effAddr) +
              (tlb_lat > 1 ? tlb_lat : 0);
        e.result = mem_.read(e.effAddr);
        ctrLoadsInvisible_.inc();
    } else {
        tlb_lat = dtlb_.translate(e.effAddr, asid_);
        mem_lat = caches_.accessData(e.effAddr, &stats_);
        lat = mem_lat + (tlb_lat > 1 ? tlb_lat : 0);
        e.result = mem_.read(e.effAddr);
    }

    // Transient-leakage ledger (observation-only, DESIGN §5.6). A
    // tainted address reaching a durable uarch state change is a
    // transmission; a speculative load of ground-truth-secret data
    // opens a new taint source. Ordering matters: the transmission
    // uses the *address* operand's taint, the source taints the
    // *result*.
    if (ledgerArmed_) {
        const std::uint64_t addr_taint = e.srcLeakTaint[0];
        if (addr_taint != 0) {
            bool transmitted = false;
            if (tlb_lat > 1) {
                ledger_.noteTransmission(addr_taint,
                                         LeakChannel::TlbFill, e.pc,
                                         e.func);
                transmitted = true;
            }
            if (mem_lat > caches_.l1d().params().hit_latency) {
                ledger_.noteTransmission(addr_taint,
                                         LeakChannel::CacheInstall,
                                         e.pc, e.func);
                transmitted = true;
            }
            if (transmitted && eventsOn_)
                recordSpan(trace::Flag::Leak, e, now_, " (leak)");
        }
        std::uint64_t own = 0;
        // Ground truth is a kernel concept (ISV membership, DSV frame
        // ownership); user-mode speculation over the task's own pages
        // is not a kernel leak and is never classified.
        if (spec && e.kernel) {
            SecretVerdict v =
                ledger_.classify(e.effAddr, e.func, asid_, now_);
            if (v.secret) {
                e.leakSrcBit = ledger_.noteSecretLoad(
                    e.effAddr, e.pc, e.func, entryFunc_, v.window);
                own = std::uint64_t{1} << e.leakSrcBit;
            }
        }
        e.leakTaint = own | addr_taint | fwd_taint;
    }
    e.state = EState::Executing;
    e.issueCycle = now_;
    e.doneCycle = now_ + lat;
    eventQ_.emplace(e.doneCycle, e.seq, &e);
    histLoadWait_->sample(now_ - e.dispatchCycle);
    ctrLoads_.inc();
    if (spec)
        ctrLoadsSpec_.inc();
    return true;
}

void
Pipeline::rebuildRenameMap()
{
    renameValid_.fill(false);
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        RobEntry &e = rob_[i];
        if (e.op->dst != kNoReg) {
            renameMap_[e.op->dst] = e.seq;
            renameProd_[e.op->dst] = &e;
            renameValid_[e.op->dst] = true;
        }
    }
}

void
Pipeline::squashAfter(std::uint64_t seq)
{
    // The squash walk starts at the mispredicted entry's successors —
    // the ROB tail — so its cost is the number of squashed micro-ops,
    // never the ROB size. Each scheduling structure is seq-sorted, so
    // the squashed entries form an exact suffix of each.
    auto chopPairs = [seq](auto &c) {
        while (!c.empty() && c.back().first > seq)
            c.pop_back();
    };
    auto chopSeqs = [seq](auto &c) {
        while (!c.empty() && c.back() > seq)
            c.pop_back();
    };
    chopPairs(readyQ_);
    chopPairs(storeQ_);
    chopSeqs(pendingStores_);
    chopSeqs(pendingFences_);
    ++memGen_; // chopped fronts may have receded
    chopPairs(unresolvedCtls_);
    // eventQ_ entries for squashed seqs are dropped lazily on pop.

    std::uint64_t depth = 0;
    bool record = eventsOn_;
    while (!rob_.empty() && rob_.back().seq > seq) {
        RobEntry &victim = rob_.back();
        if (victim.op->op == Op::Load)
            --inflightLoads_;
        else if (victim.op->op == Op::Store)
            --inflightStores_;
        // A policy-blocked victim's stall ends here, by squash.
        if (victim.state == EState::Blocked)
            noteFenceStallEnd(victim);
        if (victim.leakSrcBit != LeakLedger::kNoSource)
            ledger_.retireSource(victim.leakSrcBit);
        if (record)
            recordSpan(trace::Flag::Squash, victim,
                       victim.dispatchCycle, " (squashed)");
        ctrSquashedUops_.inc();
        ++depth;
        // Invalidate the slot's seq so pointer-carrying references
        // (wakeup edges, events, unresolved-ctl fronts) read the
        // squash as a liveness miss until the slot is recycled.
        victim.seq = RobEntry::kNoSeq;
        rob_.pop_back();
    }
    histSquashDepth_->sample(depth);
    if (fetchBlockedOnSeq_ != RobEntry::kNoSeq &&
        fetchBlockedOnSeq_ > seq) {
        fetchBlockedOnSeq_ = RobEntry::kNoSeq;
    }
    rebuildRenameMap();
    lastFetchLine_ = ~Addr{0};
}

bool
Pipeline::resolveControl(RobEntry &e)
{
    bool mispredict = false;
    switch (e.op->op) {
      case Op::Branch: {
        bool taken = evalBranch(e);
        cond_.update(e.pc, taken, e.histCkpt);
        mispredict = taken != e.predictedTaken;
        if (mispredict) {
            squashAfter(e.seq);
            cond_.restoreHistory(e.histCkpt);
            cond_.speculate(taken);
            rsb_.restore(e.rsbCkpt);
            fetch_.func = e.func;
            fetch_.idx = taken ? e.op->target : e.idx + 1;
            fetch_.stack = e.stackCkpt;
            fetch_.halted = false;
        }
        break;
      }
      case Op::IndirectCall: {
        if (!validCallTarget(prog_, e.srcVal[0])) {
            // Wild pointer: architected no-op call (the rule shared
            // with the interpreter — see sim/superblock.hh). No
            // predictor learns the wild value and no frame is pushed;
            // whatever the front end did (followed a stale BTB target
            // or stalled) is undone and fetch resumes at fall-through.
            mispredict = true;
            squashAfter(e.seq);
            cond_.restoreHistory(e.histCkpt);
            rsb_.restore(e.rsbCkpt);
            fetch_.stack = e.stackCkpt;
            fetch_.func = e.func;
            fetch_.idx = e.idx + 1;
            fetch_.halted = false;
            if (fetchBlockedOnSeq_ == e.seq)
                fetchBlockedOnSeq_ = RobEntry::kNoSeq;
            break;
        }
        FuncId actual = static_cast<FuncId>(e.srcVal[0]);
        btb_.update(e.pc, actual);
        mispredict = e.predTargetFunc != actual;
        if (mispredict) {
            squashAfter(e.seq);
            cond_.restoreHistory(e.histCkpt);
            rsb_.restore(e.rsbCkpt);
            fetch_.stack = e.stackCkpt;
            Frame fr;
            fr.func = e.func;
            fr.retIdx = e.idx + 1;
            fr.slotVa =
                stackBase_ - 8 * (fetch_.stack.size() + 1);
            fetch_.stack.push_back(fr);
            rsb_.push({e.func, e.idx + 1});
            fetch_.func = actual;
            fetch_.idx = 0;
            fetch_.halted = false;
        }
        if (fetchBlockedOnSeq_ == e.seq)
            fetchBlockedOnSeq_ = RobEntry::kNoSeq;
        break;
      }
      case Op::Return: {
        if (e.sawHalt)
            break;
        const Frame &truth = e.stackCkpt.back();
        mispredict = e.predTargetFunc != truth.func ||
                     e.predTargetIdx != truth.retIdx;
        if (mispredict) {
            squashAfter(e.seq);
            cond_.restoreHistory(e.histCkpt);
            rsb_.restore(e.rsbCkpt);
            rsb_.pop();
            fetch_.stack = e.stackCkpt;
            fetch_.stack.pop_back();
            fetch_.func = truth.func;
            fetch_.idx = truth.retIdx;
            fetch_.halted = false;
        }
        break;
      }
      default:
        break;
    }
    e.resolved = true;
    if (mispredict) {
        if (trace::enabled(trace::Flag::Squash)) {
            trace::log(trace::Flag::Squash, now_,
                       "mispredict at " + prog_.func(e.func).name +
                           "[" + std::to_string(e.idx) +
                           "], redirect to " +
                           prog_.func(fetch_.func).name + "[" +
                           std::to_string(fetch_.idx) + "]");
        }
        if (eventsOn_)
            recordSpan(trace::Flag::Squash, e, now_, " (mispredict)");
        fetchSb_ = nullptr; // front-end redirect: drop the block cursor
        fetchStallUntil_ = now_ + params_.mispredictPenalty;
        ctrMispredicts_.inc();
        switch (e.op->op) {
          case Op::Branch: stats_.inc("mispredicts.branch"); break;
          case Op::IndirectCall: stats_.inc("mispredicts.icall"); break;
          case Op::Return: stats_.inc("mispredicts.ret"); break;
          default: break;
        }
        ctrSquashes_.inc();
    }
    return mispredict;
}

void
Pipeline::doCommit()
{
    unsigned n = 0;
    while (!rob_.empty() && n < params_.width) {
        RobEntry &e = rob_.front();
        if (e.state != EState::Done)
            break;
        if (e.isControl && !e.resolved)
            break;
        applyCommit(e);
        bool halt = e.sawHalt;
        rob_.pop_front();
        ++n;
        if (halt) {
            halted_ = true;
            break;
        }
    }
}

void
Pipeline::applyCommit(RobEntry &e)
{
    if (e.op->dst != kNoReg) {
        regs_[e.op->dst] = e.result;
        if (renameValid_[e.op->dst] && renameMap_[e.op->dst] == e.seq)
            renameValid_[e.op->dst] = false;
    }
    if (e.op->op == Op::Store) {
        mem_.write(e.effAddr, e.srcVal[1]);
        caches_.accessData(e.effAddr, &stats_);
        --inflightStores_;
        // In-order commit: this store is the oldest in flight.
        assert(!storeQ_.empty() && storeQ_.front().first == e.seq);
        storeQ_.pop_front();
    } else if (e.op->op == Op::Load) {
        // An invisibly-executed load becomes architecturally visible
        // at commit: install its line now (the InvisiSpec "expose").
        if (e.invisible)
            caches_.accessData(e.effAddr, &stats_);
        --inflightLoads_;
    }
    if (e.leakSrcBit != LeakLedger::kNoSource)
        ledger_.retireSource(e.leakSrcBit);
    ctrCommitted_.inc();
    if (e.kernel)
        ctrCommittedKernel_.inc();
    // Structured commit span: the instruction's dispatch-to-commit
    // lifetime, with its issue cycle in the args.
    if (eventsOn_)
        recordSpan(trace::Flag::Commit, e, e.dispatchCycle);
    if (trace::enabled(trace::Flag::Commit)) {
        trace::log(trace::Flag::Commit, now_,
                   prog_.func(e.func).name + "[" +
                       std::to_string(e.idx) + "] " +
                       e.op->toString());
    }
}

void
Pipeline::captureGateWake(RobEntry &e, const SpecContext &ctx,
                          SpeculationPolicy &pol)
{
    GateWake w = pol.gateWake(ctx);
    e.wakeEvery = w.everyCycle;
    e.wakeNumGens = static_cast<std::uint8_t>(w.numGens);
    for (unsigned i = 0; i < w.numGens; ++i) {
        e.wakeGen[i] = w.gen[i];
        e.wakeGenSeen[i] = *w.gen[i];
    }
    e.wakeRecheckAt = w.recheckAt;
    e.wakeHorizonGen = horizonGen_;
    e.wakeTally = w.blockedTally;
}

bool
Pipeline::gateWakeDue(const RobEntry &e) const
{
    if (e.wakeEvery)
        return true;
    // The horizon is an implicit wake source for every blocked load:
    // its movement is what flips `speculative`, clears STT taint and
    // releases the load at its Visibility Point.
    if (e.wakeHorizonGen != horizonGen_)
        return true;
    if (e.wakeRecheckAt != 0 && now_ >= e.wakeRecheckAt)
        return true;
    for (unsigned i = 0; i < e.wakeNumGens; ++i) {
        if (*e.wakeGen[i] != e.wakeGenSeen[i])
            return true;
    }
    return false;
}

bool
Pipeline::tryIssue(RobEntry &e)
{
    // One issue attempt for an operand-ready entry, in seq order.
    // Returns true when the entry left the ready queue (it entered an
    // FU); a false return keeps it queued for a retry next cycle with
    // the same side effects (policy gate calls, counters) the
    // full-ROB scan produced.
    if (e.op->op == Op::Load)
        return tryIssueLoad(e);

    if (e.op->op == Op::Fence) {
        // Serializing: completes only at the head of the ROB.
        if (e.seq != rob_.front().seq)
            return false;
    }
    if (e.op->op == Op::Store) {
        Addr base = e.op->src1 != kNoReg ? e.srcVal[0] : 0;
        e.effAddr = base + static_cast<std::uint64_t>(e.op->imm);
        e.addrValid = true;
        e.result = e.srcVal[1];
        // Address now resolved: younger loads may disambiguate.
        auto it = std::lower_bound(pendingStores_.begin(),
                                   pendingStores_.end(), e.seq);
        assert(it != pendingStores_.end() && *it == e.seq);
        pendingStores_.erase(it);
        ++memGen_;
    } else if (e.op->op == Op::IntAlu || e.op->op == Op::IntMul) {
        e.result = evalAlu(e);
        e.leakTaint = e.srcLeakTaint[0] | e.srcLeakTaint[1];
    } else if (e.op->op == Op::IndirectCall) {
        e.result = e.srcVal[0];
        e.leakTaint = e.srcLeakTaint[0];
    } else if (e.op->op == Op::Call) {
        // Return-address push: allocate the stack line.
        if (e.effAddr != 0)
            caches_.accessData(e.effAddr, &stats_);
    }
    e.state = EState::Executing;
    e.issueCycle = now_;
    e.doneCycle = now_ + execLatency(e);
    // Control flow resolves no earlier than the pipeline depth
    // past dispatch (fetch/decode/rename/issue stages).
    if (e.isControl) {
        e.doneCycle = std::max(
            e.doneCycle, e.dispatchCycle + params_.branchResolveDepth);
    }
    eventQ_.emplace(e.doneCycle, e.seq, &e);
    return true;
}

void
Pipeline::doExecute()
{
    // 1) Completions and control resolution, driven by the event
    // queue instead of a full-ROB rescan loop. The heap pops in
    // (cycle, seq) order; every live due event has doneCycle == now_
    // (nothing executes for zero cycles and completions drain every
    // cycle), so live entries complete in seq order — the order the
    // seq-sorted rescan processed them. Events whose entry was
    // squashed (lookup fails) are dropped; after a mispredict squash,
    // the remaining due events are exactly the squashed younger
    // entries the rescan would no longer find.
    eventQ_.drainUpTo(now_, [this](const EventRing::Ev &ev) {
        RobEntry *e = ev.entry;
        if (e->seq != ev.seq || e->state != EState::Executing)
            return; // squashed since issue (slot maybe recycled)
        e->state = EState::Done;
        onComplete(*e);
        if (e->isControl && !e->resolved)
            resolveControl(*e);
    });

    // The Visibility Point horizon for this cycle's issue decisions:
    // oldest still-unresolved control op. Lazy cursor, not a scan.
    // Any movement ticks the generation that wakes blocked loads.
    std::uint64_t h = horizonSeq();
    if (h != oldestUnresolvedCtl_) {
        oldestUnresolvedCtl_ = h;
        ++horizonGen_;
    }

    // 2) Issue: walk the ready queue (seq order, like the ROB scan)
    // and compact out the entries that issued. A policy-blocked
    // entry whose wake conditions all held still is not re-gated;
    // the elided call's accounting (blocked-cycle counter and the
    // policy's per-call tally) is replicated so the stats are
    // bit-identical to the every-cycle re-evaluation. Once the
    // issue width is consumed, nothing downstream is attempted —
    // the legacy scan short-circuited the same way.
    unsigned issues = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < readyQ_.size(); ++i) {
        RobEntry &e = *readyQ_[i].second;
        if (issues < params_.width) {
            if (e.state == EState::Blocked && !gateWakeDue(e)) {
                if (e.wakeTally)
                    e.wakeTally->inc();
                ctrBlockedCycles_.inc();
                ctrGateElided_.inc();
                readyQ_[keep++] = readyQ_[i];
                continue;
            }
            if (e.memGen == memGen_) {
                // Still behind the same fence/store front. The front
                // checks precede every other issue consideration and
                // a failed front attempt has no side effects, so the
                // retry is pure: same fronts, same false result.
                readyQ_[keep++] = readyQ_[i];
                continue;
            }
            if (tryIssue(e)) {
                ++issues;
                continue;
            }
        }
        readyQ_[keep++] = readyQ_[i];
    }
    readyQ_.resize(keep);
}

void
Pipeline::doFetch()
{
    if (halted_ || fetch_.halted)
        return;
    if (now_ < fetchStallUntil_)
        return;
    if (fetchBlockedOnSeq_ != RobEntry::kNoSeq)
        return;

    SpeculationPolicy *pol = policy_ ? policy_ : &unsafe_;
    unsigned n = 0;
    // Quiescent point: hand the straight-line run to the fast-forward
    // replica (pipeline_ff.cc). It returns having consumed part of
    // this cycle's fetch width; the loop below dispatches the
    // region's terminator through the detailed path.
    // The armed leakage ledger does not disengage regions: a region
    // is non-speculative by construction, so its loads are never
    // classified (classification requires speculation) and carry no
    // taint (transmission requires a tainted address) — the ledger
    // observes exactly nothing on either path (DESIGN §5.5).
    if (ffMode_ && rob_.empty() && scheduled_.empty() &&
        pol->allowFastForward()) {
        // Sampled mode: run functional skip/warm phases to their
        // boundaries first; the machine returns inside a detailed
        // window (or halted, in which case nothing is left to fetch).
        if (sampleMode_) {
            samplingStep(*pol);
            if (halted_ || fetch_.halted)
                return;
        }
        n = fastForwardRegion();
    }
    while (n < params_.width && rob_.size() < params_.robSize) {
        // Predecoded superblock stream: the function descriptor, op
        // PCs, dispatch kinds and cache-line transitions are resolved
        // once per straight-line run, not per fetched micro-op. The
        // cursor survives width/capacity/stall breaks mid-block and
        // is dropped on every front-end redirect.
        if (!fetchSb_) {
            if (fetch_.func != fetchFuncCached_) {
                fetchFuncCached_ = fetch_.func;
                fetchFuncPtr_ = &prog_.func(fetch_.func);
            }
            fetchSb_ = &sbCache_.at(fetch_.func, fetch_.idx);
            fetchSbPos_ = 0;
        }
        const SbOp &d = fetchSb_->ops[fetchSbPos_];
        assert(d.kind != kSbEnd &&
               "fetch ran off a function body; bodies must end in ret");
        const Function &f = *fetchFuncPtr_;
        const MicroOp &op = *d.op;

        if (op.op == Op::Load && inflightLoads_ >= params_.lqSize)
            break;
        if (op.op == Op::Store && inflightStores_ >= params_.sqSize)
            break;

        Addr pc = d.pc;
        // Ops past the first of a line were always preceded (same
        // block) by an op on the same line, so only line transitions
        // consult the I-cache.
        if (d.newLine) {
            Addr line = pc / 64;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                Cycle lat = caches_.accessInst(pc, &stats_);
                if (lat > caches_.l1i().params().hit_latency) {
                    fetchStallUntil_ = now_ + lat;
                    break;
                }
            }
        }

        // Recycled ring slot, filled in place — no move, no malloc.
        RobEntry &e = rob_.pushSlot();
        e.seq = nextSeq_++;
        e.func = fetch_.func;
        e.idx = fetch_.idx;
        e.pc = pc;
        e.op = &op;
        e.kernel = f.kernel;
        e.isControl = op.isControl();
        e.dispatchCycle = now_;

        switch (op.op) {
          case Op::IntAlu:
          case Op::IntMul:
          case Op::Branch:
            captureOperand(e, 0, op.src1);
            captureOperand(e, 1, op.src2);
            break;
          case Op::Load:
            captureOperand(e, 0, op.src1);
            captureOperand(e, 1, kNoReg);
            break;
          case Op::Store:
            captureOperand(e, 0, op.src1);
            captureOperand(e, 1, op.src2);
            break;
          case Op::IndirectCall:
            captureOperand(e, 0, op.src1);
            captureOperand(e, 1, kNoReg);
            break;
          default:
            captureOperand(e, 0, kNoReg);
            captureOperand(e, 1, kNoReg);
            break;
        }

        bool stop_fetch = false;
        switch (op.op) {
          case Op::Jump:
            fetch_.idx = op.target;
            break;
          case Op::Branch: {
            e.histCkpt = cond_.history();
            e.rsbCkpt = rsb_.save();
            bool taken = cond_.predict(pc);
            cond_.speculate(taken);
            e.predictedTaken = taken;
            e.stackCkpt = fetch_.stack;
            fetch_.idx = taken ? op.target : fetch_.idx + 1;
            break;
          }
          case Op::Call: {
            Frame fr;
            fr.func = fetch_.func;
            fr.retIdx = fetch_.idx + 1;
            fr.slotVa = stackBase_ - 8 * (fetch_.stack.size() + 1);
            e.effAddr = fr.slotVa;
            fetch_.stack.push_back(fr);
            rsb_.push({fr.func, fr.retIdx});
            const Function &callee = prog_.func(op.callee);
            if (callee.kernel && !f.kernel) {
                Cycle c = params_.kernelEntryCost +
                          pol->kernelEntryCost();
                if (c > 0)
                    fetchStallUntil_ = now_ + c;
                stats_.inc("kernel_entries");
            }
            fetch_.func = op.callee;
            fetch_.idx = 0;
            stop_fetch = fetchStallUntil_ > now_;
            break;
          }
          case Op::IndirectCall: {
            e.histCkpt = cond_.history();
            e.stackCkpt = fetch_.stack;
            e.rsbCkpt = rsb_.save();
            FuncId pred =
                pol->retpoline() ? kNoFunc : btb_.predict(pc);
            if (pred != kNoFunc &&
                !pol->cfiAllowsIndirectTarget(pred)) {
                // CFI label check rejects the predicted target:
                // speculation stalls until the call resolves.
                pred = kNoFunc;
            }
            if (pred == kNoFunc) {
                e.predTargetFunc = kNoFunc;
                fetchBlockedOnSeq_ = e.seq;
                stop_fetch = true;
            } else {
                e.predTargetFunc = pred;
                Frame fr;
                fr.func = fetch_.func;
                fr.retIdx = fetch_.idx + 1;
                fr.slotVa =
                    stackBase_ - 8 * (fetch_.stack.size() + 1);
                e.effAddr = fr.slotVa;
                fetch_.stack.push_back(fr);
                rsb_.push({fr.func, fr.retIdx});
                fetch_.func = pred;
                fetch_.idx = 0;
            }
            break;
          }
          case Op::Return: {
            e.histCkpt = cond_.history();
            e.stackCkpt = fetch_.stack;
            e.rsbCkpt = rsb_.save();
            if (fetch_.stack.empty()) {
                e.sawHalt = true;
                fetch_.halted = true;
                stop_fetch = true;
                break;
            }
            const Frame &truth = fetch_.stack.back();
            e.effAddr = truth.slotVa;
            bool underflow = rsb_.depth() == 0;
            Rsb::Target pred = rsb_.pop();
            fetch_.stack.pop_back();
            if (underflow) {
                // RSB underflow: real cores fall back to the indirect
                // predictor, which is what Retbleed poisons. Note
                // that retpoline does NOT protect returns — exactly
                // the gap Retbleed (Table 4.1, row 7) exploits. A
                // hardware shadow stack closes it.
                FuncId alt =
                    pol->shadowStack() ? kNoFunc : btb_.predict(pc);
                if (alt != kNoFunc) {
                    pred.func = alt;
                    pred.idx = 0;
                    stats_.inc("rsb_underflow_btb");
                } else {
                    pred.func = truth.func;
                    pred.idx = truth.retIdx;
                }
            } else if (pred.func == kNoFunc) {
                // Cold RSB slot: fall back to the in-order stack.
                pred.func = truth.func;
                pred.idx = truth.retIdx;
            }
            e.predTargetFunc = pred.func;
            e.predTargetIdx = pred.idx;
            if (f.kernel && !prog_.func(pred.func).kernel) {
                Cycle c = params_.kernelExitCost +
                          pol->kernelExitCost();
                if (c > 0)
                    fetchStallUntil_ = now_ + c;
            }
            fetch_.func = pred.func;
            fetch_.idx = pred.idx;
            stop_fetch = fetchStallUntil_ > now_;
            break;
          }
          default:
            fetch_.idx += 1;
            break;
        }

        // Straight-line ops advance the cursor; any terminator
        // (including a fence or an untaken-path branch) ends the
        // block and the next iteration re-resolves from fetch_.
        if (d.kind >= kSbBranch)
            fetchSb_ = nullptr;
        else
            ++fetchSbPos_;

        if (op.op == Op::Load)
            ++inflightLoads_;
        else if (op.op == Op::Store)
            ++inflightStores_;

        if (trace::enabled(trace::Flag::Fetch)) {
            trace::log(trace::Flag::Fetch, now_,
                       prog_.func(e.func).name + "[" +
                           std::to_string(e.idx) + "] " +
                           op.toString());
        }
        if (op.dst != kNoReg) {
            renameMap_[op.dst] = e.seq;
            renameProd_[op.dst] = &e;
            renameValid_[op.dst] = true;
        }
        registerDispatch(e);
        ++n;
        ctrFetched_.inc();
        if (stop_fetch)
            break;
    }
}

void
Pipeline::sampleTelemetry()
{
    if (!params_.detailedTelemetry)
        return;
    histRobOcc_->sample(rob_.size());
    tsRobOcc_->tick(now_, rob_.size());
    tsCommitted_->tick(now_, ctrCommitted_.value());
    tsFences_->tick(now_, ctrFences_.value());
}

Pipeline::Snapshot
Pipeline::snapshot() const
{
    assert(rob_.empty() &&
           "pipeline snapshots are only valid between runs");
    return {caches_,      dtlb_,    cond_,
            btb_,         rsb_,     stats_,
            regs_,        renameMap_, renameValid_,
            nextSeq_,     now_,     fetchStallUntil_,
            asid_,        stackBase_, ledger_.snapshot()};
}

void
Pipeline::restore(const Snapshot &s)
{
    assert(rob_.empty() &&
           "pipeline restore is only valid between runs");
    caches_ = s.caches;
    dtlb_ = s.dtlb;
    cond_ = s.cond;
    btb_ = s.btb;
    rsb_ = s.rsb;
    // In place: cached Counter/Histogram/TimeSeries handles (both the
    // pipeline's own and the policies') must stay bound.
    stats_.assignFrom(s.stats);
    regs_ = s.regs;
    renameMap_ = s.renameMap;
    renameValid_ = s.renameValid;
    nextSeq_ = s.nextSeq;
    now_ = s.now;
    fetchStallUntil_ = s.fetchStallUntil;
    asid_ = s.asid;
    stackBase_ = s.stackBase;
    ledger_.restore(s.ledger);
    // Scheduled callbacks capture experiment state from before the
    // rewind; firing them against restored state would be a use of a
    // dead world. The rewound experiment re-schedules its own.
    scheduled_.clear();
    // Decoded superblocks derive from the immutable Program and stay
    // valid; only the cursor (front-end position) is rewound.
    fetchSb_ = nullptr;
    fetchSbPos_ = 0;
    // The sampling phase machine anchors on the cumulative committed
    // count, which just rewound with the stats.
    resetSampling();
}

void
Pipeline::resetSampling()
{
    sampler_.reset();
    sampleInit_ = false;
    sampleFirstSkip_ = true;
}

void
Pipeline::flushSampleWindow()
{
    if (!sampleMode_ || !sampleInit_ ||
        samplePhase_ != SamplePhase::Detailed)
        return;
    std::uint64_t committed = ctrCommitted_.value();
    if (committed > sampleWindowStartInsts_)
        sampler_.addWindow(now_ - sampleWindowStartCycle_,
                           committed - sampleWindowStartInsts_);
    sampleWindowStartInsts_ = committed;
    sampleWindowStartCycle_ = now_;
}

void
Pipeline::runScheduled()
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < scheduled_.size(); ++i) {
        if (scheduled_[i].first <= now_)
            scheduled_[i].second();
        else
            scheduled_[kept++] = std::move(scheduled_[i]);
    }
    scheduled_.resize(kept);
}

RunResult
Pipeline::run(FuncId entry)
{
    fetch_ = FetchState{};
    fetch_.func = entry;
    fetch_.idx = 0;
    halted_ = false;
    rob_.clear();
    readyQ_.clear();
    eventQ_.clear(now_ + 1); // first drain happens at now_ + 1
    storeQ_.clear();
    pendingStores_.clear();
    pendingFences_.clear();
    unresolvedCtls_.clear();
    oldestUnresolvedCtl_ = RobEntry::kNoSeq;
    renameValid_.fill(false);
    inflightLoads_ = 0;
    inflightStores_ = 0;
    fetchBlockedOnSeq_ = RobEntry::kNoSeq;
    fetchStallUntil_ = 0;
    lastFetchLine_ = ~Addr{0};
    fetchSb_ = nullptr;
    fetchSbPos_ = 0;
    // Per-run latch: the structured event log is consulted once, not
    // per committed/squashed micro-op. Same for the leakage ledger's
    // armed state and the run's syscall entry point (attribution).
    eventsOn_ = trace::eventsEnabled();
    ledgerArmed_ = ledger_.armed();
    entryFunc_ = entry;
    // Fast-forward engages only when nothing needs the per-cycle
    // detailed path: no per-cycle sampling, no structured events, no
    // text tracing. The policy is consulted again at each engagement
    // (its answer can change as dynamic-update state drains).
    ffMode_ = params_.fastForward && !params_.detailedTelemetry &&
              !eventsOn_ && !trace::anyEnabled();
    // Sampling rides on the fast-forward preconditions: anything that
    // demands the per-cycle detailed path also invalidates functional
    // skipping. The armed leakage ledger does not disengage it either
    // — functional phases are non-speculative by construction (same
    // argument as regions above) — but the ledger then only observes
    // the detailed windows; leak *measurement* runs force the
    // detailed path via the policy's allowFastForward hook and by
    // leaving sampling off (DESIGN §5.8).
    sampleMode_ = params_.sampling.enabled && ffMode_;

    Cycle start = now_;
    std::uint64_t start_inst = stats_.get("committed");

    while (!halted_) {
        ++now_;
        if (!scheduled_.empty())
            runScheduled();
        doCommit();
        if (halted_)
            break;
        doExecute();
        doFetch();
        sampleTelemetry();
        if (ffMode_)
            skipIdleCycles();
        if (now_ - start > params_.maxCycles) {
            throw std::runtime_error(
                "Pipeline::run exceeded maxCycles; likely deadlock");
        }
    }

    // Superblock-cache telemetry for the harness (bench_report's
    // summary): published as deltas because the cache spans runs
    // while the stats may be cleared between them. Harness-side
    // counters, like ff.*: the two execution modes may legitimately
    // disagree on them.
    stats_.counter("sb.cache.hits")
        .inc(sbCache_.hits() - sbHitsSeen_);
    stats_.counter("sb.cache.misses")
        .inc(sbCache_.misses() - sbMissesSeen_);
    sbHitsSeen_ = sbCache_.hits();
    sbMissesSeen_ = sbCache_.misses();

    RunResult r;
    r.cycles = now_ - start;
    r.instructions = stats_.get("committed") - start_inst;
    return r;
}

} // namespace perspective::sim
