/**
 * @file
 * Sparse backing store for simulated memory values.
 *
 * The cache hierarchy models *timing* by tag; this class models the
 * *values* that data-flow through micro-ops (secrets, indices, function
 * pointers). Unwritten locations read as zero, like zero-filled pages.
 *
 * Storage is a sparse page table of flat 4 KiB word arrays: one hash
 * lookup per page (cached across consecutive same-page accesses)
 * instead of one per word. Pages are reference-counted so snapshot()
 * is O(pages) pointer copies and restore() is copy-on-write: a
 * restored Memory shares pages with its snapshot and clones a page
 * only when it is first written. Boot images shared across sweep
 * cells ride on exactly this mechanism.
 *
 * Semantics note: like the original word map, each distinct *byte*
 * address names its own independent 64-bit cell — writing addr 0 and
 * addr 4 stores two values that do not alias. 8-aligned addresses
 * (the overwhelmingly common case) live in the page arrays; the rare
 * unaligned cells fall back to a word map.
 */

#ifndef PERSPECTIVE_SIM_MEMORY_HH
#define PERSPECTIVE_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "types.hh"

namespace perspective::sim
{

/** Word-granular sparse memory. Addresses are byte addresses. */
class Memory
{
    struct Page; // defined below; Snapshot shares pages by pointer

  public:
    static constexpr unsigned kPageShift = 12; ///< 4 KiB pages
    static constexpr unsigned kWordsPerPage = 1u << (kPageShift - 3);

    Memory() = default;

    // Copies share pages copy-on-write; the caches are per-instance.
    Memory(const Memory &o)
        : pages_(o.pages_), unaligned_(o.unaligned_),
          alignedWords_(o.alignedWords_)
    {
    }

    Memory &
    operator=(const Memory &o)
    {
        if (this != &o) {
            pages_ = o.pages_;
            unaligned_ = o.unaligned_;
            alignedWords_ = o.alignedWords_;
            invalidateCaches();
        }
        return *this;
    }

    /** Read the 64-bit word at @p addr (zero if never written). */
    std::uint64_t
    read(Addr addr) const
    {
        if (addr & 7) [[unlikely]] {
            auto it = unaligned_.find(addr);
            return it == unaligned_.end() ? 0 : it->second;
        }
        Addr key = addr >> kPageShift;
        if (key != readKey_) {
            auto it = pages_.find(key);
            readPage_ = it == pages_.end() ? nullptr : it->second.get();
            readKey_ = key;
        }
        if (!readPage_)
            return 0;
        return readPage_->word[wordIndex(addr)];
    }

    /** Write the 64-bit word at @p addr. */
    void
    write(Addr addr, std::uint64_t value)
    {
        if (addr & 7) [[unlikely]] {
            unaligned_[addr] = value;
            return;
        }
        Page *p = writablePage(addr >> kPageShift);
        unsigned idx = wordIndex(addr);
        std::uint64_t bit = std::uint64_t{1} << (idx & 63);
        std::uint64_t &mask = p->written[idx >> 6];
        if (!(mask & bit)) {
            mask |= bit;
            ++alignedWords_;
        }
        p->word[idx] = value;
    }

    /** Number of distinct words ever written. */
    std::size_t
    footprint() const
    {
        return alignedWords_ + unaligned_.size();
    }

    void
    clear()
    {
        pages_.clear();
        unaligned_.clear();
        alignedWords_ = 0;
        invalidateCaches();
    }

    /**
     * A copy-on-write checkpoint of the full contents. Cheap to take
     * (per-page shared_ptr copies) and to restore; pages are cloned
     * lazily, on first write after a snapshot/restore. The snapshot
     * stays valid for any number of restores and is independent of
     * the Memory it came from.
     */
    struct Snapshot
    {
        friend class Memory;

      private:
        std::unordered_map<Addr, std::shared_ptr<Page>> pages;
        std::unordered_map<Addr, std::uint64_t> unaligned;
        std::size_t alignedWords = 0;
    };

    Snapshot
    snapshot() const
    {
        Snapshot s;
        s.pages = pages_;
        s.unaligned = unaligned_;
        s.alignedWords = alignedWords_;
        // Every page is now shared with the snapshot: the next write
        // to any of them must clone, so drop the writable cache.
        writeKey_ = kNoKey;
        writePage_ = nullptr;
        return s;
    }

    void
    restore(const Snapshot &s)
    {
        pages_ = s.pages;
        unaligned_ = s.unaligned;
        alignedWords_ = s.alignedWords;
        invalidateCaches();
    }

  private:
    struct Page
    {
        std::array<std::uint64_t, kWordsPerPage> word{};
        /** Footprint bookkeeping: which words were ever written. */
        std::array<std::uint64_t, kWordsPerPage / 64> written{};
    };

    static unsigned
    wordIndex(Addr addr)
    {
        return static_cast<unsigned>((addr >> 3) &
                                     (kWordsPerPage - 1));
    }

    Page *
    writablePage(Addr key)
    {
        if (key == writeKey_)
            return writePage_;
        std::shared_ptr<Page> &slot = pages_[key];
        if (!slot)
            slot = std::make_shared<Page>();
        else if (slot.use_count() > 1)
            slot = std::make_shared<Page>(*slot); // copy-on-write
        writeKey_ = key;
        writePage_ = slot.get();
        if (readKey_ == key)
            readPage_ = writePage_;
        return writePage_;
    }

    void
    invalidateCaches() const
    {
        readKey_ = kNoKey;
        readPage_ = nullptr;
        writeKey_ = kNoKey;
        writePage_ = nullptr;
    }

    static constexpr Addr kNoKey = ~Addr{0};

    std::unordered_map<Addr, std::shared_ptr<Page>> pages_;
    /** Cells at non-8-aligned byte addresses (rare; see file note). */
    std::unordered_map<Addr, std::uint64_t> unaligned_;
    std::size_t alignedWords_ = 0;

    // One-entry lookup caches; accesses cluster heavily by page.
    mutable Addr readKey_ = kNoKey;
    mutable const Page *readPage_ = nullptr;
    mutable Addr writeKey_ = kNoKey;
    mutable Page *writePage_ = nullptr;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_MEMORY_HH
