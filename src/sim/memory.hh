/**
 * @file
 * Sparse backing store for simulated memory values.
 *
 * The cache hierarchy models *timing* by tag; this class models the
 * *values* that data-flow through micro-ops (secrets, indices, function
 * pointers). Unwritten locations read as zero, like zero-filled pages.
 */

#ifndef PERSPECTIVE_SIM_MEMORY_HH
#define PERSPECTIVE_SIM_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "types.hh"

namespace perspective::sim
{

/** Word-granular sparse memory. Addresses are byte addresses. */
class Memory
{
  public:
    /** Read the 64-bit word at @p addr (zero if never written). */
    std::uint64_t
    read(Addr addr) const
    {
        auto it = words_.find(addr);
        return it == words_.end() ? 0 : it->second;
    }

    /** Write the 64-bit word at @p addr. */
    void
    write(Addr addr, std::uint64_t value)
    {
        words_[addr] = value;
    }

    /** Number of distinct words ever written. */
    std::size_t footprint() const { return words_.size(); }

    void clear() { words_.clear(); }

  private:
    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_MEMORY_HH
