/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's debug flags:
 * named categories that can be switched on at runtime (or through the
 * PERSPECTIVE_TRACE environment variable, comma-separated), each
 * emitting one line per event to a configurable stream. All logging
 * is compiled in but costs a single branch when disabled.
 */

#ifndef PERSPECTIVE_SIM_TRACE_HH
#define PERSPECTIVE_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "types.hh"

namespace perspective::sim::trace
{

/** Trace categories. */
enum class Flag : std::uint32_t
{
    Fetch = 1u << 0,   ///< micro-ops entering the ROB
    Commit = 1u << 1,  ///< micro-ops retiring
    Squash = 1u << 2,  ///< mispredictions and their redirects
    Fence = 1u << 3,   ///< policy-blocked transmitters
    Predict = 1u << 4, ///< BTB/RSB/conditional predictions
};

/** Enable one category. */
void enable(Flag f);

/** Disable one category. */
void disable(Flag f);

/** Disable everything and restore the default stream. */
void reset();

/** True when @p f is enabled (the fast-path check). */
bool enabled(Flag f);

/**
 * Parse a comma-separated flag list ("commit,squash"); unknown names
 * are ignored. Returns the number of flags enabled.
 */
unsigned enableFromString(const std::string &spec);

/** Read PERSPECTIVE_TRACE from the environment, if set. */
void enableFromEnvironment();

/** Redirect trace output (defaults to std::cerr). */
void setStream(std::ostream *os);

/** Emit one line: "<cycle>: <tag>: <message>". */
void log(Flag f, Cycle cycle, const std::string &message);

} // namespace perspective::sim::trace

#endif // PERSPECTIVE_SIM_TRACE_HH
