/**
 * @file
 * Debug tracing, in the spirit of gem5's debug flags, with two sinks:
 *
 *  - a text sink: named categories that can be switched on at runtime
 *    (or through the PERSPECTIVE_TRACE environment variable,
 *    comma-separated), each emitting one line per event to a
 *    configurable stream;
 *  - a structured sink (EventLog): when installed, the pipeline
 *    records typed span/instant events (fetch-to-commit spans,
 *    squashes, fence stalls) that the harness can serialize as Chrome
 *    trace_event JSON for chrome://tracing / Perfetto.
 *
 * All logging is compiled in but costs a single branch when disabled.
 */

#ifndef PERSPECTIVE_SIM_TRACE_HH
#define PERSPECTIVE_SIM_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace perspective::sim::trace
{

/** Trace categories. */
enum class Flag : std::uint32_t
{
    Fetch = 1u << 0,   ///< micro-ops entering the ROB
    Commit = 1u << 1,  ///< micro-ops retiring
    Squash = 1u << 2,  ///< mispredictions and their redirects
    Fence = 1u << 3,   ///< policy-blocked transmitters
    Predict = 1u << 4, ///< BTB/RSB/conditional predictions
    Leak = 1u << 5,    ///< transient-leakage transmissions (DESIGN §5.6)
    Window = 1u << 6,  ///< dynamic-update (revocation/flip) windows
};

/** Lower-case name of @p f ("fetch", "commit", ...). */
const char *flagName(Flag f);

/** Enable one category. */
void enable(Flag f);

/** Disable one category. */
void disable(Flag f);

/**
 * Disable everything and restore the default stream. The outgoing
 * stream is flushed (under the emission lock) before being dropped so
 * short traced runs never lose buffered tail lines.
 */
void reset();

/** True when @p f is enabled (the fast-path check). */
bool enabled(Flag f);

/** True when any text-trace category is enabled (used to disengage
 * whole-region fast paths that would skip per-op log sites). */
bool anyEnabled();

/**
 * Parse a comma-separated flag list ("commit,squash"); unknown names
 * are ignored. Returns the number of flags enabled.
 */
unsigned enableFromString(const std::string &spec);

/** Read PERSPECTIVE_TRACE from the environment, if set. */
void enableFromEnvironment();

/** Redirect trace output (defaults to std::cerr). */
void setStream(std::ostream *os);

/** Emit one line: "<cycle>: <tag>: <message>". */
void log(Flag f, Cycle cycle, const std::string &message);

// ---- structured event sink -----------------------------------------

/**
 * One structured trace event. @p dur == 0 marks an instant event
 * (a squash point); otherwise the event is a [start, start+dur) span
 * in simulated cycles (an instruction's dispatch-to-commit lifetime
 * or a fence-stall window).
 */
struct Event
{
    Flag flag = Flag::Commit; ///< category
    Cycle start = 0;          ///< span start (simulated cycle)
    Cycle dur = 0;            ///< span length; 0 = instant event
    Cycle issue = 0;          ///< issue cycle within the span, if any
    std::uint64_t seq = 0;    ///< pipeline sequence number
    unsigned lane = 0;        ///< recording thread lane (sweep cells)
    bool kernel = false;
    std::string name;         ///< op or event description
    std::string func;         ///< containing simulated function
};

/**
 * A bounded, thread-safe collector of structured events. Each
 * recording thread is assigned a small stable lane id (Chrome trace
 * "tid"), so a parallel sweep's cells land on separate tracks. Past
 * @p capacity, events are dropped and counted rather than growing
 * without bound — a full lebench sweep commits tens of millions of
 * micro-ops.
 */
class EventLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = 100'000;

    explicit EventLog(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    /** Append @p ev (fills Event::lane); drops when full. */
    void record(Event ev);

    /** Copy of everything recorded so far. */
    std::vector<Event> snapshot() const;

    std::size_t size() const;
    std::uint64_t dropped() const;

    /**
     * Per-lane drop counts (index = lane id). Lanes that never
     * dropped report 0; the vector covers every lane ever assigned.
     * Silent truncation reads as "nothing happened" — surface this.
     */
    std::vector<std::uint64_t> droppedByLane() const;

    void clear();

  private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::vector<Event> events_;
    std::uint64_t dropped_ = 0;
    std::vector<std::uint64_t> droppedByLane_;
    unsigned nextLane_ = 0;
};

/**
 * Install @p log as the global structured sink (nullptr detaches).
 * The caller keeps ownership and must outlive any traced run.
 */
void setEventLog(EventLog *log);

/** The installed sink, or nullptr. */
EventLog *eventLog();

/** Fast-path check: is a structured sink installed? */
bool eventsEnabled();

} // namespace perspective::sim::trace

#endif // PERSPECTIVE_SIM_TRACE_HH
