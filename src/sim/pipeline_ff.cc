/**
 * @file
 * The fast-forward engine (PipelineParams::fastForward, DESIGN §5.5):
 * two exact mechanisms that let the core sprint through work the
 * detailed out-of-order machinery would simulate one cycle at a time.
 *
 *  1. Idle-cycle skip (skipIdleCycles): when provably nothing can
 *     change — no due completion, empty ready queue, commit head not
 *     Done, front end stalled/blocked, no scheduled callback — now_
 *     jumps directly to the next bounding event. Kernel entry/exit
 *     microcode stalls, mispredict redirect penalties and DRAM-bound
 *     front-end stalls all collapse to O(1).
 *
 *  2. Quiescent-point region execution (fastForwardRegion): with the
 *     ROB empty and the front end clean, the upcoming straight-line
 *     run (no control ops, no fences — hence non-speculative by
 *     construction, no gate checks, no taint, no squashes) executes
 *     on a compact replica of the commit/execute/fetch phases. The
 *     replica observes the same caches, TLB and memory in the same
 *     per-cycle order, so every latency and counter is bit-identical;
 *     at the first terminator the in-flight suffix is materialized
 *     back into real ROB entries and the detailed path resumes
 *     mid-cycle with the remaining fetch width.
 *
 * Both mechanisms are timing-exact: a fastForward run reports the
 * same cycles, committed-op counts, stats and histogram samples as
 * the detailed run, which tests/sim/test_fastforward.cc enforces
 * differentially.
 */

#include "pipeline.hh"

#include <algorithm>
#include <cassert>
#include <limits>

namespace perspective::sim
{

void
Pipeline::skipIdleCycles()
{
    // All conditions below are monotone until one of the bounding
    // events, so cycles strictly between now_ and the bound perform
    // no state change at all (and sample no telemetry: fast-forward
    // mode requires detailedTelemetry off).
    if (!readyQ_.empty())
        return; // issue phase has work (or a blocked-elision count)
    if (!rob_.empty() && rob_.front().state == EState::Done)
        return; // commits next cycle
    bool fetchCan = !halted_ && !fetch_.halted &&
                    fetchBlockedOnSeq_ == RobEntry::kNoSeq &&
                    fetchStallUntil_ <= now_ + 1 &&
                    rob_.size() < params_.robSize;
    if (fetchCan)
        return;

    constexpr Cycle kNever = std::numeric_limits<Cycle>::max();
    Cycle bound = kNever;
    if (!eventQ_.empty())
        bound = std::min(bound, eventQ_.nextCycle());
    if (!halted_ && !fetch_.halted &&
        fetchBlockedOnSeq_ == RobEntry::kNoSeq)
        bound = std::min(bound, fetchStallUntil_);
    for (const auto &s : scheduled_)
        bound = std::min(bound, s.first);
    if (bound == kNever || bound <= now_ + 1)
        return; // unbounded (deadlock path: let maxCycles fire
                // exactly as the detailed loop would) or imminent
    ctrFfCycles_.inc(bound - 1 - now_);
    now_ = bound - 1; // the next ++now_ lands on the bounding event
}

unsigned
Pipeline::fastForwardRegion()
{
    // Entered from doFetch at a quiescent point: ROB (hence every
    // scheduling structure) empty, front end clean and unstalled, no
    // scheduled kernel events, ledger disarmed, policy consenting.
    // From here the machine is deterministic and non-speculative
    // until the next predictor-resolved control op or fence: Jump and
    // Call redirect fetch in the same cycle without entering the
    // predictors' resolution path, so regions chain across them (the
    // kernel-entry stall included). The replica below runs the same
    // commit -> complete -> issue -> fetch phases against the same
    // caches/TLB/memory in the same order, so every latency, counter
    // and histogram sample lands exactly as in the detailed loop.

    // Resolve the front-end position exactly as doFetch would.
    if (!fetchSb_) {
        if (fetch_.func != fetchFuncCached_) {
            fetchFuncCached_ = fetch_.func;
            fetchFuncPtr_ = &prog_.func(fetch_.func);
        }
        fetchSb_ = &sbCache_.at(fetch_.func, fetch_.idx);
        fetchSbPos_ = 0;
    }
    const Superblock *sb = fetchSb_;
    std::size_t pos = fetchSbPos_;
    {
        std::uint8_t k = sb->ops[pos].kind;
        if (k >= kSbBranch && k != kSbJump && k != kSbCall)
            return 0; // a resolver-terminator is up next
    }

    SpeculationPolicy *pol = policy_ ? policy_ : &unsafe_;
    FuncId curFunc = fetch_.func;
    const Function *curFn = fetchFuncPtr_;
    std::uint32_t curIdx = fetch_.idx;
    const std::uint64_t seqBase = nextSeq_;
    const Cycle entryNow = now_;

    ffEnts_.clear();
    ffReady_.clear();
    ffHeap_.clear();
    ffStores_.clear();
    ffPendSt_.clear();
    ffWake_.clear();
    ffRegWriter_.fill(-1);

    std::size_t head = 0; ///< next region index to commit
    unsigned lds = 0, sts = 0; ///< uncommitted loads/stores
    unsigned fetched = 0; ///< ops dispatched in the current cycle
    bool ended = false;

    // captureOperand against region producers: the rename map is all
    // invalid at engagement (empty ROB), so a register reads its last
    // uncommitted region writer, else the architectural file (which
    // region commits keep up to date, exactly like applyCommit).
    auto capture = [&](FfEntry &e, unsigned slot, RegId reg) {
        if (reg == kNoReg)
            return; // defaults: ready, value 0, no producer
        e.srcReg[slot] = reg;
        std::int32_t w = ffRegWriter_[reg];
        if (w >= 0 && ffEnts_[w].state != 3) {
            e.srcProd[slot] = w;
            if (ffEnts_[w].state == 2)
                e.srcVal[slot] = ffEnts_[w].result;
            else
                e.srcReady[slot] = false;
        } else {
            e.srcVal[slot] = regs_[reg];
        }
    };

    auto heapPush = [&](Cycle c, std::uint32_t id) {
        ffHeap_.emplace_back(c, id);
        std::push_heap(ffHeap_.begin(), ffHeap_.end(),
                       std::greater<>{});
    };

    // One issue attempt, mirroring tryIssue/tryIssueLoad for the
    // non-speculative op classes a region can hold. No gate checks
    // (never speculative), no fence case (fences end regions).
    auto tryIssueFf = [&](FfEntry &e, std::uint32_t id) -> bool {
        switch (e.kind) {
          case kSbLoad: {
            if (!e.addrValid) {
                Addr base = e.op->src1 != kNoReg ? e.srcVal[0] : 0;
                e.effAddr =
                    base + static_cast<std::uint64_t>(e.op->imm);
                e.addrValid = true;
            }
            if (!ffPendSt_.empty() && ffPendSt_.front() < id)
                return false; // older store address unknown
            bool fwd = false;
            std::uint64_t fwdVal = 0;
            for (auto it = ffStores_.rbegin();
                 it != ffStores_.rend(); ++it) {
                if (*it >= id)
                    continue;
                if (ffEnts_[*it].effAddr == e.effAddr) {
                    fwd = true;
                    fwdVal = ffEnts_[*it].result;
                    break;
                }
            }
            Cycle lat;
            if (fwd) {
                lat = 1;
                e.result = fwdVal;
            } else {
                Cycle tlbLat = dtlb_.translate(e.effAddr, asid_);
                Cycle memLat = caches_.accessData(e.effAddr, &stats_);
                lat = memLat + (tlbLat > 1 ? tlbLat : 0);
                e.result = mem_.read(e.effAddr);
            }
            e.state = 1;
            e.issue = now_;
            e.done = now_ + lat;
            heapPush(e.done, id);
            histLoadWait_->sample(now_ - e.dispatch);
            ctrLoads_.inc();
            return true;
          }
          case kSbStore: {
            Addr base = e.op->src1 != kNoReg ? e.srcVal[0] : 0;
            e.effAddr = base + static_cast<std::uint64_t>(e.op->imm);
            e.addrValid = true;
            e.result = e.srcVal[1];
            auto it = std::lower_bound(ffPendSt_.begin(),
                                       ffPendSt_.end(), id);
            assert(it != ffPendSt_.end() && *it == id);
            ffPendSt_.erase(it);
            e.state = 1;
            e.issue = now_;
            e.done = now_ + 1;
            heapPush(e.done, id);
            return true;
          }
          case kSbCall: {
            // Return-address push: allocate the stack line.
            if (e.effAddr != 0)
                caches_.accessData(e.effAddr, &stats_);
            e.state = 1;
            e.issue = now_;
            e.done = now_ + 1;
            heapPush(e.done, id);
            return true;
          }
          case kSbMul: {
            std::uint64_t b =
                e.op->src2 != kNoReg
                    ? e.srcVal[1]
                    : static_cast<std::uint64_t>(e.op->imm);
            e.result = evalAluOp(*e.op, e.srcVal[0], b);
            e.state = 1;
            e.issue = now_;
            e.done = now_ + 3;
            heapPush(e.done, id);
            return true;
          }
          case kSbNop:
          case kSbJump: {
            e.state = 1;
            e.issue = now_;
            e.done = now_ + 1;
            heapPush(e.done, id);
            return true;
          }
          default: { // unfolded ALU kinds
            std::uint64_t b =
                e.op->src2 != kNoReg
                    ? e.srcVal[1]
                    : static_cast<std::uint64_t>(e.op->imm);
            e.result = evalAluOp(*e.op, e.srcVal[0], b);
            e.state = 1;
            e.issue = now_;
            e.done = now_ + 1;
            heapPush(e.done, id);
            return true;
          }
        }
    };

    auto commitPhase = [&]() {
        unsigned n = 0;
        while (head < ffEnts_.size() && n < params_.width) {
            FfEntry &e = ffEnts_[head];
            if (e.state != 2)
                break;
            if (e.op->dst != kNoReg)
                regs_[e.op->dst] = e.result;
            if (e.kind == kSbStore) {
                mem_.write(e.effAddr, e.srcVal[1]);
                caches_.accessData(e.effAddr, &stats_);
                assert(!ffStores_.empty() &&
                       ffStores_.front() == head);
                ffStores_.erase(ffStores_.begin());
                --sts;
            } else if (e.kind == kSbLoad) {
                --lds;
            }
            ctrCommitted_.inc();
            if (e.kernel)
                ctrCommittedKernel_.inc();
            ctrFfUops_.inc();
            e.state = 3;
            ++head;
            ++n;
        }
    };

    auto completePhase = [&]() {
        while (!ffHeap_.empty() && ffHeap_.front().first <= now_) {
            std::uint32_t id = ffHeap_.front().second;
            std::pop_heap(ffHeap_.begin(), ffHeap_.end(),
                          std::greater<>{});
            ffHeap_.pop_back();
            FfEntry &e = ffEnts_[id];
            e.state = 2;
            for (std::int32_t w = e.wakeHead; w >= 0;) {
                const FfWake &wn = ffWake_[w];
                FfEntry &c = ffEnts_[wn.cons];
                c.srcVal[wn.slot] = e.result;
                c.srcReady[wn.slot] = true;
                if (--c.pendingSrcs == 0) {
                    auto it = std::lower_bound(ffReady_.begin(),
                                               ffReady_.end(),
                                               wn.cons);
                    ffReady_.insert(it, wn.cons);
                }
                w = wn.next;
            }
            e.wakeHead = -1;
        }
    };

    auto issuePhase = [&]() {
        unsigned issues = 0;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ffReady_.size(); ++i) {
            std::uint32_t id = ffReady_[i];
            if (issues < params_.width &&
                tryIssueFf(ffEnts_[id], id)) {
                ++issues;
                continue;
            }
            ffReady_[keep++] = id;
        }
        ffReady_.resize(keep);
    };

    auto fetchPhase = [&]() {
        while (fetched < params_.width &&
               ffEnts_.size() - head < params_.robSize) {
            if (!sb) {
                if (curFunc != fetchFuncCached_) {
                    fetchFuncCached_ = curFunc;
                    fetchFuncPtr_ = &prog_.func(curFunc);
                }
                curFn = fetchFuncPtr_;
                sb = &sbCache_.at(curFunc, curIdx);
                pos = 0;
            }
            const SbOp &d = sb->ops[pos];
            if (d.kind >= kSbBranch && d.kind != kSbJump &&
                d.kind != kSbCall) {
                ended = true;
                return;
            }
            const MicroOp &op = *d.op;
            if (d.kind == kSbLoad && lds >= params_.lqSize)
                return;
            if (d.kind == kSbStore && sts >= params_.sqSize)
                return;
            if (d.newLine) {
                Addr line = d.pc / 64;
                if (line != lastFetchLine_) {
                    lastFetchLine_ = line;
                    Cycle lat = caches_.accessInst(d.pc, &stats_);
                    if (lat > caches_.l1i().params().hit_latency) {
                        fetchStallUntil_ = now_ + lat;
                        return;
                    }
                }
            }

            FfEntry e;
            e.op = &op;
            e.pc = d.pc;
            e.kind = d.kind;
            e.func = curFunc;
            e.idx = curIdx;
            e.kernel = curFn->kernel;
            e.dispatch = now_;
            switch (op.op) {
              case Op::IntAlu:
              case Op::IntMul:
              case Op::Store:
                capture(e, 0, op.src1);
                capture(e, 1, op.src2);
                break;
              case Op::Load:
                capture(e, 0, op.src1);
                break;
              default:
                break;
            }

            bool stopFetch = false;
            switch (op.op) {
              case Op::Jump:
                curIdx = op.target;
                sb = nullptr;
                break;
              case Op::Call: {
                Frame fr;
                fr.func = curFunc;
                fr.retIdx = curIdx + 1;
                fr.slotVa =
                    stackBase_ - 8 * (fetch_.stack.size() + 1);
                e.effAddr = fr.slotVa;
                fetch_.stack.push_back(fr);
                rsb_.push({fr.func, fr.retIdx});
                const Function &callee = prog_.func(op.callee);
                if (callee.kernel && !curFn->kernel) {
                    Cycle c = params_.kernelEntryCost +
                              pol->kernelEntryCost();
                    if (c > 0)
                        fetchStallUntil_ = now_ + c;
                    stats_.inc("kernel_entries");
                }
                curFunc = op.callee;
                curIdx = 0;
                sb = nullptr;
                stopFetch = fetchStallUntil_ > now_;
                break;
              }
              default:
                curIdx += 1;
                ++pos;
                break;
            }

            std::uint32_t id =
                static_cast<std::uint32_t>(ffEnts_.size());
            e.pendingSrcs = static_cast<std::uint8_t>(
                unsigned{!e.srcReady[0]} + unsigned{!e.srcReady[1]});
            ffEnts_.push_back(e);
            for (unsigned s = 0; s < 2; ++s) {
                if (!ffEnts_[id].srcReady[s]) {
                    FfEntry &p = ffEnts_[ffEnts_[id].srcProd[s]];
                    ffWake_.push_back(
                        {id, static_cast<std::uint8_t>(s),
                         p.wakeHead});
                    p.wakeHead =
                        static_cast<std::int32_t>(ffWake_.size()) - 1;
                }
            }
            if (ffEnts_[id].pendingSrcs == 0)
                ffReady_.push_back(id); // youngest: append keeps order
            if (op.dst != kNoReg)
                ffRegWriter_[op.dst] = static_cast<std::int32_t>(id);
            if (e.kind == kSbLoad) {
                ++lds;
            } else if (e.kind == kSbStore) {
                ffStores_.push_back(id);
                ffPendSt_.push_back(id);
                ++sts;
            }
            ctrFetched_.inc();
            ++fetched;
            if (stopFetch)
                return;
        }
    };

    // The engagement cycle's remaining fetch phase (commit/execute
    // already ran in the detailed loop this cycle), then full replica
    // cycles until the region's terminator comes up for fetch.
    fetchPhase();
    while (!ended) {
        // Intra-region idle skip: same argument as skipIdleCycles.
        if (ffReady_.empty() &&
            (head == ffEnts_.size() || ffEnts_[head].state != 2)) {
            bool fetchCan =
                fetchStallUntil_ <= now_ + 1 &&
                ffEnts_.size() - head < params_.robSize;
            if (!fetchCan) {
                constexpr Cycle kNever =
                    std::numeric_limits<Cycle>::max();
                Cycle bound = kNever;
                if (!ffHeap_.empty())
                    bound = std::min(bound, ffHeap_.front().first);
                if (ffEnts_.size() - head < params_.robSize)
                    bound = std::min(bound, fetchStallUntil_);
                if (bound != kNever && bound > now_ + 1)
                    now_ = bound - 1;
            }
        }
        ++now_;
        commitPhase();
        completePhase();
        issuePhase();
        fetched = 0;
        if (now_ >= fetchStallUntil_)
            fetchPhase();
    }

    // Materialize the in-flight suffix back into the ROB and hand the
    // cycle's remaining fetch width to the detailed path, which will
    // dispatch the terminator itself.
    fetch_.func = curFunc;
    fetch_.idx = curIdx;
    fetchSb_ = sb;
    fetchSbPos_ = pos;
    nextSeq_ = seqBase + ffEnts_.size();
    ctrFfEntries_.inc();
    ctrFfCycles_.inc(now_ - entryNow);

    assert(rob_.empty() && readyQ_.empty() && storeQ_.empty() &&
           pendingStores_.empty() && pendingFences_.empty());
    for (std::size_t i = head; i < ffEnts_.size(); ++i) {
        const FfEntry &e = ffEnts_[i];
        RobEntry r;
        r.seq = seqBase + i;
        r.func = e.func;
        r.idx = e.idx;
        r.pc = e.pc;
        r.op = e.op;
        r.kernel = e.kernel;
        r.state = e.state == 0   ? EState::Waiting
                  : e.state == 1 ? EState::Executing
                                 : EState::Done;
        r.doneCycle = e.done;
        r.dispatchCycle = e.dispatch;
        r.issueCycle = e.issue;
        r.result = e.result;
        for (unsigned s = 0; s < 2; ++s) {
            r.srcProd[s] =
                e.srcProd[s] >= 0
                    ? seqBase +
                          static_cast<std::uint64_t>(e.srcProd[s])
                    : RobEntry::kNoSeq;
            r.srcVal[s] = e.srcVal[s];
            r.srcReady[s] = e.srcReady[s];
            r.srcReg[s] = e.srcReg[s];
        }
        r.pendingSrcs = e.pendingSrcs;
        r.effAddr = e.effAddr;
        r.addrValid = e.addrValid;
        rob_.pushSlot() = std::move(r);
    }
    for (std::size_t i = head; i < ffEnts_.size(); ++i) {
        const FfEntry &e = ffEnts_[i];
        RobEntry &r = rob_[i - head];
        if (r.op->dst != kNoReg) {
            renameMap_[r.op->dst] = r.seq;
            renameProd_[r.op->dst] = &r;
            renameValid_[r.op->dst] = true;
        }
        for (unsigned s = 0; s < 2; ++s) {
            if (!r.srcReady[s]) {
                RobEntry &p = rob_[static_cast<std::size_t>(
                                       e.srcProd[s]) -
                                   head];
                r.srcProdPtr[s] = &p;
                p.wakeup.push_back({&r, r.seq, s});
            }
        }
        if (r.state == EState::Waiting && r.pendingSrcs == 0)
            readyQ_.emplace_back(r.seq, &r);
        else if (r.state == EState::Executing)
            eventQ_.emplace(r.doneCycle, r.seq, &r);
        if (e.kind == kSbStore) {
            storeQ_.emplace_back(r.seq, &r);
            if (!r.addrValid)
                pendingStores_.push_back(r.seq);
            ++inflightStores_;
        } else if (e.kind == kSbLoad) {
            ++inflightLoads_;
        }
    }
    return fetched;
}

namespace
{

/** splitmix64: mixes the sampling seed into the first-skip jitter. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

void
Pipeline::samplingStep(SpeculationPolicy &pol)
{
    // Called at the quiescent engagement point in sampled mode
    // (DESIGN §5.8). The phase machine anchors on the cumulative
    // committed-micro-op count so phases span run() boundaries; a
    // measured phase opens with a detailed window (Experiment calls
    // resetSampling at its warmup boundary), guaranteeing even short
    // streams contribute at least one observation, and the first skip
    // takes a seed-derived jitter so window alignment varies across
    // seeds while the period — the systematic-sampling invariant —
    // stays constant afterwards.
    const SamplingParams &sp = params_.sampling;
    if (!sampleInit_) {
        sampleInit_ = true;
        samplePhase_ = SamplePhase::Detailed;
        std::uint64_t committed = ctrCommitted_.value();
        sampleWindowStartInsts_ = committed;
        sampleWindowStartCycle_ = now_;
        samplePhaseEnd_ =
            sp.windowInsts == SamplingParams::kInfiniteWindow
                ? SamplingParams::kInfiniteWindow
                : committed + sp.windowInsts;
    }
    for (;;) {
        std::uint64_t committed = ctrCommitted_.value();
        if (committed < samplePhaseEnd_) {
            if (samplePhase_ == SamplePhase::Detailed)
                return; // the detailed/FF path runs the window
            functionalAdvance(samplePhaseEnd_ - committed,
                              samplePhase_ == SamplePhase::Warm, pol);
            if (halted_ || fetch_.halted)
                return;
            continue;
        }
        // Phase boundary (the detailed window may overshoot it: the
        // machine only re-engages at quiescent points, and windows
        // record their *actual* cycle and instruction counts).
        std::uint64_t skipBase =
            sp.periodInsts > sp.windowInsts + sp.warmingInsts
                ? sp.periodInsts - sp.windowInsts - sp.warmingInsts
                : 0;
        switch (samplePhase_) {
          case SamplePhase::Detailed: {
            sampler_.addWindow(now_ - sampleWindowStartCycle_,
                               committed - sampleWindowStartInsts_);
            std::uint64_t skip = skipBase;
            if (sampleFirstSkip_) {
                sampleFirstSkip_ = false;
                skip = mix64(sp.seed) % (skipBase + 1);
            }
            samplePhase_ = SamplePhase::Skip;
            samplePhaseEnd_ = committed + skip;
            break;
          }
          case SamplePhase::Skip:
            samplePhase_ = SamplePhase::Warm;
            samplePhaseEnd_ = committed + sp.warmingInsts;
            break;
          case SamplePhase::Warm:
            samplePhase_ = SamplePhase::Detailed;
            sampleWindowStartInsts_ = committed;
            sampleWindowStartCycle_ = now_;
            samplePhaseEnd_ = committed + sp.windowInsts;
            break;
        }
    }
}

void
Pipeline::functionalAdvance(std::uint64_t budget, bool warm,
                            SpeculationPolicy &pol)
{
    // Architectural-only execution for the functional sampling phases
    // (DESIGN §5.8): the machine is at a quiescent point, so
    // registers, memory and control flow advance with the same
    // semantics as kernel::Interpreter — no timing (now_ is frozen),
    // no speculation, no squashes, and like fast-forward regions
    // nothing here is ever classified by the leakage ledger
    // (classification requires speculation). In the warm phase the
    // structures a later detailed window reads through — L1I/L1D/L2,
    // D-TLB, conditional predictor, BTB, RSB, and the policy's view
    // caches via warmAccess — are driven with accounting-free
    // accesses; the skip phase touches nothing microarchitectural.
    // Only the committed-micro-op counters advance.
    fetchSb_ = nullptr; // the front end moves; drop the cursor

    FuncId func = fetch_.func;
    std::uint32_t idx = fetch_.idx;
    const Superblock *sb = nullptr;
    std::size_t pos = 0;
    const Function *fn = nullptr;

    std::uint64_t done = 0;
    while (done < budget) {
        if (!sb) {
            if (func != fetchFuncCached_) {
                fetchFuncCached_ = func;
                fetchFuncPtr_ = &prog_.func(func);
            }
            fn = fetchFuncPtr_;
            sb = &sbCache_.at(func, idx);
            pos = 0;
        }
        const SbOp &d = sb->ops[pos];
        assert(d.kind != kSbEnd &&
               "functional advance ran off a function body");
        const MicroOp &op = *d.op;
        if (warm && d.newLine) {
            Addr line = d.pc / 64;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                caches_.accessInst(d.pc, nullptr);
            }
        }
        ++done;
        ctrCommitted_.inc();
        if (fn->kernel)
            ctrCommittedKernel_.inc();

        switch (d.kind) {
          case kSbLoad: {
            Addr ea = (op.src1 != kNoReg ? regs_[op.src1] : 0) +
                      static_cast<std::uint64_t>(op.imm);
            if (warm) {
                dtlb_.translate(ea, asid_);
                caches_.accessData(ea, nullptr);
                if (fn->kernel) {
                    SpecContext ctx;
                    ctx.pc = d.pc;
                    ctx.dataVa = ea;
                    ctx.func = func;
                    ctx.kernelMode = true;
                    ctx.asid = asid_;
                    ctx.now = now_;
                    pol.warmAccess(ctx);
                }
            }
            regs_[op.dst] = mem_.read(ea);
            ++idx;
            ++pos;
            break;
          }
          case kSbStore: {
            Addr ea = (op.src1 != kNoReg ? regs_[op.src1] : 0) +
                      static_cast<std::uint64_t>(op.imm);
            mem_.write(ea, op.src2 != kNoReg ? regs_[op.src2] : 0);
            if (warm)
                caches_.accessData(ea, nullptr);
            ++idx;
            ++pos;
            break;
          }
          case kSbBranch: {
            std::uint64_t a = op.src1 != kNoReg ? regs_[op.src1] : 0;
            std::uint64_t b =
                op.src2 != kNoReg
                    ? regs_[op.src2]
                    : static_cast<std::uint64_t>(op.imm);
            bool taken = evalCondOp(op.cond, a, b);
            if (warm) {
                // Net architectural effect of a correctly predicted,
                // resolved branch: history advanced by the outcome,
                // tables trained against the pre-branch history.
                std::uint64_t h = cond_.history();
                cond_.speculate(taken);
                cond_.update(d.pc, taken, h);
            }
            idx = taken ? op.target : idx + 1;
            sb = nullptr;
            break;
          }
          case kSbJump:
            idx = op.target;
            sb = nullptr;
            break;
          case kSbCall: {
            Frame fr;
            fr.func = func;
            fr.retIdx = idx + 1;
            fr.slotVa = stackBase_ - 8 * (fetch_.stack.size() + 1);
            fetch_.stack.push_back(fr);
            if (warm) {
                rsb_.push({fr.func, fr.retIdx});
                caches_.accessData(fr.slotVa, nullptr);
            }
            func = op.callee;
            idx = 0;
            sb = nullptr;
            break;
          }
          case kSbIndirectCall: {
            std::uint64_t raw =
                op.src1 != kNoReg ? regs_[op.src1] : 0;
            if (!validCallTarget(prog_, raw)) {
                // Wild pointer: architected no-op call.
                idx += 1;
                sb = nullptr;
                break;
            }
            if (warm)
                btb_.update(d.pc, static_cast<FuncId>(raw));
            Frame fr;
            fr.func = func;
            fr.retIdx = idx + 1;
            fr.slotVa = stackBase_ - 8 * (fetch_.stack.size() + 1);
            fetch_.stack.push_back(fr);
            if (warm) {
                rsb_.push({fr.func, fr.retIdx});
                caches_.accessData(fr.slotVa, nullptr);
            }
            func = static_cast<FuncId>(raw);
            idx = 0;
            sb = nullptr;
            break;
          }
          case kSbReturn: {
            if (fetch_.stack.empty()) {
                // Outermost return: the run is over (the op counts,
                // exactly like the committing detailed return).
                fetch_.halted = true;
                halted_ = true;
                fetch_.func = func;
                fetch_.idx = idx;
                return;
            }
            Frame truth = fetch_.stack.back();
            fetch_.stack.pop_back();
            if (warm) {
                rsb_.pop();
                caches_.accessData(truth.slotVa, nullptr);
            }
            func = truth.func;
            idx = truth.retIdx;
            sb = nullptr;
            break;
          }
          case kSbFence:
            // Architecturally a no-op; it only orders the detailed
            // machine, which is idle here.
            idx += 1;
            sb = nullptr;
            break;
          default: { // straight-line ALU kinds (incl. kSbMul, kSbNop)
            if (op.dst != kNoReg) {
                std::uint64_t a =
                    op.src1 != kNoReg ? regs_[op.src1] : 0;
                std::uint64_t b =
                    op.src2 != kNoReg
                        ? regs_[op.src2]
                        : static_cast<std::uint64_t>(op.imm);
                regs_[op.dst] = evalAluOp(op, a, b);
            }
            ++idx;
            ++pos;
            break;
          }
        }
    }

    fetch_.func = func;
    fetch_.idx = idx;
}

} // namespace perspective::sim
