/**
 * @file
 * Predecoded superblocks: straight-line runs of micro-ops, decoded
 * once and consumed whole by the interpreter's threaded dispatch, the
 * pipeline front end, and the fast-forward executor.
 *
 * A superblock starts at an arbitrary (function, index) position and
 * runs until the first op that can redirect the op stream — control
 * flow (Branch/Jump/Call/IndirectCall/Return) or a Fence — which is
 * included as the block's terminator. Every op carries its
 * precomputed PC, cache-line transition flag and a flat dispatch kind
 * (ALU sub-ops unfolded), so consumers replace the per-op
 * decode-and-switch with a table- or label-indexed jump.
 *
 * Blocks are built lazily per start position and derive purely from
 * the Program's immutable text. The only event that rewrites text is
 * Program::layout() (before simulation); module load/unload flips
 * reachability in *data* (an ops-table slot), never the text, so
 * cached blocks stay valid across it. Each cache still records the
 * Program's code generation and drops everything if it ever moves —
 * the defensive half of the invalidation contract (DESIGN §5.5).
 */

#ifndef PERSPECTIVE_SIM_SUPERBLOCK_HH
#define PERSPECTIVE_SIM_SUPERBLOCK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "inst.hh"
#include "program.hh"
#include "types.hh"

namespace perspective::sim
{

/**
 * Flat dispatch kind: Op with AluOp unfolded, so threaded dispatch
 * needs a single indexed jump and no secondary switch.
 */
enum SbKind : std::uint8_t
{
    kSbNop = 0,
    kSbAluAdd,
    kSbAluSub,
    kSbAluAnd,
    kSbAluShl,
    kSbAluShr,
    kSbAluMovI,
    kSbAluMov,
    kSbMul,
    kSbLoad,
    kSbStore,
    kSbBranch,
    kSbJump,
    kSbCall,
    kSbIndirectCall,
    kSbReturn,
    kSbFence,
    /** Sentinel terminator for blocks cut by the end of the function
     * body (op pointer is null): the consumer applies its
     * ran-off-the-end rule — the interpreter treats it as a return. */
    kSbEnd,
    kSbNumKinds,
};

/** One predecoded micro-op inside a superblock. */
struct SbOp
{
    const MicroOp *op = nullptr;
    Addr pc = 0;
    std::uint8_t kind = kSbNop;
    /** This op's PC starts a different I-cache line than the previous
     * op in the block (always set for the block's first op). When
     * clear, the line-transition check can be skipped outright. */
    bool newLine = false;
};

/** A straight-line run; the last op is always a terminator — a real
 * control/fence op, or the kSbEnd sentinel when the body ran out. ops
 * is therefore never empty and dispatch loops need no bounds check. */
struct Superblock
{
    std::vector<SbOp> ops;

    /** Dispatch kind of the terminating op. */
    std::uint8_t endKind = kSbEnd;

    /** Number of ops before the terminator (straight-line prefix). */
    std::size_t
    bodyLen() const
    {
        return ops.empty() ? 0 : ops.size() - 1;
    }
};

/** Map a micro-op to its flat dispatch kind. */
std::uint8_t sbKindOf(const MicroOp &op);

/**
 * Lazily-built per-consumer store of superblocks, keyed by start
 * position. Not thread-safe: each Pipeline/Interpreter (or the
 * Experiment that owns them) keeps its own — sweep cells run on
 * separate stacks, so nothing is shared across threads.
 */
class SuperblockCache
{
  public:
    explicit SuperblockCache(const Program &prog) : prog_(&prog) {}

    /** The superblock starting at (@p func, @p idx); built on first
     * request. The reference is stable until invalidation. */
    const Superblock &
    at(FuncId func, std::uint32_t idx)
    {
        if (prog_->codeGen() != gen_) [[unlikely]] {
            blocks_.clear();
            gen_ = prog_->codeGen();
        }
        std::uint64_t key =
            (std::uint64_t{func} << 32) | std::uint64_t{idx};
        auto it = blocks_.find(key);
        if (it != blocks_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
        return blocks_.emplace(key, build(func, idx))
            .first->second;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return blocks_.size(); }

  private:
    Superblock build(FuncId func, std::uint32_t idx) const;

    const Program *prog_;
    std::uint64_t gen_ = 0;
    std::unordered_map<std::uint64_t, Superblock> blocks_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Shared wild-indirect-target rule (single source of truth for the
 * pipeline and the interpreter): a register value names a callable
 * function iff it is in range. An out-of-range value — possible under
 * fuzzing or attack gadgets — architecturally behaves as a no-op
 * call: execution falls through to the next op, no frame is pushed
 * and no predictor learns the wild value.
 */
inline bool
validCallTarget(const Program &prog, std::uint64_t raw)
{
    return raw < prog.numFunctions();
}

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_SUPERBLOCK_HH
