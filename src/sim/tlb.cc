#include "tlb.hh"

#include <cassert>

namespace perspective::sim
{

Tlb::Tlb(std::uint32_t entries, std::uint32_t assoc, Cycle walk_latency)
    : assoc_(assoc), walkLatency_(walk_latency)
{
    assert(entries % assoc == 0);
    numSets_ = entries / assoc;
    entries_.resize(entries);
}

Cycle
Tlb::translate(Addr va, Asid asid)
{
    Addr vpn = pageNumber(va);
    std::uint64_t set = vpn % numSets_;
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.vpn == vpn && e.asid == asid) {
            e.lru = ++useClock_;
            ++hits_;
            return 1;
        }
        if (!victim || (victim->valid &&
                        (!e.valid || e.lru < victim->lru))) {
            victim = &e;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->vpn = vpn;
    victim->asid = asid;
    victim->lru = ++useClock_;
    return walkLatency_;
}

} // namespace perspective::sim
