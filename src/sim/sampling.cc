#include "sampling.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace perspective::sim
{

namespace
{

std::uint64_t
parseCount(const std::string &key, const std::string &val)
{
    if (val == "inf" || val == "INF")
        return SamplingParams::kInfiniteWindow;
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(val, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != val.size() || val.empty())
        throw std::invalid_argument("sampling: bad value for '" + key +
                                    "': '" + val + "'");
    return v;
}

} // namespace

SamplingParams
SamplingParams::parse(const std::string &spec)
{
    SamplingParams p;
    if (spec.empty() || spec == "0" || spec == "off")
        return p; // disabled
    p.enabled = true;
    if (spec == "1" || spec == "on" || spec == "default")
        return p;

    std::istringstream in(spec);
    std::string item;
    while (std::getline(in, item, ',')) {
        auto eq = item.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "sampling: expected key=value, got '" + item + "'");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "w" || key == "window")
            p.windowInsts = parseCount(key, val);
        else if (key == "warm")
            p.warmingInsts = parseCount(key, val);
        else if (key == "period")
            p.periodInsts = parseCount(key, val);
        else if (key == "seed")
            p.seed = parseCount(key, val);
        else
            throw std::invalid_argument("sampling: unknown key '" +
                                        key + "'");
    }
    if (p.windowInsts == 0)
        throw std::invalid_argument("sampling: window must be >= 1");
    if (p.windowInsts != kInfiniteWindow &&
        p.periodInsts < p.windowInsts + p.warmingInsts)
        throw std::invalid_argument(
            "sampling: period must be >= window + warm");
    return p;
}

SamplingParams
SamplingParams::fromEnv()
{
    const char *env = std::getenv("PERSPECTIVE_SAMPLE");
    if (!env)
        return SamplingParams{};
    return parse(env);
}

std::string
SamplingParams::spec() const
{
    if (!enabled)
        return "off";
    std::ostringstream out;
    out << "w=";
    if (windowInsts == kInfiniteWindow)
        out << "inf";
    else
        out << windowInsts;
    out << ",warm=" << warmingInsts << ",period=" << periodInsts
        << ",seed=" << seed;
    return out.str();
}

void
SamplingEstimator::addWindow(std::uint64_t cycles, std::uint64_t insts)
{
    if (insts == 0)
        return;
    double x = static_cast<double>(cycles) / static_cast<double>(insts);
    ++n_;
    sum_ += x;
    sumSq_ += x * x;
    insts_ += insts;
    cycles_ += cycles;
}

double
SamplingEstimator::cpiMean() const
{
    if (n_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(n_);
}

double
SamplingEstimator::cpiCi95() const
{
    if (n_ < 2)
        return 0.0;
    double n = static_cast<double>(n_);
    double mean = sum_ / n;
    double var = (sumSq_ - n * mean * mean) / (n - 1.0);
    if (var < 0.0)
        var = 0.0; // floating-point cancellation on near-zero variance
    return 1.96 * std::sqrt(var / n);
}

double
SamplingEstimator::relError() const
{
    double mean = cpiMean();
    if (mean <= 0.0)
        return 0.0;
    return cpiCi95() / mean;
}

void
SamplingEstimator::reset()
{
    *this = SamplingEstimator{};
}

} // namespace perspective::sim
