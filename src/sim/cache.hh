/**
 * @file
 * Set-associative cache model with LRU replacement, plus a small
 * hierarchy (L1I, L1D, shared L2, DRAM) matching Table 7.1 of the
 * paper. The model is tag-only: it tracks which lines are present and
 * charges latency; data values live in sim::Memory.
 *
 * Crucially, speculative (later-squashed) accesses still install lines;
 * this is the microarchitectural state transient-execution attacks
 * exfiltrate through.
 */

#ifndef PERSPECTIVE_SIM_CACHE_HH
#define PERSPECTIVE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats.hh"
#include "types.hh"

namespace perspective::sim
{

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name;
    std::uint32_t size_bytes = 32 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 8;
    Cycle hit_latency = 2; ///< round-trip cycles on a hit
};

/**
 * One level of cache. Lookup and fill are separate so callers can
 * model "probe without disturbing" (flush+reload timing reads) as well
 * as normal allocating accesses.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** True if the line containing @p addr is present; updates LRU. */
    bool access(Addr addr);

    /** True if present; does not update replacement state. */
    bool probe(Addr addr) const;

    /** Install the line containing @p addr (evicting LRU). */
    void fill(Addr addr);

    /** Remove the line containing @p addr if present (clflush). */
    void flush(Addr addr);

    /** Remove every line (e.g. L1D flush mitigations). */
    void flushAll();

    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Generation counter of the cache's *content*: ticks on every
     * line install, eviction and flush, but never on an LRU-only
     * touch (which cannot change what probe() returns). Blocked
     * loads gated on presence (DOM) wake off this instead of
     * re-probing every cycle. */
    const std::uint64_t *contentGenPtr() const { return &contentGen_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0; ///< higher == more recently used
    };

    std::uint64_t lineIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    /** The valid line holding @p addr, or nullptr. The one set walk
     * shared by access/probe/fill/flush; never touches LRU. */
    const Line *findLine(Addr addr) const;
    Line *findLine(Addr addr);

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t contentGen_ = 0;
};

/**
 * Two-level hierarchy with a DRAM backstop. Returns the total
 * round-trip latency of a demand access and installs lines on the way
 * up, as a non-inclusive hierarchy would.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheParams &l1i, const CacheParams &l1d,
                   const CacheParams &l2, Cycle dram_latency,
                   bool prefetch = true);

    /** Data access: charge latency, install in L1D/L2. */
    Cycle accessData(Addr addr, StatSet *stats = nullptr);

    /** Instruction fetch access through L1I/L2. */
    Cycle accessInst(Addr addr, StatSet *stats = nullptr);

    /** True if @p addr hits in L1D without touching LRU/contents. */
    bool probeL1D(Addr addr) const { return l1d_.probe(addr); }

    /** Timing-only probe used by covert-channel receivers. */
    Cycle probeLatency(Addr addr) const;

    /** clflush semantics across all levels. */
    void flush(Addr addr);

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cycle dramLatency() const { return dramLatency_; }

    /** Toggle the next-line prefetchers (Table 7.1 has one per L1). */
    void setPrefetch(bool on) { prefetch_ = on; }
    bool prefetch() const { return prefetch_; }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cycle dramLatency_;
    bool prefetch_;
};

/** The Table 7.1 configuration. */
CacheParams defaultL1I();
CacheParams defaultL1D();
CacheParams defaultL2();

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_CACHE_HH
