#include "predictor.hh"

namespace perspective::sim
{

CondPredictor::CondPredictor()
{
    bimodal_.assign(1u << kBimodalBits, 2); // weakly taken
    for (auto &t : tagged_)
        t.assign(1u << kTaggedBits, TaggedEntry{});
}

std::uint64_t
CondPredictor::foldedHistory(std::uint64_t hist, unsigned bits,
                             unsigned len)
{
    std::uint64_t h = hist & ((len >= 64) ? ~0ull
                                          : ((1ull << len) - 1));
    std::uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << bits) - 1);
        h >>= bits;
    }
    return folded;
}

std::uint32_t
CondPredictor::taggedIndex(Addr pc, unsigned t,
                           std::uint64_t hist) const
{
    std::uint64_t f = foldedHistory(hist, kTaggedBits, kHistLen[t]);
    return static_cast<std::uint32_t>((pc >> 2) ^ (pc >> 7) ^ f) &
           ((1u << kTaggedBits) - 1);
}

std::uint16_t
CondPredictor::taggedTag(Addr pc, unsigned t,
                         std::uint64_t hist) const
{
    std::uint64_t f = foldedHistory(hist, 11, kHistLen[t]);
    return static_cast<std::uint16_t>(((pc >> 2) ^ (f << 1)) & 0x7ff);
}

bool
CondPredictor::predict(Addr pc) const
{
    for (int t = kNumTagged - 1; t >= 0; --t) {
        const TaggedEntry &e =
            tagged_[t][taggedIndex(pc, t, history_)];
        if (e.valid && e.tag == taggedTag(pc, t, history_))
            return e.ctr >= 0;
    }
    std::uint32_t idx = static_cast<std::uint32_t>(pc >> 2) &
                        ((1u << kBimodalBits) - 1);
    return bimodal_[idx] >= 2;
}

void
CondPredictor::update(Addr pc, bool taken, std::uint64_t hist)
{
    bool provider_found = false;
    int provider = -1;
    for (int t = kNumTagged - 1; t >= 0; --t) {
        TaggedEntry &e = tagged_[t][taggedIndex(pc, t, hist)];
        if (e.valid && e.tag == taggedTag(pc, t, hist)) {
            provider = t;
            provider_found = true;
            bool was_correct = (e.ctr >= 0) == taken;
            if (taken && e.ctr < 3)
                ++e.ctr;
            else if (!taken && e.ctr > -4)
                --e.ctr;
            if (was_correct && e.useful < 3)
                ++e.useful;
            break;
        }
    }

    std::uint32_t bidx = static_cast<std::uint32_t>(pc >> 2) &
                         ((1u << kBimodalBits) - 1);
    bool base_pred = bimodal_[bidx] >= 2;
    if (taken && bimodal_[bidx] < 3)
        ++bimodal_[bidx];
    else if (!taken && bimodal_[bidx] > 0)
        --bimodal_[bidx];

    // Allocate a longer-history entry when the overall prediction was
    // wrong, as TAGE does.
    bool pred =
        provider_found
            ? (tagged_[provider][taggedIndex(pc, provider, hist)]
                   .ctr >= 0) == taken
            : base_pred == taken;
    if (!pred) {
        for (unsigned t = provider_found ? provider + 1 : 0;
             t < kNumTagged; ++t) {
            TaggedEntry &e = tagged_[t][taggedIndex(pc, t, hist)];
            if (!e.valid || e.useful == 0) {
                e.valid = true;
                e.tag = taggedTag(pc, t, hist);
                e.ctr = taken ? 0 : -1;
                e.useful = 0;
                break;
            }
            if (e.useful > 0)
                --e.useful;
        }
    }
}

void
CondPredictor::pushHistory(bool taken)
{
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

Btb::Btb(std::uint32_t entries)
    : entries_(entries)
{
}

FuncId
Btb::predict(Addr pc) const
{
    const Entry &e = entries_[(pc >> 2) % entries_.size()];
    if (e.valid && e.pc == pc)
        return e.target;
    return kNoFunc;
}

void
Btb::update(Addr pc, FuncId target)
{
    Entry &e = entries_[(pc >> 2) % entries_.size()];
    e.pc = pc;
    e.target = target;
    e.valid = true;
}

void
Btb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

Rsb::Rsb(std::uint32_t entries)
    : ring_(entries)
{
}

void
Rsb::push(Target t)
{
    ring_[top_] = t;
    top_ = (top_ + 1) % ring_.size();
    if (depth_ < ring_.size())
        ++depth_;
}

Rsb::Target
Rsb::pop()
{
    if (depth_ == 0) {
        // Underflow: the stale slot at top_ (the most recently popped
        // entry) provides the — attackable — prediction.
        return ring_[top_];
    }
    std::uint32_t slot = (top_ + ring_.size() - 1) % ring_.size();
    Target t = ring_[slot];
    top_ = slot;
    --depth_;
    return t;
}

} // namespace perspective::sim
