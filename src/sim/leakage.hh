/**
 * @file
 * Transient-leakage ledger: taint-based accounting of secret bytes
 * exposed during speculation (ConTExT-style, see DESIGN §5.6).
 *
 * The pipeline classifies each *speculative* load's target against
 * kernel ground truth (a pluggable SecretClassifier — data a correct
 * synchronous policy would have blocked), tags the loaded value with
 * a taint bit, propagates taint through forwarded operands, and
 * reports a *transmission* when a tainted value forms the address of
 * an access that durably changes observable microarchitectural state
 * (cache install, TLB fill) before the squash.
 *
 * The whole layer is observation-only: it never touches caches, TLB,
 * memory, or the pipeline's StatSet, so enabling it cannot perturb a
 * single simulated cycle (tests/sim/test_leakage.cc pins this).
 */

#ifndef PERSPECTIVE_SIM_LEAKAGE_HH
#define PERSPECTIVE_SIM_LEAKAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "types.hh"

namespace perspective::sim
{

/**
 * Which dynamic-update window made the stale allow possible. None
 * means "not secret"; Baseline means the data was unreachable under
 * a fully synchronized policy too (no open window to blame — the
 * active scheme simply does not enforce reachability).
 */
enum class LeakWindow : std::uint8_t
{
    None = 0,
    Baseline,
    Revocation, ///< pending (deferred) DSV revocation
    ModuleLoad, ///< context has not synced the grown ISV epoch yet
    FleetFlip,  ///< fleet tighten still propagating to this context
};

inline constexpr unsigned kNumLeakWindows = 5;

constexpr const char *
leakWindowName(LeakWindow w)
{
    switch (w) {
    case LeakWindow::None: return "none";
    case LeakWindow::Baseline: return "baseline";
    case LeakWindow::Revocation: return "revocation";
    case LeakWindow::ModuleLoad: return "module_load";
    case LeakWindow::FleetFlip: return "fleet_flip";
    }
    return "?";
}

/** Ground-truth verdict for one speculative load target. */
struct SecretVerdict
{
    bool secret = false;
    LeakWindow window = LeakWindow::None;
};

/**
 * Kernel ground truth, injected by the experiment layer so the sim
 * library stays independent of the kernel model. MUST be pure: the
 * pipeline calls it on the load-issue path and any side effect on
 * simulated state would break the observation-only contract.
 */
using SecretClassifier =
    std::function<SecretVerdict(Addr va, FuncId func, Asid asid, Cycle now)>;

/** Transmitter channel taxonomy (SoK: durable uarch state changes). */
enum class LeakChannel : std::uint8_t
{
    CacheInstall = 0, ///< L1D/L2 fill or eviction on the normal path
    TlbFill,          ///< TLB walk + fill (also fires on InvisiSpec)
};

/** Per-run roll-up, exported into RunResult and sweep JSON. */
struct LeakageSummary
{
    std::uint64_t secretLoads = 0;      ///< speculative loads of secrets
    std::uint64_t bytesAtRisk = 0;      ///< 8 per secret load
    std::uint64_t transmissions = 0;    ///< tainted-address transmit events
    std::uint64_t bytesTransmitted = 0; ///< deduped per secret source
    std::uint64_t taintOverflows = 0;   ///< sources folded into slot 63
    std::uint64_t channelCacheInstall = 0;
    std::uint64_t channelTlbFill = 0;

    struct WindowRow
    {
        std::uint64_t secretLoads = 0;
        std::uint64_t transmissions = 0;
        std::uint64_t bytesTransmitted = 0;
    };
    std::array<WindowRow, kNumLeakWindows> windows{};

    struct Gadget
    {
        Addr pc = 0;          ///< transmitting load's PC
        FuncId func = kNoFunc;///< function containing the transmitter
        FuncId entryFunc = kNoFunc; ///< syscall entry point (context)
        LeakWindow window = LeakWindow::None; ///< of the leaked source
        std::uint64_t transmissions = 0;
        std::uint64_t bytesTransmitted = 0;
        /** Resolved by the harness (the ledger has no symbol table). */
        std::string funcName;
        std::string entryName;
    };
    std::vector<Gadget> topGadgets; ///< sorted by bytes, capped

    bool
    empty() const
    {
        return secretLoads == 0 && transmissions == 0;
    }
};

/**
 * The ledger proper. Owns up to 64 live *secret sources* (one per
 * in-flight speculative secret load; bit 63 is a shared overflow
 * slot), the per-source transmitted/at-risk accounting, and the
 * aggregated counters and gadget table.
 */
class LeakLedger
{
  public:
    static constexpr std::uint8_t kNoSource = 0xff;
    static constexpr unsigned kOverflowBit = 63;
    static constexpr unsigned kTopGadgets = 8;

    void setClassifier(SecretClassifier fn);
    void setEnabled(bool on);
    bool enabled() const { return enabled_; }

    /** True when the pipeline should pay for classification at all. */
    bool armed() const { return enabled_ && classifier_ != nullptr; }

    SecretVerdict
    classify(Addr va, FuncId func, Asid asid, Cycle now) const
    {
        return classifier_(va, func, asid, now);
    }

    /**
     * A speculative load of secret data executed: allocate a source
     * slot and account bytes-at-risk. Returns the taint bit index
     * (kOverflowBit when all individual slots are live).
     */
    std::uint8_t noteSecretLoad(Addr va, Addr pc, FuncId func,
                                FuncId entryFunc, LeakWindow window);

    /**
     * A tainted value formed the address of an access that durably
     * changed uarch state. @p taintMask names the contributing
     * sources; each live one is marked transmitted (bytes counted
     * once per source) and attributed to the transmitting gadget.
     */
    void noteTransmission(std::uint64_t taintMask, LeakChannel channel,
                          Addr gadgetPc, FuncId gadgetFunc);

    /** The creating load left the ROB (commit or squash). */
    void retireSource(std::uint8_t bit);

    /** Per-measure-run reset (counters, gadgets, live sources). */
    void reset();

    LeakageSummary summary() const;

    struct Source
    {
        bool live = false;
        bool transmitted = false;
        Addr va = 0;
        Addr pc = 0;
        FuncId func = kNoFunc;
        FuncId entryFunc = kNoFunc;
        LeakWindow window = LeakWindow::None;
        std::uint32_t refs = 0; ///< >1 only for the overflow slot
    };

    struct GadgetKey
    {
        Addr pc;
        std::uint8_t window;
        bool operator==(const GadgetKey &o) const
        {
            return pc == o.pc && window == o.window;
        }
    };
    struct GadgetKeyHash
    {
        std::size_t
        operator()(const GadgetKey &k) const
        {
            return std::hash<Addr>{}(k.pc) * 1000003u + k.window;
        }
    };
    struct GadgetRow
    {
        FuncId func = kNoFunc;
        FuncId entryFunc = kNoFunc;
        std::uint64_t transmissions = 0;
        std::uint64_t bytesTransmitted = 0;
    };

    /** The accounting state: everything that rewinds on restore. */
    struct State
    {
        std::array<Source, 64> sources{};
        unsigned rrNext = 0; ///< round-robin allocation cursor
        std::uint64_t secretLoads = 0;
        std::uint64_t bytesAtRisk = 0;
        std::uint64_t transmissions = 0;
        std::uint64_t bytesTransmitted = 0;
        std::uint64_t taintOverflows = 0;
        std::array<std::uint64_t, 2> channelCounts{};
        std::array<LeakageSummary::WindowRow, kNumLeakWindows> windows{};
        std::unordered_map<GadgetKey, GadgetRow, GadgetKeyHash> gadgets;
    };
    using Snapshot = State;

    /** Whole-ledger checkpoint; joins Pipeline::Snapshot. */
    Snapshot snapshot() const { return st_; }
    /** Rewind accounting; the wiring (classifier, enable flag)
     * belongs to the experiment, not the timeline. */
    void restore(const Snapshot &s) { st_ = s; }

  private:
    bool enabled_ = true;
    SecretClassifier classifier_; ///< not part of snapshots
    State st_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_LEAKAGE_HH
