/**
 * @file
 * SMARTS-style sampled simulation (DESIGN §5.8): parameters for the
 * periodic functional-skip -> functional-warm -> detailed-window cycle
 * the pipeline runs when sampling is enabled, and the systematic-
 * sampling estimator that turns per-window CPI observations into a
 * mean with a 95% confidence interval.
 *
 * Sampling is the repo's first explicitly *statistical* mode: unlike
 * the PR 8 fast-forward path it does not reproduce the detailed run
 * bit-for-bit, it estimates mean CPI (and hence per-scheme overhead)
 * from evenly spaced detailed windows. Results carry their own error
 * bars; bit-exact comparison (`bench_report --check`) is undefined for
 * sampled cells and `--accuracy-baseline` is the sanctioned check.
 */

#ifndef PERSPECTIVE_SIM_SAMPLING_HH
#define PERSPECTIVE_SIM_SAMPLING_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace perspective::sim
{

/**
 * Controller parameters for sampled simulation. One period of
 * @c periodInsts committed micro-ops is split into a functional skip
 * phase (no timing, no microarchitectural updates), a functional
 * warming phase of @c warmingInsts (no timing, but caches, TLB,
 * predictors and policy view caches are driven), and a detailed
 * window of @c windowInsts simulated cycle-accurately. The measured
 * phase of a run opens with a detailed window (the microarchitecture
 * is already warm from the warmup iterations) so even short streams
 * yield one; @c seed perturbs the first skip length so window
 * alignment varies across otherwise identical configurations.
 *
 * Defaults were tuned on the LEBench grid: 5k-instruction windows
 * with 10k warming every 400k instructions hold every per-scheme
 * mean-overhead estimate within 1% of the exact run while cutting
 * wall time ~4x below the fast-forward path (README "Performance").
 */
struct SamplingParams
{
    /** Sentinel for @c windowInsts: never leave the detailed phase. */
    static constexpr std::uint64_t kInfiniteWindow = UINT64_MAX;

    bool enabled = false;
    std::uint64_t windowInsts = 5'000;   ///< detailed window length
    std::uint64_t warmingInsts = 10'000; ///< functional warming length
    std::uint64_t periodInsts = 400'000; ///< full sampling period
    std::uint64_t seed = 1;              ///< first-skip perturbation

    /**
     * Parse a spec string: "off"/"0" -> disabled, "1"/"on"/"default"
     * -> enabled with defaults, else a comma-separated key=value list
     * ("w=5000,warm=10000,period=400000,seed=1"; unknown keys and
     * malformed values throw std::invalid_argument, as does a period
     * shorter than window + warming).
     */
    static SamplingParams parse(const std::string &spec);

    /** Parse $PERSPECTIVE_SAMPLE (unset -> disabled). */
    static SamplingParams fromEnv();

    /**
     * Canonical spec string; "off" when disabled. Round-trips through
     * parse() and is what cache keys and the fleet hello handshake
     * embed, so equal specs <=> statistically identical configs.
     */
    std::string spec() const;

    bool operator==(const SamplingParams &o) const
    {
        if (enabled != o.enabled)
            return false;
        if (!enabled)
            return true;
        return windowInsts == o.windowInsts &&
               warmingInsts == o.warmingInsts &&
               periodInsts == o.periodInsts && seed == o.seed;
    }
    bool operator!=(const SamplingParams &o) const
    {
        return !(*this == o);
    }
};

/**
 * Systematic-sampling estimator over per-window CPI observations
 * x_i = cycles_i / insts_i. Mean is the arithmetic mean of the x_i;
 * the half-width of the 95% confidence interval is
 * 1.96 * s / sqrt(n) with s^2 the (n-1)-divisor sample variance —
 * the standard estimator for systematic samples of a stream whose
 * period is uncorrelated with program phase (SMARTS, ISCA 2003).
 */
class SamplingEstimator
{
  public:
    /** Record one completed detailed window. Windows with zero
     * instructions are ignored. */
    void addWindow(std::uint64_t cycles, std::uint64_t insts);

    std::size_t windows() const { return n_; }
    std::uint64_t sampledInsts() const { return insts_; }
    std::uint64_t sampledCycles() const { return cycles_; }

    /** Mean per-window CPI (0 when no windows). */
    double cpiMean() const;

    /** 95% CI half-width on the mean CPI (0 when fewer than two
     * windows: the variance is not estimable). */
    double cpiCi95() const;

    /** Relative error ci95 / mean (0 when mean is 0). */
    double relError() const;

    void reset();

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;   ///< sum of x_i
    double sumSq_ = 0.0; ///< sum of x_i^2
    std::uint64_t insts_ = 0;
    std::uint64_t cycles_ = 0;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_SAMPLING_HH
