/**
 * @file
 * Lightweight named statistics registry, loosely modeled after the gem5
 * stats package: counters are created on demand and can be dumped or
 * queried by name at the end of a simulation.
 */

#ifndef PERSPECTIVE_SIM_STATS_HH
#define PERSPECTIVE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace perspective::sim
{

/**
 * A bag of named 64-bit counters. Each Pipeline owns one; subsystems
 * (caches, predictors, policies) increment counters through it so that
 * experiment harnesses can compute derived metrics such as hit rates or
 * fences-per-kilo-instruction.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if absent. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Read counter @p name; absent counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio helper: get(num) / get(den), 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** Reset every counter to zero. */
    void
    clear()
    {
        counters_.clear();
    }

    /** Dump all counters, sorted by name, one per line. */
    void dump(std::ostream &os) const;

    /** Access the underlying map (read-only). */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_STATS_HH
