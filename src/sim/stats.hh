/**
 * @file
 * Lightweight named statistics registry, loosely modeled after the gem5
 * stats package: scalar counters, log2-bucketed distributions and
 * periodic time-series samples are created on demand and can be dumped
 * or queried by name at the end of a simulation.
 */

#ifndef PERSPECTIVE_SIM_STATS_HH
#define PERSPECTIVE_SIM_STATS_HH

#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "types.hh"

namespace perspective::sim
{

/**
 * A cached handle to one named counter inside a StatSet. Hot paths
 * (per-cycle pipeline increments) resolve the name once at
 * construction and then bump through the handle without the
 * string-keyed map lookup StatSet::inc pays. Handles stay valid across
 * StatSet::clear() — clearing zeroes counters in place, it never
 * erases them — and are invalidated only when the owning StatSet is
 * destroyed or assigned over.
 */
class Counter
{
  public:
    Counter() = default;

    void
    inc(std::uint64_t delta = 1)
    {
        *slot_ += delta;
    }

    std::uint64_t value() const { return *slot_; }

    bool valid() const { return slot_ != nullptr; }

  private:
    friend class StatSet;
    explicit Counter(std::uint64_t *slot) : slot_(slot) {}
    std::uint64_t *slot_ = nullptr;
};

/**
 * A log2-bucketed distribution of 64-bit samples (gem5's Histogram /
 * Linux's power-of-two latency buckets). Bucket 0 holds the value 0;
 * bucket k (k >= 1) holds values in [2^(k-1), 2^k - 1]. Exact min,
 * max and a running sum ride along so the mean is exact and
 * percentiles can be interpolated inside a bucket and clamped to the
 * observed range.
 */
class Histogram
{
  public:
    /** 0, then one bucket per bit width 1..64. */
    static constexpr unsigned kNumBuckets = 65;

    void
    sample(std::uint64_t value, std::uint64_t count = 1)
    {
        buckets_[bucketOf(value)] += count;
        count_ += count;
        sum_ += static_cast<double>(value) *
                static_cast<double>(count);
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    /** Smallest sample; 0 when empty. */
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : sum_ / static_cast<double>(count_);
    }

    /**
     * Percentile @p p in [0, 100], linearly interpolated within the
     * containing log2 bucket and clamped to [min, max] (so p0 == min
     * and p100 == max exactly). Returns 0 for an empty histogram.
     */
    double percentile(double p) const;

    /** Occupancy of bucket @p b (see class comment for ranges). */
    std::uint64_t
    bucket(unsigned b) const
    {
        return buckets_[b];
    }

    /** Which bucket @p value falls into. */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return value == 0 ? 0u
                          : static_cast<unsigned>(
                                std::bit_width(value));
    }

    /** Inclusive value range covered by bucket @p b. */
    static std::pair<std::uint64_t, std::uint64_t> bucketRange(
        unsigned b);

    /** Drop all samples (structure and name binding survive). */
    void
    clear()
    {
        buckets_.assign(kNumBuckets, 0);
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    /** One-line summary: count/min/mean/p50/p90/p99/max. */
    void dumpSummary(std::ostream &os) const;

  private:
    std::vector<std::uint64_t> buckets_ =
        std::vector<std::uint64_t>(kNumBuckets, 0);
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * Periodic cycle-stamped snapshots of a counter: tick() is called
 * every cycle with the current value and records one (cycle, value)
 * sample each @p interval cycles. Bounded memory for arbitrarily long
 * runs: when the sample buffer fills, every other sample is dropped
 * and the interval doubles (so a run of any length keeps at most
 * kMaxSamples points at a self-adjusting cadence).
 */
class TimeSeries
{
  public:
    static constexpr std::size_t kMaxSamples = 512;
    static constexpr Cycle kDefaultInterval = 8192;

    explicit TimeSeries(Cycle interval = kDefaultInterval)
        : baseInterval_(interval == 0 ? 1 : interval),
          interval_(baseInterval_)
    {
    }

    void
    tick(Cycle now, std::uint64_t value)
    {
        if (now < nextDue_)
            return;
        samples_.emplace_back(now, value);
        nextDue_ = now + interval_;
        if (samples_.size() >= kMaxSamples)
            decimate();
    }

    Cycle interval() const { return interval_; }

    const std::vector<std::pair<Cycle, std::uint64_t>> &
    samples() const
    {
        return samples_;
    }

    /** Drop samples and restore the configured base cadence. */
    void
    clear()
    {
        samples_.clear();
        interval_ = baseInterval_;
        nextDue_ = 0;
    }

  private:
    void decimate();

    Cycle baseInterval_;
    Cycle interval_;
    Cycle nextDue_ = 0;
    std::vector<std::pair<Cycle, std::uint64_t>> samples_;
};

/**
 * A bag of named 64-bit counters, histograms and time series. Each
 * Pipeline owns one; subsystems (caches, predictors, policies)
 * increment counters through it so that experiment harnesses can
 * compute derived metrics such as hit rates or
 * fences-per-kilo-instruction.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if absent. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /**
     * Resolve @p name once and return a stable handle for hot-path
     * increments (see Counter). Creates the counter at zero if
     * absent. The name-based inc()/get() API keeps working for cold
     * paths and dumps.
     */
    Counter
    counter(const std::string &name)
    {
        return Counter(&counters_[name]);
    }

    /** Named histogram, created empty on first use. */
    Histogram &
    histogram(const std::string &name)
    {
        return histograms_[name];
    }

    /**
     * Named time series, created on first use with @p interval
     * cycles between samples (ignored once created).
     */
    TimeSeries &
    timeSeries(const std::string &name,
               Cycle interval = TimeSeries::kDefaultInterval)
    {
        auto it = series_.find(name);
        if (it == series_.end())
            it = series_.emplace(name, TimeSeries(interval)).first;
        return it->second;
    }

    /** Read counter @p name; absent counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio helper: get(num) / get(den), 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /**
     * Reset every counter to zero and every histogram/time series to
     * empty. Entries are zeroed in place, never erased, so Counter
     * handles and Histogram/TimeSeries references stay valid across
     * the warmup/measure reset.
     */
    void
    clear()
    {
        for (auto &[name, value] : counters_)
            value = 0;
        for (auto &[name, h] : histograms_)
            h.clear();
        for (auto &[name, ts] : series_)
            ts.clear();
    }

    /**
     * Make this set's *values* equal to @p o without invalidating any
     * outstanding Counter handle or Histogram/TimeSeries reference:
     * entries are written in place (created when missing, zeroed when
     * absent from @p o), never erased. Plain assignment would rebuild
     * the maps and dangle every cached hot-path handle; this is the
     * restore path for snapshot/rollback experiments.
     */
    void
    assignFrom(const StatSet &o)
    {
        for (auto &[name, value] : counters_)
            value = o.get(name);
        for (const auto &[name, value] : o.counters_)
            counters_[name] = value;
        for (auto &[name, h] : histograms_) {
            auto it = o.histograms_.find(name);
            if (it == o.histograms_.end())
                h.clear();
            else
                h = it->second;
        }
        for (const auto &[name, h] : o.histograms_)
            histograms_[name] = h;
        for (auto &[name, ts] : series_) {
            auto it = o.series_.find(name);
            if (it == o.series_.end())
                ts.clear();
            else
                ts = it->second;
        }
        for (const auto &[name, ts] : o.series_)
            series_.insert_or_assign(name, ts);
    }

    /** Dump counters then histogram summaries, sorted by name. */
    void dump(std::ostream &os) const;

    /** Access the underlying maps (read-only). */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &
    allHistograms() const
    {
        return histograms_;
    }

    const std::map<std::string, TimeSeries> &
    allTimeSeries() const
    {
        return series_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, TimeSeries> series_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_STATS_HH
