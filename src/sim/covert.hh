/**
 * @file
 * Flush+Reload covert-channel receiver operating on the simulated
 * cache hierarchy. A transmitter gadget encodes a secret byte by
 * touching probeBase + secret * kStride; the receiver flushes every
 * slot beforehand and afterwards classifies slots by probe latency.
 */

#ifndef PERSPECTIVE_SIM_COVERT_HH
#define PERSPECTIVE_SIM_COVERT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache.hh"
#include "types.hh"

namespace perspective::sim
{

/** Flush+Reload primitive over a probe array. */
class FlushReload
{
  public:
    /** One probe slot per possible symbol (e.g. 256 for a byte). */
    static constexpr unsigned kStride = 4096; ///< defeat prefetchers

    FlushReload(CacheHierarchy &caches, Addr probe_base,
                unsigned symbols = 256)
        : caches_(caches), probeBase_(probe_base), symbols_(symbols)
    {
    }

    /** VA a transmitter must touch to encode @p symbol. */
    Addr
    slotAddr(unsigned symbol) const
    {
        return probeBase_ + Addr{symbol} * kStride;
    }

    /** Flush every probe slot (the "flush" phase). */
    void
    prime()
    {
        for (unsigned s = 0; s < symbols_; ++s)
            caches_.flush(slotAddr(s));
    }

    /**
     * Reload phase: return the symbol whose slot hits in cache, or
     * nullopt when no slot (or more than one) was touched.
     */
    std::optional<unsigned>
    recover() const
    {
        std::optional<unsigned> hit;
        Cycle threshold = caches_.l1d().params().hit_latency +
                          caches_.l2().params().hit_latency;
        for (unsigned s = 0; s < symbols_; ++s) {
            if (caches_.probeLatency(slotAddr(s)) <= threshold) {
                if (hit)
                    return std::nullopt; // ambiguous
                hit = s;
            }
        }
        return hit;
    }

    Addr probeBase() const { return probeBase_; }
    unsigned symbols() const { return symbols_; }

  private:
    CacheHierarchy &caches_;
    Addr probeBase_;
    unsigned symbols_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_COVERT_HH
