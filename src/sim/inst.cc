#include "inst.hh"

#include <sstream>

namespace perspective::sim
{

namespace
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::IntAlu: return "alu";
      case Op::IntMul: return "mul";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Branch: return "br";
      case Op::Jump: return "jmp";
      case Op::Call: return "call";
      case Op::IndirectCall: return "icall";
      case Op::Return: return "ret";
      case Op::Fence: return "fence";
    }
    return "?";
}

} // namespace

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (dst != kNoReg)
        os << " r" << unsigned(dst);
    if (src1 != kNoReg)
        os << ", r" << unsigned(src1);
    if (src2 != kNoReg)
        os << ", r" << unsigned(src2);
    if (op == Op::Branch || op == Op::Jump)
        os << " -> " << target;
    if (op == Op::Call)
        os << " f" << callee;
    if (imm != 0)
        os << " [imm=" << imm << "]";
    return os.str();
}

MicroOp
movImm(RegId dst, std::int64_t imm)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::MovI;
    u.dst = dst;
    u.imm = imm;
    return u;
}

MicroOp
mov(RegId dst, RegId src)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::Mov;
    u.dst = dst;
    u.src1 = src;
    return u;
}

MicroOp
add(RegId dst, RegId src1, RegId src2)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::Add;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

MicroOp
addImm(RegId dst, RegId src1, std::int64_t imm)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::Add;
    u.dst = dst;
    u.src1 = src1;
    u.imm = imm;
    return u;
}

MicroOp
andImm(RegId dst, RegId src1, std::int64_t imm)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::And;
    u.dst = dst;
    u.src1 = src1;
    u.imm = imm;
    return u;
}

MicroOp
shlImm(RegId dst, RegId src1, std::int64_t imm)
{
    MicroOp u;
    u.op = Op::IntAlu;
    u.alu = AluOp::Shl;
    u.dst = dst;
    u.src1 = src1;
    u.imm = imm;
    return u;
}

MicroOp
mul(RegId dst, RegId src1, RegId src2)
{
    MicroOp u;
    u.op = Op::IntMul;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

MicroOp
load(RegId dst, RegId base, std::int64_t off)
{
    MicroOp u;
    u.op = Op::Load;
    u.dst = dst;
    u.src1 = base;
    u.imm = off;
    return u;
}

MicroOp
loadAbs(RegId dst, Addr addr)
{
    MicroOp u;
    u.op = Op::Load;
    u.dst = dst;
    u.imm = static_cast<std::int64_t>(addr);
    return u;
}

MicroOp
store(RegId base, std::int64_t off, RegId value)
{
    MicroOp u;
    u.op = Op::Store;
    u.src1 = base;
    u.src2 = value;
    u.imm = off;
    return u;
}

MicroOp
branch(Cond c, RegId src1, RegId src2, std::uint32_t target)
{
    MicroOp u;
    u.op = Op::Branch;
    u.cond = c;
    u.src1 = src1;
    u.src2 = src2;
    u.target = target;
    return u;
}

MicroOp
branchImm(Cond c, RegId src1, std::int64_t imm, std::uint32_t target)
{
    MicroOp u;
    u.op = Op::Branch;
    u.cond = c;
    u.src1 = src1;
    u.imm = imm;
    u.target = target;
    return u;
}

MicroOp
jump(std::uint32_t target)
{
    MicroOp u;
    u.op = Op::Jump;
    u.target = target;
    return u;
}

MicroOp
call(FuncId callee)
{
    MicroOp u;
    u.op = Op::Call;
    u.callee = callee;
    return u;
}

MicroOp
indirectCall(RegId targetReg)
{
    MicroOp u;
    u.op = Op::IndirectCall;
    u.src1 = targetReg;
    return u;
}

MicroOp
ret()
{
    MicroOp u;
    u.op = Op::Return;
    return u;
}

MicroOp
fence()
{
    MicroOp u;
    u.op = Op::Fence;
    return u;
}

MicroOp
nop()
{
    return MicroOp{};
}

} // namespace perspective::sim
