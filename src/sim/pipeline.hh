/**
 * @file
 * Out-of-order, speculative, cycle-approximate pipeline.
 *
 * The model implements the mechanisms transient-execution attacks and
 * their defenses actually interact with:
 *
 *  - in-order fetch along a *predicted* path (conditional predictor,
 *    BTB for indirect calls, RSB for returns), so wrong-path micro-ops
 *    really enter the window, really execute, and really disturb the
 *    cache before being squashed;
 *  - a reorder buffer with in-order commit and full squash/restore on
 *    misprediction (rename map, speculative call stack, predictor
 *    history and RSB checkpoints);
 *  - a Visibility Point rule (Section 6.2): an instruction is
 *    speculative while any older unresolved control-flow instruction
 *    could squash it; defenses may block transmitters until then;
 *  - STT-style taint: values produced by speculative loads are tainted
 *    and taint propagates through data flow until the producer load
 *    reaches its Visibility Point.
 *
 * Defense schemes plug in through sim::SpeculationPolicy.
 */

#ifndef PERSPECTIVE_SIM_PIPELINE_HH
#define PERSPECTIVE_SIM_PIPELINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "cache.hh"
#include "leakage.hh"
#include "memory.hh"
#include "policy.hh"
#include "predictor.hh"
#include "program.hh"
#include "stats.hh"
#include "tlb.hh"
#include "trace.hh"
#include "types.hh"

namespace perspective::sim
{

/** Core configuration (defaults follow Table 7.1). */
struct PipelineParams
{
    unsigned width = 8;           ///< fetch/commit width
    unsigned robSize = 192;
    unsigned lqSize = 62;
    unsigned sqSize = 32;
    Cycle mispredictPenalty = 10; ///< front-end redirect cycles
    /** Minimum cycles between dispatch of a control-flow op and its
     * resolution, modeling the fetch-to-execute pipeline depth. This
     * is the length of the speculative window defenses fight over:
     * FENCE-style schemes stall loads for at least this long behind
     * every unresolved branch. */
    Cycle branchResolveDepth = 6;
    /** Baseline privilege-transition microcode cost (syscall/sysret,
     * swapgs), charged on every kernel entry/exit regardless of the
     * defense scheme. KPTI-style mitigations add on top. */
    Cycle kernelEntryCost = 40;
    Cycle kernelExitCost = 24;
    Cycle dramLatency = 100;      ///< 50 ns at 2 GHz
    Cycle maxCycles = 200'000'000;///< runaway guard
    /** Per-cycle distribution/time-series sampling (ROB occupancy
     * histogram, committed/fences time series). Off: zero per-cycle
     * telemetry cost; event-proportional samples (fence stalls,
     * squash depths, load waits) are always collected. */
    bool detailedTelemetry = true;
    /** Transient-leakage ledger (leakage.hh). Observation-only and
     * additionally gated on a classifier being installed; simulated
     * cycle counts are identical either way. */
    bool leakLedger = true;
};

/** Outcome of one Pipeline::run invocation. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0; ///< committed micro-ops
};

/**
 * The simulated core. One Pipeline owns its cache hierarchy,
 * predictors, TLBs and architectural state; the Program and the
 * backing Memory are shared with the kernel model and attack drivers.
 */
class Pipeline
{
  public:
    Pipeline(const Program &prog, Memory &mem,
             PipelineParams params = {});

    /** Install the active defense scheme (nullptr -> unsafe). */
    void setPolicy(SpeculationPolicy *policy);
    SpeculationPolicy *policy() const { return policy_; }

    /** Current address-space identifier (tags ISV cache et al.). */
    void setAsid(Asid asid) { asid_ = asid; }
    Asid asid() const { return asid_; }

    /** Kernel stack base used for call/return slot traffic. */
    void setKernelStackBase(Addr base) { stackBase_ = base; }
    Addr kernelStackBase() const { return stackBase_; }

    /** Architectural register access (drivers pass syscall args). */
    std::uint64_t regValue(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint64_t v) { regs_[r] = v; }

    /**
     * Execute @p entry to completion (its final return) and report the
     * cycles and committed micro-ops consumed. Microarchitectural
     * state (caches, predictors) persists across calls, which is what
     * lets an attacker mistrain structures in one call and exploit
     * them in the next.
     */
    RunResult run(FuncId entry);

    /**
     * Checkpoint of the core's full microarchitectural state between
     * runs: caches, TLB, predictors, architectural registers, stats
     * and the sequence/cycle clocks. Only valid at a quiescent point
     * (empty ROB — i.e. between run() calls); in-flight state is
     * deliberately not part of it.
     */
    struct Snapshot
    {
        CacheHierarchy caches;
        Tlb dtlb;
        CondPredictor cond;
        Btb btb;
        Rsb rsb;
        StatSet stats;
        std::array<std::uint64_t, kNumRegs> regs{};
        std::array<std::uint64_t, kNumRegs> renameMap{};
        std::array<bool, kNumRegs> renameValid{};
        std::uint64_t nextSeq = 0;
        Cycle now = 0;
        Cycle fetchStallUntil = 0;
        Asid asid = 0;
        Addr stackBase = 0;
        LeakLedger::Snapshot ledger;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /** Core cycle clock. The pointer stays valid for the pipeline's
     * lifetime — policies hold it to timestamp deferred updates
     * (PerspectivePolicy::setClock). */
    Cycle now() const { return now_; }
    const Cycle *cyclePtr() const { return &now_; }

    /**
     * Run @p fn at the first cycle >= @p when of a subsequent run()
     * — an asynchronous kernel-side event (ownership handoff, module
     * load, fleet flip) landing mid-run while loads are in flight.
     * Callbacks mutate semantic state, not pipeline internals.
     * Pending callbacks are dropped by restore(): a rewound
     * experiment re-schedules its own events.
     */
    void
    scheduleAt(Cycle when, std::function<void()> fn)
    {
        scheduled_.emplace_back(when, std::move(fn));
    }
    std::size_t pendingScheduled() const { return scheduled_.size(); }

    /** Transient-leakage ledger (observation-only; DESIGN §5.5).
     * Arm it with LeakLedger::setClassifier; the pipeline classifies
     * speculative loads and tracks taint only while armed. */
    LeakLedger &leakLedger() { return ledger_; }
    const LeakLedger &leakLedger() const { return ledger_; }

    Memory &memory() { return mem_; }
    CacheHierarchy &caches() { return caches_; }
    CondPredictor &condPredictor() { return cond_; }
    Btb &btb() { return btb_; }
    Rsb &rsb() { return rsb_; }
    Tlb &dtlb() { return dtlb_; }
    StatSet &stats() { return stats_; }
    const Program &program() const { return prog_; }
    const PipelineParams &params() const { return params_; }

  private:
    /** A frame of the speculative call stack. */
    struct Frame
    {
        FuncId func = kNoFunc;
        std::uint32_t retIdx = 0;
        Addr slotVa = 0; ///< stack slot holding the return address
    };

    /**
     * Immutable, structurally shared call stack (a persistent cons
     * list). Every control op checkpoints the fetch path's stack into
     * its ROB entry (RobEntry::stackCkpt); with a plain vector that
     * deep-copied every frame per checkpoint and per squash restore.
     * Here checkpoint and restore are one shared_ptr copy, push is a
     * single node allocation sharing the whole tail, and pop is a
     * pointer step — nothing is ever cloned, and frozen snapshots
     * stay valid through any later mutation because nodes are
     * immutable once linked.
     */
    class CowStack
    {
      public:
        std::size_t size() const { return top_ ? top_->depth : 0; }
        bool empty() const { return !top_; }
        const Frame &back() const { return top_->frame; }

        void
        push_back(const Frame &f)
        {
            top_ = std::make_shared<const Node>(
                Node{f, top_, size() + 1});
        }

        void pop_back() { top_ = top_->prev; }

      private:
        struct Node
        {
            Frame frame;
            std::shared_ptr<const Node> prev;
            std::size_t depth;
        };

        /** Null = empty; depth is capped by real kernel call depth,
         * so chain destruction cannot recurse deeply. */
        std::shared_ptr<const Node> top_;
    };

    /** Front-end state: where fetch is and the path's call stack. */
    struct FetchState
    {
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
        CowStack stack;
        bool halted = false; ///< fetched past the outermost return
    };

    enum class EState : std::uint8_t
    {
        Waiting,   ///< operands not ready
        Blocked,   ///< transmitter gated by the policy
        Executing, ///< in an FU, completes at doneCycle
        Done,      ///< result available
    };

    struct RobEntry
    {
        std::uint64_t seq = 0;
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
        Addr pc = 0;
        const MicroOp *op = nullptr;
        bool kernel = false;

        EState state = EState::Waiting;
        Cycle doneCycle = 0;
        Cycle dispatchCycle = 0;
        Cycle issueCycle = 0;   ///< when the op entered an FU
        Cycle blockedSince = 0; ///< first policy-blocked cycle
        std::uint64_t result = 0;

        // Operand capture: producer seq (kNoSeq when the value came
        // from the architectural file at dispatch).
        static constexpr std::uint64_t kNoSeq = ~0ull;
        std::array<std::uint64_t, 2> srcProd = {kNoSeq, kNoSeq};
        std::array<std::uint64_t, 2> srcVal = {0, 0};
        std::array<bool, 2> srcReady = {true, true};
        std::array<RegId, 2> srcReg = {kNoReg, kNoReg};

        bool tainted = false;   ///< result taint (STT), memoized
        Cycle taintCycle = 0;   ///< cycle `tainted` was computed for
        bool counted = false;   ///< fence already counted for stats
        bool invisible = false; ///< executed without cache fills

        // Leakage-ledger taint (observation-only, independent of the
        // STT bit above): which live secret sources this entry's
        // result derives from, the per-operand captures, and — for a
        // secret-classified load — its own source slot.
        std::uint64_t leakTaint = 0;
        std::array<std::uint64_t, 2> srcLeakTaint = {0, 0};
        std::uint8_t leakSrcBit = LeakLedger::kNoSource;

        // Wake-driven gate re-evaluation (GateWake in policy.hh):
        // snapshot of the blocking verdict's inputs, captured when
        // the policy blocked this entry. While no wake condition
        // holds, the per-cycle re-gate is elided with the exact
        // accounting the suppressed call would have produced.
        bool wakeEvery = true;
        std::uint8_t wakeNumGens = 0;
        Cycle wakeRecheckAt = 0;
        std::uint64_t wakeHorizonGen = 0;
        std::array<const std::uint64_t *, GateWake::kMaxGens>
            wakeGen{};
        std::array<std::uint64_t, GateWake::kMaxGens> wakeGenSeen{};
        Counter *wakeTally = nullptr;

        /** Unready source-operand count; 0 = issue candidate. */
        std::uint8_t pendingSrcs = 0;
        /** Consumers to wake when this entry completes:
         * (consumer seq, operand slot). */
        std::vector<std::pair<std::uint64_t, unsigned>> wakeup;

        // Memory ops.
        Addr effAddr = 0;
        bool addrValid = false;

        // Control ops.
        bool isControl = false;
        bool resolved = false;
        bool predictedTaken = false;
        FuncId predTargetFunc = kNoFunc;
        std::uint32_t predTargetIdx = 0;
        std::uint64_t histCkpt = 0;
        Rsb::Checkpoint rsbCkpt{0, 0};
        CowStack stackCkpt; ///< stack before this op's effect
        bool sawHalt = false; ///< return with an empty correct stack
    };

    // -- per-cycle stages ------------------------------------------------
    void doCommit();
    void doExecute();
    void doFetch();

    // -- helpers ---------------------------------------------------------
    RobEntry *findBySeq(std::uint64_t seq);
    bool isSpeculative(const RobEntry &e) const;
    bool addrTainted(RobEntry &e);
    bool taintOf(RobEntry &e);
    bool resolveControl(RobEntry &e);
    void registerDispatch(RobEntry &e);
    void enqueueReady(RobEntry &e);
    void onComplete(RobEntry &e);
    bool tryIssue(RobEntry &e);
    bool gateWakeDue(const RobEntry &e) const;
    void captureGateWake(RobEntry &e, const SpecContext &ctx,
                         SpeculationPolicy &pol);
    std::uint64_t horizonSeq();
    void squashAfter(std::uint64_t seq);
    void rebuildRenameMap();
    void captureOperand(RobEntry &e, unsigned slot, RegId reg);
    Cycle execLatency(const RobEntry &e);
    bool tryIssueLoad(RobEntry &e);
    void applyCommit(RobEntry &e);
    void noteFenceStallEnd(const RobEntry &e);
    void recordSpan(trace::Flag flag, const RobEntry &e, Cycle start,
                    const char *suffix = nullptr);
    void sampleTelemetry();
    void runScheduled();
    std::uint64_t evalAlu(const RobEntry &e) const;
    bool evalBranch(const RobEntry &e) const;

    const Program &prog_;
    Memory &mem_;
    PipelineParams params_;

    CacheHierarchy caches_;
    Tlb dtlb_;
    CondPredictor cond_;
    Btb btb_;
    Rsb rsb_;
    StatSet stats_;

    // Cached stat handles for the per-cycle/per-op hot paths (cold
    // paths keep the name-based StatSet::inc API). Handles survive
    // StatSet::clear(), so the warmup/measure reset keeps them live.
    Counter ctrCommitted_;
    Counter ctrCommittedKernel_;
    Counter ctrFetched_;
    Counter ctrLoads_;
    Counter ctrLoadsSpec_;
    Counter ctrLoadsInvisible_;
    Counter ctrBlockedCycles_;
    Counter ctrSquashedUops_;
    Counter ctrFences_;
    Counter ctrFencesKernel_;
    Counter ctrMispredicts_;
    Counter ctrSquashes_;
    Counter ctrGateChecks_; ///< real policy gateLoad invocations
    Counter ctrGateElided_; ///< per-cycle re-gates skipped by wakes

    // Distribution / time-series telemetry (registered once in the
    // constructor; pointees are stable map nodes inside stats_).
    Histogram *histRobOcc_ = nullptr;
    Histogram *histFenceStall_ = nullptr;
    Histogram *histSquashDepth_ = nullptr;
    Histogram *histLoadWait_ = nullptr;
    TimeSeries *tsRobOcc_ = nullptr;
    TimeSeries *tsCommitted_ = nullptr;
    TimeSeries *tsFences_ = nullptr;

    SpeculationPolicy *policy_ = nullptr;
    UnsafePolicy unsafe_;

    LeakLedger ledger_;
    /** params_.leakLedger && classifier installed, latched per run. */
    bool ledgerArmed_ = false;
    /** Syscall entry point of the current run (leak attribution). */
    FuncId entryFunc_ = kNoFunc;

    Asid asid_ = 0;
    Addr stackBase_ = 0;

    std::array<std::uint64_t, kNumRegs> regs_{};

    // ROB as a deque; seq of front entry tracked separately.
    std::deque<RobEntry> rob_;
    std::uint64_t nextSeq_ = 0;
    std::array<std::uint64_t, kNumRegs> renameMap_{};
    std::array<bool, kNumRegs> renameValid_{};

    FetchState fetch_;
    Cycle now_ = 0;
    Cycle fetchStallUntil_ = 0;
    std::uint64_t fetchBlockedOnSeq_ = RobEntry::kNoSeq;
    Addr lastFetchLine_ = ~Addr{0};
    unsigned inflightLoads_ = 0;
    unsigned inflightStores_ = 0;
    bool halted_ = false;
    bool eventsOn_ = false; ///< structured-sink flag, cached per run

    // Smallest seq of an unresolved control op (the Visibility Point
    // horizon), recomputed once per cycle from unresolvedCtls_.
    std::uint64_t oldestUnresolvedCtl_ = RobEntry::kNoSeq;
    /** Ticks whenever oldestUnresolvedCtl_ changes: the implicit
     * wake source of every blocked load (VP release, `speculative`
     * flips, STT taint clears — all tied to horizon movement). */
    std::uint64_t horizonGen_ = 0;

    // Fetch fast path: the current function's descriptor, resolved
    // once per front-end redirect instead of per micro-op.
    FuncId fetchFuncCached_ = kNoFunc;
    const Function *fetchFuncPtr_ = nullptr;

    // -- incremental scheduling structures --------------------------------
    // All are keyed/sorted by seq; RobEntry pointers are stable (the
    // deque never relocates survivors) and every structure drops its
    // suffix on squash and the affected front entries on commit, so
    // no structure ever holds a pointer to a popped entry.

    /** Issue candidates (Waiting with ready operands, or Blocked),
     * sorted by seq. Entries leave only by issuing or by squash;
     * conflict-stalled entries are re-attempted every cycle, exactly
     * like the full-ROB scan did. Policy-blocked entries are only
     * re-gated when a wake condition holds (see GateWake); elided
     * cycles replicate the suppressed call's accounting exactly. */
    std::vector<std::pair<std::uint64_t, RobEntry *>> readyQ_;

    /** Completion events (doneCycle, seq); min-heap. Squashed
     * entries' events are dropped lazily when popped. */
    std::priority_queue<std::pair<Cycle, std::uint64_t>,
                        std::vector<std::pair<Cycle, std::uint64_t>>,
                        std::greater<>>
        eventQ_;

    /** All in-flight stores (dispatch to commit), seq order. */
    std::deque<std::pair<std::uint64_t, RobEntry *>> storeQ_;
    /** Seqs of stores that have not issued yet (address unknown). */
    std::vector<std::uint64_t> pendingStores_;
    /** Seqs of fences that are not Done yet. */
    std::deque<std::uint64_t> pendingFences_;
    /** Seqs of dispatched control ops; resolved/dead fronts are
     * popped lazily by horizonSeq(). */
    std::deque<std::uint64_t> unresolvedCtls_;

    /** Mid-run kernel events (scheduleAt), fired by the run loop
     * once now_ reaches their cycle. Unsorted — the list is tiny
     * (a scenario schedules a handful) and scanned only while
     * nonempty. */
    std::vector<std::pair<Cycle, std::function<void()>>> scheduled_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_PIPELINE_HH
