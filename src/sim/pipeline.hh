/**
 * @file
 * Out-of-order, speculative, cycle-approximate pipeline.
 *
 * The model implements the mechanisms transient-execution attacks and
 * their defenses actually interact with:
 *
 *  - in-order fetch along a *predicted* path (conditional predictor,
 *    BTB for indirect calls, RSB for returns), so wrong-path micro-ops
 *    really enter the window, really execute, and really disturb the
 *    cache before being squashed;
 *  - a reorder buffer with in-order commit and full squash/restore on
 *    misprediction (rename map, speculative call stack, predictor
 *    history and RSB checkpoints);
 *  - a Visibility Point rule (Section 6.2): an instruction is
 *    speculative while any older unresolved control-flow instruction
 *    could squash it; defenses may block transmitters until then;
 *  - STT-style taint: values produced by speculative loads are tainted
 *    and taint propagates through data flow until the producer load
 *    reaches its Visibility Point.
 *
 * Defense schemes plug in through sim::SpeculationPolicy.
 */

#ifndef PERSPECTIVE_SIM_PIPELINE_HH
#define PERSPECTIVE_SIM_PIPELINE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "cache.hh"
#include "leakage.hh"
#include "memory.hh"
#include "policy.hh"
#include "predictor.hh"
#include "program.hh"
#include "sampling.hh"
#include "stats.hh"
#include "superblock.hh"
#include "tlb.hh"
#include "trace.hh"
#include "types.hh"

namespace perspective::sim
{

/** Core configuration (defaults follow Table 7.1). */
struct PipelineParams
{
    unsigned width = 8;           ///< fetch/commit width
    unsigned robSize = 192;
    unsigned lqSize = 62;
    unsigned sqSize = 32;
    Cycle mispredictPenalty = 10; ///< front-end redirect cycles
    /** Minimum cycles between dispatch of a control-flow op and its
     * resolution, modeling the fetch-to-execute pipeline depth. This
     * is the length of the speculative window defenses fight over:
     * FENCE-style schemes stall loads for at least this long behind
     * every unresolved branch. */
    Cycle branchResolveDepth = 6;
    /** Baseline privilege-transition microcode cost (syscall/sysret,
     * swapgs), charged on every kernel entry/exit regardless of the
     * defense scheme. KPTI-style mitigations add on top. */
    Cycle kernelEntryCost = 40;
    Cycle kernelExitCost = 24;
    Cycle dramLatency = 100;      ///< 50 ns at 2 GHz
    Cycle maxCycles = 200'000'000;///< runaway guard
    /** Per-cycle distribution/time-series sampling (ROB occupancy
     * histogram, committed/fences time series). Off: zero per-cycle
     * telemetry cost; event-proportional samples (fence stalls,
     * squash depths, load waits) are always collected. */
    bool detailedTelemetry = true;
    /** Transient-leakage ledger (leakage.hh). Observation-only and
     * additionally gated on a classifier being installed; simulated
     * cycle counts are identical either way. */
    bool leakLedger = true;
    /** Fast-forward execution (DESIGN §5.5): at quiescent points the
     * core executes gate-clear straight-line regions on a compact
     * functional engine and skips provably-idle cycles, dropping back
     * to full out-of-order simulation at the first control op, fence
     * or gateable situation. Timing-exact by construction — every
     * reported cycle, counter and histogram sample is bit-identical
     * to the detailed path — but requires detailedTelemetry off and
     * disengages whenever tracing or the active policy demands the
     * detailed path. */
    bool fastForward = false;
    /** Sampled simulation (DESIGN §5.8): when enabled (and the fast-
     * forward preconditions above hold), the core runs the periodic
     * functional-skip -> functional-warm -> detailed-window cycle and
     * estimates mean CPI with a confidence interval instead of
     * simulating every instruction cycle-accurately. Explicitly
     * statistical — cycle counts and most stats cover only the
     * detailed windows; callers extrapolate via sampler(). */
    SamplingParams sampling;
};

/** Outcome of one Pipeline::run invocation. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0; ///< committed micro-ops
};

/**
 * The simulated core. One Pipeline owns its cache hierarchy,
 * predictors, TLBs and architectural state; the Program and the
 * backing Memory are shared with the kernel model and attack drivers.
 */
class Pipeline
{
  public:
    Pipeline(const Program &prog, Memory &mem,
             PipelineParams params = {});

    /** Install the active defense scheme (nullptr -> unsafe). */
    void setPolicy(SpeculationPolicy *policy);
    SpeculationPolicy *policy() const { return policy_; }

    /** Current address-space identifier (tags ISV cache et al.). */
    void setAsid(Asid asid) { asid_ = asid; }
    Asid asid() const { return asid_; }

    /** Kernel stack base used for call/return slot traffic. */
    void setKernelStackBase(Addr base) { stackBase_ = base; }
    Addr kernelStackBase() const { return stackBase_; }

    /** Architectural register access (drivers pass syscall args). */
    std::uint64_t regValue(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint64_t v) { regs_[r] = v; }

    /**
     * Execute @p entry to completion (its final return) and report the
     * cycles and committed micro-ops consumed. Microarchitectural
     * state (caches, predictors) persists across calls, which is what
     * lets an attacker mistrain structures in one call and exploit
     * them in the next.
     */
    RunResult run(FuncId entry);

    /**
     * Checkpoint of the core's full microarchitectural state between
     * runs: caches, TLB, predictors, architectural registers, stats
     * and the sequence/cycle clocks. Only valid at a quiescent point
     * (empty ROB — i.e. between run() calls); in-flight state is
     * deliberately not part of it.
     */
    struct Snapshot
    {
        CacheHierarchy caches;
        Tlb dtlb;
        CondPredictor cond;
        Btb btb;
        Rsb rsb;
        StatSet stats;
        std::array<std::uint64_t, kNumRegs> regs{};
        std::array<std::uint64_t, kNumRegs> renameMap{};
        std::array<bool, kNumRegs> renameValid{};
        std::uint64_t nextSeq = 0;
        Cycle now = 0;
        Cycle fetchStallUntil = 0;
        Asid asid = 0;
        Addr stackBase = 0;
        LeakLedger::Snapshot ledger;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /** Core cycle clock. The pointer stays valid for the pipeline's
     * lifetime — policies hold it to timestamp deferred updates
     * (PerspectivePolicy::setClock). */
    Cycle now() const { return now_; }
    const Cycle *cyclePtr() const { return &now_; }

    /**
     * Run @p fn at the first cycle >= @p when of a subsequent run()
     * — an asynchronous kernel-side event (ownership handoff, module
     * load, fleet flip) landing mid-run while loads are in flight.
     * Callbacks mutate semantic state, not pipeline internals.
     * Pending callbacks are dropped by restore(): a rewound
     * experiment re-schedules its own events.
     */
    void
    scheduleAt(Cycle when, std::function<void()> fn)
    {
        scheduled_.emplace_back(when, std::move(fn));
    }
    std::size_t pendingScheduled() const { return scheduled_.size(); }

    /** Transient-leakage ledger (observation-only; DESIGN §5.6).
     * Arm it with LeakLedger::setClassifier; the pipeline classifies
     * speculative loads and tracks taint only while armed. */
    LeakLedger &leakLedger() { return ledger_; }
    const LeakLedger &leakLedger() const { return ledger_; }

    /** @name Sampled simulation (DESIGN §5.8)
     * @{ */

    /** Per-window CPI estimator; meaningful after a sampled run. */
    const SamplingEstimator &sampler() const { return sampler_; }

    /** True when the most recent run() executed in sampled mode
     * (sampling enabled and the fast-forward preconditions held). */
    bool sampledMode() const { return sampleMode_; }

    /**
     * Re-anchor the sampling phase machine and clear the estimator.
     * Experiment calls this at its warmup -> measured boundary (right
     * after clearing stats) so the measured phase starts with a fresh
     * detailed window and an empty estimate; restore() calls it
     * because the phase anchor (cumulative committed count) rewinds.
     */
    void resetSampling();

    /**
     * Fold an open, partially filled detailed window into the
     * estimator. Only used as a last resort on streams too short to
     * complete a single full window — partial windows carry the same
     * weight as full ones, so routine flushing would bias the mean.
     */
    void flushSampleWindow();

    /** @} */

    Memory &memory() { return mem_; }
    CacheHierarchy &caches() { return caches_; }
    CondPredictor &condPredictor() { return cond_; }
    Btb &btb() { return btb_; }
    Rsb &rsb() { return rsb_; }
    Tlb &dtlb() { return dtlb_; }
    StatSet &stats() { return stats_; }
    const Program &program() const { return prog_; }
    const PipelineParams &params() const { return params_; }

  private:
    /** A frame of the speculative call stack. */
    struct Frame
    {
        FuncId func = kNoFunc;
        std::uint32_t retIdx = 0;
        Addr slotVa = 0; ///< stack slot holding the return address
    };

    /**
     * Immutable, structurally shared call stack (a persistent cons
     * list). Every control op checkpoints the fetch path's stack into
     * its ROB entry (RobEntry::stackCkpt); with a plain vector that
     * deep-copied every frame per checkpoint and per squash restore.
     * Here checkpoint and restore are one shared_ptr copy, push is a
     * single node allocation sharing the whole tail, and pop is a
     * pointer step — nothing is ever cloned, and frozen snapshots
     * stay valid through any later mutation because nodes are
     * immutable once linked.
     */
    class CowStack
    {
      public:
        std::size_t size() const { return top_ ? top_->depth : 0; }
        bool empty() const { return !top_; }
        const Frame &back() const { return top_->frame; }

        void
        push_back(const Frame &f)
        {
            top_ = std::make_shared<const Node>(
                Node{f, top_, size() + 1});
        }

        void pop_back() { top_ = top_->prev; }

      private:
        struct Node
        {
            Frame frame;
            std::shared_ptr<const Node> prev;
            std::size_t depth;
        };

        /** Null = empty; depth is capped by real kernel call depth,
         * so chain destruction cannot recurse deeply. */
        std::shared_ptr<const Node> top_;
    };

    /** Front-end state: where fetch is and the path's call stack. */
    struct FetchState
    {
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
        CowStack stack;
        bool halted = false; ///< fetched past the outermost return
    };

    enum class EState : std::uint8_t
    {
        Waiting,   ///< operands not ready
        Blocked,   ///< transmitter gated by the policy
        Executing, ///< in an FU, completes at doneCycle
        Done,      ///< result available
    };

    struct RobEntry
    {
        std::uint64_t seq = 0;
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
        Addr pc = 0;
        const MicroOp *op = nullptr;
        bool kernel = false;

        EState state = EState::Waiting;
        Cycle doneCycle = 0;
        Cycle dispatchCycle = 0;
        Cycle issueCycle = 0;   ///< when the op entered an FU
        Cycle blockedSince = 0; ///< first policy-blocked cycle
        std::uint64_t result = 0;

        // Operand capture: producer seq (kNoSeq when the value came
        // from the architectural file at dispatch).
        static constexpr std::uint64_t kNoSeq = ~0ull;
        std::array<std::uint64_t, 2> srcProd = {kNoSeq, kNoSeq};
        /** Producer entries resolved at capture time (deque references
         * are stable), consumed by registerDispatch in the same cycle
         * so dispatch never searches the ROB by seq. */
        std::array<RobEntry *, 2> srcProdPtr = {nullptr, nullptr};
        std::array<std::uint64_t, 2> srcVal = {0, 0};
        std::array<bool, 2> srcReady = {true, true};
        std::array<RegId, 2> srcReg = {kNoReg, kNoReg};

        bool tainted = false;   ///< result taint (STT), memoized
        Cycle taintCycle = 0;   ///< cycle `tainted` was computed for
        bool counted = false;   ///< fence already counted for stats
        bool invisible = false; ///< executed without cache fills

        // Leakage-ledger taint (observation-only, independent of the
        // STT bit above): which live secret sources this entry's
        // result derives from, the per-operand captures, and — for a
        // secret-classified load — its own source slot.
        std::uint64_t leakTaint = 0;
        std::array<std::uint64_t, 2> srcLeakTaint = {0, 0};
        std::uint8_t leakSrcBit = LeakLedger::kNoSource;

        // Wake-driven gate re-evaluation (GateWake in policy.hh):
        // snapshot of the blocking verdict's inputs, captured when
        // the policy blocked this entry. While no wake condition
        // holds, the per-cycle re-gate is elided with the exact
        // accounting the suppressed call would have produced.
        bool wakeEvery = true;
        std::uint8_t wakeNumGens = 0;
        Cycle wakeRecheckAt = 0;
        std::uint64_t wakeHorizonGen = 0;
        std::array<const std::uint64_t *, GateWake::kMaxGens>
            wakeGen{};
        std::array<std::uint64_t, GateWake::kMaxGens> wakeGenSeen{};
        Counter *wakeTally = nullptr;

        /** memGen_ snapshot from the last issue attempt that failed
         * on the fence/store fronts; while it still matches, the
         * retry is elided (its outcome could not have changed). */
        std::uint64_t memGen = 0;

        /** Unready source-operand count; 0 = issue candidate. */
        std::uint8_t pendingSrcs = 0;
        /** One registered consumer wakeup. Ring slots are permanent,
         * so the pointer stays dereferenceable forever; `seq` is the
         * consumer's seq at registration and doubles as the liveness
         * check — a squashed consumer has its seq invalidated (see
         * squashAfter) and a recycled slot carries a different seq,
         * so `consumer->seq != seq` exactly replaces the old
         * ROB-search miss. Committed consumers cannot appear here:
         * an entry with a pending operand cannot complete, and its
         * producer fires the edge the moment it does. */
        struct WakeEdge
        {
            RobEntry *consumer;
            std::uint64_t seq;
            unsigned slot;
        };
        /** Consumers to wake when this entry completes. */
        std::vector<WakeEdge> wakeup;

        // Memory ops.
        Addr effAddr = 0;
        bool addrValid = false;

        // Control ops.
        bool isControl = false;
        bool resolved = false;
        bool predictedTaken = false;
        FuncId predTargetFunc = kNoFunc;
        std::uint32_t predTargetIdx = 0;
        std::uint64_t histCkpt = 0;
        Rsb::Checkpoint rsbCkpt{0, 0};
        CowStack stackCkpt; ///< stack before this op's effect
        bool sawHalt = false; ///< return with an empty correct stack

        /** Re-initialize a recycled ring slot for dispatch. Selective
         * on purpose — a full `*this = RobEntry{}` re-writes ~400
         * bytes per dispatched micro-op and dominated the fetch
         * stage. Skipped fields are written before they can be read
         * on every path:
         *  - seq/func/idx/pc/op/kernel/isControl/dispatchCycle: set
         *    by the dispatcher immediately after pushSlot();
         *  - srcProd/srcProdPtr/srcVal/srcReady/srcReg/srcLeakTaint:
         *    captureOperand covers both slots in every dispatch case
         *    (and zeroes the leak taint on architectural reads);
         *  - pendingSrcs: set by registerDispatch;
         *  - issueCycle/doneCycle/blockedSince/result: set at issue
         *    (blockedSince is only read under `counted`, reset here);
         *  - histCkpt/rsbCkpt/predTargetFunc/predTargetIdx: set at
         *    dispatch for exactly the control ops that resolve them;
         *  - wakeEvery/wakeNumGens/wakeGen/wakeGenSeen/wakeRecheckAt/
         *    wakeHorizonGen/wakeTally: set by captureGateWake, read
         *    only while state == Blocked, and Blocked is entered
         *    through captureGateWake.
         * The fast-forward materializer whole-assigns its entries, so
         * it is indifferent to what reset() leaves behind. */
        void reset()
        {
            wakeup.clear();   // keeps its allocation
            stackCkpt = {};   // unpin the checkpointed stack nodes
            state = EState::Waiting;
            resolved = false;
            predictedTaken = false;
            sawHalt = false;
            counted = false;
            invisible = false;
            tainted = false;
            taintCycle = 0;
            memGen = 0;
            leakTaint = 0;
            leakSrcBit = LeakLedger::kNoSource;
            effAddr = 0;
            addrValid = false;
        }
    };

    /** Fixed-capacity ROB ring. The deque it replaces allocated one
     * chunk per entry (RobEntry is near the chunk threshold), i.e.
     * one malloc/free per dispatched micro-op; the ring's slots are
     * permanent, recycled in place, and their wakeup vectors keep
     * their capacity across reuse. Slot addresses never change, so
     * the pointer-stability contract renameProd_/srcProdPtr rely on
     * carries over unchanged. */
    class RobRing
    {
      public:
        void init(std::size_t capacity)
        {
            std::size_t cap = 1;
            while (cap < capacity)
                cap <<= 1;
            slots_.resize(cap);
            mask_ = cap - 1;
            head_ = 0;
            count_ = 0;
        }
        bool empty() const { return count_ == 0; }
        std::size_t size() const { return count_; }
        RobEntry &front() { return slots_[head_ & mask_]; }
        RobEntry &back()
        {
            return slots_[(head_ + count_ - 1) & mask_];
        }
        RobEntry &operator[](std::size_t i)
        {
            return slots_[(head_ + i) & mask_];
        }
        /** Append: recycle the tail slot in place and return it. */
        RobEntry &pushSlot()
        {
            assert(count_ <= mask_ && "ROB ring overflow");
            RobEntry &e = slots_[(head_ + count_) & mask_];
            ++count_;
            e.reset();
            return e;
        }
        void pop_front()
        {
            ++head_;
            --count_;
        }
        void pop_back() { --count_; }
        void clear()
        {
            head_ = 0;
            count_ = 0;
        }

      private:
        std::vector<RobEntry> slots_;
        std::size_t head_ = 0, mask_ = 0, count_ = 0;
    };

    // -- per-cycle stages ------------------------------------------------
    void doCommit();
    void doExecute();
    void doFetch();

    // -- helpers ---------------------------------------------------------
    RobEntry *findBySeq(std::uint64_t seq);
    bool isSpeculative(const RobEntry &e) const;
    bool addrTainted(RobEntry &e);
    bool taintOf(RobEntry &e);
    bool resolveControl(RobEntry &e);
    void registerDispatch(RobEntry &e);
    void enqueueReady(RobEntry &e);
    void onComplete(RobEntry &e);
    bool tryIssue(RobEntry &e);
    bool gateWakeDue(const RobEntry &e) const;
    void captureGateWake(RobEntry &e, const SpecContext &ctx,
                         SpeculationPolicy &pol);
    std::uint64_t horizonSeq();
    void squashAfter(std::uint64_t seq);
    void rebuildRenameMap();
    void captureOperand(RobEntry &e, unsigned slot, RegId reg);
    Cycle execLatency(const RobEntry &e);
    bool tryIssueLoad(RobEntry &e);
    void applyCommit(RobEntry &e);
    void noteFenceStallEnd(const RobEntry &e);
    void recordSpan(trace::Flag flag, const RobEntry &e, Cycle start,
                    const char *suffix = nullptr);
    void sampleTelemetry();
    void runScheduled();
    std::uint64_t evalAlu(const RobEntry &e) const;
    bool evalBranch(const RobEntry &e) const;

    // -- fast-forward engine (pipeline_ff.cc) -----------------------------
    /** Advance now_ past cycles where provably nothing can happen
     * (empty ready queue, no due completion/scheduled event, stalled
     * or blocked front end). Exact: skipped cycles perform no state
     * change and sample no telemetry in fast-forward mode. */
    void skipIdleCycles();
    /** Quiescent-point region executor: runs gate-clear straight-line
     * micro-ops on a compact replica of the commit/execute/fetch
     * phases, then materializes the in-flight suffix back into the
     * ROB at the first control op or fence. Called from doFetch when
     * ffMode_ holds and the ROB is empty; returns the fetch width
     * already consumed in the current cycle. */
    unsigned fastForwardRegion();

    // -- sampled simulation (pipeline_ff.cc, DESIGN §5.8) -----------------
    /** Phase controller: called at the quiescent engagement point in
     * sampled mode. Runs functional skip/warm phases to their
     * instruction-count boundaries, records completed detailed
     * windows into sampler_, and returns with the machine either
     * inside a detailed window (detailed/FF execution proceeds) or
     * halted. */
    void samplingStep(SpeculationPolicy &pol);
    /** Architectural-only executor: commits up to @p budget micro-ops
     * with correct register/memory/control-flow semantics but no
     * timing (now_ does not advance) and, in the skip phase, no
     * microarchitectural updates at all. With @p warm set it drives
     * the L1/L2 caches, D-TLB, branch predictors, BTB, RSB and the
     * policy's warmAccess hook, so detailed windows open on the state
     * a continuously-detailed run would have. Only the committed-
     * micro-op counters advance; all other stats stay untouched. */
    void functionalAdvance(std::uint64_t budget, bool warm,
                           SpeculationPolicy &pol);

    const Program &prog_;
    Memory &mem_;
    PipelineParams params_;

    CacheHierarchy caches_;
    Tlb dtlb_;
    CondPredictor cond_;
    Btb btb_;
    Rsb rsb_;
    StatSet stats_;

    // Cached stat handles for the per-cycle/per-op hot paths (cold
    // paths keep the name-based StatSet::inc API). Handles survive
    // StatSet::clear(), so the warmup/measure reset keeps them live.
    Counter ctrCommitted_;
    Counter ctrCommittedKernel_;
    Counter ctrFetched_;
    Counter ctrLoads_;
    Counter ctrLoadsSpec_;
    Counter ctrLoadsInvisible_;
    Counter ctrBlockedCycles_;
    Counter ctrSquashedUops_;
    Counter ctrFences_;
    Counter ctrFencesKernel_;
    Counter ctrMispredicts_;
    Counter ctrSquashes_;
    Counter ctrGateChecks_; ///< real policy gateLoad invocations
    Counter ctrGateElided_; ///< per-cycle re-gates skipped by wakes

    // Distribution / time-series telemetry (registered once in the
    // constructor; pointees are stable map nodes inside stats_).
    Histogram *histRobOcc_ = nullptr;
    Histogram *histFenceStall_ = nullptr;
    Histogram *histSquashDepth_ = nullptr;
    Histogram *histLoadWait_ = nullptr;
    TimeSeries *tsRobOcc_ = nullptr;
    TimeSeries *tsCommitted_ = nullptr;
    TimeSeries *tsFences_ = nullptr;

    SpeculationPolicy *policy_ = nullptr;
    UnsafePolicy unsafe_;

    LeakLedger ledger_;
    /** params_.leakLedger && classifier installed, latched per run. */
    bool ledgerArmed_ = false;
    /** Syscall entry point of the current run (leak attribution). */
    FuncId entryFunc_ = kNoFunc;

    Asid asid_ = 0;
    Addr stackBase_ = 0;

    std::array<std::uint64_t, kNumRegs> regs_{};

    // ROB as a fixed-capacity ring (capacity = params_.robSize
    // rounded up to a power of two, set once in the constructor).
    RobRing rob_;
    std::uint64_t nextSeq_ = 0;
    std::array<std::uint64_t, kNumRegs> renameMap_{};
    /** Producer entry per renamed register (valid iff renameValid_);
     * deque references are stable until the entry commits or is
     * squashed, and both paths repair the map. */
    std::array<RobEntry *, kNumRegs> renameProd_{};
    std::array<bool, kNumRegs> renameValid_{};

    FetchState fetch_;
    Cycle now_ = 0;
    Cycle fetchStallUntil_ = 0;
    std::uint64_t fetchBlockedOnSeq_ = RobEntry::kNoSeq;
    Addr lastFetchLine_ = ~Addr{0};
    unsigned inflightLoads_ = 0;
    unsigned inflightStores_ = 0;
    bool halted_ = false;
    bool eventsOn_ = false; ///< structured-sink flag, cached per run

    // Smallest seq of an unresolved control op (the Visibility Point
    // horizon), recomputed once per cycle from unresolvedCtls_.
    std::uint64_t oldestUnresolvedCtl_ = RobEntry::kNoSeq;
    /** Ticks whenever oldestUnresolvedCtl_ changes: the implicit
     * wake source of every blocked load (VP release, `speculative`
     * flips, STT taint clears — all tied to horizon movement). */
    std::uint64_t horizonGen_ = 0;
    /** Ticks whenever the fence/store fronts can recede: a store
     * issues (leaves pendingStores_), a fence completes (leaves
     * pendingFences_), or a squash chops either deque. A load that
     * failed its front checks at generation g fails them at every
     * retry until memGen_ != g, so those retries are elided. Starts
     * at 1 so a fresh entry's memGen (0) never matches. */
    std::uint64_t memGen_ = 1;

    // Fetch fast path: the current function's descriptor, resolved
    // once per front-end redirect instead of per micro-op.
    FuncId fetchFuncCached_ = kNoFunc;
    const Function *fetchFuncPtr_ = nullptr;

    /** Predecoded superblocks for the front end (and the fast-forward
     * engine): op pointers, PCs, line-transition flags and flat
     * dispatch kinds, resolved once per straight-line run. */
    SuperblockCache sbCache_;
    /** Fetch cursor into the current superblock; null after any
     * front-end redirect (taken branch, call, return, squash) and
     * re-resolved from (fetch_.func, fetch_.idx) on demand. Survives
     * width/capacity/stall breaks mid-block. */
    const Superblock *fetchSb_ = nullptr;
    std::size_t fetchSbPos_ = 0;
    /** Cache hit/miss totals already published into stats_ (the
     * cache accumulates for the pipeline's lifetime while stats may
     * be cleared between runs, so run() publishes deltas). */
    std::uint64_t sbHitsSeen_ = 0;
    std::uint64_t sbMissesSeen_ = 0;

    // Fast-forward engine state (see pipeline_ff.cc). Latched per run.
    bool ffMode_ = false;
    Counter ctrFfUops_;
    Counter ctrFfEntries_;
    Counter ctrFfCycles_;

    // Sampled-simulation controller state (pipeline_ff.cc). The phase
    // machine anchors on the cumulative committed-micro-op count, so
    // phases span run() boundaries and request streams; it is
    // re-anchored only by resetSampling().
    enum class SamplePhase : std::uint8_t
    {
        Skip,    ///< functional, no microarchitectural updates
        Warm,    ///< functional, caches/predictors/views driven
        Detailed ///< cycle-accurate, contributes to the estimate
    };
    bool sampleMode_ = false; ///< sampling latched for this run
    bool sampleInit_ = false; ///< phase machine anchored
    bool sampleFirstSkip_ = true; ///< next skip takes the seed jitter
    SamplePhase samplePhase_ = SamplePhase::Detailed;
    std::uint64_t samplePhaseEnd_ = 0; ///< phase boundary (committed)
    std::uint64_t sampleWindowStartInsts_ = 0;
    Cycle sampleWindowStartCycle_ = 0;
    SamplingEstimator sampler_;

    /** One in-flight micro-op of a fast-forward region: the fields of
     * RobEntry the replica phases actually exercise, flat and small.
     * Region indices substitute for seqs (the region owns a dense seq
     * range starting at its entry nextSeq_). */
    struct FfEntry
    {
        const MicroOp *op = nullptr;
        Addr pc = 0;
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
        std::uint8_t kind = 0; ///< SbKind
        std::uint8_t state = 0; ///< 0 wait, 1 exec, 2 done, 3 committed
        std::uint8_t pendingSrcs = 0;
        bool kernel = false;
        bool addrValid = false;
        std::array<RegId, 2> srcReg = {kNoReg, kNoReg};
        std::array<bool, 2> srcReady = {true, true};
        std::array<std::int32_t, 2> srcProd = {-1, -1};
        std::array<std::uint64_t, 2> srcVal = {0, 0};
        std::uint64_t result = 0;
        Addr effAddr = 0;
        Cycle dispatch = 0;
        Cycle issue = 0;
        Cycle done = 0;
        std::int32_t wakeHead = -1; ///< into ffWake_, -1 = none
    };
    /** Wakeup-list node (intrusive list per producer, pooled). */
    struct FfWake
    {
        std::uint32_t cons;
        std::uint8_t slot;
        std::int32_t next;
    };
    // Region scratch, reused across engagements (no allocation in
    // steady state). Only valid inside fastForwardRegion().
    std::vector<FfEntry> ffEnts_;
    std::vector<std::uint32_t> ffReady_; ///< issue candidates, sorted
    std::vector<std::pair<Cycle, std::uint32_t>> ffHeap_; ///< completions
    std::vector<std::uint32_t> ffStores_; ///< dispatched, uncommitted
    std::vector<std::uint32_t> ffPendSt_; ///< dispatched, unissued
    std::vector<FfWake> ffWake_;
    std::array<std::int32_t, kNumRegs> ffRegWriter_{};

    // -- incremental scheduling structures --------------------------------
    // All are keyed/sorted by seq; RobEntry pointers are stable (the
    // deque never relocates survivors) and every structure drops its
    // suffix on squash and the affected front entries on commit, so
    // no structure ever holds a pointer to a popped entry.

    /** Issue candidates (Waiting with ready operands, or Blocked),
     * sorted by seq. Entries leave only by issuing or by squash;
     * conflict-stalled entries are re-attempted every cycle, exactly
     * like the full-ROB scan did. Policy-blocked entries are only
     * re-gated when a wake condition holds (see GateWake); elided
     * cycles replicate the suppressed call's accounting exactly. */
    std::vector<std::pair<std::uint64_t, RobEntry *>> readyQ_;

    /** Completion calendar: a ring of per-cycle seq buckets plus a
     * (practically unused) sorted overflow list for events beyond
     * the ring span. Execution latencies are bounded far below the
     * span, so push and drain are O(1) where the (cycle, seq)
     * min-heap this replaces paid O(log n) per event. Drain order is
     * the heap's exactly: cycles ascending, seqs ascending within a
     * cycle. Squashed entries' events are dropped lazily on pop. */
    class EventRing
    {
      public:
        /** One completion event: the issued entry's seq (liveness
         * check, same contract as RobEntry::WakeEdge) plus its
         * permanent ring slot, so firing never searches the ROB. */
        struct Ev
        {
            std::uint64_t seq;
            RobEntry *entry;
        };

        bool empty() const { return size_ == 0; }
        void emplace(Cycle c, std::uint64_t seq, RobEntry *entry)
        {
            assert(c >= base_ && "event scheduled in the past");
            if (size_ == 0 || c < next_)
                next_ = c;
            ++size_;
            if (c - base_ >= kSlots) {
                auto it = std::lower_bound(
                    overflow_.begin(), overflow_.end(), c,
                    [](const auto &p, Cycle cc) {
                        return p.first < cc;
                    });
                while (it != overflow_.end() && it->first == c &&
                       it->second.seq < seq)
                    ++it;
                overflow_.insert(it, {c, {seq, entry}});
                return;
            }
            auto &b = slots_[c & kMask];
            b.push_back({seq, entry});
            for (std::size_t j = b.size() - 1;
                 j > 0 && b[j - 1].seq > b[j].seq; --j)
                std::swap(b[j - 1], b[j]);
        }
        /** Earliest pending event cycle; only valid when !empty(). */
        Cycle nextCycle()
        {
            if (next_ >= base_)
                return next_; // still exact (emplace keeps the min)
            Cycle c = base_;
            while (slots_[c & kMask].empty() &&
                   c - base_ < kSlots - 1)
                ++c;
            if (slots_[c & kMask].empty())
                c = overflow_.front().first;
            next_ = c;
            return c;
        }
        /** Pop every event with cycle <= now, in (cycle, seq) order. */
        template <class F> void drainUpTo(Cycle now, F &&f)
        {
            while (base_ <= now) {
                auto &b = slots_[base_ & kMask];
                for (const Ev &ev : b) {
                    --size_;
                    f(ev);
                }
                b.clear();
                ++base_;
                while (!overflow_.empty() &&
                       overflow_.front().first - base_ < kSlots) {
                    auto [c, ev] = overflow_.front();
                    overflow_.erase(overflow_.begin());
                    slots_[c & kMask].push_back(ev);
                }
            }
            if (next_ < base_)
                next_ = base_ - 1; // mark lazy: recompute on demand
        }
        /** Reset; the next drain starts at @p base (events are only
         * ever scheduled for cycles > now). */
        void clear(Cycle base)
        {
            for (auto &b : slots_)
                b.clear();
            overflow_.clear();
            size_ = 0;
            base_ = base;
            next_ = 0;
        }

      private:
        static constexpr std::size_t kSlots = 1024;
        static constexpr std::size_t kMask = kSlots - 1;
        std::array<std::vector<Ev>, kSlots> slots_{};
        std::vector<std::pair<Cycle, Ev>> overflow_;
        Cycle base_ = 0;  ///< oldest undrained cycle
        Cycle next_ = 0;  ///< min pending cycle; < base_ means stale
        std::size_t size_ = 0;
    };
    EventRing eventQ_;

    /** All in-flight stores (dispatch to commit), seq order. */
    std::deque<std::pair<std::uint64_t, RobEntry *>> storeQ_;
    /** Seqs of stores that have not issued yet (address unknown). */
    std::vector<std::uint64_t> pendingStores_;
    /** Seqs of fences that are not Done yet. */
    std::deque<std::uint64_t> pendingFences_;
    /** Dispatched control ops as (seq, permanent ring slot);
     * resolved/dead fronts are popped lazily by horizonSeq(), which
     * validates the slot by seq instead of searching the ROB. */
    std::deque<std::pair<std::uint64_t, RobEntry *>> unresolvedCtls_;

    /** Mid-run kernel events (scheduleAt), fired by the run loop
     * once now_ reaches their cycle. Unsorted — the list is tiny
     * (a scenario schedules a handful) and scanned only while
     * nonempty. */
    std::vector<std::pair<Cycle, std::function<void()>>> scheduled_;
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_PIPELINE_HH
