#include "stats.hh"

#include <iomanip>

namespace perspective::sim
{

std::pair<std::uint64_t, std::uint64_t>
Histogram::bucketRange(unsigned b)
{
    if (b == 0)
        return {0, 0};
    std::uint64_t lo = std::uint64_t{1} << (b - 1);
    std::uint64_t hi = b >= 64
                           ? std::numeric_limits<std::uint64_t>::max()
                           : (std::uint64_t{1} << b) - 1;
    return {lo, hi};
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(min());
    if (p >= 100.0)
        return static_cast<double>(max());

    // 0-based continuous rank; walk buckets and interpolate linearly
    // inside the containing one, clamping bucket edges to the exact
    // observed range so tails never extrapolate past min/max.
    double rank = p / 100.0 * static_cast<double>(count_ - 1);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        std::uint64_t n = buckets_[b];
        if (n == 0)
            continue;
        if (rank < static_cast<double>(cum + n)) {
            auto [lo, hi] = bucketRange(b);
            lo = std::max(lo, min_);
            hi = std::min(hi, max_);
            double frac =
                (rank - static_cast<double>(cum)) /
                static_cast<double>(n);
            return static_cast<double>(lo) +
                   frac * static_cast<double>(hi - lo);
        }
        cum += n;
    }
    return static_cast<double>(max());
}

void
Histogram::dumpSummary(std::ostream &os) const
{
    os << "n=" << count_;
    if (count_ == 0)
        return;
    os << " min=" << min() << " mean=" << std::fixed
       << std::setprecision(2) << mean() << " p50=" << percentile(50)
       << " p90=" << percentile(90) << " p99=" << percentile(99)
       << " max=" << max();
    os.unsetf(std::ios::fixed);
}

void
TimeSeries::decimate()
{
    // Keep every other sample and double the cadence: memory stays
    // bounded while the series still spans the whole run.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2)
        samples_[keep++] = samples_[i];
    samples_.resize(keep);
    interval_ *= 2;
    if (!samples_.empty())
        nextDue_ = samples_.back().first + interval_;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << " ";
        h.dumpSummary(os);
        os << "\n";
    }
    for (const auto &[name, ts] : series_) {
        os << name << " samples=" << ts.samples().size()
           << " interval=" << ts.interval() << "\n";
    }
}

} // namespace perspective::sim
