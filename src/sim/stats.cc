#include "stats.hh"

namespace perspective::sim
{

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
}

} // namespace perspective::sim
