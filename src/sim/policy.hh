/**
 * @file
 * The pliable software/hardware interface: the pipeline consults a
 * SpeculationPolicy before letting a transmitter instruction execute
 * speculatively. Defense schemes (FENCE, DOM, STT, Perspective, ...)
 * implement this interface; the pipeline itself stays scheme-agnostic.
 */

#ifndef PERSPECTIVE_SIM_POLICY_HH
#define PERSPECTIVE_SIM_POLICY_HH

#include <array>
#include <cstdint>

#include "stats.hh"
#include "types.hh"

namespace perspective::sim
{

/** Everything a policy may inspect about a pending transmitter. */
struct SpecContext
{
    Addr pc = 0;          ///< VA of the transmitter instruction
    Addr dataVa = 0;      ///< effective address of the access
    FuncId func = kNoFunc;///< containing function
    bool speculative = false; ///< older squashable instruction exists
    bool tainted = false; ///< address depends on speculative data (STT)
    bool kernelMode = false;  ///< executing kernel code
    Asid asid = 0;        ///< current address-space id
    bool l1dHit = false;  ///< would this access hit in the L1D?
    Cycle now = 0;        ///< current cycle (for fill-latency models)
    /** True on the first gate evaluation of this dynamic instruction;
     * blocked loads are re-evaluated every cycle, and policies must
     * only bump attribution statistics once. */
    bool firstCheck = true;
    /** Generation counter of the L1D's *content* (ticks whenever a
     * line is installed, evicted or flushed — never on an LRU-only
     * touch). A policy whose verdict reads l1dHit lists this in its
     * GateWake so blocked loads re-evaluate only when a probe result
     * could actually have changed. */
    const std::uint64_t *l1dContentGen = nullptr;
};

/**
 * What a Block verdict depends on — the wake-driven re-evaluation
 * contract. After gateLoad returns Block, the pipeline asks the
 * policy (gateWake) which inputs the verdict was computed from and
 * then elides the per-cycle re-invocation until one of them changes:
 *
 *  - the speculation horizon (an older control op resolving) is
 *    always an implicit wake source — it can flip `speculative`
 *    and STT taint, and it is the release condition at the VP;
 *  - each listed generation counter is compared against its value
 *    at the blocking call; any tick forces a real re-evaluation;
 *  - recheckAt forces one at a known future cycle (in-flight fill);
 *  - everyCycle (the default) disables elision entirely — unknown
 *    or stateful policies keep the exact legacy cadence.
 *
 * Elision must be invisible in the stats: a policy that bumps a
 * counter on *every* blocking call points blockedTally at it, and
 * the pipeline bumps the tally once per elided cycle, exactly as the
 * suppressed call would have. Over-waking is always safe (a real
 * re-evaluation bumps whatever the legacy call did); under-waking is
 * a correctness bug — list every input the verdict can read.
 */
struct GateWake
{
    /** Re-evaluate every cycle (legacy behaviour; the default). */
    bool everyCycle = true;

    static constexpr unsigned kMaxGens = 4;
    std::array<const std::uint64_t *, kMaxGens> gen{};
    unsigned numGens = 0;

    /** Cycle at which to force a re-evaluation regardless of the
     * generation counters (0 = none). */
    Cycle recheckAt = 0;

    /** Bumped once per elided cycle to preserve per-call counter
     * totals (may be null). Must stay valid while any load blocked
     * under this wake spec is in flight. */
    Counter *blockedTally = nullptr;

    /** Switch to input-driven wakes and add a generation source. */
    void
    depend(const std::uint64_t *g)
    {
        everyCycle = false;
        if (g && numGens < kMaxGens)
            gen[numGens++] = g;
    }

    /** Input-driven with no generation sources: the verdict can only
     * change with the speculation horizon (or recheckAt). */
    static GateWake
    untilInputs()
    {
        GateWake w;
        w.everyCycle = false;
        return w;
    }
};

/** Verdicts a policy can return for a speculative transmitter. */
enum class Gate : std::uint8_t
{
    Allow,          ///< execute now
    Block,          ///< re-evaluate next cycle (released at the VP)
    AllowInvisible, ///< execute without modifying the cache; the
                    ///< line installs at commit (InvisiSpec-style)
};

/**
 * Abstract defense scheme. gateLoad is re-invoked every cycle while an
 * instruction is blocked and still speculative; once the instruction
 * reaches its Visibility Point the pipeline stops asking and issues it.
 */
class SpeculationPolicy
{
  public:
    virtual ~SpeculationPolicy() = default;

    /** Decide whether the speculative transmitter may execute. */
    virtual Gate gateLoad(const SpecContext &ctx) = 0;

    /**
     * Describe what the Block verdict just returned by gateLoad
     * depends on (see GateWake). Called by the pipeline immediately
     * after a Block, with the same context. The default keeps the
     * legacy every-cycle re-evaluation, so policies that do not
     * implement the contract behave exactly as before.
     */
    virtual GateWake
    gateWake(const SpecContext &ctx)
    {
        (void)ctx;
        return {};
    }

    /** Scheme name used in reports. */
    virtual const char *name() const = 0;

    /** Extra front-end cycles charged when entering the kernel. */
    virtual Cycle kernelEntryCost() const { return 0; }

    /** Extra cycles charged when returning to userspace. */
    virtual Cycle kernelExitCost() const { return 0; }

    /**
     * When true, indirect calls are executed as retpolines: the BTB is
     * never consulted and fetch stalls until the target resolves.
     */
    virtual bool retpoline() const { return false; }

    /**
     * Speculative control-flow integrity check (SpecCFI/CET-style):
     * may the front end speculate into @p target from an indirect
     * call? Coarse-grained CFI labels every kernel function entry as
     * legal — which is exactly why CFI alone leaves a large passive
     * attack surface (Chapter 10).
     */
    virtual bool
    cfiAllowsIndirectTarget(FuncId target) const
    {
        (void)target;
        return true;
    }

    /**
     * When true, a hardware shadow stack provides return predictions
     * on RSB underflow instead of the (poisonable) BTB fallback.
     */
    virtual bool shadowStack() const { return false; }

    /**
     * May the core engage the fast-forward engine right now
     * (PipelineParams::fastForward, DESIGN §5.5)? Fast-forwarded
     * regions are non-speculative by construction and never reach
     * gateLoad, so the default is yes; a policy holding state it
     * wants re-examined on the detailed path (e.g. an open deferred-
     * revocation window) answers no until that state drains.
     */
    virtual bool allowFastForward() const { return true; }

    /**
     * Functional-warming hook (sampled simulation, DESIGN §5.8): the
     * pipeline's warming phase replays each committed kernel load
     * through this instead of gateLoad so scheme-owned lookup
     * structures (ISV/DSV caches) stay warm across skipped intervals.
     * Implementations must be *accounting-free* — no counters, no
     * histogram samples, no gate decisions, no wake bookkeeping —
     * and install fills as immediately ready: warming has no timeline
     * and must never perturb the statistics a detailed window
     * measures. The default (no scheme-owned state) does nothing.
     */
    virtual void warmAccess(const SpecContext &ctx) { (void)ctx; }

    /** Stats sink for fence-attribution counters. Virtual so schemes
     * can resolve cached Counter handles for their hot-path and
     * GateWake tally counters when the sink attaches. */
    virtual void setStats(StatSet *stats) { stats_ = stats; }

  protected:
    StatSet *stats_ = nullptr;
};

/** Baseline: never blocks anything. */
class UnsafePolicy : public SpeculationPolicy
{
  public:
    Gate gateLoad(const SpecContext &) override { return Gate::Allow; }
    const char *name() const override { return "unsafe"; }
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_POLICY_HH
