/**
 * @file
 * The pliable software/hardware interface: the pipeline consults a
 * SpeculationPolicy before letting a transmitter instruction execute
 * speculatively. Defense schemes (FENCE, DOM, STT, Perspective, ...)
 * implement this interface; the pipeline itself stays scheme-agnostic.
 */

#ifndef PERSPECTIVE_SIM_POLICY_HH
#define PERSPECTIVE_SIM_POLICY_HH

#include <cstdint>

#include "stats.hh"
#include "types.hh"

namespace perspective::sim
{

/** Everything a policy may inspect about a pending transmitter. */
struct SpecContext
{
    Addr pc = 0;          ///< VA of the transmitter instruction
    Addr dataVa = 0;      ///< effective address of the access
    FuncId func = kNoFunc;///< containing function
    bool speculative = false; ///< older squashable instruction exists
    bool tainted = false; ///< address depends on speculative data (STT)
    bool kernelMode = false;  ///< executing kernel code
    Asid asid = 0;        ///< current address-space id
    bool l1dHit = false;  ///< would this access hit in the L1D?
    Cycle now = 0;        ///< current cycle (for fill-latency models)
    /** True on the first gate evaluation of this dynamic instruction;
     * blocked loads are re-evaluated every cycle, and policies must
     * only bump attribution statistics once. */
    bool firstCheck = true;
};

/** Verdicts a policy can return for a speculative transmitter. */
enum class Gate : std::uint8_t
{
    Allow,          ///< execute now
    Block,          ///< re-evaluate next cycle (released at the VP)
    AllowInvisible, ///< execute without modifying the cache; the
                    ///< line installs at commit (InvisiSpec-style)
};

/**
 * Abstract defense scheme. gateLoad is re-invoked every cycle while an
 * instruction is blocked and still speculative; once the instruction
 * reaches its Visibility Point the pipeline stops asking and issues it.
 */
class SpeculationPolicy
{
  public:
    virtual ~SpeculationPolicy() = default;

    /** Decide whether the speculative transmitter may execute. */
    virtual Gate gateLoad(const SpecContext &ctx) = 0;

    /** Scheme name used in reports. */
    virtual const char *name() const = 0;

    /** Extra front-end cycles charged when entering the kernel. */
    virtual Cycle kernelEntryCost() const { return 0; }

    /** Extra cycles charged when returning to userspace. */
    virtual Cycle kernelExitCost() const { return 0; }

    /**
     * When true, indirect calls are executed as retpolines: the BTB is
     * never consulted and fetch stalls until the target resolves.
     */
    virtual bool retpoline() const { return false; }

    /**
     * Speculative control-flow integrity check (SpecCFI/CET-style):
     * may the front end speculate into @p target from an indirect
     * call? Coarse-grained CFI labels every kernel function entry as
     * legal — which is exactly why CFI alone leaves a large passive
     * attack surface (Chapter 10).
     */
    virtual bool
    cfiAllowsIndirectTarget(FuncId target) const
    {
        (void)target;
        return true;
    }

    /**
     * When true, a hardware shadow stack provides return predictions
     * on RSB underflow instead of the (poisonable) BTB fallback.
     */
    virtual bool shadowStack() const { return false; }

    /** Stats sink for fence-attribution counters. */
    void setStats(StatSet *stats) { stats_ = stats; }

  protected:
    StatSet *stats_ = nullptr;
};

/** Baseline: never blocks anything. */
class UnsafePolicy : public SpeculationPolicy
{
  public:
    Gate gateLoad(const SpecContext &) override { return Gate::Allow; }
    const char *name() const override { return "unsafe"; }
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_POLICY_HH
