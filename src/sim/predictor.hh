/**
 * @file
 * Branch prediction structures: an L-TAGE-flavoured conditional
 * predictor (bimodal base + tagged global-history components), a
 * branch target buffer for indirect calls, and a return stack buffer.
 *
 * All three are deliberately *shared across contexts and untagged*,
 * exactly like the structures Spectre v1/v2/RSB exploit: an attacker
 * can mistrain a conditional branch, poison a BTB entry aliasing a
 * victim's indirect call, or pollute the RSB before a victim return.
 */

#ifndef PERSPECTIVE_SIM_PREDICTOR_HH
#define PERSPECTIVE_SIM_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "types.hh"

namespace perspective::sim
{

/**
 * Conditional branch predictor: a bimodal table of 2-bit counters plus
 * three tagged components indexed by (pc ^ folded global history),
 * after the spirit of L-TAGE. Longest-history hit provides the
 * prediction; allocation on mispredict.
 */
class CondPredictor
{
  public:
    CondPredictor();

    /** Predict the direction of the branch at @p pc (uses the
     * current speculative history). */
    bool predict(Addr pc) const;

    /**
     * Train with the resolved direction. @p hist must be the history
     * value that was current when the branch was *predicted* (the
     * pipeline's per-branch checkpoint) so training touches the same
     * table entries the prediction read.
     */
    void update(Addr pc, bool taken, std::uint64_t hist);

    /** Speculative history update at fetch (undone on squash). */
    void speculate(bool taken) { pushHistory(taken); }

    /** Restore history to a checkpointed value after a squash. */
    void restoreHistory(std::uint64_t h) { history_ = h; }
    std::uint64_t history() const { return history_; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0; ///< -4..3, >= 0 means taken
        std::uint8_t useful = 0;
        bool valid = false;
    };

    static constexpr unsigned kBimodalBits = 13;
    static constexpr unsigned kTaggedBits = 10;
    static constexpr unsigned kNumTagged = 3;
    static constexpr std::array<unsigned, kNumTagged> kHistLen = {4, 12,
                                                                  24};

    void pushHistory(bool taken);
    std::uint32_t taggedIndex(Addr pc, unsigned t,
                              std::uint64_t hist) const;
    std::uint16_t taggedTag(Addr pc, unsigned t,
                            std::uint64_t hist) const;
    static std::uint64_t foldedHistory(std::uint64_t hist,
                                       unsigned bits, unsigned len);

    std::vector<std::uint8_t> bimodal_; ///< 2-bit counters
    std::array<std::vector<TaggedEntry>, kNumTagged> tagged_;
    std::uint64_t history_ = 0;
};

/**
 * Branch target buffer for indirect calls. Indexed and tagged by pc
 * only — no ASID — so entries installed by one context are visible to
 * another (the Spectre v2 injection vector).
 */
class Btb
{
  public:
    explicit Btb(std::uint32_t entries = 4096);

    /** Predicted target FuncId for @p pc, or kNoFunc on miss. */
    FuncId predict(Addr pc) const;

    /** Install/refresh the mapping pc -> target. */
    void update(Addr pc, FuncId target);

    /** Drop every entry (IBPB-style barrier). */
    void flush();

  private:
    struct Entry
    {
        Addr pc = 0;
        FuncId target = kNoFunc;
        bool valid = false;
    };

    std::vector<Entry> entries_;
};

/**
 * Return stack buffer: a circular stack of predicted return targets.
 * Underflow falls back to the BTB-like last-popped value (which is
 * what Spectre-RSB style underflow attacks abuse).
 */
class Rsb
{
  public:
    explicit Rsb(std::uint32_t entries = 16);

    struct Target
    {
        FuncId func = kNoFunc;
        std::uint32_t idx = 0;
    };

    void push(Target t);

    /** Pop a prediction; on underflow returns the stale top entry. */
    Target pop();

    /** Current logical depth (0..capacity). */
    std::uint32_t depth() const { return depth_; }

    /** Restore to a checkpointed (top, depth) after a squash. */
    struct Checkpoint
    {
        std::uint32_t top;
        std::uint32_t depth;
    };
    Checkpoint save() const { return {top_, depth_}; }
    void restore(Checkpoint c)
    {
        top_ = c.top;
        depth_ = c.depth;
    }

  private:
    std::vector<Target> ring_;
    std::uint32_t top_ = 0;   ///< index of next push slot
    std::uint32_t depth_ = 0; ///< valid entries
};

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_PREDICTOR_HH
