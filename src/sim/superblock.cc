#include "superblock.hh"

namespace perspective::sim
{

std::uint8_t
sbKindOf(const MicroOp &op)
{
    switch (op.op) {
      case Op::Nop:
        return kSbNop;
      case Op::IntAlu:
        switch (op.alu) {
          case AluOp::Add: return kSbAluAdd;
          case AluOp::Sub: return kSbAluSub;
          case AluOp::And: return kSbAluAnd;
          case AluOp::Shl: return kSbAluShl;
          case AluOp::Shr: return kSbAluShr;
          case AluOp::MovI: return kSbAluMovI;
          case AluOp::Mov: return kSbAluMov;
        }
        return kSbAluAdd;
      case Op::IntMul: return kSbMul;
      case Op::Load: return kSbLoad;
      case Op::Store: return kSbStore;
      case Op::Branch: return kSbBranch;
      case Op::Jump: return kSbJump;
      case Op::Call: return kSbCall;
      case Op::IndirectCall: return kSbIndirectCall;
      case Op::Return: return kSbReturn;
      case Op::Fence: return kSbFence;
    }
    return kSbNop;
}

namespace
{

bool
endsBlock(std::uint8_t kind)
{
    switch (kind) {
      case kSbBranch:
      case kSbJump:
      case kSbCall:
      case kSbIndirectCall:
      case kSbReturn:
      case kSbFence:
        return true;
      default:
        return false;
    }
}

} // namespace

Superblock
SuperblockCache::build(FuncId func, std::uint32_t idx) const
{
    const Function &f = prog_->func(func);
    Superblock sb;
    Addr prevLine = ~Addr{0};
    for (std::uint32_t i = idx; i < f.body.size(); ++i) {
        const MicroOp &op = f.body[i];
        SbOp d;
        d.op = &op;
        d.pc = f.instAddr(i);
        d.kind = sbKindOf(op);
        Addr line = d.pc / 64;
        d.newLine = line != prevLine;
        prevLine = line;
        sb.ops.push_back(d);
        if (endsBlock(d.kind)) {
            sb.endKind = d.kind;
            return sb;
        }
    }
    // Ran off the end of the body (also covers a start index at or
    // past the end): terminate with the sentinel so consumers always
    // dispatch on a final op instead of bounds-checking.
    SbOp sentinel;
    sentinel.op = nullptr;
    sentinel.pc = f.instAddr(static_cast<std::uint32_t>(f.body.size()));
    sentinel.kind = kSbEnd;
    sentinel.newLine = true;
    sb.ops.push_back(sentinel);
    sb.endKind = kSbEnd;
    return sb;
}

} // namespace perspective::sim
