#include "program.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace perspective::sim
{

FuncId
Program::addFunction(std::string name, bool kernel)
{
    FuncId id = static_cast<FuncId>(funcs_.size());
    Function f;
    f.name = std::move(name);
    f.id = id;
    f.kernel = kernel;
    byName_.emplace(f.name, id);
    funcs_.push_back(std::move(f));
    laidOut_ = false;
    return id;
}

FuncId
Program::findByName(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kNoFunc : it->second;
}

void
Program::layout()
{
    Addr kernel_cursor = kKernelTextBase;
    Addr user_cursor = kUserBase;
    layoutIndex_.clear();
    layoutIndex_.reserve(funcs_.size());

    for (auto &f : funcs_) {
        Addr &cursor = f.kernel ? kernel_cursor : user_cursor;
        f.base = cursor;
        cursor += Addr{f.body.size()} * kInstBytes;
        // Align the next function so none spans a page boundary more
        // than necessary and layout stays deterministic.
        cursor = (cursor + kInstBytes - 1) & ~(kInstBytes - 1);
        layoutIndex_.emplace_back(f.base, f.id);
    }
    kernelTextEnd_ = kernel_cursor;
    std::sort(layoutIndex_.begin(), layoutIndex_.end());
    laidOut_ = true;
}

std::pair<FuncId, std::uint32_t>
Program::resolve(Addr va) const
{
    assert(laidOut_);
    auto it = std::upper_bound(layoutIndex_.begin(), layoutIndex_.end(),
                               std::make_pair(va, kNoFunc));
    if (it == layoutIndex_.begin())
        return {kNoFunc, 0};
    --it;
    const Function &f = funcs_[it->second];
    Addr end = f.base + Addr{f.body.size()} * kInstBytes;
    if (va < f.base || va >= end)
        return {kNoFunc, 0};
    return {f.id, static_cast<std::uint32_t>((va - f.base) / kInstBytes)};
}

std::string
Program::disassemble(FuncId id) const
{
    const Function &f = funcs_[id];
    std::ostringstream os;
    os << f.name << ":  ; " << (f.kernel ? "kernel" : "user")
       << ", base 0x" << std::hex << f.base << std::dec << "\n";
    for (std::uint32_t i = 0; i < f.body.size(); ++i)
        os << "  " << i << ": " << f.body[i].toString() << "\n";
    return os.str();
}

std::size_t
Program::totalOps() const
{
    std::size_t n = 0;
    for (const auto &f : funcs_)
        n += f.body.size();
    return n;
}

} // namespace perspective::sim
