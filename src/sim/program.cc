#include "program.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace perspective::sim
{

FuncId
Program::addFunction(std::string name, bool kernel)
{
    FuncId id = static_cast<FuncId>(funcs_.size());
    Function f;
    f.name = std::move(name);
    f.id = id;
    f.kernel = kernel;
    byName_.emplace(f.name, id);
    funcs_.push_back(std::move(f));
    laidOut_ = false;
    return id;
}

FuncId
Program::findByName(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kNoFunc : it->second;
}

void
Program::layout()
{
    Addr kernel_cursor = kKernelTextBase;
    Addr user_cursor = kUserBase;
    layoutIndex_.clear();
    layoutIndex_.reserve(funcs_.size());

    for (auto &f : funcs_) {
        Addr &cursor = f.kernel ? kernel_cursor : user_cursor;
        f.base = cursor;
        cursor += Addr{f.body.size()} * kInstBytes;
        // Align the next function so none spans a page boundary more
        // than necessary and layout stays deterministic.
        cursor = (cursor + kInstBytes - 1) & ~(kInstBytes - 1);
        layoutIndex_.emplace_back(f.base, f.id);
    }
    kernelTextEnd_ = kernel_cursor;
    std::sort(layoutIndex_.begin(), layoutIndex_.end());

    // Page-granular resolve acceleration over the kernel text span
    // (the only region resolve() is hot for).
    kernelPageIdx_.clear();
    if (kernelTextEnd_ > kKernelTextBase) {
        std::size_t pages = static_cast<std::size_t>(
            (kernelTextEnd_ - kKernelTextBase + kPageSize - 1) >>
            kPageShift);
        kernelPageIdx_.resize(pages);
        for (std::size_t p = 0; p < pages; ++p) {
            Addr page_va = kKernelTextBase + (Addr{p} << kPageShift);
            auto it = std::upper_bound(
                layoutIndex_.begin(), layoutIndex_.end(),
                std::make_pair(page_va, kNoFunc));
            std::size_t idx =
                it == layoutIndex_.begin()
                    ? 0
                    : static_cast<std::size_t>(
                          it - layoutIndex_.begin()) - 1;
            kernelPageIdx_[p] = static_cast<std::uint32_t>(idx);
        }
    }
    laidOut_ = true;
    ++codeGen_; // predecoded-superblock caches must drop their blocks
}

std::pair<FuncId, std::uint32_t>
Program::resolve(Addr va) const
{
    assert(laidOut_);
    std::size_t idx;
    if (va >= kKernelTextBase && va < kernelTextEnd_ &&
        !kernelPageIdx_.empty()) {
        // Direct page-indexed lookup: jump to the last function at
        // or below the page start, then walk the handful of
        // functions packed into the page.
        std::size_t slot = static_cast<std::size_t>(
            (va - kKernelTextBase) >> kPageShift);
        idx = kernelPageIdx_[slot];
        while (idx + 1 < layoutIndex_.size() &&
               layoutIndex_[idx + 1].first <= va)
            ++idx;
    } else {
        auto it = std::upper_bound(layoutIndex_.begin(),
                                   layoutIndex_.end(),
                                   std::make_pair(va, kNoFunc));
        if (it == layoutIndex_.begin())
            return {kNoFunc, 0};
        idx = static_cast<std::size_t>(it - layoutIndex_.begin()) - 1;
    }
    const Function &f = funcs_[layoutIndex_[idx].second];
    Addr end = f.base + Addr{f.body.size()} * kInstBytes;
    if (va < f.base || va >= end)
        return {kNoFunc, 0};
    return {f.id, static_cast<std::uint32_t>((va - f.base) / kInstBytes)};
}

std::string
Program::disassemble(FuncId id) const
{
    const Function &f = funcs_[id];
    std::ostringstream os;
    os << f.name << ":  ; " << (f.kernel ? "kernel" : "user")
       << ", base 0x" << std::hex << f.base << std::dec << "\n";
    for (std::uint32_t i = 0; i < f.body.size(); ++i)
        os << "  " << i << ": " << f.body[i].toString() << "\n";
    return os.str();
}

std::size_t
Program::totalOps() const
{
    std::size_t n = 0;
    for (const auto &f : funcs_)
        n += f.body.size();
    return n;
}

} // namespace perspective::sim
