#include "trace.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <thread>

namespace perspective::sim::trace
{

namespace
{

// The only mutable globals in the simulator. Concurrent Experiment
// instances (the sweep runner's worker threads) all consult
// enabled() on the hot path, so flag, stream and sink state are
// atomics, and emission is serialized so lines never interleave
// mid-record.
std::atomic<std::uint32_t> g_flags{0};
std::atomic<std::ostream *> g_stream{nullptr};
std::atomic<EventLog *> g_events{nullptr};
std::mutex g_log_mu;

} // namespace

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Fetch: return "fetch";
      case Flag::Commit: return "commit";
      case Flag::Squash: return "squash";
      case Flag::Fence: return "fence";
      case Flag::Predict: return "predict";
      case Flag::Leak: return "leak";
      case Flag::Window: return "window";
    }
    return "?";
}

void
enable(Flag f)
{
    g_flags.fetch_or(static_cast<std::uint32_t>(f),
                     std::memory_order_relaxed);
}

void
disable(Flag f)
{
    g_flags.fetch_and(~static_cast<std::uint32_t>(f),
                      std::memory_order_relaxed);
}

void
reset()
{
    // Flush the outgoing stream before dropping it: a short traced
    // run's tail lines may still sit in the stream's buffer, and
    // once the pointer is gone nobody else will flush on our behalf.
    // Serialized with log() so we never flush mid-record.
    {
        std::lock_guard<std::mutex> lk(g_log_mu);
        if (std::ostream *os =
                g_stream.load(std::memory_order_acquire))
            os->flush();
    }
    g_flags.store(0, std::memory_order_relaxed);
    g_stream.store(nullptr, std::memory_order_relaxed);
}

bool
enabled(Flag f)
{
    return (g_flags.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(f)) != 0;
}

bool
anyEnabled()
{
    return g_flags.load(std::memory_order_relaxed) != 0;
}

unsigned
enableFromString(const std::string &spec)
{
    unsigned n = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string name = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        for (Flag f : {Flag::Fetch, Flag::Commit, Flag::Squash,
                       Flag::Fence, Flag::Predict, Flag::Leak,
                       Flag::Window}) {
            if (name == flagName(f)) {
                enable(f);
                ++n;
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return n;
}

void
enableFromEnvironment()
{
    if (const char *spec = std::getenv("PERSPECTIVE_TRACE"))
        enableFromString(spec);
}

void
setStream(std::ostream *os)
{
    g_stream.store(os, std::memory_order_release);
}

void
log(Flag f, Cycle cycle, const std::string &message)
{
    std::lock_guard<std::mutex> lk(g_log_mu);
    std::ostream *custom = g_stream.load(std::memory_order_acquire);
    std::ostream &os = custom ? *custom : std::cerr;
    os << cycle << ": " << flagName(f) << ": " << message << "\n";
}

// ---- structured event sink -----------------------------------------

void
EventLog::record(Event ev)
{
    // Lane ids are small stable per-thread integers so a parallel
    // sweep's cells render as separate tracks in chrome://tracing.
    thread_local std::map<const EventLog *, unsigned> lanes;

    std::lock_guard<std::mutex> lk(mu_);
    // Resolve the lane before the capacity check so drops are
    // attributable to the lane that overflowed, not just a global
    // tally (bench_report warns per lane when nonzero).
    auto it = lanes.find(this);
    if (it == lanes.end())
        it = lanes.emplace(this, nextLane_++).first;
    ev.lane = it->second;
    if (events_.size() >= capacity_) {
        ++dropped_;
        if (droppedByLane_.size() <= ev.lane)
            droppedByLane_.resize(ev.lane + 1, 0);
        ++droppedByLane_[ev.lane];
        return;
    }
    events_.push_back(std::move(ev));
}

std::vector<Event>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_;
}

std::size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
}

std::uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
}

std::vector<std::uint64_t>
EventLog::droppedByLane() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::uint64_t> out(nextLane_, 0);
    for (std::size_t i = 0; i < droppedByLane_.size(); ++i)
        out[i] = droppedByLane_[i];
    return out;
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
    dropped_ = 0;
    droppedByLane_.clear();
}

void
setEventLog(EventLog *log)
{
    g_events.store(log, std::memory_order_release);
}

EventLog *
eventLog()
{
    return g_events.load(std::memory_order_acquire);
}

bool
eventsEnabled()
{
    return g_events.load(std::memory_order_relaxed) != nullptr;
}

} // namespace perspective::sim::trace
