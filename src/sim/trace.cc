#include "trace.hh"

#include <cstdlib>
#include <iostream>

namespace perspective::sim::trace
{

namespace
{

std::uint32_t g_flags = 0;
std::ostream *g_stream = nullptr;

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Fetch: return "fetch";
      case Flag::Commit: return "commit";
      case Flag::Squash: return "squash";
      case Flag::Fence: return "fence";
      case Flag::Predict: return "predict";
    }
    return "?";
}

} // namespace

void
enable(Flag f)
{
    g_flags |= static_cast<std::uint32_t>(f);
}

void
disable(Flag f)
{
    g_flags &= ~static_cast<std::uint32_t>(f);
}

void
reset()
{
    g_flags = 0;
    g_stream = nullptr;
}

bool
enabled(Flag f)
{
    return (g_flags & static_cast<std::uint32_t>(f)) != 0;
}

unsigned
enableFromString(const std::string &spec)
{
    unsigned n = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string name = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        for (Flag f : {Flag::Fetch, Flag::Commit, Flag::Squash,
                       Flag::Fence, Flag::Predict}) {
            if (name == flagName(f)) {
                enable(f);
                ++n;
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return n;
}

void
enableFromEnvironment()
{
    if (const char *spec = std::getenv("PERSPECTIVE_TRACE"))
        enableFromString(spec);
}

void
setStream(std::ostream *os)
{
    g_stream = os;
}

void
log(Flag f, Cycle cycle, const std::string &message)
{
    std::ostream &os = g_stream ? *g_stream : std::cerr;
    os << cycle << ": " << flagName(f) << ": " << message << "\n";
}

} // namespace perspective::sim::trace
