#include "trace.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace perspective::sim::trace
{

namespace
{

// The only mutable globals in the simulator. Concurrent Experiment
// instances (the sweep runner's worker threads) all consult
// enabled() on the hot path, so flag and stream state are atomics,
// and emission is serialized so lines never interleave mid-record.
std::atomic<std::uint32_t> g_flags{0};
std::atomic<std::ostream *> g_stream{nullptr};
std::mutex g_log_mu;

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Fetch: return "fetch";
      case Flag::Commit: return "commit";
      case Flag::Squash: return "squash";
      case Flag::Fence: return "fence";
      case Flag::Predict: return "predict";
    }
    return "?";
}

} // namespace

void
enable(Flag f)
{
    g_flags.fetch_or(static_cast<std::uint32_t>(f),
                     std::memory_order_relaxed);
}

void
disable(Flag f)
{
    g_flags.fetch_and(~static_cast<std::uint32_t>(f),
                      std::memory_order_relaxed);
}

void
reset()
{
    g_flags.store(0, std::memory_order_relaxed);
    g_stream.store(nullptr, std::memory_order_relaxed);
}

bool
enabled(Flag f)
{
    return (g_flags.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(f)) != 0;
}

unsigned
enableFromString(const std::string &spec)
{
    unsigned n = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string name = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        for (Flag f : {Flag::Fetch, Flag::Commit, Flag::Squash,
                       Flag::Fence, Flag::Predict}) {
            if (name == flagName(f)) {
                enable(f);
                ++n;
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return n;
}

void
enableFromEnvironment()
{
    if (const char *spec = std::getenv("PERSPECTIVE_TRACE"))
        enableFromString(spec);
}

void
setStream(std::ostream *os)
{
    g_stream.store(os, std::memory_order_release);
}

void
log(Flag f, Cycle cycle, const std::string &message)
{
    std::ostream *custom = g_stream.load(std::memory_order_acquire);
    std::ostream &os = custom ? *custom : std::cerr;
    std::lock_guard<std::mutex> lk(g_log_mu);
    os << cycle << ": " << flagName(f) << ": " << message << "\n";
}

} // namespace perspective::sim::trace
