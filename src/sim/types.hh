/**
 * @file
 * Fundamental scalar types shared by the whole simulator.
 */

#ifndef PERSPECTIVE_SIM_TYPES_HH
#define PERSPECTIVE_SIM_TYPES_HH

#include <cstdint>

namespace perspective::sim
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A cycle count. */
using Cycle = std::uint64_t;

/** A logical register identifier. */
using RegId = std::uint8_t;

/** A kernel/user function identifier inside a Program. */
using FuncId = std::uint32_t;

/** Address-space identifier used to tag hardware structures. */
using Asid = std::uint16_t;

/** Sentinel meaning "no register operand". */
inline constexpr RegId kNoReg = 0xff;

/** Sentinel meaning "no function". */
inline constexpr FuncId kNoFunc = 0xffffffff;

/** Number of architectural registers in the toy ISA. */
inline constexpr unsigned kNumRegs = 32;

/** Bytes per page, log2 and linear. */
inline constexpr unsigned kPageShift = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageShift;

/** Bytes occupied by one micro-op in the code layout. */
inline constexpr Addr kInstBytes = 4;

/**
 * Virtual-address map of the simulated machine. The layout mirrors a
 * simplified x86-64 Linux split: user space low, kernel text and the
 * direct map high. ISV pages shadow kernel text at a fixed offset
 * (Section 6.2 of the paper).
 */
inline constexpr Addr kUserBase = 0x0000'0000'0040'0000;
inline constexpr Addr kKernelTextBase = 0xffff'8000'0000'0000;
inline constexpr Addr kIsvShadowOffset = 0x0000'2000'0000'0000;
inline constexpr Addr kDirectMapBase = 0xffff'c000'0000'0000;

/** Convert an address to its page-aligned base. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~(kPageSize - 1);
}

/** Convert an address to its page frame number. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageShift;
}

} // namespace perspective::sim

#endif // PERSPECTIVE_SIM_TYPES_HH
