/**
 * @file
 * Attack scenarios racing the dynamic-update window.
 *
 * Perspective's views are live state: modules load, allocations
 * change hands, administrators tighten enforcement fleet-wide. Each
 * scenario here drives one update flow end-to-end on the simulator
 * and probes the transient gap around it with a real PoC attack:
 *
 *  - raceRevocation: an ownership handoff (free/realloc) while the
 *    attacker holds warm stale DSV verdicts. With a nonzero
 *    revocation latency the attacker can still leak the new owner's
 *    data *inside* the window; once the shootdown lands the data
 *    must be unreachable.
 *  - raceModuleLoad: insmod binds new text into an ops table. Until
 *    the incremental ISV update lands the gap is on the *safe* side
 *    (the module is unreachable speculatively); after a plain
 *    extension the attack surface grows to include the module's
 *    gadget, and only an ISV++ load-time audit closes it again.
 *  - raceFleetFlip: the admin forces blockUnknown on system-wide
 *    (DEXCR-style). A leak that worked under the lax per-tenant
 *    setting must stop once contexts synchronize with the flip.
 */

#ifndef PERSPECTIVE_ATTACKS_RACES_HH
#define PERSPECTIVE_ATTACKS_RACES_HH

#include "workloads/experiment.hh"

namespace perspective::attacks
{

/** Outcome of one update-race scenario. */
struct RaceResult
{
    /** Attack attempted before the update was requested (module
     * load: after insmod, before the ISV update landed). */
    bool leakedBeforeUpdate = false;
    /** Attack attempted inside the open transient window. */
    bool leakedInWindow = false;
    /** Attack attempted after the update fully landed. */
    bool leakedAfterUpdate = false;
    /** Module-load only: after the ISV++ load-time audit. */
    bool leakedAfterAudit = false;
    /** Modeled latency of the update (also sampled into the
     * "update_latency" sweep histogram). */
    sim::Cycle updateLatency = 0;
    /** Loads allowed on a stale DSV verdict during the window. */
    std::uint64_t staleAllows = 0;
};

/** DSV ownership handoff raced mid-flight. @p e must be built with
 * pocProfile() and a Perspective scheme; the scenario installs its
 * own policy for its duration. @p revocationBudget is the modeled
 * shootdown latency: 0 applies revocations synchronously (no window
 * at all), larger budgets hold the window open longer — sweeping it
 * yields the leak-probability-vs-budget curve (bench_pliability). */
RaceResult raceRevocation(workloads::Experiment &e,
                          sim::Cycle revocationBudget);

/** The default scenario: a budget so large the window stays open
 * across whole attack runs until the scenario closes it. */
RaceResult raceRevocation(workloads::Experiment &e);

/** Module load racing the incremental ISV recomputation. */
RaceResult raceModuleLoad(workloads::Experiment &e);

/** Admin fleet flip racing running contexts. */
RaceResult raceFleetFlip(workloads::Experiment &e);

} // namespace perspective::attacks

#endif // PERSPECTIVE_ATTACKS_RACES_HH
