/**
 * @file
 * The Table 4.1 catalog: speculative-execution vulnerabilities
 * targeting the Linux kernel, classified by attack primitive and by
 * the insufficiency of their mitigations. Each row maps onto one of
 * the runnable PoCs in attacks/poc.hh.
 */

#ifndef PERSPECTIVE_ATTACKS_CVE_HH
#define PERSPECTIVE_ATTACKS_CVE_HH

#include <string_view>
#include <vector>

namespace perspective::attacks
{

/** Attack primitive classes (Table 4.1, column 1). */
enum class Primitive
{
    SpeculativeDataAccess,   ///< Spectre v1-style
    ControlFlowHijack,       ///< Spectre v2 / RSB / Retbleed / BHI
};

/** Why existing mitigations fell short (column 2). */
enum class MitigationGap
{
    None,     ///< no mitigation existed
    Hardware, ///< hardware mitigation bypassed
    Software, ///< software mitigation insufficient
    Misuse,   ///< mitigations misapplied
};

/** Which runnable PoC demonstrates the row. */
enum class PocKind
{
    ActiveV1Ioctl,   ///< driver gadget, unvalidated index
    ActiveV1Ptrace,  ///< gadget reintroduced by backporting
    ActiveV1Bpf,     ///< verifier-injected gadget
    PassiveV2,       ///< BTB injection into an indirect call
    PassiveRetbleed, ///< RSB-underflow return hijack
};

/** One row of Table 4.1. */
struct CveRow
{
    unsigned row;
    Primitive primitive;
    MitigationGap gap;
    std::string_view cves;
    std::string_view description;
    std::string_view origin;
    PocKind poc;
};

/** The nine rows of Table 4.1. */
const std::vector<CveRow> &cveCatalog();

std::string_view primitiveName(Primitive p);
std::string_view gapName(MitigationGap g);
std::string_view pocName(PocKind k);

} // namespace perspective::attacks

#endif // PERSPECTIVE_ATTACKS_CVE_HH
