#include "races.hh"

#include <stdexcept>

#include "core/isv_builders.hh"
#include "kernel/fleet.hh"
#include "kernel/modules.hh"
#include "kernel/process.hh"
#include "sim/covert.hh"

namespace perspective::attacks
{

using kernel::DomainId;
using kernel::KernelImage;
using kernel::Sys;
using kernel::SyscallInvocation;
using kernel::reg::kArg0;
using sim::Addr;
using sim::FlushReload;
using sim::FuncId;
using workloads::Experiment;

namespace
{

constexpr unsigned kHandoffSecret = 0x77; ///< written post-handoff
constexpr unsigned kGlobalSecret = 0x4d;  ///< unknown-provenance data
constexpr unsigned kOwnSecret = 0x6b;     ///< victim's own data

void
runSyscall(Experiment &e, Sys s, const SyscallInvocation &inv,
           std::optional<std::uint64_t> arg0_override = {})
{
    auto prep = e.executor().prepare(e.mainPid(), inv);
    for (auto [r, v] : prep.regs)
        e.pipeline().setReg(r, v);
    e.pipeline().setReg(workloads::dreg::kPadIters, 0);
    if (arg0_override)
        e.pipeline().setReg(kArg0, *arg0_override);
    e.pipeline().run(e.drivers().driverFor(s));
    e.executor().finish(e.mainPid(), inv);
}

/** Mistrain the ioctl-path bounds check with in-bounds indices. */
void
mistrainIoctl(Experiment &e)
{
    SyscallInvocation inv{Sys::Ioctl, 3, 4, 2};
    for (int i = 0; i < 24; ++i)
        runSyscall(e, Sys::Ioctl, inv);
}

/**
 * Active Spectre-v1 leak attempt against an arbitrary direct-map
 * @p target_va through the ioctl-path gadget (the activeV1 PoC with
 * a caller-chosen target). Assumes the bounds check is mistrained.
 */
bool
tryLeakVa(Experiment &e, Addr target_va, unsigned expected,
          int attempts)
{
    KernelImage &img = e.image();
    auto &ks = e.kernelState();
    auto &cpu = e.pipeline();

    Addr attacker_ctx = ks.task(e.mainPid()).ctxVa;
    std::uint64_t oob =
        (target_va - (attacker_ctx + KernelImage::kGadgetTableOff)) /
        8;

    SyscallInvocation inv{Sys::Ioctl, 3, 4, 2};
    for (int attempt = 0; attempt < attempts; ++attempt) {
        cpu.caches().accessData(target_va);
        cpu.caches().flush(img.pocBoundGlobalVa());
        FlushReload fr(cpu.caches(), kernel::kSharedProbeBase);
        fr.prime();

        runSyscall(e, Sys::Ioctl, inv, oob);
        auto rec = fr.recover();
        if (rec && *rec == expected)
            return true;
    }
    return false;
}

/**
 * Passive Spectre-v2 leak attempt (the passiveV2 PoC): poison the
 * vfs read dispatch's BTB entry with the hijack gadget and let the
 * victim's own read() transiently leak its own secret.
 */
bool
tryHijack(Experiment &e, int attempts)
{
    KernelImage &img = e.image();
    auto &cpu = e.pipeline();
    Addr own_secret_va = e.kernelState().task(e.mainPid()).ctxVa +
                         KernelImage::kSecretCtxOff;

    SyscallInvocation inv{Sys::Read, 0, 8, 0};
    auto [disp_func, icall_idx] = img.vfsReadDispatch();
    Addr icall_pc =
        img.program().func(disp_func).instAddr(icall_idx);

    for (int attempt = 0; attempt < attempts; ++attempt) {
        cpu.btb().update(icall_pc, img.pocHijackGadget());
        cpu.caches().accessData(own_secret_va);
        cpu.caches().flush(kernel::fopsSlotVa(0, 0));
        FlushReload fr(cpu.caches(), kernel::kSharedProbeBase);
        fr.prime();

        runSyscall(e, Sys::Read, inv);
        auto rec = fr.recover();
        if (rec && *rec == kOwnSecret)
            return true;
    }
    return false;
}

/** RAII: run a scenario under a private policy, then hand the
 * pipeline back to the experiment's own scheme. */
struct PolicyLease
{
    Experiment &e;
    explicit PolicyLease(Experiment &ex) : e(ex) {}
    ~PolicyLease() { e.pipeline().setPolicy(e.policy()); }
};

} // namespace

RaceResult
raceRevocation(Experiment &e)
{
    return raceRevocation(e, 50'000'000);
}

RaceResult
raceRevocation(Experiment &e, sim::Cycle revocationBudget)
{
    auto &ks = e.kernelState();
    RaceResult r;

    // A frame the attacker's domain owns up front, so the policy built
    // below mirrors it as Allow from the start. (Allocating after
    // construction would defer the alloc's own assign and the mirror
    // would never hold the entry the handoff is meant to leave stale.)
    DomainId attacker_dom = ks.task(e.mainPid()).domain;
    DomainId victim_dom = ks.task(e.victimPid()).domain;
    auto pfn = ks.buddy().allocPages(0, attacker_dom);
    if (!pfn)
        throw std::runtime_error("raceRevocation: out of memory");
    Addr va = kernel::directMapVa(*pfn);

    // Private policy with a deferred shootdown. The caller's budget
    // decides how long the window stays open: 0 means synchronous
    // (no window), the 50M default outlives whole attack runs.
    core::PerspectiveConfig cfg;
    cfg.revocationLatency = revocationBudget;
    core::PerspectivePolicy pol(ks.ownership(), cfg,
                                "race-revocation");
    pol.setClock(e.pipeline().cyclePtr());
    for (kernel::Pid p : {e.mainPid(), e.victimPid()}) {
        const auto &t = ks.task(p);
        pol.registerContext(t.asid, t.domain, e.isvView());
    }
    PolicyLease lease(e);
    e.pipeline().setPolicy(&pol);

    mistrainIoctl(e);

    // Handoff: the frame is reallocated to the victim, which
    // immediately stores a secret into it. The shootdown is pending —
    // the window is open.
    ks.ownership().assign(*pfn, victim_dom);
    e.memory().write(va, kHandoffSecret);
    r.updateLatency = cfg.revocationLatency;
    pol.noteUpdateLatency(cfg.revocationLatency);

    r.leakedInWindow = tryLeakVa(e, va, kHandoffSecret, 3);
    r.staleAllows = e.pipeline().stats().get(
        "perspective.revocation.stale_allows");

    // The shootdown lands; the stale verdicts die with it.
    pol.flushPendingRevocations();
    r.leakedAfterUpdate = tryLeakVa(e, va, kHandoffSecret, 3);

    ks.buddy().freePages(*pfn, 0);
    return r;
}

RaceResult
raceModuleLoad(Experiment &e)
{
    core::PerspectivePolicy *pol = e.perspectivePolicy();
    core::IsvView *view = e.isvView();
    if (!pol || !view) {
        throw std::runtime_error(
            "raceModuleLoad needs a Perspective experiment with an "
            "ISV");
    }
    RaceResult r;

    e.memory().write(e.kernelState().task(e.mainPid()).ctxVa +
                         KernelImage::kSecretCtxOff,
                     kOwnSecret);

    // Baseline: the hijack gadget lives in an unloaded module, far
    // outside the workload's ISV — the hijack is fenced.
    r.leakedBeforeUpdate = tryHijack(e, 2);

    // insmod: module 0 (led by the hijack gadget) becomes reachable
    // through an ops slot. The ISV update has NOT landed yet.
    kernel::ModuleRegistry mods(e.image(), e.memory());
    FuncId entry = mods.load(0, /*fs_type=*/0, /*op_slot=*/5);

    // Inside the window the gap is on the safe side: the slot points
    // at module code but the ISV still excludes it.
    r.leakedInWindow = tryHijack(e, 2);

    // The OS completes the update: incremental recomputation from the
    // module entry. Blocked loads re-gate through the epoch wake;
    // running contexts resync at their next gate check.
    core::StaticIsvBuilder builder(e.image());
    auto st = builder.extendView(*view, {entry});
    r.updateLatency = core::isvUpdateLatency(st);
    pol->noteUpdateLatency(r.updateLatency);

    // Plain extension: the gadget is now inside the view — the attack
    // surface genuinely grew with the module.
    r.leakedAfterUpdate = tryHijack(e, 4);

    // ISV++: the load-time audit re-excludes the flagged gadget.
    core::applyAudit(*view, {e.image().pocHijackGadget()});
    r.leakedAfterAudit = tryHijack(e, 3);
    return r;
}

RaceResult
raceFleetFlip(Experiment &e)
{
    auto &ks = e.kernelState();
    RaceResult r;

    // Lax per-tenant setting: unknown-provenance memory is
    // speculatively readable (blockUnknown off).
    core::PerspectiveConfig cfg;
    cfg.blockUnknown = false;
    core::PerspectivePolicy pol(ks.ownership(), cfg, "race-fleet");
    pol.setClock(e.pipeline().cyclePtr());
    for (kernel::Pid p : {e.mainPid(), e.victimPid()}) {
        const auto &t = ks.task(p);
        pol.registerContext(t.asid, t.domain, e.isvView());
    }
    PolicyLease lease(e);
    e.pipeline().setPolicy(&pol);

    // The secret sits in an unknown-provenance global.
    Addr gva = ks.globalVa(7);
    e.memory().write(gva, kGlobalSecret);

    mistrainIoctl(e);
    r.leakedBeforeUpdate = tryLeakVa(e, gva, kGlobalSecret, 3);

    // Admin flip: both halves of the DEXCR-style value — the kernel's
    // global floor (inherited by fork/exec) and the policy's runtime
    // enforcement.
    ks.fleet().enforce(kernel::kFleetBlockUnknown);
    r.updateLatency = pol.fleetTighten(ks.fleet().globalBits());

    // One probe inside the propagation window (may or may not win the
    // race — recorded, not asserted).
    r.leakedInWindow = tryLeakVa(e, gva, kGlobalSecret, 1);

    // Barrier: a benign run drives the clock past the visibility
    // point and every context's next gate check synchronizes.
    runSyscall(e, Sys::Ioctl, SyscallInvocation{Sys::Ioctl, 3, 4, 2});

    r.leakedAfterUpdate = tryLeakVa(e, gva, kGlobalSecret, 3);
    return r;
}

} // namespace perspective::attacks
