/**
 * @file
 * Runnable proof-of-concept attacks (Chapter 8).
 *
 * Every PoC executes end-to-end on the simulator: mistrain or poison
 * a predictor, trigger transient execution of a kernel gadget, and
 * recover the secret through Flush+Reload on the shared probe region.
 * The same PoC run under different defense schemes demonstrates
 * which mechanism stops which attack class:
 *
 *  - *active* attacks (the attacker's own kernel thread reads another
 *    context's memory) are eliminated by DSVs;
 *  - *passive* attacks (the victim's kernel thread is control-flow-
 *    hijacked into a gadget that leaks the victim's own data) pass
 *    every DSV check and are only stopped by ISVs.
 */

#ifndef PERSPECTIVE_ATTACKS_POC_HH
#define PERSPECTIVE_ATTACKS_POC_HH

#include <optional>

#include "cve.hh"
#include "workloads/experiment.hh"

namespace perspective::attacks
{

/** Outcome of one PoC run. */
struct PocResult
{
    bool leaked = false;
    std::optional<unsigned> recovered;
    unsigned expected = 0;
};

/**
 * Run PoC @p kind against the stack in @p e (its scheme decides the
 * active defense). The experiment should be built with pocProfile()
 * so the attacked syscalls are part of the workload's ISV.
 */
PocResult runPoc(PocKind kind, workloads::Experiment &e);

/** All five PoC kinds. */
std::vector<PocKind> allPocs();

/** Workload profile whose ISV covers the attacked syscall paths. */
workloads::WorkloadProfile pocProfile();

} // namespace perspective::attacks

#endif // PERSPECTIVE_ATTACKS_POC_HH
