#include "cve.hh"

namespace perspective::attacks
{

const std::vector<CveRow> &
cveCatalog()
{
    static const std::vector<CveRow> rows = {
        {1, Primitive::SpeculativeDataAccess, MitigationGap::None,
         "CVE-2022-27223", "Array index is not validated",
         "Xilinx USB driver", PocKind::ActiveV1Ioctl},
        {2, Primitive::SpeculativeDataAccess, MitigationGap::Misuse,
         "CVE-2019-15902",
         "Reintroduced Spectre vulnerabilities in backporting",
         "ptrace", PocKind::ActiveV1Ptrace},
        {3, Primitive::SpeculativeDataAccess, MitigationGap::None,
         "CVE-2021-31829 CVE-2019-7308 CVE-2020-27170 "
         "CVE-2020-27171 CVE-2021-29155",
         "Out-of-bounds speculation on pointer arithmetic",
         "eBPF verifier", PocKind::ActiveV1Bpf},
        {4, Primitive::SpeculativeDataAccess, MitigationGap::None,
         "CVE-2021-33624", "Speculative type confusion",
         "eBPF verifier", PocKind::ActiveV1Bpf},
        {5, Primitive::ControlFlowHijack, MitigationGap::Hardware,
         "CVE-2022-0001 CVE-2022-0002 CVE-2022-23960",
         "Branch history injection", "Indirect calls and jumps",
         PocKind::PassiveV2},
        {6, Primitive::ControlFlowHijack, MitigationGap::Software,
         "CVE-2021-26401", "LFENCE/JMP is insufficient on AMD",
         "Indirect calls and jumps", PocKind::PassiveV2},
        {7, Primitive::ControlFlowHijack, MitigationGap::Software,
         "CVE-2022-29900 CVE-2022-29901", "Retbleed",
         "Retpoline", PocKind::PassiveRetbleed},
        {8, Primitive::ControlFlowHijack, MitigationGap::Misuse,
         "CVE-2022-2196", "Missing retpolines or IBPB", "KVM",
         PocKind::PassiveV2},
        {9, Primitive::ControlFlowHijack, MitigationGap::Misuse,
         "CVE-2019-18660 CVE-2020-10767 CVE-2022-23824 "
         "CVE-2023-1998",
         "Improper use of hardware mitigations",
         "Indirect calls and jumps", PocKind::PassiveV2},
    };
    return rows;
}

std::string_view
primitiveName(Primitive p)
{
    switch (p) {
      case Primitive::SpeculativeDataAccess:
        return "Unauthorized speculative data access (Spectre v1)";
      case Primitive::ControlFlowHijack:
        return "Speculative control-flow hijacking (v2/RSB)";
    }
    return "?";
}

std::string_view
gapName(MitigationGap g)
{
    switch (g) {
      case MitigationGap::None: return "n/a";
      case MitigationGap::Hardware: return "Hardware";
      case MitigationGap::Software: return "Software";
      case MitigationGap::Misuse: return "Misuse";
    }
    return "?";
}

std::string_view
pocName(PocKind k)
{
    switch (k) {
      case PocKind::ActiveV1Ioctl: return "active-v1-ioctl";
      case PocKind::ActiveV1Ptrace: return "active-v1-ptrace";
      case PocKind::ActiveV1Bpf: return "active-v1-bpf";
      case PocKind::PassiveV2: return "passive-v2";
      case PocKind::PassiveRetbleed: return "passive-retbleed";
    }
    return "?";
}

} // namespace perspective::attacks
