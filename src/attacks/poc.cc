#include "poc.hh"

#include "kernel/process.hh"
#include "sim/covert.hh"

namespace perspective::attacks
{

using kernel::KernelImage;
using kernel::Sys;
using kernel::SyscallInvocation;
using kernel::reg::kArg0;
using sim::Addr;
using sim::FlushReload;
using sim::FuncId;
using workloads::Experiment;

namespace
{

constexpr unsigned kVictimSecret = 0x5e; ///< written by Experiment
constexpr unsigned kOwnSecret = 0x6b;    ///< victim's own data (passive)

/** Run one syscall of the *main* process on the pipeline, optionally
 * overriding the attacker-controlled first argument after the benign
 * wrapper's preparation. */
void
runSyscall(Experiment &e, Sys s, const SyscallInvocation &inv,
           std::optional<std::uint64_t> arg0_override = {})
{
    auto prep = e.executor().prepare(e.mainPid(), inv);
    for (auto [r, v] : prep.regs)
        e.pipeline().setReg(r, v);
    e.pipeline().setReg(workloads::dreg::kPadIters, 0);
    if (arg0_override)
        e.pipeline().setReg(kArg0, *arg0_override);
    e.pipeline().run(e.drivers().driverFor(s));
    e.executor().finish(e.mainPid(), inv);
}

/**
 * Active Spectre-v1 attack through a reachable kernel gadget: the
 * attacker's own kernel thread speculatively indexes past a bounds
 * check into the *victim tenant's* memory.
 */
PocResult
activeV1(Experiment &e, Sys entry_sys, FuncId gadget)
{
    (void)gadget;
    KernelImage &img = e.image();
    auto &ks = e.kernelState();
    auto &cpu = e.pipeline();

    Addr attacker_ctx = ks.task(e.mainPid()).ctxVa;
    Addr victim_secret_va = ks.task(e.victimPid()).ctxVa +
                            KernelImage::kSecretCtxOff;

    // Out-of-bounds index: &victim_secret - &attacker_table, scaled.
    std::uint64_t oob =
        (victim_secret_va -
         (attacker_ctx + KernelImage::kGadgetTableOff)) /
        8;

    SyscallInvocation inv{entry_sys, 3, 4, 2};

    // (1) Mistrain the bounds check with in-bounds indices.
    for (int i = 0; i < 24; ++i)
        runSyscall(e, entry_sys, inv);

    PocResult res;
    res.expected = kVictimSecret;
    for (int attempt = 0; attempt < 3 && !res.leaked; ++attempt) {
        // (2) The victim recently touched its secret (warm line);
        // the bound global is evicted to widen the window.
        cpu.caches().accessData(victim_secret_va);
        cpu.caches().flush(img.pocBoundGlobalVa());
        FlushReload fr(cpu.caches(), kernel::kSharedProbeBase);
        fr.prime();

        // (3) Out-of-bounds invocation; (4) reload.
        runSyscall(e, entry_sys, inv, oob);
        res.recovered = fr.recover();
        res.leaked = res.recovered && *res.recovered == res.expected;
    }
    return res;
}

/**
 * Passive Spectre-v2 attack: the attacker poisons the BTB entry of
 * the victim's vfs read dispatch so the victim's kernel thread
 * transiently executes a cold driver gadget that leaks the victim's
 * *own* secret. No DSV is violated.
 */
PocResult
passiveV2(Experiment &e)
{
    KernelImage &img = e.image();
    auto &ks = e.kernelState();
    auto &cpu = e.pipeline();

    // The victim's own secret (the main process IS the victim here).
    Addr own_secret_va =
        ks.task(e.mainPid()).ctxVa + KernelImage::kSecretCtxOff;
    e.memory().write(own_secret_va, kOwnSecret);

    SyscallInvocation inv{Sys::Read, 0, 8, 0};

    // Warm run (trains the dispatch BTB entry to the benign target).
    runSyscall(e, Sys::Read, inv);

    auto [disp_func, icall_idx] = img.vfsReadDispatch();
    Addr icall_pc = img.program().func(disp_func).instAddr(icall_idx);

    // Real transient attacks rarely win the race on the first try:
    // the first attempt warms the gadget's instruction lines.
    PocResult res;
    res.expected = kOwnSecret;
    for (int attempt = 0; attempt < 3 && !res.leaked; ++attempt) {
        // (1) Attacker injects the gadget as the predicted target of
        // the victim's indirect call (aliased mistraining).
        cpu.btb().update(icall_pc, img.pocHijackGadget());

        // (2) Victim's secret is warm; the fops slot is evicted so
        // the indirect call resolves late (wide transient window).
        cpu.caches().accessData(own_secret_va);
        cpu.caches().flush(kernel::fopsSlotVa(0, 0));
        FlushReload fr(cpu.caches(), kernel::kSharedProbeBase);
        fr.prime();

        // (3) The victim innocently issues read().
        runSyscall(e, Sys::Read, inv);

        res.recovered = fr.recover();
        res.leaked = res.recovered && *res.recovered == res.expected;
    }
    return res;
}

/**
 * Passive Retbleed attack: a deep path walk (20 levels) underflows
 * the 16-entry RSB; the underflowing returns fall back to the BTB,
 * which the attacker poisoned with a gadget target.
 */
PocResult
passiveRetbleed(Experiment &e)
{
    KernelImage &img = e.image();
    auto &ks = e.kernelState();
    auto &cpu = e.pipeline();

    Addr own_secret_va =
        ks.task(e.mainPid()).ctxVa + KernelImage::kSecretCtxOff;
    e.memory().write(own_secret_va, kOwnSecret);

    // (1) Poison the BTB entry consulted by the path walker's return
    // on RSB underflow. Retpoline does not cover returns.
    FuncId walker = img.pathWalkRecursive();
    const auto &body = img.program().func(walker).body;
    Addr ret_pc = img.program().func(walker).instAddr(
        static_cast<std::uint32_t>(body.size() - 1));
    cpu.btb().update(ret_pc, img.pocHijackGadget());

    PocResult res;
    res.expected = kOwnSecret;
    for (int attempt = 0; attempt < 3 && !res.leaked; ++attempt) {
        // (2) Warm the secret; evict the deep return-address slots
        // so the poisoned returns resolve late (cross-core eviction).
        cpu.caches().accessData(own_secret_va);
        Addr stack_top = ks.task(e.mainPid()).stackTopVa;
        for (unsigned d = 0; d < 40; ++d)
            cpu.caches().flush(stack_top - 8 * d);
        FlushReload fr(cpu.caches(), kernel::kSharedProbeBase);
        fr.prime();

        // (3) The victim opens a deeply nested path: 20 recursion
        // levels push 20 return addresses through the 16-entry RSB.
        SyscallInvocation inv{Sys::Open, 0, 0, 20};
        runSyscall(e, Sys::Open, inv);
        // Balance the open with a close.
        runSyscall(e, Sys::Close,
                   SyscallInvocation{Sys::Close, 0, 0, 0});

        res.recovered = fr.recover();
        res.leaked = res.recovered && *res.recovered == res.expected;
    }
    return res;
}

} // namespace

PocResult
runPoc(PocKind kind, Experiment &e)
{
    switch (kind) {
      case PocKind::ActiveV1Ioctl:
        return activeV1(e, Sys::Ioctl, e.image().pocDriverGadget());
      case PocKind::ActiveV1Ptrace:
        return activeV1(e, Sys::Ptrace, e.image().pocPtraceGadget());
      case PocKind::ActiveV1Bpf:
        return activeV1(e, Sys::Bpf, e.image().pocBpfGadget());
      case PocKind::PassiveV2:
        return passiveV2(e);
      case PocKind::PassiveRetbleed:
        return passiveRetbleed(e);
    }
    return {};
}

std::vector<PocKind>
allPocs()
{
    return {PocKind::ActiveV1Ioctl, PocKind::ActiveV1Ptrace,
            PocKind::ActiveV1Bpf, PocKind::PassiveV2,
            PocKind::PassiveRetbleed};
}

workloads::WorkloadProfile
pocProfile()
{
    workloads::WorkloadProfile w;
    w.name = "poc-workload";
    w.request = {
        {Sys::Ioctl, 1, 0, 0},  {Sys::Ptrace, 1, 0, 0},
        {Sys::Bpf, 1, 0, 0},    {Sys::Read, 0, 8, 0},
        {Sys::Open, 0, 0, 3},   {Sys::Close, 0, 0, 0},
    };
    w.userPadIters = 2;
    return w;
}

} // namespace perspective::attacks
