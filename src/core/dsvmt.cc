#include "dsvmt.hh"

namespace perspective::core
{

using kernel::Pfn;

Dsvmt::GigNode &
Dsvmt::gigFor(std::uint64_t gig)
{
    if (gig >= gigs_.size())
        gigs_.resize(gig + 1);
    return gigs_[gig];
}

std::uint32_t
Dsvmt::allocLeaf()
{
    if (!leafFree_.empty()) {
        std::uint32_t idx = leafFree_.back();
        leafFree_.pop_back();
        leafPool_[idx] = Leaf{};
        return idx;
    }
    leafPool_.emplace_back(Leaf{});
    return static_cast<std::uint32_t>(leafPool_.size() - 1);
}

void
Dsvmt::freeLeaf(GigNode &g, unsigned slot)
{
    if (g.leaf[slot] == kNoLeaf)
        return;
    leafFree_.push_back(g.leaf[slot]);
    g.leaf[slot] = kNoLeaf;
    --g.liveLeaves;
}

void
Dsvmt::setPage(Pfn pfn, bool in_dsv)
{
    // Demoting a huge mapping materializes nothing beyond the leaf:
    // leaf bits take precedence when present, so just write the leaf
    // (an all-zero leaf if the granule had none — it shadows any
    // huge entry, exactly like the reference oracle).
    GigNode &g = gigFor(gigOf(pfn));
    unsigned slot = static_cast<unsigned>(granuleOf(pfn) & 511);
    if (g.leaf[slot] == kNoLeaf) {
        g.leaf[slot] = allocLeaf();
        ++g.liveLeaves;
    }
    Leaf &leaf = leafPool_[g.leaf[slot]];
    unsigned bit = pfn & 511;
    if (in_dsv)
        leaf[bit / 64] |= 1ull << (bit % 64);
    else
        leaf[bit / 64] &= ~(1ull << (bit % 64));
    invalidateMru();
}

void
Dsvmt::set2M(Pfn first_pfn, bool in_dsv)
{
    GigNode &g = gigFor(gigOf(first_pfn));
    unsigned slot = static_cast<unsigned>(granuleOf(first_pfn) & 511);
    freeLeaf(g, slot);
    if (g.huge2m[slot] == HugeState::Absent)
        ++g.live2m;
    g.huge2m[slot] = in_dsv ? HugeState::In : HugeState::Out;
    invalidateMru();
}

void
Dsvmt::set1G(Pfn first_pfn, bool in_dsv)
{
    GigNode &g = gigFor(gigOf(first_pfn));
    // Installing a region entry replaces every finer-grained mapping
    // beneath it (same direction as set2M dropping its leaf): a stale
    // leaf or 2 MB entry from before the promotion must not shadow
    // the newer 1 GB verdict. Only a *later* setPage/set2M demotes.
    if (g.liveLeaves != 0) {
        for (unsigned slot = 0; slot < 512; ++slot)
            freeLeaf(g, slot);
    }
    if (g.live2m != 0) {
        g.huge2m.fill(HugeState::Absent);
        g.live2m = 0;
    }
    g.huge1g = in_dsv ? HugeState::In : HugeState::Out;
    invalidateMru();
}

bool
Dsvmt::resolveNoLeaf(const GigNode *g, unsigned slot) const
{
    if (!g)
        return false;
    if (g->huge2m[slot] != HugeState::Absent)
        return g->huge2m[slot] == HugeState::In;
    return g->huge1g == HugeState::In;
}

bool
Dsvmt::queryPfn(Pfn pfn) const
{
    ++mruLookups_;
    std::uint64_t granule = granuleOf(pfn);
    unsigned bit = pfn & 511;
    if (granule == mruGranule_) {
        ++mruHits_;
        if (mruLeaf_ != kNoLeaf)
            return (leafPool_[mruLeaf_][bit / 64] >> (bit % 64)) & 1;
        return mruNoLeafValue_;
    }
    const GigNode *g = gigAt(gigOf(pfn));
    unsigned slot = static_cast<unsigned>(granule & 511);
    mruGranule_ = granule;
    mruLeaf_ = g ? g->leaf[slot] : kNoLeaf;
    if (mruLeaf_ != kNoLeaf)
        return (leafPool_[mruLeaf_][bit / 64] >> (bit % 64)) & 1;
    mruNoLeafValue_ = resolveNoLeaf(g, slot);
    return mruNoLeafValue_;
}

bool
Dsvmt::queryVa(sim::Addr va) const
{
    if (!kernel::inDirectMap(va))
        return false;
    return queryPfn(kernel::directMapPfn(va));
}

unsigned
Dsvmt::walkLevels(Pfn pfn) const
{
    const GigNode *g = gigAt(gigOf(pfn));
    if (!g)
        return 1;
    unsigned slot = static_cast<unsigned>(granuleOf(pfn) & 511);
    if (g->leaf[slot] != kNoLeaf)
        return 3;
    if (g->huge2m[slot] != HugeState::Absent)
        return 2;
    return 1;
}

std::size_t
Dsvmt::memoryBytes() const
{
    std::size_t leaves = 0, twoMeg = 0, oneGig = 0;
    for (const GigNode &g : gigs_) {
        leaves += g.liveLeaves;
        twoMeg += g.live2m;
        oneGig += g.huge1g != HugeState::Absent ? 1 : 0;
    }
    return leaves * sizeof(Leaf) +
           (twoMeg + oneGig) * sizeof(std::uint64_t);
}

void
Dsvmt::clear()
{
    gigs_.clear();
    leafPool_.clear();
    leafFree_.clear();
    invalidateMru();
}

} // namespace perspective::core
