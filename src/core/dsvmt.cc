#include "dsvmt.hh"

namespace perspective::core
{

using kernel::Pfn;

void
Dsvmt::setPage(Pfn pfn, bool in_dsv)
{
    // Demoting a huge mapping materializes nothing: leaf bits take
    // precedence when present, so just write the leaf.
    Leaf &leaf = leaves_[granuleOf(pfn)];
    unsigned bit = pfn & 511;
    if (in_dsv)
        leaf[bit / 64] |= 1ull << (bit % 64);
    else
        leaf[bit / 64] &= ~(1ull << (bit % 64));
}

void
Dsvmt::set2M(Pfn first_pfn, bool in_dsv)
{
    leaves_.erase(granuleOf(first_pfn));
    huge2m_[granuleOf(first_pfn)] = in_dsv;
}

void
Dsvmt::set1G(Pfn first_pfn, bool in_dsv)
{
    huge1g_[gigOf(first_pfn)] = in_dsv;
}

bool
Dsvmt::queryPfn(Pfn pfn) const
{
    auto leaf = leaves_.find(granuleOf(pfn));
    if (leaf != leaves_.end()) {
        unsigned bit = pfn & 511;
        return (leaf->second[bit / 64] >> (bit % 64)) & 1;
    }
    auto h2 = huge2m_.find(granuleOf(pfn));
    if (h2 != huge2m_.end())
        return h2->second;
    auto h1 = huge1g_.find(gigOf(pfn));
    if (h1 != huge1g_.end())
        return h1->second;
    return false;
}

bool
Dsvmt::queryVa(sim::Addr va) const
{
    if (!kernel::inDirectMap(va))
        return false;
    return queryPfn(kernel::directMapPfn(va));
}

unsigned
Dsvmt::walkLevels(Pfn pfn) const
{
    if (leaves_.count(granuleOf(pfn)))
        return 3;
    if (huge2m_.count(granuleOf(pfn)))
        return 2;
    return 1;
}

std::size_t
Dsvmt::memoryBytes() const
{
    return leaves_.size() * sizeof(Leaf) + huge2m_.size() +
           huge1g_.size();
}

void
Dsvmt::clear()
{
    leaves_.clear();
    huge2m_.clear();
    huge1g_.clear();
}

} // namespace perspective::core
