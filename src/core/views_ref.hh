/**
 * @file
 * Reference (oracle) implementations of the speculation-view
 * structures, kept for differential testing only.
 *
 * `DsvmtRef` is the original hash-map DSVMT and `IsvFuncSetRef` the
 * original `unordered_set` ISV function membership. The production
 * classes (`Dsvmt`, `IsvView`) were rewritten on flat index-addressed
 * tables for the in-cell fast path; `tests/core/test_views_diff.cc`
 * drives random operation sequences through both and asserts
 * identical observable behaviour, including footprint accounting.
 * Nothing in the simulator links against these at runtime.
 */

#ifndef PERSPECTIVE_CORE_VIEWS_REF_HH
#define PERSPECTIVE_CORE_VIEWS_REF_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kernel/types.hh"
#include "sim/types.hh"

namespace perspective::core
{

/** Hash-map DSVMT oracle: one entry per touched granule/gig, with
 * the same leaf-shadows-huge precedence as the production tree. */
class DsvmtRef
{
  public:
    void setPage(kernel::Pfn pfn, bool in_dsv);
    void set2M(kernel::Pfn first_pfn, bool in_dsv);
    void set1G(kernel::Pfn first_pfn, bool in_dsv);

    bool queryVa(sim::Addr va) const;
    bool queryPfn(kernel::Pfn pfn) const;
    unsigned walkLevels(kernel::Pfn pfn) const;

    /** Resident bytes; same unit-corrected accounting as the
     * production `Dsvmt::memoryBytes` (huge entries are 8-byte
     * descriptors, not raw counts). */
    std::size_t memoryBytes() const;

    void clear();

  private:
    using Leaf = std::array<std::uint64_t, 8>;

    static std::uint64_t granuleOf(kernel::Pfn pfn)
    {
        return pfn >> 9;
    }
    static std::uint64_t gigOf(kernel::Pfn pfn) { return pfn >> 18; }

    std::unordered_map<std::uint64_t, Leaf> leaves_;
    std::unordered_map<std::uint64_t, bool> huge2m_;
    std::unordered_map<std::uint64_t, bool> huge1g_;
};

/** `unordered_set` oracle for the ISV function-membership side:
 * mirrors include/exclude/intersect/union and the epoch contract
 * (one bump per effective reconfiguration). */
class IsvFuncSetRef
{
  public:
    /** @return true when the function was newly added. */
    bool include(sim::FuncId f);
    /** @return true when the function was present and removed. */
    bool exclude(sim::FuncId f);
    bool contains(sim::FuncId f) const;
    std::size_t size() const { return funcs_.size(); }

    void intersectWith(const IsvFuncSetRef &other);
    void unionWith(const IsvFuncSetRef &other);

    /** Sorted member list (the shape the flat side reports). */
    std::vector<sim::FuncId> sortedFunctions() const;

    std::uint64_t epoch() const { return epoch_; }

  private:
    std::unordered_set<sim::FuncId> funcs_;
    std::uint64_t epoch_ = 0;
};

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_VIEWS_REF_HH
