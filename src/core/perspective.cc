#include "perspective.hh"

namespace perspective::core
{

using kernel::DomainId;
using kernel::kDomainReplicated;
using kernel::kDomainUnknown;
using sim::Gate;
using sim::SpecContext;

PerspectivePolicy::PerspectivePolicy(kernel::OwnershipMap &ownership,
                                     PerspectiveConfig cfg,
                                     std::string name)
    : ownership_(ownership),
      cfg_(cfg),
      name_(std::move(name)),
      isvCache_(cfg.isvCacheEntries, cfg.cacheAssoc),
      dsvCache_(cfg.dsvCacheEntries, cfg.cacheAssoc)
{
    // Ownership changes shoot down stale DSV cache entries and the
    // per-domain DSVMT mirrors, the software/hardware contract of
    // Section 6.1.
    ownership_.addListener([this](kernel::Pfn pfn) {
        dsvCache_.invalidatePage(kernel::directMapVa(pfn));
        DomainId owner = ownership_.ownerOf(pfn);
        for (auto &[domain, tree] : dsvmts_) {
            tree.setPage(pfn, owner == domain ||
                                  owner == kDomainReplicated);
        }
    });
}

void
PerspectivePolicy::registerContext(sim::Asid asid, DomainId domain,
                                   const IsvView *isv)
{
    Context c;
    c.domain = domain;
    c.isv = isv;
    c.isvEpochSeen = isv ? isv->epoch() : 0;
    contexts_[asid] = c;

    // Materialize the domain's DSVMT from current ownership (the OS
    // builds the in-memory table when the context is created); the
    // listener keeps it in sync afterwards.
    auto [it, fresh] = dsvmts_.try_emplace(domain);
    if (fresh) {
        for (kernel::Pfn pfn = 0; pfn < ownership_.numFrames();
             ++pfn) {
            DomainId owner = ownership_.ownerOf(pfn);
            if (owner == domain || owner == kDomainReplicated)
                it->second.setPage(pfn, true);
        }
    }
}

bool
PerspectivePolicy::inDsv(sim::Addr va, DomainId domain) const
{
    DomainId owner = ownership_.ownerOfVa(va);
    if (owner == kDomainReplicated)
        return true;
    if (owner == kDomainUnknown)
        return !cfg_.blockUnknown;
    return owner == domain;
}

const Dsvmt &
PerspectivePolicy::dsvmtOf(DomainId domain)
{
    Dsvmt &tree = dsvmts_[domain];
    return tree;
}

void
PerspectivePolicy::noteHit(std::uint64_t &run,
                           const char *hist_name)
{
    if (run == 0)
        return;
    // A hit ends a consecutive-miss burst: record its length so the
    // cache-behaviour analyses can tell scattered misses (capacity)
    // from bursts (cold regions / view reconfigurations).
    if (stats_)
        stats_->histogram(hist_name).sample(run);
    run = 0;
}

Gate
PerspectivePolicy::gateLoad(const SpecContext &ctx)
{
    // Perspective protects kernel execution; userspace speculation
    // and non-speculative accesses proceed unimpeded.
    if (!ctx.kernelMode || !ctx.speculative)
        return Gate::Allow;

    if (cfg_.flushOnContextSwitch && ctx.asid != lastAsid_) {
        // Untagged hardware would have to flush on every switch.
        isvCache_.invalidateAll();
        dsvCache_.invalidateAll();
    }
    lastAsid_ = ctx.asid;

    auto it = contexts_.find(ctx.asid);
    if (it == contexts_.end()) {
        // Unregistered context: conservatively block.
        if (stats_)
            stats_->inc("perspective.fence.unregistered");
        return Gate::Block;
    }
    Context &c = it->second;

    if (cfg_.enableIsv && c.isv) {
        // A reconfigured view invalidates this context's entries.
        if (c.isvEpochSeen != c.isv->epoch()) {
            isvCache_.invalidateAsid(ctx.asid);
            c.isvEpochSeen = c.isv->epoch();
        }
        HwLookup look = isvCache_.lookup(ctx.pc, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                IsvRegionBits bits;
                bits.bits = c.isv->regionBits(
                    ctx.pc, IsvCache::kRegionBytes);
                isvCache_.fill(ctx.pc, ctx.asid, bits,
                               ctx.now + cfg_.fillLatency);
                noteMiss(isvMissRun_);
                if (stats_) {
                    stats_->inc("perspective.fence.isv");
                    stats_->inc("perspective.fence.isv_miss");
                }
            }
            return Gate::Block;
        }
        if (ctx.firstCheck)
            noteHit(isvMissRun_, "isv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                stats_->inc("perspective.fence.isv");
            return Gate::Block;
        }
    }

    if (cfg_.enableDsv && kernel::inDirectMap(ctx.dataVa)) {
        HwLookup look = dsvCache_.lookup(ctx.dataVa, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                dsvCache_.fill(ctx.dataVa, ctx.asid,
                               inDsv(ctx.dataVa, c.domain),
                               ctx.now + cfg_.fillLatency);
                noteMiss(dsvMissRun_);
                if (stats_) {
                    stats_->inc("perspective.fence.dsv");
                    stats_->inc("perspective.fence.dsv_miss");
                }
            }
            return Gate::Block;
        }
        if (ctx.firstCheck)
            noteHit(dsvMissRun_, "dsv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                stats_->inc("perspective.fence.dsv");
            return Gate::Block;
        }
    }

    return Gate::Allow;
}

} // namespace perspective::core
