#include "perspective.hh"

#include <cassert>
#include <stdexcept>

#include "kernel/fleet.hh"
#include "sim/trace.hh"

namespace perspective::core
{

using kernel::DomainId;
using kernel::kDomainReplicated;
using kernel::kDomainUnknown;
using sim::Gate;
using sim::SpecContext;

PerspectivePolicy::PerspectivePolicy(kernel::OwnershipMap &ownership,
                                     PerspectiveConfig cfg,
                                     std::string name)
    : ownership_(ownership),
      cfg_(cfg),
      name_(std::move(name)),
      isvCache_(cfg.isvCacheEntries, cfg.cacheAssoc),
      dsvCache_(cfg.dsvCacheEntries, cfg.cacheAssoc)
{
    // Ownership changes shoot down stale DSV cache entries and the
    // per-domain DSVMT mirrors, the software/hardware contract of
    // Section 6.1. With a clock and a nonzero revocationLatency the
    // shootdown is deferred instead: the kernel has already moved the
    // frame, but the hardware keeps the old verdict until the
    // pending revocation drains — the mid-flight window.
    listenerId_ = ownership_.addListener([this](kernel::Pfn pfn) {
        if (clock_ && cfg_.revocationLatency > 0) {
            pending_.push_back(
                {pfn, *clock_, *clock_ + cfg_.revocationLatency});
            return;
        }
        dsvCache_.invalidatePage(kernel::directMapVa(pfn));
        DomainId owner = ownership_.ownerOf(pfn);
        for (auto &[domain, tree] : dsvmts_) {
            tree.setPage(pfn, owner == domain ||
                                  owner == kDomainReplicated);
        }
    });
}

PerspectivePolicy::~PerspectivePolicy()
{
    ownership_.removeListener(listenerId_);
}

void
PerspectivePolicy::registerContext(sim::Asid asid, DomainId domain,
                                   const IsvView *isv)
{
    Context c;
    c.domain = domain;
    c.isv = isv;
    c.isvEpochSeen = isv ? isv->epoch() : 0;
    c.fleetSeen = fleetGen_;
    contexts_[asid] = c;
    ctxMruCtx_ = nullptr;
    ctxMruTree_ = nullptr;
    ++contextsGen_;

    // Materialize the domain's DSVMT from current ownership (the OS
    // builds the in-memory table when the context is created); the
    // listener keeps it in sync afterwards.
    auto [it, fresh] = dsvmts_.try_emplace(domain);
    if (fresh) {
        for (kernel::Pfn pfn = 0; pfn < ownership_.numFrames();
             ++pfn) {
            DomainId owner = ownership_.ownerOf(pfn);
            if (owner == domain || owner == kDomainReplicated)
                it->second.setPage(pfn, true);
        }
    }
}

bool
PerspectivePolicy::inDsv(sim::Addr va, DomainId domain) const
{
    DomainId owner = ownership_.ownerOfVa(va);
    if (owner == kDomainReplicated)
        return true;
    if (owner == kDomainUnknown)
        return !cfg_.blockUnknown;
    return owner == domain;
}

sim::LeakWindow
PerspectivePolicy::updateWindow(sim::Addr va, sim::Asid asid) const
{
    // Priority: a pending revocation covering the frame is the most
    // specific explanation for a stale allow, then the coarser
    // context-wide windows.
    if (kernel::inDirectMap(va)) {
        kernel::Pfn pfn = kernel::directMapPfn(va);
        for (const PendingRevocation &r : pending_) {
            if (r.pfn == pfn)
                return sim::LeakWindow::Revocation;
        }
    }
    auto it = contexts_.find(asid);
    if (it != contexts_.end()) {
        const Context &c = it->second;
        if (fleetGen_ != 0 && c.fleetSeen != fleetGen_)
            return sim::LeakWindow::FleetFlip;
        if (c.isv && c.isvEpochSeen != c.isv->epoch())
            return sim::LeakWindow::ModuleLoad;
    }
    return sim::LeakWindow::Baseline;
}

const Dsvmt &
PerspectivePolicy::dsvmtOf(DomainId domain) const
{
    auto it = dsvmts_.find(domain);
    if (it == dsvmts_.end()) {
        throw std::out_of_range(
            name_ + ": dsvmtOf(" + std::to_string(domain) +
            "): no context was registered for this domain");
    }
    return it->second;
}

sim::Cycle
PerspectivePolicy::fleetTighten(std::uint32_t aspect_bits,
                                const IsvView *admin_isv)
{
    fleetBits_ |= aspect_bits;
    if (admin_isv)
        adminIsv_ = admin_isv;
    ++fleetGen_;
    sim::Cycle now = clock_ ? *clock_ : 0;
    sim::Cycle lat =
        kFleetFlipBase +
        kFleetFlipPerContext * static_cast<sim::Cycle>(contexts_.size());
    fleetFlipAt_ = now;
    fleetVisibleAt_ = now + lat;
    // Wake anything blocked under a pre-flip verdict; it re-gates and
    // picks up the tightened value once past fleetVisibleAt_.
    ++contextsGen_;
    noteUpdateLatency(lat);
    if (sim::trace::eventsEnabled()) {
        sim::trace::Event ev;
        ev.flag = sim::trace::Flag::Window;
        ev.start = now;
        ev.dur = lat;
        ev.kernel = true;
        ev.name = "fleet-flip window";
        ev.func = name_;
        sim::trace::eventLog()->record(std::move(ev));
    }
    return lat;
}

void
PerspectivePolicy::noteUpdateLatency(sim::Cycle latency)
{
    if (stats_)
        stats_->histogram("update_latency").sample(latency);
}

void
PerspectivePolicy::applyRevocation(const PendingRevocation &r,
                                   sim::Cycle now)
{
    dsvCache_.invalidatePage(kernel::directMapVa(r.pfn));
    DomainId owner = ownership_.ownerOf(r.pfn);
    for (auto &[domain, tree] : dsvmts_) {
        tree.setPage(r.pfn,
                     owner == domain || owner == kDomainReplicated);
    }
    if (stats_) {
        stats_->histogram("transient_gap_cycles")
            .sample(now >= r.revokedAt ? now - r.revokedAt : 0);
    }
    // Structured span for the realized window, rendered in Perfetto
    // next to the pipeline lanes (leak events land inside it).
    if (sim::trace::eventsEnabled()) {
        sim::trace::Event ev;
        ev.flag = sim::trace::Flag::Window;
        ev.start = r.revokedAt;
        ev.dur = now >= r.revokedAt ? now - r.revokedAt : 0;
        ev.seq = r.pfn;
        ev.kernel = true;
        ev.name = "revocation window";
        ev.func = "pfn[" + std::to_string(r.pfn) + "]";
        sim::trace::eventLog()->record(std::move(ev));
    }
}

void
PerspectivePolicy::drainRevocations(sim::Cycle now)
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].applyAt <= now)
            applyRevocation(pending_[i], now);
        else
            pending_[kept++] = pending_[i];
    }
    pending_.resize(kept);
}

void
PerspectivePolicy::flushPendingRevocations()
{
    for (const PendingRevocation &r : pending_)
        applyRevocation(r, clock_ ? *clock_ : r.applyAt);
    pending_.clear();
}

std::uint64_t
PerspectivePolicy::dsvmtMruHits() const
{
    std::uint64_t n = 0;
    for (const auto &[domain, tree] : dsvmts_)
        n += tree.mruHits();
    return n;
}

std::uint64_t
PerspectivePolicy::dsvmtMruLookups() const
{
    std::uint64_t n = 0;
    for (const auto &[domain, tree] : dsvmts_)
        n += tree.mruLookups();
    return n;
}

void
PerspectivePolicy::resetDsvmtMruStats()
{
    for (auto &[domain, tree] : dsvmts_)
        tree.resetMruStats();
}

void
PerspectivePolicy::setStats(sim::StatSet *stats)
{
    SpeculationPolicy::setStats(stats);
    if (!stats)
        return;
    ctrUnregistered_ =
        stats->counter("perspective.fence.unregistered");
    ctrIsvFence_ = stats->counter("perspective.fence.isv");
    ctrIsvMiss_ = stats->counter("perspective.fence.isv_miss");
    ctrDsvFence_ = stats->counter("perspective.fence.dsv");
    ctrDsvMiss_ = stats->counter("perspective.fence.dsv_miss");
    // Dynamic-update metrics ("update_latency",
    // "transient_gap_cycles", "revocation.stale_allows") are created
    // lazily at event time: static configurations must emit exactly
    // the legacy stat set, bit for bit.
}

void
PerspectivePolicy::noteHit(std::uint64_t &run,
                           const char *hist_name)
{
    if (run == 0)
        return;
    // A hit ends a consecutive-miss burst: record its length so the
    // cache-behaviour analyses can tell scattered misses (capacity)
    // from bursts (cold regions / view reconfigurations).
    if (stats_)
        stats_->histogram(hist_name).sample(run);
    run = 0;
}

bool
PerspectivePolicy::effBlockUnknown(const Context &c) const
{
    if (cfg_.blockUnknown)
        return true;
    return fleetGen_ != 0 && c.fleetSeen == fleetGen_ &&
           (fleetBits_ & kernel::kFleetBlockUnknown) != 0;
}

Gate
PerspectivePolicy::gateLoad(const SpecContext &ctx)
{
    // Land any revocation whose shootdown latency has elapsed before
    // this check reads the caches (empty in static configurations).
    if (!pending_.empty())
        drainRevocations(ctx.now);

    // Perspective protects kernel execution; userspace speculation
    // and non-speculative accesses proceed unimpeded.
    if (!ctx.kernelMode || !ctx.speculative)
        return Gate::Allow;

    bool flush_on_switch =
        cfg_.flushOnContextSwitch ||
        ((fleetBits_ & kernel::kFleetFlushOnSwitch) != 0 &&
         ctx.now >= fleetVisibleAt_);
    if (flush_on_switch && ctx.asid != lastAsid_) {
        // Untagged hardware would have to flush on every switch.
        isvCache_.invalidateAll();
        dsvCache_.invalidateAll();
    }
    lastAsid_ = ctx.asid;

    // Every load of a run resolves the same ASID: a one-entry MRU
    // makes the common case pointer-stable and hash-free
    // (unordered_map node addresses survive rehashing; the MRU is
    // dropped whenever contexts_/dsvmts_ can change).
    Context *c;
    if (ctxMruCtx_ && ctxMruAsid_ == ctx.asid) {
        c = ctxMruCtx_;
    } else {
        auto it = contexts_.find(ctx.asid);
        if (it == contexts_.end()) {
            // Unregistered context: conservatively block. The
            // verdict only changes if the context gets registered.
            if (stats_)
                ctrUnregistered_.inc();
            lastWake_ = sim::GateWake::untilInputs();
            lastWake_.depend(&contextsGen_);
            lastWake_.blockedTally =
                stats_ ? &ctrUnregistered_ : nullptr;
            noteBlock(ctx);
            return Gate::Block;
        }
        ctxMruAsid_ = ctx.asid;
        ctxMruCtx_ = &it->second;
        auto tit = dsvmts_.find(it->second.domain);
        ctxMruTree_ = tit == dsvmts_.end() ? nullptr : &tit->second;
        c = ctxMruCtx_;
    }

    // Fleet sync (DEXCR model): a task picks up a tightened
    // enforcement value at its first kernel gate check past the
    // flip's visibility point; its cached verdicts were computed
    // under the old value and are dropped.
    if (c->fleetSeen != fleetGen_ && ctx.now >= fleetVisibleAt_) {
        c->fleetSeen = fleetGen_;
        isvCache_.invalidateAsid(ctx.asid);
        dsvCache_.invalidateAll();
        if (stats_) {
            stats_->histogram("transient_gap_cycles")
                .sample(ctx.now >= fleetFlipAt_
                            ? ctx.now - fleetFlipAt_
                            : 0);
        }
    }

    // Any Block below is released by an ISV/DSV cache fill or
    // invalidation, an ISV reconfiguration (epoch tick), a context-
    // table change, or the speculation horizon (implicit); non-first
    // re-checks bump no counters, so no tally is needed.
    auto blockOnViews = [&](sim::Cycle recheck_at) {
        lastWake_ = sim::GateWake::untilInputs();
        lastWake_.depend(&contextsGen_);
        if (cfg_.enableIsv) {
            lastWake_.depend(isvCache_.genPtr());
            if (c->isv)
                lastWake_.depend(c->isv->epochPtr());
        }
        if (cfg_.enableDsv)
            lastWake_.depend(dsvCache_.genPtr());
        lastWake_.recheckAt = recheck_at;
        noteBlock(ctx);
        return Gate::Block;
    };

    if (cfg_.enableIsv && c->isv) {
        // A reconfigured view invalidates this context's entries.
        if (c->isvEpochSeen != c->isv->epoch()) {
            isvCache_.invalidateAsid(ctx.asid);
            c->isvEpochSeen = c->isv->epoch();
        }
        HwLookup look = isvCache_.lookup(ctx.pc, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                IsvRegionBits bits;
                bits.bits = c->isv->regionBits(
                    ctx.pc, IsvCache::kRegionBytes);
                if (adminIsv_ && c->fleetSeen == fleetGen_ &&
                    (fleetBits_ & kernel::kFleetRestrictIsv) != 0) {
                    // Admin restriction composes by intersection:
                    // no tenant view may widen past the fleet view.
                    auto admin = adminIsv_->regionBits(
                        ctx.pc, IsvCache::kRegionBytes);
                    bits.bits[0] &= admin[0];
                    bits.bits[1] &= admin[1];
                }
                isvCache_.fill(ctx.pc, ctx.asid, bits,
                               ctx.now + cfg_.fillLatency);
                noteMiss(isvMissRun_);
                if (stats_) {
                    ctrIsvFence_.inc();
                    ctrIsvMiss_.inc();
                }
                return blockOnViews(ctx.now + cfg_.fillLatency);
            }
            return blockOnViews(look.readyAt);
        }
        if (ctx.firstCheck)
            noteHit(isvMissRun_, "isv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                ctrIsvFence_.inc();
            return blockOnViews(0);
        }
    }

    if (cfg_.enableDsv && kernel::inDirectMap(ctx.dataVa)) {
        HwLookup look = dsvCache_.lookup(ctx.dataVa, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                dsvCache_.fill(ctx.dataVa, ctx.asid,
                               dsvFillValue(ctx.dataVa, *c),
                               ctx.now + cfg_.fillLatency);
                noteMiss(dsvMissRun_);
                if (stats_) {
                    ctrDsvFence_.inc();
                    ctrDsvMiss_.inc();
                }
                return blockOnViews(ctx.now + cfg_.fillLatency);
            }
            return blockOnViews(look.readyAt);
        }
        if (ctx.firstCheck)
            noteHit(dsvMissRun_, "dsv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                ctrDsvFence_.inc();
            return blockOnViews(0);
        }

        // The verdict says Allow — but is it stale? If a pending
        // revocation covers this page and ground truth now denies it,
        // this load is reading through the open transient window.
        // (No firstCheck gate: a load that missed the DSV cache gets
        // its Allow on a recheck, and Allow ends the recheck loop, so
        // this fires once per resolved load either way.)
        if (!pending_.empty()) {
            kernel::Pfn pfn = kernel::directMapPfn(ctx.dataVa);
            for (const PendingRevocation &r : pending_) {
                if (r.pfn == pfn &&
                    !inDsv(ctx.dataVa, c->domain)) {
                    if (stats_) {
                        stats_
                            ->counter(
                                "perspective.revocation.stale_allows")
                            .inc();
                    }
                    break;
                }
            }
        }
    }

    return Gate::Allow;
}

void
PerspectivePolicy::warmAccess(const SpecContext &ctx)
{
    // Functional warming (DESIGN §5.8): replay a committed kernel
    // load against the ISV/DSV caches so sampled detailed windows
    // start with the lookup state a continuously-detailed run would
    // have. Everything here must stay accounting-free: no counters,
    // no burst runs, no histogram samples, no wake-slot writes —
    // warming has no timeline, so fills land immediately ready and
    // deferred-LRU is off. The pipeline only warms while
    // allowFastForward() holds, so no revocation window is open.
    if (!ctx.kernelMode)
        return;

    Context *c;
    if (ctxMruCtx_ && ctxMruAsid_ == ctx.asid) {
        c = ctxMruCtx_;
    } else {
        auto it = contexts_.find(ctx.asid);
        if (it == contexts_.end())
            return; // unregistered: nothing to warm
        ctxMruAsid_ = ctx.asid;
        ctxMruCtx_ = &it->second;
        auto tit = dsvmts_.find(it->second.domain);
        ctxMruTree_ = tit == dsvmts_.end() ? nullptr : &tit->second;
        c = ctxMruCtx_;
    }

    if (cfg_.enableIsv && c->isv) {
        if (c->isvEpochSeen != c->isv->epoch()) {
            isvCache_.invalidateAsid(ctx.asid);
            c->isvEpochSeen = c->isv->epoch();
        }
        HwLookup look = isvCache_.lookup(ctx.pc, ctx.asid, false,
                                         ctx.now, false);
        if (!look.hit) {
            IsvRegionBits bits;
            bits.bits =
                c->isv->regionBits(ctx.pc, IsvCache::kRegionBytes);
            if (adminIsv_ && c->fleetSeen == fleetGen_ &&
                (fleetBits_ & kernel::kFleetRestrictIsv) != 0) {
                auto admin = adminIsv_->regionBits(
                    ctx.pc, IsvCache::kRegionBytes);
                bits.bits[0] &= admin[0];
                bits.bits[1] &= admin[1];
            }
            isvCache_.fill(ctx.pc, ctx.asid, bits, 0);
        }
    }

    if (cfg_.enableDsv && kernel::inDirectMap(ctx.dataVa)) {
        HwLookup look = dsvCache_.lookup(ctx.dataVa, ctx.asid, false,
                                         ctx.now, false);
        if (!look.hit)
            dsvCache_.fill(ctx.dataVa, ctx.asid,
                           dsvFillValue(ctx.dataVa, *c), 0);
    }
}

bool
PerspectivePolicy::dsvFillValue(sim::Addr va, const Context &c)
{
    // The hardware DSV-cache refill walks the domain's in-memory
    // DSVMT (the flat radix mirror — this is where the walk MRU
    // earns its keep). Unknown-provenance frames have no per-domain
    // entry; their verdict is the blockUnknown policy bit, exactly
    // the inDsv predicate. During an open revocation window the
    // mirror still holds the pre-handoff bit — by design.
    bool block_unknown = effBlockUnknown(c);
    if (ctxMruTree_) {
        bool v = ctxMruTree_->queryVa(va);
        if (v)
            return true;
        if (!block_unknown)
            return ownership_.ownerOfVa(va) == kDomainUnknown;
        return false;
    }
    DomainId owner = ownership_.ownerOfVa(va);
    if (owner == kDomainReplicated)
        return true;
    if (owner == kDomainUnknown)
        return !block_unknown;
    return owner == c.domain;
}

sim::GateWake
PerspectivePolicy::gateWake(const SpecContext &ctx)
{
    // The single-slot contract: this call must pair with the Block
    // gateLoad just returned for the same instruction. A mismatch
    // means some interleaved gate check overwrote lastWake_ and a
    // blocked load is about to sleep on the wrong inputs.
    assert(wakePairingMatches(ctx) &&
           "gateWake unpaired with the preceding Block verdict");
    (void)ctx;
    wakeArmed_ = false;
    return lastWake_;
}

} // namespace perspective::core
