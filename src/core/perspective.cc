#include "perspective.hh"

namespace perspective::core
{

using kernel::DomainId;
using kernel::kDomainReplicated;
using kernel::kDomainUnknown;
using sim::Gate;
using sim::SpecContext;

PerspectivePolicy::PerspectivePolicy(kernel::OwnershipMap &ownership,
                                     PerspectiveConfig cfg,
                                     std::string name)
    : ownership_(ownership),
      cfg_(cfg),
      name_(std::move(name)),
      isvCache_(cfg.isvCacheEntries, cfg.cacheAssoc),
      dsvCache_(cfg.dsvCacheEntries, cfg.cacheAssoc)
{
    // Ownership changes shoot down stale DSV cache entries and the
    // per-domain DSVMT mirrors, the software/hardware contract of
    // Section 6.1.
    ownership_.addListener([this](kernel::Pfn pfn) {
        dsvCache_.invalidatePage(kernel::directMapVa(pfn));
        DomainId owner = ownership_.ownerOf(pfn);
        for (auto &[domain, tree] : dsvmts_) {
            tree.setPage(pfn, owner == domain ||
                                  owner == kDomainReplicated);
        }
    });
}

void
PerspectivePolicy::registerContext(sim::Asid asid, DomainId domain,
                                   const IsvView *isv)
{
    Context c;
    c.domain = domain;
    c.isv = isv;
    c.isvEpochSeen = isv ? isv->epoch() : 0;
    contexts_[asid] = c;
    ctxMruCtx_ = nullptr;
    ctxMruTree_ = nullptr;
    ++contextsGen_;

    // Materialize the domain's DSVMT from current ownership (the OS
    // builds the in-memory table when the context is created); the
    // listener keeps it in sync afterwards.
    auto [it, fresh] = dsvmts_.try_emplace(domain);
    if (fresh) {
        for (kernel::Pfn pfn = 0; pfn < ownership_.numFrames();
             ++pfn) {
            DomainId owner = ownership_.ownerOf(pfn);
            if (owner == domain || owner == kDomainReplicated)
                it->second.setPage(pfn, true);
        }
    }
}

bool
PerspectivePolicy::inDsv(sim::Addr va, DomainId domain) const
{
    DomainId owner = ownership_.ownerOfVa(va);
    if (owner == kDomainReplicated)
        return true;
    if (owner == kDomainUnknown)
        return !cfg_.blockUnknown;
    return owner == domain;
}

const Dsvmt &
PerspectivePolicy::dsvmtOf(DomainId domain)
{
    Dsvmt &tree = dsvmts_[domain];
    return tree;
}

std::uint64_t
PerspectivePolicy::dsvmtMruHits() const
{
    std::uint64_t n = 0;
    for (const auto &[domain, tree] : dsvmts_)
        n += tree.mruHits();
    return n;
}

std::uint64_t
PerspectivePolicy::dsvmtMruLookups() const
{
    std::uint64_t n = 0;
    for (const auto &[domain, tree] : dsvmts_)
        n += tree.mruLookups();
    return n;
}

void
PerspectivePolicy::resetDsvmtMruStats()
{
    for (auto &[domain, tree] : dsvmts_)
        tree.resetMruStats();
}

void
PerspectivePolicy::setStats(sim::StatSet *stats)
{
    SpeculationPolicy::setStats(stats);
    if (!stats)
        return;
    ctrUnregistered_ =
        stats->counter("perspective.fence.unregistered");
    ctrIsvFence_ = stats->counter("perspective.fence.isv");
    ctrIsvMiss_ = stats->counter("perspective.fence.isv_miss");
    ctrDsvFence_ = stats->counter("perspective.fence.dsv");
    ctrDsvMiss_ = stats->counter("perspective.fence.dsv_miss");
}

void
PerspectivePolicy::noteHit(std::uint64_t &run,
                           const char *hist_name)
{
    if (run == 0)
        return;
    // A hit ends a consecutive-miss burst: record its length so the
    // cache-behaviour analyses can tell scattered misses (capacity)
    // from bursts (cold regions / view reconfigurations).
    if (stats_)
        stats_->histogram(hist_name).sample(run);
    run = 0;
}

Gate
PerspectivePolicy::gateLoad(const SpecContext &ctx)
{
    // Perspective protects kernel execution; userspace speculation
    // and non-speculative accesses proceed unimpeded.
    if (!ctx.kernelMode || !ctx.speculative)
        return Gate::Allow;

    if (cfg_.flushOnContextSwitch && ctx.asid != lastAsid_) {
        // Untagged hardware would have to flush on every switch.
        isvCache_.invalidateAll();
        dsvCache_.invalidateAll();
    }
    lastAsid_ = ctx.asid;

    // Every load of a run resolves the same ASID: a one-entry MRU
    // makes the common case pointer-stable and hash-free
    // (unordered_map node addresses survive rehashing; the MRU is
    // dropped whenever contexts_/dsvmts_ can change).
    Context *c;
    if (ctxMruCtx_ && ctxMruAsid_ == ctx.asid) {
        c = ctxMruCtx_;
    } else {
        auto it = contexts_.find(ctx.asid);
        if (it == contexts_.end()) {
            // Unregistered context: conservatively block. The
            // verdict only changes if the context gets registered.
            if (stats_)
                ctrUnregistered_.inc();
            lastWake_ = sim::GateWake::untilInputs();
            lastWake_.depend(&contextsGen_);
            lastWake_.blockedTally =
                stats_ ? &ctrUnregistered_ : nullptr;
            return Gate::Block;
        }
        ctxMruAsid_ = ctx.asid;
        ctxMruCtx_ = &it->second;
        auto tit = dsvmts_.find(it->second.domain);
        ctxMruTree_ = tit == dsvmts_.end() ? nullptr : &tit->second;
        c = ctxMruCtx_;
    }

    // Any Block below is released by an ISV/DSV cache fill or
    // invalidation, a context-table change, or the speculation
    // horizon (implicit); non-first re-checks bump no counters, so
    // no tally is needed.
    auto blockOnViews = [&](sim::Cycle recheck_at) {
        lastWake_ = sim::GateWake::untilInputs();
        lastWake_.depend(&contextsGen_);
        if (cfg_.enableIsv)
            lastWake_.depend(isvCache_.genPtr());
        if (cfg_.enableDsv)
            lastWake_.depend(dsvCache_.genPtr());
        lastWake_.recheckAt = recheck_at;
        return Gate::Block;
    };

    if (cfg_.enableIsv && c->isv) {
        // A reconfigured view invalidates this context's entries.
        if (c->isvEpochSeen != c->isv->epoch()) {
            isvCache_.invalidateAsid(ctx.asid);
            c->isvEpochSeen = c->isv->epoch();
        }
        HwLookup look = isvCache_.lookup(ctx.pc, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                IsvRegionBits bits;
                bits.bits = c->isv->regionBits(
                    ctx.pc, IsvCache::kRegionBytes);
                isvCache_.fill(ctx.pc, ctx.asid, bits,
                               ctx.now + cfg_.fillLatency);
                noteMiss(isvMissRun_);
                if (stats_) {
                    ctrIsvFence_.inc();
                    ctrIsvMiss_.inc();
                }
                return blockOnViews(ctx.now + cfg_.fillLatency);
            }
            return blockOnViews(look.readyAt);
        }
        if (ctx.firstCheck)
            noteHit(isvMissRun_, "isv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                ctrIsvFence_.inc();
            return blockOnViews(0);
        }
    }

    if (cfg_.enableDsv && kernel::inDirectMap(ctx.dataVa)) {
        HwLookup look = dsvCache_.lookup(ctx.dataVa, ctx.asid, true,
                                         ctx.now, ctx.firstCheck);
        if (!look.hit) {
            if (ctx.firstCheck) {
                dsvCache_.fill(ctx.dataVa, ctx.asid,
                               dsvFillValue(ctx.dataVa, c->domain),
                               ctx.now + cfg_.fillLatency);
                noteMiss(dsvMissRun_);
                if (stats_) {
                    ctrDsvFence_.inc();
                    ctrDsvMiss_.inc();
                }
                return blockOnViews(ctx.now + cfg_.fillLatency);
            }
            return blockOnViews(look.readyAt);
        }
        if (ctx.firstCheck)
            noteHit(dsvMissRun_, "dsv_miss_burst");
        if (!look.allow) {
            if (stats_ && ctx.firstCheck)
                ctrDsvFence_.inc();
            return blockOnViews(0);
        }
    }

    return Gate::Allow;
}

bool
PerspectivePolicy::dsvFillValue(sim::Addr va, DomainId domain)
{
    // The hardware DSV-cache refill walks the domain's in-memory
    // DSVMT (the flat radix mirror — this is where the walk MRU
    // earns its keep). Unknown-provenance frames have no per-domain
    // entry; their verdict is the blockUnknown policy bit, exactly
    // the inDsv predicate.
    if (ctxMruTree_) {
        bool v = ctxMruTree_->queryVa(va);
        if (v)
            return true;
        if (!cfg_.blockUnknown)
            return ownership_.ownerOfVa(va) == kDomainUnknown;
        return false;
    }
    return inDsv(va, domain);
}

sim::GateWake
PerspectivePolicy::gateWake(const SpecContext &)
{
    return lastWake_;
}

} // namespace perspective::core
