#include "hwmodel.hh"

#include <cmath>

namespace perspective::core
{

namespace
{

// Calibration constants for a 22 nm high-performance node. The cell
// area follows published 22 nm SRAM bitcell sizes (~0.1 um^2) with a
// periphery factor; timing/energy/leakage constants are fitted so a
// 128x53b 4-way structure lands on CACTI 7's output for the same
// geometry (Table 9.1).
constexpr double kCellAreaUm2 = 0.105;   // 6T bitcell @22nm
constexpr double kPeriphFactor = 2.67;   // decoders, comparators, IO
constexpr double kTagOverheadPerWay = 14; // comparator bits per way
constexpr double kBaseAccessPs = 78.0;
constexpr double kRcPsPerSqrtBit = 0.39;
constexpr double kEnergyPjPerBitRead = 0.0034;
constexpr double kEnergyPjBase = 0.31;
constexpr double kLeakMwPerKbit = 0.089;
constexpr double kLeakMwBase = 0.02;

} // namespace

SramCharacteristics
characterizeSram(const SramGeometry &geom)
{
    double scale = geom.nodeNm / 22.0;
    double data_bits =
        static_cast<double>(geom.entries) * geom.bitsPerEntry;
    double tag_bits = kTagOverheadPerWay * geom.assoc *
                      (static_cast<double>(geom.entries) / geom.assoc);
    double total_bits = data_bits + tag_bits;

    SramCharacteristics c;
    c.areaMm2 = total_bits * kCellAreaUm2 * kPeriphFactor * 1e-6 *
                scale * scale;
    c.accessPs = (kBaseAccessPs +
                  kRcPsPerSqrtBit * std::sqrt(total_bits)) *
                 scale;
    // A set-associative read switches one set's ways plus tags.
    double bits_read = static_cast<double>(geom.bitsPerEntry +
                                           kTagOverheadPerWay) *
                       geom.assoc;
    c.dynEnergyPj = kEnergyPjBase +
                    bits_read * kEnergyPjPerBitRead * scale;
    c.leakPowerMw = kLeakMwBase +
                    total_bits / 1024.0 * kLeakMwPerKbit * scale;
    return c;
}

SramGeometry
isvCacheGeometry()
{
    // 128 entries, 32 sets, 4-way; 57 bits per entry (tag + ASID +
    // 16 ISV bits).
    return {"ISV Cache", 128, 57, 4, 22.0};
}

SramGeometry
dsvCacheGeometry()
{
    // 128 entries, 32 sets, 4-way; 53 bits per entry (tag + ASID +
    // in-DSV bit).
    return {"DSV Cache", 128, 53, 4, 22.0};
}

} // namespace perspective::core
