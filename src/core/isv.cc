#include "isv.hh"

#include <bit>
#include <cassert>

namespace perspective::core
{

using namespace sim;

IsvView::IsvView(const Program &prog)
    : prog_(prog), textBase_(kKernelTextBase)
{
    assert(prog.kernelTextEnd() >= textBase_);
    numInsts_ = static_cast<std::size_t>(
        (prog.kernelTextEnd() - textBase_) / kInstBytes);
    bits_.assign((numInsts_ + 63) / 64, 0);
    funcBits_.assign((prog.numFunctions() + 63) / 64, 0);
}

bool
IsvView::funcBit(FuncId f) const
{
    std::size_t w = static_cast<std::size_t>(f) / 64;
    if (w >= funcBits_.size())
        return false;
    return (funcBits_[w] >> (f % 64)) & 1;
}

void
IsvView::setFuncBit(FuncId f, bool value)
{
    std::size_t w = static_cast<std::size_t>(f) / 64;
    if (w >= funcBits_.size())
        funcBits_.resize(w + 1, 0);
    if (value)
        funcBits_[w] |= 1ull << (f % 64);
    else
        funcBits_[w] &= ~(1ull << (f % 64));
}

std::size_t
IsvView::bitIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc - textBase_) / kInstBytes);
}

void
IsvView::setFunctionBits(FuncId f, bool value)
{
    const Function &fn = prog_.func(f);
    for (std::uint32_t i = 0; i < fn.body.size(); ++i) {
        std::size_t bit = bitIndex(fn.instAddr(i));
        if (bit >= numInsts_)
            continue;
        if (value)
            bits_[bit / 64] |= 1ull << (bit % 64);
        else
            bits_[bit / 64] &= ~(1ull << (bit % 64));
    }
}

void
IsvView::includeFunction(FuncId f)
{
    if (!funcBit(f)) {
        setFuncBit(f, true);
        ++numFuncs_;
        setFunctionBits(f, true);
        ++epoch_;
    }
}

void
IsvView::excludeFunction(FuncId f)
{
    if (funcBit(f)) {
        setFuncBit(f, false);
        --numFuncs_;
        setFunctionBits(f, false);
        ++epoch_;
    }
}

bool
IsvView::contains(Addr pc) const
{
    if (pc < textBase_)
        return false;
    std::size_t bit = bitIndex(pc);
    if (bit >= numInsts_)
        return false;
    return (bits_[bit / 64] >> (bit % 64)) & 1;
}

bool
IsvView::containsFunction(FuncId f) const
{
    return funcBit(f);
}

void
IsvView::intersectWith(const IsvView &other)
{
    for (std::size_t w = 0; w < funcBits_.size(); ++w) {
        std::uint64_t theirs =
            w < other.funcBits_.size() ? other.funcBits_[w] : 0;
        std::uint64_t drop = funcBits_[w] & ~theirs;
        while (drop) {
            unsigned b = std::countr_zero(drop);
            drop &= drop - 1;
            excludeFunction(static_cast<FuncId>(w * 64 + b));
        }
    }
}

void
IsvView::unionWith(const IsvView &other)
{
    for (std::size_t w = 0; w < other.funcBits_.size(); ++w) {
        std::uint64_t add = other.funcBits_[w];
        while (add) {
            unsigned b = std::countr_zero(add);
            add &= add - 1;
            includeFunction(static_cast<FuncId>(w * 64 + b));
        }
    }
}

std::vector<FuncId>
IsvView::functions() const
{
    std::vector<FuncId> out;
    out.reserve(numFuncs_);
    for (std::size_t w = 0; w < funcBits_.size(); ++w) {
        std::uint64_t word = funcBits_[w];
        while (word) {
            unsigned b = std::countr_zero(word);
            word &= word - 1;
            out.push_back(static_cast<FuncId>(w * 64 + b));
        }
    }
    return out;
}

std::array<std::uint64_t, 2>
IsvView::regionBits(Addr pc, Addr region_bytes) const
{
    Addr base = pc & ~(region_bytes - 1);
    std::array<std::uint64_t, 2> out{};
    unsigned n = static_cast<unsigned>(region_bytes / kInstBytes);
    for (unsigned i = 0; i < n && i < 128; ++i) {
        if (contains(base + Addr{i} * kInstBytes))
            out[i / 64] |= 1ull << (i % 64);
    }
    return out;
}

} // namespace perspective::core
