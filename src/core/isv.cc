#include "isv.hh"

#include <cassert>

namespace perspective::core
{

using namespace sim;

IsvView::IsvView(const Program &prog)
    : prog_(prog), textBase_(kKernelTextBase)
{
    assert(prog.kernelTextEnd() >= textBase_);
    numInsts_ = static_cast<std::size_t>(
        (prog.kernelTextEnd() - textBase_) / kInstBytes);
    bits_.assign((numInsts_ + 63) / 64, 0);
}

std::size_t
IsvView::bitIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc - textBase_) / kInstBytes);
}

void
IsvView::setFunctionBits(FuncId f, bool value)
{
    const Function &fn = prog_.func(f);
    for (std::uint32_t i = 0; i < fn.body.size(); ++i) {
        std::size_t bit = bitIndex(fn.instAddr(i));
        if (bit >= numInsts_)
            continue;
        if (value)
            bits_[bit / 64] |= 1ull << (bit % 64);
        else
            bits_[bit / 64] &= ~(1ull << (bit % 64));
    }
}

void
IsvView::includeFunction(FuncId f)
{
    if (funcs_.insert(f).second) {
        setFunctionBits(f, true);
        ++epoch_;
    }
}

void
IsvView::excludeFunction(FuncId f)
{
    if (funcs_.erase(f) > 0) {
        setFunctionBits(f, false);
        ++epoch_;
    }
}

bool
IsvView::contains(Addr pc) const
{
    if (pc < textBase_)
        return false;
    std::size_t bit = bitIndex(pc);
    if (bit >= numInsts_)
        return false;
    return (bits_[bit / 64] >> (bit % 64)) & 1;
}

bool
IsvView::containsFunction(FuncId f) const
{
    return funcs_.count(f) > 0;
}

void
IsvView::intersectWith(const IsvView &other)
{
    std::vector<FuncId> drop;
    for (FuncId f : funcs_) {
        if (!other.containsFunction(f))
            drop.push_back(f);
    }
    for (FuncId f : drop)
        excludeFunction(f);
}

void
IsvView::unionWith(const IsvView &other)
{
    for (FuncId f : other.funcs_)
        includeFunction(f);
}

std::array<std::uint64_t, 2>
IsvView::regionBits(Addr pc, Addr region_bytes) const
{
    Addr base = pc & ~(region_bytes - 1);
    std::array<std::uint64_t, 2> out{};
    unsigned n = static_cast<unsigned>(region_bytes / kInstBytes);
    for (unsigned i = 0; i < n && i < 128; ++i) {
        if (contains(base + Addr{i} * kInstBytes))
            out[i / 64] |= 1ull << (i % 64);
    }
    return out;
}

} // namespace perspective::core
