/**
 * @file
 * Analytic SRAM characterization model in the spirit of CACTI 7,
 * calibrated at the 22 nm node, used to regenerate Table 9.1 (area,
 * access time, dynamic energy, and leakage power of the ISV and DSV
 * caches).
 */

#ifndef PERSPECTIVE_CORE_HWMODEL_HH
#define PERSPECTIVE_CORE_HWMODEL_HH

#include <cstdint>
#include <string>

namespace perspective::core
{

/** Characterization of one SRAM structure. */
struct SramCharacteristics
{
    double areaMm2 = 0;      ///< total cell+periphery area
    double accessPs = 0;     ///< access time in picoseconds
    double dynEnergyPj = 0;  ///< energy per access
    double leakPowerMw = 0;  ///< static leakage
};

/** Geometry of a tagged SRAM lookup structure. */
struct SramGeometry
{
    std::string name;
    std::uint32_t entries = 128;
    std::uint32_t bitsPerEntry = 53;
    std::uint32_t assoc = 4;
    double nodeNm = 22.0;
};

/**
 * Characterize @p geom with a CACTI-class analytic model: area scales
 * with bit count plus per-way comparator overhead; access time with
 * wordline/bitline RC (sqrt of array size); energy with bits switched
 * per access; leakage with total transistor count.
 */
SramCharacteristics characterizeSram(const SramGeometry &geom);

/** Table 7.1 geometries for Perspective's two structures. */
SramGeometry isvCacheGeometry();
SramGeometry dsvCacheGeometry();

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_HWMODEL_HH
