/**
 * @file
 * PerspectivePolicy: the hardware protection mechanism of Perspective,
 * plugged into the pipeline through the pliable SpeculationPolicy
 * interface.
 *
 * For every speculative kernel-mode transmitter the policy performs:
 *
 *  1. the ISV check — is the *instruction* inside the context's
 *     instruction speculation view? (ISV cache; miss -> block and
 *     fill through the TLB path);
 *  2. the DSV check — is the accessed *data page* inside the
 *     context's data speculation view? (DSVMT cache; miss -> block
 *     and fill; unknown-provenance memory always blocks).
 *
 * Blocked instructions stall until their Visibility Point, exactly
 * the fence semantics of Section 6.2. Userspace execution and non-
 * speculative accesses are never affected.
 */

#ifndef PERSPECTIVE_CORE_PERSPECTIVE_HH
#define PERSPECTIVE_CORE_PERSPECTIVE_HH

#include <string>
#include <unordered_map>

#include "dsvmt.hh"
#include "hwcache.hh"
#include "isv.hh"
#include "kernel/ownership.hh"
#include "sim/policy.hh"

namespace perspective::core
{

/** Feature toggles (sensitivity analyses flip these). */
struct PerspectiveConfig
{
    bool enableIsv = true;
    bool enableDsv = true;
    /** Block speculative access to unknown allocations (Section 9.2
     * quantifies the cost of keeping this on). */
    bool blockUnknown = true;
    /** ISV/DSV cache refill latency (TLB + L2 access). */
    sim::Cycle fillLatency = 14;
    /** Hardware lookup structure geometry (Table 7.1 defaults). */
    unsigned isvCacheEntries = 128;
    unsigned dsvCacheEntries = 128;
    unsigned cacheAssoc = 4;
    /** Untagged-structure emulation: flush the ISV/DSV caches on
     * every context switch. Section 6.2 tags entries with the ASID
     * precisely to avoid this; the ablation quantifies the win. */
    bool flushOnContextSwitch = false;
};

/** The Perspective hardware mechanism. */
class PerspectivePolicy : public sim::SpeculationPolicy
{
  public:
    /**
     * @param ownership ground-truth frame ownership (the in-memory
     *        DSVMT contents); the policy registers an invalidation
     *        listener, so it must not outlive @p ownership.
     */
    PerspectivePolicy(kernel::OwnershipMap &ownership,
                      PerspectiveConfig cfg = {},
                      std::string name = "perspective");

    /**
     * Associate an execution context: its ASID, its ownership domain
     * (DSV), and its instruction speculation view (may be null when
     * running DSV-only configurations).
     */
    void registerContext(sim::Asid asid, kernel::DomainId domain,
                         const IsvView *isv);

    sim::Gate gateLoad(const sim::SpecContext &ctx) override;
    sim::GateWake gateWake(const sim::SpecContext &ctx) override;
    void setStats(sim::StatSet *stats) override;
    const char *name() const override { return name_.c_str(); }

    IsvCache &isvCache() { return isvCache_; }
    DsvCache &dsvCache() { return dsvCache_; }

    /** Per-domain DSVMT mirror (kept in sync with ownership). */
    const Dsvmt &dsvmtOf(kernel::DomainId domain);

    /** Ground-truth DSV membership for @p va under @p domain. */
    bool inDsv(sim::Addr va, kernel::DomainId domain) const;

    const PerspectiveConfig &config() const { return cfg_; }

    /** Aggregate DSVMT walk MRU-granule telemetry over every
     * per-domain mirror (the hardware fill path walks the mirror,
     * so these count real DSV-fill traffic). */
    std::uint64_t dsvmtMruHits() const;
    std::uint64_t dsvmtMruLookups() const;
    void resetDsvmtMruStats();

    /** Lookup-structure and context checkpoint. The ownership
     * listener wired at construction is identity, not state, and
     * survives restore untouched. */
    struct Snapshot;

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    struct Context
    {
        kernel::DomainId domain = kernel::kDomainUnknown;
        const IsvView *isv = nullptr;
        std::uint64_t isvEpochSeen = 0;
    };

    kernel::OwnershipMap &ownership_;
    PerspectiveConfig cfg_;
    std::string name_;
    IsvCache isvCache_;
    DsvCache dsvCache_;
    std::unordered_map<sim::Asid, Context> contexts_;
    std::unordered_map<kernel::DomainId, Dsvmt> dsvmts_;
    sim::Asid lastAsid_ = 0;

    /** Ticks whenever the context table changes (registerContext /
     * restore); wakes loads blocked on an unregistered ASID. */
    std::uint64_t contextsGen_ = 0;

    /** One-entry MRU over contexts_ — gateLoad resolves the same
     * ASID for every load of a run. Pointers into unordered_map
     * nodes are stable; the MRU is dropped whenever the table can
     * change (registerContext / restore). */
    sim::Asid ctxMruAsid_ = 0;
    Context *ctxMruCtx_ = nullptr;
    Dsvmt *ctxMruTree_ = nullptr;

    /** Wake spec of the most recent Block verdict (see gateWake). */
    sim::GateWake lastWake_;

    // Cached hot-path counter handles (resolved in setStats).
    sim::Counter ctrUnregistered_;
    sim::Counter ctrIsvFence_;
    sim::Counter ctrIsvMiss_;
    sim::Counter ctrDsvFence_;
    sim::Counter ctrDsvMiss_;

    /** DSV-cache refill value for @p va: walk the domain's DSVMT
     * mirror (MRU-cached), falling back to the ownership ground
     * truth when no mirror exists. Equals inDsv by construction. */
    bool dsvFillValue(sim::Addr va, kernel::DomainId domain);

    /** Record a miss (or a run-ending hit) on one view cache and
     * sample completed burst lengths into @p hist_name. */
    void noteMiss(std::uint64_t &run) { ++run; }
    void noteHit(std::uint64_t &run, const char *hist_name);

    // Current consecutive-miss run length per view cache; a hit
    // closes the run and samples it into the burst histogram.
    std::uint64_t isvMissRun_ = 0;
    std::uint64_t dsvMissRun_ = 0;
};

struct PerspectivePolicy::Snapshot
{
    IsvCache isvCache;
    DsvCache dsvCache;
    std::unordered_map<sim::Asid, Context> contexts;
    std::unordered_map<kernel::DomainId, Dsvmt> dsvmts;
    sim::Asid lastAsid = 0;
    std::uint64_t isvMissRun = 0;
    std::uint64_t dsvMissRun = 0;
};

inline PerspectivePolicy::Snapshot
PerspectivePolicy::snapshot() const
{
    return {isvCache_, dsvCache_, contexts_, dsvmts_,
            lastAsid_,  isvMissRun_, dsvMissRun_};
}

inline void
PerspectivePolicy::restore(const Snapshot &s)
{
    isvCache_ = s.isvCache;
    dsvCache_ = s.dsvCache;
    contexts_ = s.contexts;
    dsvmts_ = s.dsvmts;
    lastAsid_ = s.lastAsid;
    isvMissRun_ = s.isvMissRun;
    dsvMissRun_ = s.dsvMissRun;
    // Restore happens between runs (empty ROB — no blocked load holds
    // a stale wake snapshot), but the MRU pointers now dangle.
    ctxMruCtx_ = nullptr;
    ctxMruTree_ = nullptr;
    ++contextsGen_;
}

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_PERSPECTIVE_HH
